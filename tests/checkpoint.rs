//! Coordinated checkpoint/restore acceptance (ISSUE: compso-ckpt).
//!
//! The headline invariant: training N steps straight and training N/2
//! steps → coordinated save → **drop all live state** → restore → N/2
//! more steps produce *bit-identical* parameters, at every world size
//! and under both the lossless identity compressor and the quantized
//! stochastic COMPSO pipeline (whose per-rank RNG streams make resume
//! correctness non-trivial).
//!
//! The crash campaign replays the paper's operational story end to end:
//! a seeded [`FaultPlane`] kills a rank mid-run, the surviving process
//! group tears down, a fresh group restores the last coordinated
//! snapshot and finishes — landing on the exact same trajectory as an
//! uninterrupted run. Every assertion is reconciled against the
//! `ckpt/*` observability counters.

use compso::comm::{run_ranks, run_ranks_with, CommConfig, FaultConfig, FaultPlane};
use compso::core::{ChunkedCompso, Compressor, CompsoConfig, NoCompression};
use compso::dnn::loss::softmax_cross_entropy;
use compso::dnn::{data, models, Sequential};
use compso::kfac::checkpoint::fingerprint;
use compso::kfac::{CheckpointConfig, CheckpointCoordinator, DistKfac, DistKfacConfig};
use compso::obs::{names, Recorder, Resilience};
use compso::tensor::{Matrix, Rng};
use std::path::PathBuf;
use std::time::Duration;

const BATCH: usize = 8;

/// Fresh per-test store root under the system temp dir.
fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "compso-ckpt-it-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn params_of(model: &Sequential) -> Vec<Matrix> {
    (0..model.len())
        .filter_map(|i| model.layer(i).params().cloned())
        .collect()
}

/// One training step of the shared fixture loop.
fn train_step(
    comm: &mut compso::comm::Communicator,
    model: &mut Sequential,
    opt: &mut DistKfac,
    shard: &data::Dataset,
    compressor: &dyn Compressor,
    step: usize,
) {
    let (x, y) = shard.batch(step, BATCH);
    let logits = model.forward(&x, true);
    let (_, grad) = softmax_cross_entropy(&logits, &y);
    model.backward(&grad);
    opt.step(comm, model, compressor).expect("step");
    model.update_params(|p, g| p.axpy(-0.02, g));
}

fn make_compressor(quantized: bool) -> Box<dyn Compressor> {
    if quantized {
        Box::new(ChunkedCompso::new(CompsoConfig::aggressive(4e-3)))
    } else {
        Box::new(NoCompression)
    }
}

/// Straight `steps`-step run; per-rank final params.
fn straight(ranks: usize, steps: usize, quantized: bool) -> Vec<Vec<Matrix>> {
    let d = data::gaussian_blobs(240, 6, 3, 0.3, 55);
    let d_ref = &d;
    run_ranks(ranks, move |comm| {
        let mut rng = Rng::new(13);
        let mut model = models::mlp(&[6, 16, 3], &mut rng);
        let shard = d_ref.shard(comm.rank(), ranks);
        let mut opt = DistKfac::new(DistKfacConfig::default(), 7);
        let compressor = make_compressor(quantized);
        for step in 0..steps {
            train_step(
                comm,
                &mut model,
                &mut opt,
                &shard,
                compressor.as_ref(),
                step,
            );
        }
        params_of(&model)
    })
}

/// Half the run, coordinated save, then **all live state is dropped**:
/// a fresh garbage-initialized model and a fresh optimizer restore from
/// disk and train the second half.
fn resumed(
    ranks: usize,
    steps: usize,
    quantized: bool,
    dir: &std::path::Path,
    rec: &Recorder,
) -> Vec<Vec<Matrix>> {
    let d = data::gaussian_blobs(240, 6, 3, 0.3, 55);
    let d_ref = &d;
    let fp = fingerprint(&[
        "ckpt-it",
        &format!("ranks={ranks}"),
        &format!("q={quantized}"),
    ]);
    run_ranks(ranks, move |comm| {
        let shard = d_ref.shard(comm.rank(), ranks);
        let compressor = make_compressor(quantized);
        let coord = CheckpointCoordinator::new(CheckpointConfig::new(dir, fp)).expect("open store");
        let half = steps / 2;
        {
            let mut rng = Rng::new(13);
            let mut model = models::mlp(&[6, 16, 3], &mut rng);
            let mut opt = DistKfac::new(DistKfacConfig::default(), 7);
            opt.set_recorder(rec.clone());
            for step in 0..half {
                train_step(
                    comm,
                    &mut model,
                    &mut opt,
                    &shard,
                    compressor.as_ref(),
                    step,
                );
            }
            coord
                .save(comm, half as u64, &opt, &model, &[])
                .expect("coordinated save");
            // `model`, `opt`, and the rank RNG stream drop here.
        }
        // Different garbage init per rank: restore must overwrite all of it.
        let mut garbage = Rng::new(7000 + comm.rank() as u64);
        let mut model = models::mlp(&[6, 16, 3], &mut garbage);
        let mut opt = DistKfac::new(DistKfacConfig::default(), 7);
        opt.set_recorder(rec.clone());
        let restored = coord
            .restore(comm, &mut opt, &mut model)
            .expect("restore from snapshot");
        assert_eq!(restored.step, half as u64);
        for step in half..steps {
            train_step(
                comm,
                &mut model,
                &mut opt,
                &shard,
                compressor.as_ref(),
                step,
            );
        }
        params_of(&model)
    })
}

#[test]
fn resume_is_bit_identical_at_every_world_size_and_compressor() {
    let steps = 8;
    for ranks in [1usize, 2, 4] {
        for quantized in [false, true] {
            let dir = temp_root(&format!("resume-{ranks}-{quantized}"));
            let rec = Recorder::enabled();
            let direct = straight(ranks, steps, quantized);
            let rejoined = resumed(ranks, steps, quantized, &dir, &rec);
            for r in 0..ranks {
                assert_eq!(
                    direct[r], rejoined[r],
                    "ranks={ranks} quantized={quantized} rank {r}: \
                     resumed trajectory diverged from the straight run"
                );
            }
            // Counter reconciliation: one coordinated save per rank, real
            // bytes on disk, zero restore rungs (the snapshot was clean) —
            // and a clean checkpointing run stays "quiet" in the report.
            let snap = rec.snapshot();
            assert_eq!(snap.counter(names::CKPT_SAVES), ranks as u64);
            assert!(snap.counter(names::CKPT_BYTES) > 0);
            assert!(snap.counter(names::CKPT_RAW_BYTES) > 0);
            assert_eq!(snap.counter(names::CKPT_RESTORE_RUNGS), 0);
            assert_eq!(snap.timers[names::CKPT_SAVE].count, ranks as u64);
            assert_eq!(snap.timers[names::CKPT_LOAD].count, ranks as u64);
            let rz = Resilience::from_snapshot(&snap);
            assert!(rz.is_quiet(), "clean save/restore must stay quiet: {rz:?}");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn restore_walks_past_torn_and_corrupt_snapshots_with_rung_accounting() {
    let ranks = 2;
    let steps = 8;
    let dir = temp_root("ladder");
    let fp = fingerprint(&["ckpt-ladder"]);
    let d = data::gaussian_blobs(240, 6, 3, 0.3, 55);

    // Take three snapshots (steps 2, 4, 6) with retain_last = 3.
    let d_ref = &d;
    let dir_ref = dir.as_path();
    run_ranks(ranks, move |comm| {
        let mut rng = Rng::new(13);
        let mut model = models::mlp(&[6, 16, 3], &mut rng);
        let shard = d_ref.shard(comm.rank(), ranks);
        let mut opt = DistKfac::new(DistKfacConfig::default(), 7);
        let compso = ChunkedCompso::new(CompsoConfig::aggressive(4e-3));
        let coord = CheckpointCoordinator::new(CheckpointConfig {
            retain_last: 3,
            ..CheckpointConfig::new(dir_ref, fp)
        })
        .expect("open store");
        for step in 0..steps {
            train_step(comm, &mut model, &mut opt, &shard, &compso, step);
            let done = step + 1;
            if done % 2 == 0 && done < steps {
                coord
                    .save(comm, done as u64, &opt, &model, &[])
                    .expect("save");
            }
        }
    });

    // Sabotage newest-first: step 6 gets a flipped payload byte (CRC
    // catches it), step 4 loses its manifest (torn, as if the commit
    // rename never happened). Step 2 stays pristine.
    let newest = dir.join("step-000000000006").join("rank-0.bin");
    let mut bytes = std::fs::read(&newest).expect("read rank file");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&newest, &bytes).expect("rewrite rank file");
    std::fs::remove_file(dir.join("step-000000000004").join("MANIFEST")).expect("remove manifest");

    // A fresh group restores: it must land on step 2, burn exactly two
    // rungs per rank on the way down, and the report must notice.
    let rec = Recorder::enabled();
    let rec_ref = &rec;
    let dir_ref = dir.as_path();
    let restored_steps = run_ranks(ranks, move |comm| {
        let mut garbage = Rng::new(9000 + comm.rank() as u64);
        let mut model = models::mlp(&[6, 16, 3], &mut garbage);
        let mut opt = DistKfac::new(DistKfacConfig::default(), 7);
        opt.set_recorder(rec_ref.clone());
        let coord = CheckpointCoordinator::new(CheckpointConfig {
            retain_last: 3,
            ..CheckpointConfig::new(dir_ref, fp)
        })
        .expect("open store");
        let restored = coord
            .restore(comm, &mut opt, &mut model)
            .expect("older snapshot must restore");
        restored.step
    });
    assert!(restored_steps.iter().all(|&s| s == 2));
    let snap = rec.snapshot();
    assert_eq!(
        snap.counter(names::CKPT_RESTORE_RUNGS),
        2 * ranks as u64,
        "two sabotaged snapshots, each skipped once per rank"
    );
    let rz = Resilience::from_snapshot(&snap);
    assert!(!rz.is_quiet(), "burned restore rungs must surface: {rz:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_campaign_restores_last_snapshot_and_matches_uninterrupted_run() {
    const RANKS: usize = 4;
    const STEPS: usize = 12;
    const SAVE_EVERY: usize = 4;
    const CRASH_STEP: u64 = 6;
    let dir = temp_root("crash");
    let fp = fingerprint(&["ckpt-crash", "ranks=4"]);
    let comm_config = CommConfig {
        recv_timeout: Duration::from_secs(30),
        retry_initial: Duration::from_millis(40),
        max_retries: 10,
        ..CommConfig::default()
    };

    // Uninterrupted reference trajectory.
    let reference = straight(RANKS, STEPS, true);

    // Doomed run: snapshots every SAVE_EVERY steps, rank 1 killed by the
    // fault plane at the top of step CRASH_STEP. The group must tear
    // down (harness re-panics naming the rank), not hang.
    let plane = FaultPlane::new(FaultConfig {
        seed: 0xDEAD,
        crash_at: Some((1, CRASH_STEP)),
        ..FaultConfig::default()
    });
    let ledger_plane = plane.clone();
    let doomed_rec = Recorder::enabled();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let d = data::gaussian_blobs(240, 6, 3, 0.3, 55);
        let d_ref = &d;
        let dir_ref = dir.as_path();
        let rec_ref = &doomed_rec;
        run_ranks_with(RANKS, plane, comm_config, move |comm| {
            let mut rng = Rng::new(13);
            let mut model = models::mlp(&[6, 16, 3], &mut rng);
            let shard = d_ref.shard(comm.rank(), RANKS);
            let mut opt = DistKfac::new(DistKfacConfig::default(), 7);
            opt.set_recorder(rec_ref.clone());
            let compso = ChunkedCompso::new(CompsoConfig::aggressive(4e-3));
            let coord =
                CheckpointCoordinator::new(CheckpointConfig::new(dir_ref, fp)).expect("open store");
            for step in 0..STEPS {
                let (x, y) = shard.batch(step, BATCH);
                let logits = model.forward(&x, true);
                let (_, grad) = softmax_cross_entropy(&logits, &y);
                model.backward(&grad);
                if opt.step(comm, &mut model, &compso).is_err() {
                    return; // survivor: group poisoned by the crash
                }
                model.update_params(|p, g| p.axpy(-0.02, g));
                let done = step + 1;
                if done % SAVE_EVERY == 0 && done < STEPS {
                    coord
                        .save(comm, done as u64, &opt, &model, &[])
                        .expect("save before crash");
                }
            }
        });
    }));
    let panic_msg = match outcome {
        Ok(_) => panic!("crash campaign completed without a panic"),
        Err(p) => p
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "<non-string panic>".into()),
    };
    assert!(
        panic_msg.contains("rank 1"),
        "panic names the rank: {panic_msg}"
    );
    assert_eq!(ledger_plane.ledger().crashes, 1);
    // Exactly one coordinated snapshot (step 4) landed before the crash.
    let doomed_snap = doomed_rec.snapshot();
    assert_eq!(doomed_snap.counter(names::CKPT_SAVES), RANKS as u64);
    assert!(doomed_snap.counter(names::CKPT_BYTES) > 0);

    // Recovery: a fresh group restores the snapshot and finishes the
    // run. It must land exactly on the uninterrupted trajectory.
    let rec = Recorder::enabled();
    let rec_ref = &rec;
    let d = data::gaussian_blobs(240, 6, 3, 0.3, 55);
    let d_ref = &d;
    let dir_ref = dir.as_path();
    let recovered = run_ranks(RANKS, move |comm| {
        let mut garbage = Rng::new(8000 + comm.rank() as u64);
        let mut model = models::mlp(&[6, 16, 3], &mut garbage);
        let shard = d_ref.shard(comm.rank(), RANKS);
        let mut opt = DistKfac::new(DistKfacConfig::default(), 7);
        opt.set_recorder(rec_ref.clone());
        let compso = ChunkedCompso::new(CompsoConfig::aggressive(4e-3));
        let coord =
            CheckpointCoordinator::new(CheckpointConfig::new(dir_ref, fp)).expect("open store");
        let restored = coord
            .restore(comm, &mut opt, &mut model)
            .expect("restore after crash");
        assert_eq!(restored.step, SAVE_EVERY as u64);
        for step in restored.step as usize..STEPS {
            train_step(comm, &mut model, &mut opt, &shard, &compso, step);
        }
        params_of(&model)
    });
    for r in 0..RANKS {
        assert_eq!(
            reference[r], recovered[r],
            "rank {r}: post-crash recovery diverged from the uninterrupted run"
        );
    }
    // The snapshot was intact: recovery burned no restore rungs.
    let snap = rec.snapshot();
    assert_eq!(snap.counter(names::CKPT_RESTORE_RUNGS), 0);
    assert_eq!(snap.timers[names::CKPT_LOAD].count, RANKS as u64);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Restore an N-rank snapshot into an M-rank group: the striped factor
/// reshard must install the exact saved state (model params replicated,
/// every owner-sharded factor loaded exactly once group-wide) and the
/// result must be deterministic — two fresh M-rank processes restoring
/// the same snapshot and training on land bit-identically, which is the
/// elastic bit-identity yardstick (no N-rank reference trajectory
/// exists once the world size changed).
#[test]
fn cross_world_restore_reshards_and_stays_deterministic() {
    const SAVE_STEP: usize = 4;
    const EXTRA: usize = 4;
    for (n, m) in [(4usize, 2usize), (2, 4), (3, 1)] {
        let dir = temp_root(&format!("xworld-{n}-{m}"));
        // The fingerprint must be rank-free: the same training job, run
        // at any world size, shares one snapshot lineage.
        let fp = fingerprint(&["ckpt-xworld", "mlp-6-16-3"]);
        let d = data::gaussian_blobs(240, 6, 3, 0.3, 55);

        // Train SAVE_STEP steps at N ranks, coordinated save, and keep
        // the (replicated) parameters at save time as ground truth.
        let d_ref = &d;
        let dir_ref = dir.as_path();
        let saved = run_ranks(n, move |comm| {
            let mut rng = Rng::new(13);
            let mut model = models::mlp(&[6, 16, 3], &mut rng);
            let shard = d_ref.shard(comm.rank(), n);
            let mut opt = DistKfac::new(DistKfacConfig::default(), 7);
            let compso = ChunkedCompso::new(CompsoConfig::aggressive(4e-3));
            let coord =
                CheckpointCoordinator::new(CheckpointConfig::new(dir_ref, fp)).expect("open store");
            for step in 0..SAVE_STEP {
                train_step(comm, &mut model, &mut opt, &shard, &compso, step);
            }
            coord
                .save(comm, SAVE_STEP as u64, &opt, &model, &[])
                .expect("save at world size N");
            params_of(&model)
        });
        let saved_params = &saved[0];

        // One M-rank restore-and-continue run, repeatable.
        let resharded_run = |rec: &Recorder| {
            let d_ref = &d;
            let rec_ref = rec;
            run_ranks(m, move |comm| {
                let mut garbage = Rng::new(6000 + comm.rank() as u64);
                let mut model = models::mlp(&[6, 16, 3], &mut garbage);
                let shard = d_ref.shard(comm.rank(), m);
                let mut opt = DistKfac::new(DistKfacConfig::default(), 7);
                opt.set_recorder(rec_ref.clone());
                let compso = ChunkedCompso::new(CompsoConfig::aggressive(4e-3));
                let coord = CheckpointCoordinator::new(CheckpointConfig::new(dir_ref, fp))
                    .expect("open store");
                let restored = coord
                    .restore(comm, &mut opt, &mut model)
                    .expect("cross-world restore");
                assert_eq!(restored.step, SAVE_STEP as u64);
                // The resharded ownership map rebuilds at the next step.
                assert!(opt.owners().is_none(), "stale N-rank ownership survived");
                let installed = params_of(&model);
                for step in SAVE_STEP..SAVE_STEP + EXTRA {
                    train_step(comm, &mut model, &mut opt, &shard, &compso, step);
                }
                (installed, params_of(&model))
            })
        };

        let rec = Recorder::enabled();
        let first = resharded_run(&rec);
        for (r, (installed, _)) in first.iter().enumerate() {
            assert_eq!(
                installed, saved_params,
                "{n}->{m} rank {r}: restored parameters differ from the saved ones"
            );
        }
        // Counter reconciliation: every rank took the world-size path
        // exactly once, burned no rungs, and the report surfaces the
        // elastic restore (not quiet).
        let snap = rec.snapshot();
        assert_eq!(
            snap.counter(names::CKPT_RESTORE_RUNGS_WORLD_SIZE),
            m as u64,
            "{n}->{m}: one world-size reshard per restoring rank"
        );
        assert_eq!(snap.counter(names::CKPT_RESTORE_RUNGS), 0);
        let rz = Resilience::from_snapshot(&snap);
        assert_eq!(rz.ckpt_restore_world_size, m as u64);
        assert!(!rz.is_quiet(), "elastic restore must surface: {rz:?}");

        // Determinism pin: a second fresh group restoring the same
        // snapshot lands bit-identically, including the training
        // continuation (per-rank RNG streams and all).
        let second = resharded_run(&Recorder::enabled());
        for r in 0..m {
            assert_eq!(
                first[r].1, second[r].1,
                "{n}->{m} rank {r}: cross-world restore is not deterministic"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
