//! Cross-crate integration: the compressor meets the collectives, the
//! kernels, the performance model, and the simulator through the facade.

use compso::comm::collectives::allgather_var;
use compso::comm::run_ranks;
use compso::core::kernels::{compress_chunked, decompress_chunked, KernelConfig, LayerSchedule};
use compso::core::perfmodel::{comm_speedup, end_to_end_gain, CompressorProfile};
use compso::core::synthetic::{generate, generate_layers, GradientProfile};
use compso::core::{Compressor, Compso, CompsoConfig};
use compso::dnn::ModelSpec;
use compso::sim::{IterationModel, Platform};
use compso::tensor::Rng;

#[test]
fn compressed_allgather_is_bit_consistent_across_ranks() {
    // Each rank compresses its own gradient; after the all-gather every
    // rank must decode byte-identical buffers for every source.
    let decoded_per_rank = run_ranks(4, |comm| {
        let compso = Compso::new(CompsoConfig::aggressive(4e-3));
        let mut rng = Rng::new(100 + comm.rank() as u64);
        let mine = generate(20_000, 7 + comm.rank() as u64, GradientProfile::kfac());
        let bytes = compso.compress(&mine, &mut rng);
        let gathered = allgather_var(comm, bytes).unwrap();
        gathered
            .into_iter()
            .map(|b| compso.decompress(&b).expect("peer stream decodes"))
            .collect::<Vec<_>>()
    });
    for rank in 1..4 {
        assert_eq!(
            decoded_per_rank[0], decoded_per_rank[rank],
            "rank {rank} decoded different gradients"
        );
    }
}

#[test]
fn chunked_kernels_and_serial_pipeline_agree_on_error_contract() {
    let layers = generate_layers(&[30_000, 500, 8_000], 21, GradientProfile::kfac());
    let refs: Vec<&[f32]> = layers.iter().map(|l| l.as_slice()).collect();
    let cfg = CompsoConfig::aggressive(4e-3);

    // Chunked-parallel path.
    let sizes: Vec<usize> = layers.iter().map(|l| l.len()).collect();
    let schedule = LayerSchedule::build(&sizes, 4096);
    let rng = Rng::new(22);
    let chunked = decompress_chunked(&compress_chunked(
        &refs,
        &cfg,
        &KernelConfig::default(),
        &schedule,
        &rng,
    ))
    .unwrap();

    // Serial path.
    let compso = Compso::new(cfg);
    let mut rng2 = Rng::new(22);
    let serial = compso
        .decompress_layers(&compso.compress_layers(&refs, &mut rng2))
        .unwrap();

    // Different streams (chunk-forked vs serial RNG), same contract.
    for (layer, (c, s)) in layers.iter().zip(chunked.iter().zip(&serial)) {
        let mm = compso::tensor::reduce::minmax_flat(layer);
        let bound = 4e-3 * (mm.max - mm.min) * 1.01 + 1e-7;
        for ((&x, &yc), &ys) in layer.iter().zip(c).zip(s) {
            if yc != 0.0 {
                assert!((x - yc).abs() <= bound);
            }
            if ys != 0.0 {
                assert!((x - ys).abs() <= bound);
            }
        }
    }
}

#[test]
fn measured_profile_feeds_the_simulator_sensibly() {
    // Compress real synthetic gradients, feed the measured ratio into the
    // simulator with GPU-class codec throughput, and check the end-to-end
    // verdict lands in the paper's band.
    let compso = Compso::new(CompsoConfig::aggressive(4e-3));
    let mut rng = Rng::new(31);
    let data = generate(1 << 20, 32, GradientProfile::kfac());
    let ratio = compso.ratio(&data, &mut rng);
    assert!(ratio > 10.0, "ratio {ratio}");

    let profile = CompressorProfile {
        ratio,
        compress_tput: 40e9,
        decompress_tput: 60e9,
    };
    let model = IterationModel::new(Platform::platform1());
    let spec = ModelSpec::resnet50();
    let plain = model.breakdown(&spec, 64, 1, None);
    let comp = model.breakdown(&spec, 64, 4, Some(&profile));
    let gain = plain.total() / comp.total();
    assert!((1.05..2.5).contains(&gain), "gain {gain}");
}

#[test]
fn eq5_algebra_matches_hand_computation() {
    let profile = CompressorProfile {
        ratio: 20.0,
        compress_tput: 50e9,
        decompress_tput: 100e9,
    };
    let l_o = 100e6;
    let l_c = 5e6;
    let s = comm_speedup(l_o, l_c, 10e9, 10e9, &profile);
    // t_orig = 0.01; t_comp = 5e-4 + 2e-3 + 5e-5 = 2.55e-3.
    assert!((s - 0.01 / 2.55e-3).abs() < 1e-9, "s {s}");
    let gain = end_to_end_gain(0.4, s);
    assert!((gain - 1.0 / (0.6 + 0.4 / s)).abs() < 1e-12);
}

#[test]
fn corrupted_peer_traffic_fails_loudly_not_silently() {
    // A corrupted compressed block must error at decode — never decode to
    // garbage gradients silently.
    let compso = Compso::new(CompsoConfig::aggressive(4e-3));
    let mut rng = Rng::new(41);
    let data = generate(50_000, 42, GradientProfile::kfac());
    let mut bytes = compso.compress(&data, &mut rng);
    let n = bytes.len();
    // Truncations always error.
    for cut in [0, 1, n / 3, n - 1] {
        assert!(compso.decompress(&bytes[..cut]).is_err(), "cut {cut}");
    }
    // Header corruption errors.
    bytes[0] ^= 0xFF;
    assert!(compso.decompress(&bytes).is_err());
}

#[test]
fn facade_reexports_are_usable_together() {
    // Smoke-check that the facade's module aliases compose.
    let mut rng = compso::tensor::Rng::new(1);
    let m = compso::tensor::Matrix::random_normal(4, 4, &mut rng);
    let eig = compso::tensor::sym_eig(&{
        let mut s = m.t_matmul(&m);
        s.symmetrize();
        s
    });
    assert_eq!(eig.values.len(), 4);
    let spec = compso::dnn::ModelSpec::bert_large();
    assert!(spec.total_grad_elems() > 100_000_000);
    let net = compso::comm::NetworkSpec::slingshot10();
    assert!(net.allreduce_time(8, 1e6) > 0.0);
}
