//! Chaos suite: seeded fault campaigns against full 4-rank distributed
//! K-FAC training (ISSUE PR 3, tentpole acceptance).
//!
//! Every campaign is deterministic in its [`FaultConfig`] seed, so a
//! failure here reproduces exactly. The assertions reconcile three
//! independent books:
//!
//! 1. the fault plane's **injection ledger** (ground truth: what was
//!    actually dropped / flipped / delayed / crashed),
//! 2. the **observability counters** (what the ARQ and the degradation
//!    ladder *noticed* and *did* about it), and
//! 3. the **training outcome** (all steps complete, loss within
//!    tolerance of the fault-free run, replicas consistent where the
//!    ladder guarantees consistency).

use compso::comm::{
    admit_pending, rejoin, run_ranks, run_ranks_elastic, run_ranks_with, CommConfig, CommError,
    FaultConfig, FaultPlane,
};
use compso::core::{ChunkedCompso, CompsoConfig};
use compso::dnn::loss::softmax_cross_entropy;
use compso::dnn::{data, models};
use compso::kfac::checkpoint::{catch_up_rejoined, fingerprint};
use compso::kfac::{CheckpointConfig, CheckpointCoordinator, DistKfac, DistKfacConfig};
use compso::obs::{names, Recorder, Resilience, StepReport};
use compso::tensor::{Matrix, Rng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

const RANKS: usize = 4;
const STEPS: usize = 12;
const BATCH: usize = 8;

/// A short chaos-friendly transport config: generous enough that real
/// recoveries finish, tight enough that a genuine hang fails the test
/// instead of stalling CI.
fn chaos_comm_config() -> CommConfig {
    CommConfig {
        recv_timeout: Duration::from_secs(30),
        retry_initial: Duration::from_millis(40),
        max_retries: 10,
        ..CommConfig::default()
    }
}

/// Runs `STEPS` of 4-rank compressed distributed K-FAC training under
/// `plane`, returning per-rank `(final loss, layer-0 params)`.
fn train(plane: FaultPlane, rec: &Recorder) -> Vec<(f32, Matrix)> {
    let d = data::gaussian_blobs(320, 6, 3, 0.3, 91);
    let d_ref = &d;
    run_ranks_with(RANKS, plane, chaos_comm_config(), move |comm| {
        let mut rng = Rng::new(17);
        let mut model = models::mlp(&[6, 16, 3], &mut rng);
        let shard = d_ref.shard(comm.rank(), RANKS);
        let mut opt = DistKfac::new(DistKfacConfig::default(), 7);
        opt.set_recorder(rec.clone());
        comm.set_recorder(rec.clone());
        let compso = ChunkedCompso::new(CompsoConfig::aggressive(4e-3));
        let mut loss = f32::NAN;
        for step in 0..STEPS {
            let (x, y) = shard.batch(step, BATCH);
            let logits = model.forward(&x, true);
            let (l, grad) = softmax_cross_entropy(&logits, &y);
            loss = l;
            model.backward(&grad);
            opt.step(comm, &mut model, &compso)
                .expect("chaos campaign must be absorbed, not surfaced");
            model.update_params(|p, g| p.axpy(-0.02, g));
        }
        (loss, model.layer(0).params().unwrap().clone())
    })
}

/// Fault-free reference trajectory.
fn baseline() -> Vec<(f32, Matrix)> {
    train(FaultPlane::disabled(), &Recorder::disabled())
}

#[test]
fn chaos_campaign_converges_with_exact_fault_accounting() {
    // The headline campaign: 2% transport drops, 2% in-flight bit flips,
    // 30% per-(rank, step) origin payload corruption, one straggler —
    // training must complete every step, repairs must all succeed at
    // rung 1 (repair traffic is pristine), and every book must balance.
    let plane = FaultPlane::new(FaultConfig {
        seed: 0xC0FFEE,
        drop_p: 0.02,
        corrupt_wire_p: 0.02,
        corrupt_payload_p: 0.30,
        straggler: Some((2, Duration::from_millis(1))),
        ..FaultConfig::default()
    });
    let ledger_plane = plane.clone();
    let rec = Recorder::enabled();
    let chaos = train(plane, &rec);
    let clean = baseline();

    // Training outcome: all ranks finished all steps; every successful
    // rung-1 repair reinstalls the origin's exact bytes, so the faulted
    // trajectory is not merely "within 5%" — it is the fault-free one.
    for r in 0..RANKS {
        let rel = (chaos[r].0 - clean[r].0).abs() / clean[r].0.abs().max(1e-6);
        assert!(rel < 0.05, "rank {r} loss drifted {rel} under chaos");
        assert_eq!(
            chaos[r].1, clean[r].1,
            "rank {r}: rung-1 repairs must restore the exact trajectory"
        );
    }
    for r in 1..RANKS {
        assert_eq!(chaos[0].1, chaos[r].1, "rank {r} replica diverged");
    }

    // Book-keeping: ledger vs counters, exactly.
    let ledger = ledger_plane.ledger();
    let snap = rec.snapshot();
    assert!(ledger.dropped > 0, "campaign injected no drops");
    assert!(ledger.corrupted_wire > 0, "campaign flipped no wire bits");
    assert!(
        ledger.corrupted_payload > 0,
        "campaign corrupted no payloads"
    );
    assert!(ledger.delayed > 0, "straggler never delayed a send");
    // Every in-flight flip was caught by the envelope CRC exactly once.
    assert_eq!(
        snap.counter(names::COMM_FAULT_CRC_DETECTED),
        ledger.corrupted_wire
    );
    // Every drop and every wire flip was recovered by a retransmission.
    // Under multi-rank cascade stalls a timer NACK can race a message
    // that was just (re)sent and trigger a benign duplicate resend —
    // duplicates are de-duplicated by sequence number at the receiver —
    // so the resend count is bounded below by the injected losses and
    // above by the NACKs that could have asked for one.
    let resends = snap.counter(names::COMM_RETRY_RESENDS);
    assert!(
        resends >= ledger.dropped + ledger.corrupted_wire,
        "resends {resends} < injected losses {}",
        ledger.dropped + ledger.corrupted_wire
    );
    assert!(
        resends <= snap.counter(names::COMM_RETRY_NACKS_SENT),
        "more resends than NACKs"
    );
    // Each origin-corrupted payload failed on every *other* rank (the
    // origin decodes its clean copy), each failure filed one repair
    // request, and every repair succeeded on the compressed resend.
    let expected_failures = ledger.corrupted_payload * (RANKS as u64 - 1);
    assert_eq!(
        snap.counter(names::KFAC_DEGRADE_CHECKSUM_FAILURES),
        expected_failures
    );
    assert_eq!(
        snap.counter(names::KFAC_DEGRADE_REPAIR_REQUESTS),
        expected_failures
    );
    assert_eq!(
        snap.counter(names::KFAC_DEGRADE_REPAIR_COMPRESSED_OK),
        expected_failures
    );
    assert_eq!(snap.counter(names::KFAC_DEGRADE_REPAIR_UNCOMPRESSED_OK), 0);
    assert_eq!(snap.counter(names::KFAC_DEGRADE_FALLBACK_LAST_GOOD), 0);
    assert_eq!(snap.counter(names::KFAC_DEGRADE_FALLBACK_SGD), 0);
    assert_eq!(ledger.corrupted_repair, 0);
    assert_eq!(ledger.crashes, 0);
    // The structured report view agrees with the raw counters.
    let rz = Resilience::from_snapshot(&snap);
    assert_eq!(rz.checksum_failures, expected_failures);
    assert_eq!(rz.degraded_installs(), 0);
    assert!(!rz.is_quiet());
}

#[test]
fn ladder_rung_two_absorbs_corrupted_compressed_resends() {
    // corrupt_repair_rungs = 1: every rung-1 resend is bit-flipped, so
    // every repair must fall through to the uncompressed rung — and the
    // uncompressed resend carries the origin's *installed* values, so
    // the trajectory still matches fault-free exactly.
    let plane = FaultPlane::new(FaultConfig {
        seed: 0xBEEF,
        corrupt_payload_p: 0.30,
        corrupt_repair_rungs: 1,
        ..FaultConfig::default()
    });
    let ledger_plane = plane.clone();
    let rec = Recorder::enabled();
    let chaos = train(plane, &rec);
    let clean = baseline();
    for r in 0..RANKS {
        assert_eq!(
            chaos[r].1, clean[r].1,
            "rank {r}: rung-2 repairs must restore the exact trajectory"
        );
    }

    let ledger = ledger_plane.ledger();
    let snap = rec.snapshot();
    let failures = ledger.corrupted_payload * (RANKS as u64 - 1);
    assert!(failures > 0, "campaign never fired");
    assert_eq!(snap.counter(names::KFAC_DEGRADE_REPAIR_REQUESTS), failures);
    // Every compressed resend was corrupted (one injection per repair),
    // so zero rung-1 successes and all-rung-2 successes.
    assert_eq!(ledger.corrupted_repair, failures);
    assert_eq!(snap.counter(names::KFAC_DEGRADE_REPAIR_COMPRESSED_OK), 0);
    assert_eq!(
        snap.counter(names::KFAC_DEGRADE_REPAIR_UNCOMPRESSED_OK),
        failures
    );
    assert_eq!(snap.counter(names::KFAC_DEGRADE_FALLBACK_LAST_GOOD), 0);
    assert_eq!(snap.counter(names::KFAC_DEGRADE_FALLBACK_SGD), 0);
}

#[test]
fn ladder_bottom_rung_degrades_locally_and_training_survives() {
    // corrupt_repair_rungs = 2: both resends are bit-flipped, so every
    // repair fails and the affected ranks degrade locally (last-good
    // preconditioned gradient, or a plain-SGD step before one exists).
    // Training must still complete every step with a finite, sane loss.
    let plane = FaultPlane::new(FaultConfig {
        seed: 0xDEAD_0001,
        corrupt_payload_p: 0.25,
        corrupt_repair_rungs: 2,
        ..FaultConfig::default()
    });
    let ledger_plane = plane.clone();
    let rec = Recorder::enabled();
    let chaos = train(plane, &rec);
    let clean = baseline();
    for r in 0..RANKS {
        assert!(chaos[r].0.is_finite(), "rank {r} loss diverged");
        // Degraded steps lose some preconditioning but not the descent
        // direction: the final loss stays in the fault-free ballpark.
        let rel = (chaos[r].0 - clean[r].0).abs() / clean[r].0.abs().max(1e-6);
        assert!(
            rel < 0.5,
            "rank {r} loss {} vs clean {}",
            chaos[r].0,
            clean[r].0
        );
    }

    let ledger = ledger_plane.ledger();
    let snap = rec.snapshot();
    let failures = ledger.corrupted_payload * (RANKS as u64 - 1);
    assert!(failures > 0, "campaign never fired");
    assert_eq!(snap.counter(names::KFAC_DEGRADE_REPAIR_REQUESTS), failures);
    // Both rungs corrupted per repair: two injections each, no repair
    // successes, and every failure landed on a rung-3 fallback.
    assert_eq!(ledger.corrupted_repair, 2 * failures);
    assert_eq!(snap.counter(names::KFAC_DEGRADE_REPAIR_COMPRESSED_OK), 0);
    assert_eq!(snap.counter(names::KFAC_DEGRADE_REPAIR_UNCOMPRESSED_OK), 0);
    let fallbacks = snap.counter(names::KFAC_DEGRADE_FALLBACK_LAST_GOOD)
        + snap.counter(names::KFAC_DEGRADE_FALLBACK_SGD);
    assert!(
        fallbacks > 0,
        "no rung-3 fallback despite unrepaired payloads"
    );
    let rz = Resilience::from_snapshot(&snap);
    assert_eq!(rz.degraded_installs(), failures);
}

#[test]
fn scheduled_crash_poisons_the_group_and_names_the_rank() {
    // Rank 2 crashes at the top of step 3. Survivors must not hang:
    // their next collective surfaces a CommError naming the dead rank,
    // and the harness re-raises the crash with the rank id.
    let plane = FaultPlane::new(FaultConfig {
        seed: 5,
        crash_at: Some((2, 3)),
        ..FaultConfig::default()
    });
    let ledger_plane = plane.clone();
    let survivor_errors: Mutex<Vec<(usize, CommError)>> = Mutex::new(Vec::new());
    let errs_ref = &survivor_errors;
    let outcome = std::panic::catch_unwind(|| {
        let d = data::gaussian_blobs(320, 6, 3, 0.3, 91);
        let d_ref = &d;
        run_ranks_with(RANKS, plane, chaos_comm_config(), move |comm| {
            let mut rng = Rng::new(17);
            let mut model = models::mlp(&[6, 16, 3], &mut rng);
            let shard = d_ref.shard(comm.rank(), RANKS);
            let mut opt = DistKfac::new(DistKfacConfig::default(), 7);
            let compso = ChunkedCompso::new(CompsoConfig::aggressive(4e-3));
            for step in 0..STEPS {
                let (x, y) = shard.batch(step, BATCH);
                let logits = model.forward(&x, true);
                let (_, grad) = softmax_cross_entropy(&logits, &y);
                model.backward(&grad);
                if let Err(e) = opt.step(comm, &mut model, &compso) {
                    errs_ref.lock().unwrap().push((comm.rank(), e));
                    return;
                }
                model.update_params(|p, g| p.axpy(-0.02, g));
            }
        });
    });
    // The harness re-panics with the crashed rank's id.
    let panic_msg = match outcome {
        Ok(_) => panic!("crash campaign completed without a panic"),
        Err(p) => p
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "<non-string panic>".into()),
    };
    assert!(
        panic_msg.contains("rank 2"),
        "panic must name the crashed rank: {panic_msg}"
    );
    assert_eq!(ledger_plane.ledger().crashes, 1);
    // Every survivor got a deadline-bounded error naming rank 2 — not a
    // hang, not an anonymous failure.
    let errs = survivor_errors.into_inner().unwrap();
    assert_eq!(errs.len(), RANKS - 1, "all survivors must surface an error");
    for (rank, e) in &errs {
        match e {
            CommError::Poisoned { rank: dead }
            | CommError::Timeout { rank: dead, .. }
            | CommError::Disconnected { rank: dead } => {
                assert_eq!(*dead, 2, "rank {rank} blamed rank {dead}: {e:?}");
            }
            other => panic!("rank {rank}: unexpected error {other:?}"),
        }
    }
}

/// The elastic tentpole campaign: rank 2 is SIGKILL-analog crashed at
/// the top of step 5 of a 10-step seeded 4-rank run. The survivors must
/// detect the loss at the step boundary, quorum-shrink to 3 ranks,
/// reshard ownership, and keep training; the revived rank restores the
/// step-4 snapshot locally, rejoins live at an epoch boundary, catches
/// its factors and parameters up from peers, and finishes the run in
/// the group. Exact epoch/shrink/rejoin/reshard counters and replica
/// equality across all four final ranks are pinned.
#[test]
fn elastic_campaign_shrinks_reshards_and_readmits_the_crashed_rank() {
    const STEPS: u64 = 10;
    const SAVE_AT: u64 = 4;
    const CRASH_STEP: u64 = 5;
    let dir = std::env::temp_dir().join(format!(
        "compso-chaos-elastic-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    // Rank-free fingerprint: the rejoining rank restores the snapshot
    // the full group wrote.
    let fp = fingerprint(&["chaos-elastic", "mlp-6-16-3"]);
    let plane = FaultPlane::new(FaultConfig {
        seed: 0xE1A5,
        crash_at: Some((2, CRASH_STEP)),
        ..FaultConfig::default()
    });
    let ledger_plane = plane.clone();
    let rec = Recorder::enabled();
    let config = CommConfig {
        recv_timeout: Duration::from_secs(10),
        retry_initial: Duration::from_millis(40),
        max_retries: 10,
        ..CommConfig::default()
    };
    // Deterministic elastic schedule, as in the membership suite: the
    // revived rank may ask to rejoin only after the survivors completed
    // two steps on the shrunk view; the survivors then hold at the
    // admission sweep until it lands.
    let may_rejoin = AtomicBool::new(false);
    let may_rejoin_ref = &may_rejoin;
    let d = data::gaussian_blobs(320, 6, 3, 0.3, 91);
    let d_ref = &d;
    let dir_ref = dir.as_path();
    let rec_ref = &rec;
    let results = run_ranks_elastic(RANKS, plane, config, move |comm, revived| {
        let mut rng = Rng::new(17);
        let mut model = models::mlp(&[6, 16, 3], &mut rng);
        let shard = d_ref.shard(comm.phys_rank(), RANKS);
        let mut opt = DistKfac::new(DistKfacConfig::default(), 7);
        opt.set_recorder(rec_ref.clone());
        comm.set_recorder(rec_ref.clone());
        let compso = ChunkedCompso::new(CompsoConfig::aggressive(4e-3));
        let coord =
            CheckpointCoordinator::new(CheckpointConfig::new(dir_ref, fp)).expect("open store");
        if revived {
            while !may_rejoin_ref.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_millis(1));
            }
            // Collective-free local restore, then live readmission and
            // factor/parameter catch-up from the members.
            let restored = coord
                .restore_local(&mut opt, &mut model)
                .expect("local restore before rejoin");
            assert_eq!(restored.step, SAVE_AT);
            rejoin(comm).expect("rejoin after revival");
            catch_up_rejoined(comm, &mut opt, &mut model, comm.phys_rank())
                .expect("joiner catch-up");
        }
        let mut shrunk_done = 0u32;
        let mut loss = f32::NAN;
        while comm.current_step() < STEPS {
            // Admission sweep at the step boundary. Once the joiner is
            // released, the shrunk members hold here until it lands (the
            // sweep is a broadcast round, so members stay SPMD).
            let missing: Vec<usize> = (0..RANKS)
                .filter(|r| !comm.live_ranks().contains(r))
                .collect();
            let admitted = if may_rejoin_ref.load(Ordering::Acquire) && comm.size() < RANKS {
                loop {
                    match admit_pending(comm).expect("admission sweep") {
                        Some(vc) => break Some(vc),
                        None => std::thread::sleep(Duration::from_millis(1)),
                    }
                }
            } else {
                admit_pending(comm).expect("admission sweep")
            };
            if admitted.is_some() {
                let joiner = *missing.first().expect("an admitted rank was missing");
                catch_up_rejoined(comm, &mut opt, &mut model, joiner).expect("member catch-up");
            }
            let step = comm.current_step() as usize;
            let (x, y) = shard.batch(step, BATCH);
            let logits = model.forward(&x, true);
            let (l, grad) = softmax_cross_entropy(&logits, &y);
            loss = l;
            model.backward(&grad);
            // Rank 2 panics inside begin_step at CRASH_STEP; survivors'
            // collectives surface the culprit and step_elastic shrinks,
            // resyncs, and retries. The interrupted step is abandoned
            // uniformly on every survivor.
            opt.step_elastic(comm, &mut model, &compso)
                .expect("elastic step must absorb the crash");
            model.update_params(|p, g| p.axpy(-0.02, g));
            if comm.size() < RANKS {
                shrunk_done += 1;
                if shrunk_done == 2 {
                    may_rejoin_ref.store(true, Ordering::Release);
                }
            }
            if comm.current_step() == SAVE_AT {
                coord
                    .save(comm, SAVE_AT, &opt, &model, &[])
                    .expect("coordinated save before the crash");
            }
        }
        (
            comm.epoch(),
            comm.live_ranks().to_vec(),
            loss,
            model.layer(0).params().unwrap().clone(),
        )
    });

    // Every rank — including the crashed-and-revived one — finished.
    let finished: Vec<_> = results
        .iter()
        .enumerate()
        .map(|(r, slot)| slot.as_ref().unwrap_or_else(|| panic!("rank {r} died")))
        .collect();
    for (r, (epoch, live, loss, _)) in finished.iter().enumerate() {
        assert_eq!(*epoch, 2, "rank {r}: one shrink + one rejoin = epoch 2");
        assert_eq!(*live, vec![0, 1, 2, 3], "rank {r}: view whole again");
        assert!(loss.is_finite(), "rank {r}: loss diverged");
    }
    // Replica consistency across the elastic membership churn: the
    // catch-up broadcast and the gathered updates keep all four ranks
    // bit-identical at the end.
    for r in 1..RANKS {
        assert_eq!(
            finished[0].3, finished[r].3,
            "rank {r} replica diverged across shrink/rejoin"
        );
    }
    // Final loss stays near the fixed-membership 10-step reference: two
    // steps ran shrunk, one step was abandoned, and the joiner restored
    // older factors, so the trajectories genuinely differ — the pin is
    // an absolute gap, not bit-identity.
    let clean = run_ranks(RANKS, move |comm| {
        let mut rng = Rng::new(17);
        let mut model = models::mlp(&[6, 16, 3], &mut rng);
        let shard = d_ref.shard(comm.rank(), RANKS);
        let mut opt = DistKfac::new(DistKfacConfig::default(), 7);
        let compso = ChunkedCompso::new(CompsoConfig::aggressive(4e-3));
        let mut loss = f32::NAN;
        for step in 0..STEPS as usize {
            let (x, y) = shard.batch(step, BATCH);
            let logits = model.forward(&x, true);
            let (l, grad) = softmax_cross_entropy(&logits, &y);
            loss = l;
            model.backward(&grad);
            opt.step(comm, &mut model, &compso).unwrap();
            model.update_params(|p, g| p.axpy(-0.02, g));
        }
        loss
    });
    for (r, (_, _, loss, _)) in finished.iter().enumerate() {
        let gap = (loss - clean[r]).abs();
        assert!(
            gap < 0.25,
            "rank {r} loss {loss} strayed from the fixed-membership reference {}",
            clean[r]
        );
    }

    // Book-keeping: the injection ledger and the membership counters
    // reconcile exactly. One crash; three survivors each commit one
    // shrink; three members plus the joiner each commit one rejoin.
    assert_eq!(ledger_plane.ledger().crashes, 1);
    let snap = rec.snapshot();
    assert_eq!(snap.counter(names::COMM_MEMBERSHIP_SHRINKS), 3);
    assert_eq!(snap.counter(names::COMM_MEMBERSHIP_REJOINS), 4);
    assert_eq!(snap.counter(names::COMM_MEMBERSHIP_EPOCHS), 7);
    // Survivors reshard twice (after the shrink and after the rejoin);
    // the joiner rebuilds from scratch, which is not a reshard.
    assert_eq!(snap.counter(names::KFAC_ELASTIC_RESHARDS), 6);
    assert_eq!(snap.counter(names::CKPT_SAVES), RANKS as u64);
    // The structured report surfaces the elastic activity.
    let rz = Resilience::from_snapshot(&snap);
    assert_eq!(rz.membership_epochs, 7);
    assert_eq!(rz.membership_shrinks, 3);
    assert_eq!(rz.membership_rejoins, 4);
    assert_eq!(rz.elastic_reshards, 6);
    assert!(!rz.is_quiet());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn disabled_plane_is_bit_identical_and_quiet() {
    // Arming the machinery with a disabled plane must cost nothing
    // semantically: the plain run_ranks path and the run_ranks_with
    // (disabled) path produce identical parameters, and the resilience
    // section of the step report stays all-zero.
    let rec = Recorder::enabled();
    let with_plane = train(FaultPlane::disabled(), &rec);
    let d = data::gaussian_blobs(320, 6, 3, 0.3, 91);
    let d_ref = &d;
    let plain = run_ranks(RANKS, move |comm| {
        let mut rng = Rng::new(17);
        let mut model = models::mlp(&[6, 16, 3], &mut rng);
        let shard = d_ref.shard(comm.rank(), RANKS);
        let mut opt = DistKfac::new(DistKfacConfig::default(), 7);
        let compso = ChunkedCompso::new(CompsoConfig::aggressive(4e-3));
        let mut loss = f32::NAN;
        for step in 0..STEPS {
            let (x, y) = shard.batch(step, BATCH);
            let logits = model.forward(&x, true);
            let (l, grad) = softmax_cross_entropy(&logits, &y);
            loss = l;
            model.backward(&grad);
            opt.step(comm, &mut model, &compso).unwrap();
            model.update_params(|p, g| p.axpy(-0.02, g));
        }
        (loss, model.layer(0).params().unwrap().clone())
    });
    for r in 0..RANKS {
        assert_eq!(with_plane[r].1, plain[r].1, "rank {r} params differ");
        assert_eq!(with_plane[r].0, plain[r].0, "rank {r} loss differs");
    }
    let report = StepReport::from_snapshot(0, &rec.snapshot());
    assert!(
        report.resilience.is_quiet(),
        "fault-free run recorded resilience activity: {:?}",
        report.resilience
    );
}

#[test]
fn pipelined_gather_absorbs_drops_and_stragglers_mid_stream() {
    // Faults landing *mid-pipeline*: the step-5 gather streams groups
    // through the ring in stages, so a dropped or delayed hop stalls
    // one stage while compression of the next group keeps running, and
    // the ARQ retransmit has to slot back into the stream. Run the
    // campaign over a modeled wire so retransmissions also pay (and
    // re-stamp) the bandwidth-delay, then reconcile all three books.
    let plane = FaultPlane::new(FaultConfig {
        seed: 0x9192_6525,
        drop_p: 0.04,
        straggler: Some((3, Duration::from_millis(1))),
        ..FaultConfig::default()
    });
    let ledger_plane = plane.clone();
    let rec = Recorder::enabled();
    let rec_ref = &rec;
    let d = data::gaussian_blobs(320, 6, 3, 0.3, 91);
    let d_ref = &d;
    let config = CommConfig {
        modeled_wire_mbps: Some(200.0),
        ..chaos_comm_config()
    };
    let chaos = run_ranks_with(RANKS, plane, config, move |comm| {
        let mut rng = Rng::new(17);
        let mut model = models::mlp(&[6, 16, 3], &mut rng);
        let shard = d_ref.shard(comm.rank(), RANKS);
        let mut opt = DistKfac::new(DistKfacConfig::default(), 7);
        opt.set_recorder(rec_ref.clone());
        comm.set_recorder(rec_ref.clone());
        let compso = ChunkedCompso::new(CompsoConfig::aggressive(4e-3));
        let mut loss = f32::NAN;
        for step in 0..STEPS {
            let (x, y) = shard.batch(step, BATCH);
            let logits = model.forward(&x, true);
            let (l, grad) = softmax_cross_entropy(&logits, &y);
            loss = l;
            model.backward(&grad);
            opt.step(comm, &mut model, &compso)
                .expect("mid-pipeline faults must be absorbed, not surfaced");
            model.update_params(|p, g| p.axpy(-0.02, g));
        }
        (loss, model.layer(0).params().unwrap().clone())
    });
    let clean = baseline();

    // Transport-level faults are invisible above the ARQ: the pipelined
    // trajectory is bit-identical to fault-free on every rank.
    for r in 0..RANKS {
        assert_eq!(chaos[r].1, clean[r].1, "rank {r} params differ");
        assert_eq!(chaos[r].0, clean[r].0, "rank {r} loss differs");
    }

    let ledger = ledger_plane.ledger();
    let snap = rec.snapshot();
    assert!(ledger.dropped > 0, "campaign injected no drops");
    assert!(ledger.delayed > 0, "straggler never delayed a send");
    assert_eq!(ledger.corrupted_wire, 0);
    assert_eq!(ledger.corrupted_payload, 0);
    // Every drop was recovered by a NACK-triggered resend (plus benign
    // duplicates, bounded by the NACKs that could have requested one).
    let resends = snap.counter(names::COMM_RETRY_RESENDS);
    assert!(
        resends >= ledger.dropped,
        "resends {resends} < injected drops {}",
        ledger.dropped
    );
    assert!(
        resends <= snap.counter(names::COMM_RETRY_NACKS_SENT),
        "more resends than NACKs"
    );
    // The faults landed inside the pipelined gather: one pipelined span
    // per rank per step, stages and produce/wait timers all live.
    let calls = (RANKS * STEPS) as u64;
    assert_eq!(snap.counter(names::COMM_PIPELINED_ALLGATHER_CALLS), calls);
    assert!(snap.counter(names::COMM_PIPELINE_STAGES) >= calls);
    assert!(snap.timers[names::COMM_PIPELINE_PRODUCE].count > 0);
    assert!(snap.timers[names::COMM_PIPELINE_WAIT].count > 0);
    // No payload corruption was injected, so the degradation ladder
    // stayed idle: transport recovery alone absorbed the campaign.
    let rz = Resilience::from_snapshot(&snap);
    assert_eq!(rz.checksum_failures, 0);
    assert_eq!(rz.degraded_installs(), 0);
    assert_eq!(snap.counter(names::KFAC_DEGRADE_REPAIR_REQUESTS), 0);
}

#[test]
fn straggler_only_campaign_is_slow_but_exact() {
    // A lone straggler exercises the deadline plumbing without any data
    // faults: the result must be bit-identical to fault-free and the
    // ledger must show only delays.
    let plane = FaultPlane::new(FaultConfig {
        seed: 31,
        straggler: Some((1, Duration::from_millis(2))),
        ..FaultConfig::default()
    });
    let ledger_plane = plane.clone();
    let rec = Recorder::enabled();
    let slow = train(plane, &rec);
    let clean = baseline();
    for r in 0..RANKS {
        assert_eq!(slow[r].1, clean[r].1, "rank {r} params differ");
    }
    let ledger = ledger_plane.ledger();
    assert!(ledger.delayed > 0);
    assert_eq!(ledger.dropped, 0);
    assert_eq!(ledger.corrupted_wire, 0);
    assert_eq!(ledger.corrupted_payload, 0);
    assert_eq!(
        rec.snapshot().counter(names::KFAC_DEGRADE_REPAIR_REQUESTS),
        0
    );
}
