//! End-to-end integration tests across the whole workspace: distributed
//! K-FAC training through real collectives with real compression.

use compso::comm::run_ranks;
use compso::core::adaptive::BoundSchedule;
use compso::core::{Compso, NoCompression};
use compso::dnn::loss::{accuracy, softmax_cross_entropy};
use compso::dnn::{data, models};
use compso::kfac::{DistKfac, DistKfacConfig};
use compso::tensor::Rng;

fn train_distributed(
    ranks: usize,
    steps: usize,
    use_compso: bool,
    seed: u64,
) -> Vec<(f64, Vec<f32>, f64)> {
    let dataset = data::gaussian_blobs(480, 8, 3, 0.4, seed);
    let schedule = BoundSchedule::step_paper(steps / 2);
    run_ranks(ranks, |comm| {
        let mut rng = Rng::new(17);
        let mut model = models::mlp(&[8, 32, 3], &mut rng);
        let shard = dataset.shard(comm.rank(), ranks);
        let mut opt = DistKfac::new(DistKfacConfig::default(), 3);
        let mut original = 0u64;
        let mut wire = 0u64;
        for step in 0..steps {
            let (x, y) = shard.batch(step, 16);
            let logits = model.forward(&x, true);
            let (_, grad) = softmax_cross_entropy(&logits, &y);
            model.backward(&grad);
            let stats = if use_compso {
                let compso = Compso::new(schedule.config_at(step));
                opt.step(comm, &mut model, &compso).unwrap()
            } else {
                opt.step(comm, &mut model, &NoCompression).unwrap()
            };
            original += stats.gather_bytes_original;
            wire += stats.gather_bytes_wire;
            model.update_params(|p, g| p.axpy(-0.02, g));
        }
        let logits = model.forward(&dataset.x, false);
        let params = model.layer(0).params().unwrap().as_slice().to_vec();
        (
            accuracy(&logits, &dataset.y),
            params,
            original as f64 / wire.max(1) as f64,
        )
    })
}

#[test]
fn compressed_distributed_training_converges() {
    let results = train_distributed(4, 80, true, 5);
    for (acc, _, _) in &results {
        assert!(*acc > 0.93, "accuracy {acc}");
    }
}

#[test]
fn all_ranks_hold_identical_parameters_under_compression() {
    let results = train_distributed(3, 30, true, 7);
    for r in 1..results.len() {
        assert_eq!(results[0].1, results[r].1, "rank {r} drifted from rank 0");
    }
}

#[test]
fn compression_reduces_wire_traffic_without_hurting_accuracy() {
    let plain = train_distributed(4, 80, false, 9);
    let compressed = train_distributed(4, 80, true, 9);
    let acc_plain = plain[0].0;
    let acc_comp = compressed[0].0;
    assert!(
        acc_comp > acc_plain - 0.05,
        "accuracy {acc_comp} vs {acc_plain}"
    );
    // Aggregate gather ratio across ranks exceeds 2x even at toy layer
    // sizes (headers cap the achievable ratio well below paper scale).
    let ratio = compressed
        .iter()
        .map(|(_, _, r)| r)
        .fold(0.0f64, |a, &b| a.max(b));
    assert!(ratio > 2.0, "gather ratio {ratio}");
}

#[test]
fn training_is_deterministic_for_fixed_seeds() {
    let a = train_distributed(2, 20, true, 11);
    let b = train_distributed(2, 20, true, 11);
    assert_eq!(a[0].1, b[0].1, "non-deterministic training");
    assert_eq!(a[0].0, b[0].0);
}

#[test]
fn adaptive_strategy_switch_keeps_ranks_synchronized() {
    // The Alg. 1 switch from aggressive (filter+SR) to conservative
    // (SR-only) happens mid-run at steps/2; replicas must stay identical
    // through the boundary.
    let results = train_distributed(4, 44, true, 13); // switch at 22
    for r in 1..results.len() {
        assert_eq!(results[0].1, results[r].1, "rank {r} drifted");
    }
}
