//! Tier-1 observability integration tests: an end-to-end distributed
//! K-FAC training run with a live [`Recorder`] must produce well-formed
//! per-step JSON reports whose phase fractions partition the step, and
//! the disabled recorder must leave the training trajectory untouched.

use compso::comm::run_ranks;
use compso::core::{Compso, CompsoConfig};
use compso::dnn::loss::softmax_cross_entropy;
use compso::dnn::{data, models};
use compso::kfac::{DistKfac, DistKfacConfig};
use compso::obs::{json_validate, names, Recorder, Snapshot, StepReport};
use compso::tensor::Rng;

const RANKS: usize = 3;
const STEPS: usize = 5;

/// Runs a small compressed distributed training loop with `rec` attached
/// everywhere, returning rank 0's per-step delta reports and the final
/// layer-0 parameters per rank.
fn instrumented_run(rec: &Recorder, seed: u64) -> (Vec<StepReport>, Vec<Vec<f32>>) {
    let d = data::gaussian_blobs(300, 6, 3, 0.3, seed);
    let d_ref = &d;
    let results = run_ranks(RANKS, |comm| {
        let mut rng = Rng::new(23);
        let mut model = models::mlp(&[6, 16, 3], &mut rng);
        let shard = d_ref.shard(comm.rank(), RANKS);
        let mut opt = DistKfac::new(DistKfacConfig::default(), 7);
        opt.set_recorder(rec.clone());
        comm.set_recorder(rec.clone());
        let compso = Compso::new(CompsoConfig::aggressive(4e-3));
        let mut reports = Vec::new();
        let mut prev = Snapshot::default();
        for step in 0..STEPS {
            let (x, y) = shard.batch(step, 8);
            let logits = model.forward(&x, true);
            let (_, grad) = softmax_cross_entropy(&logits, &y);
            model.backward(&grad);
            opt.step(comm, &mut model, &compso).unwrap();
            model.update_params(|p, g| p.axpy(-0.02, g));
            comm.barrier().unwrap();
            if comm.rank() == 0 {
                let cur = rec.snapshot();
                reports.push(StepReport::from_snapshot(
                    step as u64,
                    &cur.delta_since(&prev),
                ));
                prev = cur;
            }
            comm.barrier().unwrap();
        }
        (
            reports,
            model.layer(0).params().unwrap().as_slice().to_vec(),
        )
    });
    let mut reports = Vec::new();
    let mut params = Vec::new();
    for (i, (r, p)) in results.into_iter().enumerate() {
        if i == 0 {
            reports = r;
        }
        params.push(p);
    }
    (reports, params)
}

#[test]
fn step_reports_are_well_formed_json_with_partitioning_fractions() {
    let rec = Recorder::enabled();
    let (reports, _) = instrumented_run(&rec, 31);
    assert_eq!(reports.len(), STEPS);
    for r in &reports {
        let doc = r.to_json();
        json_validate(&doc).unwrap_or_else(|(pos, msg)| panic!("{msg} at byte {pos} in {doc}"));
        assert!(r.wall_s > 0.0, "step {} has no wall time", r.step);
        let sum = r.fraction_sum();
        assert!(
            (sum - 1.0).abs() < 0.01,
            "step {}: fractions sum to {sum}",
            r.step
        );
        // The compressed all-gather recorded live traffic each step.
        assert!(r.ratio.is_some(), "step {}: no compression ratio", r.step);
        assert!(r.ratio.unwrap() > 1.0);
    }
}

#[test]
fn recorder_sees_every_layer_of_the_stack() {
    let rec = Recorder::enabled();
    instrumented_run(&rec, 37);
    let snap = rec.snapshot();
    // kfac: every sub-phase timed once per rank per step.
    let expect = (RANKS * STEPS) as u64;
    assert_eq!(snap.timers[names::KFAC_STEP].count, expect);
    for phase in compso::obs::STEP_PHASES {
        assert_eq!(snap.timers[*phase].count, expect, "{phase}");
    }
    // core: compressor phases and byte counters flowed in.
    assert!(snap.timers[names::CORE_QUANTIZE].count > 0);
    assert!(snap.counter(names::CORE_BYTES_IN) > snap.counter(names::CORE_BYTES_OUT));
    // comm: collectives timed, traffic counted and histogrammed. The
    // default step-5 gather is the pipelined ring, so the pipelined
    // span fires (once per rank per step) and its stage counter runs;
    // the serial allgather_var is off the default path.
    assert!(snap.timers[names::COMM_ALLREDUCE].count > 0);
    assert_eq!(snap.timers[names::COMM_PIPELINED_ALLGATHER].count, expect);
    assert_eq!(
        snap.counter(names::COMM_PIPELINED_ALLGATHER_CALLS),
        expect,
        "one pipelined gather per rank per step"
    );
    assert!(snap.counter(names::COMM_PIPELINE_STAGES) > 0);
    assert!(snap.timers[names::COMM_PIPELINE_PRODUCE].count > 0);
    let sent = snap.counter(names::COMM_BYTES_SENT);
    assert!(sent > 0);
    assert_eq!(snap.hists[names::COMM_MSG_BYTES].sum, sent);
}

#[test]
fn instrumentation_does_not_perturb_training() {
    // Identical seeds, recorder on vs off: bit-identical trajectories.
    let (_, with_rec) = instrumented_run(&Recorder::enabled(), 41);
    let (_, without) = instrumented_run(&Recorder::disabled(), 41);
    assert_eq!(with_rec, without);
}

#[test]
fn disabled_recorder_snapshot_stays_empty() {
    let rec = Recorder::disabled();
    instrumented_run(&rec, 43);
    let snap = rec.snapshot();
    assert!(snap.counters.is_empty());
    assert!(snap.timers.is_empty());
    assert!(snap.hists.is_empty());
}
