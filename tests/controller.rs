//! Adaptive-controller integration suite (ISSUE: compso-ctrl tentpole).
//!
//! Three contracts cross crate boundaries and are pinned here rather
//! than in unit tests:
//!
//! 1. **Decision determinism across world sizes** — a controller is a
//!    pure function of `(config, seed, signal sequence)`, so every rank
//!    of a 1/2/4-rank world feeding identical signals must produce the
//!    identical decision trace. This is what lets each rank run its own
//!    controller instance without a consensus round: agreement is by
//!    construction, not by communication.
//! 2. **PowerSGD bit-identity across world sizes** — the keyed group
//!    path ties warm-start/error-feedback state to *global layer
//!    indices*, and the encoder never consumes shared RNG, so the same
//!    replicated workload trains to bit-identical parameters whether the
//!    layers' compression work is done by 1, 2, or 4 ranks.
//! 3. **Controller × chaos** — family switching (including the PowerSGD
//!    family and the divergence-backoff ladder) composed with transport
//!    faults must complete every step behind the degradation ladder: no
//!    deadlock, replicas in lockstep, the schedule-invalidation path
//!    exercised on every switch.

use compso::comm::{run_ranks, run_ranks_with, CommConfig, FaultConfig, FaultPlane};
use compso::core::baselines::PowerSgd;
use compso::core::Compressor;
use compso::ctrl::{
    instantiate, Candidate, ControlConfig, Controller, Decision, Family, Reason, Setting, Signals,
};
use compso::dnn::loss::softmax_cross_entropy;
use compso::dnn::{data, models};
use compso::kfac::{DistKfac, DistKfacConfig};
use compso::obs::{names, Recorder};
use compso::tensor::Rng;
use std::collections::HashMap;
use std::time::Duration;

/// A scripted 64-step signal tape that walks the whole state machine:
/// warmup, steady measurement, exploration, a divergence spike, backoff,
/// and recovery. Pure function of the step index — every caller that
/// replays it sees the same tape.
fn scripted_signal(step: u64) -> Signals {
    Signals {
        bytes_in: 16_384,
        bytes_out: 1_024 + (step % 5) * 256,
        wall_ns: 2_000 + (step % 3) * 500,
        predicted_wall_ns: 2_000,
        error_rel: if step == 40 { 3.0 } else { 0.05 },
    }
}

fn scripted_config(seed: u64) -> ControlConfig {
    ControlConfig {
        warmup_steps: 8,
        eval_every: 4,
        patience: 1,
        explore_every: 2,
        backoff_steps: 6,
        seed,
        ..ControlConfig::default()
    }
}

/// Replays the scripted tape through a fresh controller; returns the
/// full decision trace.
fn scripted_trace(seed: u64, rec: &Recorder) -> Vec<Decision> {
    let mut ctl = Controller::new(scripted_config(seed));
    for step in 0..64 {
        ctl.observe(&scripted_signal(step), rec);
    }
    ctl.trace().to_vec()
}

#[test]
fn decision_traces_are_identical_at_every_world_size() {
    // Reference trace, computed outside any communicator.
    let reference = scripted_trace(5, &Recorder::disabled());
    assert!(reference.iter().any(|d| d.reason == Reason::WarmupExit));
    assert!(reference.iter().any(|d| d.reason == Reason::BackoffEnter));

    for world in [1usize, 2, 4] {
        let traces: Vec<Vec<Decision>> = run_ranks(world, |comm| {
            // Each rank runs its own controller instance; the barrier
            // interleaves ranks arbitrarily, which must not matter.
            comm.barrier().expect("barrier");
            scripted_trace(5, &Recorder::disabled())
        });
        for (rank, trace) in traces.iter().enumerate() {
            assert_eq!(
                trace, &reference,
                "rank {rank} of {world} diverged from the reference trace"
            );
        }
    }
}

#[test]
fn scripted_trace_reconciles_against_counters() {
    let rec = Recorder::enabled();
    let mut ctl = Controller::new(scripted_config(5));
    for step in 0..64 {
        ctl.observe(&scripted_signal(step), &rec);
    }
    ctl.reconcile(&rec)
        .expect("decision trace must reconcile against ctrl/* counters");
    assert_eq!(rec.counter(names::CTRL_DECISIONS), 64);
}

/// Trains a replicated (unsharded) workload under PowerSGD through the
/// distributed K-FAC gather at `world` ranks; returns each rank's final
/// layer-0 parameters.
fn train_powersgd(world: usize, steps: usize) -> Vec<Vec<f32>> {
    let d = data::gaussian_blobs(240, 6, 3, 0.35, 41);
    let d_ref = &d;
    run_ranks(world, move |comm| {
        let mut rng = Rng::new(29);
        let mut model = models::mlp(&[6, 16, 3], &mut rng);
        let mut opt = DistKfac::new(DistKfacConfig::default(), 11);
        let compressor = PowerSgd::rank(4);
        for step in 0..steps {
            // Replicated data: every rank computes the same gradients, so
            // any cross-world-size difference can only come from the
            // compression path.
            let (x, y) = d_ref.batch(step, 16);
            let logits = model.forward(&x, true);
            let (_, grad) = softmax_cross_entropy(&logits, &y);
            model.backward(&grad);
            opt.step(comm, &mut model, &compressor).expect("step");
            model.update_params(|p, g| p.axpy(-0.02, g));
        }
        model.layer(0).params().unwrap().as_slice().to_vec()
    })
}

#[test]
fn powersgd_training_is_bit_identical_across_1_2_4_ranks() {
    let steps = 14;
    let solo = train_powersgd(1, steps);
    for world in [2usize, 4] {
        let results = train_powersgd(world, steps);
        for (rank, params) in results.iter().enumerate() {
            assert_eq!(
                params, &solo[0],
                "rank {rank} of {world} diverged from the 1-rank trajectory"
            );
        }
    }
}

#[test]
fn controller_driven_training_survives_chaos_without_deadlock() {
    const RANKS: usize = 4;
    const STEPS: usize = 26;
    // Fast-cycling config so 26 steps cross every phase: warmup exit at
    // 3, an exploration probe on every eval, a scripted divergence spike
    // at step 16, and a short backoff that ends inside the run.
    let cfg = ControlConfig {
        warmup_steps: 3,
        eval_every: 2,
        patience: 1,
        explore_every: 1,
        backoff_steps: 3,
        seed: 1,
        candidates: vec![
            Candidate::new(Setting::compso(4e-3), 5.0, 1.0),
            Candidate::new(Setting::qsgd(8), 4.0, 1.0),
            Candidate::new(Setting::powersgd(2), 6.0, 1.0),
        ],
        ..ControlConfig::default()
    };
    let plane = FaultPlane::new(FaultConfig {
        seed: 0xBADCAB,
        drop_p: 0.02,
        corrupt_wire_p: 0.02,
        corrupt_payload_p: 0.20,
        straggler: Some((1, Duration::from_millis(1))),
        ..FaultConfig::default()
    });
    let comm_config = CommConfig {
        recv_timeout: Duration::from_secs(30),
        retry_initial: Duration::from_millis(40),
        max_retries: 10,
        ..CommConfig::default()
    };
    let rec = Recorder::enabled();
    let rec_ref = &rec;
    let cfg_ref = &cfg;
    let d = data::gaussian_blobs(320, 6, 3, 0.3, 93);
    let d_ref = &d;

    let results: Vec<(Vec<f32>, Vec<Decision>)> =
        run_ranks_with(RANKS, plane, comm_config, move |comm| {
            let mut rng = Rng::new(19);
            let mut model = models::mlp(&[6, 16, 3], &mut rng);
            let shard = d_ref.shard(comm.rank(), RANKS);
            let mut opt = DistKfac::new(DistKfacConfig::default(), 13);
            opt.set_recorder(rec_ref.clone());
            comm.set_recorder(rec_ref.clone());
            let mut ctl = Controller::new(cfg_ref.clone());
            // Live instance per setting: PowerSGD keyed state must
            // survive while its setting is held.
            let mut bank: HashMap<String, Box<dyn Compressor>> = HashMap::new();
            for step in 0..STEPS {
                let (x, y) = shard.batch(step, 8);
                let logits = model.forward(&x, true);
                let (_, grad) = softmax_cross_entropy(&logits, &y);
                model.backward(&grad);
                let setting = ctl.active_setting();
                let compressor = bank
                    .entry(setting.label())
                    .or_insert_with(|| instantiate(&setting));
                opt.step(comm, &mut model, compressor.as_ref())
                    .expect("chaos must be absorbed by the ladder, not surfaced");
                // The signal tape is a pure function of the step index —
                // per-rank byte counts only cover a rank's *own* groups,
                // so feeding them raw would desynchronize the replicas.
                // (Production shares one symmetric measurement; here the
                // tape is scripted so the campaign is reproducible.)
                let wall = 500 + (step as u64 % 4) * 100;
                ctl.observe(
                    &Signals {
                        bytes_in: 8_192,
                        bytes_out: 900 + (step as u64 % 5) * 300,
                        wall_ns: wall,
                        predicted_wall_ns: wall,
                        error_rel: if step == 16 { 2.0 } else { 0.1 },
                    },
                    rec_ref,
                );
                model.update_params(|p, g| p.axpy(-0.02, g));
            }
            (
                model.layer(0).params().unwrap().as_slice().to_vec(),
                ctl.trace().to_vec(),
            )
        });

    // No deadlock (we got here), replicas in lockstep, and every rank
    // took the same decisions.
    for rank in 1..RANKS {
        assert_eq!(
            results[rank].0, results[0].0,
            "rank {rank} parameters drifted under chaos"
        );
        assert_eq!(
            results[rank].1, results[0].1,
            "rank {rank} decisions diverged under chaos"
        );
    }
    let trace = &results[0].1;
    let families: std::collections::HashSet<&'static str> = trace
        .iter()
        .filter(|d| d.setting.family != Family::None)
        .map(|d| d.setting.family.name())
        .collect();
    assert!(
        families.len() >= 2,
        "chaos run visited only {families:?}; wanted ≥2 compressed families"
    );
    assert!(
        trace.iter().any(|d| d.reason == Reason::BackoffEnter),
        "divergence spike never engaged the ladder"
    );
    assert!(
        trace.iter().any(|d| d.reason == Reason::BackoffExit),
        "backoff never released"
    );
    // Every compressor change invalidates the gather schedule cache —
    // four ranks each see every switch.
    let switches = results[0]
        .1
        .iter()
        .filter(|d| d.switched && d.step > 0)
        .count() as u64;
    assert!(
        rec.counter(names::CTRL_SCHEDULE_INVALIDATIONS) >= switches,
        "schedule invalidations {} < switches {switches}",
        rec.counter(names::CTRL_SCHEDULE_INVALIDATIONS)
    );
}
