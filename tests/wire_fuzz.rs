//! Byte-mutation fuzz of every wire parser (ISSUE PR 3, satellite).
//!
//! Three formats cross rank boundaries and therefore parse bytes a peer
//! may have corrupted in flight:
//!
//! * `0xC5` — the serial COMPSO pipeline stream ([`Compso::decompress`]),
//! * `0xC6` — the chunked-parallel v2 stream ([`decompress_chunked`]),
//! * `0xC7` — the generic multi-layer group framing
//!   ([`Compressor::decompress_group`]),
//!
//! plus `0xCF`, the CRC32 checksum frame ([`unframe_checksummed`]) that
//! the distributed K-FAC step wraps around all of them.
//!
//! The checkpoint subsystem (ISSUE: compso-ckpt) adds parsers that read
//! bytes a *crashed process* may have torn or a hostile disk may have
//! corrupted, plus one more cross-rank wire format:
//!
//! * `0xCB` — the snapshot tensor blob ([`decode_tensors`]), which also
//!   crosses rank boundaries during the restore redistribution,
//! * `0xCD` — the snapshot manifest ([`Manifest::decode`]) and the
//!   standalone per-rank file metadata ([`RankFileMeta::decode`])
//!   exchanged in the save-time all-gather,
//! * `0xC8` — the layer-parallel baseline group framing
//!   ([`pargroup::decompress`]),
//! * `0xCA` — the PowerSGD low-rank factor stream
//!   ([`PowerSgd::decompress`], last section of this file).
//!
//! All obey the same contract as the gradient formats below.
//!
//! Contract under mutation (ISSUE wording: "decode must return `Err`,
//! never panic, never over-allocate"):
//!
//! * **Truncation** at any strict prefix must return `Err` — every
//!   format either length-prefixes its payload or reads a
//!   header-declared number of trailing values, so a shortened stream
//!   is always structurally detectable.
//! * **Arbitrary single-byte mutation** must never panic and must never
//!   amplify: if the decoder still returns `Ok`, the decoded element
//!   count stays within [`SLACK_ELEMS`] of the original. Value bits may
//!   silently change — these formats carry no internal checksum; that
//!   is exactly the gap the `0xCF` frame closes — but a flipped length
//!   prefix must never buy a hostile peer an outsized allocation.
//! * The **checksum frame** is strictly stronger: *every* single-byte
//!   mutation of a `0xCF` frame must return `Err` (CRC32 detects all
//!   single-byte payload changes; header bytes are covered by the
//!   magic / length / digest cross-checks).
//! * **Random garbage** fed to any parser must not panic, and any
//!   accidental `Ok` must still obey the allocation bound.
//!
//! The proptest shim derives each case's RNG from its case index, so a
//! failure here reproduces exactly; no shrinking, but the reported case
//! index pins the input.

use compso::ckpt::{
    decode_tensors, encode_tensors, Dtype, Manifest, RankFileMeta, TensorData, TensorEntry,
    TensorMeta,
};
use compso::comm::MembershipFrame;
use compso::core::baselines::{pargroup, PowerSgd};
use compso::core::kernels::{compress_chunked, decompress_chunked};
use compso::core::wire::{frame_checksummed, unframe_checksummed};
use compso::core::{Compressor, Compso, CompsoConfig, KernelConfig, LayerSchedule, NoCompression};
use compso::kfac::checkpoint::{decode_rejoin_delta, encode_rejoin_delta};
use compso::obs::Recorder;
use compso::tensor::Rng;
use proptest::prelude::*;

/// How many extra elements a mutated-but-`Ok` decode may report beyond
/// the original stream's element count before we call it amplification.
/// A single flipped byte in a length field can legitimately shift a
/// count by at most 255 in its lowest byte and still pass the
/// structural cross-checks (byte-budget, chunk-table, exhaustion); 64 Ki
/// elements (256 KiB of f32) is comfortably above that and comfortably
/// below anything an attacker could call an allocation win.
const SLACK_ELEMS: usize = 1 << 16;

fn total_elems(layers: &[Vec<f32>]) -> usize {
    layers.iter().map(Vec::len).sum()
}

/// XORs one byte of `bytes` in place, guaranteeing a real change.
fn flip_byte(bytes: &mut [u8], offset_seed: u64, xor: u8) {
    let idx = (offset_seed % bytes.len() as u64) as usize;
    bytes[idx] ^= if xor == 0 { 0xA5 } else { xor };
}

/// A valid serial-pipeline (`0xC5`) stream over `data`.
fn v1_stream(data: &[f32], seed: u64) -> Vec<u8> {
    let compso = Compso::new(CompsoConfig::aggressive(4e-3));
    let mut rng = Rng::new(seed);
    compso.compress(data, &mut rng)
}

/// A valid chunked v2 (`0xC6`) stream over `data` split into layers.
fn v2_stream(data: &[f32], seed: u64) -> Vec<u8> {
    let (a, b) = data.split_at(data.len() / 2);
    let layers: Vec<&[f32]> = vec![a, b];
    let sizes: Vec<usize> = layers.iter().map(|l| l.len()).collect();
    // Small chunks so multi-chunk layers (the interesting header shape)
    // appear even for short inputs.
    let schedule = LayerSchedule::build(&sizes, 64);
    let kc = KernelConfig::default();
    compress_chunked(
        &layers,
        &CompsoConfig::aggressive(4e-3),
        &kc,
        &schedule,
        &Rng::new(seed),
    )
}

/// A valid generic group (`0xC7`) stream over `data` split into layers.
/// `NoCompression` uses the default trait framing, which is the `0xC7`
/// format under test (schedule-aware compressors override it).
fn group_stream(data: &[f32], seed: u64) -> Vec<u8> {
    let (a, b) = data.split_at(data.len() / 3);
    let layers: Vec<&[f32]> = vec![a, b];
    let mut rng = Rng::new(seed);
    NoCompression.compress_group(&layers, None, &mut rng, &Recorder::disabled())
}

fn v1_decode(bytes: &[u8]) -> Result<usize, ()> {
    Compso::new(CompsoConfig::aggressive(4e-3))
        .decompress(bytes)
        .map(|out| out.len())
        .map_err(|_| ())
}

fn v2_decode(bytes: &[u8]) -> Result<usize, ()> {
    decompress_chunked(bytes)
        .map(|out| total_elems(&out))
        .map_err(|_| ())
}

fn group_decode(bytes: &[u8]) -> Result<usize, ()> {
    NoCompression
        .decompress_group(bytes, &Recorder::disabled())
        .map(|out| total_elems(&out))
        .map_err(|_| ())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn v1_truncated_stream_always_errs(
        data in proptest::collection::vec(-10.0f32..10.0, 8..1200),
        seed in any::<u64>(),
        cut_seed in any::<u64>(),
    ) {
        let stream = v1_stream(&data, seed);
        let cut = (cut_seed % stream.len() as u64) as usize;
        prop_assert!(
            v1_decode(&stream[..cut]).is_err(),
            "truncation to {cut}/{} bytes decoded Ok",
            stream.len()
        );
    }

    #[test]
    fn v1_byte_mutation_never_panics_or_amplifies(
        data in proptest::collection::vec(-10.0f32..10.0, 8..1200),
        seed in any::<u64>(),
        offset_seed in any::<u64>(),
        xor in any::<u8>(),
    ) {
        let mut stream = v1_stream(&data, seed);
        flip_byte(&mut stream, offset_seed, xor);
        if let Ok(n) = v1_decode(&stream) {
            prop_assert!(
                n <= data.len() + SLACK_ELEMS,
                "mutated stream amplified {} -> {n} elems",
                data.len()
            );
        }
    }

    #[test]
    fn v2_truncated_stream_always_errs(
        data in proptest::collection::vec(-10.0f32..10.0, 8..1200),
        seed in any::<u64>(),
        cut_seed in any::<u64>(),
    ) {
        let stream = v2_stream(&data, seed);
        let cut = (cut_seed % stream.len() as u64) as usize;
        prop_assert!(
            v2_decode(&stream[..cut]).is_err(),
            "truncation to {cut}/{} bytes decoded Ok",
            stream.len()
        );
    }

    #[test]
    fn v2_byte_mutation_never_panics_or_amplifies(
        data in proptest::collection::vec(-10.0f32..10.0, 8..1200),
        seed in any::<u64>(),
        offset_seed in any::<u64>(),
        xor in any::<u8>(),
    ) {
        let mut stream = v2_stream(&data, seed);
        flip_byte(&mut stream, offset_seed, xor);
        if let Ok(n) = v2_decode(&stream) {
            prop_assert!(
                n <= data.len() + SLACK_ELEMS,
                "mutated stream amplified {} -> {n} elems",
                data.len()
            );
        }
    }

    #[test]
    fn group_truncated_stream_always_errs(
        data in proptest::collection::vec(-10.0f32..10.0, 8..900),
        seed in any::<u64>(),
        cut_seed in any::<u64>(),
    ) {
        let stream = group_stream(&data, seed);
        let cut = (cut_seed % stream.len() as u64) as usize;
        prop_assert!(
            group_decode(&stream[..cut]).is_err(),
            "truncation to {cut}/{} bytes decoded Ok",
            stream.len()
        );
    }

    #[test]
    fn group_byte_mutation_never_panics_or_amplifies(
        data in proptest::collection::vec(-10.0f32..10.0, 8..900),
        seed in any::<u64>(),
        offset_seed in any::<u64>(),
        xor in any::<u8>(),
    ) {
        let mut stream = group_stream(&data, seed);
        flip_byte(&mut stream, offset_seed, xor);
        if let Ok(n) = group_decode(&stream) {
            prop_assert!(
                n <= data.len() + SLACK_ELEMS,
                "mutated stream amplified {} -> {n} elems",
                data.len()
            );
        }
    }

    #[test]
    fn checksum_frame_rejects_every_single_byte_mutation(
        payload in proptest::collection::vec(any::<u8>(), 0..600),
        offset_seed in any::<u64>(),
        xor in any::<u8>(),
    ) {
        let mut frame = frame_checksummed(&payload);
        flip_byte(&mut frame, offset_seed, xor);
        prop_assert!(
            unframe_checksummed(&frame).is_err(),
            "single-byte mutation slipped past the CRC frame"
        );
    }

    #[test]
    fn checksum_frame_rejects_every_truncation(
        payload in proptest::collection::vec(any::<u8>(), 0..600),
        cut_seed in any::<u64>(),
    ) {
        let frame = frame_checksummed(&payload);
        let cut = (cut_seed % frame.len() as u64) as usize;
        prop_assert!(
            unframe_checksummed(&frame[..cut]).is_err(),
            "truncation to {cut}/{} bytes unframed Ok",
            frame.len()
        );
    }

    #[test]
    fn random_garbage_never_panics_any_parser(
        garbage in proptest::collection::vec(any::<u8>(), 0..1500),
    ) {
        // Any of these may return Ok by astronomical coincidence; the
        // contract is only "no panic, no amplification".
        for decode in [v1_decode, v2_decode, group_decode] {
            if let Ok(n) = decode(&garbage) {
                prop_assert!(
                    n <= 8 * garbage.len() + SLACK_ELEMS,
                    "garbage decoded to {n} elems from {} bytes",
                    garbage.len()
                );
            }
        }
        let _ = unframe_checksummed(&garbage);
    }

    #[test]
    fn valid_streams_still_roundtrip(
        data in proptest::collection::vec(-10.0f32..10.0, 8..900),
        seed in any::<u64>(),
    ) {
        // Sanity anchor: the unmutated encodings decode to the original
        // shape, so the mutation tests above are exercising real
        // parsers rather than vacuous Errs.
        prop_assert_eq!(v1_decode(&v1_stream(&data, seed)), Ok(data.len()));
        prop_assert_eq!(v2_decode(&v2_stream(&data, seed)), Ok(data.len()));
        prop_assert_eq!(group_decode(&group_stream(&data, seed)), Ok(data.len()));
        let framed = frame_checksummed(&v1_stream(&data, seed));
        prop_assert!(unframe_checksummed(&framed).is_ok());
    }
}

// ---------------------------------------------------------------------
// Checkpoint formats (ISSUE: compso-ckpt satellite): manifest (0xCD),
// standalone rank metadata, tensor blob (0xCB), and the layer-parallel
// baseline group (0xC8).
// ---------------------------------------------------------------------

/// A structurally valid per-rank file description: offsets tile the
/// file contiguously and `raw_len` matches `rows × cols × width`, the
/// invariants the parser cross-checks.
fn rank_meta_fixture(rank: u32, rng: &mut Rng) -> RankFileMeta {
    let n = 1 + (rng.next_u64() % 4) as usize;
    let mut tensors = Vec::with_capacity(n);
    let mut offset = 0u64;
    for i in 0..n {
        let (dtype, width) = match rng.next_u64() % 3 {
            0 => (Dtype::F32, 4u64),
            1 => (Dtype::F64, 8),
            _ => (Dtype::U64, 8),
        };
        let rows = 1 + rng.next_u64() % 7;
        let cols = 1 + rng.next_u64() % 7;
        let enc_len = 13 + rng.next_u64() % 64;
        tensors.push(TensorMeta {
            name: format!("fuzz/{rank}/{i}"),
            dtype,
            rows,
            cols,
            offset,
            enc_len,
            raw_len: rows * cols * width,
            crc32: rng.next_u64() as u32,
        });
        offset += enc_len;
    }
    RankFileMeta {
        rank,
        file_len: offset,
        file_crc32: rng.next_u64() as u32,
        tensors,
    }
}

fn manifest_stream(seed: u64) -> Vec<u8> {
    let mut rng = Rng::new(seed);
    let world = 1 + (rng.next_u64() % 4) as u32;
    let ranks = (0..world).map(|r| rank_meta_fixture(r, &mut rng)).collect();
    Manifest {
        step: rng.next_u64() % 10_000,
        world_size: world,
        fingerprint: rng.next_u64(),
        epoch: rng.next_u64() % 100,
        ranks,
    }
    .encode()
}

fn rank_meta_stream(seed: u64) -> Vec<u8> {
    let mut rng = Rng::new(seed);
    rank_meta_fixture((rng.next_u64() % 8) as u32, &mut rng).encode()
}

fn tensors_stream(data: &[f32], seed: u64) -> Vec<u8> {
    let mut rng = Rng::new(seed);
    let entries = vec![
        TensorEntry::vector("fuzz/f32", TensorData::F32(data.to_vec())),
        TensorEntry::vector(
            "fuzz/u64",
            TensorData::U64((0..9).map(|_| rng.next_u64()).collect()),
        ),
        TensorEntry::vector(
            "fuzz/f64",
            TensorData::F64((0..5).map(|_| rng.normal_f64()).collect()),
        ),
    ];
    encode_tensors(&entries)
}

fn pargroup_stream(data: &[f32], seed: u64) -> Vec<u8> {
    let (a, b) = data.split_at(data.len() / 3);
    let layers: Vec<&[f32]> = vec![a, b];
    let rng = Rng::new(seed);
    pargroup::compress(&layers, |i, layer| {
        let mut lrng = rng.fork(i as u64);
        NoCompression.compress(layer, &mut lrng)
    })
}

/// Decoded "size" of a manifest: total index entries across ranks.
fn manifest_decode(bytes: &[u8]) -> Result<usize, ()> {
    Manifest::decode(bytes)
        .map(|m| m.ranks.iter().map(|r| r.tensors.len()).sum())
        .map_err(|_| ())
}

fn rank_meta_decode(bytes: &[u8]) -> Result<usize, ()> {
    RankFileMeta::decode(bytes)
        .map(|m| m.tensors.len())
        .map_err(|_| ())
}

/// Decoded size of a tensor blob in raw payload bytes.
fn tensors_decode(bytes: &[u8]) -> Result<usize, ()> {
    decode_tensors(bytes)
        .map(|entries| {
            entries
                .iter()
                .map(|e| match &e.data {
                    TensorData::F32(v) => v.len() * 4,
                    TensorData::F64(v) => v.len() * 8,
                    TensorData::U64(v) => v.len() * 8,
                })
                .sum()
        })
        .map_err(|_| ())
}

fn pargroup_decode(bytes: &[u8]) -> Result<usize, ()> {
    pargroup::decompress(bytes, |b| NoCompression.decompress(b))
        .map(|out| total_elems(&out))
        .map_err(|_| ())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn manifest_truncation_always_errs(
        seed in any::<u64>(),
        cut_seed in any::<u64>(),
    ) {
        // Both the full manifest and the standalone rank metadata (the
        // save-time all-gather payload) length-check every field and
        // reject trailing bytes, so any strict prefix must fail.
        for stream in [manifest_stream(seed), rank_meta_stream(seed)] {
            let cut = (cut_seed % stream.len() as u64) as usize;
            prop_assert!(
                manifest_decode(&stream[..cut]).is_err(),
                "manifest prefix {cut}/{} decoded Ok",
                stream.len()
            );
            prop_assert!(rank_meta_decode(&stream[..cut]).is_err());
        }
    }

    #[test]
    fn manifest_mutation_never_panics_or_amplifies(
        seed in any::<u64>(),
        offset_seed in any::<u64>(),
        xor in any::<u8>(),
    ) {
        // A flipped byte may survive (the manifest itself carries no
        // CRC — the store wraps it in the 0xCF frame on disk), but a
        // surviving parse must stay within the structural caps: entry
        // counts are cross-checked against the buffer size before any
        // allocation.
        let mut stream = manifest_stream(seed);
        let orig_entries = manifest_decode(&stream).unwrap();
        flip_byte(&mut stream, offset_seed, xor);
        if let Ok(n) = manifest_decode(&stream) {
            prop_assert!(
                n <= orig_entries + stream.len() / 47,
                "mutated manifest amplified {orig_entries} -> {n} entries"
            );
        }
        let mut meta = rank_meta_stream(seed);
        flip_byte(&mut meta, offset_seed, xor);
        if let Ok(n) = rank_meta_decode(&meta) {
            prop_assert!(n <= meta.len() / 47 + 1);
        }
    }

    #[test]
    fn tensor_blob_truncation_always_errs(
        data in proptest::collection::vec(-10.0f32..10.0, 4..600),
        seed in any::<u64>(),
        cut_seed in any::<u64>(),
    ) {
        let stream = tensors_stream(&data, seed);
        let cut = (cut_seed % stream.len() as u64) as usize;
        prop_assert!(
            tensors_decode(&stream[..cut]).is_err(),
            "tensor blob prefix {cut}/{} decoded Ok",
            stream.len()
        );
    }

    #[test]
    fn tensor_blob_mutation_never_panics_or_amplifies(
        data in proptest::collection::vec(-10.0f32..10.0, 4..600),
        seed in any::<u64>(),
        offset_seed in any::<u64>(),
        xor in any::<u8>(),
    ) {
        let mut stream = tensors_stream(&data, seed);
        flip_byte(&mut stream, offset_seed, xor);
        if let Ok(raw_bytes) = tensors_decode(&stream) {
            prop_assert!(
                raw_bytes <= 8 * stream.len() + SLACK_ELEMS,
                "mutated tensor blob amplified to {raw_bytes} raw bytes \
                 from {} wire bytes",
                stream.len()
            );
        }
    }

    #[test]
    fn pargroup_truncation_always_errs(
        data in proptest::collection::vec(-10.0f32..10.0, 8..900),
        seed in any::<u64>(),
        cut_seed in any::<u64>(),
    ) {
        let stream = pargroup_stream(&data, seed);
        let cut = (cut_seed % stream.len() as u64) as usize;
        prop_assert!(
            pargroup_decode(&stream[..cut]).is_err(),
            "pargroup prefix {cut}/{} decoded Ok",
            stream.len()
        );
    }

    #[test]
    fn pargroup_mutation_never_panics_or_amplifies(
        data in proptest::collection::vec(-10.0f32..10.0, 8..900),
        seed in any::<u64>(),
        offset_seed in any::<u64>(),
        xor in any::<u8>(),
    ) {
        let mut stream = pargroup_stream(&data, seed);
        flip_byte(&mut stream, offset_seed, xor);
        if let Ok(n) = pargroup_decode(&stream) {
            prop_assert!(
                n <= data.len() + SLACK_ELEMS,
                "mutated pargroup amplified {} -> {n} elems",
                data.len()
            );
        }
    }

    #[test]
    fn random_garbage_never_panics_checkpoint_parsers(
        garbage in proptest::collection::vec(any::<u8>(), 0..1500),
    ) {
        for decode in [manifest_decode, rank_meta_decode, tensors_decode, pargroup_decode] {
            if let Ok(n) = decode(&garbage) {
                prop_assert!(
                    n <= 8 * garbage.len() + SLACK_ELEMS,
                    "garbage decoded to size {n} from {} bytes",
                    garbage.len()
                );
            }
        }
    }

    #[test]
    fn valid_checkpoint_streams_still_roundtrip(
        data in proptest::collection::vec(-10.0f32..10.0, 8..600),
        seed in any::<u64>(),
    ) {
        // Sanity anchors, as above.
        prop_assert!(manifest_decode(&manifest_stream(seed)).is_ok());
        prop_assert!(rank_meta_decode(&rank_meta_stream(seed)).is_ok());
        let expected_raw = data.len() * 4 + 9 * 8 + 5 * 8;
        prop_assert_eq!(tensors_decode(&tensors_stream(&data, seed)), Ok(expected_raw));
        prop_assert_eq!(pargroup_decode(&pargroup_stream(&data, seed)), Ok(data.len()));
    }
}

// ---------------------------------------------------------------------
// Elastic-membership formats (ISSUE: elastic satellite): the `0xC9`
// membership frame (proposals, rejoin requests, welcomes — parsed from
// raw frames a *dead or hostile* peer may have left in flight) and the
// `0xCC` rejoin factor delta (CRC-enveloped, parsed by every rank
// during a live readmission).
// ---------------------------------------------------------------------

/// One of the three membership frame kinds, seed-selected so all wire
/// shapes (including empty and multi-entry rank lists) appear.
fn membership_stream(seed: u64) -> Vec<u8> {
    let mut rng = Rng::new(seed);
    let nranks = (rng.next_u64() % 6) as usize;
    let ranks: Vec<u32> = (0..nranks)
        .map(|_| (rng.next_u64() % 4096) as u32)
        .collect();
    let frame = match rng.next_u64() % 3 {
        0 => MembershipFrame::Proposal {
            epoch: rng.next_u64() % 1_000,
            round: (rng.next_u64() % 64) as u32,
            sender: (rng.next_u64() % 4096) as u32,
            ranks,
        },
        1 => MembershipFrame::RejoinRequest {
            epoch: rng.next_u64() % 1_000,
            sender: (rng.next_u64() % 4096) as u32,
        },
        _ => MembershipFrame::Welcome {
            epoch: rng.next_u64() % 1_000,
            sender: (rng.next_u64() % 4096) as u32,
            barrier_gen: rng.next_u64() % 10_000,
            step: rng.next_u64() % 10_000,
            ranks,
        },
    };
    frame.encode()
}

/// Decoded "size" of a membership frame: its rank-list length.
fn membership_decode(bytes: &[u8]) -> Result<usize, ()> {
    MembershipFrame::decode(bytes)
        .map(|f| match f {
            MembershipFrame::Proposal { ranks, .. } | MembershipFrame::Welcome { ranks, .. } => {
                ranks.len()
            }
            MembershipFrame::RejoinRequest { .. } => 0,
        })
        .map_err(|_| ())
}

fn rejoin_delta_stream(data: &[f32], seed: u64) -> Vec<u8> {
    let mut rng = Rng::new(seed);
    let entries = vec![
        // lint:allow(counter-registry): synthetic tensor name for the fuzz generator, not a counter
        TensorEntry::vector("kfac/3/a_factor", TensorData::F32(data.to_vec())),
        TensorEntry::vector(
            // lint:allow(counter-registry): synthetic tensor name (fuzz input).
            "kfac/3/meta",
            TensorData::U64((0..5).map(|_| rng.next_u64() % 2).collect()),
        ),
    ];
    encode_rejoin_delta(
        rng.next_u64() % 1_000,
        (rng.next_u64() % 4096) as u32,
        &entries,
    )
}

/// Decoded size of a rejoin delta in raw payload bytes.
fn rejoin_delta_decode(bytes: &[u8]) -> Result<usize, ()> {
    decode_rejoin_delta(bytes)
        .map(|(_, _, entries)| {
            entries
                .iter()
                .map(|e| match &e.data {
                    TensorData::F32(v) => v.len() * 4,
                    TensorData::F64(v) => v.len() * 8,
                    TensorData::U64(v) => v.len() * 8,
                })
                .sum()
        })
        .map_err(|_| ())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn membership_frame_truncation_always_errs(
        seed in any::<u64>(),
        cut_seed in any::<u64>(),
    ) {
        let stream = membership_stream(seed);
        let cut = (cut_seed % stream.len() as u64) as usize;
        prop_assert!(
            membership_decode(&stream[..cut]).is_err(),
            "membership prefix {cut}/{} decoded Ok",
            stream.len()
        );
    }

    #[test]
    fn membership_frame_mutation_never_panics_or_amplifies(
        seed in any::<u64>(),
        offset_seed in any::<u64>(),
        xor in any::<u8>(),
    ) {
        // Membership frames travel as raw (sequence-less) data frames,
        // so their CRC lives in the transport envelope, not the frame:
        // a mutated frame may still parse, but the rank-list cap
        // (RANKS_MAX = 4096) bounds what a flipped count byte can buy,
        // and a kind/magic flip must never panic.
        let mut stream = membership_stream(seed);
        flip_byte(&mut stream, offset_seed, xor);
        if let Ok(n) = membership_decode(&stream) {
            prop_assert!(n <= 4096, "mutated membership frame grew {n} ranks");
        }
    }

    #[test]
    fn rejoin_delta_rejects_every_single_byte_mutation(
        data in proptest::collection::vec(-10.0f32..10.0, 4..400),
        seed in any::<u64>(),
        offset_seed in any::<u64>(),
        xor in any::<u8>(),
    ) {
        // The rejoin delta installs optimizer state on a live rank, so
        // it gets the strong contract: the 0xCF envelope must reject
        // every single-byte change outright.
        let mut stream = rejoin_delta_stream(&data, seed);
        flip_byte(&mut stream, offset_seed, xor);
        prop_assert!(
            rejoin_delta_decode(&stream).is_err(),
            "single-byte mutation slipped past the rejoin delta CRC"
        );
    }

    #[test]
    fn rejoin_delta_truncation_always_errs(
        data in proptest::collection::vec(-10.0f32..10.0, 4..400),
        seed in any::<u64>(),
        cut_seed in any::<u64>(),
    ) {
        let stream = rejoin_delta_stream(&data, seed);
        let cut = (cut_seed % stream.len() as u64) as usize;
        prop_assert!(
            rejoin_delta_decode(&stream[..cut]).is_err(),
            "rejoin delta prefix {cut}/{} decoded Ok",
            stream.len()
        );
    }

    #[test]
    fn random_garbage_never_panics_elastic_parsers(
        garbage in proptest::collection::vec(any::<u8>(), 0..1500),
    ) {
        if let Ok(n) = membership_decode(&garbage) {
            prop_assert!(n <= 4096);
        }
        if let Ok(raw) = rejoin_delta_decode(&garbage) {
            prop_assert!(raw <= 8 * garbage.len() + SLACK_ELEMS);
        }
    }

    #[test]
    fn valid_elastic_streams_still_roundtrip(
        data in proptest::collection::vec(-10.0f32..10.0, 4..400),
        seed in any::<u64>(),
    ) {
        prop_assert!(membership_decode(&membership_stream(seed)).is_ok());
        let expected_raw = data.len() * 4 + 5 * 8;
        prop_assert_eq!(
            rejoin_delta_decode(&rejoin_delta_stream(&data, seed)),
            Ok(expected_raw)
        );
    }
}

// ---------------------------------------------------------------------
// PowerSGD low-rank factor stream (ISSUE: adaptive control plane): the
// `0xCA` frame carries a `P̂`/`Q` factor pair (or a raw escape for
// inputs too small to pay for factorization). Its defense against
// allocation amplification is structural: the decoder *recomputes* the
// canonical matrix shape from the element count and rejects any header
// whose rows/cols disagree, so a flipped dimension byte cannot buy a
// rows×cols allocation unbacked by the declared count.
// ---------------------------------------------------------------------

fn powersgd_stream(data: &[f32], seed: u64) -> Vec<u8> {
    let mut rng = Rng::new(seed);
    PowerSgd::rank(2).compress(data, &mut rng)
}

fn powersgd_decode(bytes: &[u8]) -> Result<usize, ()> {
    PowerSgd::rank(2)
        .decompress(bytes)
        .map(|out| out.len())
        .map_err(|_| ())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn powersgd_truncation_always_errs(
        data in proptest::collection::vec(-10.0f32..10.0, 2..1200),
        seed in any::<u64>(),
        cut_seed in any::<u64>(),
    ) {
        let stream = powersgd_stream(&data, seed);
        let cut = (cut_seed % stream.len() as u64) as usize;
        prop_assert!(
            powersgd_decode(&stream[..cut]).is_err(),
            "powersgd prefix {cut}/{} decoded Ok",
            stream.len()
        );
    }

    #[test]
    fn powersgd_mutation_never_panics_or_amplifies(
        data in proptest::collection::vec(-10.0f32..10.0, 2..1200),
        seed in any::<u64>(),
        offset_seed in any::<u64>(),
        xor in any::<u8>(),
    ) {
        // A surviving parse can only change *values* (factor floats have
        // no checksum — the 0xCF envelope covers that in transit); the
        // canonical-shape cross-check pins the decoded length to the
        // declared count, which a flipped count byte can move by at most
        // its byte weight before the shape/exhaustion checks fire.
        let mut stream = powersgd_stream(&data, seed);
        flip_byte(&mut stream, offset_seed, xor);
        if let Ok(n) = powersgd_decode(&stream) {
            prop_assert!(
                n <= data.len() + SLACK_ELEMS,
                "mutated powersgd stream amplified {} -> {n} elems",
                data.len()
            );
        }
    }

    #[test]
    fn powersgd_garbage_never_panics(
        garbage in proptest::collection::vec(any::<u8>(), 0..1500),
    ) {
        if let Ok(n) = powersgd_decode(&garbage) {
            prop_assert!(
                n <= 8 * garbage.len() + SLACK_ELEMS,
                "garbage decoded to {n} elems from {} bytes",
                garbage.len()
            );
        }
    }

    #[test]
    fn powersgd_valid_streams_still_roundtrip(
        data in proptest::collection::vec(-10.0f32..10.0, 2..1200),
        seed in any::<u64>(),
    ) {
        // Sanity anchor: both wire modes (raw escape for tiny inputs,
        // low-rank factors for larger ones) decode to the input length.
        prop_assert_eq!(powersgd_decode(&powersgd_stream(&data, seed)), Ok(data.len()));
    }
}
