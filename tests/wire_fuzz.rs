//! Byte-mutation fuzz of every wire parser (ISSUE PR 3, satellite).
//!
//! Three formats cross rank boundaries and therefore parse bytes a peer
//! may have corrupted in flight:
//!
//! * `0xC5` — the serial COMPSO pipeline stream ([`Compso::decompress`]),
//! * `0xC6` — the chunked-parallel v2 stream ([`decompress_chunked`]),
//! * `0xC7` — the generic multi-layer group framing
//!   ([`Compressor::decompress_group`]),
//!
//! plus `0xCF`, the CRC32 checksum frame ([`unframe_checksummed`]) that
//! the distributed K-FAC step wraps around all of them.
//!
//! Contract under mutation (ISSUE wording: "decode must return `Err`,
//! never panic, never over-allocate"):
//!
//! * **Truncation** at any strict prefix must return `Err` — every
//!   format either length-prefixes its payload or reads a
//!   header-declared number of trailing values, so a shortened stream
//!   is always structurally detectable.
//! * **Arbitrary single-byte mutation** must never panic and must never
//!   amplify: if the decoder still returns `Ok`, the decoded element
//!   count stays within [`SLACK_ELEMS`] of the original. Value bits may
//!   silently change — these formats carry no internal checksum; that
//!   is exactly the gap the `0xCF` frame closes — but a flipped length
//!   prefix must never buy a hostile peer an outsized allocation.
//! * The **checksum frame** is strictly stronger: *every* single-byte
//!   mutation of a `0xCF` frame must return `Err` (CRC32 detects all
//!   single-byte payload changes; header bytes are covered by the
//!   magic / length / digest cross-checks).
//! * **Random garbage** fed to any parser must not panic, and any
//!   accidental `Ok` must still obey the allocation bound.
//!
//! The proptest shim derives each case's RNG from its case index, so a
//! failure here reproduces exactly; no shrinking, but the reported case
//! index pins the input.

use compso::core::kernels::{compress_chunked, decompress_chunked};
use compso::core::wire::{frame_checksummed, unframe_checksummed};
use compso::core::{Compressor, Compso, CompsoConfig, KernelConfig, LayerSchedule, NoCompression};
use compso::obs::Recorder;
use compso::tensor::Rng;
use proptest::prelude::*;

/// How many extra elements a mutated-but-`Ok` decode may report beyond
/// the original stream's element count before we call it amplification.
/// A single flipped byte in a length field can legitimately shift a
/// count by at most 255 in its lowest byte and still pass the
/// structural cross-checks (byte-budget, chunk-table, exhaustion); 64 Ki
/// elements (256 KiB of f32) is comfortably above that and comfortably
/// below anything an attacker could call an allocation win.
const SLACK_ELEMS: usize = 1 << 16;

fn total_elems(layers: &[Vec<f32>]) -> usize {
    layers.iter().map(Vec::len).sum()
}

/// XORs one byte of `bytes` in place, guaranteeing a real change.
fn flip_byte(bytes: &mut [u8], offset_seed: u64, xor: u8) {
    let idx = (offset_seed % bytes.len() as u64) as usize;
    bytes[idx] ^= if xor == 0 { 0xA5 } else { xor };
}

/// A valid serial-pipeline (`0xC5`) stream over `data`.
fn v1_stream(data: &[f32], seed: u64) -> Vec<u8> {
    let compso = Compso::new(CompsoConfig::aggressive(4e-3));
    let mut rng = Rng::new(seed);
    compso.compress(data, &mut rng)
}

/// A valid chunked v2 (`0xC6`) stream over `data` split into layers.
fn v2_stream(data: &[f32], seed: u64) -> Vec<u8> {
    let (a, b) = data.split_at(data.len() / 2);
    let layers: Vec<&[f32]> = vec![a, b];
    let sizes: Vec<usize> = layers.iter().map(|l| l.len()).collect();
    // Small chunks so multi-chunk layers (the interesting header shape)
    // appear even for short inputs.
    let schedule = LayerSchedule::build(&sizes, 64);
    let kc = KernelConfig::default();
    compress_chunked(
        &layers,
        &CompsoConfig::aggressive(4e-3),
        &kc,
        &schedule,
        &Rng::new(seed),
    )
}

/// A valid generic group (`0xC7`) stream over `data` split into layers.
/// `NoCompression` uses the default trait framing, which is the `0xC7`
/// format under test (schedule-aware compressors override it).
fn group_stream(data: &[f32], seed: u64) -> Vec<u8> {
    let (a, b) = data.split_at(data.len() / 3);
    let layers: Vec<&[f32]> = vec![a, b];
    let mut rng = Rng::new(seed);
    NoCompression.compress_group(&layers, None, &mut rng, &Recorder::disabled())
}

fn v1_decode(bytes: &[u8]) -> Result<usize, ()> {
    Compso::new(CompsoConfig::aggressive(4e-3))
        .decompress(bytes)
        .map(|out| out.len())
        .map_err(|_| ())
}

fn v2_decode(bytes: &[u8]) -> Result<usize, ()> {
    decompress_chunked(bytes)
        .map(|out| total_elems(&out))
        .map_err(|_| ())
}

fn group_decode(bytes: &[u8]) -> Result<usize, ()> {
    NoCompression
        .decompress_group(bytes, &Recorder::disabled())
        .map(|out| total_elems(&out))
        .map_err(|_| ())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn v1_truncated_stream_always_errs(
        data in proptest::collection::vec(-10.0f32..10.0, 8..1200),
        seed in any::<u64>(),
        cut_seed in any::<u64>(),
    ) {
        let stream = v1_stream(&data, seed);
        let cut = (cut_seed % stream.len() as u64) as usize;
        prop_assert!(
            v1_decode(&stream[..cut]).is_err(),
            "truncation to {cut}/{} bytes decoded Ok",
            stream.len()
        );
    }

    #[test]
    fn v1_byte_mutation_never_panics_or_amplifies(
        data in proptest::collection::vec(-10.0f32..10.0, 8..1200),
        seed in any::<u64>(),
        offset_seed in any::<u64>(),
        xor in any::<u8>(),
    ) {
        let mut stream = v1_stream(&data, seed);
        flip_byte(&mut stream, offset_seed, xor);
        if let Ok(n) = v1_decode(&stream) {
            prop_assert!(
                n <= data.len() + SLACK_ELEMS,
                "mutated stream amplified {} -> {n} elems",
                data.len()
            );
        }
    }

    #[test]
    fn v2_truncated_stream_always_errs(
        data in proptest::collection::vec(-10.0f32..10.0, 8..1200),
        seed in any::<u64>(),
        cut_seed in any::<u64>(),
    ) {
        let stream = v2_stream(&data, seed);
        let cut = (cut_seed % stream.len() as u64) as usize;
        prop_assert!(
            v2_decode(&stream[..cut]).is_err(),
            "truncation to {cut}/{} bytes decoded Ok",
            stream.len()
        );
    }

    #[test]
    fn v2_byte_mutation_never_panics_or_amplifies(
        data in proptest::collection::vec(-10.0f32..10.0, 8..1200),
        seed in any::<u64>(),
        offset_seed in any::<u64>(),
        xor in any::<u8>(),
    ) {
        let mut stream = v2_stream(&data, seed);
        flip_byte(&mut stream, offset_seed, xor);
        if let Ok(n) = v2_decode(&stream) {
            prop_assert!(
                n <= data.len() + SLACK_ELEMS,
                "mutated stream amplified {} -> {n} elems",
                data.len()
            );
        }
    }

    #[test]
    fn group_truncated_stream_always_errs(
        data in proptest::collection::vec(-10.0f32..10.0, 8..900),
        seed in any::<u64>(),
        cut_seed in any::<u64>(),
    ) {
        let stream = group_stream(&data, seed);
        let cut = (cut_seed % stream.len() as u64) as usize;
        prop_assert!(
            group_decode(&stream[..cut]).is_err(),
            "truncation to {cut}/{} bytes decoded Ok",
            stream.len()
        );
    }

    #[test]
    fn group_byte_mutation_never_panics_or_amplifies(
        data in proptest::collection::vec(-10.0f32..10.0, 8..900),
        seed in any::<u64>(),
        offset_seed in any::<u64>(),
        xor in any::<u8>(),
    ) {
        let mut stream = group_stream(&data, seed);
        flip_byte(&mut stream, offset_seed, xor);
        if let Ok(n) = group_decode(&stream) {
            prop_assert!(
                n <= data.len() + SLACK_ELEMS,
                "mutated stream amplified {} -> {n} elems",
                data.len()
            );
        }
    }

    #[test]
    fn checksum_frame_rejects_every_single_byte_mutation(
        payload in proptest::collection::vec(any::<u8>(), 0..600),
        offset_seed in any::<u64>(),
        xor in any::<u8>(),
    ) {
        let mut frame = frame_checksummed(&payload);
        flip_byte(&mut frame, offset_seed, xor);
        prop_assert!(
            unframe_checksummed(&frame).is_err(),
            "single-byte mutation slipped past the CRC frame"
        );
    }

    #[test]
    fn checksum_frame_rejects_every_truncation(
        payload in proptest::collection::vec(any::<u8>(), 0..600),
        cut_seed in any::<u64>(),
    ) {
        let frame = frame_checksummed(&payload);
        let cut = (cut_seed % frame.len() as u64) as usize;
        prop_assert!(
            unframe_checksummed(&frame[..cut]).is_err(),
            "truncation to {cut}/{} bytes unframed Ok",
            frame.len()
        );
    }

    #[test]
    fn random_garbage_never_panics_any_parser(
        garbage in proptest::collection::vec(any::<u8>(), 0..1500),
    ) {
        // Any of these may return Ok by astronomical coincidence; the
        // contract is only "no panic, no amplification".
        for decode in [v1_decode, v2_decode, group_decode] {
            if let Ok(n) = decode(&garbage) {
                prop_assert!(
                    n <= 8 * garbage.len() + SLACK_ELEMS,
                    "garbage decoded to {n} elems from {} bytes",
                    garbage.len()
                );
            }
        }
        let _ = unframe_checksummed(&garbage);
    }

    #[test]
    fn valid_streams_still_roundtrip(
        data in proptest::collection::vec(-10.0f32..10.0, 8..900),
        seed in any::<u64>(),
    ) {
        // Sanity anchor: the unmutated encodings decode to the original
        // shape, so the mutation tests above are exercising real
        // parsers rather than vacuous Errs.
        prop_assert_eq!(v1_decode(&v1_stream(&data, seed)), Ok(data.len()));
        prop_assert_eq!(v2_decode(&v2_stream(&data, seed)), Ok(data.len()));
        prop_assert_eq!(group_decode(&group_stream(&data, seed)), Ok(data.len()));
        let framed = frame_checksummed(&v1_stream(&data, seed));
        prop_assert!(unframe_checksummed(&framed).is_ok());
    }
}
