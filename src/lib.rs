//! # compso
//!
//! Facade crate for the COMPSO reproduction (PPoPP '25): re-exports every
//! workspace crate under one roof so examples, integration tests, and
//! downstream users can depend on a single package.
//!
//! * [`core`](compso_core) — the COMPSO compressor and baselines;
//! * [`tensor`](compso_tensor) — dense linear algebra and the PRNG;
//! * [`dnn`](compso_dnn) — the DNN training substrate;
//! * [`kfac`](compso_kfac) — (distributed) K-FAC optimizers;
//! * [`ckpt`](compso_ckpt) — compressed, CRC-framed checkpoint/restore;
//! * [`comm`](compso_comm) — collectives and network models;
//! * [`sim`](compso_sim) — the cluster performance simulator;
//! * [`obs`](compso_obs) — step-level observability (timers, counters,
//!   per-step JSON reports).
//!
//! Quick start:
//!
//! ```
//! use compso::core::{Compso, CompsoConfig, Compressor};
//! use compso::tensor::Rng;
//!
//! let gradients = vec![0.001f32, -0.0002, 0.04, 0.0, -0.015];
//! let compressor = Compso::new(CompsoConfig::aggressive(4e-3));
//! let mut rng = Rng::new(42);
//! let bytes = compressor.compress(&gradients, &mut rng);
//! let restored = compressor.decompress(&bytes).unwrap();
//! assert_eq!(restored.len(), gradients.len());
//! ```

pub use compso_ckpt as ckpt;
pub use compso_comm as comm;
pub use compso_core as core;
pub use compso_ctrl as ctrl;
pub use compso_dnn as dnn;
pub use compso_kfac as kfac;
pub use compso_obs as obs;
pub use compso_sim as sim;
pub use compso_tensor as tensor;
