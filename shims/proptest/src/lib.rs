//! Offline shim for the slice of [proptest](https://docs.rs/proptest) this
//! workspace uses.
//!
//! Supports the `proptest! { #![proptest_config(..)] #[test] fn f(x in
//! strategy, ..) { .. } }` macro form, numeric-range strategies,
//! `any::<T>()`, tuple strategies with `prop_map`, and
//! `proptest::collection::vec`. No shrinking: failures report the case
//! index, and re-running is deterministic because every case's RNG seed is
//! a pure function of the case index.

use std::ops::Range;

/// Deterministic splitmix64 generator driving value generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator (each test case uses its case index).
    pub fn deterministic(seed: u64) -> Self {
        TestRng {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
        }
    }

    /// Next 64 uniform random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator (proptest's `Strategy`, minus shrinking).
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! int_range_incl_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (*self.start() as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_range_incl_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64() as $t;
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        // Finite, broadly ranged values (proptest's any::<f32>() includes
        // specials; the tests here only need finite coverage).
        ((rng.unit_f64() - 0.5) * 2e6) as f32
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.unit_f64() - 0.5) * 2e12
    }
}

macro_rules! arbitrary_tuple {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    )+};
}

arbitrary_tuple! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

/// Strategy produced by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` strategy constructor.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Per-test configuration (`cases` is the only knob this shim honors).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and length in `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `vec(element, len_range)` — a `Vec` whose length is drawn from
    /// `len`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Drop-in replacement for `proptest::prelude::*`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// `assert!` with proptest's spelling (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// `assert_eq!` with proptest's spelling.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// `assert_ne!` with proptest's spelling.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// The `proptest!` block macro: expands each contained function into a
/// `#[test]` that draws its arguments from the given strategies for
/// `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:tt)*) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases as u64 {
                    let mut proptest_rng = $crate::TestRng::deterministic(case);
                    $crate::__proptest_bind!(proptest_rng, $($arg)*);
                    $body
                }
            }
        )+
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:tt)*) $body:block
        )+
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg)*) $body
            )+
        }
    };
}

/// Internal: binds `pattern in strategy` argument lists.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $pat:pat in $strat:expr $(, $($rest:tt)*)?) => {
        let $pat = $crate::Strategy::generate(&$strat, &mut $rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::deterministic(7);
        for _ in 0..1000 {
            let v = crate::Strategy::generate(&(5usize..50), &mut rng);
            assert!((5..50).contains(&v));
            let f = crate::Strategy::generate(&(-2.0f32..3.0), &mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_length_in_range() {
        let mut rng = crate::TestRng::deterministic(9);
        for _ in 0..200 {
            let v =
                crate::Strategy::generate(&crate::collection::vec(0.0f32..1.0, 3..17), &mut rng);
            assert!((3..17).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::deterministic(1);
        let mut b = crate::TestRng::deterministic(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_single_arg(x in 0u32..100) {
            prop_assert!(x < 100);
        }

        #[test]
        fn macro_multi_arg_and_tuples(
            v in crate::collection::vec(any::<u32>(), 0..20),
            (a, b) in (1usize..5, 1usize..5).prop_map(|(x, y)| (x, y)),
            flag in any::<bool>(),
        ) {
            prop_assert!(v.len() < 20);
            prop_assert!(a < 5 && b < 5);
            let _ = flag;
        }
    }

    proptest! {
        #[test]
        fn macro_default_config(x in 0u8..10) {
            prop_assert_ne!(x, 200);
        }
    }
}
