//! Offline shim for the slice of [criterion](https://docs.rs/criterion)
//! this workspace uses.
//!
//! Provides `criterion_group!`/`criterion_main!`, benchmark groups with
//! `bench_function`/`bench_with_input`, `Throughput`, `BenchmarkId`, and
//! `black_box`. Measurement is a deliberately small fixed-iteration timer
//! (median of `sample_size` samples after one warm-up) printed as
//! `group/id  time  [throughput]` — enough to compare kernels locally and
//! to keep `cargo bench` runs fast; it is not a statistical harness.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation attached to a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-benchmark timing handle passed to bench closures.
pub struct Bencher {
    /// Median wall time of one iteration, filled by [`Bencher::iter`].
    elapsed: Duration,
    samples: usize,
}

impl Bencher {
    /// Times `f`: one warm-up call, then `samples` timed calls; records the
    /// median.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                black_box(f());
                t.elapsed()
            })
            .collect();
        times.sort_unstable();
        self.elapsed = times[times.len() / 2];
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            samples: self.sample_size,
        };
        f(&mut b, input);
        self.report(&id.to_string(), b.elapsed);
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            samples: self.sample_size,
        };
        f(&mut b);
        self.report(&id.to_string(), b.elapsed);
        self
    }

    /// Ends the group (formatting no-op; kept for API compatibility).
    pub fn finish(self) {}

    fn report(&self, id: &str, elapsed: Duration) {
        let secs = elapsed.as_secs_f64();
        let rate = match self.throughput {
            Some(Throughput::Bytes(b)) if secs > 0.0 => {
                format!("  {:>8.2} MiB/s", b as f64 / secs / (1 << 20) as f64)
            }
            Some(Throughput::Elements(e)) if secs > 0.0 => {
                format!("  {:>8.2} Melem/s", e as f64 / secs / 1e6)
            }
            _ => String::new(),
        };
        println!("{}/{:<32} {:>12.3?}{}", self.name, id, elapsed, rate);
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: 20,
            _criterion: self,
        }
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Bytes(1024));
        g.sample_size(3);
        let data = vec![1u8; 1024];
        g.bench_with_input(BenchmarkId::from_parameter("sum"), &data, |b, d| {
            b.iter(|| d.iter().map(|&v| v as u64).sum::<u64>())
        });
        g.bench_function("noop", |b| b.iter(|| 42u32));
        g.finish();
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    criterion_group!(bench_all, smoke);
    fn smoke(c: &mut Criterion) {
        let mut g = c.benchmark_group("macro");
        g.sample_size(2);
        g.bench_function("id", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }

    #[test]
    fn macros_compose() {
        bench_all();
    }
}
