//! Offline shim for the slice of [rayon](https://docs.rs/rayon) this
//! workspace uses.
//!
//! The build environment has no crates.io access, so this std-only crate
//! provides source-compatible substitutes for the combinator chains the
//! COMPSO crates rely on:
//!
//! * `slice.par_chunks(n).map(f).{reduce, sum, collect}`
//! * `slice.par_chunks_mut(n).enumerate().for_each(f)`
//! * `vec.par_iter().{enumerate,}().map(f).collect()`
//! * `vec.into_par_iter().zip(other).map(f).collect()`
//! * `rayon::current_num_threads()`
//!
//! Work really does run in parallel: items are split into contiguous
//! batches, one `std::thread::scope` worker per batch (the first batch runs
//! inline on the caller), and results are reassembled in input order so the
//! semantics match rayon's indexed parallel iterators. There is no
//! work-stealing pool — for the chunk sizes this workspace uses (multi-KiB
//! slices, whole codec blocks) spawn overhead is noise.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide worker-count override (0 = no override). See
/// [`set_thread_override`].
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Forces [`current_num_threads`] to report `n` workers (`None` clears the
/// override). Shim-only API — real rayon sizes its pool once at startup;
/// here the pool is per-operation, so tests can pin the worker count to
/// prove thread-count invariance (same bytes at 1 worker and N workers),
/// and benchmarks can sweep it. Takes effect for subsequent parallel
/// operations; in-flight ones are unaffected.
pub fn set_thread_override(n: Option<usize>) {
    THREAD_OVERRIDE.store(n.unwrap_or(0), Ordering::SeqCst);
}

/// RAII guard that restores the previous override on drop. Prefer this in
/// tests so a panic cannot leak a pinned worker count into later tests.
pub struct ThreadOverrideGuard {
    prev: usize,
}

impl Drop for ThreadOverrideGuard {
    fn drop(&mut self) {
        THREAD_OVERRIDE.store(self.prev, Ordering::SeqCst);
    }
}

/// Scoped form of [`set_thread_override`].
#[must_use = "the override is cleared when the guard drops"]
pub fn scoped_thread_override(n: usize) -> ThreadOverrideGuard {
    ThreadOverrideGuard {
        prev: THREAD_OVERRIDE.swap(n, Ordering::SeqCst),
    }
}

/// Number of worker threads parallel operations fan out to — the shim
/// equivalent of rayon's global-pool size. Resolution order: the in-process
/// override ([`set_thread_override`]), the `RAYON_NUM_THREADS` environment
/// variable (matching real rayon), then the machine's available
/// parallelism.
pub fn current_num_threads() -> usize {
    match THREAD_OVERRIDE.load(Ordering::SeqCst) {
        0 => {}
        n => return n,
    }
    if let Ok(s) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `f` over `items`, preserving order, fanning out to at most
/// [`current_num_threads`] scoped workers.
fn run_par<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let batch = n.div_ceil(threads);
    let mut slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let fr = &f;
    std::thread::scope(|scope| {
        let mut pairs = slots
            .chunks_mut(batch)
            .zip(out.chunks_mut(batch))
            .collect::<Vec<_>>();
        // Run the first batch on the calling thread; spawn the rest.
        let head = pairs.remove(0);
        for (inp, dst) in pairs {
            scope.spawn(move || {
                for (it, slot) in inp.iter_mut().zip(dst.iter_mut()) {
                    *slot = Some(fr(it.take().expect("item consumed twice")));
                }
            });
        }
        let (inp, dst) = head;
        for (it, slot) in inp.iter_mut().zip(dst.iter_mut()) {
            *slot = Some(fr(it.take().expect("item consumed twice")));
        }
    });
    out.into_iter()
        .map(|o| o.expect("worker failed to fill slot"))
        .collect()
}

/// An eager indexed "parallel" iterator: the pending items, in order.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Pairs every item with its index (rayon's `enumerate`).
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Zips with another parallel-iterable of the same length semantics as
    /// rayon's `zip` (truncates to the shorter side).
    pub fn zip<U, I>(self, other: I) -> ParIter<(T, U)>
    where
        U: Send,
        I: IntoParallelIterator<Item = U>,
    {
        ParIter {
            items: self
                .items
                .into_iter()
                .zip(other.into_par_iter().items)
                .collect(),
        }
    }

    /// Lazily maps every item; the returned adapter runs in parallel on its
    /// terminal operation.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        run_par(self.items, f);
    }
}

/// The mapped form of [`ParIter`]; terminal operations fan out here.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, R, F> ParMap<T, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    /// Collects mapped results in input order.
    pub fn collect<C: FromParIter<R>>(self) -> C {
        C::from_par_vec(run_par(self.items, self.f))
    }

    /// Sums mapped results.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<R>,
    {
        run_par(self.items, self.f).into_iter().sum()
    }

    /// Folds mapped results with `op`, starting from `identity()` — the
    /// rayon `reduce(identity, op)` signature.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> R
    where
        ID: Fn() -> R,
        OP: Fn(R, R) -> R,
    {
        run_par(self.items, self.f).into_iter().fold(identity(), op)
    }
}

/// Collection targets for [`ParMap::collect`].
pub trait FromParIter<T> {
    /// Builds the collection from in-order mapped results.
    fn from_par_vec(v: Vec<T>) -> Self;
}

impl<T> FromParIter<T> for Vec<T> {
    fn from_par_vec(v: Vec<T>) -> Self {
        v
    }
}

impl<T, E> FromParIter<Result<T, E>> for Result<Vec<T>, E> {
    fn from_par_vec(v: Vec<Result<T, E>>) -> Self {
        v.into_iter().collect()
    }
}

/// By-value conversion into a [`ParIter`] (rayon's `IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// Item type produced by the parallel iterator.
    type Item: Send;
    /// Converts `self` into the eager parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `par_iter()` on slices and anything that derefs to a slice.
pub trait IntoParallelRefIterator<T: Sync> {
    /// Borrowing parallel iterator (rayon's `par_iter`).
    fn par_iter(&self) -> ParIter<&T>;
}

impl<T: Sync> IntoParallelRefIterator<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `par_chunks` on shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Splits into `size`-element chunks (last may be shorter), iterated in
    /// parallel.
    fn par_chunks(&self, size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> ParIter<&[T]> {
        assert!(size != 0, "chunk size must be non-zero");
        ParIter {
            items: self.chunks(size).collect(),
        }
    }
}

/// `par_chunks_mut` on exclusive slices.
pub trait ParallelSliceMut<T: Send> {
    /// Splits into disjoint mutable `size`-element chunks, iterated in
    /// parallel.
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]> {
        assert!(size != 0, "chunk size must be non-zero");
        ParIter {
            items: self.chunks_mut(size).collect(),
        }
    }
}

pub mod prelude {
    //! Drop-in replacement for `rayon::prelude::*`.
    pub use crate::{
        FromParIter, IntoParallelIterator, IntoParallelRefIterator, ParallelSlice, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn par_chunks_map_reduce_matches_serial() {
        let xs: Vec<i64> = (0..10_000).collect();
        let par: i64 = xs
            .par_chunks(64)
            .map(|c| c.iter().sum::<i64>())
            .reduce(|| 0, |a, b| a + b);
        let ser: i64 = xs.iter().sum();
        assert_eq!(par, ser);
    }

    #[test]
    fn par_chunks_collect_preserves_order() {
        let xs: Vec<u32> = (0..1000).collect();
        let lens: Vec<usize> = xs.par_chunks(7).map(<[u32]>::len).collect();
        let expect: Vec<usize> = xs.chunks(7).map(<[u32]>::len).collect();
        assert_eq!(lens, expect);
    }

    #[test]
    fn par_chunks_mut_enumerate_for_each() {
        let mut xs = vec![0usize; 100];
        xs.par_chunks_mut(9).enumerate().for_each(|(i, c)| {
            for v in c.iter_mut() {
                *v = i;
            }
        });
        for (i, c) in xs.chunks(9).enumerate() {
            assert!(c.iter().all(|&v| v == i));
        }
    }

    #[test]
    fn into_par_iter_zip_collect() {
        let a: Vec<u32> = (0..100).collect();
        let b: Vec<u32> = (100..200).collect();
        let out: Vec<u32> = a.into_par_iter().zip(b).map(|(x, y)| x + y).collect();
        let expect: Vec<u32> = (0..100).map(|i| 100 + 2 * i).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn result_collect_short_circuits_to_err() {
        let xs: Vec<i32> = (0..50).collect();
        let ok: Result<Vec<i32>, String> = xs.par_iter().map(|&v| Ok(v * 2)).collect();
        assert_eq!(ok.unwrap()[10], 20);
        let err: Result<Vec<i32>, String> = xs
            .par_iter()
            .map(|&v| {
                if v == 33 {
                    Err("boom".to_string())
                } else {
                    Ok(v)
                }
            })
            .collect();
        assert_eq!(err.unwrap_err(), "boom");
    }

    #[test]
    fn thread_override_pins_and_restores() {
        // Serialized against itself only; other tests tolerate any count.
        let before = current_num_threads();
        {
            let _g = scoped_thread_override(3);
            assert_eq!(current_num_threads(), 3);
            // Results are identical regardless of the worker count.
            let xs: Vec<u64> = (0..5000).collect();
            let pinned: u64 = xs.par_chunks(17).map(|c| c.iter().sum::<u64>()).sum();
            assert_eq!(pinned, 5000 * 4999 / 2);
        }
        assert_eq!(current_num_threads(), before);
        set_thread_override(Some(1));
        assert_eq!(current_num_threads(), 1);
        set_thread_override(None);
        assert_eq!(current_num_threads(), before);
    }

    #[test]
    fn empty_inputs() {
        let xs: Vec<f32> = Vec::new();
        let n: f32 = xs.par_chunks(8).map(|c| c.iter().sum::<f32>()).sum();
        assert_eq!(n, 0.0);
        assert!(current_num_threads() >= 1);
    }
}
