//! Offline shim for the slice of [crossbeam](https://docs.rs/crossbeam)
//! this workspace uses: `crossbeam::channel::{unbounded, Sender, Receiver}`.
//!
//! Implemented over a `Mutex<VecDeque>` + `Condvar` MPMC queue. Semantics
//! match crossbeam's unbounded channel where this workspace can observe
//! them: FIFO per channel, `send` never blocks, `recv` blocks until a
//! message or disconnection, and both endpoints are `Send + Sync + Clone`.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone; the
    /// unsent message is handed back.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline expired with the channel still empty.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("receive timed out"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("receiving on an empty, disconnected channel")
                }
            }
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`; never blocks. Fails only when all receivers have
        /// been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            let mut q = self.shared.queue.lock().expect("channel poisoned");
            q.push_back(msg);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Wake blocked receivers so they observe disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = q.pop_front() {
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.shared.ready.wait(q).expect("channel poisoned");
            }
        }

        /// Blocks until a message arrives, every sender is gone, or
        /// `timeout` elapses — whichever comes first.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut q = self.shared.queue.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = q.pop_front() {
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .shared
                    .ready
                    .wait_timeout(q, deadline - now)
                    .expect("channel poisoned");
                q = guard;
            }
        }

        /// Non-blocking receive; `None` when the queue is currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.shared
                .queue
                .lock()
                .expect("channel poisoned")
                .pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError, RecvTimeoutError};

    #[test]
    fn fifo_roundtrip() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn cross_thread_blocking_recv() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(std::time::Duration::from_millis(10));
        tx.send(42u32).unwrap();
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn disconnect_unblocks_receiver() {
        let (tx, rx) = unbounded::<u8>();
        let h = std::thread::spawn(move || rx.recv());
        std::thread::sleep(std::time::Duration::from_millis(10));
        drop(tx);
        assert_eq!(h.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded::<u8>();
        let t0 = std::time::Instant::now();
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(20)),
            Err(RecvTimeoutError::Timeout)
        );
        assert!(t0.elapsed() >= std::time::Duration::from_millis(20));
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(20)), Ok(7));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(20)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_to_dropped_receiver_fails() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn many_producers_one_consumer() {
        let (tx, rx) = unbounded();
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        tx.send(t * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(tx);
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        assert_eq!(got.len(), 8000);
        got.sort_unstable();
        got.dedup();
        assert_eq!(got.len(), 8000, "messages lost or duplicated");
    }
}
