//! The offline-online performance model (§4.4) end to end: profile the
//! compressor on warm-up data, query the offline communication tables,
//! pick the best-fit encoder and the layer-aggregation factor, and
//! estimate the end-to-end gain before committing to a full run.
//!
//! ```text
//! cargo run --release --example performance_model
//! ```

use compso::core::perfmodel::{
    choose_aggregation, choose_encoder, comm_speedup, end_to_end_gain, measure_encoders,
    OnlineProfiler,
};
use compso::core::synthetic::{generate_layers, GradientProfile};
use compso::core::{Compressor, Compso, CompsoConfig};
use compso::dnn::ModelSpec;
use compso::sim::{IterationModel, Platform};
use compso::tensor::Rng;
use std::time::Instant;

fn main() {
    let platform = Platform::platform1();
    let spec = ModelSpec::resnet50();
    println!("system: {}, model: {}\n", platform.name, spec.name);

    // --- online phase: profile the first k warm-up iterations ---------
    let compso = Compso::new(CompsoConfig::aggressive(4e-3));
    let mut rng = Rng::new(3);
    let mut profiler = OnlineProfiler::new();
    let k = 5;
    for iter in 0..k {
        // Scaled-down per-layer gradients for the warm-up sample.
        let sizes: Vec<usize> = spec.layers.iter().map(|l| l.grad_elems() / 16).collect();
        let layers = generate_layers(&sizes, 100 + iter, GradientProfile::kfac());
        for layer in &layers {
            let t0 = Instant::now();
            let bytes = compso.compress(layer, &mut rng);
            let ct = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            let _ = compso.decompress(&bytes).unwrap();
            let dt = t1.elapsed().as_secs_f64();
            profiler.record(layer.len() as u64 * 4, bytes.len() as u64, ct, dt);
        }
    }
    let host_profile = profiler.profile().unwrap();
    println!(
        "measured over {k} warm-up iterations (host CPU): ratio {:.1}x, compress {:.2} GB/s, decompress {:.2} GB/s",
        host_profile.ratio,
        host_profile.compress_tput / 1e9,
        host_profile.decompress_tput / 1e9
    );

    // The codec is memory-bound (§4.5), so its throughput on the
    // simulated A100 scales with the memory-bandwidth ratio between this
    // host and the GPU (see DESIGN.md §1).
    let host_membw = {
        let n = 32 << 20;
        let src = vec![1u8; n];
        let mut dst = vec![0u8; n];
        dst.copy_from_slice(&src);
        let t0 = Instant::now();
        for _ in 0..3 {
            dst.copy_from_slice(&src);
            std::hint::black_box(&dst);
        }
        (2 * 3 * n) as f64 / t0.elapsed().as_secs_f64()
    };
    let scale = (platform.gpu_membw / host_membw).max(1.0);
    let profile = compso::core::perfmodel::CompressorProfile {
        ratio: host_profile.ratio,
        compress_tput: host_profile.compress_tput * scale,
        decompress_tput: host_profile.decompress_tput * scale,
    };
    println!(
        "translated to the simulated A100 (bandwidth ratio {scale:.0}x): compress {:.1} GB/s, decompress {:.1} GB/s\n",
        profile.compress_tput / 1e9,
        profile.decompress_tput / 1e9
    );

    // --- encoder selection on sampled quantized data -------------------
    let sample: Vec<u8> = generate_layers(&[1 << 20], 7, GradientProfile::kfac())[0]
        .iter()
        .map(|v| (v.abs() * 4096.0) as u8)
        .collect();
    let measurements = measure_encoders(&sample);
    let slow_pick = choose_encoder(&measurements, 1e6);
    let fast_pick = choose_encoder(&measurements, 25e9);
    println!("encoder pick on a slow network: {}", slow_pick.name());
    println!("encoder pick on a fast network: {}\n", fast_pick.name());

    // --- aggregation factor from the offline lookup table --------------
    let gpus = 64;
    let net = platform.network.clone();
    let m = choose_aggregation(
        &spec.layer_grad_bytes(),
        move |bytes| bytes / net.broadcast_time(gpus, bytes).max(1e-12),
        &profile,
        platform.gpu_membw,
        16,
    );
    println!("chosen layer-aggregation factor m = {m}");

    // --- Eq. 5 + end-to-end estimate ----------------------------------
    let l_o = spec.total_grad_bytes() as f64;
    let l_c = l_o / profile.ratio;
    let tput = |bytes: f64| bytes / platform.network.broadcast_time(gpus, bytes).max(1e-12);
    let s = comm_speedup(l_o, l_c, tput(l_o), tput(l_c), &profile);
    let model = IterationModel::new(platform);
    let r = model.breakdown(&spec, gpus, 1, None).comm_fraction();
    println!(
        "Eq. 5 communication speedup s = {s:.1}x at r = {:.0}%",
        r * 100.0
    );
    println!(
        "estimated end-to-end gain ((1-r) + r/s)^-1 = {:.2}x",
        end_to_end_gain(r, s)
    );
}
