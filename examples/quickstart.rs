//! Quickstart: compress and decompress one K-FAC gradient buffer.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use compso::core::synthetic::{generate, GradientProfile};
use compso::core::{Compressor, Compso, CompsoConfig};
use compso::tensor::Rng;

fn main() {
    // A synthetic K-FAC-gradient-like buffer (1M values). In real use
    // this is the preconditioned gradient a distributed K-FAC rank is
    // about to all-gather.
    let gradient = generate(1 << 20, 42, GradientProfile::kfac());

    // The paper's aggressive strategy: filter + stochastic rounding at a
    // 4E-3 (relative to value range) error bound, ANS entropy coding.
    let compressor = Compso::new(CompsoConfig::aggressive(4e-3));
    let mut rng = Rng::new(7);

    let compressed = compressor.compress(&gradient, &mut rng);
    let restored = compressor.decompress(&compressed).expect("own stream");

    let original_bytes = gradient.len() * 4;
    println!("original:   {original_bytes} bytes");
    println!("compressed: {} bytes", compressed.len());
    println!(
        "ratio:      {:.1}x",
        original_bytes as f64 / compressed.len() as f64
    );

    // The error contract: filtered values decode to exactly zero, kept
    // values stay within the bound.
    let mm = compso::tensor::reduce::minmax_flat(&gradient);
    let bound = 4e-3 * (mm.max - mm.min);
    let max_err = gradient
        .iter()
        .zip(&restored)
        .map(|(&a, &b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("max error:  {max_err:.2e} (bound {bound:.2e})");
    assert!(max_err <= bound * 1.01);
    println!("error bound verified.");
}
