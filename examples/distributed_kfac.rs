//! Distributed K-FAC training with COMPSO-compressed communication.
//!
//! Spawns four in-process ranks, trains a classifier with KAISA-style
//! distributed K-FAC (Fig. 2 of the paper), and compares the wire
//! traffic of the preconditioned-gradient all-gather with and without
//! COMPSO.
//!
//! ```text
//! cargo run --release --example distributed_kfac
//! ```
//!
//! Checkpoint/resume: pass `--ckpt-dir <dir>` to take a coordinated
//! snapshot every [`SAVE_EVERY`] steps while training, and add
//! `--resume` to restore the newest snapshot from that directory and
//! continue from there instead of starting fresh. Resuming continues
//! the interrupted trajectory bit-identically:
//!
//! ```text
//! cargo run --release --example distributed_kfac -- --ckpt-dir /tmp/ckpt
//! # kill it mid-run, then:
//! cargo run --release --example distributed_kfac -- --ckpt-dir /tmp/ckpt --resume
//! ```

use compso::comm::{
    admit_pending, rejoin, run_ranks, run_ranks_elastic, CommConfig, FaultConfig, FaultPlane,
};
use compso::core::adaptive::BoundSchedule;
use compso::core::{Compressor, Compso, NoCompression};
use compso::dnn::loss::{accuracy, softmax_cross_entropy};
use compso::dnn::{data, models};
use compso::kfac::checkpoint::{catch_up_rejoined, fingerprint};
use compso::kfac::{CheckpointConfig, CheckpointCoordinator, DistKfac, DistKfacConfig};
use compso::obs::{Recorder, Resilience};
use compso::tensor::Rng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

const RANKS: usize = 4;
const STEPS: usize = 120;
/// Snapshot cadence for the `--ckpt-dir` mode.
const SAVE_EVERY: usize = 20;

fn train(compressed: bool) -> (f64, u64, u64) {
    let dataset = data::gaussian_blobs(640, 10, 4, 0.5, 99);
    let schedule = BoundSchedule::step_paper(STEPS / 2);
    let results = run_ranks(RANKS, |comm| {
        let mut rng = Rng::new(11); // same init on every rank
        let mut model = models::mlp(&[10, 48, 48, 4], &mut rng);
        let shard = dataset.shard(comm.rank(), RANKS);
        let mut opt = DistKfac::new(DistKfacConfig::default(), 5);
        let mut original = 0u64;
        let mut wire = 0u64;
        for step in 0..STEPS {
            let (x, y) = shard.batch(step, 16);
            let logits = model.forward(&x, true);
            let (_, grad) = softmax_cross_entropy(&logits, &y);
            model.backward(&grad);
            // Iteration-wise adaptive strategy (Alg. 1): aggressive
            // before the LR drop, conservative after.
            let stats = if compressed {
                let compso = Compso::new(schedule.config_at(step));
                opt.step(comm, &mut model, &compso).expect("step")
            } else {
                opt.step(comm, &mut model, &NoCompression).expect("step")
            };
            original += stats.gather_bytes_original;
            wire += stats.gather_bytes_wire;
            model.update_params(|p, g| p.axpy(-0.01, g));
        }
        let logits = model.forward(&dataset.x, false);
        (accuracy(&logits, &dataset.y), original, wire)
    });
    let acc = results[0].0;
    let original: u64 = results.iter().map(|r| r.1).sum();
    let wire: u64 = results.iter().map(|r| r.2).sum();
    (acc, original, wire)
}

/// Compressed training with coordinated snapshots every [`SAVE_EVERY`]
/// steps. With `resume`, restores the newest snapshot under `dir` and
/// continues the interrupted trajectory bit-identically.
fn train_with_checkpoints(dir: &std::path::Path, resume: bool) -> f64 {
    let dataset = data::gaussian_blobs(640, 10, 4, 0.5, 99);
    let schedule = BoundSchedule::step_paper(STEPS / 2);
    let results = run_ranks(RANKS, |comm| {
        let mut rng = Rng::new(11); // same init on every rank
        let mut model = models::mlp(&[10, 48, 48, 4], &mut rng);
        let shard = dataset.shard(comm.rank(), RANKS);
        let mut opt = DistKfac::new(DistKfacConfig::default(), 5);
        let coord = CheckpointCoordinator::new(CheckpointConfig::new(
            dir,
            fingerprint(&["distributed_kfac", "seed=5", "ranks=4", "compso"]),
        ))
        .expect("open checkpoint store");
        let mut start = 0usize;
        if resume {
            let restored = coord
                .restore(comm, &mut opt, &mut model)
                .expect("restore from snapshot");
            start = restored.step as usize;
            if comm.rank() == 0 {
                println!("resumed from snapshot at step {start}");
            }
        }
        for step in start..STEPS {
            let (x, y) = shard.batch(step, 16);
            let logits = model.forward(&x, true);
            let (_, grad) = softmax_cross_entropy(&logits, &y);
            model.backward(&grad);
            let compso = Compso::new(schedule.config_at(step));
            opt.step(comm, &mut model, &compso).expect("step");
            model.update_params(|p, g| p.axpy(-0.01, g));
            let done = step + 1;
            if done % SAVE_EVERY == 0 && done < STEPS {
                coord
                    .save(comm, done as u64, &opt, &model, &[])
                    .expect("coordinated save");
            }
        }
        let logits = model.forward(&dataset.x, false);
        accuracy(&logits, &dataset.y)
    });
    results[0]
}

/// Elastic-membership demo (ISSUE: elastic tentpole). Four ranks train
/// with compressed K-FAC and coordinated snapshots; a seeded fault
/// plane crashes rank 2 mid-run. The survivors detect the loss at the
/// step boundary, quorum-shrink to three ranks, reshard the K-FAC
/// aggregation groups, and keep training; the crashed rank restores the
/// latest snapshot locally, rejoins live at an epoch boundary, catches
/// its factors and parameters up from peers, and finishes in the group.
/// Returns `(elastic loss, reference loss)` plus the membership
/// counters; the caller compares the losses within tolerance (CI smoke).
fn train_elastic(dir: &std::path::Path) -> (f32, f32, Resilience) {
    const ELASTIC_STEPS: u64 = 30;
    const SAVE_AT: u64 = 10;
    const CRASH_STEP: u64 = 15;
    let dataset = data::gaussian_blobs(640, 10, 4, 0.5, 99);
    let fp = fingerprint(&["distributed_kfac", "seed=5", "elastic"]);
    let plane = FaultPlane::new(FaultConfig {
        seed: 0xE1A5,
        crash_at: Some((2, CRASH_STEP)),
        ..FaultConfig::default()
    });
    let config = CommConfig {
        recv_timeout: Duration::from_secs(10),
        retry_initial: Duration::from_millis(40),
        max_retries: 10,
        ..CommConfig::default()
    };
    let rec = Recorder::enabled();
    // The scheduled crash is an ordinary panic on the doomed rank's
    // thread; keep the default hook for everything else so genuine
    // failures still print.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.contains("injected fault"));
        if !injected {
            default_hook(info);
        }
    }));
    // The revived rank may ask to rejoin once the survivors completed
    // two steps on the shrunk view; the survivors then hold at the
    // admission sweep until it lands.
    let may_rejoin = AtomicBool::new(false);
    let may_rejoin_ref = &may_rejoin;
    let dataset_ref = &dataset;
    let rec_ref = &rec;
    let results = run_ranks_elastic(RANKS, plane, config, move |comm, revived| {
        let mut rng = Rng::new(11);
        let mut model = models::mlp(&[10, 48, 48, 4], &mut rng);
        let shard = dataset_ref.shard(comm.phys_rank(), RANKS);
        let mut opt = DistKfac::new(DistKfacConfig::default(), 5);
        opt.set_recorder(rec_ref.clone());
        comm.set_recorder(rec_ref.clone());
        let compso = Compso::default();
        let coord = CheckpointCoordinator::new(CheckpointConfig::new(dir, fp))
            .expect("open checkpoint store");
        if revived {
            while !may_rejoin_ref.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_millis(1));
            }
            let restored = coord
                .restore_local(&mut opt, &mut model)
                .expect("local restore before rejoin");
            println!(
                "rank {}: revived, restored snapshot at step {}, rejoining",
                comm.phys_rank(),
                restored.step
            );
            rejoin(comm).expect("rejoin after revival");
            catch_up_rejoined(comm, &mut opt, &mut model, comm.phys_rank())
                .expect("joiner catch-up");
            println!(
                "rank {}: rejoined at epoch {}, step {}",
                comm.phys_rank(),
                comm.epoch(),
                comm.current_step()
            );
        }
        let mut shrunk_done = 0u32;
        let mut loss = f32::NAN;
        while comm.current_step() < ELASTIC_STEPS {
            let missing: Vec<usize> = (0..RANKS)
                .filter(|r| !comm.live_ranks().contains(r))
                .collect();
            let admitted = if may_rejoin_ref.load(Ordering::Acquire) && comm.size() < RANKS {
                loop {
                    match admit_pending(comm).expect("admission sweep") {
                        Some(vc) => break Some(vc),
                        None => std::thread::sleep(Duration::from_millis(1)),
                    }
                }
            } else {
                admit_pending(comm).expect("admission sweep")
            };
            if admitted.is_some() {
                let joiner = *missing.first().expect("an admitted rank was missing");
                catch_up_rejoined(comm, &mut opt, &mut model, joiner).expect("member catch-up");
            }
            let step = comm.current_step() as usize;
            let (x, y) = shard.batch(step, 16);
            let logits = model.forward(&x, true);
            let (l, grad) = softmax_cross_entropy(&logits, &y);
            loss = l;
            model.backward(&grad);
            let before = comm.epoch();
            opt.step_elastic(comm, &mut model, &compso)
                .expect("elastic step must absorb the crash");
            if comm.epoch() != before && comm.phys_rank() == comm.live_ranks()[0] {
                println!(
                    "step {step}: view shrank to {:?} (epoch {}), resharded and continued",
                    comm.live_ranks(),
                    comm.epoch()
                );
            }
            model.update_params(|p, g| p.axpy(-0.01, g));
            if comm.size() < RANKS {
                shrunk_done += 1;
                if shrunk_done == 2 {
                    may_rejoin_ref.store(true, Ordering::Release);
                }
            }
            if comm.current_step() == SAVE_AT {
                coord
                    .save(comm, SAVE_AT, &opt, &model, &[])
                    .expect("coordinated save");
            }
        }
        loss
    });
    let _ = std::panic::take_hook();
    let elastic_loss = results[0].expect("rank 0 finishes the elastic run");
    for (r, slot) in results.iter().enumerate() {
        assert!(slot.is_some(), "rank {r} did not finish the elastic run");
    }

    // Fixed-membership reference over the same step budget.
    let reference = run_ranks(RANKS, |comm| {
        let mut rng = Rng::new(11);
        let mut model = models::mlp(&[10, 48, 48, 4], &mut rng);
        let shard = dataset_ref.shard(comm.rank(), RANKS);
        let mut opt = DistKfac::new(DistKfacConfig::default(), 5);
        let compso = Compso::default();
        let mut loss = f32::NAN;
        for step in 0..ELASTIC_STEPS as usize {
            let (x, y) = shard.batch(step, 16);
            let logits = model.forward(&x, true);
            let (l, grad) = softmax_cross_entropy(&logits, &y);
            loss = l;
            model.backward(&grad);
            opt.step(comm, &mut model, &compso).expect("reference step");
            model.update_params(|p, g| p.axpy(-0.01, g));
        }
        loss
    });
    (
        elastic_loss,
        reference[0],
        Resilience::from_snapshot(&rec.snapshot()),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ckpt_dir = args
        .iter()
        .position(|a| a == "--ckpt-dir")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let resume = args.iter().any(|a| a == "--resume");
    if args.iter().any(|a| a == "--elastic") {
        let dir = ckpt_dir.map(std::path::PathBuf::from).unwrap_or_else(|| {
            std::env::temp_dir().join(format!("compso-elastic-{}", std::process::id()))
        });
        let _ = std::fs::remove_dir_all(&dir);
        println!("elastic 4-rank run: rank 2 crashes mid-run, rejoins live...\n");
        let (elastic, reference, rz) = train_elastic(&dir);
        println!(
            "\nmembership: {} epochs ({} shrinks, {} rejoins), {} ownership reshards",
            rz.membership_epochs, rz.membership_shrinks, rz.membership_rejoins, rz.elastic_reshards
        );
        println!("final loss: elastic {elastic:.4} vs fixed-membership {reference:.4}");
        let _ = std::fs::remove_dir_all(&dir);
        // CI smoke contract: the elastic trajectory loses one abandoned
        // step, two shrunk steps, and a restored-from-snapshot joiner —
        // it must still land within tolerance of the reference.
        let gap = (elastic - reference).abs();
        if !(rz.membership_shrinks > 0 && rz.membership_rejoins > 0) {
            eprintln!("elastic run recorded no membership churn");
            std::process::exit(1);
        }
        if !(gap < 0.25 && elastic.is_finite()) {
            eprintln!("elastic loss strayed from the reference: gap {gap:.4}");
            std::process::exit(1);
        }
        println!("within tolerance (gap {gap:.4})");
        return;
    }
    if let Some(dir) = ckpt_dir {
        let mode = if resume { "resuming" } else { "fresh run" };
        println!("checkpointed 4-rank distributed K-FAC ({mode}, dir {dir})...\n");
        let acc = train_with_checkpoints(std::path::Path::new(&dir), resume);
        println!("final accuracy: {acc:.3}");
        return;
    } else if resume {
        eprintln!("--resume requires --ckpt-dir <dir>");
        std::process::exit(2);
    }

    println!("training a 4-rank distributed K-FAC classifier...\n");
    let (acc_plain, orig_plain, wire_plain) = train(false);
    let (acc_compso, orig_compso, wire_compso) = train(true);

    println!("                     accuracy   gather bytes (orig -> wire)");
    println!("no compression:        {acc_plain:.3}     {orig_plain} -> {wire_plain}");
    println!("COMPSO (adaptive):     {acc_compso:.3}     {orig_compso} -> {wire_compso}");
    println!(
        "\nall-gather wire reduction: {:.1}x, accuracy delta: {:+.3}",
        wire_plain as f64 / wire_compso as f64,
        acc_compso - acc_plain
    );
    // Also show the name so readers see where to plug their own method.
    let c = Compso::default();
    println!("compressor under test: {}", c.name());
}
