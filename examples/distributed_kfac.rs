//! Distributed K-FAC training with COMPSO-compressed communication.
//!
//! Spawns four in-process ranks, trains a classifier with KAISA-style
//! distributed K-FAC (Fig. 2 of the paper), and compares the wire
//! traffic of the preconditioned-gradient all-gather with and without
//! COMPSO.
//!
//! ```text
//! cargo run --release --example distributed_kfac
//! ```
//!
//! Checkpoint/resume: pass `--ckpt-dir <dir>` to take a coordinated
//! snapshot every [`SAVE_EVERY`] steps while training, and add
//! `--resume` to restore the newest snapshot from that directory and
//! continue from there instead of starting fresh. Resuming continues
//! the interrupted trajectory bit-identically:
//!
//! ```text
//! cargo run --release --example distributed_kfac -- --ckpt-dir /tmp/ckpt
//! # kill it mid-run, then:
//! cargo run --release --example distributed_kfac -- --ckpt-dir /tmp/ckpt --resume
//! ```

use compso::comm::run_ranks;
use compso::core::adaptive::BoundSchedule;
use compso::core::{Compressor, Compso, NoCompression};
use compso::dnn::loss::{accuracy, softmax_cross_entropy};
use compso::dnn::{data, models};
use compso::kfac::checkpoint::fingerprint;
use compso::kfac::{CheckpointConfig, CheckpointCoordinator, DistKfac, DistKfacConfig};
use compso::tensor::Rng;

const RANKS: usize = 4;
const STEPS: usize = 120;
/// Snapshot cadence for the `--ckpt-dir` mode.
const SAVE_EVERY: usize = 20;

fn train(compressed: bool) -> (f64, u64, u64) {
    let dataset = data::gaussian_blobs(640, 10, 4, 0.5, 99);
    let schedule = BoundSchedule::step_paper(STEPS / 2);
    let results = run_ranks(RANKS, |comm| {
        let mut rng = Rng::new(11); // same init on every rank
        let mut model = models::mlp(&[10, 48, 48, 4], &mut rng);
        let shard = dataset.shard(comm.rank(), RANKS);
        let mut opt = DistKfac::new(DistKfacConfig::default(), 5);
        let mut original = 0u64;
        let mut wire = 0u64;
        for step in 0..STEPS {
            let (x, y) = shard.batch(step, 16);
            let logits = model.forward(&x, true);
            let (_, grad) = softmax_cross_entropy(&logits, &y);
            model.backward(&grad);
            // Iteration-wise adaptive strategy (Alg. 1): aggressive
            // before the LR drop, conservative after.
            let stats = if compressed {
                let compso = Compso::new(schedule.config_at(step));
                opt.step(comm, &mut model, &compso).expect("step")
            } else {
                opt.step(comm, &mut model, &NoCompression).expect("step")
            };
            original += stats.gather_bytes_original;
            wire += stats.gather_bytes_wire;
            model.update_params(|p, g| p.axpy(-0.01, g));
        }
        let logits = model.forward(&dataset.x, false);
        (accuracy(&logits, &dataset.y), original, wire)
    });
    let acc = results[0].0;
    let original: u64 = results.iter().map(|r| r.1).sum();
    let wire: u64 = results.iter().map(|r| r.2).sum();
    (acc, original, wire)
}

/// Compressed training with coordinated snapshots every [`SAVE_EVERY`]
/// steps. With `resume`, restores the newest snapshot under `dir` and
/// continues the interrupted trajectory bit-identically.
fn train_with_checkpoints(dir: &std::path::Path, resume: bool) -> f64 {
    let dataset = data::gaussian_blobs(640, 10, 4, 0.5, 99);
    let schedule = BoundSchedule::step_paper(STEPS / 2);
    let results = run_ranks(RANKS, |comm| {
        let mut rng = Rng::new(11); // same init on every rank
        let mut model = models::mlp(&[10, 48, 48, 4], &mut rng);
        let shard = dataset.shard(comm.rank(), RANKS);
        let mut opt = DistKfac::new(DistKfacConfig::default(), 5);
        let coord = CheckpointCoordinator::new(CheckpointConfig::new(
            dir,
            fingerprint(&["distributed_kfac", "seed=5", "ranks=4", "compso"]),
        ))
        .expect("open checkpoint store");
        let mut start = 0usize;
        if resume {
            let restored = coord
                .restore(comm, &mut opt, &mut model)
                .expect("restore from snapshot");
            start = restored.step as usize;
            if comm.rank() == 0 {
                println!("resumed from snapshot at step {start}");
            }
        }
        for step in start..STEPS {
            let (x, y) = shard.batch(step, 16);
            let logits = model.forward(&x, true);
            let (_, grad) = softmax_cross_entropy(&logits, &y);
            model.backward(&grad);
            let compso = Compso::new(schedule.config_at(step));
            opt.step(comm, &mut model, &compso).expect("step");
            model.update_params(|p, g| p.axpy(-0.01, g));
            let done = step + 1;
            if done % SAVE_EVERY == 0 && done < STEPS {
                coord
                    .save(comm, done as u64, &opt, &model, &[])
                    .expect("coordinated save");
            }
        }
        let logits = model.forward(&dataset.x, false);
        accuracy(&logits, &dataset.y)
    });
    results[0]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ckpt_dir = args
        .iter()
        .position(|a| a == "--ckpt-dir")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let resume = args.iter().any(|a| a == "--resume");
    if let Some(dir) = ckpt_dir {
        let mode = if resume { "resuming" } else { "fresh run" };
        println!("checkpointed 4-rank distributed K-FAC ({mode}, dir {dir})...\n");
        let acc = train_with_checkpoints(std::path::Path::new(&dir), resume);
        println!("final accuracy: {acc:.3}");
        return;
    } else if resume {
        eprintln!("--resume requires --ckpt-dir <dir>");
        std::process::exit(2);
    }

    println!("training a 4-rank distributed K-FAC classifier...\n");
    let (acc_plain, orig_plain, wire_plain) = train(false);
    let (acc_compso, orig_compso, wire_compso) = train(true);

    println!("                     accuracy   gather bytes (orig -> wire)");
    println!("no compression:        {acc_plain:.3}     {orig_plain} -> {wire_plain}");
    println!("COMPSO (adaptive):     {acc_compso:.3}     {orig_compso} -> {wire_compso}");
    println!(
        "\nall-gather wire reduction: {:.1}x, accuracy delta: {:+.3}",
        wire_plain as f64 / wire_compso as f64,
        acc_compso - acc_plain
    );
    // Also show the name so readers see where to plug their own method.
    let c = Compso::default();
    println!("compressor under test: {}", c.name());
}
