//! Convergence lab: train the same model under different compressors and
//! watch the accuracy curves side by side — a miniature of the paper's
//! Fig. 6 experiment on the public API.
//!
//! ```text
//! cargo run --release --example convergence_lab
//! ```

use compso::core::adaptive::BoundSchedule;
use compso::core::baselines::{Qsgd, Sz};
use compso::core::{Compressor, Compso, RoundingMode};
use compso::dnn::loss::{accuracy, softmax_cross_entropy};
use compso::dnn::{data, models};
use compso::kfac::{Kfac, KfacConfig};
use compso::tensor::{Matrix, Rng};

const ITERS: usize = 240;

/// Trains with K-FAC, passing every gradient through `method` (None =
/// no compression; the closure picks the compressor per iteration).
fn train(method: &dyn Fn(usize) -> Option<Box<dyn Compressor>>) -> Vec<f64> {
    let d = data::spirals(600, 2, 2, 0.03, 24);
    let mut rng = Rng::new(7);
    let mut model = models::mlp(&[2, 48, 48, 2], &mut rng);
    let mut kfac = Kfac::new(KfacConfig {
        damping: 0.05,
        ema_decay: 0.95,
        eigen_refresh: 10,
        ..Default::default()
    });
    let mut comp_rng = Rng::new(8);
    let mut curve = Vec::new();
    for step in 0..ITERS {
        let (x, y) = d.batch(step, 32);
        let logits = model.forward(&x, true);
        let (_, grad) = softmax_cross_entropy(&logits, &y);
        model.backward(&grad);
        kfac.step(&mut model);
        if let Some(c) = method(step) {
            for idx in model.trainable_indices() {
                let grad = model.layer(idx).grads().unwrap().clone();
                let bytes = c.compress(grad.as_slice(), &mut comp_rng);
                let back = c.decompress(&bytes).unwrap();
                model
                    .layer_mut(idx)
                    .set_grads(Matrix::from_vec(grad.rows(), grad.cols(), back));
            }
        }
        model.update_params(|p, g| p.axpy(-0.02, g));
        if step % 30 == 29 {
            let logits = model.forward(&d.x, false);
            curve.push(accuracy(&logits, &d.y));
        }
    }
    curve
}

/// A per-step compressor factory (None = the no-compression baseline).
type MethodFactory = Box<dyn Fn(usize) -> Option<Box<dyn Compressor>>>;

fn main() {
    let methods: Vec<(&str, MethodFactory)> = vec![
        ("KFAC (no comp.)", Box::new(|_| None)),
        (
            "KFAC+SZ 1E-1 (RN, loose)",
            Box::new(|_| Some(Box::new(Sz::new(1e-1)) as Box<dyn Compressor>)),
        ),
        (
            "KFAC+QSGD 8-bit (SR)",
            Box::new(|_| Some(Box::new(Qsgd::bits8()) as Box<dyn Compressor>)),
        ),
        (
            "KFAC+COMPSO (adaptive)",
            Box::new(|step| {
                let sched = BoundSchedule::step_paper(ITERS / 2);
                Some(Box::new(Compso::new(
                    sched.strategy_at(step).to_config(RoundingMode::Stochastic),
                )) as Box<dyn Compressor>)
            }),
        ),
    ];

    println!("accuracy every 30 iterations on the spiral task:\n");
    print!("{:<26}", "method");
    for i in 1..=ITERS / 30 {
        print!("  @{:>3}", i * 30);
    }
    println!();
    for (name, method) in &methods {
        let curve = train(method.as_ref());
        print!("{name:<26}");
        for v in curve {
            print!("  {v:.3}");
        }
        println!();
    }
    println!(
        "\nExpected shape: COMPSO and QSGD-8bit (stochastic rounding) track\n\
         the uncompressed curve; the loose RN setting converges lower."
    );
}
