//! Convergence lab: train the same model under different compressors and
//! watch the accuracy curves side by side — a miniature of the paper's
//! Fig. 6 experiment on the public API.
//!
//! ```text
//! cargo run --release --example convergence_lab
//! cargo run --release --example convergence_lab -- --controller [--seed N]
//! ```
//!
//! `--controller` runs the adaptive-compression A/B: the static arms
//! train exactly as before, while the adaptive arm hands every step to
//! a [`compso::ctrl::Controller`] fed with *measured* signals (achieved
//! bytes, decode error, a deterministic byte-derived wall proxy). The
//! exit code encodes the controller contract:
//!
//! * `0` — warmup exit, a measured-margin switch, an EF-divergence
//!   backoff (entered *and* exited), trace/counter reconciliation, and
//!   adaptive accuracy within tolerance of the best static arm;
//! * `2` — the controller never left warmup;
//! * `3` — no sustained-margin (measured-signal-driven) switch fired;
//! * `4` — the injected divergence probe produced no backoff cycle;
//! * `5` — adaptive accuracy fell out of tolerance of the best arm;
//! * `6` — the decision trace disagreed with the `ctrl/*` counters.

use compso::core::adaptive::BoundSchedule;
use compso::core::baselines::{PowerSgd, Qsgd, Sz};
use compso::core::{Compressor, Compso, CompsoConfig, RoundingMode};
use compso::ctrl::{
    instantiate, Candidate, ControlConfig, Controller, Family, Reason, Setting, Signals,
};
use compso::dnn::loss::{accuracy, softmax_cross_entropy};
use compso::dnn::{data, models};
use compso::kfac::{Kfac, KfacConfig};
use compso::obs::{names, Recorder};
use compso::tensor::{Matrix, Rng};
use std::collections::HashMap;

const ITERS: usize = 240;

/// Fixed per-step cost of the wall proxy, in pretend-nanoseconds.
const WALL_BASE_NS: u64 = 500;

/// Step at which the adaptive arm injects an artificial EF-divergence
/// reading, exercising the backoff ladder deterministically.
const PROBE_STEP: u64 = 150;

/// Adaptive accuracy may trail the best static arm by at most this much.
const ACC_TOLERANCE: f64 = 0.12;

/// Trains with K-FAC, passing every gradient through `method` (None =
/// no compression; the closure picks the compressor per iteration).
fn train(method: &dyn Fn(usize) -> Option<Box<dyn Compressor>>) -> Vec<f64> {
    let d = data::spirals(600, 2, 2, 0.03, 24);
    let mut rng = Rng::new(7);
    let mut model = models::mlp(&[2, 48, 48, 2], &mut rng);
    let mut kfac = Kfac::new(KfacConfig {
        damping: 0.05,
        ema_decay: 0.95,
        eigen_refresh: 10,
        ..Default::default()
    });
    let mut comp_rng = Rng::new(8);
    let mut curve = Vec::new();
    for step in 0..ITERS {
        let (x, y) = d.batch(step, 32);
        let logits = model.forward(&x, true);
        let (_, grad) = softmax_cross_entropy(&logits, &y);
        model.backward(&grad);
        kfac.step(&mut model);
        if let Some(c) = method(step) {
            for idx in model.trainable_indices() {
                let grad = model.layer(idx).grads().unwrap().clone();
                let bytes = c.compress(grad.as_slice(), &mut comp_rng);
                let back = c.decompress(&bytes).unwrap();
                model
                    .layer_mut(idx)
                    .set_grads(Matrix::from_vec(grad.rows(), grad.cols(), back));
            }
        }
        model.update_params(|p, g| p.axpy(-0.02, g));
        if step % 30 == 29 {
            let logits = model.forward(&d.x, false);
            curve.push(accuracy(&logits, &d.y));
        }
    }
    curve
}

/// A per-step compressor factory (None = the no-compression baseline).
type MethodFactory = Box<dyn Fn(usize) -> Option<Box<dyn Compressor>>>;

/// The controller configuration the lab runs. The QSGD-8 prior is
/// deliberately inflated: the controller exits warmup onto it, then the
/// measured CR×throughput products (which favor the aggressive COMPSO
/// setting on this workload) have to win the arm back through the
/// sustained-margin rule — the measured-signal-driven switch the exit
/// code asserts. Priors use the same units as the wall proxy (bytes/ns).
fn lab_control_config(seed: u64) -> ControlConfig {
    ControlConfig {
        warmup_steps: 20,
        eval_every: 5,
        patience: 2,
        switch_margin: 0.15,
        divergence_ceiling: 0.95,
        backoff_steps: 15,
        divergence_penalty: 0.5,
        model_mistrust: 1.5,
        ema: 0.3,
        explore_every: 2,
        seed,
        candidates: vec![
            Candidate::new(Setting::compso(4e-3), 5.0, 1.0),
            Candidate::new(Setting::compso(4e-2), 8.0, 1.0),
            Candidate::new(Setting::qsgd(8), 4.0, 30.0),
            Candidate::new(Setting::qsgd(4), 6.0, 1.0),
            Candidate::new(Setting::powersgd(4), 10.0, 1.0),
        ],
    }
}

/// What the adaptive arm observed, for the exit-code contract.
struct AdaptiveRun {
    curve: Vec<f64>,
    warmup_exit: bool,
    measured_switch: bool,
    backoff_cycle: bool,
    reconciled: Result<(), (&'static str, u64, u64)>,
    switches: u64,
    family_switches: u64,
    final_setting: String,
}

/// Trains the spiral task with the controller in the loop. Identical
/// model/data/RNG seeding to [`train`]; the only difference is who picks
/// the compressor. The wall signal is a deterministic proxy derived from
/// the achieved wire bytes (`WALL_BASE_NS + bytes_out`), so the whole
/// run — decisions included — is reproducible bit-for-bit.
fn train_adaptive(seed: u64) -> AdaptiveRun {
    let d = data::spirals(600, 2, 2, 0.03, 24);
    let mut rng = Rng::new(7);
    let mut model = models::mlp(&[2, 48, 48, 2], &mut rng);
    let mut kfac = Kfac::new(KfacConfig {
        damping: 0.05,
        ema_decay: 0.95,
        eigen_refresh: 10,
        ..Default::default()
    });
    let mut comp_rng = Rng::new(8);
    let rec = Recorder::enabled();
    let mut ctl = Controller::new(lab_control_config(seed));
    // One live instance per setting: PowerSGD's warm-start/EF state must
    // survive across the steps a setting is held.
    let mut bank: HashMap<String, Box<dyn Compressor>> = HashMap::new();
    let mut curve = Vec::new();

    for step in 0..ITERS {
        let (x, y) = d.batch(step, 32);
        let logits = model.forward(&x, true);
        let (_, grad) = softmax_cross_entropy(&logits, &y);
        model.backward(&grad);
        kfac.step(&mut model);

        let setting = ctl.active_setting();
        let mut sig = Signals::default();
        if setting.family != Family::None {
            let c = bank
                .entry(setting.label())
                .or_insert_with(|| instantiate(&setting));
            let idxs = model.trainable_indices();
            let grads: Vec<Matrix> = idxs
                .iter()
                .map(|&i| model.layer(i).grads().unwrap().clone())
                .collect();
            let keyed: Vec<(u64, &[f32])> = idxs
                .iter()
                .zip(&grads)
                .map(|(&i, g)| (i as u64, g.as_slice()))
                .collect();
            let bytes = c.compress_group_keyed(&keyed, None, &mut comp_rng, &rec);
            let back = c.decompress_group(&bytes, &rec).expect("lab roundtrip");
            let bytes_in: u64 = grads.iter().map(|g| 4 * g.as_slice().len() as u64).sum();
            let (mut err_sq, mut orig_sq) = (0.0f64, 0.0f64);
            for (g, dec) in grads.iter().zip(&back) {
                for (a, b) in g.as_slice().iter().zip(dec.iter()) {
                    err_sq += (f64::from(*a) - f64::from(*b)).powi(2);
                    orig_sq += f64::from(*a).powi(2);
                }
            }
            let wall = WALL_BASE_NS + bytes.len() as u64;
            sig = Signals {
                bytes_in,
                bytes_out: bytes.len() as u64,
                wall_ns: wall,
                predicted_wall_ns: wall,
                error_rel: if orig_sq > 0.0 {
                    (err_sq / orig_sq).sqrt()
                } else {
                    0.0
                },
            };
            for (&i, dec) in idxs.iter().zip(back) {
                let g = model.layer(i).grads().unwrap();
                let (r, cl) = (g.rows(), g.cols());
                model.layer_mut(i).set_grads(Matrix::from_vec(r, cl, dec));
            }
        }
        if step as u64 == PROBE_STEP {
            // Injected EF-divergence reading: deterministic probe of the
            // backoff ladder (the gradients themselves are untouched).
            sig.error_rel = 2.0;
        }
        ctl.observe(&sig, &rec);

        model.update_params(|p, g| p.axpy(-0.02, g));
        if step % 30 == 29 {
            let logits = model.forward(&d.x, false);
            curve.push(accuracy(&logits, &d.y));
        }
    }

    let trace = ctl.trace();
    let backoff_in = trace.iter().any(|d| d.reason == Reason::BackoffEnter);
    let backoff_out = trace.iter().any(|d| d.reason == Reason::BackoffExit);
    AdaptiveRun {
        curve,
        warmup_exit: trace.iter().any(|d| d.reason == Reason::WarmupExit),
        measured_switch: trace
            .iter()
            .any(|d| matches!(d.reason, Reason::SettingSwitch | Reason::FamilySwitch)),
        backoff_cycle: backoff_in && backoff_out,
        reconciled: ctl.reconcile(&rec),
        switches: rec.counter(names::CTRL_SWITCHES),
        family_switches: rec.counter(names::CTRL_FAMILY_SWITCHES),
        final_setting: ctl.active_setting().label(),
    }
}

/// The `--controller` A/B: static arms vs the adaptive controller.
fn controller_ab(seed: u64) -> i32 {
    let arms: Vec<(&str, MethodFactory)> = vec![
        ("static none", Box::new(|_| None)),
        (
            "static compso(eb=4e-3)",
            Box::new(|_| {
                Some(Box::new(Compso::new(CompsoConfig::aggressive(4e-3))) as Box<dyn Compressor>)
            }),
        ),
        (
            "static qsgd(8bit)",
            Box::new(|_| Some(Box::new(Qsgd::bits8()) as Box<dyn Compressor>)),
        ),
        (
            "static powersgd(r4)",
            Box::new(|_| Some(Box::new(PowerSgd::rank(4)) as Box<dyn Compressor>)),
        ),
    ];

    println!("adaptive-compression A/B on the spiral task (seed {seed}):\n");
    let mut best_static = f64::MIN;
    for (name, method) in &arms {
        let curve = train(method.as_ref());
        let last = *curve.last().unwrap();
        best_static = best_static.max(last);
        print!("{name:<26}");
        for v in curve {
            print!("  {v:.3}");
        }
        println!();
    }

    let run = train_adaptive(seed);
    print!("{:<26}", "adaptive (controller)");
    for v in &run.curve {
        print!("  {v:.3}");
    }
    println!("\n");
    let final_acc = *run.curve.last().unwrap();
    println!(
        "controller: switches={} family_switches={} final={} \
         warmup_exit={} measured_switch={} backoff_cycle={}",
        run.switches,
        run.family_switches,
        run.final_setting,
        run.warmup_exit,
        run.measured_switch,
        run.backoff_cycle,
    );

    if !run.warmup_exit {
        eprintln!("FAIL: controller never exited warmup");
        return 2;
    }
    if !run.measured_switch {
        eprintln!("FAIL: no measured-signal-driven (sustained-margin) switch");
        return 3;
    }
    if !run.backoff_cycle {
        eprintln!("FAIL: divergence probe at step {PROBE_STEP} produced no backoff cycle");
        return 4;
    }
    if final_acc + ACC_TOLERANCE < best_static {
        eprintln!(
            "FAIL: adaptive accuracy {final_acc:.3} out of tolerance of best static {best_static:.3}"
        );
        return 5;
    }
    if let Err((what, from_trace, from_counter)) = run.reconciled {
        eprintln!(
            "FAIL: trace/counter mismatch on {what}: trace={from_trace} counter={from_counter}"
        );
        return 6;
    }
    println!(
        "OK: adaptive {final_acc:.3} vs best static {best_static:.3} \
         (tolerance {ACC_TOLERANCE}); trace reconciled against ctrl/* counters"
    );
    0
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    if argv.iter().any(|a| a == "--controller") {
        let seed = argv
            .iter()
            .position(|a| a == "--seed")
            .and_then(|i| argv.get(i + 1))
            .and_then(|s| s.parse().ok())
            .unwrap_or(9);
        std::process::exit(controller_ab(seed));
    }

    let methods: Vec<(&str, MethodFactory)> = vec![
        ("KFAC (no comp.)", Box::new(|_| None)),
        (
            "KFAC+SZ 1E-1 (RN, loose)",
            Box::new(|_| Some(Box::new(Sz::new(1e-1)) as Box<dyn Compressor>)),
        ),
        (
            "KFAC+QSGD 8-bit (SR)",
            Box::new(|_| Some(Box::new(Qsgd::bits8()) as Box<dyn Compressor>)),
        ),
        (
            "KFAC+COMPSO (adaptive)",
            Box::new(|step| {
                let sched = BoundSchedule::step_paper(ITERS / 2);
                Some(Box::new(Compso::new(
                    sched.strategy_at(step).to_config(RoundingMode::Stochastic),
                )) as Box<dyn Compressor>)
            }),
        ),
    ];

    println!("accuracy every 30 iterations on the spiral task:\n");
    print!("{:<26}", "method");
    for i in 1..=ITERS / 30 {
        print!("  @{:>3}", i * 30);
    }
    println!();
    for (name, method) in &methods {
        let curve = train(method.as_ref());
        print!("{name:<26}");
        for v in curve {
            print!("  {v:.3}");
        }
        println!();
    }
    println!(
        "\nExpected shape: COMPSO and QSGD-8bit (stochastic rounding) track\n\
         the uncompressed curve; the loose RN setting converges lower."
    );
}
