#!/usr/bin/env bash
# Emits BENCH_compress.json: serial vs chunked-parallel compressor
# throughput (MB/s) on this host, best-of-N round trips at 16 MiB.
#
# Usage: scripts/bench_snapshot.sh [output.json]
# Knobs: COMPSO_BENCH_ELEMS (f32 count, default 4Mi = 16 MiB),
#        COMPSO_BENCH_REPS  (default 3).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_compress.json}"
cargo run -p compso-bench --release --bin bench_compress -- "$OUT"
