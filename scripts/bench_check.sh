#!/usr/bin/env bash
# Bench regression gate: compares a fresh reduced-size bench_compress
# smoke run against the committed full-size snapshot and fails when the
# chunked-path numbers regress beyond tolerance.
#
#   bench_check.sh [SMOKE_JSON] [COMMITTED_JSON]
#
# Defaults: target/BENCH_compress_smoke.json vs BENCH_compress.json.
#
# Gated metrics:
#   - speedup_decompress_chunked_vs_serial  (the headline chunked win)
#   - chunked_nthread.compress_MBps         (absolute compress throughput)
#   - pipeline.speedup_2w / speedup_4w      (pipelined vs serial gather;
#     1w is legitimately ~1.0 — no wire to overlap — so it is not gated)
#   - powersgd.compress_MBps                (low-rank encode throughput)
#   - controller.overhead_frac              (absolute gate: an adaptive
#     decision must cost < 1% of the chunked compress wall)
#
# The smoke run is much smaller than the committed snapshot (2^18 vs
# 2^22 elements, single rep) and CI machines are noisy, so the floor is
# `committed * (1 - COMPSO_BENCH_TOL)` with a deliberately loose default
# tolerance of 0.5: the gate exists to catch a kernel falling off a
# cliff (an accidental debug path, a lost parallel dispatch, a codec
# misroute), not 10% jitter.
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE="${1:-target/BENCH_compress_smoke.json}"
BASE="${2:-BENCH_compress.json}"
TOL="${COMPSO_BENCH_TOL:-0.5}"

[ -f "$SMOKE" ] || { echo "bench_check: smoke snapshot $SMOKE missing (run bench_compress first)" >&2; exit 1; }
[ -f "$BASE" ] || { echo "bench_check: committed snapshot $BASE missing" >&2; exit 1; }

python3 - "$SMOKE" "$BASE" "$TOL" <<'EOF'
import json, sys

smoke = json.load(open(sys.argv[1]))
base = json.load(open(sys.argv[2]))
tol = float(sys.argv[3])

checks = [
    (
        "speedup_decompress_chunked_vs_serial",
        smoke["speedup_decompress_chunked_vs_serial"],
        base["speedup_decompress_chunked_vs_serial"],
    ),
    (
        "chunked_nthread.compress_MBps",
        smoke["chunked_nthread"]["compress_MBps"],
        base["chunked_nthread"]["compress_MBps"],
    ),
    (
        "pipeline.speedup_2w",
        smoke["pipeline"]["speedup_2w"],
        base["pipeline"]["speedup_2w"],
    ),
    (
        "pipeline.speedup_4w",
        smoke["pipeline"]["speedup_4w"],
        base["pipeline"]["speedup_4w"],
    ),
    (
        "powersgd.compress_MBps",
        smoke["powersgd"]["compress_MBps"],
        base["powersgd"]["compress_MBps"],
    ),
]

failed = []
for name, got, want in checks:
    floor = want * (1.0 - tol)
    ok = got >= floor
    print(
        f"bench_check: {name}: smoke={got:.2f} committed={want:.2f} "
        f"floor={floor:.2f} -> {'ok' if ok else 'REGRESSION'}"
    )
    if not ok:
        failed.append(name)

# Absolute gate, no tolerance scaling: the controller's decision cost
# must stay under 1% of the step's compress wall even on the small smoke
# buffer (which makes the fraction *larger*, so this is conservative).
frac = smoke["controller"]["overhead_frac"]
ok = frac < 0.01
print(
    f"bench_check: controller.overhead_frac: smoke={frac:.6f} "
    f"ceiling=0.010000 -> {'ok' if ok else 'REGRESSION'}"
)
if not ok:
    failed.append("controller.overhead_frac")

if failed:
    print(f"bench_check: regression in {', '.join(failed)}", file=sys.stderr)
    sys.exit(1)
print("bench_check: within tolerance")
EOF
