#!/usr/bin/env bash
# Tier-1 CI gate: format, lint, build, test, and a bench smoke run.
# Everything here must pass before a change lands (see ROADMAP.md).
#
# Each step is timed; a wall-clock summary prints at the end so a CI
# slowdown can be attributed to a step without spelunking the log.
set -euo pipefail
cd "$(dirname "$0")/.."

STEP_NAMES=()
STEP_SECS=()
STEP_NAME=""
STEP_T0=0

step_start() {
  STEP_NAME="$1"
  STEP_T0=$SECONDS
  echo "==> $1"
}

step_end() {
  STEP_NAMES+=("$STEP_NAME")
  STEP_SECS+=($((SECONDS - STEP_T0)))
}

step_start "cargo fmt --check"
cargo fmt --all -- --check
step_end

step_start "cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings
step_end

step_start "cargo build --release"
cargo build --release --workspace
step_end

step_start "cargo test"
cargo test -q --workspace
step_end

step_start "compso-lint --deny (cold 150ms / warm 10ms budgets)"
# Invariant lint over the whole workspace: wire magics, comm-path
# unwraps, unchecked length prefixes, counter registry, nondeterministic
# wire iteration, plus the call-graph rules (collective-order,
# deterministic-state, float-reduction-order, swallowed-comm-error).
# The binary was just built by the release build above, so the budgets
# measure analysis, not compilation. The cold run (cache removed first)
# must finish inside 150ms; the warm re-run replays the cache and must
# finish inside 10ms — both enforced by --budget-ms, with an outer
# timeout as the hang backstop. The JSON report (per-rule counts) is
# uploaded as a CI artifact (see .github/workflows/ci.yml).
rm -f target/lint-cache
timeout --kill-after=5 10 \
  target/release/compso-lint --deny --json-out target/lint-report.json \
  --cache target/lint-cache --budget-ms 150 \
  || { echo "compso-lint: violations or blown 150ms cold budget" >&2; exit 1; }
timeout --kill-after=5 10 \
  target/release/compso-lint --deny --cache target/lint-cache --budget-ms 10 \
  || { echo "compso-lint: violations or blown 10ms warm budget" >&2; exit 1; }
# No auto-fixable finding may be committed: --fix exists, use it.
timeout --kill-after=5 10 \
  target/release/compso-lint --fix-dry-run \
  || { echo "compso-lint: pending --fix rewrites; run compso-lint --fix" >&2; exit 1; }
step_end

step_start "chaos smoke (hard 300s wall-clock cap)"
# The chaos campaigns assert liveness ("no collective can block
# forever"); a regression there would otherwise hang CI instead of
# failing it, so the smoke runs under a hard external timeout.
timeout --kill-after=10 300 \
  cargo test --release --test chaos -q -- \
  chaos_campaign_converges_with_exact_fault_accounting \
  scheduled_crash_poisons_the_group_and_names_the_rank \
  || { echo "chaos smoke failed or timed out" >&2; exit 1; }
step_end

step_start "checkpoint smoke: save -> kill -> resume (hard 240s wall-clock cap)"
# A real whole-process SIGKILL: the fresh run is killed as soon as its
# first coordinated snapshot lands on disk; --resume must restore it and
# finish. (The in-process rank-kill variant with bit-identity checks is
# tests/checkpoint.rs::crash_campaign_..., gated below.)
cargo build --release --example distributed_kfac
CKPT_DIR=$(mktemp -d)
target/release/examples/distributed_kfac --ckpt-dir "$CKPT_DIR" >/dev/null &
CKPT_PID=$!
for _ in $(seq 1 600); do
  if compgen -G "$CKPT_DIR/step-*" >/dev/null; then break; fi
  if ! kill -0 "$CKPT_PID" 2>/dev/null; then break; fi
  sleep 0.1
done
kill -9 "$CKPT_PID" 2>/dev/null || true
wait "$CKPT_PID" 2>/dev/null || true
# Capture then grep: piping straight into `grep -q` races — grep exits
# at first match and the example dies on SIGPIPE under pipefail.
RESUME_LOG=$(mktemp)
timeout --kill-after=10 240 \
  target/release/examples/distributed_kfac --ckpt-dir "$CKPT_DIR" --resume \
  > "$RESUME_LOG" \
  || { echo "checkpoint resume smoke failed" >&2; exit 1; }
grep -q "resumed from snapshot" "$RESUME_LOG" \
  || { echo "checkpoint resume smoke: no resume line in output" >&2; exit 1; }
rm -f "$RESUME_LOG"
rm -rf "$CKPT_DIR"
step_end

step_start "elastic soak smoke (hard 240s wall-clock cap)"
# Elastic membership end-to-end: a rank crashes mid-run, survivors agree
# a shrunk view and keep training, the crashed rank restores from the
# latest snapshot and rejoins live. The example's exit code already
# encodes the contract — membership churn must have happened (shrinks
# AND rejoins observed) and the elastic run's final loss must match a
# fixed-membership reference within tolerance — so CI only needs the
# exit status plus the counter line in the log. The ledger/Resilience
# counters are reconciled inside the run (tests/chaos.rs pins exact
# values); the grep below keeps the CI log honest about what ran.
ELASTIC_LOG=$(mktemp)
timeout --kill-after=10 240 \
  target/release/examples/distributed_kfac --elastic \
  > "$ELASTIC_LOG" \
  || { echo "elastic soak smoke failed or timed out" >&2; cat "$ELASTIC_LOG" >&2; exit 1; }
grep -Eq "membership: [0-9]+ epochs" "$ELASTIC_LOG" \
  || { echo "elastic soak smoke: no membership counter line in output" >&2; exit 1; }
grep -q "within tolerance" "$ELASTIC_LOG" \
  || { echo "elastic soak smoke: no tolerance line in output" >&2; exit 1; }
rm -f "$ELASTIC_LOG"
step_end

step_start "checkpoint crash-campaign smoke (hard 300s wall-clock cap)"
timeout --kill-after=10 300 \
  cargo test --release --test checkpoint -q -- \
  crash_campaign_restores_last_snapshot_and_matches_uninterrupted_run \
  || { echo "checkpoint crash smoke failed or timed out" >&2; exit 1; }
step_end

step_start "bench smoke: fig1"
cargo run -p compso-bench --release --bin fig1 >/dev/null
step_end

step_start "bench smoke: obs_report"
cargo run -p compso-bench --release --bin obs_report >/dev/null
step_end

step_start "bench smoke: bench_compress (reduced size)"
COMPSO_BENCH_ELEMS=$((1 << 18)) COMPSO_BENCH_REPS=1 \
  cargo run -p compso-bench --release --bin bench_compress -- \
  target/BENCH_compress_smoke.json >/dev/null
step_end

step_start "bench regression gate (bench_check.sh)"
scripts/bench_check.sh
step_end

echo "==> step timing summary"
for i in "${!STEP_NAMES[@]}"; do
  printf '%4ss  %s\n' "${STEP_SECS[$i]}" "${STEP_NAMES[$i]}"
done
printf '%4ss  total\n' "$SECONDS"

echo "CI green."
