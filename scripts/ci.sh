#!/usr/bin/env bash
# Tier-1 CI gate: format, lint, build, test, and a bench smoke run.
# Everything here must pass before a change lands (see ROADMAP.md).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> compso-lint --deny (hard 10s budget)"
# Invariant lint over the whole workspace: wire magics, comm-path
# unwraps, unchecked length prefixes, counter registry, deterministic
# wire iteration. The binary was just built by the release build above,
# so the budget measures analysis, not compilation. The JSON report is
# uploaded as a CI artifact (see .github/workflows/ci.yml).
timeout --kill-after=5 10 \
  target/release/compso-lint --deny --json-out target/lint-report.json \
  || { echo "compso-lint found violations or blew its 10s budget" >&2; exit 1; }

echo "==> chaos smoke (hard 300s wall-clock cap)"
# The chaos campaigns assert liveness ("no collective can block
# forever"); a regression there would otherwise hang CI instead of
# failing it, so the smoke runs under a hard external timeout.
timeout --kill-after=10 300 \
  cargo test --release --test chaos -q -- \
  chaos_campaign_converges_with_exact_fault_accounting \
  scheduled_crash_poisons_the_group_and_names_the_rank \
  || { echo "chaos smoke failed or timed out" >&2; exit 1; }

echo "==> checkpoint smoke: save -> kill -> resume (hard 240s wall-clock cap)"
# A real whole-process SIGKILL: the fresh run is killed as soon as its
# first coordinated snapshot lands on disk; --resume must restore it and
# finish. (The in-process rank-kill variant with bit-identity checks is
# tests/checkpoint.rs::crash_campaign_..., gated below.)
cargo build --release --example distributed_kfac
CKPT_DIR=$(mktemp -d)
target/release/examples/distributed_kfac --ckpt-dir "$CKPT_DIR" >/dev/null &
CKPT_PID=$!
for _ in $(seq 1 600); do
  if compgen -G "$CKPT_DIR/step-*" >/dev/null; then break; fi
  if ! kill -0 "$CKPT_PID" 2>/dev/null; then break; fi
  sleep 0.1
done
kill -9 "$CKPT_PID" 2>/dev/null || true
wait "$CKPT_PID" 2>/dev/null || true
timeout --kill-after=10 240 \
  target/release/examples/distributed_kfac --ckpt-dir "$CKPT_DIR" --resume \
  | grep -q "resumed from snapshot" \
  || { echo "checkpoint resume smoke failed" >&2; exit 1; }
rm -rf "$CKPT_DIR"

echo "==> checkpoint crash-campaign smoke (hard 300s wall-clock cap)"
timeout --kill-after=10 300 \
  cargo test --release --test checkpoint -q -- \
  crash_campaign_restores_last_snapshot_and_matches_uninterrupted_run \
  || { echo "checkpoint crash smoke failed or timed out" >&2; exit 1; }

echo "==> bench smoke: fig1"
cargo run -p compso-bench --release --bin fig1 >/dev/null

echo "==> bench smoke: obs_report"
cargo run -p compso-bench --release --bin obs_report >/dev/null

echo "==> bench smoke: bench_compress (reduced size)"
COMPSO_BENCH_ELEMS=$((1 << 18)) COMPSO_BENCH_REPS=1 \
  cargo run -p compso-bench --release --bin bench_compress -- \
  target/BENCH_compress_smoke.json >/dev/null

echo "CI green."
