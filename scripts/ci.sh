#!/usr/bin/env bash
# Tier-1 CI gate: format, lint, build, test, and a bench smoke run.
# Everything here must pass before a change lands (see ROADMAP.md).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> chaos smoke (hard 300s wall-clock cap)"
# The chaos campaigns assert liveness ("no collective can block
# forever"); a regression there would otherwise hang CI instead of
# failing it, so the smoke runs under a hard external timeout.
timeout --kill-after=10 300 \
  cargo test --release --test chaos -q -- \
  chaos_campaign_converges_with_exact_fault_accounting \
  scheduled_crash_poisons_the_group_and_names_the_rank \
  || { echo "chaos smoke failed or timed out" >&2; exit 1; }

echo "==> bench smoke: fig1"
cargo run -p compso-bench --release --bin fig1 >/dev/null

echo "==> bench smoke: obs_report"
cargo run -p compso-bench --release --bin obs_report >/dev/null

echo "==> bench smoke: bench_compress (reduced size)"
COMPSO_BENCH_ELEMS=$((1 << 18)) COMPSO_BENCH_REPS=1 \
  cargo run -p compso-bench --release --bin bench_compress -- \
  target/BENCH_compress_smoke.json >/dev/null

echo "CI green."
