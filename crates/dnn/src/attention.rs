//! Self-attention mixing.
//!
//! K-FAC implementations treat a transformer block's Q/K/V/O projections
//! as ordinary Linear layers (that is how the BERT/GPT specs in
//! [`crate::specs`] count them) and backpropagate through the
//! `softmax(QKᵀ/√d)V` mixing as a parameter-free op. This module is that
//! op: [`SelfAttention`] computes, per sample,
//!
//! ```text
//! Y = softmax(X Xᵀ / √d) X
//! ```
//!
//! over a `(tokens × dim)` view of the feature vector, with an exact
//! backward pass. Composing `Linear → SelfAttention → Linear` yields a
//! transformer-style block whose *parameters* all live in K-FAC-eligible
//! Linear layers, exactly the structure distributed K-FAC sees.

use crate::layer::Layer;
use compso_tensor::Matrix;

/// A parameter-free scaled-dot-product self-attention mixer.
pub struct SelfAttention {
    tokens: usize,
    dim: usize,
    /// Cached per-sample (input view, attention matrix) from the last
    /// training forward.
    cached: Option<Vec<(Matrix, Matrix)>>,
}

impl SelfAttention {
    /// Attention over `tokens` positions of width `dim` (the layer input
    /// width must be `tokens * dim`).
    pub fn new(tokens: usize, dim: usize) -> Self {
        assert!(tokens > 0 && dim > 0);
        SelfAttention {
            tokens,
            dim,
            cached: None,
        }
    }

    /// Softmax over each row of `s`, in place.
    fn softmax_rows(s: &mut Matrix) {
        for r in 0..s.rows() {
            let row = s.row_mut(r);
            let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
            let mut sum = 0.0f64;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v as f64;
            }
            let inv = (1.0 / sum) as f32;
            for v in row.iter_mut() {
                *v *= inv;
            }
        }
    }

    /// One sample's forward: returns (Y, A) with `Y = A X`.
    fn forward_sample(&self, x: &Matrix) -> (Matrix, Matrix) {
        let scale = 1.0 / (self.dim as f32).sqrt();
        let mut scores = x.matmul_t(x); // T x T
        scores.scale(scale);
        Self::softmax_rows(&mut scores);
        let y = scores.matmul(x);
        (y, scores)
    }
}

impl Layer for SelfAttention {
    fn name(&self) -> &'static str {
        "SelfAttention"
    }

    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        assert_eq!(
            x.cols(),
            self.tokens * self.dim,
            "SelfAttention input width"
        );
        let mut out = Matrix::zeros(x.rows(), x.cols());
        let mut cache = if train { Some(Vec::new()) } else { None };
        for b in 0..x.rows() {
            let xb = Matrix::from_vec(self.tokens, self.dim, x.row(b).to_vec());
            let (y, a) = self.forward_sample(&xb);
            out.row_mut(b).copy_from_slice(y.as_slice());
            if let Some(c) = cache.as_mut() {
                c.push((xb, a));
            }
        }
        if train {
            self.cached = cache;
        }
        out
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let cache = self
            .cached
            .as_ref()
            .expect("backward without a training forward");
        assert_eq!(grad_out.rows(), cache.len(), "SelfAttention batch");
        let scale = 1.0 / (self.dim as f32).sqrt();
        let mut dx_all = Matrix::zeros(grad_out.rows(), self.tokens * self.dim);
        for (b, (xb, a)) in cache.iter().enumerate() {
            let dy = Matrix::from_vec(self.tokens, self.dim, grad_out.row(b).to_vec());
            // Y = A X: direct path.
            let mut dx = a.t_matmul(&dy); // Aᵀ dY
                                          // Through A = softmax(S), S = X Xᵀ · scale.
            let da = dy.matmul_t(xb); // dY Xᵀ, T x T
                                      // Row-wise softmax backward: dS_ij = A_ij (dA_ij − Σ_k A_ik dA_ik).
            let mut ds = Matrix::zeros(self.tokens, self.tokens);
            for i in 0..self.tokens {
                let dot: f32 = a
                    .row(i)
                    .iter()
                    .zip(da.row(i))
                    .map(|(&av, &dv)| av * dv)
                    .sum();
                for j in 0..self.tokens {
                    ds.set(i, j, a.get(i, j) * (da.get(i, j) - dot));
                }
            }
            ds.scale(scale);
            // S = X Xᵀ: dX += (dS + dSᵀ) X.
            let mut sym = ds.clone();
            let dst = ds.transpose();
            sym.axpy(1.0, &dst);
            dx.axpy(1.0, &sym.matmul(xb));
            dx_all.row_mut(b).copy_from_slice(dx.as_slice());
        }
        dx_all
    }

    fn set_grads(&mut self, _grads: Matrix) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use compso_tensor::Rng;

    #[test]
    fn forward_shape_and_convexity() {
        let mut rng = Rng::new(1);
        let mut attn = SelfAttention::new(4, 3);
        let x = Matrix::random_normal(2, 12, &mut rng);
        let y = attn.forward(&x, false);
        assert_eq!((y.rows(), y.cols()), (2, 12));
        // Each output token is a convex combination of the input tokens:
        // per feature, it stays inside the input tokens' min/max.
        for b in 0..2 {
            for d in 0..3 {
                let vals: Vec<f32> = (0..4).map(|t| x.get(b, t * 3 + d)).collect();
                let lo = vals.iter().cloned().fold(f32::INFINITY, f32::min);
                let hi = vals.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                for t in 0..4 {
                    let v = y.get(b, t * 3 + d);
                    assert!(v >= lo - 1e-5 && v <= hi + 1e-5, "b={b} t={t} d={d}");
                }
            }
        }
    }

    #[test]
    fn uniform_tokens_are_fixed_points() {
        // If all tokens are identical, attention returns them unchanged.
        let mut attn = SelfAttention::new(3, 2);
        let mut x = Matrix::zeros(1, 6);
        for t in 0..3 {
            x.set(0, t * 2, 1.5);
            x.set(0, t * 2 + 1, -0.5);
        }
        let y = attn.forward(&x, false);
        assert!(y.max_diff(&x) < 1e-6);
    }

    #[test]
    fn input_gradient_matches_numeric() {
        let mut rng = Rng::new(2);
        let mut attn = SelfAttention::new(3, 4);
        let x = Matrix::random_normal(2, 12, &mut rng);
        let probe = Matrix::random_normal(2, 12, &mut rng);
        let _ = attn.forward(&x, true);
        let dx = attn.backward(&probe);
        let eps = 1e-3f32;
        let dot = |m: &Matrix| -> f32 {
            m.as_slice()
                .iter()
                .zip(probe.as_slice())
                .map(|(&a, &b)| a * b)
                .sum()
        };
        for idx in [0usize, 5, 11, 17, 23] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let yp = attn.forward(&xp, false);
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let ym = attn.forward(&xm, false);
            let numeric = (dot(&yp) - dot(&ym)) / (2.0 * eps);
            let analytic = dx.as_slice()[idx];
            assert!(
                (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs()),
                "idx {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn transformer_block_learns_tokens() {
        // Linear -> attention -> Linear beats chance on the token task,
        // with all parameters in K-FAC-eligible Linear layers.
        use crate::data;
        use crate::layer::{Linear, Tanh};
        use crate::loss::{accuracy, softmax_cross_entropy};
        use crate::seq::Sequential;
        let vocab = 10;
        let context = 3;
        let dim = 16;
        let mut rng = Rng::new(3);
        let d = data::token_sequences(1500, vocab, context, 4);
        let mut model = Sequential::new()
            .push(Linear::new(vocab * context, context * dim, &mut rng))
            .push(SelfAttention::new(context, dim))
            .push(Tanh::new())
            .push(Linear::new(context * dim, vocab, &mut rng));
        for step in 0..400 {
            let (x, y) = d.batch(step, 64);
            let logits = model.forward(&x, true);
            let (_, grad) = softmax_cross_entropy(&logits, &y);
            model.backward(&grad);
            model.update_params(|p, g| p.axpy(-0.01, g));
        }
        let logits = model.forward(&d.x, false);
        let acc = accuracy(&logits, &d.y);
        assert!(acc > 0.25, "accuracy {acc} vs chance 0.1");
        // The attention layer carries no parameters.
        assert_eq!(model.trainable_indices(), vec![0, 3]);
    }

    #[test]
    fn eval_mode_does_not_cache() {
        let mut rng = Rng::new(5);
        let mut attn = SelfAttention::new(2, 2);
        let x = Matrix::random_normal(1, 4, &mut rng);
        let _ = attn.forward(&x, false);
        assert!(attn.cached.is_none());
    }
}
