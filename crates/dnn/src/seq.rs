//! The sequential model container.

use crate::layer::{KfacStats, Layer};
use compso_tensor::Matrix;

/// A stack of layers executed in order.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// An empty model.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer (builder style).
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when the model has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Forward pass through all layers.
    pub fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        let mut h = x.clone();
        for layer in &mut self.layers {
            h = layer.forward(&h, train);
        }
        h
    }

    /// Backward pass; parameter gradients are stored in the layers.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Indices of layers that own parameters, in execution order.
    pub fn trainable_indices(&self) -> Vec<usize> {
        (0..self.layers.len())
            .filter(|&i| self.layers[i].params().is_some())
            .collect()
    }

    /// Indices of layers that expose K-FAC statistics after a training
    /// step (Linear/Conv2d).
    pub fn kfac_indices(&self) -> Vec<usize> {
        (0..self.layers.len())
            .filter(|&i| self.layers[i].kfac_stats().is_some())
            .collect()
    }

    /// Immutable access to a layer.
    pub fn layer(&self, idx: usize) -> &dyn Layer {
        self.layers[idx].as_ref()
    }

    /// Mutable access to a layer.
    pub fn layer_mut(&mut self, idx: usize) -> &mut dyn Layer {
        self.layers[idx].as_mut()
    }

    /// K-FAC statistics of layer `idx`, if available.
    pub fn kfac_stats(&self, idx: usize) -> Option<KfacStats> {
        self.layers[idx].kfac_stats()
    }

    /// Total parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Per-trainable-layer gradient sizes in elements (the communication
    /// volumes the compression layer sees).
    pub fn gradient_sizes(&self) -> Vec<usize> {
        self.trainable_indices()
            .into_iter()
            .map(|i| self.layers[i].param_count())
            .collect()
    }

    /// Applies `delta = -lr * grad`-style updates: `f` receives each
    /// trainable layer's parameters and gradients.
    pub fn update_params(&mut self, mut f: impl FnMut(&mut Matrix, &Matrix)) {
        for layer in &mut self.layers {
            if layer.params().is_some() {
                let grads = layer
                    .grads()
                    .expect("trainable layer without grads")
                    .clone();
                let params = layer.params_mut().unwrap();
                f(params, &grads);
            }
        }
    }
}

impl Default for Sequential {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Linear, Relu};
    use compso_tensor::Rng;

    fn two_layer(rng: &mut Rng) -> Sequential {
        Sequential::new()
            .push(Linear::new(4, 8, rng))
            .push(Relu::new())
            .push(Linear::new(8, 3, rng))
    }

    #[test]
    fn forward_shapes() {
        let mut rng = Rng::new(1);
        let mut model = two_layer(&mut rng);
        let x = Matrix::random_normal(5, 4, &mut rng);
        let y = model.forward(&x, false);
        assert_eq!((y.rows(), y.cols()), (5, 3));
    }

    #[test]
    fn trainable_and_kfac_indices() {
        let mut rng = Rng::new(2);
        let mut model = two_layer(&mut rng);
        assert_eq!(model.trainable_indices(), vec![0, 2]);
        // K-FAC stats exist only after a training step.
        assert!(model.kfac_indices().is_empty());
        let x = Matrix::random_normal(2, 4, &mut rng);
        let y = model.forward(&x, true);
        model.backward(&y);
        assert_eq!(model.kfac_indices(), vec![0, 2]);
    }

    #[test]
    fn end_to_end_gradient_is_correct() {
        let mut rng = Rng::new(3);
        let mut model = two_layer(&mut rng);
        let x = Matrix::random_normal(3, 4, &mut rng);
        let probe = Matrix::random_normal(3, 3, &mut rng);
        let _ = model.forward(&x, true);
        let dx = model.backward(&probe);
        let eps = 1e-3f32;
        for idx in [0usize, 5, 11] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let yp = model.forward(&xp, false);
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let ym = model.forward(&xm, false);
            let dot = |m: &Matrix| -> f32 {
                m.as_slice()
                    .iter()
                    .zip(probe.as_slice())
                    .map(|(&a, &b)| a * b)
                    .sum()
            };
            let numeric = (dot(&yp) - dot(&ym)) / (2.0 * eps);
            assert!(
                (numeric - dx.as_slice()[idx]).abs() < 2e-2 * (1.0 + numeric.abs()),
                "idx {idx}"
            );
        }
    }

    #[test]
    fn param_count_and_gradient_sizes() {
        let mut rng = Rng::new(4);
        let model = two_layer(&mut rng);
        // (4+1)*8 + (8+1)*3 = 67.
        assert_eq!(model.param_count(), 67);
        assert_eq!(model.gradient_sizes(), vec![40, 27]);
    }

    #[test]
    fn sgd_update_reduces_probe_loss() {
        let mut rng = Rng::new(5);
        let mut model = two_layer(&mut rng);
        let x = Matrix::random_normal(8, 4, &mut rng);
        let target = Matrix::random_normal(8, 3, &mut rng);
        let loss = |m: &mut Sequential, x: &Matrix, t: &Matrix| -> f32 {
            let y = m.forward(x, false);
            y.as_slice()
                .iter()
                .zip(t.as_slice())
                .map(|(&a, &b)| (a - b) * (a - b))
                .sum::<f32>()
                / (y.len() as f32)
        };
        let before = loss(&mut model, &x, &target);
        for _ in 0..50 {
            let y = model.forward(&x, true);
            let mut g = y.clone();
            g.axpy(-1.0, &target);
            g.scale(2.0 / y.len() as f32);
            model.backward(&g);
            model.update_params(|p, grad| p.axpy(-0.05, grad));
        }
        let after = loss(&mut model, &x, &target);
        assert!(after < before * 0.5, "before {before} after {after}");
    }
}
