//! Trainable proxy model builders.
//!
//! Small networks exercising the same layer types and the same
//! optimizer/compressor code paths as the paper's models (DESIGN.md §1):
//! an MLP classifier (ResNet-50 proxy at classification-head scale), a
//! CNN (Mask R-CNN backbone proxy), and an MLP language model over
//! one-hot context windows (BERT/GPT proxy).

use crate::conv::{Conv2d, ConvShape, GlobalAvgPool};
use crate::layer::{LayerNorm, Linear, Relu, Tanh};
use crate::seq::Sequential;
use compso_tensor::Rng;

/// A ReLU MLP with the given layer widths (`sizes[0]` inputs,
/// `sizes.last()` outputs).
pub fn mlp(sizes: &[usize], rng: &mut Rng) -> Sequential {
    assert!(sizes.len() >= 2, "an MLP needs at least input/output sizes");
    let mut model = Sequential::new();
    for i in 0..sizes.len() - 1 {
        model = model.push(Linear::new(sizes[i], sizes[i + 1], rng));
        if i + 2 < sizes.len() {
            model = model.push(Relu::new());
        }
    }
    model
}

/// A small CNN: conv-relu ×3 (stride-2 downsampling in the middle),
/// global average pool, linear head.
pub fn small_cnn(
    in_c: usize,
    h: usize,
    w: usize,
    classes: usize,
    width: usize,
    rng: &mut Rng,
) -> Sequential {
    let c1 = ConvShape {
        in_c,
        in_h: h,
        in_w: w,
        out_c: width,
        kernel: 3,
        stride: 1,
        pad: 1,
    };
    let c2 = ConvShape {
        in_c: width,
        in_h: h,
        in_w: w,
        out_c: width * 2,
        kernel: 3,
        stride: 2,
        pad: 1,
    };
    let (h2, w2) = (c2.out_h(), c2.out_w());
    let c3 = ConvShape {
        in_c: width * 2,
        in_h: h2,
        in_w: w2,
        out_c: width * 2,
        kernel: 3,
        stride: 1,
        pad: 1,
    };
    Sequential::new()
        .push(Conv2d::new(c1, rng))
        .push(Relu::new())
        .push(Conv2d::new(c2, rng))
        .push(Relu::new())
        .push(Conv2d::new(c3, rng))
        .push(Relu::new())
        .push(GlobalAvgPool::new(width * 2, h2, w2))
        .push(Linear::new(width * 2, classes, rng))
}

/// An MLP language model over one-hot context windows: embedding-like
/// projection, LayerNorm, two hidden blocks with tanh (transformers are
/// smooth, not piecewise-linear), vocab-sized head.
pub fn mlp_lm(vocab: usize, context: usize, hidden: usize, rng: &mut Rng) -> Sequential {
    Sequential::new()
        .push(Linear::new(vocab * context, hidden, rng))
        .push(LayerNorm::new(hidden))
        .push(Tanh::new())
        .push(Linear::new(hidden, hidden, rng))
        .push(Tanh::new())
        .push(Linear::new(hidden, vocab, rng))
}

/// A tiny transformer language model: embedding projection to
/// `context × dim` token features, a self-attention mixing layer,
/// LayerNorm + tanh, and a vocab head. Every parameter lives in a
/// K-FAC-eligible Linear, matching how the BERT/GPT specs count layers.
pub fn tiny_transformer_lm(vocab: usize, context: usize, dim: usize, rng: &mut Rng) -> Sequential {
    use crate::attention::SelfAttention;
    Sequential::new()
        .push(Linear::new(vocab * context, context * dim, rng))
        .push(SelfAttention::new(context, dim))
        .push(LayerNorm::new(context * dim))
        .push(Tanh::new())
        .push(Linear::new(context * dim, vocab, rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data;
    use crate::loss::{accuracy, softmax_cross_entropy};
    use compso_tensor::Matrix;

    /// Plain SGD training helper shared by the smoke tests.
    fn train_sgd(
        model: &mut Sequential,
        d: &data::Dataset,
        lr: f32,
        batch: usize,
        steps: usize,
    ) -> f64 {
        for step in 0..steps {
            let (x, y) = d.batch(step, batch);
            let logits = model.forward(&x, true);
            let (_, grad) = softmax_cross_entropy(&logits, &y);
            model.backward(&grad);
            model.update_params(|p, g| p.axpy(-lr, g));
        }
        let logits = model.forward(&d.x, false);
        accuracy(&logits, &d.y)
    }

    #[test]
    fn mlp_learns_blobs() {
        let mut rng = Rng::new(1);
        let d = data::gaussian_blobs(400, 8, 4, 0.2, 2);
        let mut model = mlp(&[8, 32, 4], &mut rng);
        let acc = train_sgd(&mut model, &d, 0.02, 32, 150);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn mlp_learns_spirals_with_depth() {
        let mut rng = Rng::new(3);
        let d = data::spirals(600, 2, 2, 0.02, 4);
        let mut model = mlp(&[2, 64, 64, 2], &mut rng);
        let acc = train_sgd(&mut model, &d, 0.04, 64, 2500);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn cnn_learns_noisy_images() {
        let mut rng = Rng::new(5);
        let d = data::noisy_images(200, 1, 8, 8, 4, 0.4, 6);
        let mut model = small_cnn(1, 8, 8, 4, 4, &mut rng);
        let acc = train_sgd(&mut model, &d, 0.015, 16, 300);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn lm_beats_chance_after_training() {
        let mut rng = Rng::new(7);
        let d = data::token_sequences(2000, 12, 3, 8);
        let mut model = mlp_lm(12, 3, 48, &mut rng);
        let acc = train_sgd(&mut model, &d, 0.008, 64, 400);
        assert!(acc > 0.25, "accuracy {acc} vs chance {:.3}", 1.0 / 12.0);
    }

    #[test]
    fn builders_produce_expected_layer_counts() {
        let mut rng = Rng::new(9);
        assert_eq!(mlp(&[4, 8, 2], &mut rng).len(), 3); // lin relu lin
        assert_eq!(small_cnn(1, 8, 8, 4, 4, &mut rng).len(), 8);
        assert_eq!(mlp_lm(10, 2, 16, &mut rng).len(), 6);
        assert_eq!(tiny_transformer_lm(10, 2, 8, &mut rng).len(), 5);
    }

    #[test]
    fn transformer_lm_beats_chance_with_kfac_eligible_params_only() {
        let mut rng = Rng::new(13);
        let d = data::token_sequences(1500, 10, 3, 14);
        let mut model = tiny_transformer_lm(10, 3, 12, &mut rng);
        // Parameters: the two Linears plus LayerNorm's gain/bias.
        assert_eq!(model.trainable_indices().len(), 3);
        let acc = train_sgd(&mut model, &d, 0.01, 64, 400);
        assert!(acc > 0.25, "accuracy {acc} vs chance 0.1");
    }

    #[test]
    fn forward_shapes_match_datasets() {
        let mut rng = Rng::new(11);
        let d = data::noisy_images(4, 1, 8, 8, 4, 0.5, 12);
        let mut model = small_cnn(1, 8, 8, 4, 4, &mut rng);
        let logits = model.forward(&Matrix::from_vec(4, 64, d.x.as_slice().to_vec()), false);
        assert_eq!((logits.rows(), logits.cols()), (4, 4));
    }
}
