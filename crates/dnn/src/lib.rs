//! # compso-dnn
//!
//! A minimal DNN training framework with the one feature distributed
//! K-FAC requires and generic autograd frameworks hide: every
//! K-FAC-eligible layer exposes its *K-FAC statistics* — the input
//! activations `a_{l-1}` (bias-augmented) and the pre-activation output
//! gradients `g_l` — captured during forward/backward, exactly the
//! quantities Eq. 1 of the paper builds its Kronecker factors from.
//!
//! The crate provides:
//!
//! * [`layer`] — the [`layer::Layer`] trait plus Linear (bias-augmented),
//!   ReLU, Tanh and LayerNorm;
//! * [`conv`] — an im2col Conv2d whose K-FAC statistics follow the
//!   standard spatial-sum convention, plus GlobalAvgPool;
//! * [`attention`] — a parameter-free scaled-dot-product self-attention
//!   mixer, so transformer-style proxies keep all their parameters in
//!   K-FAC-eligible Linear layers (the convention the BERT/GPT layer
//!   specs follow);
//! * [`seq`] — the [`seq::Sequential`] container;
//! * [`loss`] — softmax cross-entropy and MSE with analytic gradients;
//! * [`data`] — deterministic synthetic datasets (Gaussian blobs, spirals,
//!   image-like classes, token sequences) substituting for the paper's
//!   ImageNet/COCO/Wiki/Pile (see DESIGN.md §1);
//! * [`models`] — trainable proxy model builders;
//! * [`specs`] — per-layer shape inventories of the four paper models
//!   (ResNet-50, Mask R-CNN, BERT-large, GPT-neo-125M) driving the
//!   simulator and compression-ratio experiments.

pub mod attention;
pub mod conv;
pub mod data;
pub mod layer;
pub mod loss;
pub mod models;
pub mod seq;
pub mod specs;

pub use layer::{KfacStats, Layer, Linear};
pub use seq::Sequential;
pub use specs::ModelSpec;
