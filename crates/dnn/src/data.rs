//! Deterministic synthetic datasets.
//!
//! Stand-ins for the paper's ImageNet/COCO/Wiki/Pile (DESIGN.md §1): each
//! generator produces a learnable classification task whose convergence
//! curves respond to optimizer quality and gradient-compression error the
//! same way real tasks do — which is what the convergence experiments
//! (Figs. 3/6, Tab. 1) measure.

use compso_tensor::{Matrix, Rng};

/// A labeled classification dataset.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// One row per sample.
    pub x: Matrix,
    /// Class label per sample.
    pub y: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Feature width.
    pub fn features(&self) -> usize {
        self.x.cols()
    }

    /// The `idx`-th of `count` contiguous equal shards (data parallelism:
    /// each rank trains on its own shard).
    pub fn shard(&self, idx: usize, count: usize) -> Dataset {
        assert!(idx < count, "shard {idx} of {count}");
        let per = self.len() / count;
        let start = idx * per;
        let end = if idx == count - 1 {
            self.len()
        } else {
            start + per
        };
        let mut x = Matrix::zeros(end - start, self.features());
        for (r, src) in (start..end).enumerate() {
            x.row_mut(r).copy_from_slice(self.x.row(src));
        }
        Dataset {
            x,
            y: self.y[start..end].to_vec(),
            classes: self.classes,
        }
    }

    /// Batch `b` of size `batch` (wrapping at the end).
    pub fn batch(&self, b: usize, batch: usize) -> (Matrix, Vec<usize>) {
        assert!(!self.is_empty());
        let mut x = Matrix::zeros(batch, self.features());
        let mut y = Vec::with_capacity(batch);
        for i in 0..batch {
            let src = (b * batch + i) % self.len();
            x.row_mut(i).copy_from_slice(self.x.row(src));
            y.push(self.y[src]);
        }
        (x, y)
    }
}

/// Gaussian blobs: `classes` well-separated clusters in `dim` dimensions.
/// The easy benchmark (ResNet-50-proxy classification head regime).
pub fn gaussian_blobs(n: usize, dim: usize, classes: usize, noise: f32, seed: u64) -> Dataset {
    let mut rng = Rng::new(seed);
    // Random unit-ish centers, pairwise separated by construction of scale.
    let centers = Matrix::random_normal(classes, dim, &mut rng);
    let mut x = Matrix::zeros(n, dim);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % classes;
        y.push(c);
        let row = x.row_mut(i);
        for (d, slot) in row.iter_mut().enumerate() {
            *slot = centers.get(c, d) + noise * rng.normal_f32();
        }
    }
    shuffle_in_place(&mut x, &mut y, &mut rng);
    Dataset { x, y, classes }
}

/// Two-dimensional interleaved spirals lifted to `dim` dimensions with a
/// random linear embedding — a task that genuinely needs the nonlinear
/// layers (the Mask R-CNN-proxy "hard" regime).
pub fn spirals(n: usize, dim: usize, classes: usize, noise: f32, seed: u64) -> Dataset {
    assert!(dim >= 2);
    let mut rng = Rng::new(seed);
    let embed = Matrix::random_normal(2, dim, &mut rng);
    let mut x = Matrix::zeros(n, dim);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % classes;
        y.push(c);
        let t = (i / classes) as f32 / (n / classes) as f32 * 2.0 * std::f32::consts::PI;
        let phase = c as f32 * 2.0 * std::f32::consts::PI / classes as f32;
        let r = 0.2 + 0.8 * t / (3.0 * std::f32::consts::PI);
        let px = r * (t + phase).cos() + noise * rng.normal_f32();
        let py = r * (t + phase).sin() + noise * rng.normal_f32();
        let row = x.row_mut(i);
        for (d, slot) in row.iter_mut().enumerate() {
            *slot = px * embed.get(0, d) + py * embed.get(1, d);
        }
    }
    shuffle_in_place(&mut x, &mut y, &mut rng);
    Dataset { x, y, classes }
}

/// Image-like data: per-class CHW templates plus pixel noise, for the CNN
/// proxy.
pub fn noisy_images(
    n: usize,
    channels: usize,
    h: usize,
    w: usize,
    classes: usize,
    noise: f32,
    seed: u64,
) -> Dataset {
    let mut rng = Rng::new(seed);
    let dim = channels * h * w;
    let templates = Matrix::random_normal(classes, dim, &mut rng);
    let mut x = Matrix::zeros(n, dim);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % classes;
        y.push(c);
        let row = x.row_mut(i);
        for (d, slot) in row.iter_mut().enumerate() {
            *slot = templates.get(c, d) + noise * rng.normal_f32();
        }
    }
    shuffle_in_place(&mut x, &mut y, &mut rng);
    Dataset { x, y, classes }
}

/// Token-sequence next-token prediction: a first-order Markov chain over
/// `vocab` tokens; the input is the one-hot concatenation of a `context`
/// window, the label is the next token. The language-model proxy
/// (GPT-neo / BERT stand-in).
pub fn token_sequences(n: usize, vocab: usize, context: usize, seed: u64) -> Dataset {
    let mut rng = Rng::new(seed);
    // A sparse, learnable transition structure: each token has 2 likely
    // successors.
    let succ: Vec<[usize; 2]> = (0..vocab)
        .map(|_| {
            [
                rng.below(vocab as u64) as usize,
                rng.below(vocab as u64) as usize,
            ]
        })
        .collect();
    let mut x = Matrix::zeros(n, vocab * context);
    let mut y = Vec::with_capacity(n);
    let mut window: Vec<usize> = (0..context)
        .map(|_| rng.below(vocab as u64) as usize)
        .collect();
    for i in 0..n {
        // Emit the current window as one-hot features.
        let row = x.row_mut(i);
        for (pos, &t) in window.iter().enumerate() {
            row[pos * vocab + t] = 1.0;
        }
        // Next token: 90% from the learned structure, 10% noise.
        let token = if rng.uniform_f64() < 0.9 {
            succ[*window.last().unwrap()][usize::from(rng.uniform_f64() < 0.5)]
        } else {
            rng.below(vocab as u64) as usize
        };
        y.push(token);
        window.rotate_left(1);
        *window.last_mut().unwrap() = token;
    }
    Dataset {
        x,
        y,
        classes: vocab,
    }
}

fn shuffle_in_place(x: &mut Matrix, y: &mut [usize], rng: &mut Rng) {
    let n = y.len();
    for i in (1..n).rev() {
        let j = rng.below((i + 1) as u64) as usize;
        if i != j {
            y.swap(i, j);
            // Swap matrix rows.
            let cols = x.cols();
            for c in 0..cols {
                let a = x.get(i, c);
                let b = x.get(j, c);
                x.set(i, c, b);
                x.set(j, c, a);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blobs_are_deterministic_and_balanced() {
        let a = gaussian_blobs(300, 8, 3, 0.1, 42);
        let b = gaussian_blobs(300, 8, 3, 0.1, 42);
        assert_eq!(a.y, b.y);
        assert_eq!(a.x, b.x);
        for c in 0..3 {
            let count = a.y.iter().filter(|&&l| l == c).count();
            assert_eq!(count, 100);
        }
    }

    #[test]
    fn blobs_are_linearly_separable_enough() {
        // Nearest-center classification should be near-perfect at low noise.
        let d = gaussian_blobs(300, 8, 3, 0.05, 7);
        // Recompute centers from the data.
        let mut centers = vec![vec![0.0f32; 8]; 3];
        let mut counts = [0usize; 3];
        for i in 0..d.len() {
            counts[d.y[i]] += 1;
            for (c, v) in centers[d.y[i]].iter_mut().enumerate() {
                *v += d.x.get(i, c);
            }
        }
        for (c, center) in centers.iter_mut().enumerate() {
            for v in center.iter_mut() {
                *v /= counts[c] as f32;
            }
        }
        let mut correct = 0;
        for i in 0..d.len() {
            let mut best = (f32::INFINITY, 0usize);
            for (c, center) in centers.iter().enumerate() {
                let dist: f32 = (0..8).map(|k| (d.x.get(i, k) - center[k]).powi(2)).sum();
                if dist < best.0 {
                    best = (dist, c);
                }
            }
            if best.1 == d.y[i] {
                correct += 1;
            }
        }
        assert!(correct as f64 / d.len() as f64 > 0.99);
    }

    #[test]
    fn shard_partitions_exactly() {
        let d = gaussian_blobs(103, 4, 2, 0.1, 1);
        let shards: Vec<Dataset> = (0..4).map(|i| d.shard(i, 4)).collect();
        let total: usize = shards.iter().map(|s| s.len()).sum();
        assert_eq!(total, 103);
        assert_eq!(shards[0].len(), 25);
        assert_eq!(shards[3].len(), 28); // remainder goes to the last shard
    }

    #[test]
    fn batch_wraps_around() {
        let d = gaussian_blobs(10, 4, 2, 0.1, 2);
        let (x, y) = d.batch(3, 4); // samples 12..16 -> wraps to 2..6
        assert_eq!(x.rows(), 4);
        assert_eq!(y.len(), 4);
        assert_eq!(y[0], d.y[2]);
    }

    #[test]
    fn spirals_need_nonlinearity() {
        // Classes are radially interleaved: class means nearly coincide,
        // so a nearest-centroid (linear) rule can't separate them well.
        let d = spirals(400, 2, 2, 0.0, 3);
        let mut means = vec![vec![0.0f32; 2]; 2];
        let mut counts = [0usize; 2];
        for i in 0..d.len() {
            counts[d.y[i]] += 1;
            for (c, v) in means[d.y[i]].iter_mut().enumerate() {
                *v += d.x.get(i, c);
            }
        }
        for (c, m) in means.iter_mut().enumerate() {
            for v in m.iter_mut() {
                *v /= counts[c] as f32;
            }
        }
        let dist: f32 = (0..2).map(|k| (means[0][k] - means[1][k]).powi(2)).sum();
        assert!(dist < 0.5, "spiral class means too separated: {dist}");
    }

    #[test]
    fn token_sequences_are_predictable() {
        let d = token_sequences(2000, 16, 3, 4);
        assert_eq!(d.features(), 48);
        assert_eq!(d.classes, 16);
        // Each row is a valid one-hot stack.
        for i in 0..20 {
            for pos in 0..3 {
                let ones = (0..16).filter(|&t| d.x.get(i, pos * 16 + t) == 1.0).count();
                assert_eq!(ones, 1, "row {i} pos {pos}");
            }
        }
        // The majority-successor rule beats chance by a wide margin: the
        // task is learnable.
        let mut table = vec![[0usize; 16]; 16];
        for i in 0..d.len() {
            let last = (0..16).find(|&t| d.x.get(i, 2 * 16 + t) == 1.0).unwrap();
            table[last][d.y[i]] += 1;
        }
        let mut correct = 0usize;
        let mut total = 0usize;
        for row in &table {
            correct += row.iter().max().unwrap();
            total += row.iter().sum::<usize>();
        }
        assert!(correct as f64 / total as f64 > 0.3, "not predictable");
    }

    #[test]
    fn noisy_images_have_expected_width() {
        let d = noisy_images(50, 2, 6, 6, 4, 0.3, 5);
        assert_eq!(d.features(), 72);
        assert_eq!(d.classes, 4);
    }
}
