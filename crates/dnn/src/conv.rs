//! im2col convolution and pooling.
//!
//! Feature maps travel between layers as row-major matrices with one row
//! per sample and CHW-flattened columns. Conv2d lowers each sample to a
//! patch matrix (im2col) and multiplies by a bias-augmented kernel
//! matrix, which makes its K-FAC statistics the standard convolution
//! convention: one `(a, g)` row per (sample × output position).

use crate::layer::{KfacStats, Layer};
use compso_tensor::{Matrix, Rng};

/// Spatial geometry of a conv layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConvShape {
    pub in_c: usize,
    pub in_h: usize,
    pub in_w: usize,
    pub out_c: usize,
    pub kernel: usize,
    pub stride: usize,
    pub pad: usize,
}

impl ConvShape {
    /// Output height.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.pad - self.kernel) / self.stride + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.pad - self.kernel) / self.stride + 1
    }

    /// Flattened input width.
    pub fn in_elems(&self) -> usize {
        self.in_c * self.in_h * self.in_w
    }

    /// Flattened output width.
    pub fn out_elems(&self) -> usize {
        self.out_c * self.out_h() * self.out_w()
    }

    /// Patch width (without bias).
    pub fn patch(&self) -> usize {
        self.in_c * self.kernel * self.kernel
    }
}

/// A 2-D convolution layer.
pub struct Conv2d {
    shape: ConvShape,
    /// `(patch+1) × out_c`, bias in the last row.
    weight: Matrix,
    grad: Matrix,
    cached_a: Option<Matrix>,
    cached_g: Option<Matrix>,
}

impl Conv2d {
    /// He-initialized convolution.
    pub fn new(shape: ConvShape, rng: &mut Rng) -> Self {
        let fan_in = shape.patch();
        let std = (2.0 / fan_in as f32).sqrt();
        let mut weight = Matrix::random_normal(fan_in + 1, shape.out_c, rng);
        weight.scale(std);
        for c in 0..shape.out_c {
            weight.set(fan_in, c, 0.0);
        }
        Conv2d {
            shape,
            weight,
            grad: Matrix::zeros(fan_in + 1, shape.out_c),
            cached_a: None,
            cached_g: None,
        }
    }

    /// The layer's geometry.
    pub fn shape(&self) -> ConvShape {
        self.shape
    }

    /// Lowers one sample (CHW slice) to its bias-augmented patch matrix:
    /// `out_h*out_w` rows × `patch+1` cols.
    fn im2col(&self, sample: &[f32]) -> Matrix {
        let s = &self.shape;
        let (oh, ow) = (s.out_h(), s.out_w());
        let pw = s.patch();
        let mut p = Matrix::zeros(oh * ow, pw + 1);
        for oy in 0..oh {
            for ox in 0..ow {
                let row = oy * ow + ox;
                let out_row = p.row_mut(row);
                let mut col = 0usize;
                for c in 0..s.in_c {
                    for ky in 0..s.kernel {
                        for kx in 0..s.kernel {
                            let iy = (oy * s.stride + ky) as isize - s.pad as isize;
                            let ix = (ox * s.stride + kx) as isize - s.pad as isize;
                            if iy >= 0
                                && (iy as usize) < s.in_h
                                && ix >= 0
                                && (ix as usize) < s.in_w
                            {
                                out_row[col] = sample
                                    [c * s.in_h * s.in_w + iy as usize * s.in_w + ix as usize];
                            }
                            col += 1;
                        }
                    }
                }
                out_row[pw] = 1.0;
            }
        }
        p
    }

    /// Scatter-adds a patch-gradient matrix back into an input-gradient
    /// CHW slice (col2im).
    fn col2im(&self, dpatch: &Matrix, dx: &mut [f32]) {
        let s = &self.shape;
        let (oh, ow) = (s.out_h(), s.out_w());
        for oy in 0..oh {
            for ox in 0..ow {
                let row = dpatch.row(oy * ow + ox);
                let mut col = 0usize;
                for c in 0..s.in_c {
                    for ky in 0..s.kernel {
                        for kx in 0..s.kernel {
                            let iy = (oy * s.stride + ky) as isize - s.pad as isize;
                            let ix = (ox * s.stride + kx) as isize - s.pad as isize;
                            if iy >= 0
                                && (iy as usize) < s.in_h
                                && ix >= 0
                                && (ix as usize) < s.in_w
                            {
                                dx[c * s.in_h * s.in_w + iy as usize * s.in_w + ix as usize] +=
                                    row[col];
                            }
                            col += 1;
                        }
                    }
                }
            }
        }
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "Conv2d"
    }

    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        let s = self.shape;
        assert_eq!(x.cols(), s.in_elems(), "Conv2d input width");
        let (oh, ow) = (s.out_h(), s.out_w());
        let positions = oh * ow;
        let mut y = Matrix::zeros(x.rows(), s.out_elems());
        let mut all_patches = if train {
            Some(Matrix::zeros(x.rows() * positions, s.patch() + 1))
        } else {
            None
        };
        for b in 0..x.rows() {
            let p = self.im2col(x.row(b));
            let o = p.matmul(&self.weight); // positions × out_c
            let yrow = y.row_mut(b);
            for pos in 0..positions {
                for oc in 0..s.out_c {
                    yrow[oc * positions + pos] = o.get(pos, oc);
                }
            }
            if let Some(ap) = all_patches.as_mut() {
                for pos in 0..positions {
                    ap.row_mut(b * positions + pos).copy_from_slice(p.row(pos));
                }
            }
        }
        if train {
            self.cached_a = all_patches;
        }
        y
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let s = self.shape;
        let a = self
            .cached_a
            .as_ref()
            .expect("backward without a training forward");
        let (oh, ow) = (s.out_h(), s.out_w());
        let positions = oh * ow;
        let batch = grad_out.rows();
        assert_eq!(grad_out.cols(), s.out_elems(), "Conv2d grad width");
        assert_eq!(a.rows(), batch * positions, "cached patch rows");

        // Re-layout dY to (batch*positions) × out_c.
        let mut g = Matrix::zeros(batch * positions, s.out_c);
        for b in 0..batch {
            let grow = grad_out.row(b);
            for pos in 0..positions {
                for oc in 0..s.out_c {
                    g.set(b * positions + pos, oc, grow[oc * positions + pos]);
                }
            }
        }

        // dW = aᵀ g / batch (gradient of the *mean* loss over samples;
        // spatial positions sum, samples average — the usual convention).
        let mut grad = a.t_matmul(&g);
        grad.scale(1.0 / batch as f32);
        self.grad = grad;

        // dX: per sample, dpatch = g_b Wᵀ (minus bias column), col2im.
        let mut dx = Matrix::zeros(batch, s.in_elems());
        for b in 0..batch {
            let mut g_b = Matrix::zeros(positions, s.out_c);
            for pos in 0..positions {
                g_b.row_mut(pos).copy_from_slice(g.row(b * positions + pos));
            }
            let dpatch_full = g_b.matmul_t(&self.weight); // positions × (patch+1)
            let mut dpatch = Matrix::zeros(positions, s.patch());
            for pos in 0..positions {
                dpatch
                    .row_mut(pos)
                    .copy_from_slice(&dpatch_full.row(pos)[..s.patch()]);
            }
            self.col2im(&dpatch, dx.row_mut(b));
        }
        self.cached_g = Some(g);
        dx
    }

    fn params(&self) -> Option<&Matrix> {
        Some(&self.weight)
    }

    fn params_mut(&mut self) -> Option<&mut Matrix> {
        Some(&mut self.weight)
    }

    fn grads(&self) -> Option<&Matrix> {
        Some(&self.grad)
    }

    fn grads_mut(&mut self) -> Option<&mut Matrix> {
        Some(&mut self.grad)
    }

    fn set_grads(&mut self, grads: Matrix) {
        assert_eq!(
            (grads.rows(), grads.cols()),
            (self.weight.rows(), self.weight.cols()),
            "gradient shape"
        );
        self.grad = grads;
    }

    fn kfac_stats(&self) -> Option<KfacStats> {
        match (&self.cached_a, &self.cached_g) {
            (Some(a), Some(g)) => Some(KfacStats {
                a: a.clone(),
                g: g.clone(),
            }),
            _ => None,
        }
    }
}

/// Global average pooling: `(batch, C*H*W) → (batch, C)`.
pub struct GlobalAvgPool {
    channels: usize,
    hw: usize,
}

impl GlobalAvgPool {
    /// Pool over `h*w` positions per channel.
    pub fn new(channels: usize, h: usize, w: usize) -> Self {
        GlobalAvgPool {
            channels,
            hw: h * w,
        }
    }
}

impl Layer for GlobalAvgPool {
    fn name(&self) -> &'static str {
        "GlobalAvgPool"
    }

    fn forward(&mut self, x: &Matrix, _train: bool) -> Matrix {
        assert_eq!(x.cols(), self.channels * self.hw, "pool input width");
        let mut y = Matrix::zeros(x.rows(), self.channels);
        for b in 0..x.rows() {
            let row = x.row(b);
            for c in 0..self.channels {
                let s: f32 = row[c * self.hw..(c + 1) * self.hw].iter().sum();
                y.set(b, c, s / self.hw as f32);
            }
        }
        y
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        assert_eq!(grad_out.cols(), self.channels, "pool grad width");
        let mut dx = Matrix::zeros(grad_out.rows(), self.channels * self.hw);
        let inv = 1.0 / self.hw as f32;
        for b in 0..grad_out.rows() {
            for c in 0..self.channels {
                let g = grad_out.get(b, c) * inv;
                for p in 0..self.hw {
                    dx.set(b, c * self.hw + p, g);
                }
            }
        }
        dx
    }

    fn set_grads(&mut self, _grads: Matrix) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_shape() -> ConvShape {
        ConvShape {
            in_c: 2,
            in_h: 5,
            in_w: 5,
            out_c: 3,
            kernel: 3,
            stride: 1,
            pad: 1,
        }
    }

    #[test]
    fn shape_arithmetic() {
        let s = small_shape();
        assert_eq!(s.out_h(), 5);
        assert_eq!(s.out_w(), 5);
        assert_eq!(s.in_elems(), 50);
        assert_eq!(s.out_elems(), 75);
        assert_eq!(s.patch(), 18);
        let strided = ConvShape {
            stride: 2,
            ..small_shape()
        };
        assert_eq!(strided.out_h(), 3);
    }

    #[test]
    fn forward_shape() {
        let mut rng = Rng::new(1);
        let mut conv = Conv2d::new(small_shape(), &mut rng);
        let x = Matrix::random_normal(2, 50, &mut rng);
        let y = conv.forward(&x, false);
        assert_eq!((y.rows(), y.cols()), (2, 75));
    }

    #[test]
    fn identity_kernel_passes_input_through() {
        // 1x1 kernel, one in/out channel, weight 1, bias 0 = identity.
        let s = ConvShape {
            in_c: 1,
            in_h: 4,
            in_w: 4,
            out_c: 1,
            kernel: 1,
            stride: 1,
            pad: 0,
        };
        let mut rng = Rng::new(2);
        let mut conv = Conv2d::new(s, &mut rng);
        conv.params_mut().unwrap().set(0, 0, 1.0);
        conv.params_mut().unwrap().set(1, 0, 0.0);
        let x = Matrix::random_normal(1, 16, &mut rng);
        let y = conv.forward(&x, false);
        assert!(y.max_diff(&x) < 1e-6);
    }

    #[test]
    fn input_gradient_matches_numeric() {
        let s = ConvShape {
            in_c: 1,
            in_h: 4,
            in_w: 4,
            out_c: 2,
            kernel: 3,
            stride: 1,
            pad: 1,
        };
        let mut rng = Rng::new(3);
        let mut conv = Conv2d::new(s, &mut rng);
        let x = Matrix::random_normal(1, 16, &mut rng);
        let probe = Matrix::random_normal(1, 32, &mut rng);
        let _ = conv.forward(&x, true);
        let dx = conv.backward(&probe);
        let eps = 1e-3f32;
        for idx in [0usize, 7, 15] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let yp = conv.forward(&xp, false);
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let ym = conv.forward(&xm, false);
            let dot = |m: &Matrix| -> f32 {
                m.as_slice()
                    .iter()
                    .zip(probe.as_slice())
                    .map(|(&a, &b)| a * b)
                    .sum()
            };
            let numeric = (dot(&yp) - dot(&ym)) / (2.0 * eps);
            let analytic = dx.as_slice()[idx];
            assert!(
                (numeric - analytic).abs() < 1e-2 * (1.0 + numeric.abs()),
                "idx {idx}: {numeric} vs {analytic}"
            );
        }
    }

    #[test]
    fn param_gradient_matches_numeric() {
        let s = ConvShape {
            in_c: 1,
            in_h: 3,
            in_w: 3,
            out_c: 1,
            kernel: 3,
            stride: 1,
            pad: 1,
        };
        let mut rng = Rng::new(4);
        let mut conv = Conv2d::new(s, &mut rng);
        let x = Matrix::random_normal(2, 9, &mut rng);
        let probe = Matrix::random_normal(2, 9, &mut rng);
        let _ = conv.forward(&x, true);
        let _ = conv.backward(&probe);
        let analytic = conv.grads().unwrap().clone();
        let eps = 1e-3f32;
        for (r, c) in [(0usize, 0usize), (4, 0), (9, 0)] {
            // (9, 0) is the bias row.
            let orig = conv.params().unwrap().get(r, c);
            conv.params_mut().unwrap().set(r, c, orig + eps);
            let yp = conv.forward(&x, false);
            conv.params_mut().unwrap().set(r, c, orig - eps);
            let ym = conv.forward(&x, false);
            conv.params_mut().unwrap().set(r, c, orig);
            let dot = |m: &Matrix| -> f32 {
                m.as_slice()
                    .iter()
                    .zip(probe.as_slice())
                    .map(|(&a, &b)| a * b)
                    .sum()
            };
            let numeric = (dot(&yp) - dot(&ym)) / (2.0 * eps) / x.rows() as f32;
            let got = analytic.get(r, c);
            assert!(
                (numeric - got).abs() < 1e-2 * (1.0 + numeric.abs()),
                "({r},{c}): {numeric} vs {got}"
            );
        }
    }

    #[test]
    fn kfac_stats_have_position_rows() {
        let s = small_shape();
        let mut rng = Rng::new(5);
        let mut conv = Conv2d::new(s, &mut rng);
        let x = Matrix::random_normal(3, 50, &mut rng);
        let y = conv.forward(&x, true);
        let _ = conv.backward(&y);
        let stats = conv.kfac_stats().unwrap();
        // 3 samples × 25 positions.
        assert_eq!(stats.a.rows(), 75);
        assert_eq!(stats.a.cols(), s.patch() + 1);
        assert_eq!(stats.g.rows(), 75);
        assert_eq!(stats.g.cols(), s.out_c);
    }

    #[test]
    fn avgpool_forward_and_backward() {
        let mut pool = GlobalAvgPool::new(2, 2, 2);
        let x = Matrix::from_vec(1, 8, vec![1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0]);
        let y = pool.forward(&x, true);
        assert_eq!(y.as_slice(), &[2.5, 10.0]);
        let g = Matrix::from_vec(1, 2, vec![4.0, 8.0]);
        let dx = pool.backward(&g);
        assert_eq!(dx.as_slice(), &[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
    }
}
