//! Layer-shape inventories of the four paper models.
//!
//! The timing/ratio experiments (Figs. 1/7/9, Tab. 2) need realistic
//! per-layer K-FAC gradient sizes and factor dimensions for ResNet-50,
//! Mask R-CNN, BERT-large and GPT-neo-125M — not trained weights. These
//! inventories are built from the published architectures:
//!
//! * **ResNet-50** — conv1, 16 bottleneck blocks (1×1/3×3/1×1 convs with
//!   the standard channel progression 64→2048), 4 downsample projections,
//!   fc head: 53 K-FAC-eligible layers, ≈25.5 M parameters.
//! * **Mask R-CNN (R50-FPN)** — the ResNet-50 backbone plus FPN lateral/
//!   output convs, RPN head, box head (two 1024-wide fc), mask head
//!   (4 convs + deconv + predictor): ≈44 M parameters.
//! * **BERT-large** — 24 transformer blocks (hidden 1024, FFN 4096,
//!   Q/K/V/O projections), embeddings + pooler: ≈340 M parameters.
//! * **GPT-neo-125M** — 12 blocks (hidden 768, FFN 3072) + embeddings:
//!   ≈125 M parameters.
//!
//! A layer's K-FAC gradient is an `(in+1) × out` matrix (`in` counts
//! kernel taps for convs); its Kronecker factors are `(in+1)²` and
//! `out²`.

/// One K-FAC-eligible layer of a model spec.
#[derive(Clone, Debug)]
pub struct LayerSpec {
    /// Diagnostic name.
    pub name: String,
    /// Input width `in` (patch size for convs), without the bias.
    pub in_dim: usize,
    /// Output width.
    pub out_dim: usize,
}

impl LayerSpec {
    fn new(name: impl Into<String>, in_dim: usize, out_dim: usize) -> Self {
        LayerSpec {
            name: name.into(),
            in_dim,
            out_dim,
        }
    }

    /// Elements of the K-FAC gradient `(in+1) × out`.
    pub fn grad_elems(&self) -> usize {
        (self.in_dim + 1) * self.out_dim
    }

    /// Elements of the activation factor `A` (`(in+1)²`).
    pub fn factor_a_elems(&self) -> usize {
        (self.in_dim + 1) * (self.in_dim + 1)
    }

    /// Elements of the gradient factor `G` (`out²`).
    pub fn factor_g_elems(&self) -> usize {
        self.out_dim * self.out_dim
    }

    /// Approximate eigendecomposition cost of both factors, in FLOPs
    /// (cubic with a small constant).
    pub fn eigen_flops(&self) -> f64 {
        let a = (self.in_dim + 1) as f64;
        let g = self.out_dim as f64;
        10.0 * (a * a * a + g * g * g)
    }
}

/// A whole-model layer inventory.
#[derive(Clone, Debug)]
pub struct ModelSpec {
    /// Model name as used in the paper's figures.
    pub name: &'static str,
    /// K-FAC-eligible layers in execution order.
    pub layers: Vec<LayerSpec>,
    /// Forward+backward cost per sample, FLOPs (published estimates).
    pub fwd_bwd_flops_per_sample: f64,
    /// Per-GPU minibatch size used in the paper-scale experiments.
    pub per_gpu_batch: usize,
}

impl ModelSpec {
    /// Total K-FAC gradient elements (the all-gather volume).
    pub fn total_grad_elems(&self) -> usize {
        self.layers.iter().map(|l| l.grad_elems()).sum()
    }

    /// Total gradient bytes at f32.
    pub fn total_grad_bytes(&self) -> u64 {
        self.total_grad_elems() as u64 * 4
    }

    /// Total covariance-factor elements (the all-reduce volume).
    pub fn total_factor_elems(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.factor_a_elems() + l.factor_g_elems())
            .sum()
    }

    /// Per-layer gradient sizes in bytes, execution order.
    pub fn layer_grad_bytes(&self) -> Vec<u64> {
        self.layers
            .iter()
            .map(|l| l.grad_elems() as u64 * 4)
            .collect()
    }

    /// Total eigendecomposition FLOPs across layers.
    pub fn total_eigen_flops(&self) -> f64 {
        self.layers.iter().map(|l| l.eigen_flops()).sum()
    }

    /// All four paper models.
    pub fn all() -> Vec<ModelSpec> {
        vec![
            ModelSpec::resnet50(),
            ModelSpec::mask_rcnn(),
            ModelSpec::bert_large(),
            ModelSpec::gpt_neo_125m(),
        ]
    }

    /// ResNet-50's K-FAC layer inventory.
    pub fn resnet50() -> ModelSpec {
        let mut layers = Vec::new();
        layers.push(LayerSpec::new("conv1", 3 * 7 * 7, 64));
        // (blocks, in_ch at stage entry, bottleneck width) per stage.
        let stages: [(usize, usize, usize); 4] =
            [(3, 64, 64), (4, 256, 128), (6, 512, 256), (3, 1024, 512)];
        for (s, &(blocks, stage_in, width)) in stages.iter().enumerate() {
            let out = width * 4;
            for b in 0..blocks {
                let block_in = if b == 0 { stage_in } else { out };
                layers.push(LayerSpec::new(
                    format!("layer{}.{}.conv1", s + 1, b),
                    block_in,
                    width,
                ));
                layers.push(LayerSpec::new(
                    format!("layer{}.{}.conv2", s + 1, b),
                    width * 9,
                    width,
                ));
                layers.push(LayerSpec::new(
                    format!("layer{}.{}.conv3", s + 1, b),
                    width,
                    out,
                ));
                if b == 0 {
                    layers.push(LayerSpec::new(
                        format!("layer{}.0.downsample", s + 1),
                        block_in,
                        out,
                    ));
                }
            }
        }
        layers.push(LayerSpec::new("fc", 2048, 1000));
        ModelSpec {
            name: "ResNet-50",
            layers,
            fwd_bwd_flops_per_sample: 3.0 * 4.1e9, // ~4.1 GFLOP fwd, 3x for fwd+bwd
            per_gpu_batch: 64,
        }
    }

    /// Mask R-CNN with the ResNet-50-FPN backbone.
    pub fn mask_rcnn() -> ModelSpec {
        let mut layers = ModelSpec::resnet50().layers;
        // Drop the classification head; detection heads replace it.
        layers.pop();
        // FPN lateral 1x1 and output 3x3 convs at 4 scales.
        for (i, &c) in [256usize, 512, 1024, 2048].iter().enumerate() {
            layers.push(LayerSpec::new(format!("fpn.lateral{i}"), c, 256));
            layers.push(LayerSpec::new(format!("fpn.output{i}"), 256 * 9, 256));
        }
        // RPN: shared 3x3 conv, objectness and box regressors.
        layers.push(LayerSpec::new("rpn.conv", 256 * 9, 256));
        layers.push(LayerSpec::new("rpn.cls", 256, 3));
        layers.push(LayerSpec::new("rpn.bbox", 256, 12));
        // Box head: 7x7x256 pooled features -> 1024 -> 1024 -> cls/box.
        layers.push(LayerSpec::new("box.fc1", 7 * 7 * 256, 1024));
        layers.push(LayerSpec::new("box.fc2", 1024, 1024));
        layers.push(LayerSpec::new("box.cls", 1024, 81));
        layers.push(LayerSpec::new("box.reg", 1024, 320));
        // Mask head: four 3x3 convs, a deconv, the mask predictor.
        for i in 0..4 {
            layers.push(LayerSpec::new(format!("mask.conv{i}"), 256 * 9, 256));
        }
        layers.push(LayerSpec::new("mask.deconv", 256 * 4, 256));
        layers.push(LayerSpec::new("mask.pred", 256, 80));
        ModelSpec {
            name: "Mask R-CNN",
            layers,
            fwd_bwd_flops_per_sample: 3.0 * 60e9, // effective per-sample cost, calibrated to Fig. 1 phase ratios
            per_gpu_batch: 4,
        }
    }

    /// BERT-large (uncased) transformer encoder.
    pub fn bert_large() -> ModelSpec {
        let hidden = 1024;
        let ffn = 4096;
        let mut layers = Vec::new();
        // Token embeddings behave as a (vocab → hidden) linear in K-FAC
        // terms; kept out (embedding rows are sparse-updated in practice)
        // in line with K-FAC implementations that precondition
        // linear/conv only — but the dense pooler and heads count.
        for b in 0..24 {
            for proj in ["q", "k", "v", "o"] {
                layers.push(LayerSpec::new(
                    format!("encoder.{b}.attn.{proj}"),
                    hidden,
                    hidden,
                ));
            }
            layers.push(LayerSpec::new(format!("encoder.{b}.ffn.in"), hidden, ffn));
            layers.push(LayerSpec::new(format!("encoder.{b}.ffn.out"), ffn, hidden));
        }
        layers.push(LayerSpec::new("pooler", hidden, hidden));
        ModelSpec {
            name: "BERT-large",
            layers,
            fwd_bwd_flops_per_sample: 3.0 * 120e9, // effective per-sequence cost, calibrated to Fig. 1 phase ratios
            per_gpu_batch: 8,
        }
    }

    /// GPT-neo-125M decoder.
    pub fn gpt_neo_125m() -> ModelSpec {
        let hidden = 768;
        let ffn = 3072;
        let mut layers = Vec::new();
        for b in 0..12 {
            for proj in ["q", "k", "v", "o"] {
                layers.push(LayerSpec::new(
                    format!("decoder.{b}.attn.{proj}"),
                    hidden,
                    hidden,
                ));
            }
            layers.push(LayerSpec::new(format!("decoder.{b}.ffn.in"), hidden, ffn));
            layers.push(LayerSpec::new(format!("decoder.{b}.ffn.out"), ffn, hidden));
        }
        ModelSpec {
            name: "GPT-neo-125M",
            layers,
            fwd_bwd_flops_per_sample: 3.0 * 50e9, // effective per-sequence cost, calibrated to Fig. 1 phase ratios
            per_gpu_batch: 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet50_parameter_count_is_plausible() {
        let spec = ModelSpec::resnet50();
        let params = spec.total_grad_elems();
        // Published conv+fc parameter count ≈ 25.5 M.
        assert!(
            (23_000_000..28_000_000).contains(&params),
            "params {params}"
        );
        assert_eq!(spec.layers.len(), 54); // conv1 + 48 block convs + 4 downsample + fc
    }

    #[test]
    fn bert_large_parameter_count_is_plausible() {
        let spec = ModelSpec::bert_large();
        let params = spec.total_grad_elems();
        // Encoder linears of BERT-large ≈ 24 * 12.6M ≈ 302M.
        assert!(
            (280_000_000..330_000_000).contains(&params),
            "params {params}"
        );
    }

    #[test]
    fn gpt_neo_parameter_count_is_plausible() {
        let spec = ModelSpec::gpt_neo_125m();
        let params = spec.total_grad_elems();
        // Blocks only (no embedding): ≈ 12 * 7.1M ≈ 85M.
        assert!(
            (70_000_000..100_000_000).contains(&params),
            "params {params}"
        );
    }

    #[test]
    fn mask_rcnn_larger_than_resnet() {
        let r = ModelSpec::resnet50().total_grad_elems();
        let m = ModelSpec::mask_rcnn().total_grad_elems();
        assert!(m > r, "mask {m} vs resnet {r}");
        assert!((38_000_000..50_000_000).contains(&m), "params {m}");
    }

    #[test]
    fn layer_sizes_vary_by_orders_of_magnitude() {
        // The motivation for layer aggregation (§4.4): tiny and huge
        // layers coexist.
        let spec = ModelSpec::mask_rcnn();
        let sizes = spec.layer_grad_bytes();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max / min > 1000, "spread {}", max / min);
    }

    #[test]
    fn factor_volume_exceeds_gradient_volume_for_wide_ffn_layers() {
        // The (4096+1)² FFN activation factor dwarfs the 1024×4096 grad —
        // which is why distributed K-FAC amortizes the factor all-reduce
        // over a multi-iteration update interval while the gradient
        // all-gather runs every iteration (Fig. 1's Allgather ≫ Allreduce).
        let spec = ModelSpec::bert_large();
        assert!(spec.total_factor_elems() > spec.total_grad_elems());
    }

    #[test]
    fn grad_and_factor_arithmetic() {
        let l = LayerSpec::new("t", 4, 3);
        assert_eq!(l.grad_elems(), 15);
        assert_eq!(l.factor_a_elems(), 25);
        assert_eq!(l.factor_g_elems(), 9);
        assert!(l.eigen_flops() > 0.0);
    }

    #[test]
    fn all_returns_four_models() {
        let names: Vec<&str> = ModelSpec::all().iter().map(|m| m.name).collect();
        assert_eq!(
            names,
            vec!["ResNet-50", "Mask R-CNN", "BERT-large", "GPT-neo-125M"]
        );
    }
}
