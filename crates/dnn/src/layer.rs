//! The layer abstraction and the dense layers.
//!
//! Shapes are row-major `Matrix`es with the batch dimension on rows.
//! A layer owns its parameters and, after `backward`, its parameter
//! gradients. K-FAC-eligible layers additionally retain the statistics
//! `(a, g)` of the last step when capture is enabled.

use compso_tensor::{Matrix, Rng};

/// The K-FAC statistics of one layer for one training step (Eq. 1).
#[derive(Clone, Debug)]
pub struct KfacStats {
    /// Input activations, one row per (sample × spatial position), with
    /// the homogeneous bias coordinate appended — `a_{l-1}`.
    pub a: Matrix,
    /// Gradients w.r.t. the pre-activation outputs, matching rows — `g_l`.
    pub g: Matrix,
}

/// A differentiable layer.
pub trait Layer: Send {
    /// Layer kind label for diagnostics.
    fn name(&self) -> &'static str;

    /// Forward pass. With `train` set, the layer caches whatever its
    /// backward pass and K-FAC statistics need.
    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix;

    /// Backward pass: consumes dL/d(output), returns dL/d(input), and
    /// stores dL/d(params) internally (averaged over the batch).
    fn backward(&mut self, grad_out: &Matrix) -> Matrix;

    /// Flattened parameter tensor, if the layer has one.
    fn params(&self) -> Option<&Matrix> {
        None
    }

    /// Mutable parameters.
    fn params_mut(&mut self) -> Option<&mut Matrix> {
        None
    }

    /// Flattened parameter gradient from the last backward pass.
    fn grads(&self) -> Option<&Matrix> {
        None
    }

    /// Mutable access to the parameter gradient, for optimizers that
    /// update it in place (e.g. the bucketed gradient sync's scatter-back)
    /// instead of allocating a replacement via [`Layer::set_grads`].
    fn grads_mut(&mut self) -> Option<&mut Matrix> {
        None
    }

    /// Replaces the parameter gradient (after preconditioning or
    /// decompression the optimizer writes the processed gradient back).
    fn set_grads(&mut self, grads: Matrix);

    /// The last step's K-FAC statistics, when the layer supports K-FAC.
    fn kfac_stats(&self) -> Option<KfacStats> {
        None
    }

    /// Number of parameters.
    fn param_count(&self) -> usize {
        self.params().map_or(0, |p| p.len())
    }
}

/// A fully-connected layer with the bias folded into the weight matrix:
/// `y = [x, 1] · W` with `W: (in+1) × out`.
///
/// The augmented form makes the K-FAC factor `A = E[ã ãᵀ]` exactly the
/// (in+1)² matrix the literature uses.
pub struct Linear {
    weight: Matrix,
    grad: Matrix,
    /// Cached augmented input from the last training forward.
    cached_a: Option<Matrix>,
    /// Cached pre-activation output gradient from the last backward.
    cached_g: Option<Matrix>,
}

impl Linear {
    /// He-initialized linear layer.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut Rng) -> Self {
        let std = (2.0 / in_dim as f32).sqrt();
        let mut weight = Matrix::random_normal(in_dim + 1, out_dim, rng);
        weight.scale(std);
        // Zero the bias row.
        for c in 0..out_dim {
            weight.set(in_dim, c, 0.0);
        }
        Linear {
            weight,
            grad: Matrix::zeros(in_dim + 1, out_dim),
            cached_a: None,
            cached_g: None,
        }
    }

    /// Input width (without the bias coordinate).
    pub fn in_dim(&self) -> usize {
        self.weight.rows() - 1
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.weight.cols()
    }

    fn augment(x: &Matrix) -> Matrix {
        let mut a = Matrix::zeros(x.rows(), x.cols() + 1);
        for r in 0..x.rows() {
            a.row_mut(r)[..x.cols()].copy_from_slice(x.row(r));
            a.set(r, x.cols(), 1.0);
        }
        a
    }
}

impl Layer for Linear {
    fn name(&self) -> &'static str {
        "Linear"
    }

    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        assert_eq!(x.cols(), self.in_dim(), "Linear input width");
        let a = Self::augment(x);
        let y = a.matmul(&self.weight);
        if train {
            self.cached_a = Some(a);
        }
        y
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let a = self
            .cached_a
            .as_ref()
            .expect("backward without a training forward");
        assert_eq!(grad_out.rows(), a.rows(), "Linear batch mismatch");
        let batch = grad_out.rows() as f32;
        // dW = ãᵀ g / batch
        let mut grad = a.t_matmul(grad_out);
        grad.scale(1.0 / batch);
        self.grad = grad;
        // dx = g Wᵀ, dropping the bias row of W.
        let full = grad_out.matmul_t(&self.weight);
        let mut dx = Matrix::zeros(full.rows(), self.in_dim());
        for r in 0..full.rows() {
            dx.row_mut(r).copy_from_slice(&full.row(r)[..self.in_dim()]);
        }
        self.cached_g = Some(grad_out.clone());
        dx
    }

    fn params(&self) -> Option<&Matrix> {
        Some(&self.weight)
    }

    fn params_mut(&mut self) -> Option<&mut Matrix> {
        Some(&mut self.weight)
    }

    fn grads(&self) -> Option<&Matrix> {
        Some(&self.grad)
    }

    fn grads_mut(&mut self) -> Option<&mut Matrix> {
        Some(&mut self.grad)
    }

    fn set_grads(&mut self, grads: Matrix) {
        assert_eq!(
            (grads.rows(), grads.cols()),
            (self.weight.rows(), self.weight.cols()),
            "gradient shape"
        );
        self.grad = grads;
    }

    fn kfac_stats(&self) -> Option<KfacStats> {
        match (&self.cached_a, &self.cached_g) {
            (Some(a), Some(g)) => Some(KfacStats {
                a: a.clone(),
                g: g.clone(),
            }),
            _ => None,
        }
    }
}

/// Elementwise rectified linear unit.
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// A ReLU layer.
    pub fn new() -> Self {
        Relu { mask: None }
    }
}

impl Default for Relu {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Relu {
    fn name(&self) -> &'static str {
        "ReLU"
    }

    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        let mut y = x.clone();
        let mut mask = Vec::new();
        if train {
            mask.reserve(x.len());
        }
        for v in y.as_mut_slice() {
            let active = *v > 0.0;
            if train {
                mask.push(active);
            }
            if !active {
                *v = 0.0;
            }
        }
        if train {
            self.mask = Some(mask);
        }
        y
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let mask = self.mask.as_ref().expect("backward without forward");
        assert_eq!(mask.len(), grad_out.len(), "ReLU shape");
        let mut dx = grad_out.clone();
        for (v, &m) in dx.as_mut_slice().iter_mut().zip(mask) {
            if !m {
                *v = 0.0;
            }
        }
        dx
    }

    fn set_grads(&mut self, _grads: Matrix) {}
}

/// Elementwise tanh.
pub struct Tanh {
    cached_y: Option<Matrix>,
}

impl Tanh {
    /// A tanh layer.
    pub fn new() -> Self {
        Tanh { cached_y: None }
    }
}

impl Default for Tanh {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Tanh {
    fn name(&self) -> &'static str {
        "Tanh"
    }

    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        let mut y = x.clone();
        for v in y.as_mut_slice() {
            *v = v.tanh();
        }
        if train {
            self.cached_y = Some(y.clone());
        }
        y
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let y = self.cached_y.as_ref().expect("backward without forward");
        let mut dx = grad_out.clone();
        for (d, &yv) in dx.as_mut_slice().iter_mut().zip(y.as_slice()) {
            *d *= 1.0 - yv * yv;
        }
        dx
    }

    fn set_grads(&mut self, _grads: Matrix) {}
}

/// Per-row layer normalization with learned gain and bias.
///
/// Parameters are stored as a 2 × dim matrix (row 0 = gain, row 1 = bias).
/// LayerNorm is not K-FAC-eligible; its gradients ride the ordinary
/// data-parallel path, matching practice.
pub struct LayerNorm {
    params: Matrix,
    grad: Matrix,
    eps: f32,
    cached: Option<(Matrix, Vec<f32>)>, // normalized input, inv_std per row
}

impl LayerNorm {
    /// A LayerNorm over feature width `dim`.
    pub fn new(dim: usize) -> Self {
        let mut params = Matrix::zeros(2, dim);
        for c in 0..dim {
            params.set(0, c, 1.0);
        }
        LayerNorm {
            params,
            grad: Matrix::zeros(2, dim),
            eps: 1e-5,
            cached: None,
        }
    }
}

impl Layer for LayerNorm {
    fn name(&self) -> &'static str {
        "LayerNorm"
    }

    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        let dim = x.cols();
        assert_eq!(dim, self.params.cols(), "LayerNorm width");
        let mut xhat = Matrix::zeros(x.rows(), dim);
        let mut inv_stds = Vec::with_capacity(x.rows());
        let mut y = Matrix::zeros(x.rows(), dim);
        for r in 0..x.rows() {
            let row = x.row(r);
            let mean: f32 = row.iter().sum::<f32>() / dim as f32;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / dim as f32;
            let inv_std = 1.0 / (var + self.eps).sqrt();
            inv_stds.push(inv_std);
            for (c, &v) in row.iter().enumerate() {
                let h = (v - mean) * inv_std;
                xhat.set(r, c, h);
                y.set(r, c, h * self.params.get(0, c) + self.params.get(1, c));
            }
        }
        if train {
            self.cached = Some((xhat, inv_stds));
        }
        y
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let (xhat, inv_stds) = self.cached.as_ref().expect("backward without forward");
        let dim = grad_out.cols();
        let batch = grad_out.rows();
        let mut grad = Matrix::zeros(2, dim);
        let mut dx = Matrix::zeros(batch, dim);
        for (r, &inv_std) in inv_stds.iter().enumerate().take(batch) {
            let go = grad_out.row(r);
            let xh = xhat.row(r);
            // Parameter grads.
            for c in 0..dim {
                let dg = grad.get(0, c) + go[c] * xh[c] / batch as f32;
                grad.set(0, c, dg);
                let db = grad.get(1, c) + go[c] / batch as f32;
                grad.set(1, c, db);
            }
            // Input grads: standard layernorm backward.
            let dxhat: Vec<f32> = (0..dim).map(|c| go[c] * self.params.get(0, c)).collect();
            let sum_dxhat: f32 = dxhat.iter().sum();
            let sum_dxhat_xhat: f32 = dxhat.iter().zip(xh).map(|(&d, &h)| d * h).sum();
            for c in 0..dim {
                let v = inv_std / dim as f32
                    * (dim as f32 * dxhat[c] - sum_dxhat - xh[c] * sum_dxhat_xhat);
                dx.set(r, c, v);
            }
        }
        self.grad = grad;
        dx
    }

    fn params(&self) -> Option<&Matrix> {
        Some(&self.params)
    }

    fn params_mut(&mut self) -> Option<&mut Matrix> {
        Some(&mut self.params)
    }

    fn grads(&self) -> Option<&Matrix> {
        Some(&self.grad)
    }

    fn grads_mut(&mut self) -> Option<&mut Matrix> {
        Some(&mut self.grad)
    }

    fn set_grads(&mut self, grads: Matrix) {
        assert_eq!((grads.rows(), grads.cols()), (2, self.params.cols()));
        self.grad = grads;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numerically checks dL/dx for a layer with L = sum(output * probe).
    fn check_input_gradient(layer: &mut dyn Layer, x: &Matrix, probe: &Matrix, tol: f32) {
        let _y = layer.forward(x, true);
        let dx = layer.backward(probe);
        let eps = 1e-3f32;
        for idx in [0usize, x.len() / 2, x.len() - 1] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let yp = layer.forward(&xp, false);
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let ym = layer.forward(&xm, false);
            let lp: f32 = yp
                .as_slice()
                .iter()
                .zip(probe.as_slice())
                .map(|(&a, &b)| a * b)
                .sum();
            let lm: f32 = ym
                .as_slice()
                .iter()
                .zip(probe.as_slice())
                .map(|(&a, &b)| a * b)
                .sum();
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = dx.as_slice()[idx];
            assert!(
                (numeric - analytic).abs() < tol * (1.0 + numeric.abs()),
                "idx {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn linear_forward_shape_and_bias() {
        let mut rng = Rng::new(1);
        let mut lin = Linear::new(4, 3, &mut rng);
        // Zero input isolates the bias row (initialized to zero).
        let x = Matrix::zeros(2, 4);
        let y = lin.forward(&x, false);
        assert_eq!((y.rows(), y.cols()), (2, 3));
        assert!(y.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn linear_input_gradient_is_correct() {
        let mut rng = Rng::new(2);
        let mut lin = Linear::new(5, 4, &mut rng);
        let x = Matrix::random_normal(3, 5, &mut rng);
        let probe = Matrix::random_normal(3, 4, &mut rng);
        check_input_gradient(&mut lin, &x, &probe, 1e-2);
    }

    #[test]
    fn linear_param_gradient_is_correct() {
        let mut rng = Rng::new(3);
        let mut lin = Linear::new(3, 2, &mut rng);
        let x = Matrix::random_normal(4, 3, &mut rng);
        let probe = Matrix::random_normal(4, 2, &mut rng);
        let _ = lin.forward(&x, true);
        let _ = lin.backward(&probe);
        let analytic = lin.grads().unwrap().clone();
        let eps = 1e-3f32;
        for (r, c) in [(0usize, 0usize), (2, 1), (3, 0)] {
            // (3, _) is the bias row.
            let orig = lin.params().unwrap().get(r, c);
            lin.params_mut().unwrap().set(r, c, orig + eps);
            let yp = lin.forward(&x, false);
            lin.params_mut().unwrap().set(r, c, orig - eps);
            let ym = lin.forward(&x, false);
            lin.params_mut().unwrap().set(r, c, orig);
            let lp: f32 = yp
                .as_slice()
                .iter()
                .zip(probe.as_slice())
                .map(|(&a, &b)| a * b)
                .sum();
            let lm: f32 = ym
                .as_slice()
                .iter()
                .zip(probe.as_slice())
                .map(|(&a, &b)| a * b)
                .sum();
            // Layer averages over the batch.
            let numeric = (lp - lm) / (2.0 * eps) / x.rows() as f32;
            let got = analytic.get(r, c);
            assert!(
                (numeric - got).abs() < 1e-2 * (1.0 + numeric.abs()),
                "({r},{c}): numeric {numeric} vs {got}"
            );
        }
    }

    #[test]
    fn linear_kfac_stats_shapes() {
        let mut rng = Rng::new(4);
        let mut lin = Linear::new(6, 2, &mut rng);
        let x = Matrix::random_normal(5, 6, &mut rng);
        let y = lin.forward(&x, true);
        let _ = lin.backward(&y);
        let stats = lin.kfac_stats().unwrap();
        assert_eq!((stats.a.rows(), stats.a.cols()), (5, 7)); // bias-augmented
        assert_eq!((stats.g.rows(), stats.g.cols()), (5, 2));
        // Bias coordinate is exactly 1.
        for r in 0..5 {
            assert_eq!(stats.a.get(r, 6), 1.0);
        }
    }

    #[test]
    fn kfac_stats_absent_in_eval_mode() {
        let mut rng = Rng::new(5);
        let mut lin = Linear::new(3, 3, &mut rng);
        let x = Matrix::random_normal(2, 3, &mut rng);
        let _ = lin.forward(&x, false);
        assert!(lin.kfac_stats().is_none());
    }

    #[test]
    fn relu_gradient_masks() {
        let mut relu = Relu::new();
        let x = Matrix::from_vec(1, 4, vec![-1.0, 2.0, -3.0, 4.0]);
        let y = relu.forward(&x, true);
        assert_eq!(y.as_slice(), &[0.0, 2.0, 0.0, 4.0]);
        let g = Matrix::from_vec(1, 4, vec![1.0, 1.0, 1.0, 1.0]);
        let dx = relu.backward(&g);
        assert_eq!(dx.as_slice(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn tanh_gradient_is_correct() {
        let mut rng = Rng::new(6);
        let mut t = Tanh::new();
        let x = Matrix::random_normal(2, 5, &mut rng);
        let probe = Matrix::random_normal(2, 5, &mut rng);
        check_input_gradient(&mut t, &x, &probe, 1e-2);
    }

    #[test]
    fn layernorm_normalizes_rows() {
        let mut ln = LayerNorm::new(8);
        let mut rng = Rng::new(7);
        let x = Matrix::random_uniform(3, 8, 5.0, 9.0, &mut rng);
        let y = ln.forward(&x, false);
        for r in 0..3 {
            let mean: f32 = y.row(r).iter().sum::<f32>() / 8.0;
            let var: f32 = y
                .row(r)
                .iter()
                .map(|&v| (v - mean) * (v - mean))
                .sum::<f32>()
                / 8.0;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn layernorm_input_gradient_is_correct() {
        let mut rng = Rng::new(8);
        let mut ln = LayerNorm::new(6);
        let x = Matrix::random_normal(2, 6, &mut rng);
        let probe = Matrix::random_normal(2, 6, &mut rng);
        check_input_gradient(&mut ln, &x, &probe, 2e-2);
    }

    #[test]
    fn set_grads_replaces() {
        let mut rng = Rng::new(9);
        let mut lin = Linear::new(2, 2, &mut rng);
        let g = Matrix::from_fn(3, 2, |r, c| (r + c) as f32);
        lin.set_grads(g.clone());
        assert_eq!(lin.grads().unwrap(), &g);
    }

    #[test]
    #[should_panic(expected = "gradient shape")]
    fn set_grads_wrong_shape_panics() {
        let mut rng = Rng::new(10);
        let mut lin = Linear::new(2, 2, &mut rng);
        lin.set_grads(Matrix::zeros(1, 1));
    }
}
