//! Loss functions with analytic gradients.

use compso_tensor::Matrix;

/// Softmax cross-entropy over logits with integer class labels.
///
/// Returns `(mean loss, per-sample dL_b/dlogits_b)`. The gradient rows
/// are **per-sample** (no 1/batch): the layers' backward passes apply the
/// single batch average, which keeps parameter gradients equal to
/// d(mean loss)/dW, makes K-FAC's `g` statistics batch-size invariant,
/// and makes an all-reduce of shard gradients exactly reproduce the
/// global-batch gradient — the convention K-FAC implementations assume.
pub fn softmax_cross_entropy(logits: &Matrix, labels: &[usize]) -> (f32, Matrix) {
    assert_eq!(logits.rows(), labels.len(), "batch/label mismatch");
    let classes = logits.cols();
    let batch = logits.rows();
    let mut grad = Matrix::zeros(batch, classes);
    let mut loss = 0.0f64;
    for (b, &label) in labels.iter().enumerate().take(batch) {
        let row = logits.row(b);
        assert!(label < classes, "label {label} out of {classes}");
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let exps: Vec<f64> = row.iter().map(|&v| ((v - max) as f64).exp()).collect();
        let sum: f64 = exps.iter().sum();
        loss += -(exps[label] / sum).ln();
        let grow = grad.row_mut(b);
        for c in 0..classes {
            let p = (exps[c] / sum) as f32;
            grow[c] = p - f32::from(c == label);
        }
    }
    ((loss / batch as f64) as f32, grad)
}

/// Classification accuracy of logits against labels.
pub fn accuracy(logits: &Matrix, labels: &[usize]) -> f64 {
    assert_eq!(logits.rows(), labels.len());
    if labels.is_empty() {
        return 0.0;
    }
    let correct = (0..logits.rows())
        .filter(|&b| {
            let row = logits.row(b);
            let argmax = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap();
            argmax == labels[b]
        })
        .count();
    correct as f64 / labels.len() as f64
}

/// Mean-squared error. Returns `(mean loss over all elements, per-sample
/// gradient rows)` — rows carry `2(p − t)/cols` so that the layers' batch
/// average yields d(mean loss)/dW.
pub fn mse(pred: &Matrix, target: &Matrix) -> (f32, Matrix) {
    assert_eq!(
        (pred.rows(), pred.cols()),
        (target.rows(), target.cols()),
        "mse shapes"
    );
    let n = pred.len().max(1) as f32;
    let cols = pred.cols().max(1) as f32;
    let mut grad = pred.clone();
    grad.axpy(-1.0, target);
    let loss: f64 = grad
        .as_slice()
        .iter()
        .map(|&d| (d as f64) * (d as f64))
        .sum::<f64>()
        / n as f64;
    grad.scale(2.0 / cols);
    (loss as f32, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use compso_tensor::Rng;

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let mut logits = Matrix::zeros(2, 3);
        logits.set(0, 1, 20.0);
        logits.set(1, 2, 20.0);
        let (loss, _) = softmax_cross_entropy(&logits, &[1, 2]);
        assert!(loss < 1e-3, "loss {loss}");
    }

    #[test]
    fn cross_entropy_of_uniform_is_log_classes() {
        let logits = Matrix::zeros(4, 10);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 3, 7, 9]);
        assert!((loss - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_matches_numeric() {
        let mut rng = Rng::new(1);
        let logits = Matrix::random_normal(3, 4, &mut rng);
        let labels = [2usize, 0, 3];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for idx in [0usize, 5, 11] {
            let mut lp = logits.clone();
            lp.as_mut_slice()[idx] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[idx] -= eps;
            let (fp, _) = softmax_cross_entropy(&lp, &labels);
            let (fm, _) = softmax_cross_entropy(&lm, &labels);
            // Gradient rows are per-sample; the mean loss divides by batch.
            let numeric = (fp - fm) / (2.0 * eps) * labels.len() as f32;
            assert!(
                (numeric - grad.as_slice()[idx]).abs() < 2e-3,
                "idx {idx}: {numeric} vs {}",
                grad.as_slice()[idx]
            );
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let mut rng = Rng::new(2);
        let logits = Matrix::random_normal(5, 7, &mut rng);
        let labels = [0usize, 1, 2, 3, 4];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        for b in 0..5 {
            let s: f32 = grad.row(b).iter().sum();
            assert!(s.abs() < 1e-6, "row {b} sums to {s}");
        }
    }

    #[test]
    fn accuracy_counts() {
        let mut logits = Matrix::zeros(3, 2);
        logits.set(0, 0, 1.0); // predicts 0
        logits.set(1, 1, 1.0); // predicts 1
        logits.set(2, 0, 1.0); // predicts 0
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mse_known_value_and_gradient() {
        let pred = Matrix::from_vec(1, 2, vec![1.0, 3.0]);
        let target = Matrix::from_vec(1, 2, vec![0.0, 0.0]);
        let (loss, grad) = mse(&pred, &target);
        assert!((loss - 5.0).abs() < 1e-6); // (1 + 9)/2
        assert_eq!(grad.as_slice(), &[1.0, 3.0]); // 2*(p-t)/cols
    }

    #[test]
    fn numerical_stability_with_huge_logits() {
        let mut logits = Matrix::zeros(1, 3);
        logits.set(0, 0, 1e4);
        logits.set(0, 1, -1e4);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss.is_finite());
        assert!(grad.as_slice().iter().all(|v| v.is_finite()));
    }
}
