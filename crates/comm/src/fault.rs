//! Deterministic, seeded fault injection for the comm substrate.
//!
//! A [`FaultPlane`] sits between the collectives and the channel mesh and
//! injects the failure modes a real compressed-gradient fabric must
//! survive: message **drops**, in-flight **bit flips** (wire corruption),
//! **straggler delay**, origin-side **payload corruption** (bit flips that
//! land *inside* the checksum-framed application payload, so they pass the
//! transport and must be handled by the degradation ladder in
//! `compso-kfac`), and scheduled **rank crashes**.
//!
//! Every decision is a pure function of `(seed, domain, coordinates)`
//! hashed with splitmix64, so a chaos run is exactly reproducible from its
//! seed: the same messages are dropped, the same bits flip, the same rank
//! crashes at the same step. An atomic [`Ledger`] records every injected
//! fault; the chaos suite (`tests/chaos.rs`) asserts that observability
//! counters match the ledger *exactly* — no fault goes unnoticed, none is
//! double-counted.
//!
//! `FaultPlane::disabled()` is a `None` inside and costs nothing on the
//! hot path (a single branch per send/receive).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Domain separators for the decision hash, so that e.g. the drop decision
/// for message `(src, dst, seq)` is independent of its corruption decision.
const DOMAIN_DROP: u64 = 0xD209;
const DOMAIN_CORRUPT_WIRE: u64 = 0xC0F2;
const DOMAIN_CORRUPT_PAYLOAD: u64 = 0xBADC;
const DOMAIN_CORRUPT_REPAIR: u64 = 0x2E9A;
const DOMAIN_BIT_POS: u64 = 0xB172;

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes `(seed, domain, coords)` into a uniform u64.
fn decision_hash(seed: u64, domain: u64, coords: &[u64]) -> u64 {
    let mut h = splitmix64(seed ^ domain.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    for &c in coords {
        h = splitmix64(h ^ c.wrapping_mul(0xFF51_AFD7_ED55_8CCD));
    }
    h
}

/// True with probability `p`, deterministically in the hash.
fn hits(h: u64, p: f64) -> bool {
    if p <= 0.0 {
        return false;
    }
    if p >= 1.0 {
        return true;
    }
    ((h >> 11) as f64 / (1u64 << 53) as f64) < p
}

/// Knobs for a seeded fault campaign. `Default` injects nothing.
#[derive(Clone, Debug)]
pub struct FaultConfig {
    /// Seed for every injection decision.
    pub seed: u64,
    /// Per-transmission probability that a data message is silently
    /// dropped (recovered by the receiver-driven NACK/retransmit loop).
    pub drop_p: f64,
    /// Per-transmission probability of an in-flight bit flip in the data
    /// payload (caught by the envelope CRC at the receiver, triggering an
    /// immediate NACK).
    pub corrupt_wire_p: f64,
    /// Per-(rank, step) probability that a rank's *outgoing compressed
    /// payload* is bit-flipped at the origin, inside the checksum frame —
    /// the fault class the `DistKfac` degradation ladder must absorb.
    pub corrupt_payload_p: f64,
    /// One straggler: `(rank, delay)` sleeps `delay` before each fresh
    /// data send from that rank.
    pub straggler: Option<(usize, Duration)>,
    /// Crash `(rank, step)`: that rank panics at the top of that step
    /// (0-based), exercising group poisoning.
    pub crash_at: Option<(usize, u64)>,
    /// How many repair rungs get their resends corrupted. `0` (default)
    /// leaves repair traffic pristine; `1` corrupts the rung-1 compressed
    /// resend (forcing the ladder down to the uncompressed rung); `2`
    /// corrupts the uncompressed resend as well, forcing the bottom rung
    /// (last-good / plain-SGD fallback).
    pub corrupt_repair_rungs: u8,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            drop_p: 0.0,
            corrupt_wire_p: 0.0,
            corrupt_payload_p: 0.0,
            straggler: None,
            crash_at: None,
            corrupt_repair_rungs: 0,
        }
    }
}

/// Atomic tally of every fault actually injected — the ground truth the
/// chaos suite reconciles observability counters against.
#[derive(Default)]
struct Ledger {
    delayed: AtomicU64,
    dropped: AtomicU64,
    corrupted_wire: AtomicU64,
    corrupted_payload: AtomicU64,
    corrupted_repair: AtomicU64,
    crashes: AtomicU64,
}

/// A point-in-time copy of the [`FaultPlane`]'s injection ledger.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LedgerSnapshot {
    /// Fresh sends delayed by the straggler knob.
    pub delayed: u64,
    /// Data transmissions silently dropped.
    pub dropped: u64,
    /// Data transmissions bit-flipped in flight (envelope CRC territory).
    pub corrupted_wire: u64,
    /// Outgoing payloads bit-flipped at the origin (ladder territory).
    pub corrupted_payload: u64,
    /// Repair resends bit-flipped at the origin (`corrupt_repair_rungs`).
    pub corrupted_repair: u64,
    /// Scheduled rank crashes fired.
    pub crashes: u64,
}

struct Inner {
    config: FaultConfig,
    ledger: Ledger,
}

/// Handle to a (possibly disabled) fault-injection campaign, shared by
/// every rank in a group. Cloning shares the ledger.
#[derive(Clone)]
pub struct FaultPlane(Option<Arc<Inner>>);

impl Default for FaultPlane {
    fn default() -> Self {
        FaultPlane::disabled()
    }
}

impl FaultPlane {
    /// The no-fault plane: every query is a single `None` check.
    pub fn disabled() -> Self {
        FaultPlane(None)
    }

    /// A plane injecting per `config`.
    pub fn new(config: FaultConfig) -> Self {
        FaultPlane(Some(Arc::new(Inner {
            config,
            ledger: Ledger::default(),
        })))
    }

    /// Whether any injection can happen at all.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Origin-side corruption of a degradation-ladder repair resend:
    /// flips one deterministic bit of `payload` when the campaign corrupts
    /// rung `rung` (1 = compressed resend, 2 = uncompressed resend) and
    /// counts the injection. Deterministic in `(origin, requester, step,
    /// rung)`, always fires when armed — repair corruption exists to march
    /// tests down the ladder, not to model a probabilistic channel.
    pub fn maybe_corrupt_repair(
        &self,
        origin: usize,
        requester: usize,
        step: u64,
        rung: u8,
        payload: &mut [u8],
    ) -> bool {
        let Some(inner) = self.0.as_ref() else {
            return false;
        };
        if rung == 0 || rung > inner.config.corrupt_repair_rungs || payload.is_empty() {
            return false;
        }
        let pos = decision_hash(
            inner.config.seed,
            DOMAIN_BIT_POS ^ DOMAIN_CORRUPT_REPAIR,
            &[origin as u64, requester as u64, step, rung as u64],
        );
        flip_bit(payload, pos);
        inner
            .ledger
            .corrupted_repair
            .fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Should transmission `attempt` of data message `(src, dst, seq)` be
    /// dropped? Counts into the ledger when it fires.
    pub fn should_drop(&self, src: usize, dst: usize, seq: u64, attempt: u32) -> bool {
        let Some(inner) = self.0.as_ref() else {
            return false;
        };
        let h = decision_hash(
            inner.config.seed,
            DOMAIN_DROP,
            &[src as u64, dst as u64, seq, attempt as u64],
        );
        let hit = hits(h, inner.config.drop_p);
        if hit {
            inner.ledger.dropped.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// If transmission `attempt` of `(src, dst, seq)` should be corrupted
    /// in flight, returns the raw bit-position hash to flip (the caller
    /// reduces it modulo the payload's bit width) and counts the
    /// injection. Callers must only invoke this for non-empty payloads.
    pub fn wire_corrupt_bit(&self, src: usize, dst: usize, seq: u64, attempt: u32) -> Option<u64> {
        let inner = self.0.as_ref()?;
        let coords = [src as u64, dst as u64, seq, attempt as u64];
        let h = decision_hash(inner.config.seed, DOMAIN_CORRUPT_WIRE, &coords);
        if !hits(h, inner.config.corrupt_wire_p) {
            return None;
        }
        let pos = decision_hash(
            inner.config.seed,
            DOMAIN_BIT_POS ^ DOMAIN_CORRUPT_WIRE,
            &coords,
        );
        inner.ledger.corrupted_wire.fetch_add(1, Ordering::Relaxed);
        Some(pos)
    }

    /// Origin-side payload corruption for `(rank, step)`: flips one
    /// deterministic bit of `payload` with probability `corrupt_payload_p`
    /// and counts it. The caller (DistKfac) retains a clean copy so the
    /// repair rungs can resend pristine bytes.
    pub fn maybe_corrupt_payload(&self, rank: usize, step: u64, payload: &mut [u8]) -> bool {
        let Some(inner) = self.0.as_ref() else {
            return false;
        };
        if payload.is_empty() {
            return false;
        }
        let coords = [rank as u64, step];
        let h = decision_hash(inner.config.seed, DOMAIN_CORRUPT_PAYLOAD, &coords);
        if !hits(h, inner.config.corrupt_payload_p) {
            return false;
        }
        let pos = decision_hash(
            inner.config.seed,
            DOMAIN_BIT_POS ^ DOMAIN_CORRUPT_PAYLOAD,
            &coords,
        );
        flip_bit(payload, pos);
        inner
            .ledger
            .corrupted_payload
            .fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Straggler delay to apply before a fresh data send from `rank`
    /// (ledger-counted). `None` when `rank` is not the straggler.
    pub fn straggler_delay(&self, rank: usize) -> Option<Duration> {
        let inner = self.0.as_ref()?;
        match inner.config.straggler {
            Some((r, d)) if r == rank => {
                inner.ledger.delayed.fetch_add(1, Ordering::Relaxed);
                Some(d)
            }
            _ => None,
        }
    }

    /// Whether `rank` is scheduled to crash at `step` (counts when it
    /// fires).
    pub fn crash_due(&self, rank: usize, step: u64) -> bool {
        let Some(inner) = self.0.as_ref() else {
            return false;
        };
        let due = inner.config.crash_at == Some((rank, step));
        if due {
            inner.ledger.crashes.fetch_add(1, Ordering::Relaxed);
        }
        due
    }

    /// Snapshot of everything injected so far.
    pub fn ledger(&self) -> LedgerSnapshot {
        match self.0.as_ref() {
            None => LedgerSnapshot::default(),
            Some(inner) => LedgerSnapshot {
                delayed: inner.ledger.delayed.load(Ordering::Relaxed),
                dropped: inner.ledger.dropped.load(Ordering::Relaxed),
                corrupted_wire: inner.ledger.corrupted_wire.load(Ordering::Relaxed),
                corrupted_payload: inner.ledger.corrupted_payload.load(Ordering::Relaxed),
                corrupted_repair: inner.ledger.corrupted_repair.load(Ordering::Relaxed),
                crashes: inner.ledger.crashes.load(Ordering::Relaxed),
            },
        }
    }
}

/// Flips bit `hash % (len * 8)` of `buf` (never called on empty buffers).
pub fn flip_bit(buf: &mut [u8], hash: u64) {
    let bit = (hash % (buf.len() as u64 * 8)) as usize;
    buf[bit / 8] ^= 1 << (bit % 8);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plane_injects_nothing() {
        let plane = FaultPlane::disabled();
        assert!(!plane.is_enabled());
        let mut buf = vec![0xAAu8; 64];
        for seq in 0..1000 {
            assert!(!plane.should_drop(0, 1, seq, 0));
            assert!(plane.wire_corrupt_bit(0, 1, seq, 0).is_none());
        }
        assert!(!plane.maybe_corrupt_payload(0, 0, &mut buf));
        assert!(plane.straggler_delay(0).is_none());
        assert!(!plane.crash_due(0, 0));
        assert_eq!(plane.ledger(), LedgerSnapshot::default());
        assert_eq!(buf, vec![0xAAu8; 64]);
    }

    #[test]
    fn decisions_are_deterministic_in_the_seed() {
        let mk = || {
            FaultPlane::new(FaultConfig {
                seed: 42,
                drop_p: 0.1,
                corrupt_wire_p: 0.1,
                corrupt_payload_p: 0.5,
                ..FaultConfig::default()
            })
        };
        let a = mk();
        let b = mk();
        for seq in 0..500 {
            assert_eq!(a.should_drop(1, 2, seq, 0), b.should_drop(1, 2, seq, 0));
            assert_eq!(
                a.wire_corrupt_bit(1, 2, seq, 0),
                b.wire_corrupt_bit(1, 2, seq, 0)
            );
        }
        assert_eq!(a.ledger(), b.ledger());
        assert!(a.ledger().dropped > 0, "0.1 over 500 trials must fire");
        assert!(a.ledger().corrupted_wire > 0);
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let plane = FaultPlane::new(FaultConfig {
            seed: 7,
            drop_p: 0.2,
            ..FaultConfig::default()
        });
        let n = 10_000u64;
        let mut hits = 0u64;
        for seq in 0..n {
            if plane.should_drop(0, 1, seq, 0) {
                hits += 1;
            }
        }
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.02, "rate {rate}");
        assert_eq!(plane.ledger().dropped, hits);
    }

    #[test]
    fn retransmission_attempts_get_independent_decisions() {
        let plane = FaultPlane::new(FaultConfig {
            seed: 3,
            drop_p: 0.5,
            ..FaultConfig::default()
        });
        // With p=0.5 and independent attempts, some seq must differ
        // between attempt 0 and attempt 1.
        let differs =
            (0..64).any(|seq| plane.should_drop(0, 1, seq, 0) != plane.should_drop(0, 1, seq, 1));
        assert!(differs);
    }

    #[test]
    fn payload_corruption_flips_exactly_one_bit() {
        let plane = FaultPlane::new(FaultConfig {
            seed: 11,
            corrupt_payload_p: 1.0,
            ..FaultConfig::default()
        });
        let orig = vec![0x5Au8; 128];
        let mut buf = orig.clone();
        assert!(plane.maybe_corrupt_payload(2, 9, &mut buf));
        let flipped: u32 = orig
            .iter()
            .zip(&buf)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1);
        assert_eq!(plane.ledger().corrupted_payload, 1);
    }

    #[test]
    fn repair_corruption_honors_the_rung_knob() {
        let mk = |rungs: u8| {
            FaultPlane::new(FaultConfig {
                seed: 13,
                corrupt_repair_rungs: rungs,
                ..FaultConfig::default()
            })
        };
        let mut buf = vec![0u8; 32];
        // Disabled knob: nothing flips at any rung.
        let off = mk(0);
        assert!(!off.maybe_corrupt_repair(0, 1, 0, 1, &mut buf));
        assert!(!off.maybe_corrupt_repair(0, 1, 0, 2, &mut buf));
        assert_eq!(buf, vec![0u8; 32]);
        // Rung 1 only: compressed resends flip, uncompressed do not.
        let one = mk(1);
        assert!(one.maybe_corrupt_repair(0, 1, 0, 1, &mut buf));
        let mut buf2 = vec![0u8; 32];
        assert!(!one.maybe_corrupt_repair(0, 1, 0, 2, &mut buf2));
        // Both rungs: each flip is a single deterministic bit.
        let two = mk(2);
        let mut a = vec![0u8; 32];
        let mut b = vec![0u8; 32];
        assert!(two.maybe_corrupt_repair(2, 3, 7, 1, &mut a));
        assert!(two.maybe_corrupt_repair(2, 3, 7, 2, &mut b));
        let ones = |v: &[u8]| -> u32 { v.iter().map(|x| x.count_ones()).sum() };
        assert_eq!(ones(&a), 1);
        assert_eq!(ones(&b), 1);
        assert_eq!(two.ledger().corrupted_repair, 2);
    }

    #[test]
    fn straggler_and_crash_target_their_rank_only() {
        let plane = FaultPlane::new(FaultConfig {
            seed: 1,
            straggler: Some((2, Duration::from_millis(1))),
            crash_at: Some((1, 5)),
            ..FaultConfig::default()
        });
        assert!(plane.straggler_delay(0).is_none());
        assert_eq!(plane.straggler_delay(2), Some(Duration::from_millis(1)));
        assert!(!plane.crash_due(1, 4));
        assert!(!plane.crash_due(0, 5));
        assert!(plane.crash_due(1, 5));
        let l = plane.ledger();
        assert_eq!((l.delayed, l.crashes), (1, 1));
    }
}
