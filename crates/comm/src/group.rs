//! Rank groups, fallible point-to-point plumbing, and group poisoning.
//!
//! A [`CommGroup`] owns a full mesh of unbounded crossbeam channels between
//! `n` ranks — a **data** mesh carrying sequence-numbered, CRC-enveloped
//! payloads and a **control** mesh carrying ACK/NACK and barrier traffic.
//! Each rank's [`Communicator`] can send a [`Payload`] to any peer and
//! receive from a *specific* peer, which is exactly the shape the ring
//! collectives in [`crate::collectives`] need (receive-from-left,
//! send-to-right).
//!
//! Unlike the original infallible substrate, **no receive path can block
//! forever**: every receive and the barrier carry a deadline and surface
//! [`CommError::Timeout`] naming the peer they were waiting on (which is
//! how a barrier timeout identifies the straggler rank). When a
//! [`FaultPlane`] is armed, transport-level faults (drops, in-flight bit
//! flips, straggler delay) are absorbed by a receiver-driven
//! NACK/retransmit loop with exponential backoff: senders keep clean
//! copies of in-flight messages in a per-destination outbox and lazily
//! service control traffic on every communication call, so the ring stays
//! deadlock-free even while messages are being re-requested. With
//! [`FaultPlane::disabled`] the envelope degenerates to a plain tagged
//! send and a single deadline-bounded receive — no CRC, no ACKs, no
//! outbox.
//!
//! A rank that panics inside [`run_ranks`] **poisons** the group: peers
//! blocked in receives or the barrier observe the poison (or the channel
//! disconnect) and error out with [`CommError::Poisoned`] instead of
//! hanging, and `run_ranks` re-raises the *first* panicking rank's payload
//! tagged with its rank id.

use crate::fault::{flip_bit, FaultPlane};
use crate::membership::ViewChange;
use compso_obs::{names, Recorder};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Granularity of the receive poll loop: how often a blocked receiver
/// wakes to service control traffic (peer NACKs needing retransmission)
/// and check poison.
const POLL_SLICE: Duration = Duration::from_millis(2);

/// Sentinel sequence number for membership frames sent *outside* the ARQ
/// stream (rejoin requests and welcomes cross channels whose sequence
/// state is stale on one side). Raw frames are CRC-checked but never
/// ACKed, NACKed, or stashed for reordering.
const RAW_SEQ: u64 = u64::MAX;

/// A message exchanged between ranks.
///
/// Typed variants avoid round-tripping gradient buffers through byte
/// serialization; compressed traffic travels as `Bytes`.
#[derive(Clone, Debug, PartialEq)]
pub enum Payload {
    /// A dense f32 buffer (gradients, covariance factors).
    F32(Vec<f32>),
    /// An opaque compressed byte stream.
    Bytes(Vec<u8>),
    /// Small control metadata (e.g. per-rank block sizes).
    Sizes(Vec<u64>),
}

impl Payload {
    /// Unwraps an f32 buffer.
    ///
    /// # Panics
    /// If the payload has a different variant — a protocol bug.
    pub fn into_f32(self) -> Vec<f32> {
        match self {
            Payload::F32(v) => v,
            other => panic!("protocol error: expected F32, got {other:?}"),
        }
    }

    /// Unwraps a byte buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        match self {
            Payload::Bytes(v) => v,
            other => panic!("protocol error: expected Bytes, got {other:?}"),
        }
    }

    /// Unwraps a size vector.
    pub fn into_sizes(self) -> Vec<u64> {
        match self {
            Payload::Sizes(v) => v,
            other => panic!("protocol error: expected Sizes, got {other:?}"),
        }
    }

    /// Non-panicking variant of [`Payload::into_f32`].
    pub fn try_f32(self) -> Result<Vec<f32>, CommError> {
        match self {
            Payload::F32(v) => Ok(v),
            _ => Err(CommError::Protocol { expected: "F32" }),
        }
    }

    /// Non-panicking variant of [`Payload::into_bytes`].
    pub fn try_bytes(self) -> Result<Vec<u8>, CommError> {
        match self {
            Payload::Bytes(v) => Ok(v),
            _ => Err(CommError::Protocol { expected: "Bytes" }),
        }
    }

    /// Non-panicking variant of [`Payload::into_sizes`].
    pub fn try_sizes(self) -> Result<Vec<u64>, CommError> {
        match self {
            Payload::Sizes(v) => Ok(v),
            _ => Err(CommError::Protocol { expected: "Sizes" }),
        }
    }

    /// Number of wire bytes this payload represents (for traffic counters).
    pub fn wire_bytes(&self) -> usize {
        match self {
            Payload::F32(v) => v.len() * 4,
            Payload::Bytes(v) => v.len(),
            Payload::Sizes(v) => v.len() * 8,
        }
    }

    /// Number of flippable bits (for wire fault injection).
    fn wire_bits(&self) -> u64 {
        self.wire_bytes() as u64 * 8
    }
}

/// Error surfaced by the fallible transport and collectives.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommError {
    /// A receive deadline expired while waiting on `rank` inside
    /// `collective` — for the barrier, `rank` is the identified straggler.
    Timeout {
        /// The peer that failed to deliver in time.
        rank: usize,
        /// Which collective was in flight.
        collective: &'static str,
    },
    /// The bounded NACK/retransmit loop gave up on `rank`.
    RetriesExhausted {
        /// The peer whose message could not be recovered.
        rank: usize,
        /// Which collective was in flight.
        collective: &'static str,
        /// How many NACKs were sent before giving up.
        attempts: u32,
    },
    /// The group was poisoned by a panic on `rank`.
    Poisoned {
        /// The rank whose panic poisoned the group.
        rank: usize,
    },
    /// A peer's channel endpoints disappeared without poisoning (e.g. the
    /// peer returned early from its rank function).
    Disconnected {
        /// The vanished peer.
        rank: usize,
    },
    /// A payload arrived with an unexpected variant.
    Protocol {
        /// The variant the caller needed.
        expected: &'static str,
    },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Timeout { rank, collective } => {
                write!(f, "timeout waiting on rank {rank} in {collective}")
            }
            CommError::RetriesExhausted {
                rank,
                collective,
                attempts,
            } => write!(
                f,
                "gave up on rank {rank} in {collective} after {attempts} retries"
            ),
            CommError::Poisoned { rank } => write!(f, "group poisoned by panic on rank {rank}"),
            CommError::Disconnected { rank } => write!(f, "rank {rank} disconnected"),
            CommError::Protocol { expected } => {
                write!(f, "protocol error: expected {expected} payload")
            }
        }
    }
}

impl std::error::Error for CommError {}

/// Transport tuning knobs.
#[derive(Clone, Debug)]
pub struct CommConfig {
    /// Overall deadline for any single receive / barrier wait. A peer
    /// that stays silent this long surfaces [`CommError::Timeout`].
    pub recv_timeout: Duration,
    /// Delay before the first timeout-NACK for a missing message; doubles
    /// on every subsequent NACK (exponential backoff). Must exceed the
    /// worst-case in-flight latency (including straggler delay) or
    /// spurious retransmissions occur.
    pub retry_initial: Duration,
    /// Maximum timeout-NACKs per missing message before
    /// [`CommError::RetriesExhausted`].
    pub max_retries: u32,
    /// Modeled wire bandwidth in MB/s: every data message is stamped at
    /// send time and the **receiver** sleeps until
    /// `sent_at + payload bytes / bandwidth` before the message is
    /// considered delivered — the bandwidth-delay of an asynchronous
    /// NIC that drains concurrently with the sender's compute (links
    /// drain independently; no backpressure is modeled). The sender
    /// never blocks, so a schedule that overlaps compression with
    /// in-flight payloads genuinely finishes earlier, which is what
    /// makes compression–communication overlap *physically observable*
    /// in the in-process harness. `None` (the default) keeps the wire
    /// free and changes nothing. Control traffic (ACKs/NACKs) is not
    /// modeled; empty payloads add zero delay.
    pub modeled_wire_mbps: Option<f64>,
}

impl Default for CommConfig {
    fn default() -> Self {
        CommConfig {
            recv_timeout: Duration::from_secs(30),
            retry_initial: Duration::from_millis(50),
            max_retries: 10,
            modeled_wire_mbps: None,
        }
    }
}

/// Data-mesh envelope: a sequence number and payload CRC allow the
/// receiver to detect loss (gaps) and corruption (CRC mismatch) and drive
/// recovery with NACKs. With the fault plane disabled both fields are 0
/// and ignored.
struct DataMsg {
    seq: u64,
    crc: u32,
    /// Send timestamp, set as the message goes on the wire — the
    /// receiver turns it into a bandwidth-delay when
    /// [`CommConfig::modeled_wire_mbps`] is set.
    sent_at: Instant,
    payload: Payload,
}

/// Control-mesh messages. The sending rank is implied by the channel the
/// message arrives on (the mesh is per-source).
#[derive(Clone, Debug, PartialEq, Eq)]
enum Ctrl {
    /// Every data seq `< upto` from me has been delivered — prune your
    /// outbox.
    Ack { upto: u64 },
    /// Re-send data seq `seq` (missing or CRC-bad).
    Nack { seq: u64 },
    /// Barrier arrival (rank → root).
    Arrive { gen: u64 },
    /// Barrier release (root → rank).
    Release { gen: u64 },
}

/// A clean in-flight copy kept for retransmission until acknowledged.
struct Flight {
    seq: u64,
    attempt: u32,
    crc: u32,
    payload: Payload,
}

/// Shared poison flag: the first panicking rank wins and is reported.
struct PoisonCell {
    /// `usize::MAX` = clean; otherwise the first poisoner's rank.
    who: AtomicUsize,
}

impl PoisonCell {
    fn new() -> Self {
        PoisonCell {
            who: AtomicUsize::new(usize::MAX),
        }
    }

    fn poison(&self, rank: usize) {
        let _ = self
            .who
            .compare_exchange(usize::MAX, rank, Ordering::AcqRel, Ordering::Acquire);
    }

    fn check(&self) -> Option<usize> {
        let w = self.who.load(Ordering::Acquire);
        (w != usize::MAX).then_some(w)
    }
}

const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Streaming IEEE CRC-32 over a payload's wire representation, domain
/// separated by variant tag. (Deliberately local to `compso-comm`: the
/// transport envelope does not depend on `compso-core`'s frame format.)
fn payload_crc(p: &Payload) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    let mut feed = |bytes: &[u8]| {
        for &b in bytes {
            crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
    };
    match p {
        Payload::F32(v) => {
            feed(&[0x01]);
            for x in v {
                feed(&x.to_le_bytes());
            }
        }
        Payload::Bytes(v) => {
            feed(&[0x02]);
            feed(v);
        }
        Payload::Sizes(v) => {
            feed(&[0x03]);
            for x in v {
                feed(&x.to_le_bytes());
            }
        }
    }
    !crc
}

/// Flips bit `hash % wire_bits` of the payload's wire representation.
fn flip_payload_bit(p: &mut Payload, hash: u64) {
    match p {
        Payload::Bytes(v) => flip_bit(v, hash),
        Payload::F32(v) => {
            let bit = (hash % (v.len() as u64 * 32)) as usize;
            let i = bit / 32;
            v[i] = f32::from_bits(v[i].to_bits() ^ (1 << (bit % 32)));
        }
        Payload::Sizes(v) => {
            let bit = (hash % (v.len() as u64 * 64)) as usize;
            let i = bit / 64;
            v[i] ^= 1 << (bit % 64);
        }
    }
}

/// Shared construction handle for a fixed-size group of ranks.
pub struct CommGroup {
    size: usize,
    /// `data_tx[src][dst]` sends from `src` to `dst`.
    data_tx: Vec<Vec<Sender<DataMsg>>>,
    /// `data_rx[dst][src]` receives at `dst` from `src`.
    data_rx: Vec<Vec<Receiver<DataMsg>>>,
    ctrl_tx: Vec<Vec<Sender<Ctrl>>>,
    ctrl_rx: Vec<Vec<Receiver<Ctrl>>>,
    poison: Arc<PoisonCell>,
    /// Physical ranks that have left the group (crash detected by the
    /// elastic harness). Shared so every survivor's poll loop observes a
    /// departure within one [`POLL_SLICE`] — see
    /// [`Communicator::mark_departed`].
    departed: Arc<Mutex<Vec<usize>>>,
    plane: FaultPlane,
    config: CommConfig,
}

impl CommGroup {
    /// Builds the channel mesh for `size` ranks with no fault injection
    /// and default deadlines.
    pub fn new(size: usize) -> Self {
        build_group(size)
    }

    /// Number of ranks in the group.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Splits the group into per-rank communicators.
    pub fn into_communicators(self) -> Vec<Communicator> {
        let CommGroup {
            size,
            data_tx,
            mut data_rx,
            ctrl_tx,
            mut ctrl_rx,
            poison,
            departed,
            plane,
            config,
        } = self;
        let mut comms = Vec::with_capacity(size);
        for (rank, (data_tx_row, ctrl_tx_row)) in data_tx.into_iter().zip(ctrl_tx).enumerate() {
            comms.push(Communicator {
                rank,
                size,
                live: (0..size).collect(),
                dead: Vec::new(),
                absorbing: Vec::new(),
                epoch: 0,
                data_tx: data_tx_row,
                data_rx: std::mem::take(&mut data_rx[rank]),
                ctrl_tx: ctrl_tx_row,
                ctrl_rx: std::mem::take(&mut ctrl_rx[rank]),
                poison: Arc::clone(&poison),
                departed: Arc::clone(&departed),
                plane: plane.clone(),
                config: config.clone(),
                send_seq: vec![0; size],
                recv_expect: vec![0; size],
                outbox: (0..size).map(|_| VecDeque::new()).collect(),
                stash: (0..size).map(|_| HashMap::new()).collect(),
                membership_stash: (0..size).map(|_| VecDeque::new()).collect(),
                rejoin_stash: (0..size).map(|_| VecDeque::new()).collect(),
                barrier_stash: (0..size).map(|_| VecDeque::new()).collect(),
                barrier_gen: 0,
                step: 0,
                sent_bytes: 0,
                recorder: Recorder::disabled(),
            });
        }
        comms
    }
}

/// One rank's endpoint into a [`CommGroup`].
///
/// All public rank arithmetic ([`rank`], [`size`], [`left`], [`right`],
/// and the `src`/`dst` arguments of [`send`]/[`recv`]) is **virtual**:
/// positions within the current live membership view. The physical rank
/// (channel index, fault-plane identity, error reporting) never changes
/// and is exposed via [`phys_rank`]. With the full initial view the two
/// coincide, so non-elastic callers see exactly the old semantics.
///
/// [`rank`]: Communicator::rank
/// [`size`]: Communicator::size
/// [`left`]: Communicator::left
/// [`right`]: Communicator::right
/// [`send`]: Communicator::send
/// [`recv`]: Communicator::recv
/// [`phys_rank`]: Communicator::phys_rank
pub struct Communicator {
    /// Physical rank: fixed channel-mesh index in `[0, size)`.
    rank: usize,
    /// Physical group size: the channel mesh never shrinks.
    size: usize,
    /// Sorted physical ranks in the current membership view.
    live: Vec<usize>,
    /// Physical ranks shrunk out of the view (absorbed failures).
    dead: Vec<usize>,
    /// Suspects of an in-flight [`Communicator::shrink`] round: treated
    /// like `dead` by the failure detector so the shrink's own receives
    /// do not trip over the very failure being absorbed.
    absorbing: Vec<usize>,
    /// Membership epoch: bumped by every committed shrink or grow.
    epoch: u64,
    data_tx: Vec<Sender<DataMsg>>,
    data_rx: Vec<Receiver<DataMsg>>,
    ctrl_tx: Vec<Sender<Ctrl>>,
    ctrl_rx: Vec<Receiver<Ctrl>>,
    poison: Arc<PoisonCell>,
    /// See [`CommGroup::departed`]: crash notices from the elastic harness.
    departed: Arc<Mutex<Vec<usize>>>,
    plane: FaultPlane,
    config: CommConfig,
    /// Next data sequence number per destination.
    send_seq: Vec<u64>,
    /// Next expected data sequence number per source.
    recv_expect: Vec<u64>,
    /// Unacknowledged clean copies per destination (fault plane only).
    outbox: Vec<VecDeque<Flight>>,
    /// Out-of-order arrivals per source (fault plane only).
    stash: Vec<HashMap<u64, Payload>>,
    /// Membership frames that arrived inside a data receive, per source:
    /// a peer already in its shrink round may inject a proposal into a
    /// stream we are still reading as collective traffic. Diverting here
    /// keeps the data plane typed and lets [`Communicator::shrink`] find
    /// the proposal later.
    membership_stash: Vec<VecDeque<Vec<u8>>>,
    /// Raw (sequence-less) membership frames per source: rejoin requests
    /// and welcomes. Kept separate from `membership_stash` because its
    /// lifecycle is tied to *incarnations*, not ARQ streams: a shrink
    /// commit wipes the dead rank's entries (anything queued before the
    /// death is a ghost from a previous incarnation), and a revived
    /// rank's re-advertised requests refill it.
    rejoin_stash: Vec<VecDeque<Vec<u8>>>,
    /// Barrier messages that arrived while servicing other control
    /// traffic, per source.
    barrier_stash: Vec<VecDeque<Ctrl>>,
    barrier_gen: u64,
    step: u64,
    sent_bytes: u64,
    recorder: Recorder,
}

impl Communicator {
    /// This rank's **virtual** id: its position in the current live view,
    /// in `[0, size())`. Equal to the physical rank until a shrink.
    ///
    /// # Panics
    /// If this rank has been shrunk out of the view (it must
    /// [`Communicator::rejoin`] first).
    pub fn rank(&self) -> usize {
        self.vrank_of(self.rank)
            // lint:allow(no-unwrap-on-comm-path): documented panic — a shrunk-out rank calling rank() without rejoin() is a caller bug
            .expect("rank no longer in the live view")
    }

    /// Number of ranks in the current live view.
    pub fn size(&self) -> usize {
        self.live.len()
    }

    /// This rank's fixed physical id in the channel mesh.
    pub fn phys_rank(&self) -> usize {
        self.rank
    }

    /// The current membership epoch (0 until the first view change).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Sorted physical ranks in the current view.
    pub fn live_ranks(&self) -> &[usize] {
        &self.live
    }

    /// Virtual position of physical rank `p` in the live view.
    fn vrank_of(&self, p: usize) -> Option<usize> {
        self.live.iter().position(|&r| r == p)
    }

    /// Physical rank behind virtual position `v`.
    ///
    /// # Panics
    /// If `v` is outside the current view.
    fn phys_of(&self, v: usize) -> usize {
        assert!(v < self.live.len(), "virtual rank {v} out of range");
        self.live[v]
    }

    /// Attaches an observability recorder: every subsequent [`send`]
    /// counts wire bytes (`comm/bytes_sent`) and feeds the message-size
    /// histogram (`comm/msg_bytes`), the collectives in
    /// [`crate::collectives`] time themselves against it, and the
    /// retry/fault machinery reports `comm/retry/*` and `comm/fault/*`.
    /// The default is the no-op [`Recorder::disabled`].
    ///
    /// [`send`]: Communicator::send
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// The recorder this communicator reports into.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The fault plane this group was built with (disabled by default).
    pub fn fault_plane(&self) -> &FaultPlane {
        &self.plane
    }

    /// The transport configuration this group was built with.
    pub fn config(&self) -> &CommConfig {
        &self.config
    }

    /// Marks a new training step: bumps the step counter and fires a
    /// scheduled crash-at-step fault if one targets this rank. Returns
    /// the 0-based index of the step that is starting.
    pub fn begin_step(&mut self) -> u64 {
        let s = self.step;
        self.step += 1;
        if self.plane.crash_due(self.rank, s) {
            panic!("injected fault: rank {} crashed at step {s}", self.rank);
        }
        s
    }

    /// Poisons the group on behalf of this rank (normally invoked by
    /// [`run_ranks`]'s panic handler).
    pub fn mark_poisoned(&self) {
        self.poison.poison(self.rank);
    }

    /// Marks this physical rank as departed (crashed): the elastic
    /// harness calls this instead of [`Communicator::mark_poisoned`] so
    /// survivors' poll loops surface [`CommError::Poisoned`] naming this
    /// rank and can shrink it out instead of aborting the whole group.
    pub fn mark_departed(&self) {
        let mut d = self.departed.lock().unwrap_or_else(|p| p.into_inner());
        if !d.contains(&self.rank) {
            d.push(self.rank);
        }
    }

    /// Removes this physical rank from the departure list (on rejoin).
    fn clear_departed(&self) {
        self.departed
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .retain(|&r| r != self.rank);
    }

    /// Whether physical rank `p` is currently marked departed.
    fn is_departed(&self, p: usize) -> bool {
        self.departed
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .contains(&p)
    }

    /// First active poison: a poisoned rank already shrunk out of the
    /// view (or mid-absorption) no longer fails the group.
    fn poison_active(&self) -> Option<usize> {
        self.poison
            .check()
            .filter(|r| !self.dead.contains(r) && !self.absorbing.contains(r))
    }

    /// First failed peer this rank must react to: a poisoned rank, or a
    /// departed rank still in the live view (excluding self — a shrunk
    /// rank preparing to rejoin must not trip over its own departure).
    /// Both surface as [`CommError::Poisoned`] naming the physical rank,
    /// which [`Communicator::shrink`] then absorbs.
    fn failed_peer(&self) -> Option<usize> {
        if let Some(r) = self.poison_active() {
            return Some(r);
        }
        let d = self.departed.lock().unwrap_or_else(|p| p.into_inner());
        d.iter()
            .copied()
            .find(|&r| r != self.rank && self.live.contains(&r) && !self.absorbing.contains(&r))
    }

    /// The error to surface when `peer`'s channel vanished: poison wins
    /// over a plain disconnect. `peer` is physical.
    fn disconnect_error(&self, peer: usize) -> CommError {
        match self.poison_active() {
            Some(rank) => CommError::Poisoned { rank },
            None => CommError::Disconnected { rank: peer },
        }
    }

    /// Sends `payload` to **virtual** rank `dst` (non-blocking; channels
    /// are unbounded). With the fault plane armed, also assigns a
    /// sequence number, computes the envelope CRC, retains a clean copy
    /// for retransmission, applies injected faults to the transmitted
    /// copy, and services pending control traffic.
    pub fn send(&mut self, dst: usize, payload: Payload) -> Result<(), CommError> {
        let p = self.phys_of(dst);
        self.send_to_phys(p, payload)
    }

    /// [`Communicator::send`] addressed by physical rank (membership
    /// traffic targets ranks that may sit outside the virtual view).
    fn send_to_phys(&mut self, dst: usize, payload: Payload) -> Result<(), CommError> {
        assert!(dst < self.size, "dst {dst} out of range");
        let bytes = payload.wire_bytes() as u64;
        self.sent_bytes += bytes;
        if self.recorder.is_enabled() {
            self.recorder.add(names::COMM_BYTES_SENT, bytes);
            self.recorder.observe(names::COMM_MSG_BYTES, bytes);
        }
        if !self.plane.is_enabled() {
            return self.data_tx[dst]
                .send(DataMsg {
                    seq: 0,
                    crc: 0,
                    sent_at: Instant::now(),
                    payload,
                })
                .map_err(|_| self.disconnect_error(dst));
        }
        let seq = self.send_seq[dst];
        self.send_seq[dst] += 1;
        if let Some(delay) = self.plane.straggler_delay(self.rank) {
            std::thread::sleep(delay);
        }
        let flight = Flight {
            seq,
            attempt: 0,
            crc: payload_crc(&payload),
            payload,
        };
        self.transmit(dst, &flight)?;
        self.outbox[dst].push_back(flight);
        self.service_ctrl()
    }

    /// Holds a just-dequeued message until its modeled wire drain
    /// completes: sleeps out the remainder of `bytes / bandwidth` past
    /// its send stamp. No-op without [`CommConfig::modeled_wire_mbps`]
    /// or once the drain interval has already elapsed.
    fn wire_delay(&self, msg: &DataMsg) {
        let Some(mbps) = self.config.modeled_wire_mbps else {
            return;
        };
        let bytes = msg.payload.wire_bytes();
        if bytes == 0 || mbps <= 0.0 {
            return;
        }
        let ready = msg.sent_at + Duration::from_secs_f64(bytes as f64 / (mbps * 1e6));
        let now = Instant::now();
        if ready > now {
            std::thread::sleep(ready - now);
        }
    }

    /// Puts one (possibly faulted) copy of `flight` on the wire.
    fn transmit(&self, dst: usize, flight: &Flight) -> Result<(), CommError> {
        if self
            .plane
            .should_drop(self.rank, dst, flight.seq, flight.attempt)
        {
            return Ok(()); // silently lost; the receiver's NACK recovers it
        }
        let mut msg = DataMsg {
            seq: flight.seq,
            crc: flight.crc,
            sent_at: Instant::now(),
            payload: flight.payload.clone(),
        };
        if msg.payload.wire_bits() > 0 {
            if let Some(hash) =
                self.plane
                    .wire_corrupt_bit(self.rank, dst, flight.seq, flight.attempt)
            {
                flip_payload_bit(&mut msg.payload, hash);
            }
        }
        self.data_tx[dst]
            .send(msg)
            .map_err(|_| self.disconnect_error(dst))
    }

    /// Drains all pending control traffic without blocking: ACKs prune
    /// outboxes, NACKs trigger retransmission, barrier messages are
    /// stashed for [`Communicator::barrier`].
    fn service_ctrl(&mut self) -> Result<(), CommError> {
        for src in 0..self.size {
            if src == self.rank {
                continue;
            }
            self.service_ctrl_from(src)?;
        }
        Ok(())
    }

    fn service_ctrl_from(&mut self, src: usize) -> Result<(), CommError> {
        while let Some(msg) = self.ctrl_rx[src].try_recv() {
            self.handle_ctrl(src, msg)?;
        }
        Ok(())
    }

    fn handle_ctrl(&mut self, src: usize, msg: Ctrl) -> Result<(), CommError> {
        match msg {
            Ctrl::Ack { upto } => {
                while self.outbox[src].front().is_some_and(|f| f.seq < upto) {
                    self.outbox[src].pop_front();
                }
                Ok(())
            }
            Ctrl::Nack { seq } => self.retransmit(src, seq),
            barrier_msg => {
                self.barrier_stash[src].push_back(barrier_msg);
                Ok(())
            }
        }
    }

    /// Answers a NACK from `dst` for `seq`. A NACK for an already-pruned
    /// sequence (the original delivery raced the NACK) is ignored.
    fn retransmit(&mut self, dst: usize, seq: u64) -> Result<(), CommError> {
        let Some(pos) = self.outbox[dst].iter().position(|f| f.seq == seq) else {
            return Ok(());
        };
        self.outbox[dst][pos].attempt += 1;
        self.recorder.incr(names::COMM_RETRY_RESENDS);
        // Clone out so `transmit` can borrow `self` immutably.
        let flight = Flight {
            seq,
            attempt: self.outbox[dst][pos].attempt,
            crc: self.outbox[dst][pos].crc,
            payload: self.outbox[dst][pos].payload.clone(),
        };
        self.transmit(dst, &flight)
    }

    /// ACK failures are benign (the sender may have finished and torn
    /// down), NACK failures are not (we still need its data).
    fn send_ack(&self, dst: usize, upto: u64) {
        // lint:allow(swallowed-comm-error): ACK failures are benign — the sender may have finished and torn down; NACK timers cover the gap
        let _ = self.ctrl_tx[dst].send(Ctrl::Ack { upto });
    }

    fn send_nack(&self, dst: usize, seq: u64) -> Result<(), CommError> {
        self.recorder.incr(names::COMM_RETRY_NACKS_SENT);
        self.ctrl_tx[dst]
            .send(Ctrl::Nack { seq })
            .map_err(|_| self.disconnect_error(dst))
    }

    /// Receives the next payload from **virtual** rank `src`, bounded by
    /// the configured deadline (label [`names::COMM_RECV`] in errors).
    pub fn recv(&mut self, src: usize) -> Result<Payload, CommError> {
        self.recv_labeled(src, names::COMM_RECV)
    }

    /// [`Communicator::recv`] with the enclosing collective's name
    /// threaded into any [`CommError`]. Errors name the **physical**
    /// peer (the id the elastic layer shrinks by).
    pub fn recv_labeled(
        &mut self,
        src: usize,
        collective: &'static str,
    ) -> Result<Payload, CommError> {
        let src = self.phys_of(src);
        if !self.plane.is_enabled() {
            return match self.data_rx[src].recv_timeout(self.config.recv_timeout) {
                Ok(msg) => {
                    self.wire_delay(&msg);
                    Ok(msg.payload)
                }
                Err(RecvTimeoutError::Timeout) => Err(CommError::Timeout {
                    rank: src,
                    collective,
                }),
                Err(RecvTimeoutError::Disconnected) => Err(self.disconnect_error(src)),
            };
        }
        self.recv_arq(src, collective)
    }

    /// The receiver-driven ARQ loop: poll for the expected sequence
    /// number, verify the envelope CRC, NACK losses/corruption with
    /// exponential backoff, and keep servicing control traffic so peers'
    /// recoveries make progress while we wait.
    fn recv_arq(&mut self, src: usize, collective: &'static str) -> Result<Payload, CommError> {
        self.recv_arq_inner(src, collective, false)
    }

    /// Processes one frame off `src`'s data channel: CRC check (NACK on
    /// mismatch), raw-plane diversion, in-order accept + ACK, out-of-order
    /// stash, duplicate re-ACK. Returns `Ok(Some(payload))` when a frame
    /// is deliverable to the caller, `Ok(None)` when the receive loop
    /// should keep polling.
    fn accept_data(
        &mut self,
        src: usize,
        msg: DataMsg,
        want_membership: bool,
    ) -> Result<Option<Payload>, CommError> {
        self.wire_delay(&msg);
        let expect = self.recv_expect[src];
        if msg.crc != payload_crc(&msg.payload) {
            self.recorder.incr(names::COMM_FAULT_CRC_DETECTED);
            self.send_nack(src, msg.seq)?;
            return Ok(None);
        }
        if msg.seq == RAW_SEQ {
            // Sequence-less membership frame (rejoin traffic sent
            // outside the ARQ stream): divert it, never ACK it.
            if let Payload::Bytes(b) = msg.payload {
                if b.first() == Some(&crate::membership::MAGIC) {
                    self.rejoin_stash[src].push_back(b);
                }
            }
            return Ok(None);
        }
        if msg.seq == expect {
            self.recv_expect[src] = expect + 1;
            self.send_ack(src, expect + 1);
            // A membership frame slipped into the data stream: the peer
            // entered its shrink round while we were still inside a
            // collective. Divert it so the data plane stays typed;
            // `shrink` picks it up from the stash.
            if let Payload::Bytes(b) = &msg.payload {
                if b.first() == Some(&crate::membership::MAGIC) {
                    if want_membership {
                        return Ok(Some(msg.payload));
                    }
                    self.membership_stash[src].push_back(msg.payload.into_bytes());
                    return Ok(None);
                }
            }
            return Ok(Some(msg.payload));
        } else if msg.seq > expect {
            // Out of order: a later message overtook a lost one. Keep
            // it; the NACK timer recovers `expect`.
            self.stash[src].insert(msg.seq, msg.payload);
        } else {
            // Duplicate from a spurious retransmit; re-ACK so the
            // sender prunes it.
            self.send_ack(src, expect);
        }
        Ok(None)
    }

    /// [`recv_arq`] core. With `want_membership`, diverted membership
    /// frames are *returned* instead of stashed (the shrink protocol's
    /// receive mode — data payloads still come back and the caller
    /// discards them as stale collective traffic).
    ///
    /// [`recv_arq`]: Communicator::recv_arq
    fn recv_arq_inner(
        &mut self,
        src: usize,
        collective: &'static str,
        want_membership: bool,
    ) -> Result<Payload, CommError> {
        loop {
            let expect = self.recv_expect[src];
            let Some(p) = self.stash[src].remove(&expect) else {
                break;
            };
            self.recv_expect[src] = expect + 1;
            self.send_ack(src, expect + 1);
            if let Payload::Bytes(b) = &p {
                if b.first() == Some(&crate::membership::MAGIC) {
                    if want_membership {
                        return Ok(p);
                    }
                    self.membership_stash[src].push_back(p.into_bytes());
                    continue;
                }
            }
            return Ok(p);
        }
        let start = Instant::now();
        let deadline = start + self.config.recv_timeout;
        let mut backoff = self.config.retry_initial;
        let mut nack_at = start + backoff;
        let mut nacks = 0u32;
        loop {
            // Serve frames already on the wire BEFORE consulting the
            // failure detector: a crashed peer's pre-crash sends stay
            // deliverable, so every survivor finishes the collectives
            // the dead rank fully contributed to and they all abandon
            // at the *same* step boundary. Without this fence, ranks
            // whose receives happened to be in flight at detection time
            // would abandon an earlier step than their peers — skewing
            // step counters and, one layer up, parameter trajectories.
            if let Some(msg) = self.data_rx[src].try_recv() {
                if let Some(out) = self.accept_data(src, msg, want_membership)? {
                    return Ok(out);
                }
                continue;
            }
            if let Some(rank) = self.failed_peer() {
                return Err(CommError::Poisoned { rank });
            }
            self.service_ctrl()?;
            let now = Instant::now();
            if now >= deadline {
                return Err(CommError::Timeout {
                    rank: src,
                    collective,
                });
            }
            let wake = deadline.min(nack_at).min(now + POLL_SLICE);
            let slice = wake
                .saturating_duration_since(now)
                .max(Duration::from_micros(50));
            match self.data_rx[src].recv_timeout(slice) {
                Ok(msg) => {
                    if let Some(out) = self.accept_data(src, msg, want_membership)? {
                        return Ok(out);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return Err(self.disconnect_error(src)),
            }
            if Instant::now() >= nack_at {
                if nacks >= self.config.max_retries {
                    return Err(CommError::RetriesExhausted {
                        rank: src,
                        collective,
                        attempts: nacks,
                    });
                }
                self.send_nack(src, self.recv_expect[src])?;
                nacks += 1;
                self.recorder
                    .observe(names::COMM_RETRY_BACKOFF_NS, backoff.as_nanos() as u64);
                backoff *= 2;
                nack_at = Instant::now() + backoff;
            }
        }
    }

    /// Synchronizes all ranks via control messages: everyone reports
    /// arrival to rank 0, which releases the group once all have arrived.
    /// Bounded by the receive deadline; when a rank fails to arrive, rank
    /// 0's error *names the straggler*:
    /// `CommError::Timeout { rank: straggler, collective: names::COMM_BARRIER }`.
    pub fn barrier(&mut self) -> Result<(), CommError> {
        let gen = self.barrier_gen;
        self.barrier_gen += 1;
        if self.live.len() == 1 {
            return Ok(());
        }
        let deadline = Instant::now() + self.config.recv_timeout;
        let root = self.live[0];
        if self.rank == root {
            for v in 1..self.live.len() {
                let src = self.live[v];
                self.wait_barrier(src, Ctrl::Arrive { gen }, deadline)?;
            }
            for v in 1..self.live.len() {
                let dst = self.live[v];
                self.ctrl_tx[dst]
                    .send(Ctrl::Release { gen })
                    .map_err(|_| self.disconnect_error(dst))?;
            }
        } else {
            self.ctrl_tx[root]
                .send(Ctrl::Arrive { gen })
                .map_err(|_| self.disconnect_error(root))?;
            self.wait_barrier(root, Ctrl::Release { gen }, deadline)?;
        }
        Ok(())
    }

    /// Waits for barrier message `want` from `src`, servicing ACK/NACK
    /// traffic (from `src` and everyone else) in the meantime.
    fn wait_barrier(&mut self, src: usize, want: Ctrl, deadline: Instant) -> Result<(), CommError> {
        loop {
            if let Some(rank) = self.failed_peer() {
                return Err(CommError::Poisoned { rank });
            }
            // Drain control traffic BEFORE consulting the stash: the
            // wanted message may already sit in the channel queue, and a
            // peer that sent it and exited has disconnected the channel —
            // polling first would misread that as a failure.
            self.service_ctrl()?;
            if let Some(pos) = self.barrier_stash[src].iter().position(|m| *m == want) {
                self.barrier_stash[src].remove(pos);
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(CommError::Timeout {
                    rank: src,
                    collective: names::COMM_BARRIER,
                });
            }
            let slice = POLL_SLICE.min(deadline - now);
            match self.ctrl_rx[src].recv_timeout(slice) {
                Ok(msg) => self.handle_ctrl(src, msg)?,
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return Err(self.disconnect_error(src)),
            }
        }
    }

    /// Total bytes this rank has put on the wire (traffic accounting for
    /// the communication-volume experiments).
    pub fn sent_bytes(&self) -> u64 {
        self.sent_bytes
    }

    /// Virtual rank to this rank's right on the ring.
    pub fn right(&self) -> usize {
        (self.rank() + 1) % self.size()
    }

    /// Virtual rank to this rank's left on the ring.
    pub fn left(&self) -> usize {
        (self.rank() + self.size() - 1) % self.size()
    }

    // ---- elastic membership ------------------------------------------

    /// Physical size of the channel mesh (never shrinks).
    pub fn phys_size(&self) -> usize {
        self.size
    }

    /// Physical ranks shrunk out of the view, sorted.
    pub fn dead_ranks(&self) -> &[usize] {
        &self.dead
    }

    /// Current value of the training-step counter (what the next
    /// [`Communicator::begin_step`] will return).
    pub fn current_step(&self) -> u64 {
        self.step
    }

    pub(crate) fn barrier_gen_value(&self) -> u64 {
        self.barrier_gen
    }

    /// Sends a sequence-less membership frame straight onto `dst`'s data
    /// channel (physical rank). Bypasses the ARQ stream *and* the fault
    /// plane: membership traffic models the reliable control plane.
    pub(crate) fn send_raw_frame(&mut self, dst: usize, frame: Vec<u8>) -> Result<(), CommError> {
        let payload = Payload::Bytes(frame);
        let msg = DataMsg {
            seq: RAW_SEQ,
            crc: payload_crc(&payload),
            sent_at: Instant::now(),
            payload,
        };
        self.data_tx[dst]
            .send(msg)
            .map_err(|_| self.disconnect_error(dst))
    }

    /// Non-blocking sweep of `src`'s channel (physical rank) for a
    /// membership frame: previously diverted frames first, then the raw
    /// channel, discarding stale collective traffic unacknowledged (the
    /// sender's ARQ retransmits anything a live peer still needs).
    pub(crate) fn poll_raw_membership(&mut self, src: usize) -> Option<Vec<u8>> {
        if let Some(b) = self.rejoin_stash[src].pop_front() {
            return Some(b);
        }
        while let Some(msg) = self.data_rx[src].try_recv() {
            if msg.crc != payload_crc(&msg.payload) {
                continue;
            }
            if let Payload::Bytes(b) = msg.payload {
                if b.first() == Some(&crate::membership::MAGIC) {
                    return Some(b);
                }
            }
        }
        None
    }

    /// Blocking [`Communicator::poll_raw_membership`], bounded by
    /// `deadline`. Used by members draining a joiner's channel to its
    /// rejoin-request fence.
    pub(crate) fn recv_raw_membership(
        &mut self,
        src: usize,
        deadline: Instant,
    ) -> Result<Vec<u8>, CommError> {
        loop {
            if let Some(b) = self.poll_raw_membership(src) {
                return Ok(b);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(CommError::Timeout {
                    rank: src,
                    collective: names::COMM_MEMBERSHIP,
                });
            }
            match self.data_rx[src].recv_timeout(POLL_SLICE.min(deadline - now)) {
                Ok(msg) => {
                    if msg.crc != payload_crc(&msg.payload) {
                        continue;
                    }
                    if let Payload::Bytes(b) = msg.payload {
                        if b.first() == Some(&crate::membership::MAGIC) {
                            return Ok(b);
                        }
                    }
                    // Anything else on a rejoining channel is stale
                    // collective traffic: discard unacknowledged.
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return Err(self.disconnect_error(src)),
            }
        }
    }

    /// Receives the next membership frame from live physical rank `src`
    /// through the ARQ stream, discarding stale data payloads from the
    /// interrupted collective (the proposal a peer sends on entering its
    /// shrink round is a FIFO fence: everything before it is abandoned
    /// traffic).
    fn recv_membership_arq(&mut self, src: usize) -> Result<Vec<u8>, CommError> {
        loop {
            if let Some(b) = self.membership_stash[src].pop_front() {
                return Ok(b);
            }
            match self.recv_arq_inner(src, names::COMM_MEMBERSHIP, true)? {
                Payload::Bytes(b) if b.first() == Some(&crate::membership::MAGIC) => {
                    return Ok(b);
                }
                _ => continue, // stale collective payload: discard
            }
        }
    }

    /// Quorum-agreed view shrink: absorbs `suspects` (plus any poisoned
    /// or departed ranks) out of the live view, agreeing the new view
    /// `{epoch+1, live \ suspects}` with every surviving candidate by
    /// exchanging proposal frames until the suspect union is unanimous.
    /// A candidate that fails mid-round is folded into the suspect set
    /// and the round restarts. Refuses to shrink below a majority of the
    /// current view (split-brain guard).
    ///
    /// On commit the dead ranks' transport state is cleared, the epoch
    /// advances, and `comm/membership/{shrinks,epochs}` are recorded.
    /// `suspects` are physical ranks, as carried by [`CommError`]s.
    pub fn shrink(&mut self, suspects: Vec<usize>) -> Result<ViewChange, CommError> {
        let mut suspects = suspects;
        if let Some(r) = self.poison_active() {
            suspects.push(r);
        }
        {
            let d = self.departed.lock().unwrap_or_else(|p| p.into_inner());
            suspects.extend(d.iter().copied());
        }
        suspects.retain(|&s| s != self.rank && self.live.contains(&s));
        suspects.sort_unstable();
        suspects.dedup();
        if suspects.is_empty() {
            return Err(CommError::Protocol {
                expected: "a failed live rank to shrink",
            });
        }
        let old_len = self.live.len();
        let next_epoch = self.epoch + 1;
        let mut round: u32 = 0;
        loop {
            if (old_len - suspects.len()) * 2 <= old_len {
                self.absorbing.clear();
                return Err(CommError::Protocol {
                    expected: "a surviving majority of the old view",
                });
            }
            self.absorbing = suspects.clone();
            let candidates: Vec<usize> = self
                .live
                .iter()
                .copied()
                .filter(|&p| p != self.rank && !suspects.contains(&p))
                .collect();
            let frame = crate::membership::MembershipFrame::Proposal {
                epoch: next_epoch,
                round,
                sender: self.rank as u32,
                ranks: suspects.iter().map(|&s| s as u32).collect(),
            }
            .encode();
            let mut failed: Option<usize> = None;
            for &p in &candidates {
                if self.send_to_phys(p, Payload::Bytes(frame.clone())).is_err() {
                    failed = Some(p);
                    break;
                }
            }
            let mut union = suspects.clone();
            if failed.is_none() {
                'collect: for &p in &candidates {
                    loop {
                        match self.recv_membership_arq(p) {
                            Ok(bytes) => {
                                match crate::membership::MembershipFrame::decode(&bytes) {
                                    Ok(crate::membership::MembershipFrame::Proposal {
                                        epoch,
                                        round: r,
                                        ranks,
                                        ..
                                    }) => {
                                        if epoch != next_epoch {
                                            self.absorbing.clear();
                                            return Err(CommError::Protocol {
                                                expected: "a proposal for the same next epoch",
                                            });
                                        }
                                        if r < round {
                                            continue; // stale round: keep draining
                                        }
                                        round = round.max(r);
                                        for s in ranks {
                                            let s = s as usize;
                                            if !union.contains(&s) {
                                                union.push(s);
                                            }
                                        }
                                        break;
                                    }
                                    // Rejoin traffic or garbage mid-shrink:
                                    // ignore, keep draining.
                                    _ => continue,
                                }
                            }
                            Err(e) => {
                                failed = e.culprit();
                                if failed.is_none() {
                                    self.absorbing.clear();
                                    return Err(e);
                                }
                                break 'collect;
                            }
                        }
                    }
                }
            }
            if let Some(q) = failed {
                if !suspects.contains(&q) {
                    suspects.push(q);
                    suspects.sort_unstable();
                }
                round += 1;
                continue;
            }
            union.sort_unstable();
            if union != suspects {
                suspects = union;
                round += 1;
                continue;
            }
            // Unanimous: commit the new view.
            self.absorbing.clear();
            for &s in &suspects {
                self.live.retain(|&r| r != s);
                if !self.dead.contains(&s) {
                    self.dead.push(s);
                }
                self.outbox[s].clear();
                self.stash[s].clear();
                self.membership_stash[s].clear();
                self.barrier_stash[s].clear();
                // Requests queued before this death are from a previous
                // incarnation — a ghost that could trigger admission of
                // a rank that is no longer asking. A revived rank
                // re-advertises on an interval, so wiping here loses
                // nothing.
                self.rejoin_stash[s].clear();
            }
            self.dead.sort_unstable();
            self.epoch = next_epoch;
            self.recorder.incr(names::COMM_MEMBERSHIP_SHRINKS);
            self.recorder.incr(names::COMM_MEMBERSHIP_EPOCHS);
            return Ok(ViewChange {
                epoch: self.epoch,
                removed: suspects,
                live: self.live.clone(),
            });
        }
    }

    /// Discards every frame queued in the channels from `src`, keeping
    /// only barrier traffic (exact-generation matched, so a stale entry
    /// is inert in the stash). Must accompany a pairwise sequence reset:
    /// frames still in flight on the *old* stream carry old sequence
    /// numbers and old cumulative `Ack { upto }` watermarks — kept, an
    /// old data frame would be stashed under (and later served as) a
    /// position in the new stream, and an old ack would prune undelivered
    /// new-stream flights from the peer's outbox. Anything *new*-stream
    /// discarded here is necessarily unacknowledged, so the sender's ARQ
    /// retransmits it.
    fn drain_stale_channels(&mut self, src: usize) {
        while let Some(msg) = self.data_rx[src].try_recv() {
            // Raw-plane membership frames are sequence-less and valid
            // across the reset (a rejoin request queued mid-flush is the
            // one the next admission sweep needs): keep them, CRC-checked.
            if msg.seq == RAW_SEQ && msg.crc == payload_crc(&msg.payload) {
                if let Payload::Bytes(b) = msg.payload {
                    if b.first() == Some(&crate::membership::MAGIC) {
                        self.rejoin_stash[src].push_back(b);
                    }
                }
            }
        }
        while let Some(msg) = self.ctrl_rx[src].try_recv() {
            if matches!(msg, Ctrl::Arrive { .. } | Ctrl::Release { .. }) {
                self.barrier_stash[src].push_back(msg);
            }
        }
    }

    /// Flushes every surviving pairwise stream after a view change, at a
    /// step boundary: barrier over the current live view, then reset all
    /// sequence state and discard whatever the abandoned step left in
    /// flight. The barrier makes this sound in-process: a peer's sends
    /// happen-before its barrier arrival, which happens-before our
    /// release, so by the time we flush, every stale frame is already
    /// queued — nothing from the old stream can arrive afterwards.
    /// Pending raw-plane rejoin requests survive (see
    /// [`Communicator::drain_stale_channels`]).
    pub fn resync_view(&mut self) -> Result<(), CommError> {
        self.barrier()?;
        for p in self.live.clone() {
            if p == self.rank {
                continue;
            }
            self.send_seq[p] = 0;
            self.recv_expect[p] = 0;
            self.outbox[p].clear();
            self.stash[p].clear();
            self.membership_stash[p].clear();
            self.barrier_stash[p].clear();
            self.drain_stale_channels(p);
        }
        Ok(())
    }

    /// Commits the admission of `joiner` (physical rank) into the live
    /// view: re-inserts it sorted, resets the pairwise ARQ state (both
    /// sides restart at sequence 0), adopts the admission leader's step
    /// counter (ranks whose crash-interrupted steps were abandoned at
    /// skewed points re-align their loops here), bumps the epoch, and
    /// records `comm/membership/{rejoins,epochs}`.
    pub(crate) fn grow_commit(&mut self, joiner: usize, step: u64) {
        if !self.live.contains(&joiner) {
            self.live.push(joiner);
            self.live.sort_unstable();
        }
        self.dead.retain(|&r| r != joiner);
        // Clear the joiner's departure notice *here*, not only when the
        // joiner adopts its welcome: otherwise the window between this
        // commit and the adoption re-fails the joiner on every member.
        self.departed
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .retain(|&r| r != joiner);
        self.send_seq[joiner] = 0;
        self.recv_expect[joiner] = 0;
        self.outbox[joiner].clear();
        self.stash[joiner].clear();
        self.membership_stash[joiner].clear();
        self.rejoin_stash[joiner].clear();
        self.barrier_stash[joiner].clear();
        self.drain_stale_channels(joiner);
        self.step = step;
        self.epoch += 1;
        self.recorder.incr(names::COMM_MEMBERSHIP_REJOINS);
        self.recorder.incr(names::COMM_MEMBERSHIP_EPOCHS);
    }

    /// The rejoining rank's half of [`Communicator::grow_commit`]: adopts
    /// the welcomed view and clocks wholesale, resets *all* pairwise ARQ
    /// state (every relationship restarts at sequence 0), and clears its
    /// own departure notice.
    pub(crate) fn adopt_view(&mut self, epoch: u64, live: Vec<usize>, barrier_gen: u64, step: u64) {
        self.dead = (0..self.size).filter(|r| !live.contains(r)).collect();
        self.live = live;
        self.epoch = epoch;
        self.barrier_gen = barrier_gen;
        self.step = step;
        for p in 0..self.size {
            if p == self.rank {
                continue;
            }
            self.send_seq[p] = 0;
            self.recv_expect[p] = 0;
            self.outbox[p].clear();
            self.stash[p].clear();
            self.membership_stash[p].clear();
            self.rejoin_stash[p].clear();
            self.barrier_stash[p].clear();
            self.drain_stale_channels(p);
        }
        self.clear_departed();
        self.recorder.incr(names::COMM_MEMBERSHIP_REJOINS);
        self.recorder.incr(names::COMM_MEMBERSHIP_EPOCHS);
    }
}

impl CommError {
    /// The physical rank this error blames, when it names one — the
    /// input the elastic layer feeds to [`Communicator::shrink`].
    /// `Protocol` errors blame nobody and must propagate.
    pub fn culprit(&self) -> Option<usize> {
        match *self {
            CommError::Timeout { rank, .. }
            | CommError::RetriesExhausted { rank, .. }
            | CommError::Poisoned { rank }
            | CommError::Disconnected { rank } => Some(rank),
            CommError::Protocol { .. } => None,
        }
    }
}

/// Converts a caught panic payload into a displayable message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Spawns `n` ranks on scoped threads, runs `f(communicator)` on each, and
/// returns the per-rank results in rank order.
///
/// A panic in any rank **poisons the group**: peers blocked in receives
/// or the barrier error out with [`CommError::Poisoned`] instead of
/// hanging, and once all threads have been joined the *first* panicking
/// rank's message is re-raised as `rank {r} panicked: {msg}`.
pub fn run_ranks<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&mut Communicator) -> T + Sync,
{
    run_ranks_with(n, FaultPlane::disabled(), CommConfig::default(), f)
}

/// [`run_ranks`] with an armed [`FaultPlane`] and custom deadlines — the
/// entry point of the chaos suite.
pub fn run_ranks_with<T, F>(n: usize, plane: FaultPlane, config: CommConfig, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&mut Communicator) -> T + Sync,
{
    let comms = build_group_with(n, plane, config).into_communicators();
    let poison = Arc::clone(&comms[0].poison);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let panics: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for (mut comm, slot) in comms.into_iter().zip(slots.iter_mut()) {
            let f = &f;
            let panics = &panics;
            handles.push(scope.spawn(move || {
                let rank = comm.rank();
                match catch_unwind(AssertUnwindSafe(|| f(&mut comm))) {
                    Ok(v) => {
                        // Quiesce before tearing the rank down: with a
                        // fault plane armed, a peer may still be waiting
                        // on a retransmission of traffic this rank
                        // originated (the original copy was dropped or
                        // corrupted in flight). The barrier holds the
                        // rank alive — servicing NACKs the whole time —
                        // until every rank has finished its workload, so
                        // exiting cannot strand a recovery. Best-effort:
                        // a poisoned or torn group unblocks immediately.
                        if comm.fault_plane().is_enabled() {
                            // lint:allow(swallowed-comm-error): best-effort quiesce; a poisoned or torn group must unblock immediately
                            let _ = comm.barrier();
                        }
                        *slot = Some(v);
                    }
                    Err(payload) => {
                        comm.mark_poisoned();
                        // Disconnect our channels so peers blocked on us
                        // wake immediately instead of waiting out their
                        // deadlines.
                        drop(comm);
                        // A poisoned panic registry only means another
                        // rank panicked while holding it; its contents
                        // are still valid for reporting, so recover the
                        // guard instead of double-panicking.
                        panics
                            .lock()
                            .unwrap_or_else(|p| p.into_inner())
                            .push((rank, panic_message(payload.as_ref())));
                    }
                }
            }));
        }
        for h in handles {
            let _ = h.join(); // panics were caught inside the thread
        }
    });
    if let Some(rank) = poison.check() {
        // Same poison-recovery as above: a panicking writer leaves the
        // registry usable, and all threads are joined by now.
        let panics = panics.into_inner().unwrap_or_else(|p| p.into_inner());
        let msg = panics
            .iter()
            .find(|(r, _)| *r == rank)
            .map(|(_, m)| m.clone())
            .unwrap_or_default();
        panic!("rank {rank} panicked: {msg}");
    }
    slots
        .into_iter()
        // lint:allow(no-unwrap-on-comm-path): every rank either filled its slot or poisoned the group, and poison panics above
        .map(|s| s.expect("rank produced no result"))
        .collect()
}

/// Builds the channel mesh for `size` ranks (free-function constructor used
/// by [`run_ranks`]; `CommGroup::new` delegates here).
pub fn build_group(size: usize) -> CommGroup {
    build_group_with(size, FaultPlane::disabled(), CommConfig::default())
}

/// [`build_group`] with an armed [`FaultPlane`] and custom transport
/// configuration.
pub fn build_group_with(size: usize, plane: FaultPlane, config: CommConfig) -> CommGroup {
    assert!(size > 0, "a group needs at least one rank");
    #[allow(clippy::type_complexity)] // src-major senders, dst-major receivers
    fn mesh<T>(size: usize) -> (Vec<Vec<Sender<T>>>, Vec<Vec<Receiver<T>>>) {
        let mut tx: Vec<Vec<Sender<T>>> = (0..size).map(|_| Vec::with_capacity(size)).collect();
        // rx[dst][src]: build dst-major so each rank's receivers index by
        // src.
        let mut pending: Vec<Vec<Option<Receiver<T>>>> = (0..size)
            .map(|_| (0..size).map(|_| None).collect())
            .collect();
        for (src, tx_row) in tx.iter_mut().enumerate() {
            for pending_row in pending.iter_mut() {
                let (s, r) = unbounded();
                tx_row.push(s);
                pending_row[src] = Some(r);
            }
        }
        let rx = pending
            .into_iter()
            // lint:allow(no-unwrap-on-comm-path): the loop above fills pending[dst][src] for every (src, dst) pair
            .map(|row| row.into_iter().map(|r| r.unwrap()).collect())
            .collect();
        (tx, rx)
    }
    let (data_tx, data_rx) = mesh(size);
    let (ctrl_tx, ctrl_rx) = mesh(size);
    CommGroup {
        size,
        data_tx,
        data_rx,
        ctrl_tx,
        ctrl_rx,
        poison: Arc::new(PoisonCell::new()),
        departed: Arc::new(Mutex::new(Vec::new())),
        plane,
        config,
    }
}

/// [`run_ranks_with`] for the elastic fault domain: a rank whose closure
/// panics is **not** poisoned — its physical rank is marked departed (so
/// survivors' poll loops surface [`CommError::Poisoned`] naming it and
/// can [`Communicator::shrink`] it out) and its communicator is *parked*:
/// the channels stay connected, preserving peers' ARQ state, and the
/// closure is re-entered once with `revived = true` on the same
/// communicator so it can restore from a checkpoint and
/// [`crate::membership::rejoin`] the group live. A second panic gives up
/// on the rank (its slot stays `None`).
pub fn run_ranks_elastic<T, F>(
    n: usize,
    plane: FaultPlane,
    config: CommConfig,
    f: F,
) -> Vec<Option<T>>
where
    T: Send,
    F: Fn(&mut Communicator, bool) -> T + Sync,
{
    let comms = build_group_with(n, plane, config).into_communicators();
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (mut comm, slot) in comms.into_iter().zip(slots.iter_mut()) {
            let f = &f;
            scope.spawn(move || {
                let outcome = match catch_unwind(AssertUnwindSafe(|| f(&mut comm, false))) {
                    Ok(v) => Some(v),
                    Err(_) => {
                        comm.mark_departed();
                        catch_unwind(AssertUnwindSafe(|| f(&mut comm, true))).ok()
                    }
                };
                if let Some(v) = outcome {
                    // Quiesce as in `run_ranks_with`: hold the rank alive
                    // to service peers' retransmissions until the whole
                    // view has finished. Best-effort by design. A rank
                    // still marked departed never rejoined — its view is
                    // stale, so it must not inject barrier traffic.
                    if comm.fault_plane().is_enabled() && !comm.is_departed(comm.phys_rank()) {
                        // lint:allow(collective-order): every live rank evaluates the same fault-plane and departed view, so all branch identically
                        let _ = comm.barrier(); // lint:allow(swallowed-comm-error): best-effort quiesce; a poisoned or torn group must unblock immediately
                    }
                    *slot = Some(v);
                }
            });
        }
    });
    slots
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultConfig;

    #[test]
    fn point_to_point_roundtrip() {
        let results = run_ranks(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, Payload::F32(vec![1.0, 2.0, 3.0])).unwrap();
                Vec::new()
            } else {
                comm.recv(0).unwrap().into_f32()
            }
        });
        assert_eq!(results[1], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn messages_from_distinct_sources_do_not_mix() {
        let results = run_ranks(3, |comm| match comm.rank() {
            0 => {
                comm.send(2, Payload::Sizes(vec![0])).unwrap();
                0
            }
            1 => {
                comm.send(2, Payload::Sizes(vec![1])).unwrap();
                0
            }
            _ => {
                // Receive in the opposite order of likely arrival; per-source
                // channels mean ordering across sources cannot interfere.
                let from1 = comm.recv(1).unwrap().into_sizes();
                let from0 = comm.recv(0).unwrap().into_sizes();
                (from0[0] * 10 + from1[0]) as i32
            }
        });
        assert_eq!(results[2], 1);
    }

    #[test]
    fn fifo_per_channel() {
        let results = run_ranks(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..10u64 {
                    comm.send(1, Payload::Sizes(vec![i])).unwrap();
                }
                Vec::new()
            } else {
                (0..10)
                    .map(|_| comm.recv(0).unwrap().into_sizes()[0])
                    .collect()
            }
        });
        assert_eq!(results[1], (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn barrier_allows_progress() {
        let results = run_ranks(4, |comm| {
            comm.barrier().unwrap();
            comm.rank()
        });
        assert_eq!(results, vec![0, 1, 2, 3]);
    }

    #[test]
    fn ring_neighbors() {
        run_ranks(4, |comm| {
            if comm.rank() == 0 {
                assert_eq!(comm.left(), 3);
                assert_eq!(comm.right(), 1);
            }
            if comm.rank() == 3 {
                assert_eq!(comm.left(), 2);
                assert_eq!(comm.right(), 0);
            }
        });
    }

    #[test]
    fn traffic_accounting() {
        let results = run_ranks(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, Payload::Bytes(vec![0u8; 100])).unwrap();
                comm.send(1, Payload::F32(vec![0.0; 25])).unwrap();
            } else {
                comm.recv(0).unwrap();
                comm.recv(0).unwrap();
            }
            comm.sent_bytes()
        });
        assert_eq!(results[0], 200);
        assert_eq!(results[1], 0);
    }

    #[test]
    fn single_rank_group_works() {
        let results = run_ranks(1, |comm| {
            comm.barrier().unwrap();
            comm.size()
        });
        assert_eq!(results, vec![1]);
    }

    #[test]
    #[should_panic(expected = "expected F32")]
    fn payload_type_confusion_panics() {
        Payload::Bytes(vec![1, 2]).into_f32();
    }

    #[test]
    fn try_variants_error_instead_of_panicking() {
        assert_eq!(
            Payload::Bytes(vec![1]).try_f32(),
            Err(CommError::Protocol { expected: "F32" })
        );
        assert_eq!(Payload::F32(vec![1.0]).try_f32(), Ok(vec![1.0]));
        assert_eq!(
            Payload::F32(vec![]).try_bytes(),
            Err(CommError::Protocol { expected: "Bytes" })
        );
        assert_eq!(
            Payload::Bytes(vec![]).try_sizes(),
            Err(CommError::Protocol { expected: "Sizes" })
        );
    }

    #[test]
    fn recv_times_out_with_peer_and_collective() {
        let results = run_ranks(2, |comm| {
            if comm.rank() == 0 {
                // Never send, but stay alive past rank 1's deadline so
                // the failure is a timeout, not a disconnect.
                std::thread::sleep(Duration::from_millis(150));
                Ok(Payload::Sizes(vec![]))
            } else {
                let short = CommConfig {
                    recv_timeout: Duration::from_millis(50),
                    ..CommConfig::default()
                };
                comm.config = short;
                comm.recv_labeled(0, "unit_test")
            }
        });
        assert_eq!(
            results[1],
            Err(CommError::Timeout {
                rank: 0,
                collective: "unit_test"
            })
        );
    }

    #[test]
    #[should_panic(expected = "rank 1 panicked: boom")]
    fn rank_panic_poisons_group_and_propagates() {
        run_ranks(3, |comm| {
            if comm.rank() == 1 {
                panic!("boom");
            }
            // Peers would hang forever here without poisoning; they must
            // instead observe the poisoned group and error out.
            let err = comm.recv(1).unwrap_err();
            assert!(
                matches!(
                    err,
                    CommError::Poisoned { rank: 1 } | CommError::Disconnected { rank: 1 }
                ),
                "unexpected error {err:?}"
            );
            // Barrier must not hang either.
            let _ = comm.barrier();
        });
    }

    #[test]
    fn modeled_wire_delays_delivery_by_bandwidth_not_the_sender() {
        // 1 MB at 50 MB/s models a 20 ms drain: the sender returns
        // immediately (async NIC), the receiver observes the delay.
        let config = CommConfig {
            modeled_wire_mbps: Some(50.0),
            ..CommConfig::default()
        };
        let results = run_ranks_with(2, FaultPlane::disabled(), config, |comm| {
            if comm.rank() == 0 {
                let t0 = Instant::now();
                comm.send(1, Payload::Bytes(vec![0u8; 1 << 20])).unwrap();
                let send_s = t0.elapsed().as_secs_f64();
                // Empty payloads model zero drain in either direction.
                comm.send(1, Payload::Bytes(Vec::new())).unwrap();
                send_s
            } else {
                let t0 = Instant::now();
                let big = comm.recv(0).unwrap().try_bytes().unwrap();
                let recv_s = t0.elapsed().as_secs_f64();
                assert_eq!(big.len(), 1 << 20);
                let empty = comm.recv(0).unwrap().try_bytes().unwrap();
                assert!(empty.is_empty());
                recv_s
            }
        });
        let (send_s, recv_s) = (results[0], results[1]);
        assert!(
            send_s < 0.015,
            "sender must not block on the modeled drain, took {send_s}s"
        );
        assert!(
            recv_s >= 0.018,
            "1 MB at 50 MB/s must take ~20 ms to deliver, took {recv_s}s"
        );
    }

    #[test]
    fn barrier_timeout_identifies_straggler_at_root() {
        let results = run_ranks(3, |comm| {
            comm.config = CommConfig {
                recv_timeout: Duration::from_millis(100),
                ..CommConfig::default()
            };
            if comm.rank() == 2 {
                // The straggler: never arrives at the barrier.
                std::thread::sleep(Duration::from_millis(300));
                return Err(CommError::Protocol { expected: "n/a" });
            }
            comm.barrier()
        });
        // Rank 0 (the root) names the missing rank.
        assert_eq!(
            results[0],
            Err(CommError::Timeout {
                rank: 2,
                collective: names::COMM_BARRIER
            })
        );
    }

    #[test]
    fn arq_recovers_drops_and_corruption() {
        let plane = FaultPlane::new(FaultConfig {
            seed: 99,
            drop_p: 0.2,
            corrupt_wire_p: 0.2,
            ..FaultConfig::default()
        });
        let ledger_plane = plane.clone();
        let rec = compso_obs::Recorder::enabled();
        let rec_ref = &rec;
        let config = CommConfig {
            recv_timeout: Duration::from_secs(20),
            retry_initial: Duration::from_millis(40),
            max_retries: 12,
            ..CommConfig::default()
        };
        let n_msgs = 50u64;
        let results = run_ranks_with(2, plane, config, |comm| {
            comm.set_recorder(rec_ref.clone());
            if comm.rank() == 0 {
                for i in 0..n_msgs {
                    comm.send(1, Payload::Sizes(vec![i, i * i])).unwrap();
                }
                // Stay alive until the receiver confirms delivery, so
                // late NACKs still find a live sender.
                comm.barrier().unwrap();
                Vec::new()
            } else {
                let got: Vec<u64> = (0..n_msgs)
                    .map(|_| comm.recv(0).unwrap().into_sizes()[0])
                    .collect();
                comm.barrier().unwrap();
                got
            }
        });
        assert_eq!(results[1], (0..n_msgs).collect::<Vec<u64>>());
        let ledger = ledger_plane.ledger();
        assert!(ledger.dropped > 0, "drop_p=0.2 over 50 sends must fire");
        assert!(ledger.corrupted_wire > 0);
        let snap = rec.snapshot();
        // Every injected wire corruption was detected exactly once.
        assert_eq!(
            snap.counter(compso_obs::names::COMM_FAULT_CRC_DETECTED),
            ledger.corrupted_wire
        );
        // Every drop and every corruption triggered exactly one resend.
        assert_eq!(
            snap.counter(compso_obs::names::COMM_RETRY_RESENDS),
            ledger.dropped + ledger.corrupted_wire
        );
    }

    #[test]
    fn disabled_plane_sends_no_envelope_traffic() {
        // Sequence numbers and outboxes stay untouched on the fast path.
        let results = run_ranks(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, Payload::Bytes(vec![1, 2, 3])).unwrap();
            } else {
                comm.recv(0).unwrap();
            }
            (
                comm.send_seq[1 - comm.rank()],
                comm.outbox.iter().map(|o| o.len()).sum::<usize>(),
            )
        });
        assert_eq!(results[0], (0, 0));
        assert_eq!(results[1], (0, 0));
    }

    #[test]
    fn begin_step_fires_scheduled_crash() {
        let plane = FaultPlane::new(FaultConfig {
            seed: 5,
            crash_at: Some((0, 2)),
            ..FaultConfig::default()
        });
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_ranks_with(1, plane.clone(), CommConfig::default(), |comm| {
                for _ in 0..5 {
                    comm.begin_step();
                }
            });
        }));
        let msg = panic_message(caught.unwrap_err().as_ref());
        assert!(msg.contains("rank 0 panicked"), "{msg}");
        assert!(msg.contains("crashed at step 2"), "{msg}");
        assert_eq!(plane.ledger().crashes, 1);
    }
}
