//! Rank groups and point-to-point plumbing.
//!
//! A [`CommGroup`] owns a full mesh of unbounded crossbeam channels between
//! `n` ranks. Each rank's [`Communicator`] can send a [`Payload`] to any
//! peer and receive from a *specific* peer, which is exactly the shape the
//! ring collectives in [`crate::collectives`] need (receive-from-left,
//! send-to-right). Channels are unbounded, so the collectives are
//! deadlock-free for any interleaving of sends and receives.

use compso_obs::{names, Recorder};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::{Arc, Barrier};

/// A message exchanged between ranks.
///
/// Typed variants avoid round-tripping gradient buffers through byte
/// serialization; compressed traffic travels as `Bytes`.
#[derive(Clone, Debug, PartialEq)]
pub enum Payload {
    /// A dense f32 buffer (gradients, covariance factors).
    F32(Vec<f32>),
    /// An opaque compressed byte stream.
    Bytes(Vec<u8>),
    /// Small control metadata (e.g. per-rank block sizes).
    Sizes(Vec<u64>),
}

impl Payload {
    /// Unwraps an f32 buffer.
    ///
    /// # Panics
    /// If the payload has a different variant — a protocol bug.
    pub fn into_f32(self) -> Vec<f32> {
        match self {
            Payload::F32(v) => v,
            other => panic!("protocol error: expected F32, got {other:?}"),
        }
    }

    /// Unwraps a byte buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        match self {
            Payload::Bytes(v) => v,
            other => panic!("protocol error: expected Bytes, got {other:?}"),
        }
    }

    /// Unwraps a size vector.
    pub fn into_sizes(self) -> Vec<u64> {
        match self {
            Payload::Sizes(v) => v,
            other => panic!("protocol error: expected Sizes, got {other:?}"),
        }
    }

    /// Number of wire bytes this payload represents (for traffic counters).
    pub fn wire_bytes(&self) -> usize {
        match self {
            Payload::F32(v) => v.len() * 4,
            Payload::Bytes(v) => v.len(),
            Payload::Sizes(v) => v.len() * 8,
        }
    }
}

/// Shared construction handle for a fixed-size group of ranks.
pub struct CommGroup {
    size: usize,
    /// `tx[src][dst]` sends from `src` to `dst`.
    tx: Vec<Vec<Sender<Payload>>>,
    /// `rx[dst][src]` receives at `dst` from `src`.
    rx: Vec<Vec<Receiver<Payload>>>,
    barrier: Arc<Barrier>,
}

impl CommGroup {
    /// Builds the channel mesh for `size` ranks.
    pub fn new(size: usize) -> Self {
        build_group(size)
    }

    /// Number of ranks in the group.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Splits the group into per-rank communicators.
    pub fn into_communicators(self) -> Vec<Communicator> {
        let CommGroup {
            size,
            tx,
            mut rx,
            barrier,
        } = self;
        let mut comms = Vec::with_capacity(size);
        for (rank, tx_row) in tx.into_iter().enumerate() {
            let rx_row = std::mem::take(&mut rx[rank]);
            comms.push(Communicator {
                rank,
                size,
                tx: tx_row,
                rx: rx_row,
                barrier: Arc::clone(&barrier),
                sent_bytes: 0,
                recorder: Recorder::disabled(),
            });
        }
        comms
    }
}

/// One rank's endpoint into a [`CommGroup`].
pub struct Communicator {
    rank: usize,
    size: usize,
    tx: Vec<Sender<Payload>>,
    rx: Vec<Receiver<Payload>>,
    barrier: Arc<Barrier>,
    sent_bytes: u64,
    recorder: Recorder,
}

impl Communicator {
    /// This rank's id in `[0, size)`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the group.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Attaches an observability recorder: every subsequent [`send`]
    /// counts wire bytes (`comm/bytes_sent`) and feeds the message-size
    /// histogram (`comm/msg_bytes`), and the collectives in
    /// [`crate::collectives`] time themselves against it. The default is
    /// the no-op [`Recorder::disabled`].
    ///
    /// [`send`]: Communicator::send
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// The recorder this communicator reports into.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Sends `payload` to `dst` (non-blocking; channels are unbounded).
    pub fn send(&mut self, dst: usize, payload: Payload) {
        assert!(dst < self.size, "dst {dst} out of range");
        let bytes = payload.wire_bytes() as u64;
        self.sent_bytes += bytes;
        if self.recorder.is_enabled() {
            self.recorder.add(names::COMM_BYTES_SENT, bytes);
            self.recorder.observe(names::COMM_MSG_BYTES, bytes);
        }
        self.tx[dst]
            .send(payload)
            .expect("peer rank hung up mid-collective");
    }

    /// Blocks until a payload from `src` arrives.
    pub fn recv(&self, src: usize) -> Payload {
        assert!(src < self.size, "src {src} out of range");
        self.rx[src]
            .recv()
            .expect("peer rank hung up mid-collective")
    }

    /// Synchronizes all ranks.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// Total bytes this rank has put on the wire (traffic accounting for
    /// the communication-volume experiments).
    pub fn sent_bytes(&self) -> u64 {
        self.sent_bytes
    }

    /// Rank to this rank's right on the ring.
    pub fn right(&self) -> usize {
        (self.rank + 1) % self.size
    }

    /// Rank to this rank's left on the ring.
    pub fn left(&self) -> usize {
        (self.rank + self.size - 1) % self.size
    }
}

/// Spawns `n` ranks on scoped threads, runs `f(communicator)` on each, and
/// returns the per-rank results in rank order. Panics in any rank propagate.
pub fn run_ranks<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&mut Communicator) -> T + Sync,
{
    let comms = build_group(n).into_communicators();
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for (mut comm, slot) in comms.into_iter().zip(slots.iter_mut()) {
            let f = &f;
            handles.push(scope.spawn(move || {
                *slot = Some(f(&mut comm));
            }));
        }
        for h in handles {
            h.join().expect("rank thread panicked");
        }
    });
    slots.into_iter().map(|s| s.unwrap()).collect()
}

/// Builds the channel mesh for `size` ranks (free-function constructor used
/// by [`run_ranks`]; `CommGroup::new` delegates here).
pub fn build_group(size: usize) -> CommGroup {
    assert!(size > 0, "a group needs at least one rank");
    let mut tx: Vec<Vec<Sender<Payload>>> = (0..size).map(|_| Vec::with_capacity(size)).collect();
    let mut rx: Vec<Vec<Receiver<Payload>>> = (0..size).map(|_| Vec::with_capacity(size)).collect();
    // rx[dst][src]: build dst-major so each rank's receivers index by src.
    let mut pending: Vec<Vec<Option<Receiver<Payload>>>> = (0..size)
        .map(|_| (0..size).map(|_| None).collect())
        .collect();
    for (src, tx_row) in tx.iter_mut().enumerate() {
        for pending_row in pending.iter_mut() {
            let (s, r) = unbounded();
            tx_row.push(s);
            pending_row[src] = Some(r);
        }
    }
    for (dst, row) in pending.into_iter().enumerate() {
        rx[dst] = row.into_iter().map(|r| r.unwrap()).collect();
    }
    CommGroup {
        size,
        tx,
        rx,
        barrier: Arc::new(Barrier::new(size)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_roundtrip() {
        let results = run_ranks(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, Payload::F32(vec![1.0, 2.0, 3.0]));
                Vec::new()
            } else {
                comm.recv(0).into_f32()
            }
        });
        assert_eq!(results[1], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn messages_from_distinct_sources_do_not_mix() {
        let results = run_ranks(3, |comm| match comm.rank() {
            0 => {
                comm.send(2, Payload::Sizes(vec![0]));
                0
            }
            1 => {
                comm.send(2, Payload::Sizes(vec![1]));
                0
            }
            _ => {
                // Receive in the opposite order of likely arrival; per-source
                // channels mean ordering across sources cannot interfere.
                let from1 = comm.recv(1).into_sizes();
                let from0 = comm.recv(0).into_sizes();
                (from0[0] * 10 + from1[0]) as i32
            }
        });
        assert_eq!(results[2], 1);
    }

    #[test]
    fn fifo_per_channel() {
        let results = run_ranks(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..10u64 {
                    comm.send(1, Payload::Sizes(vec![i]));
                }
                Vec::new()
            } else {
                (0..10).map(|_| comm.recv(0).into_sizes()[0]).collect()
            }
        });
        assert_eq!(results[1], (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn barrier_allows_progress() {
        let results = run_ranks(4, |comm| {
            comm.barrier();
            comm.rank()
        });
        assert_eq!(results, vec![0, 1, 2, 3]);
    }

    #[test]
    fn ring_neighbors() {
        run_ranks(4, |comm| {
            if comm.rank() == 0 {
                assert_eq!(comm.left(), 3);
                assert_eq!(comm.right(), 1);
            }
            if comm.rank() == 3 {
                assert_eq!(comm.left(), 2);
                assert_eq!(comm.right(), 0);
            }
        });
    }

    #[test]
    fn traffic_accounting() {
        let results = run_ranks(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, Payload::Bytes(vec![0u8; 100]));
                comm.send(1, Payload::F32(vec![0.0; 25]));
            } else {
                comm.recv(0);
                comm.recv(0);
            }
            comm.sent_bytes()
        });
        assert_eq!(results[0], 200);
        assert_eq!(results[1], 0);
    }

    #[test]
    fn single_rank_group_works() {
        let results = run_ranks(1, |comm| {
            comm.barrier();
            comm.size()
        });
        assert_eq!(results, vec![1]);
    }

    #[test]
    #[should_panic(expected = "expected F32")]
    fn payload_type_confusion_panics() {
        Payload::Bytes(vec![1, 2]).into_f32();
    }
}
