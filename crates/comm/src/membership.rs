//! Elastic membership: epoch-numbered views, quorum-agreed shrink, and
//! live rejoin.
//!
//! The wire format here is the `0xC9` membership frame registered in
//! `compso_core::wire::magic`: one fixed layout carrying three kinds —
//!
//! | kind | meaning |
//! |------|---------|
//! | 0 `Proposal`      | shrink round: "remove `ranks` for `epoch`"      |
//! | 1 `RejoinRequest` | a restarted rank asking to be admitted          |
//! | 2 `Welcome`       | the leader's admission: new view + group clocks |
//!
//! layout: `[0xC9][kind u8][epoch u64][round u32][sender u32]`
//! `[barrier_gen u64][step u64][count u32][count × u32 ranks]`.
//!
//! Proposals travel inside the normal ARQ stream between live survivors
//! (the proposal doubles as the FIFO fence that flushes the interrupted
//! collective's stale traffic). Rejoin requests and welcomes travel as
//! *raw* sequence-less frames because the pairwise ARQ state is stale on
//! one side; both sides reset to sequence 0 at the grow commit. Payload
//! streams on an armed fault plane must therefore never begin with
//! [`MAGIC`] unless they are membership frames — every other format in
//! the workspace carries its own distinct magic byte.

use crate::collectives::broadcast_bytes;
use crate::group::{CommError, Communicator};
use compso_core::wire::{magic, Reader, WireError, Writer};
use compso_obs::names;
use std::time::{Duration, Instant};

/// First byte of every membership frame (`compso_core::wire::magic::MAGIC_MEMBERSHIP`).
pub const MAGIC: u8 = magic::MAGIC_MEMBERSHIP;

/// Upper bound on the rank list a membership frame may carry — matches
/// the checkpoint manifest's `WORLD_MAX`.
pub const RANKS_MAX: usize = 4096;

const KIND_PROPOSAL: u8 = 0;
const KIND_REJOIN_REQUEST: u8 = 1;
const KIND_WELCOME: u8 = 2;

/// A committed membership change, as returned by
/// [`Communicator::shrink`] and [`rejoin`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ViewChange {
    /// The epoch of the new view.
    pub epoch: u64,
    /// Physical ranks removed by this change (empty for a grow).
    pub removed: Vec<usize>,
    /// Sorted physical ranks of the new view.
    pub live: Vec<usize>,
}

/// A decoded membership frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MembershipFrame {
    /// One shrink round's vote: remove `ranks` to form `epoch`.
    Proposal {
        /// The epoch the proposed view would have.
        epoch: u64,
        /// Convergence round within this shrink (suspect sets only grow).
        round: u32,
        /// Physical rank of the proposer.
        sender: u32,
        /// Suspected-failed physical ranks.
        ranks: Vec<u32>,
    },
    /// A restarted rank asking every peer for admission.
    RejoinRequest {
        /// The epoch the joiner last saw (informational).
        epoch: u64,
        /// Physical rank of the joiner.
        sender: u32,
    },
    /// The leader's admission decision, adopted verbatim by the joiner.
    Welcome {
        /// The epoch of the grown view.
        epoch: u64,
        /// Physical rank of the leader.
        sender: u32,
        /// The group's barrier generation at admission.
        barrier_gen: u64,
        /// The group's training-step counter at admission.
        step: u64,
        /// Sorted physical ranks of the grown view (joiner included).
        ranks: Vec<u32>,
    },
}

impl MembershipFrame {
    /// Serializes to the fixed `0xC9` layout.
    pub fn encode(&self) -> Vec<u8> {
        let (kind, epoch, round, sender, barrier_gen, step, ranks): (
            u8,
            u64,
            u32,
            u32,
            u64,
            u64,
            &[u32],
        ) = match self {
            MembershipFrame::Proposal {
                epoch,
                round,
                sender,
                ranks,
            } => (KIND_PROPOSAL, *epoch, *round, *sender, 0, 0, ranks),
            MembershipFrame::RejoinRequest { epoch, sender } => {
                (KIND_REJOIN_REQUEST, *epoch, 0, *sender, 0, 0, &[])
            }
            MembershipFrame::Welcome {
                epoch,
                sender,
                barrier_gen,
                step,
                ranks,
            } => (KIND_WELCOME, *epoch, 0, *sender, *barrier_gen, *step, ranks),
        };
        let mut w = Writer::new();
        w.u8(MAGIC);
        w.u8(kind);
        w.u64(epoch);
        w.u32(round);
        w.u32(sender);
        w.u64(barrier_gen);
        w.u64(step);
        w.u32(ranks.len() as u32);
        for &r in ranks {
            w.u32(r);
        }
        w.into_bytes()
    }

    /// Parses a `0xC9` frame, rejecting bad magic, unknown kinds,
    /// oversized rank lists, and trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<MembershipFrame, WireError> {
        let mut r = Reader::new(bytes);
        if r.u8()? != MAGIC {
            return Err(WireError::Invalid("bad membership magic"));
        }
        let kind = r.u8()?;
        let epoch = r.u64()?;
        let round = r.u32()?;
        let sender = r.u32()?;
        let barrier_gen = r.u64()?;
        let step = r.u64()?;
        let count = rank_count(&mut r)?;
        if count > RANKS_MAX {
            return Err(WireError::Invalid("membership rank list too long"));
        }
        let mut ranks = Vec::with_capacity(count);
        for _ in 0..count {
            ranks.push(r.u32()?);
        }
        if !r.is_exhausted() {
            return Err(WireError::Invalid("trailing bytes after membership frame"));
        }
        let frame = match kind {
            KIND_PROPOSAL => MembershipFrame::Proposal {
                epoch,
                round,
                sender,
                ranks,
            },
            KIND_REJOIN_REQUEST => {
                if !ranks.is_empty() {
                    return Err(WireError::Invalid("rejoin request carries no rank list"));
                }
                MembershipFrame::RejoinRequest { epoch, sender }
            }
            KIND_WELCOME => MembershipFrame::Welcome {
                epoch,
                sender,
                barrier_gen,
                step,
                ranks,
            },
            _ => return Err(WireError::Invalid("unknown membership frame kind")),
        };
        Ok(frame)
    }
}

/// Reads the rank-list length prefix. Split out from [`MembershipFrame::decode`]
/// deliberately: a *caller* allocating from this return value without a
/// bound is exactly the cross-function hole `compso-lint`'s
/// `unchecked-length-prefix` taint now tracks — `decode` guards it
/// against [`RANKS_MAX`] before its `Vec::with_capacity`.
fn rank_count(r: &mut Reader<'_>) -> Result<usize, WireError> {
    Ok(r.u32()? as usize)
}

/// Encoded admission decision broadcast by the leader: the joiner's
/// physical rank, or `u32::MAX` for "nobody".
const NO_JOINER: u32 = u32::MAX;

/// Polls for and admits at most one pending rejoiner. Call on **every
/// live member** at a step boundary (SPMD): the leader (virtual rank 0)
/// sweeps the dead ranks' channels for a [`MembershipFrame::RejoinRequest`],
/// broadcasts its decision, and on admission every member drains the
/// joiner's channel to the request fence before the leader issues the
/// [`MembershipFrame::Welcome`] and everyone commits the grow.
///
/// Returns the committed [`ViewChange`] when a rank was admitted. The
/// caller is responsible for state catch-up (factors, model, optimizer)
/// *after* the grow — see `compso-kfac`'s elastic catch-up.
pub fn admit_pending(comm: &mut Communicator) -> Result<Option<ViewChange>, CommError> {
    if comm.dead_ranks().is_empty() {
        return Ok(None);
    }
    let mut decision = NO_JOINER;
    if comm.rank() == 0 {
        for p in comm.dead_ranks().to_vec() {
            if let Some(bytes) = comm.poll_raw_membership(p) {
                if let Ok(MembershipFrame::RejoinRequest { sender, .. }) =
                    MembershipFrame::decode(&bytes)
                {
                    if sender as usize == p {
                        decision = sender;
                        break;
                    }
                }
            }
        }
    }
    // The decision rides with the leader's step counter: ranks can
    // abandon *different* steps when a crash interrupts them at skewed
    // points, and an unsynchronized counter would leave one member a
    // whole collective short after readmission (a guaranteed ring
    // deadlock on the last step). Membership owns the step clock at
    // every view change — the committing members adopt the leader's
    // step exactly as the joiner adopts the one in its welcome.
    let mut buf = Vec::with_capacity(12);
    buf.extend_from_slice(&decision.to_le_bytes());
    buf.extend_from_slice(&comm.current_step().to_le_bytes());
    broadcast_bytes(comm, 0, &mut buf)?;
    if buf.len() != 12 {
        return Err(CommError::Protocol {
            expected: "a 12-byte admission decision",
        });
    }
    let decision = u32::from_le_bytes(buf[..4].try_into().map_err(|_| CommError::Protocol {
        expected: "a 12-byte admission decision",
    })?);
    let leader_step = u64::from_le_bytes(buf[4..].try_into().map_err(|_| CommError::Protocol {
        expected: "a 12-byte admission decision",
    })?);
    if decision == NO_JOINER {
        return Ok(None);
    }
    let joiner = decision as usize;
    let deadline = Instant::now() + comm.config().recv_timeout;
    if comm.rank() != 0 {
        // Drain this member's own channel from the joiner to its request
        // fence: everything before it is stale traffic from the crashed
        // step.
        loop {
            let bytes = comm.recv_raw_membership(joiner, deadline)?;
            if matches!(
                MembershipFrame::decode(&bytes),
                Ok(MembershipFrame::RejoinRequest { sender, .. }) if sender as usize == joiner
            ) {
                break;
            }
        }
    }
    let mut live: Vec<u32> = comm.live_ranks().iter().map(|&r| r as u32).collect();
    live.push(joiner as u32);
    live.sort_unstable();
    if comm.rank() == 0 {
        let welcome = MembershipFrame::Welcome {
            epoch: comm.epoch() + 1,
            sender: comm.phys_rank() as u32,
            barrier_gen: comm.barrier_gen_value(),
            step: leader_step,
            ranks: live.clone(),
        }
        .encode();
        comm.send_raw_frame(joiner, welcome)?;
    }
    comm.grow_commit(joiner, leader_step);
    Ok(Some(ViewChange {
        epoch: comm.epoch(),
        removed: Vec::new(),
        live: comm.live_ranks().to_vec(),
    }))
}

/// A restarted rank's re-entry: sends a [`MembershipFrame::RejoinRequest`]
/// to every physical peer, then sweeps all channels until a
/// [`MembershipFrame::Welcome`] arrives, adopting its view and clocks
/// wholesale. Call *after* restoring local state from the latest
/// checkpoint; the group-wide factor catch-up runs after this returns.
pub fn rejoin(comm: &mut Communicator) -> Result<ViewChange, CommError> {
    let me = comm.phys_rank();
    let request = MembershipFrame::RejoinRequest {
        epoch: comm.epoch(),
        sender: me as u32,
    }
    .encode();
    let deadline = Instant::now() + comm.config().recv_timeout;
    // Re-advertise on an interval: a member flushing its streams around
    // a concurrent view change may discard a queued request, and raw
    // frames have no retransmit of their own.
    let mut advertise_at = Instant::now();
    loop {
        if Instant::now() >= advertise_at {
            for p in 0..comm.phys_size() {
                if p != me {
                    // lint:allow(swallowed-comm-error): best-effort advertisement — a dead peer cannot be reached, and the interval timer re-advertises
                    let _ = comm.send_raw_frame(p, request.clone());
                }
            }
            advertise_at = Instant::now() + Duration::from_millis(50);
        }
        for p in 0..comm.phys_size() {
            if p == me {
                continue;
            }
            let Some(bytes) = comm.poll_raw_membership(p) else {
                continue;
            };
            if let Ok(MembershipFrame::Welcome {
                epoch,
                barrier_gen,
                step,
                ranks,
                ..
            }) = MembershipFrame::decode(&bytes)
            {
                let live: Vec<usize> = ranks.iter().map(|&r| r as usize).collect();
                comm.adopt_view(epoch, live, barrier_gen, step);
                return Ok(ViewChange {
                    epoch,
                    removed: Vec::new(),
                    live: comm.live_ranks().to_vec(),
                });
            }
        }
        if Instant::now() >= deadline {
            return Err(CommError::Timeout {
                rank: me,
                collective: names::COMM_MEMBERSHIP,
            });
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::allreduce_sum;
    use crate::fault::{FaultConfig, FaultPlane};
    use crate::group::{build_group_with, run_ranks_elastic, CommConfig};

    fn elastic_config() -> CommConfig {
        CommConfig {
            recv_timeout: Duration::from_secs(10),
            retry_initial: Duration::from_millis(40),
            max_retries: 10,
            modeled_wire_mbps: None,
        }
    }

    /// The full transport-level loop: rank 2 crashes at step 3 of 8, the
    /// survivors shrink to `{0, 1, 3}` and keep allreducing, the revived
    /// rank rejoins live, and the final view is whole again at epoch 2
    /// on every rank.
    #[test]
    fn crash_shrink_continue_and_rejoin() {
        const N: usize = 4;
        const STEPS: u64 = 8;
        let plane = FaultPlane::new(FaultConfig {
            seed: 9,
            crash_at: Some((2, 3)),
            ..FaultConfig::default()
        });
        // Deterministic schedule: the revived rank may only ask to rejoin
        // once the survivors have completed two steps on the shrunk view,
        // and the survivors then hold at the admission sweep until it
        // lands (the sweep is a broadcast round, so members stay SPMD).
        let may_rejoin = std::sync::atomic::AtomicBool::new(false);
        let results = run_ranks_elastic(N, plane, elastic_config(), |comm, revived| {
            if revived {
                while !may_rejoin.load(std::sync::atomic::Ordering::Acquire) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                rejoin(comm).expect("rejoin after revival");
            }
            let mut sums = Vec::new();
            while comm.current_step() < STEPS {
                if may_rejoin.load(std::sync::atomic::Ordering::Acquire) && comm.size() < N {
                    while admit_pending(comm).expect("admission sweep").is_none() {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                } else {
                    admit_pending(comm).expect("admission sweep");
                }
                comm.begin_step(); // rank 2 panics here at step 3
                let mut x = vec![1.0f32];
                match allreduce_sum(comm, &mut x) {
                    Ok(()) => {
                        sums.push(x[0] as usize);
                        if sums.iter().filter(|&&s| s == 3).count() == 2 {
                            may_rejoin.store(true, std::sync::atomic::Ordering::Release);
                        }
                    }
                    Err(e) => {
                        let culprit = e
                            .culprit()
                            .unwrap_or_else(|| panic!("error must name the failed rank: {e:?}"));
                        comm.shrink(vec![culprit])
                            .expect("survivors agree a shrink");
                        // The interrupted step is abandoned at this layer
                        // (DistKfac degrades through its repair ladder
                        // instead).
                    }
                }
            }
            (comm.epoch(), comm.live_ranks().to_vec(), sums)
        });
        for (rank, r) in results.iter().enumerate() {
            let (epoch, live, sums) = r.as_ref().expect("every rank finishes");
            assert_eq!(*epoch, 2, "rank {rank}: shrink + rejoin = two epochs");
            assert_eq!(*live, vec![0, 1, 2, 3], "rank {rank}: view whole again");
            // Every completed allreduce summed one 1.0 per live rank, so
            // the log reads 4 (full), then 3 (shrunk), then 4 (rejoined).
            assert!(
                sums.iter().all(|&s| s == 3 || s == 4),
                "rank {rank}: sums track the live view, got {sums:?}"
            );
        }
        // Deterministic exact trajectory for every survivor: the crashed
        // rank contributed fully to steps 0-2 (in-flight frames are
        // served before the failure detector fires, so all survivors
        // finish step 2), step 3 is abandoned uniformly, two steps run
        // shrunk, and the readmitted view covers the rest.
        for &rank in &[0usize, 1, 3] {
            let (_, _, sums) = results[rank].as_ref().expect("survivor finishes");
            assert_eq!(
                sums,
                &vec![4, 4, 4, 3, 3, 4, 4],
                "rank {rank}: exact trajectory"
            );
        }
        // The joiner's revived run logs only its two readmitted steps.
        let (_, _, sums2) = results[2].as_ref().expect("the joiner finishes");
        assert_eq!(sums2, &vec![4, 4], "joiner: the two readmitted steps");
    }

    /// Shrinking below a majority of the current view is refused: the
    /// last survivor of a pair cannot form a one-rank quorum.
    #[test]
    fn shrink_refuses_to_lose_quorum() {
        let plane = FaultPlane::new(FaultConfig {
            seed: 1,
            ..FaultConfig::default()
        });
        let mut comms = build_group_with(2, plane, elastic_config()).into_communicators();
        let err = comms[0]
            .shrink(vec![1])
            .expect_err("2 -> 1 must be refused");
        assert_eq!(
            err,
            CommError::Protocol {
                expected: "a surviving majority of the old view",
            }
        );
        assert_eq!(comms[0].size(), 2, "the view must be untouched");
        assert_eq!(comms[0].epoch(), 0);
    }

    #[test]
    fn frames_roundtrip_all_kinds() {
        let frames = [
            MembershipFrame::Proposal {
                epoch: 3,
                round: 1,
                sender: 2,
                ranks: vec![1, 4],
            },
            MembershipFrame::RejoinRequest {
                epoch: 5,
                sender: 2,
            },
            MembershipFrame::Welcome {
                epoch: 7,
                sender: 0,
                barrier_gen: 41,
                step: 12,
                ranks: vec![0, 1, 2, 3],
            },
        ];
        for f in frames {
            let bytes = f.encode();
            assert_eq!(bytes[0], MAGIC);
            assert_eq!(MembershipFrame::decode(&bytes).expect("roundtrip"), f);
        }
    }

    #[test]
    fn decode_rejects_truncation_everywhere() {
        let bytes = MembershipFrame::Welcome {
            epoch: 1,
            sender: 0,
            barrier_gen: 2,
            step: 3,
            ranks: vec![0, 1, 2],
        }
        .encode();
        for cut in 0..bytes.len() {
            assert!(
                MembershipFrame::decode(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn decode_rejects_bad_magic_kind_and_trailing() {
        let good = MembershipFrame::RejoinRequest {
            epoch: 0,
            sender: 1,
        }
        .encode();
        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        assert!(MembershipFrame::decode(&bad_magic).is_err());
        let mut bad_kind = good.clone();
        bad_kind[1] = 9;
        assert!(MembershipFrame::decode(&bad_kind).is_err());
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(MembershipFrame::decode(&trailing).is_err());
    }

    #[test]
    fn decode_bounds_the_rank_list() {
        let mut bytes = MembershipFrame::Proposal {
            epoch: 1,
            round: 0,
            sender: 0,
            ranks: vec![],
        }
        .encode();
        let n = bytes.len();
        // Forge a huge count with no payload behind it: must error, not
        // allocate.
        bytes[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(MembershipFrame::decode(&bytes).is_err());
    }
}
