//! Ring collectives over [`Communicator`]s.
//!
//! The algorithms are the textbook bandwidth-optimal ring formulations —
//! the same family NCCL uses on the paper's clusters:
//!
//! * **all-reduce** = ring reduce-scatter (each rank ends up owning the
//!   fully-reduced `r`-th block) followed by ring all-gather;
//! * **all-gather** circulates blocks around the ring for `p - 1` steps,
//!   with a variable-size variant for compressed payloads whose per-rank
//!   sizes differ (§4.3: "KFAC uses AllGather, avoiding [ring-allreduce
//!   error propagation]");
//! * **broadcast** is a flat fan-out from the root (some K-FAC
//!   implementations overlap broadcasts per layer; flat is enough for the
//!   correctness role this substrate plays).
//!
//! Every collective is **fallible**: receives are deadline-bounded and
//! surface [`CommError::Timeout`] naming the peer and the collective
//! instead of deadlocking, and transport faults injected by an armed
//! [`crate::fault::FaultPlane`] are absorbed transparently by the
//! NACK/retransmit layer in [`crate::group`].

use crate::group::{CommError, Communicator, Payload};
use compso_obs::names;

/// Splits `len` into `parts` contiguous block ranges, sizes differing by at
/// most one (first `len % parts` blocks are one longer).
pub fn block_ranges(len: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    assert!(parts > 0);
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let sz = base + usize::from(p < extra);
        out.push(start..start + sz);
        start += sz;
    }
    out
}

/// Sum all-reduce: on return every rank's `data` holds the elementwise sum
/// across ranks. Bandwidth-optimal ring (reduce-scatter + all-gather).
pub fn allreduce_sum(comm: &mut Communicator, data: &mut [f32]) -> Result<(), CommError> {
    let _span = comm.recorder().span(names::COMM_ALLREDUCE);
    comm.recorder().incr(names::COMM_ALLREDUCE_CALLS);
    let p = comm.size();
    if p == 1 {
        return Ok(());
    }
    let ranges = block_ranges(data.len(), p);
    let r = comm.rank();
    let left = comm.left();
    let right = comm.right();

    // Phase 1: reduce-scatter. At step s, send block (r - s) and receive
    // block (r - s - 1), accumulating into it. After p-1 steps, rank r owns
    // the fully reduced block (r + 1) mod p.
    for s in 0..p - 1 {
        let send_block = (r + p - s) % p;
        let recv_block = (r + p - s - 1) % p;
        let chunk = data[ranges[send_block].clone()].to_vec();
        comm.send(right, Payload::F32(chunk))?;
        let incoming = comm.recv_labeled(left, names::COMM_ALLREDUCE)?.try_f32()?;
        let dst = &mut data[ranges[recv_block].clone()];
        debug_assert_eq!(incoming.len(), dst.len());
        for (d, v) in dst.iter_mut().zip(incoming) {
            *d += v;
        }
    }

    // Phase 2: all-gather the reduced blocks. Rank r starts by sending its
    // owned block (r + 1) mod p.
    for s in 0..p - 1 {
        let send_block = (r + 1 + p - s) % p;
        let recv_block = (r + p - s) % p;
        let chunk = data[ranges[send_block].clone()].to_vec();
        comm.send(right, Payload::F32(chunk))?;
        let incoming = comm.recv_labeled(left, names::COMM_ALLREDUCE)?.try_f32()?;
        data[ranges[recv_block].clone()].copy_from_slice(&incoming);
    }
    Ok(())
}

/// Average all-reduce: all-reduce then divide by the rank count — the form
/// data-parallel gradient synchronization uses.
pub fn allreduce_mean(comm: &mut Communicator, data: &mut [f32]) -> Result<(), CommError> {
    allreduce_sum(comm, data)?;
    let inv = 1.0 / comm.size() as f32;
    for v in data.iter_mut() {
        *v *= inv;
    }
    Ok(())
}

/// Ring reduce-scatter: each rank returns the fully reduced block for its
/// own index (`block_ranges(data.len(), p)[rank]`).
pub fn reduce_scatter_sum(comm: &mut Communicator, data: &[f32]) -> Result<Vec<f32>, CommError> {
    let _span = comm.recorder().span(names::COMM_REDUCE_SCATTER);
    let p = comm.size();
    let ranges = block_ranges(data.len(), p);
    if p == 1 {
        return Ok(data.to_vec());
    }
    let r = comm.rank();
    let left = comm.left();
    let right = comm.right();
    let mut work = data.to_vec();
    // Same schedule as allreduce phase 1, then rotate ownership so rank r
    // ends with block r (one extra hop of the owned block).
    for s in 0..p - 1 {
        let send_block = (r + p - s) % p;
        let recv_block = (r + p - s - 1) % p;
        let chunk = work[ranges[send_block].clone()].to_vec();
        comm.send(right, Payload::F32(chunk))?;
        let incoming = comm
            .recv_labeled(left, names::COMM_REDUCE_SCATTER)?
            .try_f32()?;
        let dst = &mut work[ranges[recv_block].clone()];
        for (d, v) in dst.iter_mut().zip(incoming) {
            *d += v;
        }
    }
    // Rank r now owns block (r + 1) mod p; forward it one step so rank r
    // holds block r.
    let owned = (r + 1) % p;
    comm.send(right, Payload::F32(work[ranges[owned].clone()].to_vec()))?;
    comm.recv_labeled(left, names::COMM_REDUCE_SCATTER)?
        .try_f32()
}

/// Fixed-size ring all-gather of f32 blocks. Every rank contributes
/// `mine`; returns the concatenation ordered by rank.
pub fn allgather(comm: &mut Communicator, mine: &[f32]) -> Result<Vec<f32>, CommError> {
    let _span = comm.recorder().span(names::COMM_ALLGATHER);
    let p = comm.size();
    let n = mine.len();
    let mut out = vec![0.0f32; n * p];
    let r = comm.rank();
    out[r * n..(r + 1) * n].copy_from_slice(mine);
    if p == 1 {
        return Ok(out);
    }
    let left = comm.left();
    let right = comm.right();
    for s in 0..p - 1 {
        let send_block = (r + p - s) % p;
        let recv_block = (r + p - s - 1) % p;
        comm.send(
            right,
            Payload::F32(out[send_block * n..(send_block + 1) * n].to_vec()),
        )?;
        let incoming = comm.recv_labeled(left, names::COMM_ALLGATHER)?.try_f32()?;
        if incoming.len() != n {
            return Err(CommError::Protocol {
                expected: "allgather block of matching size",
            });
        }
        out[recv_block * n..(recv_block + 1) * n].copy_from_slice(&incoming);
    }
    Ok(out)
}

/// Variable-size ring all-gather of byte blocks — the collective compressed
/// K-FAC gradients travel over, since per-rank compressed sizes differ.
/// Returns one buffer per rank, in rank order.
pub fn allgather_var(comm: &mut Communicator, mine: Vec<u8>) -> Result<Vec<Vec<u8>>, CommError> {
    let _span = comm.recorder().span(names::COMM_ALLGATHER_VAR);
    comm.recorder().incr(names::COMM_ALLGATHER_VAR_CALLS);
    allgather_var_quiet(comm, mine, names::COMM_ALLGATHER_VAR)
}

/// [`allgather_var`] without the `comm/allgather_var` span/counter —
/// used by auxiliary exchanges (the degradation ladder's repair status
/// round) that must not perturb call-count invariants on the main
/// collective. Errors carry `label` as the collective name.
pub fn allgather_var_quiet(
    comm: &mut Communicator,
    mine: Vec<u8>,
    label: &'static str,
) -> Result<Vec<Vec<u8>>, CommError> {
    let p = comm.size();
    let r = comm.rank();
    let mut blocks: Vec<Option<Vec<u8>>> = (0..p).map(|_| None).collect();
    blocks[r] = Some(mine);
    if p == 1 {
        // lint:allow(no-unwrap-on-comm-path): p == 1, so the only block is ours and was just set
        return Ok(blocks.into_iter().map(|b| b.unwrap()).collect());
    }
    let left = comm.left();
    let right = comm.right();
    for s in 0..p - 1 {
        let send_block = (r + p - s) % p;
        let recv_block = (r + p - s - 1) % p;
        let outgoing = blocks[send_block].clone().ok_or(CommError::Protocol {
            expected: "ring schedule: block present before its send hop",
        })?;
        comm.send(right, Payload::Bytes(outgoing))?;
        let incoming = comm.recv_labeled(left, label)?.try_bytes()?;
        blocks[recv_block] = Some(incoming);
    }
    blocks
        .into_iter()
        .map(|b| {
            b.ok_or(CommError::Protocol {
                expected: "ring schedule: all blocks received after p - 1 hops",
            })
        })
        .collect()
}

/// Pipelined variable-size ring all-gather: the COMPSO overlap primitive.
///
/// Each rank contributes `groups_per_rank[rank]` byte blocks (one per
/// aggregation group) that are **produced lazily** while earlier blocks
/// circulate the ring, and every received block is **delivered as it
/// lands** instead of after the full gather. `groups_per_rank` must be
/// identical on every rank (in the hot path it is derived from the
/// globally known layer shapes); every rank computes the same hop
/// schedule from it, so slots past a rank's last group circulate no
/// filler traffic at all — on imbalanced ownership only the widest
/// rank's blocks keep hopping. Per pipeline slot `g`:
///
/// 1. the rank sends its own `g`-th block right (nothing when `g` is
///    past its last group);
/// 2. it immediately calls `produce(g + 1)` — rank-local compression of
///    the *next* group overlaps the `p − 1` ring hops of the current
///    slot;
/// 3. it runs the `p − 1` hops, skipping origins with no block in this
///    slot: receive from the left, forward right *before* delivering
///    (so downstream ranks are never stalled behind this rank's
///    decode), then hand the block to `deliver(origin, g, bytes)` —
///    streaming per-group decode overlapping later hops.
///
/// `produce(g)` is called exactly once per own group, strictly in order
/// `0..groups_per_rank[rank]` — callers that advance an RNG per group
/// therefore consume the identical stream as a compress-then-gather
/// loop, which is what keeps the pipelined path bit-identical.
/// `deliver` is called exactly once per `(origin, group)` pair for every
/// *other* rank's groups (a rank's own blocks never come back around the
/// ring; the caller keeps its own clean copies).
///
/// Exposed (un-overlapped) receive time accumulates in
/// `comm/pipeline/wait`; the producer/delivery callbacks are timed under
/// `comm/pipeline/produce` and `comm/pipeline/deliver`, and each call
/// adds the slot count to `comm/pipeline_stages`. Transport faults from
/// an armed [`crate::fault::FaultPlane`] are absorbed by the ARQ layer
/// exactly as for [`allgather_var`].
pub fn pipelined_allgather(
    comm: &mut Communicator,
    groups_per_rank: &[usize],
    mut produce: impl FnMut(usize) -> Vec<u8>,
    mut deliver: impl FnMut(usize, usize, Vec<u8>),
) -> Result<(), CommError> {
    let rec = comm.recorder().clone();
    let _span = rec.span(names::COMM_PIPELINED_ALLGATHER);
    rec.incr(names::COMM_PIPELINED_ALLGATHER_CALLS);
    let p = comm.size();
    let r = comm.rank();
    if groups_per_rank.len() != p {
        return Err(CommError::Protocol {
            expected: "one group count per rank",
        });
    }
    let g_me = groups_per_rank[r];
    let g_max = groups_per_rank.iter().copied().max().unwrap_or(0);
    rec.add(names::COMM_PIPELINE_STAGES, g_max as u64);
    let mut timed_produce = |g: usize| -> Vec<u8> {
        // lint:allow(deterministic-state): span timing for obs counters; the produced bytes are clock-independent
        let t0 = std::time::Instant::now();
        let block = produce(g);
        rec.add_time_ns(
            names::COMM_PIPELINE_PRODUCE,
            u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
        );
        block
    };
    if p == 1 {
        // Degenerate ring: no wire, but the producer must still run once
        // per group in order so the caller's RNG stream matches.
        for g in 0..g_me {
            let _ = timed_produce(g);
        }
        return Ok(());
    }
    let left = comm.left();
    let right = comm.right();
    let mut next: Option<Vec<u8>> = (g_me > 0).then(|| timed_produce(0));
    for slot in 0..g_max {
        // Empty slots hop nothing: `groups_per_rank` is global
        // knowledge, so every rank derives the same schedule and skips
        // the send/recv pair outright instead of circulating filler
        // blocks. On imbalanced ownership (one rank owning most groups,
        // the common case that motivates pipelining) this halves the
        // message count — slots past the small ranks' last group carry
        // only the big owner's blocks.
        if slot < g_me {
            let own = next.take().ok_or(CommError::Protocol {
                expected: "pipeline schedule: own block produced before its slot",
            })?;
            comm.send(right, Payload::Bytes(own))?;
        }
        // The overlap: compress the next group while this slot's blocks
        // make their way around the ring.
        if slot + 1 < g_me {
            next = Some(timed_produce(slot + 1));
        }
        for s in 0..p - 1 {
            let origin = (r + p - s - 1) % p;
            if slot >= groups_per_rank[origin] {
                continue;
            }
            // lint:allow(deterministic-state): recv-wait timing for obs counters only; never alters the bytes delivered
            let t0 = std::time::Instant::now();
            let incoming = comm
                .recv_labeled(left, names::COMM_PIPELINED_ALLGATHER)?
                .try_bytes()?;
            rec.add_time_ns(
                names::COMM_PIPELINE_WAIT,
                u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
            );
            // Forward before delivering: the downstream ranks' hop `s+1`
            // must not wait behind this rank's decode of the block.
            if s < p - 2 {
                comm.send(right, Payload::Bytes(incoming.clone()))?;
            }
            // lint:allow(deterministic-state): deliver timing for obs counters only
            let t1 = std::time::Instant::now();
            deliver(origin, slot, incoming);
            rec.add_time_ns(
                names::COMM_PIPELINE_DELIVER,
                u64::try_from(t1.elapsed().as_nanos()).unwrap_or(u64::MAX),
            );
        }
    }
    Ok(())
}

/// Lossy-compressed ring all-reduce: every reduce-scatter hop compresses
/// its outgoing chunk with `codec` (encode → decode at the receiver),
/// so quantization error **accumulates across the `p − 1` hops** — the
/// §4.3 observation that makes ring all-reduce a poor fit for gradient
/// compression ("SGD relies on ring AllReduce, which has the error
/// propagation issue; KFAC uses AllGather, avoiding this issue").
///
/// `codec` maps a chunk to its lossy reconstruction (a compressor's
/// compress∘decompress); the all-gather phase also travels compressed.
/// Returns the per-rank reduced buffer, averaged.
pub fn compressed_allreduce_mean(
    comm: &mut Communicator,
    data: &mut [f32],
    mut codec: impl FnMut(&[f32]) -> Vec<f32>,
) -> Result<(), CommError> {
    let _span = comm.recorder().span(names::COMM_COMPRESSED_ALLREDUCE);
    let p = comm.size();
    if p == 1 {
        return Ok(());
    }
    let ranges = block_ranges(data.len(), p);
    let r = comm.rank();
    let left = comm.left();
    let right = comm.right();

    // Reduce-scatter with per-hop lossy compression.
    for s in 0..p - 1 {
        let send_block = (r + p - s) % p;
        let recv_block = (r + p - s - 1) % p;
        let chunk = codec(&data[ranges[send_block].clone()]);
        comm.send(right, Payload::F32(chunk))?;
        let incoming = comm
            .recv_labeled(left, names::COMM_COMPRESSED_ALLREDUCE)?
            .try_f32()?;
        let dst = &mut data[ranges[recv_block].clone()];
        debug_assert_eq!(incoming.len(), dst.len());
        for (d, v) in dst.iter_mut().zip(incoming) {
            *d += v;
        }
    }

    // All-gather of the reduced blocks, also compressed (one more hop of
    // loss, matching compressed-allreduce implementations).
    for s in 0..p - 1 {
        let send_block = (r + 1 + p - s) % p;
        let recv_block = (r + p - s) % p;
        let chunk = codec(&data[ranges[send_block].clone()]);
        comm.send(right, Payload::F32(chunk))?;
        let incoming = comm
            .recv_labeled(left, names::COMM_COMPRESSED_ALLREDUCE)?
            .try_f32()?;
        data[ranges[recv_block].clone()].copy_from_slice(&incoming);
    }

    let inv = 1.0 / p as f32;
    for v in data.iter_mut() {
        *v *= inv;
    }
    Ok(())
}

/// Broadcast `data` from `root` to all ranks (flat fan-out).
pub fn broadcast(
    comm: &mut Communicator,
    root: usize,
    data: &mut Vec<f32>,
) -> Result<(), CommError> {
    let p = comm.size();
    if p == 1 {
        return Ok(());
    }
    if comm.rank() == root {
        for dst in 0..p {
            if dst != root {
                comm.send(dst, Payload::F32(data.clone()))?;
            }
        }
    } else {
        *data = comm.recv_labeled(root, names::COMM_BROADCAST)?.try_f32()?;
    }
    Ok(())
}

/// Broadcast opaque bytes from `root`.
pub fn broadcast_bytes(
    comm: &mut Communicator,
    root: usize,
    data: &mut Vec<u8>,
) -> Result<(), CommError> {
    let p = comm.size();
    if p == 1 {
        return Ok(());
    }
    if comm.rank() == root {
        for dst in 0..p {
            if dst != root {
                comm.send(dst, Payload::Bytes(data.clone()))?;
            }
        }
    } else {
        *data = comm
            .recv_labeled(root, names::COMM_BROADCAST_BYTES)?
            .try_bytes()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultConfig, FaultPlane};
    use crate::group::{run_ranks, run_ranks_with, CommConfig};
    use std::time::Duration;

    #[test]
    fn block_ranges_cover_exactly() {
        for len in [0usize, 1, 7, 16, 100] {
            for parts in [1usize, 2, 3, 8] {
                let rs = block_ranges(len, parts);
                assert_eq!(rs.len(), parts);
                assert_eq!(rs[0].start, 0);
                assert_eq!(rs.last().unwrap().end, len);
                for w in rs.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                    assert!(w[0].len() >= w[1].len());
                    assert!(w[0].len() - w[1].len() <= 1);
                }
            }
        }
    }

    #[test]
    fn allreduce_sum_matches_serial() {
        for p in [1usize, 2, 3, 4, 7] {
            for len in [1usize, 5, 64, 129] {
                let results = run_ranks(p, |comm| {
                    let r = comm.rank();
                    let mut data: Vec<f32> =
                        (0..len).map(|i| (r * 1000 + i) as f32 * 0.5).collect();
                    allreduce_sum(comm, &mut data).unwrap();
                    data
                });
                let expected: Vec<f32> = (0..len)
                    .map(|i| (0..p).map(|r| (r * 1000 + i) as f32 * 0.5).sum())
                    .collect();
                for (rank, res) in results.iter().enumerate() {
                    for (a, b) in res.iter().zip(&expected) {
                        assert!(
                            (a - b).abs() < 1e-3,
                            "p={p} len={len} rank={rank}: {a} vs {b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn allreduce_mean_divides() {
        let results = run_ranks(4, |comm| {
            let mut data = vec![comm.rank() as f32; 10];
            allreduce_mean(comm, &mut data).unwrap();
            data
        });
        for res in results {
            for v in res {
                assert!((v - 1.5).abs() < 1e-6); // (0+1+2+3)/4
            }
        }
    }

    #[test]
    fn reduce_scatter_gives_each_rank_its_block() {
        let p = 4;
        let len = 10;
        let results = run_ranks(p, |comm| {
            let data: Vec<f32> = (0..len).map(|i| i as f32).collect();
            reduce_scatter_sum(comm, &data).unwrap()
        });
        let ranges = block_ranges(len, p);
        for (rank, res) in results.iter().enumerate() {
            let expected: Vec<f32> = ranges[rank].clone().map(|i| i as f32 * p as f32).collect();
            assert_eq!(res, &expected, "rank {rank}");
        }
    }

    #[test]
    fn allgather_concatenates_in_rank_order() {
        for p in [1usize, 2, 5] {
            let results = run_ranks(p, |comm| {
                let mine = vec![comm.rank() as f32; 3];
                allgather(comm, &mine).unwrap()
            });
            let expected: Vec<f32> = (0..p).flat_map(|r| vec![r as f32; 3]).collect();
            for res in results {
                assert_eq!(res, expected);
            }
        }
    }

    #[test]
    fn allgather_var_handles_unequal_sizes() {
        let p = 5;
        let results = run_ranks(p, |comm| {
            let r = comm.rank();
            let mine: Vec<u8> = (0..(r * 3 + 1)).map(|i| (r * 10 + i) as u8).collect();
            allgather_var(comm, mine).unwrap()
        });
        for res in &results {
            assert_eq!(res.len(), p);
            for (r, block) in res.iter().enumerate() {
                let expected: Vec<u8> = (0..(r * 3 + 1)).map(|i| (r * 10 + i) as u8).collect();
                assert_eq!(block, &expected);
            }
        }
    }

    #[test]
    fn allgather_var_empty_blocks_ok() {
        let results = run_ranks(3, |comm| {
            let mine = if comm.rank() == 1 {
                vec![7u8]
            } else {
                Vec::new()
            };
            allgather_var(comm, mine).unwrap()
        });
        for res in results {
            assert_eq!(res[0], Vec::<u8>::new());
            assert_eq!(res[1], vec![7u8]);
            assert_eq!(res[2], Vec::<u8>::new());
        }
    }

    #[test]
    fn compressed_allreduce_is_exact_with_identity_codec() {
        let results = run_ranks(4, |comm| {
            let mut data: Vec<f32> = (0..32).map(|i| (comm.rank() * 32 + i) as f32).collect();
            compressed_allreduce_mean(comm, &mut data, |c| c.to_vec()).unwrap();
            data
        });
        let expected: Vec<f32> = (0..32)
            .map(|i| (0..4).map(|r| (r * 32 + i) as f32).sum::<f32>() / 4.0)
            .collect();
        for res in results {
            for (a, b) in res.iter().zip(&expected) {
                assert!((a - b).abs() < 1e-4);
            }
        }
    }

    /// The §4.3 error-propagation claim, quantified: with the same lossy
    /// codec, a compressed ring all-reduce accumulates error across hops
    /// while a compressed all-gather pays the loss exactly once, and the
    /// all-reduce error grows with the ring size.
    #[test]
    fn ring_allreduce_accumulates_compression_error_allgather_does_not() {
        // A crude lossy codec: quantize to a fixed grid.
        let grid = 0.02f32;
        let lossy =
            move |c: &[f32]| -> Vec<f32> { c.iter().map(|&v| (v / grid).round() * grid).collect() };
        let n = 256usize;

        // Error on the reduced *sum* (the quantity the collective moves):
        // a single compression of the sum would err by at most grid/2;
        // per-hop compression requantizes partial sums p-1 times.
        let allreduce_err = |p: usize| -> f64 {
            let results = run_ranks(p, |comm| {
                let mut data: Vec<f32> = (0..n)
                    .map(|i| ((comm.rank() + 1) as f32 * 0.137 + i as f32 * 0.0113).sin() * 0.1)
                    .collect();
                let exact_sum: Vec<f32> = (0..n)
                    .map(|i| {
                        (0..p)
                            .map(|r| ((r + 1) as f32 * 0.137 + i as f32 * 0.0113).sin() * 0.1)
                            .sum::<f32>()
                    })
                    .collect();
                compressed_allreduce_mean(comm, &mut data, lossy).unwrap();
                data.iter()
                    .zip(&exact_sum)
                    .map(|(&a, &b)| ((a * p as f32 - b) as f64).abs())
                    .fold(0.0f64, f64::max)
            });
            results.into_iter().fold(0.0, f64::max)
        };

        let allgather_err = |p: usize| -> f64 {
            let results = run_ranks(p, |comm| {
                let mine: Vec<f32> = (0..n)
                    .map(|i| ((comm.rank() + 1) as f32 * 0.137 + i as f32 * 0.0113).sin() * 0.1)
                    .collect();
                // All-gather path: compress once at the source.
                let gathered = allgather(comm, &lossy(&mine)).unwrap();
                // Error vs the exact gathered data.
                let mut worst = 0.0f64;
                for r in 0..p {
                    for i in 0..n {
                        let exact = ((r + 1) as f32 * 0.137 + i as f32 * 0.0113).sin() * 0.1;
                        worst = worst.max(((gathered[r * n + i] - exact) as f64).abs());
                    }
                }
                worst
            });
            results.into_iter().fold(0.0, f64::max)
        };

        let single_hop = grid as f64 / 2.0;
        // All-gather: exactly one quantization, independent of p.
        assert!(allgather_err(2) <= single_hop * 1.01);
        assert!(allgather_err(8) <= single_hop * 1.01);
        // All-reduce: error grows with the ring size and exceeds one hop.
        let ar2 = allreduce_err(2);
        let ar8 = allreduce_err(8);
        assert!(ar8 > ar2, "no accumulation: p=2 {ar2} vs p=8 {ar8}");
        assert!(
            ar8 > single_hop * 2.0,
            "p=8 all-reduce error {ar8} vs single hop {single_hop}"
        );
    }

    #[test]
    fn recorder_times_collectives_and_counts_traffic() {
        use compso_obs::{names, Recorder};
        let rec = Recorder::enabled();
        let rec_ref = &rec;
        run_ranks(4, |comm| {
            comm.set_recorder(rec_ref.clone());
            let mut data = vec![comm.rank() as f32; 64];
            allreduce_sum(comm, &mut data).unwrap();
            let gathered = allgather_var(comm, vec![0u8; 16 * (comm.rank() + 1)]).unwrap();
            assert_eq!(gathered.len(), 4);
        });
        let snap = rec.snapshot();
        // One timed span per rank per collective.
        assert_eq!(snap.timers[names::COMM_ALLREDUCE].count, 4);
        assert_eq!(snap.timers[names::COMM_ALLGATHER_VAR].count, 4);
        // Invocation counters match the span counts (the bucketing
        // acceptance check in compso-kfac leans on these).
        assert_eq!(snap.counter(names::COMM_ALLREDUCE_CALLS), 4);
        assert_eq!(snap.counter(names::COMM_ALLGATHER_VAR_CALLS), 4);
        // Every send was counted and histogrammed.
        let sent = snap.counter(names::COMM_BYTES_SENT);
        assert!(sent > 0);
        let hist = &snap.hists[names::COMM_MSG_BYTES];
        assert_eq!(hist.sum, sent);
        // allreduce: 4 ranks × 2(p-1)=6 sends; allgather_var: 4 ranks × 3.
        assert_eq!(hist.count, 4 * 6 + 4 * 3);
        // No retries or faults on the clean path.
        assert_eq!(snap.counter(names::COMM_RETRY_RESENDS), 0);
        assert_eq!(snap.counter(names::COMM_FAULT_CRC_DETECTED), 0);
    }

    #[test]
    fn broadcast_from_each_root() {
        for root in 0..3 {
            let results = run_ranks(3, move |comm| {
                let mut data = if comm.rank() == root {
                    vec![42.0, -1.0]
                } else {
                    Vec::new()
                };
                broadcast(comm, root, &mut data).unwrap();
                data
            });
            for res in results {
                assert_eq!(res, vec![42.0, -1.0]);
            }
        }
    }

    #[test]
    fn broadcast_bytes_roundtrip() {
        let results = run_ranks(4, |comm| {
            let mut data = if comm.rank() == 2 {
                vec![1u8, 2, 3, 4, 5]
            } else {
                Vec::new()
            };
            broadcast_bytes(comm, 2, &mut data).unwrap();
            data
        });
        for res in results {
            assert_eq!(res, vec![1, 2, 3, 4, 5]);
        }
    }

    #[test]
    fn allreduce_len_smaller_than_ranks() {
        // Degenerate blocks (empty ranges) must still work.
        let results = run_ranks(6, |comm| {
            let mut data = vec![1.0f32; 2];
            allreduce_sum(comm, &mut data).unwrap();
            data
        });
        for res in results {
            assert_eq!(res, vec![6.0, 6.0]);
        }
    }

    #[test]
    fn collectives_survive_injected_transport_faults() {
        // Ring collectives under drops + wire corruption + one straggler:
        // results must be bit-identical to the fault-free run.
        let plane = FaultPlane::new(FaultConfig {
            seed: 2024,
            drop_p: 0.05,
            corrupt_wire_p: 0.05,
            straggler: Some((1, Duration::from_micros(200))),
            ..FaultConfig::default()
        });
        let ledger_plane = plane.clone();
        let config = CommConfig {
            recv_timeout: Duration::from_secs(30),
            retry_initial: Duration::from_millis(40),
            max_retries: 12,
            ..CommConfig::default()
        };
        let p = 4;
        let faulty = run_ranks_with(p, plane, config, |comm| {
            let mut data: Vec<f32> = (0..97).map(|i| (comm.rank() * 97 + i) as f32).collect();
            allreduce_sum(comm, &mut data).unwrap();
            let mine: Vec<u8> = vec![comm.rank() as u8; 11 * (comm.rank() + 1)];
            let gathered = allgather_var(comm, mine).unwrap();
            comm.barrier().unwrap();
            (data, gathered)
        });
        let clean = run_ranks(p, |comm| {
            let mut data: Vec<f32> = (0..97).map(|i| (comm.rank() * 97 + i) as f32).collect();
            allreduce_sum(comm, &mut data).unwrap();
            let mine: Vec<u8> = vec![comm.rank() as u8; 11 * (comm.rank() + 1)];
            let gathered = allgather_var(comm, mine).unwrap();
            comm.barrier().unwrap();
            (data, gathered)
        });
        assert_eq!(faulty, clean);
        let ledger = ledger_plane.ledger();
        assert!(
            ledger.dropped + ledger.corrupted_wire > 0,
            "fault matrix must actually fire: {ledger:?}"
        );
        assert!(ledger.delayed > 0, "straggler must have delayed sends");
    }

    /// Deterministic test block for `(origin, group)` — length varies per
    /// pair so size confusion between slots would be caught.
    fn pipe_block(origin: usize, g: usize) -> Vec<u8> {
        vec![(origin * 16 + g) as u8; 3 + origin * 5 + g * 2]
    }

    /// `(origin, group, bytes)` triples delivered by a pipelined gather.
    type Delivered = Vec<(usize, usize, Vec<u8>)>;

    /// Runs `pipelined_allgather` on one rank and returns
    /// `(produce order, delivered triples)`.
    fn run_pipe(comm: &mut Communicator, groups: &[usize]) -> (Vec<usize>, Delivered) {
        let me = comm.rank();
        let mut order = Vec::new();
        let mut delivered = Vec::new();
        pipelined_allgather(
            comm,
            groups,
            |g| {
                order.push(g);
                pipe_block(me, g)
            },
            |origin, g, bytes| delivered.push((origin, g, bytes)),
        )
        .unwrap();
        (order, delivered)
    }

    #[test]
    fn pipelined_allgather_delivers_every_group_with_unequal_counts() {
        // Uneven group counts (including a zero-group rank) at several
        // ring sizes: every rank must see exactly every other rank's
        // blocks, correctly attributed, and produce must run strictly in
        // order 0..own_groups (the bit-identity contract).
        for p in [1usize, 2, 3, 4] {
            let groups: Vec<usize> = (0..p).map(|r| (r * 3 + 5) % 4).collect();
            let groups_ref = &groups;
            let results = run_ranks(p, move |comm| run_pipe(comm, groups_ref));
            for (me, (order, delivered)) in results.into_iter().enumerate() {
                assert_eq!(order, (0..groups[me]).collect::<Vec<_>>());
                let mut expect: Vec<(usize, usize, Vec<u8>)> = Vec::new();
                for (o, &g_o) in groups.iter().enumerate() {
                    if o == me {
                        continue;
                    }
                    for g in 0..g_o {
                        expect.push((o, g, pipe_block(o, g)));
                    }
                }
                let mut got = delivered;
                got.sort();
                expect.sort();
                assert_eq!(got, expect, "rank {me} of {p}");
            }
        }
    }

    #[test]
    fn pipelined_allgather_rejects_wrong_group_count_vector() {
        let results = run_ranks(2, |comm| {
            pipelined_allgather(comm, &[1], |_| Vec::new(), |_, _, _| {})
        });
        for res in results {
            assert!(matches!(res, Err(CommError::Protocol { .. })));
        }
    }

    #[test]
    fn pipelined_allgather_records_stages_and_timers() {
        use compso_obs::{names, Recorder};
        let rec = Recorder::enabled();
        let rec_ref = &rec;
        let groups = [3usize, 1, 2];
        let groups_ref = &groups;
        run_ranks(3, move |comm| {
            comm.set_recorder(rec_ref.clone());
            run_pipe(comm, groups_ref);
        });
        let snap = rec.snapshot();
        // One span + one call per rank; each adds g_max = 3 stages.
        assert_eq!(snap.timers[names::COMM_PIPELINED_ALLGATHER].count, 3);
        assert_eq!(snap.counter(names::COMM_PIPELINED_ALLGATHER_CALLS), 3);
        assert_eq!(snap.counter(names::COMM_PIPELINE_STAGES), 3 * 3);
        // produce ran once per own group (3+1+2 = 6 across ranks);
        // deliver once per foreign (origin, group) pair (each rank sees
        // the 6 total groups minus its own: (6-3)+(6-1)+(6-2) = 12); and
        // every recv was waited on.
        assert_eq!(snap.timers[names::COMM_PIPELINE_PRODUCE].count, 6);
        assert_eq!(snap.timers[names::COMM_PIPELINE_DELIVER].count, 12);
        assert!(snap.timers[names::COMM_PIPELINE_WAIT].count > 0);
    }

    #[test]
    fn pipelined_allgather_survives_injected_transport_faults() {
        // Drops, wire corruption, and a straggler mid-pipeline: the ARQ
        // layer must absorb everything and the delivered blocks must be
        // bit-identical to the fault-free run.
        let plane = FaultPlane::new(FaultConfig {
            seed: 7031,
            drop_p: 0.05,
            corrupt_wire_p: 0.05,
            straggler: Some((2, Duration::from_micros(200))),
            ..FaultConfig::default()
        });
        let ledger_plane = plane.clone();
        let config = CommConfig {
            recv_timeout: Duration::from_secs(30),
            retry_initial: Duration::from_millis(40),
            max_retries: 12,
            ..CommConfig::default()
        };
        let p = 4;
        let groups = [2usize, 3, 1, 2];
        let groups_ref = &groups;
        let faulty = run_ranks_with(p, plane, config, move |comm| run_pipe(comm, groups_ref));
        let clean = run_ranks(p, move |comm| run_pipe(comm, groups_ref));
        assert_eq!(faulty, clean);
        let ledger = ledger_plane.ledger();
        assert!(
            ledger.dropped + ledger.corrupted_wire > 0,
            "fault matrix must actually fire: {ledger:?}"
        );
        assert!(ledger.delayed > 0, "straggler must have delayed sends");
    }
}
