//! Analytic network performance model.
//!
//! §4.4 of the paper builds, *offline*, "a deterministic lookup table that
//! maps communication throughput C^[x] to different message sizes and the
//! GPU count" for each system. This module is that table: an alpha-beta
//! (latency-bandwidth) cost model with a message-size efficiency ramp and
//! node topology awareness, evaluated on a grid of (gpu count, message
//! size) points and queried online with log-space interpolation, exactly
//! the offline-online split the paper describes.
//!
//! Cost formulas are the standard collective expressions:
//!
//! * ring all-gather of per-rank blocks `m` over `p` ranks:
//!   `T = (p-1)·α + (p-1)·m / B_eff`
//! * ring all-reduce of a buffer `M` over `p` ranks:
//!   `T = 2(p-1)·α + 2·(p-1)/p·M / B_eff`
//! * pipelined tree broadcast: `T = ⌈log₂p⌉·α + M / B_eff`
//!
//! `B_eff` accounts for (a) a small-message ramp (`size/(size+s_half)`),
//! (b) the intra-node (NVLink) vs inter-node (Slingshot) path, and
//! (c) for broadcasts only, fabric contention from the many concurrent
//! per-layer trees distributed K-FAC launches (ring collectives use
//! disjoint neighbor links and stay contention-free).

/// Which collective a cost query refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CollectiveKind {
    AllGather,
    AllReduce,
    Broadcast,
}

/// Static description of one platform's interconnect.
#[derive(Clone, Debug)]
pub struct NetworkSpec {
    /// Human-readable name ("Slingshot10", ...).
    pub name: &'static str,
    /// Per-message launch latency (the alpha term), seconds.
    pub latency_s: f64,
    /// Peak inter-node bandwidth per GPU pair direction, bytes/second.
    pub internode_bw: f64,
    /// Peak intra-node (NVLink) bandwidth, bytes/second.
    pub intranode_bw: f64,
    /// Message size at which effective bandwidth reaches half of peak.
    pub half_saturation_bytes: f64,
    /// GPUs per node (4 on both paper platforms).
    pub gpus_per_node: usize,
    /// Fabric-contention coefficient: effective per-flow bandwidth drops
    /// as `1 / (1 + congestion · (nodes − 1))` when collectives from many
    /// nodes share the interconnect — the reason communication grows into
    /// the dominant phase at scale (Fig. 1) and compression pays more at
    /// higher GPU counts (Figs. 7/9).
    pub congestion: f64,
}

impl NetworkSpec {
    /// Platform 1 of the paper: Slingshot 10, 100 Gb/s ≈ 12.5 GB/s.
    pub fn slingshot10() -> Self {
        NetworkSpec {
            name: "Slingshot10",
            latency_s: 12e-6,
            internode_bw: 12.5e9,
            intranode_bw: 300e9,
            half_saturation_bytes: 256.0 * 1024.0,
            gpus_per_node: 4,
            congestion: 0.22,
        }
    }

    /// Platform 2 of the paper: Slingshot 11, 200 Gb/s ≈ 25 GB/s.
    pub fn slingshot11() -> Self {
        NetworkSpec {
            name: "Slingshot11",
            latency_s: 8e-6,
            internode_bw: 25e9,
            intranode_bw: 300e9,
            half_saturation_bytes: 256.0 * 1024.0,
            gpus_per_node: 4,
            congestion: 0.18,
        }
    }

    /// Effective point-to-point bandwidth for a message of `bytes`.
    ///
    /// `congested` applies the fabric-contention discount: ring
    /// collectives use disjoint neighbor links and stay contention-free,
    /// while the per-layer broadcasts of distributed K-FAC run many trees
    /// concurrently over shared links.
    fn effective_bw(&self, bytes: f64, gpus: usize, congested: bool) -> f64 {
        let ramp = bytes / (bytes + self.half_saturation_bytes);
        // On a ring laid out node-by-node, `nodes` of the `gpus` hops cross
        // the network; the ring proceeds in lockstep, so the slowest hop
        // (inter-node) gates every step once any hop crosses nodes.
        let crosses_nodes = gpus > self.gpus_per_node;
        let base = if crosses_nodes {
            let nodes = gpus.div_ceil(self.gpus_per_node) as f64;
            let contention = if congested {
                1.0 + self.congestion * (nodes - 1.0)
            } else {
                1.0
            };
            self.internode_bw / contention
        } else {
            self.intranode_bw
        };
        (base * ramp).max(1.0)
    }

    /// Ring all-gather time: each rank contributes `block_bytes`; total
    /// gathered size is `gpus * block_bytes`.
    pub fn allgather_time(&self, gpus: usize, block_bytes: f64) -> f64 {
        if gpus <= 1 {
            return 0.0;
        }
        let p = gpus as f64;
        let bw = self.effective_bw(block_bytes, gpus, false);
        (p - 1.0) * self.latency_s + (p - 1.0) * block_bytes / bw
    }

    /// Ring all-reduce time for a buffer of `bytes` replicated on all ranks.
    pub fn allreduce_time(&self, gpus: usize, bytes: f64) -> f64 {
        if gpus <= 1 {
            return 0.0;
        }
        let p = gpus as f64;
        let chunk = bytes / p;
        let bw = self.effective_bw(chunk.max(1.0), gpus, false);
        2.0 * (p - 1.0) * self.latency_s + 2.0 * (p - 1.0) / p * bytes / bw
    }

    /// Pipelined binary-tree broadcast time for `bytes` from one root
    /// (NCCL-style: latency scales with tree depth, not rank count).
    pub fn broadcast_time(&self, gpus: usize, bytes: f64) -> f64 {
        if gpus <= 1 {
            return 0.0;
        }
        let depth = (gpus as f64).log2().ceil();
        let bw = self.effective_bw(bytes, gpus, true);
        depth * self.latency_s + bytes / bw
    }

    /// Dispatch by collective kind. `bytes` is the per-rank block for
    /// all-gather and the full buffer for the others.
    pub fn time(&self, kind: CollectiveKind, gpus: usize, bytes: f64) -> f64 {
        match kind {
            CollectiveKind::AllGather => self.allgather_time(gpus, bytes),
            CollectiveKind::AllReduce => self.allreduce_time(gpus, bytes),
            CollectiveKind::Broadcast => self.broadcast_time(gpus, bytes),
        }
    }

    /// Effective collective throughput in bytes/second (size / time).
    pub fn throughput(&self, kind: CollectiveKind, gpus: usize, bytes: f64) -> f64 {
        let t = self.time(kind, gpus, bytes);
        if t <= 0.0 {
            f64::INFINITY
        } else {
            bytes / t
        }
    }
}

/// The prebuilt "offline" lookup table of §4.4: effective throughput
/// sampled on a grid of message sizes for one (platform, collective,
/// gpu count) triple, queried online with log-size linear interpolation.
#[derive(Clone, Debug)]
pub struct ThroughputTable {
    kind: CollectiveKind,
    gpus: usize,
    /// Sample points: (message bytes, throughput bytes/s), sizes ascending.
    samples: Vec<(f64, f64)>,
}

impl ThroughputTable {
    /// Benchmarks the spec on a geometric grid of message sizes from 1 KiB
    /// to 1 GiB — the synthetic-data offline benchmark of §4.4.
    pub fn build(spec: &NetworkSpec, kind: CollectiveKind, gpus: usize) -> Self {
        let mut samples = Vec::new();
        let mut size = 1024.0f64;
        while size <= 1024.0 * 1024.0 * 1024.0 {
            samples.push((size, spec.throughput(kind, gpus, size)));
            size *= 2.0;
        }
        ThroughputTable {
            kind,
            gpus,
            samples,
        }
    }

    /// The collective this table models.
    pub fn kind(&self) -> CollectiveKind {
        self.kind
    }

    /// The GPU count this table models.
    pub fn gpus(&self) -> usize {
        self.gpus
    }

    /// Interpolated throughput (bytes/s) for an arbitrary message size.
    pub fn query(&self, bytes: f64) -> f64 {
        let pts = &self.samples;
        if bytes <= pts[0].0 {
            return pts[0].1;
        }
        if bytes >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        bytes / self.time(bytes)
    }

    /// Estimated time to move `bytes` through this collective.
    ///
    /// Interpolates *time* log-log between grid points (rather than
    /// throughput), which keeps the estimate monotone in message size —
    /// per-sample times are increasing and log-log segments preserve that.
    pub fn time(&self, bytes: f64) -> f64 {
        if bytes <= 0.0 {
            return 0.0;
        }
        let pts = &self.samples;
        if bytes <= pts[0].0 {
            return bytes / pts[0].1;
        }
        if bytes >= pts[pts.len() - 1].0 {
            return bytes / pts[pts.len() - 1].1;
        }
        let idx = pts.partition_point(|&(s, _)| s < bytes);
        let (s0, thr0) = pts[idx - 1];
        let (s1, thr1) = pts[idx];
        let (t0, t1) = (s0 / thr0, s1 / thr1);
        let w = (bytes.ln() - s0.ln()) / (s1.ln() - s0.ln());
        (t0.ln() + w * (t1.ln() - t0.ln())).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faster_network_is_faster() {
        let s10 = NetworkSpec::slingshot10();
        let s11 = NetworkSpec::slingshot11();
        let bytes = 64.0 * 1024.0 * 1024.0;
        assert!(s11.allgather_time(32, bytes) < s10.allgather_time(32, bytes));
    }

    #[test]
    fn more_gpus_cost_more_time_for_allgather_of_same_block() {
        let s = NetworkSpec::slingshot10();
        let bytes = 4.0 * 1024.0 * 1024.0;
        assert!(s.allgather_time(16, bytes) < s.allgather_time(64, bytes));
    }

    #[test]
    fn single_gpu_is_free() {
        let s = NetworkSpec::slingshot10();
        assert_eq!(s.allreduce_time(1, 1e9), 0.0);
        assert_eq!(s.allgather_time(1, 1e9), 0.0);
        assert_eq!(s.broadcast_time(1, 1e9), 0.0);
    }

    #[test]
    fn small_messages_are_latency_bound() {
        let s = NetworkSpec::slingshot10();
        // A tiny message's time should be close to the pure-latency term.
        // The bandwidth ramp also penalizes tiny messages, so allow a few
        // multiples of the pure alpha term — but the time must be nowhere
        // near what naive peak-bandwidth extrapolation would suggest.
        let t = s.allgather_time(8, 64.0);
        let latency_only = 7.0 * s.latency_s;
        assert!(t < 5.0 * latency_only, "t={t} lat={latency_only}");
        assert!(t >= latency_only);
    }

    #[test]
    fn big_messages_approach_peak_bandwidth() {
        let s = NetworkSpec::slingshot10();
        let bytes = 1e9;
        let t = s.broadcast_time(8, bytes);
        let ideal = bytes / s.internode_bw;
        assert!(t < 1.5 * ideal, "t={t} ideal={ideal}");
    }

    #[test]
    fn intranode_fast_path() {
        let s = NetworkSpec::slingshot10();
        // 4 GPUs fit in one node -> NVLink bandwidth -> much faster.
        let t_intra = s.allreduce_time(4, 1e8);
        let t_inter = s.allreduce_time(8, 1e8);
        assert!(t_intra * 4.0 < t_inter, "intra {t_intra} inter {t_inter}");
    }

    #[test]
    fn compression_reduces_modeled_time_proportionally() {
        let s = NetworkSpec::slingshot11();
        let original = 128.0 * 1024.0 * 1024.0;
        let t_full = s.allgather_time(64, original);
        let t_compressed = s.allgather_time(64, original / 20.0);
        let speedup = t_full / t_compressed;
        assert!(speedup > 10.0 && speedup < 25.0, "speedup {speedup}");
    }

    #[test]
    fn table_interpolation_brackets_model() {
        let s = NetworkSpec::slingshot10();
        let table = ThroughputTable::build(&s, CollectiveKind::AllGather, 32);
        for bytes in [1500.0f64, 3e5, 7.7e6, 2.5e8] {
            let interp = table.query(bytes);
            let exact = s.throughput(CollectiveKind::AllGather, 32, bytes);
            let rel = (interp - exact).abs() / exact;
            assert!(rel < 0.15, "bytes={bytes} rel={rel}");
        }
    }

    #[test]
    fn table_clamps_out_of_range() {
        let s = NetworkSpec::slingshot10();
        let table = ThroughputTable::build(&s, CollectiveKind::AllReduce, 16);
        assert_eq!(table.query(1.0), table.query(1024.0));
        assert_eq!(table.query(1e12), table.query(1024.0 * 1024.0 * 1024.0));
    }

    #[test]
    fn table_time_monotone_in_bytes() {
        let s = NetworkSpec::slingshot11();
        let table = ThroughputTable::build(&s, CollectiveKind::AllGather, 64);
        let mut prev = 0.0;
        let mut bytes = 2048.0;
        while bytes < 5e8 {
            let t = table.time(bytes);
            assert!(t >= prev, "non-monotone at {bytes}");
            prev = t;
            bytes *= 3.0;
        }
    }
}
