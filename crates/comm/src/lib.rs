//! # compso-comm
//!
//! The collective-communication substrate for the COMPSO reproduction.
//!
//! Distributed K-FAC (§2.2 of the paper) needs three collectives:
//! *all-reduce* for the covariance factors, *all-gather* (or broadcast) for
//! the preconditioned gradients, and barriers for phase alignment. The
//! paper runs them over NCCL on Slingshot fabrics; this crate substitutes
//!
//! 1. **functional collectives** — N ranks as OS threads exchanging real
//!    buffers over crossbeam channels, with textbook ring algorithms
//!    (reduce-scatter + all-gather all-reduce, ring all-gather with
//!    variable-size blocks, flat-tree broadcast). These verify that
//!    compressed communication is *correct*: every rank decodes the same
//!    bits; and
//! 2. **an analytic network model** — per-platform alpha-beta cost curves
//!    with message-size-dependent effective bandwidth and node-topology
//!    awareness, matching the "offline lookup table" of §4.4. This is what
//!    the timing experiments (Figs. 1/7/9) query.

pub mod collectives;
pub mod fault;
pub mod group;
pub mod membership;
pub mod netmodel;

pub use fault::{FaultConfig, FaultPlane, LedgerSnapshot};
pub use group::{
    build_group, build_group_with, run_ranks, run_ranks_elastic, run_ranks_with, CommConfig,
    CommError, CommGroup, Communicator, Payload,
};
pub use membership::{admit_pending, rejoin, MembershipFrame, ViewChange};
pub use netmodel::{CollectiveKind, NetworkSpec, ThroughputTable};
