//! Per-iteration timing model of distributed K-FAC (regenerates Fig. 1).
//!
//! Phases follow Fig. 1's legend:
//!
//! * **Forward+Backward** — `flops_per_sample × batch / gpu_flops`;
//! * **KFAC Computations** — covariance-factor GEMMs every iteration,
//!   eigendecompositions amortized over the refresh interval and split
//!   across GPUs (eigendecomposition runs far from peak — dense
//!   non-tensor-core math — hence its own efficiency constant);
//! * **KFAC Allreduce** — the covariance factors, amortized over the
//!   factor update interval (KAISA refreshes factors periodically; the
//!   per-iteration wire cost is the amortized share);
//! * **KFAC Allgather** — the per-layer preconditioned-gradient
//!   broadcasts from each layer's owner, discounted by the
//!   computation-communication overlap factor; this is the phase
//!   compression attacks, and where the layer-aggregation factor `m`
//!   trades per-message latency against lost overlap;
//! * **Others** — optimizer step, host-side work, and the data-parallel
//!   gradient all-reduce that overlaps backward.
//!
//! Every constant is a documented calibration knob; the unit tests pin
//! the resulting phase *ratios* to the bands Fig. 1 publishes rather than
//! absolute times.

use crate::platform::Platform;
use compso_core::perfmodel::{predicted_overlap_frac, CompressorProfile};
use compso_dnn::ModelSpec;

/// Phase times of one training iteration, seconds.
#[derive(Clone, Copy, Debug, Default)]
pub struct Breakdown {
    pub fwd_bwd: f64,
    pub kfac_compute: f64,
    pub factor_allreduce: f64,
    pub grad_allgather: f64,
    /// Compression + decompression overhead (zero without a compressor).
    pub compression: f64,
    pub others: f64,
}

impl Breakdown {
    /// Total iteration time.
    pub fn total(&self) -> f64 {
        self.fwd_bwd
            + self.kfac_compute
            + self.factor_allreduce
            + self.grad_allgather
            + self.compression
            + self.others
    }

    /// Fraction of the iteration spent in a phase.
    pub fn fraction(&self, phase: f64) -> f64 {
        phase / self.total()
    }

    /// Communication-to-total ratio `r` of §4.4 (the all-gather the
    /// compressor targets).
    pub fn comm_fraction(&self) -> f64 {
        self.fraction(self.grad_allgather)
    }
}

/// The analytic iteration model.
#[derive(Clone, Debug)]
pub struct IterationModel {
    /// Cluster description.
    pub platform: Platform,
    /// Eigendecomposition refresh interval (iterations).
    pub eigen_refresh: usize,
    /// Factor all-reduce amortization interval (iterations).
    pub factor_interval: usize,
    /// Fraction of communication hidden by compute overlap, `[0, 1)`.
    pub overlap: f64,
    /// Eigendecomposition efficiency relative to `gpu_flops` (dense
    /// eigensolvers run far off peak).
    pub eigen_efficiency: f64,
}

impl IterationModel {
    /// The calibrated default model on a platform.
    pub fn new(platform: Platform) -> Self {
        IterationModel {
            platform,
            eigen_refresh: 20,
            factor_interval: 10,
            overlap: 0.4,
            eigen_efficiency: 0.03,
        }
    }

    /// Per-layer all-gather/broadcast time for the preconditioned
    /// gradients, with layers grouped `m` at a time (aggregation), after
    /// the overlap discount. Compression divides wire bytes by
    /// `profile.ratio` and adds (de)compression overhead separately.
    fn gather_phase(
        &self,
        spec: &ModelSpec,
        gpus: usize,
        m: usize,
        profile: Option<&CompressorProfile>,
    ) -> (f64, f64) {
        let m = m.max(1);
        let ratio = profile.map_or(1.0, |p| p.ratio);
        let mut comm = 0.0f64;
        let mut compressed_total = 0.0f64;
        for group in spec.layer_grad_bytes().chunks(m) {
            let bytes: f64 = group.iter().map(|&b| b as f64).sum();
            let wire = bytes / ratio;
            compressed_total += wire;
            comm += self.platform.network.broadcast_time(gpus, wire);
        }
        comm *= 1.0 - self.overlap;
        let overhead = match profile {
            Some(p) => {
                // Each GPU compresses its owned share and decompresses
                // everything it receives.
                let original_total = spec.total_grad_bytes() as f64;
                original_total / gpus as f64 / p.compress_tput
                    + compressed_total * (1.0 - 1.0 / gpus as f64) / p.decompress_tput
            }
            None => 0.0,
        };
        (comm, overhead)
    }

    /// Full phase breakdown for `gpus` GPUs, optionally with a compressor
    /// (measured profile) and aggregation factor `m` on the all-gather.
    pub fn breakdown(
        &self,
        spec: &ModelSpec,
        gpus: usize,
        m: usize,
        profile: Option<&CompressorProfile>,
    ) -> Breakdown {
        assert!(gpus >= 1);
        let batch = spec.per_gpu_batch as f64;
        let fwd_bwd = spec.fwd_bwd_flops_per_sample * batch / self.platform.gpu_flops;

        // Factor GEMMs every iteration; eigendecompositions amortized and
        // split across GPUs.
        let factor_flops = 2.0 * spec.total_factor_elems() as f64 * batch;
        let eigen_flops = spec.total_eigen_flops() / (gpus as f64 * self.eigen_refresh as f64);
        let kfac_compute = factor_flops / self.platform.gpu_flops
            + eigen_flops / (self.platform.gpu_flops * self.eigen_efficiency);

        let factor_bytes = spec.total_factor_elems() as f64 * 4.0 / self.factor_interval as f64;
        let factor_allreduce =
            self.platform.network.allreduce_time(gpus, factor_bytes) * (1.0 - self.overlap);

        let (grad_allgather, compression) = self.gather_phase(spec, gpus, m, profile);

        // Host-side work + the overlapped data-parallel gradient sync.
        let grad_bytes = spec.total_grad_bytes() as f64;
        let others = 0.35 * fwd_bwd + 0.3 * self.platform.network.allreduce_time(gpus, grad_bytes);

        Breakdown {
            fwd_bwd,
            kfac_compute,
            factor_allreduce,
            grad_allgather,
            compression,
            others,
        }
    }

    /// Predicted achieved overlap fraction of the pipelined gather: the
    /// compression + decompression compute from the profile, pipelined
    /// against the *undiscounted* gather wire time in `ceil(layers / m)`
    /// stages (one ring slot per aggregation group). The measured
    /// counterpart is `StepReport::overlap_frac`
    /// (`1 − comm/pipeline/wait ÷ kfac/step/allgather`). Zero without a
    /// compressor: there is no rank-local compute to hide the wire
    /// behind.
    pub fn overlap_frac(
        &self,
        spec: &ModelSpec,
        gpus: usize,
        m: usize,
        profile: Option<&CompressorProfile>,
    ) -> f64 {
        let m = m.max(1);
        let stages = spec.layer_grad_bytes().chunks(m).count();
        let (comm, compute) = self.gather_phase(spec, gpus, m, profile);
        // gather_phase discounts the wire by the generic overlap factor;
        // the pipeline model wants the raw wire time.
        let raw_comm = comm / (1.0 - self.overlap).max(1e-9);
        predicted_overlap_frac(compute, raw_comm, stages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model1() -> IterationModel {
        IterationModel::new(Platform::platform1())
    }

    /// Fig. 1's central observation: the K-FAC all-gather is the largest
    /// phase, ≥30% of the iteration, across all four models.
    #[test]
    fn allgather_dominates_across_models() {
        let m = model1();
        for spec in ModelSpec::all() {
            let b = m.breakdown(&spec, 64, 1, None);
            let frac = b.comm_fraction();
            // Fig. 1 reports 35-51%; Mask R-CNN's heavy per-sample compute
            // pulls our calibration to the low end of the band.
            assert!(
                (0.15..0.75).contains(&frac),
                "{}: allgather fraction {frac}",
                spec.name
            );
            assert!(b.grad_allgather > b.factor_allreduce, "{}", spec.name);
        }
    }

    /// Fig. 1: the all-gather share grows with GPU count.
    #[test]
    fn allgather_share_grows_with_gpus() {
        let m = model1();
        let spec = ModelSpec::bert_large();
        let f64gpus = m.breakdown(&spec, 64, 1, None).comm_fraction();
        let f128 = m.breakdown(&spec, 128, 1, None).comm_fraction();
        let f256 = m.breakdown(&spec, 256, 1, None).comm_fraction();
        assert!(f64gpus < f128 && f128 < f256, "{f64gpus} {f128} {f256}");
    }

    #[test]
    fn phase_ratios_land_in_fig1_bands_for_resnet() {
        // Fig. 1, ResNet-50 @ 16 nodes: Allgather 35%, Allreduce 10%,
        // KFAC comp 14%, F+B 27%, Others 14%. The model should land in
        // generous bands around these.
        let m = model1();
        let spec = ModelSpec::resnet50();
        let b = m.breakdown(&spec, 64, 1, None);
        let t = b.total();
        assert!(
            (0.25..0.55).contains(&(b.grad_allgather / t)),
            "gather {}",
            b.grad_allgather / t
        );
        assert!(
            (0.02..0.25).contains(&(b.factor_allreduce / t)),
            "allreduce {}",
            b.factor_allreduce / t
        );
        assert!(
            (0.05..0.30).contains(&(b.kfac_compute / t)),
            "kfac {}",
            b.kfac_compute / t
        );
        assert!(
            (0.10..0.45).contains(&(b.fwd_bwd / t)),
            "fwdbwd {}",
            b.fwd_bwd / t
        );
    }

    #[test]
    fn compression_shrinks_gather_and_adds_overhead() {
        let m = model1();
        let spec = ModelSpec::bert_large();
        let profile = CompressorProfile {
            ratio: 22.0,
            compress_tput: 40e9,
            decompress_tput: 60e9,
        };
        let plain = m.breakdown(&spec, 64, 1, None);
        let comp = m.breakdown(&spec, 64, 4, Some(&profile));
        assert!(comp.grad_allgather < plain.grad_allgather / 5.0);
        assert!(comp.compression > 0.0);
        assert!(comp.total() < plain.total(), "end-to-end must improve");
    }

    #[test]
    fn aggregation_amortizes_latency_at_scale() {
        // At 256 GPUs, per-layer broadcasts pay 255 latency terms per
        // layer; grouping 4 layers cuts the message count.
        let m = model1();
        let spec = ModelSpec::resnet50();
        let profile = CompressorProfile {
            ratio: 19.0,
            compress_tput: 40e9,
            decompress_tput: 60e9,
        };
        let m1 = m.breakdown(&spec, 256, 1, Some(&profile)).grad_allgather;
        let m4 = m.breakdown(&spec, 256, 4, Some(&profile)).grad_allgather;
        assert!(m4 < m1, "m=4 {m4} vs m=1 {m1}");
    }

    #[test]
    fn single_gpu_has_no_communication() {
        let m = model1();
        let b = m.breakdown(&ModelSpec::resnet50(), 1, 1, None);
        assert_eq!(b.grad_allgather, 0.0);
        assert_eq!(b.factor_allreduce, 0.0);
        assert!(b.fwd_bwd > 0.0);
    }

    #[test]
    fn overlap_prediction_needs_a_compressor_and_grows_with_stages() {
        let m = model1();
        let spec = ModelSpec::resnet50();
        let profile = CompressorProfile {
            ratio: 19.0,
            compress_tput: 40e9,
            decompress_tput: 60e9,
        };
        // Without a compressor there is no compute to pipeline.
        assert_eq!(m.overlap_frac(&spec, 64, 4, None), 0.0);
        // With one, a nonzero fraction of the gather is hidden (small
        // here: at ratio 19 the compressed wire dwarfs the codec
        // compute, so there is little to hide it behind).
        let f = m.overlap_frac(&spec, 64, 4, Some(&profile));
        assert!((0.0..=1.0).contains(&f));
        assert!(f > 0.01, "predicted overlap {f}");
        // A slower codec spends more compute per byte — and the pipeline
        // hides that compute behind the same wire, so the predicted
        // overlap fraction must grow.
        let slow = CompressorProfile {
            ratio: 19.0,
            compress_tput: 4e9,
            decompress_tput: 6e9,
        };
        let f_slow = m.overlap_frac(&spec, 64, 4, Some(&slow));
        assert!(f_slow > f, "slow {f_slow} vs fast {f}");
    }

    #[test]
    fn totals_are_sane_absolute_scale() {
        // An iteration should be tens-of-ms to seconds, not µs or hours.
        let m = model1();
        for spec in ModelSpec::all() {
            let t = m.breakdown(&spec, 64, 1, None).total();
            assert!((0.005..30.0).contains(&t), "{}: {t}s", spec.name);
        }
    }
}
