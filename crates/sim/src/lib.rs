//! # compso-sim
//!
//! Cluster performance simulator for the paper-scale experiments.
//!
//! The paper times distributed K-FAC on 16/64-node A100 clusters; this
//! crate substitutes an analytic per-iteration timing model (DESIGN.md
//! §1): compute phases estimated from the model specs' FLOP counts and a
//! sustained-throughput GPU constant, communication phases from
//! `compso-comm`'s alpha-beta network model, and compression phases from
//! *measured* compressor profiles. It regenerates the timing figures:
//!
//! * Fig. 1 — per-phase breakdown of a distributed K-FAC iteration;
//! * Fig. 7 — communication speedup under compression;
//! * Fig. 9 — end-to-end gain, including the COMPSO-f (fixed aggregation)
//!   vs. COMPSO-p (performance-model aggregation) comparison.

pub mod platform;
pub mod speedup;
pub mod timing;

pub use platform::Platform;
pub use speedup::{comm_speedup_on, end_to_end_gain_on, AggregationPolicy};
pub use timing::{Breakdown, IterationModel};
