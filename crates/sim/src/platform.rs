//! Platform descriptions of the paper's two evaluation clusters.

use compso_comm::NetworkSpec;

/// A GPU cluster.
#[derive(Clone, Debug)]
pub struct Platform {
    /// Display name.
    pub name: &'static str,
    /// Number of nodes available.
    pub nodes: usize,
    /// GPUs per node.
    pub gpus_per_node: usize,
    /// Interconnect model.
    pub network: NetworkSpec,
    /// Sustained per-GPU training throughput for mixed dense compute,
    /// FLOPs/s. A100 peak is 19.5 TF fp32 / 156 TF tf32; sustained
    /// end-to-end training throughput is far lower — this constant is
    /// calibrated so the Fig. 1 phase ratios land in the published bands.
    pub gpu_flops: f64,
    /// Sustained GPU memory bandwidth, bytes/s (gates the memory-bound
    /// compression kernels).
    pub gpu_membw: f64,
}

impl Platform {
    /// Platform 1: 16 nodes × 4 A100, Slingshot 10 (100 Gb/s).
    pub fn platform1() -> Platform {
        Platform {
            name: "Platform1-Slingshot10",
            nodes: 16,
            gpus_per_node: 4,
            network: NetworkSpec::slingshot10(),
            gpu_flops: 3.0e13,
            gpu_membw: 1.3e12,
        }
    }

    /// Platform 2: 64 nodes × 4 A100, Slingshot 11 (200 Gb/s).
    pub fn platform2() -> Platform {
        Platform {
            name: "Platform2-Slingshot11",
            nodes: 64,
            gpus_per_node: 4,
            network: NetworkSpec::slingshot11(),
            gpu_flops: 3.0e13,
            gpu_membw: 1.3e12,
        }
    }

    /// Maximum GPU count on this platform.
    pub fn max_gpus(&self) -> usize {
        self.nodes * self.gpus_per_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_capacities_match_paper() {
        assert_eq!(Platform::platform1().max_gpus(), 64);
        assert_eq!(Platform::platform2().max_gpus(), 256);
    }

    #[test]
    fn platform2_has_faster_network() {
        assert!(
            Platform::platform2().network.internode_bw > Platform::platform1().network.internode_bw
        );
    }
}
