//! Communication-speedup and end-to-end-gain estimators (Figs. 7 and 9).

use crate::platform::Platform;
use crate::timing::IterationModel;
use compso_core::perfmodel::{choose_aggregation, CompressorProfile};
use compso_dnn::ModelSpec;

/// How the layer-aggregation factor is chosen (the Fig. 9 COMPSO-f vs.
/// COMPSO-p axis).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggregationPolicy {
    /// Fixed factor (the paper fixes 4).
    Fixed(usize),
    /// Chosen by the §4.4 performance model per (model, platform, scale).
    PerformanceModel,
}

impl AggregationPolicy {
    /// Resolves the factor for a concrete configuration.
    pub fn resolve(
        self,
        spec: &ModelSpec,
        platform: &Platform,
        gpus: usize,
        profile: &CompressorProfile,
    ) -> usize {
        match self {
            AggregationPolicy::Fixed(m) => m,
            AggregationPolicy::PerformanceModel => {
                let net = platform.network.clone();
                choose_aggregation(
                    &spec.layer_grad_bytes(),
                    move |bytes| bytes / net.broadcast_time(gpus, bytes).max(1e-12),
                    profile,
                    platform.gpu_membw,
                    16,
                )
            }
        }
    }
}

/// Communication speedup of the preconditioned-gradient phase
/// (compressed comm + codec overhead vs. raw comm) — the Fig. 7 metric.
/// Note Fig. 7 excludes codec overhead from the numerator's wire time but
/// the paper still reports wall-clock communication phases; we include
/// the overhead for honesty and report both pieces in the harness.
pub fn comm_speedup_on(
    model: &IterationModel,
    spec: &ModelSpec,
    gpus: usize,
    m: usize,
    profile: &CompressorProfile,
    include_codec_overhead: bool,
) -> f64 {
    let plain = model.breakdown(spec, gpus, 1, None);
    let comp = model.breakdown(spec, gpus, m, Some(profile));
    let compressed_cost = if include_codec_overhead {
        comp.grad_allgather + comp.compression
    } else {
        comp.grad_allgather
    };
    plain.grad_allgather / compressed_cost.max(1e-12)
}

/// End-to-end iteration speedup (the Fig. 9 metric).
pub fn end_to_end_gain_on(
    model: &IterationModel,
    spec: &ModelSpec,
    gpus: usize,
    policy: AggregationPolicy,
    profile: &CompressorProfile,
) -> f64 {
    let m = policy.resolve(spec, &model.platform, gpus, profile);
    let plain = model.breakdown(spec, gpus, 1, None).total();
    let comp = model.breakdown(spec, gpus, m, Some(profile)).total();
    plain / comp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compso_profile() -> CompressorProfile {
        // Representative measured values: ~20x ratio, tens of GB/s codec.
        CompressorProfile {
            ratio: 20.0,
            compress_tput: 30e9,
            decompress_tput: 50e9,
        }
    }

    fn weak_profile() -> CompressorProfile {
        // QSGD-8bit style: ~5x ratio.
        CompressorProfile {
            ratio: 5.0,
            compress_tput: 40e9,
            decompress_tput: 60e9,
        }
    }

    #[test]
    fn comm_speedup_tracks_ratio_ordering() {
        let model = IterationModel::new(Platform::platform1());
        let spec = ModelSpec::bert_large();
        let strong = comm_speedup_on(&model, &spec, 64, 8, &compso_profile(), false);
        let weak = comm_speedup_on(&model, &spec, 64, 8, &weak_profile(), false);
        assert!(strong > weak, "{strong} vs {weak}");
        // Per-message latency floors the speedup; aggregation (m=8 here)
        // lifts it toward the ratio, matching Fig. 7's 11-14x band.
        assert!(strong > 8.0 && strong < 30.0, "strong {strong}");
    }

    #[test]
    fn slower_network_benefits_more() {
        // §5.2: "With a slower network (e.g., Slingshot 10), the speedup
        // is greater than with a faster network".
        let spec = ModelSpec::bert_large();
        let p1 = IterationModel::new(Platform::platform1());
        let p2 = IterationModel::new(Platform::platform2());
        let g1 = end_to_end_gain_on(
            &p1,
            &spec,
            64,
            AggregationPolicy::Fixed(4),
            &compso_profile(),
        );
        let g2 = end_to_end_gain_on(
            &p2,
            &spec,
            64,
            AggregationPolicy::Fixed(4),
            &compso_profile(),
        );
        assert!(g1 > g2, "slow {g1} vs fast {g2}");
    }

    #[test]
    fn end_to_end_gain_in_paper_band() {
        // §5.4: up to 1.9x, 1.3x average.
        let model = IterationModel::new(Platform::platform1());
        let mut gains = Vec::new();
        for spec in ModelSpec::all() {
            for gpus in [8usize, 16, 32, 64] {
                gains.push(end_to_end_gain_on(
                    &model,
                    &spec,
                    gpus,
                    AggregationPolicy::Fixed(4),
                    &compso_profile(),
                ));
            }
        }
        let max = gains.iter().cloned().fold(0.0f64, f64::max);
        let avg = gains.iter().sum::<f64>() / gains.len() as f64;
        assert!((1.2..2.6).contains(&max), "max gain {max}");
        assert!((1.05..2.0).contains(&avg), "avg gain {avg}");
    }

    #[test]
    fn performance_model_never_loses_to_fixed() {
        // Fig. 9: COMPSO-p ≥ COMPSO-f (that is the point of the model).
        let model = IterationModel::new(Platform::platform1());
        for spec in ModelSpec::all() {
            for gpus in [8usize, 64, 256] {
                let f = end_to_end_gain_on(
                    &model,
                    &spec,
                    gpus,
                    AggregationPolicy::Fixed(4),
                    &compso_profile(),
                );
                let p = end_to_end_gain_on(
                    &model,
                    &spec,
                    gpus,
                    AggregationPolicy::PerformanceModel,
                    &compso_profile(),
                );
                assert!(
                    p >= f * 0.98,
                    "{} @{gpus}: perf-model {p} vs fixed {f}",
                    spec.name
                );
            }
        }
    }

    #[test]
    fn gain_grows_with_gpu_count() {
        // Fig. 9's trend: compression pays more at scale.
        let model = IterationModel::new(Platform::platform1());
        let spec = ModelSpec::gpt_neo_125m();
        let g8 = end_to_end_gain_on(
            &model,
            &spec,
            8,
            AggregationPolicy::Fixed(4),
            &compso_profile(),
        );
        let g64 = end_to_end_gain_on(
            &model,
            &spec,
            64,
            AggregationPolicy::Fixed(4),
            &compso_profile(),
        );
        assert!(g64 > g8, "{g8} -> {g64}");
    }

    #[test]
    fn codec_overhead_reduces_but_does_not_erase_speedup() {
        let model = IterationModel::new(Platform::platform1());
        let spec = ModelSpec::resnet50();
        let without = comm_speedup_on(&model, &spec, 64, 4, &compso_profile(), false);
        let with = comm_speedup_on(&model, &spec, 64, 4, &compso_profile(), true);
        assert!(with <= without);
        assert!(with > 2.0, "with-overhead speedup {with}");
    }
}
