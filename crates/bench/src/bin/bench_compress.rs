//! Snapshot benchmark for the parallel compression hot path.
//!
//! Round-trips a synthetic K-FAC gradient buffer through three
//! configurations and emits a JSON snapshot (`BENCH_compress.json` via
//! `scripts/bench_snapshot.sh`):
//!
//! 1. `serial` — the reference [`Compso`] pipeline,
//! 2. `chunked_1thread` — the chunked kernels pinned to one worker
//!    (measures chunking overhead in isolation),
//! 3. `chunked_nthread` — the chunked kernels at the host's natural
//!    worker count (the production configuration),
//! 4. `ckpt` — the checkpoint store's rank-file save/load over the same
//!    buffer (lossless rANS payloads, CRC framing, fsync'd commit), so
//!    snapshot cost is tracked alongside the gradient hot path.
//!
//! Environment knobs: `COMPSO_BENCH_ELEMS` (default 4 Mi f32 = 16 MiB)
//! and `COMPSO_BENCH_REPS` (default 3; best-of-N is reported). The
//! output path is `argv[1]`, defaulting to `BENCH_compress.json`.
//!
//! The chunked-vs-serial speedup target (>=2x) only applies on hosts
//! with >=4 cores; the JSON records `threads` so readers can judge.

use compso_core::kernels::{compress_chunked, decompress_chunked, KernelConfig, LayerSchedule};
use compso_core::synthetic::{generate, GradientProfile};
use compso_core::{Compso, CompsoConfig};
use compso_tensor::Rng;
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Sample {
    compress_mbps: f64,
    decompress_mbps: f64,
    ratio: f64,
}

impl Sample {
    fn json(&self) -> String {
        format!(
            "{{\"compress_MBps\": {:.2}, \"decompress_MBps\": {:.2}, \"ratio\": {:.2}}}",
            self.compress_mbps, self.decompress_mbps, self.ratio
        )
    }
}

/// Runs `run` `reps` times; reports best-of-N throughput (MB/s of
/// uncompressed input) for each of the two timed phases.
fn measure(reps: usize, bytes: usize, mut run: impl FnMut() -> (f64, f64, usize)) -> Sample {
    let mut ct = f64::INFINITY;
    let mut dt = f64::INFINITY;
    let mut comp = 0usize;
    for _ in 0..reps {
        let (c, d, n) = run();
        ct = ct.min(c);
        dt = dt.min(d);
        comp = n;
    }
    Sample {
        compress_mbps: bytes as f64 / ct.max(1e-12) / 1e6,
        decompress_mbps: bytes as f64 / dt.max(1e-12) / 1e6,
        ratio: bytes as f64 / comp.max(1) as f64,
    }
}

fn main() {
    let elems = env_usize("COMPSO_BENCH_ELEMS", 4 << 20).max(1024);
    let reps = env_usize("COMPSO_BENCH_REPS", 3).max(1);
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_compress.json".to_string());
    let bytes = elems * 4;

    let data = generate(elems, 21, GradientProfile::kfac());
    let cfg = CompsoConfig::aggressive(4e-3);
    let kc = KernelConfig::default();
    let schedule = LayerSchedule::build(&[data.len()], kc.chunk_elems);

    let compso = Compso::new(cfg);
    let serial = measure(reps, bytes, || {
        let mut rng = Rng::new(11);
        let t0 = Instant::now();
        let enc = compso.compress_layers(&[&data], &mut rng);
        let ct = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let dec = compso.decompress_layers(&enc).expect("serial roundtrip");
        let dt = t1.elapsed().as_secs_f64();
        assert_eq!(dec[0].len(), elems);
        (ct, dt, enc.len())
    });

    let chunked_at = |threads: Option<usize>| {
        let _guard = threads.map(rayon::scoped_thread_override);
        measure(reps, bytes, || {
            let rng = Rng::new(11);
            let t0 = Instant::now();
            let enc = compress_chunked(&[&data], &cfg, &kc, &schedule, &rng);
            let ct = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            let dec = decompress_chunked(&enc).expect("chunked roundtrip");
            let dt = t1.elapsed().as_secs_f64();
            assert_eq!(dec[0].len(), elems);
            (ct, dt, enc.len())
        })
    };

    let chunked_1 = chunked_at(Some(1));
    let threads = rayon::current_num_threads().max(1);
    let chunked_n = chunked_at(None);

    // Checkpoint store round-trip: the same buffer as snapshot tensors
    // through the full on-disk path (encode + CRC frame + fsync'd
    // commit, then validated load).
    let ckpt = {
        use compso_ckpt::{CheckpointStore, Manifest, Snapshot, TensorData, TensorEntry};
        use compso_core::encoders::Codec;
        let dir = std::env::temp_dir().join(format!("compso-bench-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::new(&dir, 1).expect("open bench store");
        let mut snap = Snapshot::new(0);
        for (i, part) in data.chunks(elems.div_ceil(8)).enumerate() {
            snap.push(TensorEntry::vector(
                format!("bench/{i}"),
                TensorData::F32(part.to_vec()),
            ));
        }
        let sample = measure(reps, bytes, || {
            store.prepare_tmp(0).expect("prepare");
            let t0 = Instant::now();
            let (meta, stats) = store
                .write_rank_file(0, 0, &snap, Codec::Ans)
                .expect("write rank file");
            let manifest = Manifest {
                step: 0,
                world_size: 1,
                fingerprint: 0,
                ranks: vec![meta],
            };
            store.commit(&manifest).expect("commit");
            let ct = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            let back = store.load_rank(0, &manifest, 0).expect("load rank file");
            let dt = t1.elapsed().as_secs_f64();
            assert_eq!(back.tensors.len(), snap.tensors.len());
            (ct, dt, stats.bytes_written as usize)
        });
        let _ = std::fs::remove_dir_all(&dir);
        sample
    };

    let json = format!(
        "{{\n  \"elems\": {elems},\n  \"bytes\": {bytes},\n  \"reps\": {reps},\n  \
         \"threads\": {threads},\n  \"serial\": {},\n  \"chunked_1thread\": {},\n  \
         \"chunked_nthread\": {},\n  \"ckpt\": {},\n  \
         \"speedup_compress_chunked_vs_serial\": {:.2},\n  \
         \"speedup_decompress_chunked_vs_serial\": {:.2}\n}}\n",
        serial.json(),
        chunked_1.json(),
        chunked_n.json(),
        ckpt.json(),
        chunked_n.compress_mbps / serial.compress_mbps.max(1e-12),
        chunked_n.decompress_mbps / serial.decompress_mbps.max(1e-12),
    );
    print!("{json}");
    std::fs::write(&out_path, &json).expect("write snapshot");
    eprintln!("wrote {out_path}");
}
