//! Snapshot benchmark for the parallel compression hot path.
//!
//! Round-trips a synthetic K-FAC gradient buffer through three
//! configurations and emits a JSON snapshot (`BENCH_compress.json` via
//! `scripts/bench_snapshot.sh`):
//!
//! 1. `serial` — the reference [`Compso`] pipeline,
//! 2. `chunked_1thread` — the chunked kernels pinned to one worker
//!    (measures chunking overhead in isolation),
//! 3. `chunked_nthread` — the chunked kernels at the host's natural
//!    worker count (the production configuration),
//! 4. `ckpt` — the checkpoint store's rank-file save/load over the same
//!    buffer (lossless rANS payloads, CRC framing, fsync'd commit), so
//!    snapshot cost is tracked alongside the gradient hot path.
//! 5. `pipeline` — the step-5 gather scheduling A/B: compress-then-
//!    `allgather_var` vs `pipelined_allgather` (compression of group
//!    k+1 overlapped with group k's ring hops, streaming per-group
//!    decode) at 1/2/4 in-process workers, on the imbalanced-ownership
//!    workload where overlap pays (one rank owns most of the bytes, as
//!    heterogeneous layer costs make routine — peers stream-decode its
//!    early groups while it is still compressing the later ones). The
//!    A/B runs over a modeled wire ([`CommConfig::modeled_wire_mbps`]):
//!    every message drains at a fixed bandwidth on the receiver side,
//!    so the serial schedule exposes one bulk drain per ring hop while
//!    the pipelined schedule hides each per-group drain behind the next
//!    group's compression. Serial and pipelined passes are interleaved
//!    within each rep (ambient host noise hits both sides equally) and
//!    every rep asserts the two schedules decode bit-identical values.
//! 6. `powersgd` — the rank-4 low-rank family's stateless encode/decode
//!    over the same buffer (cold-start Q, the worst case).
//! 7. `controller` — ns per adaptive-controller decision over a
//!    scripted signal tape, and that cost as a fraction of the chunked
//!    compress wall (`overhead_frac`, gated < 1% by bench_check.sh).
//!
//! Environment knobs: `COMPSO_BENCH_ELEMS` (default 4 Mi f32 = 16 MiB),
//! `COMPSO_BENCH_REPS` (default 3; best-of-N is reported),
//! `COMPSO_BENCH_PIPE_GROUPS` (default 8 groups on the big-owner rank)
//! and `COMPSO_BENCH_WIRE_MBPS` (default 50 — see the justification at
//! the call site). The output path is `argv[1]`, defaulting to
//! `BENCH_compress.json`.
//!
//! The chunked-vs-serial speedup target (>=2x) only applies on hosts
//! with >=4 cores; the JSON records `threads` so readers can judge.

use compso_comm::collectives::{allgather_var, pipelined_allgather};
use compso_comm::fault::FaultPlane;
use compso_comm::{run_ranks_with, CommConfig};
use compso_core::baselines::PowerSgd;
use compso_core::kernels::{compress_chunked, decompress_chunked, KernelConfig, LayerSchedule};
use compso_core::synthetic::{generate, GradientProfile};
use compso_core::wire::{frame_checksummed, framed_len, unframe_checksummed};
use compso_core::{ChunkedCompso, Compressor, Compso, CompsoConfig};
use compso_ctrl::{ControlConfig, Controller, Signals};
use compso_obs::Recorder;
use compso_tensor::Rng;
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Sample {
    compress_mbps: f64,
    decompress_mbps: f64,
    ratio: f64,
}

impl Sample {
    fn json(&self) -> String {
        format!(
            "{{\"compress_MBps\": {:.2}, \"decompress_MBps\": {:.2}, \"ratio\": {:.2}}}",
            self.compress_mbps, self.decompress_mbps, self.ratio
        )
    }
}

/// Runs `run` `reps` times; reports best-of-N throughput (MB/s of
/// uncompressed input) for each of the two timed phases.
fn measure(reps: usize, bytes: usize, mut run: impl FnMut() -> (f64, f64, usize)) -> Sample {
    let mut ct = f64::INFINITY;
    let mut dt = f64::INFINITY;
    let mut comp = 0usize;
    for _ in 0..reps {
        let (c, d, n) = run();
        ct = ct.min(c);
        dt = dt.min(d);
        comp = n;
    }
    Sample {
        compress_mbps: bytes as f64 / ct.max(1e-12) / 1e6,
        decompress_mbps: bytes as f64 / dt.max(1e-12) / 1e6,
        ratio: bytes as f64 / comp.max(1) as f64,
    }
}

/// Wall-clock A/B of the step-5 gather schedules at `workers`
/// in-process ranks: rank 0 owns `big_groups` groups of `big_elems`
/// floats, every other rank one group of `small_elems`. Both modes
/// compress each group into its own CRC frame, move the frames around
/// the ring, and decode everything (peers' groups and the rank's own
/// clean copies) exactly as the production hot path does; rayon is
/// pinned to one worker so the pipeline schedule — not data-parallel
/// kernel fan-out — is what's measured.
///
/// The two modes alternate serial-then-pipelined *within* each rep of
/// one rank session, so ambient load on the host perturbs both sides of
/// the comparison equally; each rep also asserts the two schedules
/// decode bit-identical values (same per-rep RNG seed → same stochastic
/// rounding → same wire bytes, the §4.2 determinism contract). Returns
/// `(serial, pipelined)` best-of-`reps` slowest-rank walls in seconds.
fn gather_walls(
    workers: usize,
    big_groups: usize,
    big_elems: usize,
    small_elems: usize,
    wire_mbps: f64,
    reps: usize,
) -> (f64, f64) {
    let _guard = rayon::scoped_thread_override(1);
    // The modeled wire is what makes the overlap physical: a sender
    // sleeping through a payload's drain releases its core, so peers
    // decode (pipelined) or merely wait (serial) while bytes are "on
    // the wire" — the same resource split as GPU compress + NIC DMA.
    let config = CommConfig {
        modeled_wire_mbps: Some(wire_mbps),
        ..CommConfig::default()
    };
    let times: Vec<Vec<(f64, f64)>> =
        run_ranks_with(workers, FaultPlane::disabled(), config, move |comm| {
            let me = comm.rank();
            let p = comm.size();
            let mine: Vec<Vec<f32>> = if me == 0 {
                (0..big_groups)
                    .map(|g| generate(big_elems, 31 + g as u64, GradientProfile::kfac()))
                    .collect()
            } else {
                vec![generate(
                    small_elems,
                    131 + me as u64,
                    GradientProfile::kfac(),
                )]
            };
            let n_groups: Vec<usize> = (0..p)
                .map(|q| if q == 0 { big_groups } else { 1 })
                .collect();
            // Conservative SR at a tight bound: dense, hard-to-compress
            // payloads (ratio near 1) make the per-byte wire work — ARQ
            // CRC on both ends, the 0xCF envelope check, ring forwarding,
            // payload staging — a real fraction of the wall, which is
            // exactly the traffic the pipeline schedule restructures. The
            // aggressive strategy's ~27x ratio shrinks the wire to noise
            // and the A/B collapses to the rank-local compress+decode cost,
            // identical in both modes by construction.
            let compressor = ChunkedCompso::new(CompsoConfig::conservative(1e-6));
            let chunk = KernelConfig::default().chunk_elems;
            let schedules: Vec<LayerSchedule> = mine
                .iter()
                .map(|l| LayerSchedule::build(&[l.len()], chunk))
                .collect();
            let rec = Recorder::disabled();

            // One gather pass in the given mode; returns (wall seconds,
            // checksum over every decoded f32 of the step).
            let mut pass = |pipelined: bool, seed: u64| -> (f64, u64) {
                comm.barrier().expect("barrier");
                let t0 = Instant::now();
                let mut rng = Rng::new(seed);
                let mut clean: Vec<Vec<u8>> = Vec::with_capacity(mine.len());
                let mut decoded_elems = 0usize;
                let mut checksum = 0u64;
                // The two schedules deliver foreign groups in different
                // orders (rank-major vs slot-major), so the step checksum
                // is a commutative sum of order-sensitive per-delivery
                // digests: equal iff every delivered group decoded to the
                // same values.
                let mut absorb = |layers: Vec<Vec<f32>>| {
                    let mut digest = 0xcbf2_9ce4_8422_2325u64;
                    for l in &layers {
                        decoded_elems += l.len();
                        for v in l {
                            digest = digest
                                .wrapping_mul(0x100_0000_01b3)
                                .wrapping_add(v.to_bits() as u64);
                        }
                    }
                    checksum = checksum.wrapping_add(digest);
                };
                if pipelined {
                    pipelined_allgather(
                        comm,
                        &n_groups,
                        |g| {
                            let frame = frame_checksummed(&compressor.compress_group(
                                &[mine[g].as_slice()],
                                Some(&schedules[g]),
                                &mut rng,
                                &rec,
                            ));
                            clean.push(frame.clone());
                            frame
                        },
                        |_, _, bytes| {
                            let body = unframe_checksummed(&bytes).expect("group frame");
                            absorb(compressor.decompress_group(body, &rec).expect("group"));
                        },
                    )
                    .expect("pipelined_allgather");
                } else {
                    for (g, layer) in mine.iter().enumerate() {
                        clean.push(frame_checksummed(&compressor.compress_group(
                            &[layer.as_slice()],
                            Some(&schedules[g]),
                            &mut rng,
                            &rec,
                        )));
                    }
                    let gathered = allgather_var(comm, clean.concat()).expect("allgather_var");
                    for (q, payload) in gathered.iter().enumerate() {
                        if q == me {
                            continue;
                        }
                        let mut off = 0usize;
                        while off < payload.len() {
                            let len = framed_len(&payload[off..]).expect("group frame header");
                            let body =
                                unframe_checksummed(&payload[off..off + len]).expect("group frame");
                            absorb(compressor.decompress_group(body, &rec).expect("group"));
                            off += len;
                        }
                    }
                }
                // Own groups decode from the clean frames in both modes,
                // mirroring the production hot path.
                for frame in &clean {
                    let body = unframe_checksummed(frame).expect("clean frame");
                    absorb(compressor.decompress_group(body, &rec).expect("own group"));
                }
                let wall = t0.elapsed().as_secs_f64();
                assert_eq!(
                    decoded_elems,
                    big_groups * big_elems + (p - 1) * small_elems
                );
                (wall, checksum)
            };

            // One untimed warm-up pass per mode (cold caches, lazy codec
            // tables), then `reps` timed serial/pipelined pairs.
            let _ = pass(false, 7);
            let _ = pass(true, 7);
            let mut walls = Vec::with_capacity(reps);
            for rep in 0..reps {
                let seed = 100 + rep as u64;
                let (serial_wall, serial_sum) = pass(false, seed);
                let (pipe_wall, pipe_sum) = pass(true, seed);
                assert_eq!(
                    serial_sum, pipe_sum,
                    "pipelined gather must decode bit-identical values"
                );
                walls.push((serial_wall, pipe_wall));
            }
            walls
        });
    // Per rep the slowest rank defines the wall; report the best rep.
    let best = |pick: fn(&(f64, f64)) -> f64| {
        (0..reps)
            .map(|i| times.iter().map(|t| pick(&t[i])).fold(0.0f64, f64::max))
            .fold(f64::INFINITY, f64::min)
    };
    (best(|t| t.0), best(|t| t.1))
}

fn main() {
    let elems = env_usize("COMPSO_BENCH_ELEMS", 4 << 20).max(1024);
    let reps = env_usize("COMPSO_BENCH_REPS", 3).max(1);
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_compress.json".to_string());
    let bytes = elems * 4;

    let data = generate(elems, 21, GradientProfile::kfac());
    let cfg = CompsoConfig::aggressive(4e-3);
    let kc = KernelConfig::default();
    let schedule = LayerSchedule::build(&[data.len()], kc.chunk_elems);

    let compso = Compso::new(cfg);
    let serial = measure(reps, bytes, || {
        let mut rng = Rng::new(11);
        let t0 = Instant::now();
        let enc = compso.compress_layers(&[&data], &mut rng);
        let ct = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let dec = compso.decompress_layers(&enc).expect("serial roundtrip");
        let dt = t1.elapsed().as_secs_f64();
        assert_eq!(dec[0].len(), elems);
        (ct, dt, enc.len())
    });

    let chunked_at = |threads: Option<usize>| {
        let _guard = threads.map(rayon::scoped_thread_override);
        measure(reps, bytes, || {
            let rng = Rng::new(11);
            let t0 = Instant::now();
            let enc = compress_chunked(&[&data], &cfg, &kc, &schedule, &rng);
            let ct = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            let dec = decompress_chunked(&enc).expect("chunked roundtrip");
            let dt = t1.elapsed().as_secs_f64();
            assert_eq!(dec[0].len(), elems);
            (ct, dt, enc.len())
        })
    };

    let chunked_1 = chunked_at(Some(1));
    let threads = rayon::current_num_threads().max(1);
    let chunked_n = chunked_at(None);

    // Checkpoint store round-trip: the same buffer as snapshot tensors
    // through the full on-disk path (encode + CRC frame + fsync'd
    // commit, then validated load).
    let ckpt = {
        use compso_ckpt::{CheckpointStore, Manifest, Snapshot, TensorData, TensorEntry};
        use compso_core::encoders::Codec;
        let dir = std::env::temp_dir().join(format!("compso-bench-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::new(&dir, 1).expect("open bench store");
        let mut snap = Snapshot::new(0);
        for (i, part) in data.chunks(elems.div_ceil(8)).enumerate() {
            snap.push(TensorEntry::vector(
                format!("bench/{i}"),
                TensorData::F32(part.to_vec()),
            ));
        }
        let sample = measure(reps, bytes, || {
            store.prepare_tmp(0).expect("prepare");
            let t0 = Instant::now();
            let (meta, stats) = store
                .write_rank_file(0, 0, &snap, Codec::Ans)
                .expect("write rank file");
            let manifest = Manifest {
                step: 0,
                world_size: 1,
                fingerprint: 0,
                epoch: 0,
                ranks: vec![meta],
            };
            store.commit(&manifest).expect("commit");
            let ct = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            let back = store.load_rank(0, &manifest, 0).expect("load rank file");
            let dt = t1.elapsed().as_secs_f64();
            assert_eq!(back.tensors.len(), snap.tensors.len());
            (ct, dt, stats.bytes_written as usize)
        });
        let _ = std::fs::remove_dir_all(&dir);
        sample
    };

    // PowerSGD low-rank family: stateless rank-4 encode/decode over the
    // same buffer. The stateless path cold-starts Q each call, so this
    // is the worst-case encode cost (warm-started group steps only get
    // cheaper).
    let powersgd = {
        let c = PowerSgd::rank(4);
        measure(reps, bytes, || {
            let mut rng = Rng::new(11);
            let t0 = Instant::now();
            let enc = c.compress(&data, &mut rng);
            let ct = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            let dec = c.decompress(&enc).expect("powersgd roundtrip");
            let dt = t1.elapsed().as_secs_f64();
            assert_eq!(dec.len(), elems);
            (ct, dt, enc.len())
        })
    };

    // Controller decision overhead: scripted signal tape through a live
    // (instrumented) controller, reported both as ns/decision and as a
    // fraction of the production chunked compress wall for this buffer —
    // the gate is that decisions stay well under 1% of the step.
    let controller = {
        let decide_steps = env_usize("COMPSO_BENCH_CTRL_STEPS", 10_000).max(100);
        let rec = Recorder::enabled();
        let mut ctl = Controller::new(ControlConfig::default());
        let t0 = Instant::now();
        for i in 0..decide_steps as u64 {
            let sig = Signals {
                bytes_in: bytes as u64,
                bytes_out: bytes as u64 / 4 + (i % 7) * 1024,
                wall_ns: 1_000_000 + (i % 13) * 10_000,
                predicted_wall_ns: 1_000_000,
                error_rel: 0.01,
            };
            ctl.observe(&sig, &rec);
        }
        let decide_ns = t0.elapsed().as_nanos() as f64 / decide_steps as f64;
        let step_wall_ns = bytes as f64 / (chunked_n.compress_mbps.max(1e-9) * 1e6) * 1e9;
        format!(
            "{{\"steps\": {decide_steps}, \"decide_ns\": {decide_ns:.1}, \
             \"step_wall_ns\": {step_wall_ns:.0}, \"overhead_frac\": {:.8}}}",
            decide_ns / step_wall_ns
        )
    };

    // Gather-scheduling A/B: serial compress-then-gather vs the
    // pipelined ring, 1/2/4 workers, imbalanced ownership.
    let big_groups = env_usize("COMPSO_BENCH_PIPE_GROUPS", 8).max(1);
    let big_elems = (elems / (2 * big_groups)).max(1024);
    let small_elems = (elems / 64).max(256);
    // Modeled wire bandwidth for the gather A/B. 50 MB/s keeps the
    // wire-to-compressor throughput ratio in the same regime as the
    // paper's clusters: this CPU codec moves ~170 MB/s where an A100's
    // moves ~100 GB/s, so a 100 Gb/s (12.5 GB/s) fabric scales down to
    // tens of MB/s with it. The ratio is what matters — it decides how
    // much drain each compression stage can hide.
    let wire_mbps = env_usize("COMPSO_BENCH_WIRE_MBPS", 50).max(1) as f64;
    let mut pipeline = format!(
        "{{\"big_groups\": {big_groups}, \"big_elems\": {big_elems}, \"small_elems\": {small_elems}, \"wire_MBps\": {wire_mbps}"
    );
    for workers in [1usize, 2, 4] {
        let (serial_s, pipe_s) =
            gather_walls(workers, big_groups, big_elems, small_elems, wire_mbps, reps);
        pipeline.push_str(&format!(
            ", \"serial_ms_{workers}w\": {:.3}, \"pipelined_ms_{workers}w\": {:.3}, \
             \"speedup_{workers}w\": {:.2}",
            serial_s * 1e3,
            pipe_s * 1e3,
            serial_s / pipe_s.max(1e-12),
        ));
    }
    pipeline.push('}');

    let json = format!(
        "{{\n  \"elems\": {elems},\n  \"bytes\": {bytes},\n  \"reps\": {reps},\n  \
         \"threads\": {threads},\n  \"serial\": {},\n  \"chunked_1thread\": {},\n  \
         \"chunked_nthread\": {},\n  \"ckpt\": {},\n  \"powersgd\": {},\n  \
         \"controller\": {controller},\n  \"pipeline\": {pipeline},\n  \
         \"speedup_compress_chunked_vs_serial\": {:.2},\n  \
         \"speedup_decompress_chunked_vs_serial\": {:.2}\n}}\n",
        serial.json(),
        chunked_1.json(),
        chunked_n.json(),
        ckpt.json(),
        powersgd.json(),
        chunked_n.compress_mbps / serial.compress_mbps.max(1e-12),
        chunked_n.decompress_mbps / serial.decompress_mbps.max(1e-12),
    );
    print!("{json}");
    std::fs::write(&out_path, &json).expect("write snapshot");
    eprintln!("wrote {out_path}");
}
