//! Table 2: lossless-encoder comparison — compression ratio and
//! (de)compression throughput of the eight codec families on quantized
//! K-FAC gradient data for ResNet-50 and BERT-large.
//!
//! The measured bytes are exactly what COMPSO's encoder stage sees: the
//! concatenated filter bitmaps and packed SR codes.
//!
//! Paper shape: entropy coders (ANS, Deflate, Gdeflate, Zstd) reach the
//! highest ratios on this data; ANS pairs a top-tier ratio with the best
//! throughput, making it the overall pick; Bitcomp is fastest but
//! ratio-weak; Cascaded/LZ4/Snappy trail on ratio.

use compso_bench::{f, gbps, header, row, spec_gradients, SAMPLE_BUDGET};
use compso_core::filter::filter;
use compso_core::quantize::Quantizer;
use compso_core::{Codec, RoundingMode};
use compso_dnn::ModelSpec;
use compso_tensor::Rng;
use std::time::Instant;

/// Produces the encoder-stage byte stream (bitmaps + packed codes) for a
/// model's gradients at the paper's aggressive setting.
fn encoder_input(spec: &ModelSpec, seed: u64) -> Vec<u8> {
    let layers = spec_gradients(spec, SAMPLE_BUDGET, seed);
    let mut rng = Rng::new(seed ^ 0xE);
    let mut bytes = Vec::new();
    let quantizer = Quantizer::relative(4e-3, RoundingMode::Stochastic);
    for layer in &layers {
        let mm = compso_tensor::reduce::minmax_flat(layer);
        let range = if layer.is_empty() {
            0.0
        } else {
            mm.max - mm.min
        };
        if range <= 0.0 {
            continue;
        }
        let filtered = filter(layer, 4e-3 * range);
        bytes.extend_from_slice(&filtered.bitmap.to_bytes());
        let quant = quantizer.quantize(&filtered.kept, &mut rng);
        let mut w = compso_core::wire::Writer::new();
        quant.write(&mut w);
        bytes.extend_from_slice(&w.into_bytes());
    }
    bytes
}

fn main() {
    println!("# Table 2 — encoder comparison on COMPSO's quantized gradient data\n");
    for spec in [ModelSpec::resnet50(), ModelSpec::bert_large()] {
        println!("## {}\n", spec.name);
        let input = encoder_input(&spec, 7);
        let original_f32_bytes = SAMPLE_BUDGET as u64 * 4;
        header(&["encoder", "C-GB/s", "overall CR", "D-GB/s"]);
        for codec in Codec::all() {
            let t0 = Instant::now();
            let enc = codec.encode(&input);
            let enc_t = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            let dec = codec.decode(&enc).expect("roundtrip");
            let dec_t = t1.elapsed().as_secs_f64();
            assert_eq!(dec.len(), input.len());
            // Overall CR: original f32 gradient bytes vs final bytes —
            // the same accounting as the paper's "overall compression
            // ratio ... on KFAC gradient data".
            let cr = original_f32_bytes as f64 / enc.len() as f64;
            row(&[
                codec.name().to_string(),
                gbps(input.len() as f64 / enc_t.max(1e-9)),
                f(cr, 2),
                gbps(enc.len() as f64 / dec_t.max(1e-9)),
            ]);
        }
        println!();
    }
    println!(
        "Paper shape to verify: entropy coders (ANS/Deflate/Gdeflate/Zstd)\n\
         reach the highest CR; ANS combines top-tier CR with the best\n\
         throughput product; Bitcomp is throughput-first/ratio-last;\n\
         dictionary (LZ4/Snappy) and RLE (Cascaded) trail on CR."
    );
}
