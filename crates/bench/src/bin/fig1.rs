//! Figure 1: time breakdown of distributed K-FAC training on the four
//! models at 16/32/64 compute nodes (4 A100s each).
//!
//! Paper reference points (16 nodes): Allgather 35-42%, Allreduce ~10%,
//! KFAC compute ~13%, Forward+Backward ~23-27%, Others ~13%; the
//! Allgather share grows with node count and model size.

use compso_bench::{f, header, row};
use compso_dnn::ModelSpec;
use compso_sim::{IterationModel, Platform};

fn main() {
    println!("# Figure 1 — distributed K-FAC time breakdown (simulated)\n");
    let model = IterationModel::new(Platform::platform1());
    for spec in ModelSpec::all() {
        println!("## {}\n", spec.name);
        header(&[
            "nodes",
            "GPUs",
            "Allgather %",
            "Allreduce %",
            "KFAC comp %",
            "Fwd+Bwd %",
            "Others %",
            "iter (ms)",
        ]);
        for nodes in [16usize, 32, 64] {
            let gpus = nodes * 4;
            let b = model.breakdown(&spec, gpus, 1, None);
            let t = b.total();
            row(&[
                nodes.to_string(),
                gpus.to_string(),
                f(100.0 * b.grad_allgather / t, 1),
                f(100.0 * b.factor_allreduce / t, 1),
                f(100.0 * b.kfac_compute / t, 1),
                f(100.0 * b.fwd_bwd / t, 1),
                f(100.0 * b.others / t, 1),
                f(t * 1e3, 1),
            ]);
        }
        println!();
    }
    println!(
        "Paper shape to verify: Allgather is the largest phase (>=30%) and\n\
         its share grows with node count; Allreduce ~10%; see EXPERIMENTS.md."
    );
}
