//! Table 1: downstream fine-tuning quality by compressor (the paper's
//! BERT-large → SQuAD v1.1 experiment).
//!
//! Proxy: a tiny LM is pre-trained on token sequences, then fine-tuned
//! on a *different* token distribution (the downstream task). "F1" maps
//! to fine-tune accuracy and "Exact Match" to strict argmax accuracy on
//! a held-out split. Compression applies during both phases, as in the
//! paper's pre-train + fine-tune pipeline.
//!
//! Paper shape: all SR-based methods land within ~0.5 points of the
//! no-compression target; cuSZ (RN) loses about a point.

use compso_bench::proxy::EfState;
use compso_bench::{f, header, row};
use compso_core::adaptive::BoundSchedule;
use compso_core::baselines::{CocktailSgd, Qsgd, Sz};
use compso_core::{Compressor, Compso, RoundingMode};
use compso_dnn::loss::{accuracy, softmax_cross_entropy};
use compso_dnn::{data, models};
use compso_tensor::{Matrix, Rng};

/// Runs pre-train + fine-tune with an optional compressor on the
/// gradient path; returns (fine-tune accuracy %, exact-match %).
/// `use_ef` enables per-layer error feedback (CocktailSGD's mechanism).
fn run_finetune(
    method: &dyn Fn(usize) -> Option<Box<dyn Compressor>>,
    use_ef: bool,
    seed: u64,
) -> (f64, f64) {
    let vocab = 12;
    let context = 3;
    let mut rng = Rng::new(41 ^ seed);
    let mut model = models::mlp_lm(vocab, context, 48, &mut rng);
    let mut kfac = compso_kfac::Kfac::new(compso_kfac::KfacConfig {
        damping: 0.05,
        ema_decay: 0.95,
        eigen_refresh: 10,
        ..Default::default()
    });
    let mut comp_rng = Rng::new(43 ^ seed.wrapping_mul(11));
    let mut ef = EfState::new();

    let mut train_phase = |model: &mut compso_dnn::Sequential,
                           kfac: &mut compso_kfac::Kfac,
                           d: &data::Dataset,
                           iters: usize,
                           lr: f32,
                           offset: usize| {
        for step in 0..iters {
            let (x, y) = d.batch(step, 32);
            let logits = model.forward(&x, true);
            let (_, grad) = softmax_cross_entropy(&logits, &y);
            model.backward(&grad);
            kfac.step(model);
            if let Some(c) = method(offset + step) {
                for idx in model.trainable_indices() {
                    let grad = model.layer(idx).grads().expect("grad").clone();
                    let decoded = if use_ef {
                        ef.roundtrip(idx, &grad, c.as_ref(), &mut comp_rng).0
                    } else {
                        let bytes = c.compress(grad.as_slice(), &mut comp_rng);
                        let back = c.decompress(&bytes).expect("roundtrip");
                        Matrix::from_vec(grad.rows(), grad.cols(), back)
                    };
                    model.layer_mut(idx).set_grads(decoded);
                }
            }
            model.update_params(|p, g| p.axpy(-lr, g));
        }
    };

    // Pre-training corpus.
    let pretrain = data::token_sequences(4096, vocab, context, 51);
    train_phase(&mut model, &mut kfac, &pretrain, 250, 0.004, 0);

    // Downstream task: a different Markov structure (fresh seed).
    let finetune = data::token_sequences(4096, vocab, context, 77);
    let holdout = finetune.shard(1, 2);
    let train = finetune.shard(0, 2);
    train_phase(&mut model, &mut kfac, &train, 150, 0.002, 250);

    let logits = model.forward(&holdout.x, false);
    let acc = accuracy(&logits, &holdout.y);
    // "Exact match": strict argmax accuracy with a confidence margin.
    let mut exact = 0usize;
    for b in 0..logits.rows() {
        let rowv = logits.row(b);
        let mut best = (f32::NEG_INFINITY, 0usize);
        let mut second = f32::NEG_INFINITY;
        for (c, &v) in rowv.iter().enumerate() {
            if v > best.0 {
                second = best.0;
                best = (v, c);
            } else if v > second {
                second = v;
            }
        }
        if best.1 == holdout.y[b] && best.0 - second > 0.5 {
            exact += 1;
        }
    }
    (acc * 100.0, exact as f64 / holdout.len() as f64 * 100.0)
}

fn main() {
    println!("# Table 1 — downstream fine-tune quality by compressor (SQuAD proxy)\n");
    header(&[
        "approach",
        "equivalent error control",
        "F1-proxy (%)",
        "ExactMatch-proxy (%)",
    ]);

    #[allow(clippy::type_complexity)]
    let entries: Vec<(
        &str,
        &str,
        bool,
        Box<dyn Fn(usize) -> Option<Box<dyn Compressor>>>,
    )> = vec![
        ("KFAC (No Comp.)", "(n/a)", false, Box::new(|_| None)),
        (
            "KFAC+cuSZ",
            "4E-3, relative to value range",
            false,
            Box::new(|_| Some(Box::new(Sz::new(4e-3)) as Box<dyn Compressor>)),
        ),
        (
            "KFAC+QSGD",
            "8-bit quant.",
            false,
            Box::new(|_| Some(Box::new(Qsgd::bits8()) as Box<dyn Compressor>)),
        ),
        (
            "KFAC+CocktailSGD",
            "20% sparsity + 8-bit quant. (+EF)",
            true,
            Box::new(|_| Some(Box::new(CocktailSgd::standard()) as Box<dyn Compressor>)),
        ),
        (
            "KFAC+COMPSO",
            "iteration-wise adaptive (4 stages)",
            false,
            Box::new(|step| {
                // 400 total iterations in four stages, 4E-3 -> 2E-3.
                let sched = BoundSchedule::smooth_paper(400, 4);
                Some(Box::new(Compso::new(
                    sched.strategy_at(step).to_config(RoundingMode::Stochastic),
                )) as Box<dyn Compressor>)
            }),
        ),
    ];

    for (name, control, use_ef, method) in entries {
        // Average over three seeds, as the paper averages multiple runs.
        let (mut f1s, mut ems) = (0.0, 0.0);
        for seed in 0..3u64 {
            let (f1, em) = run_finetune(&method, use_ef, seed);
            f1s += f1;
            ems += em;
        }
        row(&[
            name.into(),
            control.into(),
            f(f1s / 3.0, 2),
            f(ems / 3.0, 2),
        ]);
    }
    println!(
        "\nPaper shape to verify: SR-based rows (QSGD/CocktailSGD/COMPSO)\n\
         within ~0.5 of the no-compression target; cuSZ (RN) about a point\n\
         lower."
    );
}
