//! Figure 8: compressor throughput vs. input size.
//!
//! The paper compares fused CUDA implementations against PyTorch
//! multi-kernel ones on an A100. The CPU analogues (DESIGN.md §1):
//! single-threaded single-buffer compressors play the "PyTorch"
//! role (one pass per tensor op, no intra-buffer parallelism), and the
//! chunked-parallel kernels of `compso_core::kernels` play the "CUDA"
//! role — with its fused/staged toggle reproducing the kernel-fusion
//! ablation. Sizes sweep 1 MB – 128 MB as in the figure.
//!
//! Paper shape: the parallel fused pipeline dominates the serial
//! implementations and its own staged variant; CocktailSGD (top-k with
//! sampling, serial) trails COMPSO's fused pipeline; SZ (prediction +
//! Huffman) is the slowest.

use compso_bench::{gbps, header, row};
use compso_core::baselines::{CocktailSgd, Qsgd, Sz};
use compso_core::kernels::{compress_chunked, KernelConfig, LayerSchedule};
use compso_core::synthetic::{generate, GradientProfile};
use compso_core::{Compressor, Compso, CompsoConfig};
use compso_tensor::Rng;
use std::time::Instant;

fn time_compressor(c: &dyn Compressor, data: &[f32], reps: usize) -> f64 {
    let mut rng = Rng::new(9);
    let _ = c.compress(data, &mut rng); // warm-up
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(c.compress(data, &mut rng));
    }
    (data.len() * 4 * reps) as f64 / t0.elapsed().as_secs_f64()
}

fn time_chunked(data: &[f32], fused: bool, reps: usize) -> f64 {
    let cfg = CompsoConfig::aggressive(4e-3);
    let kc = KernelConfig {
        fused,
        ..KernelConfig::default()
    };
    let schedule = LayerSchedule::build(&[data.len()], kc.chunk_elems);
    let rng = Rng::new(9);
    let _ = compress_chunked(&[data], &cfg, &kc, &schedule, &rng); // warm-up
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(compress_chunked(&[data], &cfg, &kc, &schedule, &rng));
    }
    (data.len() * 4 * reps) as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    println!("# Figure 8 — compression throughput vs. data size (GB/s)\n");
    println!(
        "(host parallelism: {} rayon threads — on a single-core host the\n\
         parallel columns degenerate to the serial path and only the\n\
         pass-count difference between fused and staged remains)\n",
        rayon::current_num_threads()
    );
    header(&[
        "size (MB)",
        "SZ (serial)",
        "QSGD (serial)",
        "CocktailSGD (serial)",
        "COMPSO (serial)",
        "COMPSO (parallel, staged)",
        "COMPSO (parallel, fused)",
    ]);
    for mb in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        let elems = mb * (1 << 20) / 4;
        let data = generate(elems, 33 + mb as u64, GradientProfile::kfac());
        let reps = (32 / mb).max(1);
        row(&[
            mb.to_string(),
            gbps(time_compressor(&Sz::new(4e-3), &data, reps)),
            gbps(time_compressor(&Qsgd::bits8(), &data, reps)),
            gbps(time_compressor(&CocktailSgd::standard(), &data, reps)),
            gbps(time_compressor(
                &Compso::new(CompsoConfig::aggressive(4e-3)),
                &data,
                reps,
            )),
            gbps(time_chunked(&data, false, reps)),
            gbps(time_chunked(&data, true, reps)),
        ]);
    }
    println!(
        "\nPaper shape to verify: the parallel fused COMPSO column dominates\n\
         the serial implementations and its own staged variant; CocktailSGD\n\
         trails it; SZ is slowest."
    );
}
