//! Figure 6a/6b: convergence under different compressors.
//!
//! Six methods per task, as in the figure: SGD+CocktailSGD, K-FAC without
//! compression, K-FAC+cuSZ, K-FAC+QSGD, K-FAC+CocktailSGD, and
//! K-FAC+COMPSO (iteration-wise adaptive), on the three proxy tasks
//! standing in for ResNet-50 / Mask R-CNN / GPT-neo-125M.
//!
//! Paper shape: all K-FAC+compressor curves track the no-compression
//! K-FAC curve (cuSZ slightly worse — RN); SGD needs more iterations
//! than K-FAC; COMPSO matches the baseline's final metric.

use compso_bench::proxy::{run, Method, Opt, ProxyConfig, Task};
use compso_bench::{f, header, row};
use compso_core::adaptive::BoundSchedule;
use compso_core::baselines::{CocktailSgd, Qsgd, Sz};

fn methods(iters: usize, smooth: bool) -> Vec<(Opt, Method)> {
    let schedule = if smooth {
        BoundSchedule::smooth_paper(iters, 4)
    } else {
        BoundSchedule::step_paper(iters / 2)
    };
    vec![
        (Opt::Sgd, Method::FixedEf(Box::new(CocktailSgd::standard()))),
        (Opt::Kfac, Method::None),
        (Opt::Kfac, Method::Fixed(Box::new(Sz::new(4e-3)))),
        (Opt::Kfac, Method::Fixed(Box::new(Qsgd::bits8()))),
        (
            Opt::Kfac,
            Method::FixedEf(Box::new(CocktailSgd::standard())),
        ),
        (Opt::Kfac, Method::Adaptive(schedule)),
    ]
}

fn label(opt: Opt, m: &Method) -> String {
    let opt_name = match opt {
        Opt::Sgd => "SGD",
        Opt::Kfac => "KFAC",
    };
    match m {
        Method::None => format!("{opt_name} (No Comp.)"),
        Method::Fixed(c) => format!("{opt_name}+{}", c.name()),
        Method::FixedEf(c) => format!("{opt_name}+{}", c.name()),
        Method::Adaptive(_) => format!("{opt_name}+COMPSO"),
    }
}

fn main() {
    println!("# Figure 6 — convergence under compression\n");
    let tasks = [
        (Task::Blobs, "ResNet-50 proxy (blobs/MLP, StepLR)", false),
        (Task::Images, "Mask R-CNN proxy (images/CNN, StepLR)", false),
        (
            Task::Tokens,
            "GPT-neo proxy (tokens/MLP-LM, SmoothLR)",
            true,
        ),
    ];

    for (task, title, smooth) in tasks {
        println!("## {title}\n");
        println!("### 6a: accuracy curves (iteration -> accuracy)\n");
        let mut finals: Vec<(String, f64, f64, f64)> = Vec::new();
        let mut curve_rows: Vec<(String, Vec<(usize, f64)>)> = Vec::new();
        for (opt, method) in methods(ProxyConfig::standard(task, Opt::Kfac).iters, smooth) {
            let cfg = ProxyConfig::standard(task, opt);
            let result = run(&cfg, &method);
            let name = label(opt, &method);
            curve_rows.push((
                name.clone(),
                result.curve.iter().map(|p| (p.iter, p.accuracy)).collect(),
            ));
            finals.push((
                name,
                result.final_accuracy,
                result.final_loss,
                result.mean_ratio,
            ));
        }
        // Print curves on a shared iteration grid (every 4th sample).
        let grid: Vec<usize> = curve_rows[0]
            .1
            .iter()
            .map(|&(it, _)| it)
            .step_by(4)
            .collect();
        let mut head: Vec<&str> = vec!["method"];
        let grid_labels: Vec<String> = grid.iter().map(|g| format!("@{g}")).collect();
        head.extend(grid_labels.iter().map(|s| s.as_str()));
        header(&head);
        for (name, curve) in &curve_rows {
            let mut cells = vec![name.clone()];
            for &g in &grid {
                let v = curve
                    .iter()
                    .find(|&&(it, _)| it == g)
                    .map(|&(_, a)| a)
                    .unwrap_or(f64::NAN);
                cells.push(f(v, 3));
            }
            row(&cells);
        }

        println!("\n### 6b: final metrics\n");
        header(&["method", "final accuracy", "final loss", "mean grad CR"]);
        for (name, acc, loss, ratio) in finals {
            row(&[name, f(acc, 3), f(loss, 3), f(ratio, 1)]);
        }
        println!();
    }
    println!(
        "Paper shape to verify: KFAC+COMPSO final metric within noise of\n\
         KFAC (No Comp.); KFAC variants reach high accuracy earlier than\n\
         SGD+CocktailSGD; cuSZ (RN) trails the SR-based methods."
    );
}
