//! Figure 9: overall (end-to-end) training speedup by compressor, GPU
//! count, and platform — including COMPSO-f (fixed aggregation factor 4)
//! vs. COMPSO-p (performance-model-chosen factor).
//!
//! Compressor profiles are measured on spec-shaped gradients; iteration
//! times come from the calibrated simulator.
//!
//! Paper shape: COMPSO up to ~1.9x (avg ~1.3x); COMPSO-p ≥ COMPSO-f;
//! gains grow with GPU count; cuSZ/QSGD gains are smaller; some
//! baseline configurations dip below 1.0x (compression that doesn't pay).

use compso_bench::{
    f, gpu_profile, header, measure_membw, measure_profile, row, spec_gradients, SAMPLE_BUDGET,
};
use compso_core::baselines::{CocktailSgd, Qsgd, Sz};
use compso_core::{Compressor, Compso, CompsoConfig};
use compso_dnn::ModelSpec;
use compso_sim::{end_to_end_gain_on, AggregationPolicy, IterationModel, Platform};

fn main() {
    println!("# Figure 9 — end-to-end speedup over no-compression K-FAC\n");
    let host_membw = measure_membw();
    println!(
        "(codec profiles measured on this host, throughput translated to\n\
         the simulated A100 by the memory-bandwidth ratio — see DESIGN.md)\n"
    );
    let compressors: Vec<(&str, Box<dyn Compressor>, AggregationPolicy)> = vec![
        ("cuSZ", Box::new(Sz::new(4e-3)), AggregationPolicy::Fixed(1)),
        ("QSGD", Box::new(Qsgd::bits8()), AggregationPolicy::Fixed(1)),
        (
            "CocktailSGD",
            Box::new(CocktailSgd::standard()),
            AggregationPolicy::Fixed(1),
        ),
        (
            "COMPSO-f",
            Box::new(Compso::new(CompsoConfig::aggressive(4e-3))),
            AggregationPolicy::Fixed(4),
        ),
        (
            "COMPSO-p",
            Box::new(Compso::new(CompsoConfig::aggressive(4e-3))),
            AggregationPolicy::PerformanceModel,
        ),
    ];

    for platform in [Platform::platform1(), Platform::platform2()] {
        println!("## {}\n", platform.name);
        let model = IterationModel::new(platform.clone());
        for spec in ModelSpec::all() {
            println!("### {}\n", spec.name);
            let layers = spec_gradients(&spec, SAMPLE_BUDGET, 200);
            header(&["method", "8 GPUs", "16 GPUs", "32 GPUs", "64 GPUs"]);
            for (name, c, policy) in &compressors {
                let cpu = measure_profile(c.as_ref(), &layers, 201);
                let profile = gpu_profile(&cpu, platform.gpu_membw, host_membw);
                let mut cells = vec![name.to_string()];
                for gpus in [8usize, 16, 32, 64] {
                    let g = end_to_end_gain_on(&model, &spec, gpus, *policy, &profile);
                    cells.push(f(g, 2));
                }
                row(&cells);
            }
            println!();
        }
    }
    println!(
        "Paper shape to verify: COMPSO-p >= COMPSO-f >= the baselines;\n\
         gains grow with GPU count; the 1.0x line separates the methods\n\
         whose overheads eat their ratio."
    );
}
