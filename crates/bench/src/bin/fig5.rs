//! Figure 5: distribution of K-FAC gradient quantization error under
//! round-to-nearest (RN) vs. stochastic rounding (SR).
//!
//! Paper shape: RN's error density over the error-bound interval is flat
//! (uniform); SR's is peaked at zero (triangular). P0.5 — the equal-
//! probability control — is uniform despite being non-deterministic.

use compso_bench::{f, header, row};
use compso_core::quantize::Quantizer;
use compso_core::synthetic::{generate, GradientProfile};
use compso_core::RoundingMode;
use compso_tensor::stats::{classify_error_shape, Histogram};
use compso_tensor::Rng;

fn main() {
    println!("# Figure 5 — quantization-error distributions (eb = 4E-3)\n");
    let eb = 4e-3f32;
    let bins = 17;

    // Two "layer types" as in the figure: CNN-profile and transformer-
    // profile K-FAC gradients.
    let layers = [
        ("layer type 1 (conv)", GradientProfile::kfac()),
        ("layer type 2 (attn)", GradientProfile::transformer()),
    ];

    for (label, profile) in layers {
        println!("## {label}\n");
        let data = generate(400_000, 11, profile);
        let mm = compso_tensor::reduce::minmax_flat(&data);
        let bin_width = (eb * (mm.max - mm.min)) as f64;
        header(&[
            "mode",
            "density over the mode's error support",
            "shape",
            "TV(uniform)",
            "TV(triangular)",
        ]);
        for mode in [
            RoundingMode::Nearest,
            RoundingMode::Stochastic,
            RoundingMode::HalfProbability,
        ] {
            // Each mode is plotted over its own support, as in the paper:
            // RN errs by at most half a bin, SR/P0.5 by up to a full bin.
            let bound = if mode == RoundingMode::Nearest {
                bin_width / 2.0
            } else {
                bin_width
            };
            let mut rng = Rng::new(12);
            let quant = Quantizer::relative(eb, mode).quantize(&data, &mut rng);
            let back = quant.dequantize();
            let errors: Vec<f32> = data.iter().zip(&back).map(|(&a, &b)| b - a).collect();
            let mut h = Histogram::new(-bound, bound, bins);
            h.add_all(errors.iter().map(|&e| e as f64));
            let dens = h.densities();
            let spark: String = dens
                .iter()
                .map(|&d| {
                    let peak = dens.iter().cloned().fold(0.0, f64::max).max(1e-12);
                    let level = (d / peak * 7.0).round() as usize;
                    ['.', ':', '-', '=', '+', '*', '#', '@'][level.min(7)]
                })
                .collect();
            let (shape, d_uni, d_tri) = classify_error_shape(&errors, bound, bins);
            row(&[
                mode.name().to_string(),
                spark,
                format!("{shape:?}"),
                f(d_uni, 3),
                f(d_tri, 3),
            ]);
        }
        println!();
    }
    println!(
        "Paper shape to verify: RN and P0.5 rows read flat (Uniform); the\n\
         SR row peaks in the middle (Triangular)."
    );
}
