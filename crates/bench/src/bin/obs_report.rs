//! Measured-vs-modeled iteration breakdown (`obs_report`).
//!
//! Runs a real (small, in-process) distributed K-FAC training loop with
//! an enabled [`Recorder`] threaded through the compressor, the
//! collectives, and the optimizer, then prints
//!
//! 1. one JSON [`StepReport`] per step — phase wall times, phase
//!    fractions (summing to 1), traffic counters, live compression
//!    ratio;
//! 2. a side-by-side table of the measured phase fractions against the
//!    §5 analytic model's prediction ([`IterationModel::breakdown`]),
//!    with the compressor profile (ratio + throughputs) *derived from
//!    the measured counters themselves*.
//!
//! The measured loop is a CPU-threaded MLP, not an A100 cluster, so the
//! two columns agree in *shape* (all-gather-dominated optimizer step)
//! rather than in absolute numbers; the table is the plumbing check that
//! the measured taxonomy and the model taxonomy line up one-to-one.

use compso_bench::{f, header, row};
use compso_comm::run_ranks;
use compso_core::perfmodel::CompressorProfile;
use compso_core::{Compso, CompsoConfig};
use compso_dnn::loss::softmax_cross_entropy;
use compso_dnn::{data, models, ModelSpec};
use compso_kfac::{DistKfac, DistKfacConfig};
use compso_obs::{names, Recorder, Snapshot, StepReport};
use compso_sim::{IterationModel, Platform};
use compso_tensor::Rng;

const RANKS: usize = 4;
const STEPS: usize = 8;
const BATCH: usize = 16;

fn main() {
    println!("# obs_report — measured step breakdown vs the §5 analytic model\n");

    let rec = Recorder::enabled();
    let rec_ref = &rec;
    let d = data::gaussian_blobs(640, 16, 4, 0.3, 101);
    let d_ref = &d;

    // One shared registry across all rank threads: counters and timers
    // are atomic, so cross-thread recording is lossless and the per-step
    // snapshot aggregates all ranks (the same "sum over GPUs" view the
    // paper's Fig. 1 plots).
    let per_rank = run_ranks(RANKS, |comm| {
        let mut rng = Rng::new(7);
        let mut model = models::mlp(&[16, 64, 64, 4], &mut rng);
        let shard = d_ref.shard(comm.rank(), RANKS);
        let mut opt = DistKfac::new(DistKfacConfig::default(), 7);
        opt.set_recorder(rec_ref.clone());
        comm.set_recorder(rec_ref.clone());
        let compso = Compso::new(CompsoConfig::aggressive(4e-3));

        let mut reports: Vec<StepReport> = Vec::new();
        let mut prev = Snapshot::default();
        for step in 0..STEPS {
            let (x, y) = shard.batch(step, BATCH);
            let logits = model.forward(&x, true);
            let (_, grad) = softmax_cross_entropy(&logits, &y);
            model.backward(&grad);
            opt.step(comm, &mut model, &compso).expect("step");
            model.update_params(|p, g| p.axpy(-0.01, g));

            // Quiesce all ranks, snapshot on rank 0, then release.
            comm.barrier().expect("barrier");
            if comm.rank() == 0 {
                let cur = rec_ref.snapshot();
                reports.push(StepReport::from_snapshot(
                    step as u64,
                    &cur.delta_since(&prev),
                ));
                prev = cur;
            }
            comm.barrier().expect("barrier");
        }
        reports
    });
    let reports = &per_rank[0];

    println!("## Per-step reports (one JSON object per line)\n");
    println!("```json");
    for r in reports {
        println!("{}", r.to_json());
    }
    println!("```\n");
    for r in reports {
        let sum = r.fraction_sum();
        assert!(
            (sum - 1.0).abs() < 0.01,
            "step {} fractions sum to {sum}, expected 1.0 +/- 0.01",
            r.step
        );
    }
    println!(
        "fraction sums: all {} steps within 1.0 +/- 0.01\n",
        reports.len()
    );

    // Derive the compressor profile the analytic model needs from the
    // *measured* counters (live ratio and throughputs).
    let snap = rec.snapshot();
    let bytes_in = snap.counter(names::CORE_BYTES_IN) as f64;
    let bytes_out = snap.counter(names::CORE_BYTES_OUT) as f64;
    let compress_s = snap.timer_seconds(names::CORE_FILTER)
        + snap.timer_seconds(names::CORE_QUANTIZE)
        + snap.timer_seconds(names::CORE_ENCODE);
    let decode_bytes = snap.counter(names::CORE_DECODE_BYTES_IN) as f64;
    let decode_s = snap.timer_seconds(names::CORE_DECODE);
    let profile = CompressorProfile {
        ratio: if bytes_out > 0.0 {
            bytes_in / bytes_out
        } else {
            1.0
        },
        compress_tput: if compress_s > 0.0 {
            bytes_in / compress_s
        } else {
            1e9
        },
        decompress_tput: if decode_s > 0.0 {
            decode_bytes / decode_s
        } else {
            1e9
        },
    };
    println!(
        "measured compressor profile: ratio {:.1}x, compress {:.1} MB/s, decompress {:.1} MB/s\n",
        profile.ratio,
        profile.compress_tput / 1e6,
        profile.decompress_tput / 1e6
    );

    // Model prediction for a real paper workload with that profile.
    let model = IterationModel::new(Platform::platform1());
    let spec = ModelSpec::resnet50();
    let b = model.breakdown(&spec, 64, 4, Some(&profile));
    // The measured loop times only the optimizer step (forward/backward
    // happen outside DistKfac::step), so compare over the optimizer-side
    // phases: drop fwd_bwd from the model total.
    let model_total = b.total() - b.fwd_bwd;

    // Measured steady-state fractions: steps 1.. (step 0 pays one-time
    // warm-up costs — first eigendecompositions, thread spin-up — that
    // the per-iteration model intentionally amortizes away).
    let steady = &reports[1..];
    let steady_wall: f64 = steady.iter().map(|r| r.wall_s).sum();
    let frac = |name: &str| {
        let s: f64 = steady
            .iter()
            .map(|r| r.phases.get(name).copied().unwrap_or(0.0))
            .sum();
        if steady_wall > 0.0 {
            s / steady_wall
        } else {
            0.0
        }
    };

    println!("## Measured step fractions vs model prediction (ResNet-50 @ 64 GPUs, m=4)\n");
    header(&["phase (measured ≙ model)", "measured %", "model %"]);
    row(&[
        "allgather+compress ≙ grad_allgather+compression".to_string(),
        f(100.0 * frac(names::KFAC_ALLGATHER), 1),
        f(100.0 * (b.grad_allgather + b.compression) / model_total, 1),
    ]);
    row(&[
        "factor+inverse ≙ kfac_compute+factor_allreduce".to_string(),
        f(
            100.0 * (frac(names::KFAC_FACTOR) + frac(names::KFAC_INVERSE)),
            1,
        ),
        f(
            100.0 * (b.kfac_compute + b.factor_allreduce) / model_total,
            1,
        ),
    ]);
    // Everything else, including the untracked residual ("other").
    let rest =
        1.0 - frac(names::KFAC_ALLGATHER) - frac(names::KFAC_FACTOR) - frac(names::KFAC_INVERSE);
    row(&[
        "grad_sync+update+other ≙ others".to_string(),
        f(100.0 * rest, 1),
        f(100.0 * b.others / model_total, 1),
    ]);
    println!(
        "\nColumns are normalized over the optimizer step (model column\n\
         excludes Forward+Backward). Expect shape agreement — the\n\
         all-gather phase dominating — not absolute agreement: the\n\
         measured side is an in-process CPU MLP, the model an A100\n\
         cluster running ResNet-50."
    );

    // Achieved vs predicted compression–communication overlap of the
    // pipelined gather (the PPoPP headline metric): measured is
    // 1 − comm/pipeline/wait ÷ kfac/step/allgather averaged over the
    // steady steps; predicted comes from the same pipeline model
    // (max + min/stages) fed with the measured compressor profile.
    let overlaps: Vec<f64> = steady.iter().filter_map(|r| r.overlap_frac).collect();
    let measured_overlap = if overlaps.is_empty() {
        0.0
    } else {
        overlaps.iter().sum::<f64>() / overlaps.len() as f64
    };
    let predicted_overlap = model.overlap_frac(&spec, 64, 4, Some(&profile));
    println!("\n## Pipelined gather overlap (kfac/overlap_frac)\n");
    header(&["overlap fraction", "measured", "model"]);
    row(&[
        "1 - wait/allgather".to_string(),
        f(measured_overlap, 3),
        f(predicted_overlap, 3),
    ]);
    assert!(
        !overlaps.is_empty(),
        "pipelined gather must report an overlap fraction every steady step"
    );
    assert!(
        (0.0..=1.0).contains(&measured_overlap),
        "overlap fraction out of range: {measured_overlap}"
    );
    println!(
        "\nMeasured: fraction of the step-5 gather wall NOT spent blocked\n\
         on the ring (wait time hidden behind compression/decode).\n\
         Model: same pipeline formula on the A100 ResNet-50 workload —\n\
         shape check only, as above."
    );
}
