//! Component-level profile of the checkpoint lossless path: times the
//! CRC kernel and the block entropy coder separately over a synthetic
//! K-FAC buffer, so a regression in `ckpt` throughput in
//! `BENCH_compress.json` can be attributed without guessing.

use compso_core::encoders::Codec;
use compso_core::synthetic::{generate, GradientProfile};
use compso_core::wire::crc32;
use std::time::Instant;

fn main() {
    let elems = 4 << 20;
    let data = generate(elems, 21, GradientProfile::kfac());
    let raw: Vec<u8> = data.iter().flat_map(|f| f.to_le_bytes()).collect();
    let mb = raw.len() as f64 / 1e6;

    let t = Instant::now();
    let c = crc32(&raw);
    println!(
        "crc32: {:.1} MB/s (c={c:08x})",
        mb / t.elapsed().as_secs_f64()
    );

    let t = Instant::now();
    let enc = Codec::Ans.encode_blocks(&raw, 256 * 1024);
    println!(
        "ans encode_blocks: {:.1} MB/s ({} -> {})",
        mb / t.elapsed().as_secs_f64(),
        raw.len(),
        enc.len()
    );

    let t = Instant::now();
    let dec = Codec::decode_blocks(&enc).expect("roundtrip");
    println!(
        "ans decode_blocks: {:.1} MB/s",
        mb / t.elapsed().as_secs_f64()
    );
    assert_eq!(dec, raw);
}
