//! Figure 7: communication speedup of compressed K-FAC gradients on the
//! two platforms, by model and GPU count.
//!
//! Compressor ratios and throughputs are *measured* on spec-shaped
//! gradients; the communication times come from the network model.
//!
//! Paper shape: COMPSO reaches ~11-14.5x on the slower platform and
//! ~7-11x on the faster one; cuSZ (4E-3) and QSGD (8-bit) are capped by
//! their lower ratios; speedup grows with GPU count.

use compso_bench::{f, header, measure_profile, row, spec_gradients, SAMPLE_BUDGET};
use compso_core::baselines::{CocktailSgd, Qsgd, Sz};
use compso_core::{Compressor, Compso, CompsoConfig};
use compso_dnn::ModelSpec;
use compso_sim::{comm_speedup_on, IterationModel, Platform};

fn main() {
    println!("# Figure 7 — communication speedup (measured CR + network model)\n");
    let compressors: Vec<(&str, Box<dyn Compressor>)> = vec![
        ("cuSZ", Box::new(Sz::new(4e-3))),
        ("QSGD", Box::new(Qsgd::bits8())),
        ("CocktailSGD", Box::new(CocktailSgd::standard())),
        (
            "COMPSO",
            Box::new(Compso::new(CompsoConfig::aggressive(4e-3))),
        ),
    ];

    for platform in [Platform::platform1(), Platform::platform2()] {
        println!("## {}\n", platform.name);
        let model = IterationModel::new(platform.clone());
        for spec in ModelSpec::all() {
            println!("### {}\n", spec.name);
            let layers = spec_gradients(&spec, SAMPLE_BUDGET, 100);
            header(&[
                "method",
                "measured CR",
                "8 GPUs",
                "16 GPUs",
                "32 GPUs",
                "64 GPUs",
            ]);
            for (name, c) in &compressors {
                let profile = measure_profile(c.as_ref(), &layers, 101);
                // COMPSO aggregates layers (m = 4, the paper's fixed
                // default); the baselines compress layer by layer.
                let m = if *name == "COMPSO" { 4 } else { 1 };
                let mut cells = vec![name.to_string(), f(profile.ratio, 1)];
                for gpus in [8usize, 16, 32, 64] {
                    let s = comm_speedup_on(&model, &spec, gpus, m, &profile, false);
                    cells.push(f(s, 1));
                }
                row(&cells);
            }
            println!();
        }
    }
    println!(
        "Paper shape to verify: COMPSO has the highest speedup everywhere;\n\
         speedups grow with GPU count; Platform 1 (slower network) gains\n\
         more than Platform 2."
    );
}
