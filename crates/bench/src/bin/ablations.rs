//! Ablations of COMPSO's design choices (DESIGN.md §4's last row) plus
//! the paper's two future-work extensions:
//!
//! 1. rounding mode (SR vs RN vs P0.5) — accuracy on the proxy task;
//! 2. filter on/off — compression ratio contribution;
//! 3. kernel fusion and extrema-reduction structure — throughput;
//! 4. aggregation factor sweep — modeled all-gather time;
//! 5. threshold auto-tuning (future work §7.1) — tuned vs hand-set bounds;
//! 6. factor-matrix compression (future work §7.2) — ratio on the
//!    Kronecker factors' all-reduce traffic.

use compso_bench::proxy::{run, Method, Opt, ProxyConfig, Task};
use compso_bench::{
    f, gbps, gpu_profile, header, measure_membw, measure_profile, row, spec_gradients,
    SAMPLE_BUDGET,
};
use compso_core::factors::{compress_symmetric, decompress_symmetric};
use compso_core::kernels::{compress_chunked, KernelConfig, LayerSchedule};
use compso_core::synthetic::{generate, GradientProfile};
use compso_core::tuning::{tune_bounds, TuningGrid};
use compso_core::{Compressor, Compso, CompsoConfig, RoundingMode};
use compso_dnn::ModelSpec;
use compso_kfac::kfac::covariance;
use compso_sim::{IterationModel, Platform};
use compso_tensor::{Matrix, Rng};
use std::time::Instant;

fn main() {
    rounding_ablation();
    filter_ablation();
    kernel_ablation();
    aggregation_sweep();
    inversion_ablation();
    tuner_extension();
    factor_compression_extension();
}

/// §2.2: KAISA "employs an alternate implicit inversion method" — compare
/// the eigendecomposition route against the Cholesky route on accuracy
/// and factor-refresh cost.
fn inversion_ablation() {
    use compso_kfac::kfac::InversionMethod;
    use compso_kfac::{Kfac, KfacConfig};
    println!("# Ablation 5 — factor inversion route (eigen vs implicit)\n");
    header(&[
        "route",
        "proxy accuracy",
        "refresh time for a 256-dim layer (ms)",
    ]);
    for (name, inversion) in [
        ("eigendecomposition (Eq. 2)", InversionMethod::Eigen),
        ("implicit Cholesky (KAISA)", InversionMethod::Implicit),
    ] {
        // Accuracy on the blobs proxy.
        let acc = {
            use compso_dnn::loss::{accuracy, softmax_cross_entropy};
            use compso_dnn::{data, models};
            let mut rng = Rng::new(501);
            let d = data::gaussian_blobs(400, 10, 4, 0.5, 502);
            let mut model = models::mlp(&[10, 32, 4], &mut rng);
            let mut kfac = Kfac::new(KfacConfig {
                damping: 0.05,
                inversion,
                ..Default::default()
            });
            for step in 0..200 {
                let (x, y) = d.batch(step, 32);
                let logits = model.forward(&x, true);
                let (_, grad) = softmax_cross_entropy(&logits, &y);
                model.backward(&grad);
                kfac.step(&mut model);
                model.update_params(|p, g| p.axpy(-0.02, g));
            }
            let logits = model.forward(&d.x, false);
            accuracy(&logits, &d.y)
        };
        // Refresh cost on a realistic 256-dim factor pair.
        let refresh_ms = {
            let mut rng = Rng::new(503);
            let stats = compso_dnn::KfacStats {
                a: Matrix::random_normal(1024, 256, &mut rng),
                g: Matrix::random_normal(1024, 128, &mut rng),
            };
            let mut kfac = Kfac::new(KfacConfig {
                damping: 0.05,
                eigen_refresh: 1, // refresh every call to time it
                inversion,
                ..Default::default()
            });
            let t0 = Instant::now();
            for _ in 0..3 {
                kfac.update_layer(0, &stats);
            }
            t0.elapsed().as_secs_f64() / 3.0 * 1e3
        };
        row(&[name.into(), f(acc, 3), f(refresh_ms, 1)]);
    }
    println!("\nShape: equal accuracy; the implicit route refreshes much faster.\n");
}

fn rounding_ablation() {
    println!("# Ablation 1 — rounding mode (accuracy at a loose bound, 5-seed avg)\n");
    header(&["mode", "proxy accuracy", "Δ vs no-comp"]);
    let avg = |mk: &dyn Fn() -> Method| -> f64 {
        let mut sum = 0.0;
        for seed in 0..5u64 {
            let mut cfg = ProxyConfig::standard(Task::Spirals, Opt::Kfac);
            cfg.iters = 200;
            cfg.seed = 7 + seed * 31;
            sum += run(&cfg, &mk()).final_accuracy;
        }
        sum / 5.0
    };
    let base = avg(&|| Method::None);
    row(&["none".into(), f(base, 3), "0.000".into()]);
    for mode in [
        RoundingMode::Stochastic,
        RoundingMode::Nearest,
        RoundingMode::HalfProbability,
    ] {
        let acc = avg(&|| {
            Method::Fixed(Box::new(Compso::new(
                CompsoConfig::aggressive(3e-2).with_mode(mode),
            )))
        });
        row(&[mode.name().into(), f(acc, 3), f(acc - base, 3)]);
    }
    println!("\nShape: SR closest to the baseline at a loose bound.\n");
}

fn filter_ablation() {
    println!("# Ablation 2 — filter branch contribution to CR\n");
    header(&["configuration", "ResNet-50 CR", "BERT-large CR"]);
    for (name, cfg) in [
        ("filter + SR (aggressive)", CompsoConfig::aggressive(4e-3)),
        ("SR only (conservative)", CompsoConfig::conservative(4e-3)),
    ] {
        let c = Compso::new(cfg);
        let mut cells = vec![name.to_string()];
        for spec in [ModelSpec::resnet50(), ModelSpec::bert_large()] {
            let layers = spec_gradients(&spec, SAMPLE_BUDGET / 2, 301);
            let p = measure_profile(&c, &layers, 302);
            cells.push(f(p.ratio, 1));
        }
        row(&cells);
    }
    println!("\nShape: the filter multiplies the ratio.\n");
}

fn kernel_ablation() {
    println!("# Ablation 3 — kernel fusion and extrema reduction (GB/s)\n");
    println!(
        "(host parallelism: {} rayon threads; fusion/hierarchy effects\n\
         scale with cores and memory-bandwidth pressure)\n",
        rayon::current_num_threads()
    );
    let data = generate(16 << 20, 303, GradientProfile::kfac());
    // Bitcomp isolates the kernel-structure cost: with a heavyweight
    // entropy coder the codec stage would drown the pass-count signal.
    let cfg = CompsoConfig::aggressive(4e-3).with_codec(compso_core::Codec::Bitcomp);
    header(&["kernel structure", "throughput GB/s"]);
    for (name, fused, hier) in [
        ("fused + hierarchical extrema", true, true),
        ("fused + flat extrema", true, false),
        ("staged + hierarchical extrema", false, true),
        ("staged + flat extrema", false, false),
    ] {
        let kc = KernelConfig {
            fused,
            hierarchical_extrema: hier,
            ..KernelConfig::default()
        };
        let schedule = LayerSchedule::build(&[data.len()], kc.chunk_elems);
        let rng = Rng::new(304);
        let _ = compress_chunked(&[&data], &cfg, &kc, &schedule, &rng);
        let t0 = Instant::now();
        for _ in 0..3 {
            std::hint::black_box(compress_chunked(&[&data], &cfg, &kc, &schedule, &rng));
        }
        let tput = (data.len() * 4 * 3) as f64 / t0.elapsed().as_secs_f64();
        row(&[name.into(), gbps(tput)]);
    }
    println!("\nShape: fused > staged; hierarchical >= flat extrema.\n");
}

fn aggregation_sweep() {
    println!("# Ablation 4 — aggregation factor m (modeled all-gather, ms)\n");
    let model = IterationModel::new(Platform::platform1());
    let spec = ModelSpec::resnet50();
    let layers = spec_gradients(&spec, SAMPLE_BUDGET / 2, 305);
    let cpu = measure_profile(&Compso::new(CompsoConfig::aggressive(4e-3)), &layers, 306);
    let profile = gpu_profile(&cpu, model.platform.gpu_membw, measure_membw());
    header(&["m", "all-gather+codec @64 GPUs (ms)", "@256 GPUs (ms)"]);
    for m in [1usize, 2, 4, 8, 16] {
        let t64 = {
            let b = model.breakdown(&spec, 64, m, Some(&profile));
            (b.grad_allgather + b.compression) * 1e3
        };
        let t256 = {
            let b = model.breakdown(&spec, 256, m, Some(&profile));
            (b.grad_allgather + b.compression) * 1e3
        };
        row(&[m.to_string(), f(t64, 2), f(t256, 2)]);
    }
    println!("\nShape: an interior or scale-dependent optimum — the reason COMPSO-p exists.\n");
}

fn tuner_extension() {
    println!("# Extension 1 (future work) — threshold auto-tuning\n");
    let data = generate(1 << 20, 307, GradientProfile::kfac());
    let grid = TuningGrid::default();
    let tuned = tune_bounds(&data, &grid, 42);
    header(&["configuration", "eb_f", "eb_q", "CR", "bounded L2 error"]);
    let hand = CompsoConfig::aggressive(4e-3);
    for (name, cfg) in [("hand-set (paper)", hand), ("auto-tuned", tuned.config)] {
        let c = Compso::new(cfg);
        let mut rng = Rng::new(308);
        let bytes = c.compress(&data, &mut rng);
        let back = c.decompress(&bytes).unwrap();
        let err: f64 = data
            .iter()
            .zip(&back)
            .map(|(&a, &b)| ((a - b) as f64).powi(2))
            .sum::<f64>()
            .sqrt();
        row(&[
            name.into(),
            format!("{:?}", cfg.eb_filter),
            format!("{:.0e}", cfg.eb_quant),
            f((data.len() * 4) as f64 / bytes.len() as f64, 1),
            format!("{err:.3e}"),
        ]);
    }
    println!("\nShape: the tuner finds a ratio >= hand-set at comparable error.\n");
}

fn factor_compression_extension() {
    println!("# Extension 2 (future work) — compressing the Kronecker factors\n");
    // Build a realistic covariance factor from synthetic activations.
    let mut rng = Rng::new(309);
    let acts = Matrix::random_normal(4096, 256, &mut rng);
    let factor = covariance(&acts);
    let compso = Compso::new(CompsoConfig::conservative(1e-3));
    let bytes = compress_symmetric(&factor, &compso, &mut rng);
    let back = decompress_symmetric(&bytes, &compso).unwrap();
    let full_bytes = factor.len() * 4;
    header(&["metric", "value"]);
    row(&["dense factor bytes".into(), full_bytes.to_string()]);
    row(&["compressed bytes".into(), bytes.len().to_string()]);
    row(&[
        "ratio (incl. triangle-only win)".into(),
        f(full_bytes as f64 / bytes.len() as f64, 1),
    ]);
    row(&[
        "max reconstruction error".into(),
        format!("{:.3e}", factor.max_diff(&back)),
    ]);
    row(&[
        "symmetry preserved".into(),
        (back.asymmetry() == 0.0).to_string(),
    ]);
    println!("\nShape: >2x from the triangle alone, more from quantization, symmetry exact.\n");
}
