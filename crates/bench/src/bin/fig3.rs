//! Figure 3: compression ratio (left) and validation accuracy (right) of
//! SZ 1E-1, QSGD 4-bit, SZ 4E-3, and QSGD 8-bit on K-FAC gradients of
//! ResNet-50 and BERT-large.
//!
//! Paper shape: the loose settings (SZ 1E-1, QSGD 4-bit) win on ratio
//! but lose accuracy; the tight settings (SZ 4E-3, QSGD 8-bit) preserve
//! accuracy at limited ratios (5-20x on ResNet, 15-58x on BERT); QSGD
//! 8-bit preserves accuracy slightly better than SZ 4E-3 (SR vs RN).

use compso_bench::proxy::{run, Method, Opt, ProxyConfig, Task};
use compso_bench::{f, header, row, spec_gradients, SAMPLE_BUDGET};
use compso_core::baselines::{Qsgd, Sz};
use compso_core::Compressor;
use compso_dnn::ModelSpec;
use compso_tensor::Rng;

fn candidates() -> Vec<(&'static str, Box<dyn Compressor>)> {
    vec![
        ("SZ 1E-1", Box::new(Sz::new(1e-1))),
        ("QSGD 4bit", Box::new(Qsgd::bits4())),
        ("SZ 4E-3", Box::new(Sz::new(4e-3))),
        ("QSGD 8bit", Box::new(Qsgd::bits8())),
    ]
}

fn main() {
    println!("# Figure 3 — CR and validation accuracy of SZ/QSGD settings\n");

    println!("## Compression ratio on spec-shaped K-FAC gradients\n");
    header(&["method", "ResNet-50 CR", "BERT-large CR"]);
    let resnet = spec_gradients(&ModelSpec::resnet50(), SAMPLE_BUDGET, 1);
    let bert = spec_gradients(&ModelSpec::bert_large(), SAMPLE_BUDGET, 2);
    for (name, c) in candidates() {
        let mut rng = Rng::new(3);
        let cr = |layers: &[Vec<f32>], rng: &mut Rng| -> f64 {
            let mut orig = 0u64;
            let mut comp = 0u64;
            for l in layers {
                orig += l.len() as u64 * 4;
                comp += c.compress(l, rng).len() as u64;
            }
            orig as f64 / comp as f64
        };
        row(&[
            name.to_string(),
            f(cr(&resnet, &mut rng), 1),
            f(cr(&bert, &mut rng), 1),
        ]);
    }

    println!("\n## Validation accuracy on the proxy tasks (K-FAC training)\n");
    println!(
        "Spiral task at a fixed just-converging iteration budget, averaged\n\
         over 5 seeds (the paper averages multiple runs); token task at its\n\
         standard budget.\n"
    );
    header(&[
        "method",
        "ResNet-50 proxy acc (5-seed avg)",
        "BERT/GPT proxy acc",
        "ResNet-50 proxy Δ vs no-comp",
    ]);
    let avg_spirals = |mk: &dyn Fn() -> Method| -> f64 {
        let mut sum = 0.0;
        for seed in 0..5u64 {
            let mut cfg = ProxyConfig::standard(Task::Spirals, Opt::Kfac);
            cfg.iters = 200;
            cfg.seed = 7 + seed * 31;
            sum += run(&cfg, &mk()).final_accuracy;
        }
        sum / 5.0
    };
    let cfg_lm = ProxyConfig::standard(Task::Tokens, Opt::Kfac);
    let base_cls = avg_spirals(&|| Method::None);
    let base_lm = run(&cfg_lm, &Method::None);
    row(&[
        "KFAC (No Comp.)".into(),
        f(base_cls, 3),
        f(base_lm.final_accuracy, 3),
        "0.000".into(),
    ]);
    for (name, c) in candidates() {
        let acc_cls = avg_spirals(&|| Method::Fixed(dyn_clone(name)));
        let acc_lm = run(&cfg_lm, &Method::Fixed(c)).final_accuracy;
        row(&[
            name.to_string(),
            f(acc_cls, 3),
            f(acc_lm, 3),
            f(acc_cls - base_cls, 3),
        ]);
    }
    println!(
        "\nPaper shape to verify: the loose RN setting (SZ 1E-1) loses\n\
         accuracy; the tight settings (SZ 4E-3, QSGD 8-bit) track the\n\
         baseline; BERT-shaped gradients compress better than\n\
         ResNet-shaped ones. Known deviation: QSGD-4bit's accuracy\n\
         collapse needs paper-scale gradient ranges and does not\n\
         reproduce at proxy scale (see EXPERIMENTS.md)."
    );
}

/// Rebuilds a boxed candidate by name (the first box was consumed).
fn dyn_clone(name: &str) -> Box<dyn Compressor> {
    match name {
        "SZ 1E-1" => Box::new(Sz::new(1e-1)),
        "QSGD 4bit" => Box::new(Qsgd::bits4()),
        "SZ 4E-3" => Box::new(Sz::new(4e-3)),
        "QSGD 8bit" => Box::new(Qsgd::bits8()),
        _ => unreachable!(),
    }
}
