//! Proxy training runs for the convergence experiments (Figs. 3/6,
//! Tab. 1).
//!
//! A proxy run trains a small model with the real K-FAC (or SGD)
//! optimizer while every K-FAC layer's preconditioned gradient passes
//! through the compressor under test — the same lossy path the
//! distributed all-gather takes, in a single process so convergence
//! experiments stay cheap. DESIGN.md §1 documents why this substitution
//! preserves the optimizer/compressor interaction the paper measures.

use compso_core::adaptive::BoundSchedule;
use compso_core::{Compressor, Compso, RoundingMode};
use compso_dnn::loss::{accuracy, softmax_cross_entropy};
use compso_dnn::{data, models, Sequential};
use compso_kfac::schedule::LrSchedule;
use compso_kfac::{Kfac, KfacConfig, SmoothLr, StepLr};
use compso_tensor::{Matrix, Rng};

/// Which optimizer drives the run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Opt {
    Sgd,
    Kfac,
}

/// How gradients are compressed.
pub enum Method {
    /// No compression (the paper's baseline).
    None,
    /// A fixed compressor for every iteration.
    Fixed(Box<dyn Compressor>),
    /// A fixed compressor with local error feedback: the per-layer
    /// residual (original − decompressed) is added back to the next
    /// step's gradient. CocktailSGD ships with this mechanism; COMPSO
    /// deliberately does not (§6: "Our work does not use error feedback
    /// to facilitate large batch training ... without risking
    /// out-of-memory errors").
    FixedEf(Box<dyn Compressor>),
    /// COMPSO's iteration-wise adaptive schedule (Alg. 1).
    Adaptive(BoundSchedule),
}

impl Method {
    /// Display label.
    pub fn label(&self) -> String {
        match self {
            Method::None => "No Comp.".into(),
            Method::Fixed(c) => c.name().into(),
            Method::FixedEf(c) => format!("{}+EF", c.name()),
            Method::Adaptive(_) => "COMPSO (adaptive)".into(),
        }
    }
}

/// Per-layer error-feedback residual store.
#[derive(Default)]
pub struct EfState {
    residuals: std::collections::HashMap<usize, Matrix>,
}

impl EfState {
    /// A fresh store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs compress→decompress on `grad` with the residual folded in,
    /// updates the residual, and returns the decompressed gradient.
    pub fn roundtrip(
        &mut self,
        layer: usize,
        grad: &Matrix,
        c: &dyn Compressor,
        rng: &mut Rng,
    ) -> (Matrix, usize) {
        let mut carried = grad.clone();
        if let Some(res) = self.residuals.get(&layer) {
            carried.axpy(1.0, res);
        }
        let bytes = c.compress(carried.as_slice(), rng);
        let wire = bytes.len();
        let back = c.decompress(&bytes).expect("own stream decodes");
        let decoded = Matrix::from_vec(grad.rows(), grad.cols(), back);
        let mut residual = carried;
        residual.axpy(-1.0, &decoded);
        self.residuals.insert(layer, residual);
        (decoded, wire)
    }
}

/// The proxy task menu, mapped to the paper's models.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Task {
    /// Gaussian blobs + MLP — the ResNet-50 classification proxy.
    Blobs,
    /// Interleaved spirals + deep MLP — the accuracy-sensitive task used
    /// where the paper's experiments resolve small accuracy deltas
    /// (Fig. 3's right panel).
    Spirals,
    /// Noisy images + CNN — the Mask R-CNN proxy.
    Images,
    /// Token sequences + MLP-LM — the GPT/BERT proxy.
    Tokens,
}

/// One recorded point of a training curve.
#[derive(Clone, Copy, Debug)]
pub struct CurvePoint {
    pub iter: usize,
    pub loss: f64,
    pub accuracy: f64,
}

/// The result of a proxy run.
pub struct ProxyRun {
    pub curve: Vec<CurvePoint>,
    pub final_accuracy: f64,
    pub final_loss: f64,
    /// Mean gradient compression ratio across compressed steps.
    pub mean_ratio: f64,
}

/// Hyperparameters of a proxy run.
pub struct ProxyConfig {
    pub task: Task,
    pub opt: Opt,
    pub iters: usize,
    pub batch: usize,
    pub seed: u64,
}

impl ProxyConfig {
    /// The standard configuration for a task.
    pub fn standard(task: Task, opt: Opt) -> Self {
        let iters = match task {
            Task::Blobs => 240,
            Task::Spirals => 900,
            Task::Images => 200,
            Task::Tokens => 300,
        };
        ProxyConfig {
            task,
            opt,
            iters,
            batch: 32,
            seed: 7,
        }
    }
}

fn build(task: Task, rng: &mut Rng) -> (Sequential, data::Dataset) {
    match task {
        Task::Blobs => {
            let d = data::gaussian_blobs(512, 12, 4, 0.55, 21);
            (models::mlp(&[12, 32, 4], rng), d)
        }
        Task::Spirals => {
            let d = data::spirals(600, 2, 2, 0.03, 24);
            (models::mlp(&[2, 48, 48, 2], rng), d)
        }
        Task::Images => {
            let d = data::noisy_images(256, 1, 8, 8, 4, 0.45, 22);
            (models::small_cnn(1, 8, 8, 4, 4, rng), d)
        }
        Task::Tokens => {
            let d = data::token_sequences(2048, 12, 3, 23);
            (models::mlp_lm(12, 3, 48, rng), d)
        }
    }
}

fn lr_schedule(task: Task, opt: Opt, iters: usize) -> Box<dyn LrSchedule> {
    let base = match (task, opt) {
        (Task::Blobs, Opt::Kfac) => 0.02,
        (Task::Blobs, Opt::Sgd) => 0.02,
        (Task::Spirals, Opt::Kfac) => 0.02,
        (Task::Spirals, Opt::Sgd) => 0.06,
        (Task::Images, Opt::Kfac) => 0.008,
        (Task::Images, Opt::Sgd) => 0.015,
        (Task::Tokens, Opt::Kfac) => 0.004,
        (Task::Tokens, Opt::Sgd) => 0.008,
    };
    match task {
        // ResNet/Mask R-CNN use StepLR in the paper.
        Task::Blobs | Task::Spirals | Task::Images => {
            Box::new(StepLr::new(base, vec![iters / 2], 0.1))
        }
        // GPT/BERT use smooth schedules.
        Task::Tokens => Box::new(SmoothLr::new(base, iters / 10, iters)),
    }
}

/// Runs one proxy training configuration.
pub fn run(config: &ProxyConfig, method: &Method) -> ProxyRun {
    let mut rng = Rng::new(config.seed);
    let (mut model, d) = build(config.task, &mut rng);
    let schedule = lr_schedule(config.task, config.opt, config.iters);
    let mut kfac = Kfac::new(KfacConfig {
        damping: 0.05,
        ema_decay: 0.95,
        eigen_refresh: 10,
        ..Default::default()
    });
    let mut comp_rng = Rng::new(config.seed ^ 0xC0C0);
    let mut curve = Vec::new();
    let mut ratio_sum = 0.0f64;
    let mut ratio_n = 0usize;
    let mut ef = EfState::new();

    for step in 0..config.iters {
        let (x, y) = d.batch(step, config.batch);
        let logits = model.forward(&x, true);
        let (loss, grad) = softmax_cross_entropy(&logits, &y);
        model.backward(&grad);
        if config.opt == Opt::Kfac {
            kfac.step(&mut model);
        }

        // The lossy communication path: compress + decompress every
        // trainable layer's (preconditioned) gradient.
        let compressor: Option<Box<dyn Compressor>> = match method {
            Method::None => None,
            Method::Fixed(_) | Method::FixedEf(_) => None, // borrowed below
            Method::Adaptive(sched) => Some(Box::new(Compso::new(
                sched.strategy_at(step).to_config(RoundingMode::Stochastic),
            ))),
        };
        let active: Option<(&dyn Compressor, bool)> = match (method, &compressor) {
            (Method::Fixed(c), _) => Some((c.as_ref(), false)),
            (Method::FixedEf(c), _) => Some((c.as_ref(), true)),
            (Method::Adaptive(_), Some(c)) => Some((c.as_ref(), false)),
            _ => None,
        };
        if let Some((c, use_ef)) = active {
            for idx in model.trainable_indices() {
                let grad = model.layer(idx).grads().expect("grad").clone();
                let (decoded, wire) = if use_ef {
                    ef.roundtrip(idx, &grad, c, &mut comp_rng)
                } else {
                    let bytes = c.compress(grad.as_slice(), &mut comp_rng);
                    let back = c.decompress(&bytes).expect("own stream decodes");
                    (
                        Matrix::from_vec(grad.rows(), grad.cols(), back),
                        bytes.len(),
                    )
                };
                ratio_sum += (grad.len() * 4) as f64 / wire.max(1) as f64;
                ratio_n += 1;
                model.layer_mut(idx).set_grads(decoded);
            }
        }

        let lr = schedule.lr_at(step);
        model.update_params(|p, g| p.axpy(-lr, g));

        if step % 10 == 9 || step + 1 == config.iters {
            let logits = model.forward(&d.x, false);
            let acc = accuracy(&logits, &d.y);
            curve.push(CurvePoint {
                iter: step + 1,
                loss: loss as f64,
                accuracy: acc,
            });
        }
    }

    let last = curve.last().copied().unwrap();
    ProxyRun {
        curve,
        final_accuracy: last.accuracy,
        final_loss: last.loss,
        mean_ratio: if ratio_n > 0 {
            ratio_sum / ratio_n as f64
        } else {
            1.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compso_core::baselines::Qsgd;
    use compso_core::CompsoConfig;

    #[test]
    fn kfac_baseline_converges_on_all_tasks() {
        for task in [Task::Blobs, Task::Spirals, Task::Images, Task::Tokens] {
            let cfg = ProxyConfig::standard(task, Opt::Kfac);
            let run = run(&cfg, &Method::None);
            let floor = match task {
                Task::Blobs => 0.93,
                Task::Spirals => 0.95,
                Task::Images => 0.9,
                Task::Tokens => 0.3,
            };
            assert!(
                run.final_accuracy > floor,
                "{task:?}: {}",
                run.final_accuracy
            );
        }
    }

    #[test]
    fn compso_adaptive_tracks_baseline_on_blobs() {
        let cfg = ProxyConfig::standard(Task::Blobs, Opt::Kfac);
        let base = run(&cfg, &Method::None);
        let compso = run(
            &cfg,
            &Method::Adaptive(BoundSchedule::step_paper(cfg.iters / 2)),
        );
        assert!(
            compso.final_accuracy > base.final_accuracy - 0.03,
            "compso {} vs base {}",
            compso.final_accuracy,
            base.final_accuracy
        );
        // Proxy layers are a few hundred elements, so fixed header costs
        // cap the achievable ratio well below the paper-scale 20x.
        assert!(compso.mean_ratio > 2.0, "ratio {}", compso.mean_ratio);
    }

    #[test]
    fn fixed_compressor_path_works() {
        let cfg = ProxyConfig::standard(Task::Blobs, Opt::Kfac);
        let qsgd = run(&cfg, &Method::Fixed(Box::new(Qsgd::bits8())));
        assert!(qsgd.final_accuracy > 0.9, "{}", qsgd.final_accuracy);
    }

    #[test]
    fn aggressive_everywhere_hurts_more_than_adaptive() {
        // Keeping the loose filter bound for the whole run (no switch to
        // conservative mode) should do no better than the adaptive
        // schedule — the motivation for iteration-wise adaptation.
        let cfg = ProxyConfig::standard(Task::Blobs, Opt::Kfac);
        let adaptive = run(
            &cfg,
            &Method::Adaptive(BoundSchedule::step_paper(cfg.iters / 2)),
        );
        let always_aggressive = run(
            &cfg,
            &Method::Fixed(Box::new(Compso::new(CompsoConfig::aggressive(4e-2)))),
        );
        assert!(
            adaptive.final_accuracy >= always_aggressive.final_accuracy - 0.02,
            "adaptive {} vs always-aggressive {}",
            adaptive.final_accuracy,
            always_aggressive.final_accuracy
        );
    }
}
