//! # compso-bench
//!
//! Shared harness utilities plus one binary per table/figure of the
//! paper's evaluation section (see DESIGN.md §4 for the index):
//!
//! ```text
//! cargo run -p compso-bench --release --bin fig1   # time breakdown
//! cargo run -p compso-bench --release --bin fig3   # CR vs accuracy
//! cargo run -p compso-bench --release --bin fig5   # RN/SR error shapes
//! cargo run -p compso-bench --release --bin fig6   # convergence curves
//! cargo run -p compso-bench --release --bin tab1   # fine-tune quality
//! cargo run -p compso-bench --release --bin fig7   # comm speedup
//! cargo run -p compso-bench --release --bin tab2   # encoder comparison
//! cargo run -p compso-bench --release --bin fig8   # codec throughput
//! cargo run -p compso-bench --release --bin fig9   # end-to-end gain
//! cargo run -p compso-bench --release --bin ablations
//! ```
//!
//! Criterion microbenchmarks live in `benches/`.

pub mod proxy;

use compso_core::perfmodel::CompressorProfile;
use compso_core::synthetic::{generate, GradientProfile};
use compso_core::Compressor;
use compso_dnn::ModelSpec;
use compso_tensor::Rng;
use std::time::Instant;

/// Default element budget for spec-shaped gradient samples. Ratio and
/// throughput are size-stable well below full model scale; 8M elements
/// keeps every harness run in seconds.
pub const SAMPLE_BUDGET: usize = 8 << 20;

/// The gradient value profile matching a paper model: transformers have
/// sparser, wider-tailed K-FAC gradients than CNNs (Fig. 3's higher
/// BERT ratios).
pub fn profile_for(spec: &ModelSpec) -> GradientProfile {
    match spec.name {
        "BERT-large" | "GPT-neo-125M" => GradientProfile::transformer(),
        _ => GradientProfile::kfac(),
    }
}

/// Generates per-layer synthetic K-FAC gradients shaped like `spec`,
/// scaled down so the total stays within `budget` elements (layer size
/// ratios preserved).
pub fn spec_gradients(spec: &ModelSpec, budget: usize, seed: u64) -> Vec<Vec<f32>> {
    let total = spec.total_grad_elems().max(1);
    let scale = (total as f64 / budget as f64).max(1.0);
    let profile = profile_for(spec);
    let mut rng = Rng::new(seed ^ 0xBEEF);
    spec.layers
        .iter()
        .enumerate()
        .map(|(i, l)| {
            let n = ((l.grad_elems() as f64 / scale).round() as usize).max(16);
            let jitter = 10.0f32.powf(rng.range_f32(-0.7, 0.7));
            let p = GradientProfile {
                scale: profile.scale * jitter,
                ..profile
            };
            generate(n, seed.wrapping_add(i as u64 * 104_729), p)
        })
        .collect()
}

/// A flattened single-buffer sample of `spec`'s gradients.
pub fn spec_gradient_flat(spec: &ModelSpec, budget: usize, seed: u64) -> Vec<f32> {
    spec_gradients(spec, budget, seed).concat()
}

/// Measures a compressor's ratio and throughput on per-layer data,
/// producing the profile the performance model consumes.
pub fn measure_profile(
    compressor: &dyn Compressor,
    layers: &[Vec<f32>],
    seed: u64,
) -> CompressorProfile {
    let mut rng = Rng::new(seed);
    let mut orig = 0u64;
    let mut comp = 0u64;
    let mut ct = 0.0f64;
    let mut dt = 0.0f64;
    for layer in layers {
        let t0 = Instant::now();
        let bytes = compressor.compress(layer, &mut rng);
        ct += t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let back = compressor
            .decompress(&bytes)
            .expect("self-compressed stream must decode");
        dt += t1.elapsed().as_secs_f64();
        assert_eq!(back.len(), layer.len());
        orig += layer.len() as u64 * 4;
        comp += bytes.len() as u64;
    }
    CompressorProfile {
        ratio: orig as f64 / comp.max(1) as f64,
        compress_tput: orig as f64 / ct.max(1e-9),
        decompress_tput: comp as f64 / dt.max(1e-9),
    }
}

/// Measures this host's effective single-stream memory bandwidth
/// (bytes/s) with a large copy — the normalizer for translating measured
/// CPU codec throughput to the simulated A100.
pub fn measure_membw() -> f64 {
    let n = 64 << 20;
    let src = vec![1u8; n];
    let mut dst = vec![0u8; n];
    // Warm-up + 3 timed passes.
    dst.copy_from_slice(&src);
    let t0 = Instant::now();
    for _ in 0..3 {
        dst.copy_from_slice(&src);
        std::hint::black_box(&dst);
    }
    // A copy moves 2n bytes per pass.
    (2 * 3 * n) as f64 / t0.elapsed().as_secs_f64()
}

/// Translates a CPU-measured codec profile to the simulated GPU platform.
///
/// §4.5 establishes that the (de)compression kernels are memory-bound
/// with O(1) arithmetic intensity, so their throughput scales with
/// memory bandwidth; the simulator therefore scales measured CPU
/// throughput by `gpu_membw / host_membw` (ratio is unchanged — it is a
/// property of the data, not the machine).
pub fn gpu_profile(p: &CompressorProfile, gpu_membw: f64, host_membw: f64) -> CompressorProfile {
    let scale = (gpu_membw / host_membw).max(1.0);
    CompressorProfile {
        ratio: p.ratio,
        compress_tput: p.compress_tput * scale,
        decompress_tput: p.decompress_tput * scale,
    }
}

/// Prints a markdown-style table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Prints a markdown-style table header with separator.
pub fn header(cells: &[&str]) {
    println!("| {} |", cells.join(" | "));
    println!(
        "|{}|",
        cells.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

/// Formats a float with fixed precision.
pub fn f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

/// Formats a throughput in GB/s.
pub fn gbps(bytes_per_sec: f64) -> String {
    format!("{:.2}", bytes_per_sec / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use compso_core::{Compso, CompsoConfig, NoCompression};

    #[test]
    fn spec_gradients_respect_budget_and_shape() {
        let spec = ModelSpec::bert_large();
        let layers = spec_gradients(&spec, 1 << 20, 1);
        assert_eq!(layers.len(), spec.layers.len());
        let total: usize = layers.iter().map(|l| l.len()).sum();
        assert!(total <= (1 << 20) + spec.layers.len() * 16, "total {total}");
        // Size ordering preserved: the FFN layers stay the biggest.
        let max = layers.iter().map(|l| l.len()).max().unwrap();
        let ffn_in = layers[4].len(); // encoder.0.ffn.in
        assert!(ffn_in >= max / 2);
    }

    #[test]
    fn measure_profile_no_compression_is_ratio_one() {
        let layers = spec_gradients(&ModelSpec::resnet50(), 1 << 18, 2);
        let p = measure_profile(&NoCompression, &layers, 3);
        assert!(p.ratio > 0.9 && p.ratio <= 1.0, "ratio {}", p.ratio);
        assert!(p.compress_tput > 1e6);
    }

    #[test]
    fn measure_profile_compso_beats_ten_x() {
        let layers = spec_gradients(&ModelSpec::resnet50(), 1 << 20, 4);
        let compso = Compso::new(CompsoConfig::aggressive(4e-3));
        let p = measure_profile(&compso, &layers, 5);
        assert!(p.ratio > 10.0, "ratio {}", p.ratio);
    }
}
