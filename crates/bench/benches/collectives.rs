//! Criterion: in-process ring collectives across rank counts and sizes.

use compso_comm::collectives::{allgather_var, allreduce_sum};
use compso_comm::run_ranks;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_allreduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("allreduce");
    group.sample_size(10);
    for ranks in [2usize, 4, 8] {
        for elems in [1usize << 12, 1 << 16] {
            group.throughput(Throughput::Bytes((elems * 4 * ranks) as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("{ranks}ranks"), elems),
                &(ranks, elems),
                |b, &(ranks, elems)| {
                    b.iter(|| {
                        run_ranks(ranks, |comm| {
                            let mut data = vec![comm.rank() as f32; elems];
                            allreduce_sum(comm, &mut data).expect("allreduce");
                            data[0]
                        })
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_allgather_var(c: &mut Criterion) {
    let mut group = c.benchmark_group("allgather-var");
    group.sample_size(10);
    for ranks in [2usize, 4, 8] {
        let bytes = 64 * 1024;
        group.throughput(Throughput::Bytes((bytes * ranks) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(ranks),
            &(ranks, bytes),
            |b, &(ranks, bytes)| {
                b.iter(|| {
                    run_ranks(ranks, |comm| {
                        let mine = vec![comm.rank() as u8; bytes];
                        allgather_var(comm, mine).expect("allgather").len()
                    })
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_allreduce, bench_allgather_var);
criterion_main!(benches);
