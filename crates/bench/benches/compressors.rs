//! Criterion: whole-compressor throughput (the Fig. 8 microbenchmark).

use compso_core::baselines::{CocktailSgd, Qsgd, Sz};
use compso_core::synthetic::{generate, GradientProfile};
use compso_core::{Compressor, Compso, CompsoConfig};
use compso_tensor::Rng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const ELEMS: usize = 1 << 20; // 4 MiB of f32

fn compressors() -> Vec<(&'static str, Box<dyn Compressor>)> {
    vec![
        (
            "compso-aggressive",
            Box::new(Compso::new(CompsoConfig::aggressive(4e-3))),
        ),
        (
            "compso-conservative",
            Box::new(Compso::new(CompsoConfig::conservative(4e-3))),
        ),
        ("qsgd-8bit", Box::new(Qsgd::bits8())),
        ("qsgd-4bit", Box::new(Qsgd::bits4())),
        ("sz-4e-3", Box::new(Sz::new(4e-3))),
        ("cocktail", Box::new(CocktailSgd::standard())),
    ]
}

fn bench_compress(c: &mut Criterion) {
    let data = generate(ELEMS, 1, GradientProfile::kfac());
    let mut group = c.benchmark_group("compress");
    group.throughput(Throughput::Bytes((ELEMS * 4) as u64));
    group.sample_size(10);
    for (name, comp) in compressors() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &data, |b, data| {
            let mut rng = Rng::new(2);
            b.iter(|| comp.compress(data, &mut rng));
        });
    }
    group.finish();
}

fn bench_decompress(c: &mut Criterion) {
    let data = generate(ELEMS, 3, GradientProfile::kfac());
    let mut group = c.benchmark_group("decompress");
    group.throughput(Throughput::Bytes((ELEMS * 4) as u64));
    group.sample_size(10);
    for (name, comp) in compressors() {
        let mut rng = Rng::new(4);
        let bytes = comp.compress(&data, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(name), &bytes, |b, bytes| {
            b.iter(|| comp.decompress(bytes).unwrap());
        });
    }
    group.finish();
}

/// The no-op recorder acceptance check: compressing 16 MiB through the
/// recorded entry point with a disabled recorder must cost the same as
/// the plain path (every record call is one `Option` branch).
fn bench_noop_recorder_overhead(c: &mut Criterion) {
    let elems = 4 << 20; // 16 MiB of f32
    let data = generate(elems, 5, GradientProfile::kfac());
    let compso = Compso::new(CompsoConfig::aggressive(4e-3));
    let rec = compso_obs::Recorder::disabled();
    let mut group = c.benchmark_group("noop-recorder-16MiB");
    group.throughput(Throughput::Bytes((elems * 4) as u64));
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::from_parameter("plain"), &data, |b, data| {
        let mut rng = Rng::new(6);
        b.iter(|| compso.compress_layers(&[data], &mut rng));
    });
    group.bench_with_input(BenchmarkId::from_parameter("recorded"), &data, |b, data| {
        let mut rng = Rng::new(6);
        b.iter(|| compso.compress_layers_recorded(&[data], &mut rng, &rec));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_compress,
    bench_decompress,
    bench_noop_recorder_overhead
);
criterion_main!(benches);
