//! Criterion: the §4.5 kernel-structure ablations — fusion, extrema
//! reduction, chunk size.

use compso_core::kernels::{compress_chunked, decompress_chunked, KernelConfig, LayerSchedule};
use compso_core::synthetic::{generate, GradientProfile};
use compso_core::{Codec, Compso, CompsoConfig};
use compso_tensor::reduce::{minmax_flat, minmax_hierarchical};
use compso_tensor::Rng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const ELEMS: usize = 4 << 20; // 16 MiB of f32

fn bench_fusion(c: &mut Criterion) {
    let data = generate(ELEMS, 1, GradientProfile::kfac());
    // Bitcomp keeps the codec stage cheap so kernel structure dominates.
    let cfg = CompsoConfig::aggressive(4e-3).with_codec(Codec::Bitcomp);
    let mut group = c.benchmark_group("kernel-fusion");
    group.throughput(Throughput::Bytes((ELEMS * 4) as u64));
    group.sample_size(10);
    for (name, fused) in [("fused", true), ("staged", false)] {
        let kc = KernelConfig {
            fused,
            ..KernelConfig::default()
        };
        let schedule = LayerSchedule::build(&[data.len()], kc.chunk_elems);
        group.bench_with_input(BenchmarkId::from_parameter(name), &data, |b, data| {
            let rng = Rng::new(2);
            b.iter(|| compress_chunked(&[data], &cfg, &kc, &schedule, &rng));
        });
    }
    group.finish();
}

fn bench_extrema(c: &mut Criterion) {
    let data = generate(16 << 20, 3, GradientProfile::kfac());
    let mut group = c.benchmark_group("extrema-reduction");
    group.throughput(Throughput::Bytes((data.len() * 4) as u64));
    group.sample_size(10);
    group.bench_function("flat-serial", |b| b.iter(|| minmax_flat(&data)));
    group.bench_function("hierarchical-parallel", |b| {
        b.iter(|| minmax_hierarchical(&data))
    });
    group.finish();
}

fn bench_chunk_size(c: &mut Criterion) {
    let data = generate(ELEMS, 4, GradientProfile::kfac());
    let cfg = CompsoConfig::aggressive(4e-3).with_codec(Codec::Bitcomp);
    let mut group = c.benchmark_group("chunk-size");
    group.throughput(Throughput::Bytes((ELEMS * 4) as u64));
    group.sample_size(10);
    for chunk in [4096usize, 16 * 1024, 64 * 1024, 256 * 1024] {
        let kc = KernelConfig {
            chunk_elems: chunk,
            ..KernelConfig::default()
        };
        let schedule = LayerSchedule::build(&[data.len()], chunk);
        group.bench_with_input(BenchmarkId::from_parameter(chunk), &data, |b, data| {
            let rng = Rng::new(5);
            b.iter(|| compress_chunked(&[data], &cfg, &kc, &schedule, &rng));
        });
    }
    group.finish();
}

/// End-to-end serial (`Compso`) vs chunked-parallel (`compress_chunked` +
/// `decompress_chunked`) round-trip at 16 MiB — the acceptance number for
/// the parallel hot path. Both sides run the full pipeline with the
/// default codec so the comparison includes entropy coding. The >=2x
/// chunked-over-serial expectation only holds on hosts with >=4 cores;
/// on smaller machines this group still reports honest numbers.
fn bench_e2e_serial_vs_chunked(c: &mut Criterion) {
    let data = generate(ELEMS, 7, GradientProfile::kfac());
    let cfg = CompsoConfig::aggressive(4e-3);
    let mut group = c.benchmark_group("e2e-serial-vs-chunked");
    group.throughput(Throughput::Bytes((ELEMS * 4) as u64));
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::from_parameter("serial"), &data, |b, data| {
        let compso = Compso::new(cfg);
        b.iter(|| {
            let mut rng = Rng::new(11);
            let bytes = compso.compress_layers(&[data], &mut rng);
            compso.decompress_layers(&bytes).expect("roundtrip")
        });
    });
    group.bench_with_input(BenchmarkId::from_parameter("chunked"), &data, |b, data| {
        let kc = KernelConfig::default();
        let schedule = LayerSchedule::build(&[data.len()], kc.chunk_elems);
        b.iter(|| {
            let rng = Rng::new(11);
            let bytes = compress_chunked(&[data], &cfg, &kc, &schedule, &rng);
            decompress_chunked(&bytes).expect("roundtrip")
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fusion,
    bench_extrema,
    bench_chunk_size,
    bench_e2e_serial_vs_chunked
);
criterion_main!(benches);
