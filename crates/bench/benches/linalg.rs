//! Criterion: the linear-algebra kernels K-FAC leans on.

use compso_tensor::{sym_eig, Matrix, Rng};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(10);
    for n in [64usize, 128, 256] {
        let mut rng = Rng::new(1);
        let a = Matrix::random_normal(n, n, &mut rng);
        let b = Matrix::random_normal(n, n, &mut rng);
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &(a, b), |bench, (a, b)| {
            bench.iter(|| a.matmul(b));
        });
    }
    group.finish();
}

fn bench_covariance(c: &mut Criterion) {
    // The per-step K-FAC statistics product: (batch × positions) × dim.
    let mut group = c.benchmark_group("covariance-tmatmul");
    group.sample_size(10);
    for dim in [64usize, 256] {
        let mut rng = Rng::new(2);
        let s = Matrix::random_normal(1024, dim, &mut rng);
        group.throughput(Throughput::Elements((1024 * dim * dim) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(dim), &s, |bench, s| {
            bench.iter(|| s.t_matmul(s));
        });
    }
    group.finish();
}

fn bench_sym_eig(c: &mut Criterion) {
    let mut group = c.benchmark_group("sym-eig");
    group.sample_size(10);
    for n in [32usize, 64, 128] {
        let mut rng = Rng::new(3);
        let b = Matrix::random_normal(n, n, &mut rng);
        let mut spd = b.t_matmul(&b);
        spd.add_diag(0.1);
        spd.symmetrize();
        group.bench_with_input(BenchmarkId::from_parameter(n), &spd, |bench, spd| {
            bench.iter(|| sym_eig(spd));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matmul, bench_covariance, bench_sym_eig);
criterion_main!(benches);
