//! Criterion: lossless-encoder throughput on quantized gradient bytes
//! (the Table 2 microbenchmark).

use compso_core::quantize::Quantizer;
use compso_core::synthetic::{generate, GradientProfile};
use compso_core::{Codec, RoundingMode};
use compso_tensor::Rng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const ELEMS: usize = 1 << 20;

/// The byte stream COMPSO's encoder stage sees: packed SR codes.
fn encoder_input() -> Vec<u8> {
    let data = generate(ELEMS, 1, GradientProfile::kfac());
    let mut rng = Rng::new(2);
    let quant = Quantizer::relative(4e-3, RoundingMode::Stochastic).quantize(&data, &mut rng);
    compso_core::bitpack::pack(&quant.codes, quant.bits())
}

fn bench_encode(c: &mut Criterion) {
    let input = encoder_input();
    let mut group = c.benchmark_group("encode");
    group.throughput(Throughput::Bytes(input.len() as u64));
    group.sample_size(10);
    for codec in Codec::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(codec.name()),
            &input,
            |b, input| {
                b.iter(|| codec.encode(input));
            },
        );
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let input = encoder_input();
    let mut group = c.benchmark_group("decode");
    group.sample_size(10);
    for codec in Codec::all() {
        let enc = codec.encode(&input);
        group.throughput(Throughput::Bytes(enc.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(codec.name()), &enc, |b, enc| {
            b.iter(|| codec.decode(enc).unwrap());
        });
    }
    group.finish();
}

fn bench_block_parallel(c: &mut Criterion) {
    let input = encoder_input();
    let mut group = c.benchmark_group("encode-block-parallel");
    group.throughput(Throughput::Bytes(input.len() as u64));
    group.sample_size(10);
    for codec in [Codec::Ans, Codec::Bitcomp, Codec::Zstd] {
        group.bench_with_input(
            BenchmarkId::from_parameter(codec.name()),
            &input,
            |b, input| {
                b.iter(|| codec.encode_blocks(input, 256 * 1024));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode, bench_block_parallel);
criterion_main!(benches);
