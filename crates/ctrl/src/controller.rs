//! The online controller: measured signals in, decisions out, every
//! action mirrored into registered `ctrl/*` instruments and a bounded
//! decision trace.

use crate::policy::{ControlConfig, Phase, Setting};
use compso_obs::{names, ActiveSetting, Recorder};

/// Upper bound on the retained decision trace; runs long enough to hit
/// it still reconcile via the counters (`decisions` keeps counting).
const TRACE_CAP: usize = 65_536;

/// Measured signals for one observed step (or one layer-step when the
/// controller runs per layer). All fields are *measurements* — the
/// controller never reads clocks or randomness itself, which is what
/// makes its decision trace a pure function of the signal sequence.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Signals {
    /// Raw bytes entering the compressor this step.
    pub bytes_in: u64,
    /// Wire bytes leaving it (0 ⇒ no ratio measurement this step).
    pub bytes_out: u64,
    /// Measured compress+transfer wall for the step, nanoseconds
    /// (0 ⇒ no throughput measurement this step).
    pub wall_ns: u64,
    /// IterationModel-predicted wall for the active setting, nanoseconds
    /// (0 ⇒ no prediction available).
    pub predicted_wall_ns: u64,
    /// Measured relative compression error (‖decoded − original‖ ÷
    /// ‖original‖) or the compressor's error-feedback residual norm —
    /// the divergence signal.
    pub error_rel: f64,
}

/// Why a decision came out the way it did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Reason {
    /// Warmup phase, holding the identity.
    WarmupHold,
    /// Warmup ended; first compressed setting installed.
    WarmupExit,
    /// Steady phase, no change.
    Hold,
    /// Divergence detected; fidelity ladder engaged.
    BackoffEnter,
    /// Pinned to the backoff rung, waiting out `backoff_steps`.
    BackoffHold,
    /// Backoff elapsed; steady selection resumed.
    BackoffExit,
    /// Exploration probe of a not-yet-measured candidate.
    Explore,
    /// Sustained-margin switch within the same family.
    SettingSwitch,
    /// Sustained-margin switch across families.
    FamilySwitch,
}

/// One controller decision: what was chosen, when, and why.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Decision {
    /// 0-based observed-step index.
    pub step: u64,
    /// The setting in force *after* this decision.
    pub setting: Setting,
    /// Phase after this decision.
    pub phase: Phase,
    /// Whether the setting changed.
    pub switched: bool,
    /// The rule that produced it.
    pub reason: Reason,
}

/// Running estimate of one candidate's CR×throughput product.
#[derive(Clone, Copy, Debug)]
struct Estimate {
    cr: f64,
    tput: f64,
    observed: bool,
}

impl Estimate {
    fn product(&self) -> f64 {
        self.cr * self.tput
    }
}

/// The per-layer/per-step adaptive compression controller.
pub struct Controller {
    cfg: ControlConfig,
    estimates: Vec<Estimate>,
    /// Index into `cfg.candidates` of the steady-state choice.
    active: usize,
    /// Overrides the candidate setting during `Backoff`.
    override_setting: Option<Setting>,
    phase: Phase,
    step: u64,
    evals: u64,
    losing: u32,
    backoff_until: u64,
    trace: Vec<Decision>,
    dropped_decisions: u64,
}

impl Controller {
    /// Builds a controller; panics if the config has no candidates.
    pub fn new(cfg: ControlConfig) -> Self {
        assert!(
            !cfg.candidates.is_empty(),
            "controller needs at least one candidate"
        );
        let estimates = cfg
            .candidates
            .iter()
            .map(|c| Estimate {
                cr: c.prior_cr,
                tput: c.prior_tput,
                observed: false,
            })
            .collect();
        Controller {
            estimates,
            active: 0,
            override_setting: None,
            phase: Phase::Warmup,
            step: 0,
            evals: 0,
            losing: 0,
            backoff_until: 0,
            trace: Vec::new(),
            dropped_decisions: 0,
            cfg,
        }
    }

    /// The setting currently in force.
    pub fn active_setting(&self) -> Setting {
        match self.phase {
            Phase::Warmup => Setting::uncompressed(),
            Phase::Backoff => self
                .override_setting
                .unwrap_or(self.cfg.candidates[self.active].setting),
            Phase::Steady => self.cfg.candidates[self.active].setting,
        }
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// The retained decision trace (capped at an internal bound; see
    /// [`Controller::dropped_decisions`]).
    pub fn trace(&self) -> &[Decision] {
        &self.trace
    }

    /// Decisions evicted from the trace after it hit its cap (0 in any
    /// normal run); counters keep counting regardless.
    pub fn dropped_decisions(&self) -> u64 {
        self.dropped_decisions
    }

    /// The `ControlBlock.active` descriptor for the current state.
    pub fn describe(&self) -> ActiveSetting {
        let s = self.active_setting();
        ActiveSetting {
            family: s.family.name().to_string(),
            bits: s.bits,
            threshold: s.threshold,
            rank: s.rank,
            phase: self.phase.name().to_string(),
        }
    }

    /// Checks the decision trace against a (cumulative) set of `ctrl/*`
    /// counters: every trace-derived tally must equal its counter.
    /// Returns the first discrepancy as `(what, trace, counter)`.
    pub fn reconcile(&self, rec: &Recorder) -> Result<(), (&'static str, u64, u64)> {
        let tally =
            |f: &dyn Fn(&Decision) -> bool| self.trace.iter().filter(|d| f(d)).count() as u64;
        let checks: [(&'static str, u64, u64); 5] = [
            (
                "decisions",
                self.trace.len() as u64 + self.dropped_decisions,
                rec.counter(names::CTRL_DECISIONS),
            ),
            (
                "switches",
                tally(&|d| d.switched),
                rec.counter(names::CTRL_SWITCHES),
            ),
            (
                "warmup_exits",
                tally(&|d| d.reason == Reason::WarmupExit),
                rec.counter(names::CTRL_WARMUP_EXITS),
            ),
            (
                "backoffs",
                tally(&|d| d.reason == Reason::BackoffEnter),
                rec.counter(names::CTRL_BACKOFFS),
            ),
            (
                "warmup_steps",
                tally(&|d| d.reason == Reason::WarmupHold),
                rec.counter(names::CTRL_WARMUP_STEPS),
            ),
        ];
        for (what, from_trace, from_counter) in checks {
            if self.dropped_decisions == 0 && from_trace != from_counter {
                return Err((what, from_trace, from_counter));
            }
        }
        Ok(())
    }

    /// Feeds one step's measured signals and returns the decision. The
    /// span/counter side effects land in `rec`; pass
    /// `Recorder::disabled()` to run uninstrumented.
    pub fn observe(&mut self, sig: &Signals, rec: &Recorder) -> Decision {
        let _span = rec.span(names::CTRL_DECIDE);
        rec.incr(names::CTRL_DECISIONS);
        let step = self.step;
        self.step += 1;

        let before = self.active_setting();

        // Phase 1: warmup.
        if self.phase == Phase::Warmup {
            if step < self.cfg.warmup_steps {
                rec.incr(names::CTRL_WARMUP_STEPS);
                return self.push(rec, step, before, Reason::WarmupHold);
            }
            // Exit to the best prior product (ties → lowest index).
            self.phase = Phase::Steady;
            self.active = self.argmax_product();
            rec.incr(names::CTRL_WARMUP_EXITS);
            return self.push(rec, step, before, Reason::WarmupExit);
        }

        // Measurement update for the active candidate (only outside
        // backoff overrides: rung settings aren't candidates).
        let mismatch = sig.predicted_wall_ns > 0
            && sig.wall_ns as f64 > sig.predicted_wall_ns as f64 * self.cfg.model_mistrust;
        if mismatch {
            rec.incr(names::CTRL_MODEL_MISMATCH);
        }
        if self.phase == Phase::Steady {
            let est = &mut self.estimates[self.active];
            if sig.bytes_out > 0 {
                let cr = sig.bytes_in as f64 / sig.bytes_out as f64;
                est.cr = if est.observed {
                    est.cr + self.cfg.ema * (cr - est.cr)
                } else {
                    cr
                };
            }
            if sig.wall_ns > 0 && sig.bytes_in > 0 {
                let tput = sig.bytes_in as f64 / sig.wall_ns as f64;
                est.tput = if est.observed {
                    est.tput + self.cfg.ema * (tput - est.tput)
                } else {
                    tput
                };
            }
            if sig.bytes_out > 0 || sig.wall_ns > 0 {
                est.observed = true;
            }
        }

        // Divergence: engage the fidelity ladder.
        if sig.error_rel > self.cfg.divergence_ceiling {
            rec.incr(names::CTRL_EF_DIVERGENCE);
            if self.phase == Phase::Steady {
                let rung = before.higher_fidelity();
                // Distrust the offender so re-selection won't bounce
                // straight back to it.
                let est = &mut self.estimates[self.active];
                est.cr *= self.cfg.divergence_penalty;
                self.phase = Phase::Backoff;
                self.override_setting = Some(rung);
                self.backoff_until = step + self.cfg.backoff_steps;
                rec.incr(names::CTRL_BACKOFFS);
                return self.push(rec, step, before, Reason::BackoffEnter);
            }
            // Already backing off and still diverging: extend the hold.
            self.backoff_until = step + self.cfg.backoff_steps;
        }

        // Phase 3: pinned to the backoff rung.
        if self.phase == Phase::Backoff {
            if step < self.backoff_until {
                return self.push(rec, step, before, Reason::BackoffHold);
            }
            self.phase = Phase::Steady;
            self.override_setting = None;
            self.active = self.argmax_product();
            self.losing = 0;
            return self.push(rec, step, before, Reason::BackoffExit);
        }

        // Phase 2: steady-state evaluation on the eval cadence (model
        // mismatch forces one immediately).
        let due = self.cfg.eval_every > 0 && step.is_multiple_of(self.cfg.eval_every);
        if !(due || mismatch) {
            return self.push(rec, step, before, Reason::Hold);
        }
        self.evals += 1;

        // Exploration: deterministically probe unobserved candidates so
        // priors get replaced by measurements.
        if self.cfg.explore_every > 0
            && (self.evals + self.cfg.seed).is_multiple_of(self.cfg.explore_every)
        {
            if let Some(idx) = self
                .estimates
                .iter()
                .position(|e| !e.observed)
                .filter(|&idx| idx != self.active)
            {
                self.active = idx;
                self.losing = 0;
                return self.push(rec, step, before, Reason::Explore);
            }
        }

        // Exploitation: sustained-margin switch.
        let best = self.argmax_product();
        let margin_beaten = best != self.active
            && self.estimates[best].product()
                > self.estimates[self.active].product() * (1.0 + self.cfg.switch_margin);
        if margin_beaten {
            self.losing += 1;
        } else {
            self.losing = 0;
        }
        if self.losing >= self.cfg.patience {
            self.losing = 0;
            let reason = if self.cfg.candidates[best].setting.family == before.family {
                Reason::SettingSwitch
            } else {
                Reason::FamilySwitch
            };
            self.active = best;
            return self.push(rec, step, before, reason);
        }
        self.push(rec, step, before, Reason::Hold)
    }

    /// Index of the best estimated CR×throughput product, ties broken by
    /// the lowest index (strict `>` keeps it deterministic).
    fn argmax_product(&self) -> usize {
        let mut best = 0usize;
        for (i, e) in self.estimates.iter().enumerate() {
            if e.product() > self.estimates[best].product() {
                best = i;
            }
        }
        best
    }

    /// Finalizes a decision: derives `switched` from the before/after
    /// settings, mirrors it into the counters, appends to the trace.
    fn push(&mut self, rec: &Recorder, step: u64, before: Setting, reason: Reason) -> Decision {
        let after = self.active_setting();
        let switched = after != before;
        if switched {
            rec.incr(names::CTRL_SWITCHES);
            if after.family != before.family {
                rec.incr(names::CTRL_FAMILY_SWITCHES);
            }
        }
        let d = Decision {
            step,
            setting: after,
            phase: self.phase,
            switched,
            reason,
        };
        if self.trace.len() < TRACE_CAP {
            self.trace.push(d);
        } else {
            self.dropped_decisions += 1;
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Candidate, Family};

    fn cfg() -> ControlConfig {
        ControlConfig {
            warmup_steps: 4,
            eval_every: 2,
            patience: 2,
            switch_margin: 0.1,
            divergence_ceiling: 0.8,
            backoff_steps: 3,
            divergence_penalty: 0.5,
            model_mistrust: 1.5,
            ema: 0.5,
            explore_every: 0,
            seed: 0,
            candidates: vec![
                Candidate::new(Setting::compso(4e-3), 5.0, 1.0),
                Candidate::new(Setting::qsgd(8), 4.0, 1.0),
                Candidate::new(Setting::powersgd(4), 10.0, 1.0),
            ],
        }
    }

    fn quiet(bytes_out: u64, wall_ns: u64) -> Signals {
        Signals {
            bytes_in: 4000,
            bytes_out,
            wall_ns,
            predicted_wall_ns: 0,
            error_rel: 0.1,
        }
    }

    #[test]
    fn warmup_holds_then_exits_to_best_prior() {
        let rec = Recorder::enabled();
        let mut c = Controller::new(cfg());
        for i in 0..4 {
            let d = c.observe(&quiet(0, 0), &rec);
            assert_eq!(d.reason, Reason::WarmupHold, "step {i}");
            assert_eq!(d.setting, Setting::uncompressed());
            assert!(!d.switched);
        }
        let d = c.observe(&quiet(0, 0), &rec);
        assert_eq!(d.reason, Reason::WarmupExit);
        assert!(d.switched);
        // powersgd has the best prior product (10 × 1).
        assert_eq!(d.setting, Setting::powersgd(4));
        assert_eq!(rec.counter(names::CTRL_WARMUP_STEPS), 4);
        assert_eq!(rec.counter(names::CTRL_WARMUP_EXITS), 1);
        assert_eq!(rec.counter(names::CTRL_FAMILY_SWITCHES), 1);
        c.reconcile(&rec).unwrap();
    }

    #[test]
    fn measured_product_drop_switches_family_after_patience() {
        let rec = Recorder::enabled();
        let mut c = Controller::new(cfg());
        // Through warmup.
        for _ in 0..5 {
            c.observe(&quiet(0, 0), &rec);
        }
        assert_eq!(c.active_setting().family, Family::PowerSgd);
        // Active candidate measures terribly: CR 1.25 at slow walls →
        // product far below compso's prior 5. Patience is 2 evals; evals
        // happen on even steps.
        let mut switched_at = None;
        for i in 0..12 {
            let d = c.observe(&quiet(3200, 4000), &rec);
            if d.switched {
                switched_at = Some((i, d));
                break;
            }
        }
        let (_, d) = switched_at.expect("sustained loss must force a switch");
        assert_eq!(d.reason, Reason::FamilySwitch);
        assert_eq!(d.setting.family, Family::Compso);
        assert!(rec.counter(names::CTRL_FAMILY_SWITCHES) >= 2);
        c.reconcile(&rec).unwrap();
    }

    #[test]
    fn divergence_backs_off_up_the_ladder_and_returns() {
        let rec = Recorder::enabled();
        let mut c = Controller::new(cfg());
        for _ in 0..5 {
            c.observe(&quiet(0, 0), &rec);
        }
        assert_eq!(c.active_setting(), Setting::powersgd(4));
        // Divergence: error above the 0.8 ceiling. Signals keep measured
        // throughput at the priors' unit scale (4000 bytes / 4000 ns = 1)
        // so the CR estimate alone decides re-selection.
        let bad = Signals {
            error_rel: 0.95,
            ..quiet(400, 4000)
        };
        let d = c.observe(&bad, &rec);
        assert_eq!(d.reason, Reason::BackoffEnter);
        assert_eq!(d.setting, Setting::powersgd(8), "one rung up the ladder");
        assert_eq!(d.phase, Phase::Backoff);
        // Held for backoff_steps.
        let d = c.observe(&quiet(400, 4000), &rec);
        assert_eq!(d.reason, Reason::BackoffHold);
        let d = c.observe(&quiet(400, 4000), &rec);
        assert_eq!(d.reason, Reason::BackoffHold);
        let d = c.observe(&quiet(400, 4000), &rec);
        assert_eq!(d.reason, Reason::BackoffExit);
        assert_eq!(d.phase, Phase::Steady);
        // The offender's estimate was halved (10 → 5 ≤ compso's 5 prior;
        // ties break to the lower index, which is compso).
        assert_eq!(d.setting.family, Family::Compso);
        assert_eq!(rec.counter(names::CTRL_EF_DIVERGENCE), 1);
        assert_eq!(rec.counter(names::CTRL_BACKOFFS), 1);
        c.reconcile(&rec).unwrap();
    }

    #[test]
    fn model_mismatch_forces_off_cadence_eval() {
        let rec = Recorder::enabled();
        let mut c = Controller::new(cfg());
        for _ in 0..5 {
            c.observe(&quiet(0, 0), &rec);
        }
        // Odd steps don't evaluate… unless the model is mistrusted.
        let d = c.observe(
            &Signals {
                predicted_wall_ns: 100,
                wall_ns: 1000,
                ..quiet(3200, 1000)
            },
            &rec,
        );
        let _ = d;
        assert_eq!(rec.counter(names::CTRL_MODEL_MISMATCH), 1);
        c.reconcile(&rec).unwrap();
    }

    #[test]
    fn exploration_probes_unobserved_candidates() {
        let rec = Recorder::enabled();
        let mut cfg = cfg();
        cfg.explore_every = 1;
        let mut c = Controller::new(cfg);
        for _ in 0..5 {
            c.observe(&quiet(0, 0), &rec);
        }
        let mut explored = Vec::new();
        for _ in 0..20 {
            let d = c.observe(&quiet(800, 1000), &rec);
            if d.reason == Reason::Explore {
                explored.push(d.setting.family);
            }
        }
        assert!(
            !explored.is_empty(),
            "exploration cadence must fire with unobserved candidates"
        );
        c.reconcile(&rec).unwrap();
    }

    #[test]
    fn identical_signal_sequences_yield_identical_traces() {
        let script: Vec<Signals> = (0..64)
            .map(|i| Signals {
                bytes_in: 4000,
                bytes_out: 400 + (i * 37) % 900,
                wall_ns: 1000 + (i * 113) % 5000,
                predicted_wall_ns: 2500,
                error_rel: if i == 40 { 0.95 } else { 0.2 },
            })
            .collect();
        let run = || {
            let rec = Recorder::enabled();
            let mut c = Controller::new(ControlConfig {
                explore_every: 2,
                seed: 7,
                ..cfg()
            });
            for s in &script {
                c.observe(s, &rec);
            }
            c.reconcile(&rec).unwrap();
            c.trace().to_vec()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_candidates_panics() {
        let _ = Controller::new(ControlConfig {
            candidates: vec![],
            ..ControlConfig::default()
        });
    }
}
