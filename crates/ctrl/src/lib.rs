//! # compso-ctrl
//!
//! The adaptive compression control plane: an online, per-layer/per-step
//! controller that picks `{compressor family, quantization bits, filter
//! threshold, chunking}` from **measured** signals instead of a static
//! ahead-of-time choice. The adaptive-methods line (arXiv 2105.07829)
//! and the end-to-end-utility critique (arXiv 2407.01378) both show the
//! best operating point shifts with training phase, layer shape, and
//! wire bandwidth; everything a controller needs is already emitted by
//! `compso-obs` (achieved ratio, phase walls, resilience counters) and
//! the §4.4 IterationModel (predicted step walls).
//!
//! ## Policy state machine (DESIGN.md §15)
//!
//! ```text
//!            step < warmup_steps
//!   ┌────────┐ hold uncompressed  ┌────────┐  error_rel > ceiling  ┌─────────┐
//!   │ Warmup │ ─────────────────▶ │ Steady │ ────────────────────▶ │ Backoff │
//!   └────────┘   warmup_exit      └────────┘   +fidelity ladder    └─────────┘
//!                                   ▲  │ eval: argmax CR×tput          │
//!                                   │  └ switch on sustained margin    │
//!                                   └──────── backoff_steps elapsed ───┘
//! ```
//!
//! * **Warmup** holds the identity compressor while gradients are still
//!   violently rotating (the phase where lossy compression hurts most),
//!   then exits to the best prior candidate.
//! * **Steady** updates an EMA estimate of the active candidate's
//!   CR×throughput product from measured bytes/walls, deterministically
//!   probes unobserved candidates on the exploration cadence, and
//!   switches families when an alternative's product beats the active
//!   one by `switch_margin` for `patience` consecutive evaluations.
//! * **Backoff** reacts to error-feedback divergence (measured relative
//!   compression error above `divergence_ceiling`): the active setting
//!   is replaced by the next rung of its fidelity ladder for
//!   `backoff_steps`, the offender's estimate is penalized, and steady
//!   selection resumes afterwards.
//!
//! Every decision increments registered `ctrl/*` instruments and lands
//! in a bounded in-memory trace, so a run's decision log reconciles
//! exactly against its counters ([`Controller::reconcile`]); the
//! per-step [`ControlBlock`] in `StepReport` carries the same numbers.
//!
//! Determinism: [`Controller::observe`] is a pure function of
//! `(config, seed, signal sequence)` — no wall-clock reads, no map
//! iteration, ties broken by candidate index — so identical signals
//! yield identical decision traces at any world size, which is what
//! keeps controller-driven distributed runs bit-identical across
//! 1/2/4 ranks.

pub mod bank;
pub mod controller;
pub mod policy;

pub use bank::instantiate;
pub use controller::{Controller, Decision, Reason, Signals};
pub use policy::{Candidate, ControlConfig, Family, Phase, Setting};
