//! Policy vocabulary: compressor families, concrete settings, the
//! fidelity ladder, candidate priors, and the controller configuration.

/// The compressor families the controller can select between. `None` is
/// the warmup identity; the other three are structurally different
/// design points (error-bounded filter+SR, fixed-rate quantization,
/// low-rank factorization), which is what makes switching worthwhile.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Family {
    /// Identity (uncompressed) — warmup and last-resort fidelity.
    None,
    /// COMPSO filter + stochastic-rounding quantization (chunked path).
    Compso,
    /// QSGD fixed-rate quantization with Elias-gamma coding.
    Qsgd,
    /// PowerSGD rank-r low-rank power iteration.
    PowerSgd,
}

impl Family {
    /// Lowercase display name (also used in `ControlBlock.active`).
    pub fn name(&self) -> &'static str {
        match self {
            Family::None => "none",
            Family::Compso => "compso",
            Family::Qsgd => "qsgd",
            Family::PowerSgd => "powersgd",
        }
    }
}

/// One concrete operating point: a family plus its knobs. Unused knobs
/// stay zero so settings compare exactly.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Setting {
    /// Compressor family.
    pub family: Family,
    /// Quantization bit width (QSGD; 0 elsewhere).
    pub bits: u8,
    /// Filter/quantizer error bound (COMPSO; 0.0 elsewhere).
    pub threshold: f64,
    /// Factor rank (PowerSGD; 0 elsewhere).
    pub rank: u8,
}

impl Setting {
    /// The warmup identity setting.
    pub fn uncompressed() -> Self {
        Setting {
            family: Family::None,
            bits: 0,
            threshold: 0.0,
            rank: 0,
        }
    }

    /// COMPSO at error bound `threshold` (aggressive filter + SR).
    pub fn compso(threshold: f64) -> Self {
        Setting {
            family: Family::Compso,
            bits: 0,
            threshold,
            rank: 0,
        }
    }

    /// QSGD at `bits` bits per value.
    pub fn qsgd(bits: u8) -> Self {
        Setting {
            family: Family::Qsgd,
            bits,
            threshold: 0.0,
            rank: 0,
        }
    }

    /// PowerSGD at rank `rank`.
    pub fn powersgd(rank: u8) -> Self {
        Setting {
            family: Family::PowerSgd,
            bits: 0,
            threshold: 0.0,
            rank,
        }
    }

    /// The next rung up the fidelity ladder — what the controller backs
    /// off to when error feedback diverges under this setting. Each rung
    /// strictly lowers the expected compression error; the ladder
    /// terminates at the identity, which cannot diverge.
    pub fn higher_fidelity(&self) -> Setting {
        match self.family {
            Family::None => *self,
            // Quartering the error bound tightens both filter and
            // quantizer; below 1e-4 the ratio is gone, go uncompressed.
            Family::Compso => {
                if self.threshold > 1e-4 {
                    Setting::compso(self.threshold / 4.0)
                } else {
                    Setting::uncompressed()
                }
            }
            Family::Qsgd => {
                if self.bits < 8 {
                    Setting::qsgd(8)
                } else {
                    Setting::uncompressed()
                }
            }
            Family::PowerSgd => {
                if self.rank < 16 {
                    Setting::powersgd((self.rank.max(1)) * 2)
                } else {
                    Setting::uncompressed()
                }
            }
        }
    }

    /// Human-readable label for traces and logs.
    pub fn label(&self) -> String {
        match self.family {
            Family::None => "none".to_string(),
            Family::Compso => format!("compso(eb={:.0e})", self.threshold),
            Family::Qsgd => format!("qsgd({}bit)", self.bits),
            Family::PowerSgd => format!("powersgd(r{})", self.rank),
        }
    }
}

/// A selectable operating point plus its model priors: the estimate the
/// controller holds *before* it has measured the candidate. Priors come
/// from the §4.4 IterationModel / offline `CompressorProfile`s; once a
/// candidate has run, measurements replace them via EMA.
#[derive(Clone, Copy, Debug)]
pub struct Candidate {
    /// The operating point.
    pub setting: Setting,
    /// Predicted compression ratio (orig bytes ÷ wire bytes).
    pub prior_cr: f64,
    /// Predicted encode throughput in arbitrary-but-consistent units
    /// (bytes/ns works); only products and ratios matter.
    pub prior_tput: f64,
}

impl Candidate {
    /// Builds a candidate from a setting and its model priors.
    pub fn new(setting: Setting, prior_cr: f64, prior_tput: f64) -> Self {
        Candidate {
            setting,
            prior_cr,
            prior_tput,
        }
    }
}

/// Controller phase (see the crate-level state machine).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Holding the identity compressor while gradients stabilize.
    Warmup,
    /// Measuring, exploring, and switching on sustained margins.
    Steady,
    /// Temporarily pinned to a higher-fidelity rung after divergence.
    Backoff,
}

impl Phase {
    /// Lowercase display name (also used in `ControlBlock.active`).
    pub fn name(&self) -> &'static str {
        match self {
            Phase::Warmup => "warmup",
            Phase::Steady => "steady",
            Phase::Backoff => "backoff",
        }
    }
}

/// Controller configuration. Everything is deterministic; `seed` only
/// offsets the exploration cadence so fleets don't probe in lockstep.
#[derive(Clone, Debug)]
pub struct ControlConfig {
    /// Steps held uncompressed before the first compressed setting.
    pub warmup_steps: u64,
    /// Steps between switch evaluations in `Steady`.
    pub eval_every: u64,
    /// Consecutive losing evaluations before a switch commits.
    pub patience: u32,
    /// Relative margin an alternative's CR×throughput product must hold
    /// over the active one to count an evaluation as "losing".
    pub switch_margin: f64,
    /// Measured relative compression error above which error feedback is
    /// considered diverging.
    pub divergence_ceiling: f64,
    /// Steps spent pinned to the backoff rung before re-selection.
    pub backoff_steps: u64,
    /// Penalty factor applied to a diverging candidate's estimated
    /// product on backoff entry (0.5 halves it).
    pub divergence_penalty: f64,
    /// Measured wall ÷ model-predicted wall above which the step counts
    /// as a model mismatch (forces an immediate evaluation).
    pub model_mistrust: f64,
    /// EMA weight of the newest measurement (0 < ema ≤ 1).
    pub ema: f64,
    /// Every `explore_every`-th evaluation probes an unobserved
    /// candidate instead of exploiting; 0 disables exploration.
    pub explore_every: u64,
    /// Offsets the exploration cadence deterministically.
    pub seed: u64,
    /// The selectable operating points with their model priors.
    pub candidates: Vec<Candidate>,
}

impl ControlConfig {
    /// A reasonable default ladder over all four families. Priors are
    /// deliberately conservative (well under typical measured products)
    /// so measurements, not priors, decide the winner once exploration
    /// has visited a candidate.
    pub fn default_candidates() -> Vec<Candidate> {
        vec![
            Candidate::new(Setting::compso(4e-3), 5.0, 1.0),
            Candidate::new(Setting::compso(4e-2), 8.0, 1.0),
            Candidate::new(Setting::qsgd(8), 4.0, 1.0),
            Candidate::new(Setting::qsgd(4), 6.0, 1.0),
            Candidate::new(Setting::powersgd(4), 10.0, 1.0),
        ]
    }
}

impl Default for ControlConfig {
    fn default() -> Self {
        ControlConfig {
            warmup_steps: 20,
            eval_every: 10,
            patience: 2,
            switch_margin: 0.15,
            divergence_ceiling: 0.9,
            backoff_steps: 20,
            divergence_penalty: 0.5,
            model_mistrust: 1.5,
            ema: 0.3,
            explore_every: 3,
            seed: 0,
            candidates: ControlConfig::default_candidates(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fidelity_ladder_terminates_at_identity() {
        for start in [
            Setting::compso(4e-2),
            Setting::qsgd(4),
            Setting::powersgd(2),
            Setting::uncompressed(),
        ] {
            let mut s = start;
            for _ in 0..64 {
                s = s.higher_fidelity();
            }
            assert_eq!(s.family, Family::None, "from {}", start.label());
            assert_eq!(s.higher_fidelity(), s, "identity is a fixed point");
        }
    }

    #[test]
    fn ladder_strictly_tightens() {
        let c = Setting::compso(4e-3);
        assert!(c.higher_fidelity().threshold < c.threshold);
        let q = Setting::qsgd(4);
        assert_eq!(q.higher_fidelity().bits, 8);
        let p = Setting::powersgd(4);
        assert_eq!(p.higher_fidelity().rank, 8);
    }

    #[test]
    fn labels_are_distinct() {
        let all = [
            Setting::uncompressed(),
            Setting::compso(4e-3),
            Setting::qsgd(8),
            Setting::powersgd(4),
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.label(), b.label());
            }
        }
    }
}
