//! Materializes policy [`Setting`]s into live [`Compressor`] instances.
//!
//! The controller reasons about abstract operating points; the training
//! loop needs concrete compressors behind the group API. Instantiation
//! is centralized here so family→implementation mapping (and the chunked
//! hot path / adaptive-chunking choices for COMPSO) lives in one place.
//! Callers should cache the instance per setting — PowerSGD in
//! particular accumulates per-layer warm-start/error-feedback state that
//! must survive across steps while the setting is held.

use crate::policy::{Family, Setting};
use compso_core::baselines::{PowerSgd, Qsgd};
use compso_core::{ChunkedCompso, Compressor, CompsoConfig, NoCompression};

/// Builds the compressor a [`Setting`] describes.
pub fn instantiate(setting: &Setting) -> Box<dyn Compressor> {
    match setting.family {
        Family::None => Box::new(NoCompression),
        Family::Compso => Box::new(
            ChunkedCompso::new(CompsoConfig::aggressive(setting.threshold as f32))
                .with_adaptive_chunking(),
        ),
        Family::Qsgd => Box::new(Qsgd {
            bits: u32::from(setting.bits.clamp(2, 16)),
        }),
        Family::PowerSgd => Box::new(PowerSgd::rank(usize::from(setting.rank.max(1)))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compso_obs::Recorder;
    use compso_tensor::Rng;

    #[test]
    fn every_family_instantiates_and_roundtrips() {
        let rec = Recorder::disabled();
        let mut rng = Rng::new(3);
        let data: Vec<f32> = {
            let mut r = Rng::new(1);
            (0..4096).map(|_| r.laplace(0.01)).collect()
        };
        for setting in [
            Setting::uncompressed(),
            Setting::compso(4e-3),
            Setting::qsgd(8),
            Setting::qsgd(4),
            Setting::powersgd(4),
        ] {
            let c = instantiate(&setting);
            let refs: [&[f32]; 1] = [data.as_slice()];
            let bytes = c.compress_group(&refs, None, &mut rng, &rec);
            let back = c
                .decompress_group(&bytes, &rec)
                .unwrap_or_else(|e| panic!("{}: {e}", setting.label()));
            assert_eq!(back.len(), 1, "{}", setting.label());
            assert_eq!(back[0].len(), data.len(), "{}", setting.label());
        }
    }

    #[test]
    fn instantiation_matches_family_names() {
        assert_eq!(
            instantiate(&Setting::uncompressed()).name(),
            "NoCompression"
        );
        assert!(instantiate(&Setting::powersgd(4))
            .name()
            .contains("PowerSGD"));
        assert!(instantiate(&Setting::qsgd(8)).name().contains("QSGD"));
        let c = instantiate(&Setting::compso(4e-3));
        assert!(c.name().to_lowercase().contains("compso"), "{}", c.name());
    }

    #[test]
    fn compso_settings_carry_adaptive_chunking() {
        let c = instantiate(&Setting::compso(4e-3));
        // Adaptive chunking answers per-workload (a pure function of the
        // element count, so schedules agree across ranks).
        assert!(c.chunk_elems_for(1 << 20).is_some());
    }
}
