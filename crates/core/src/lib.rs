//! # compso-core
//!
//! The paper's primary contribution: the COMPSO gradient compressor for
//! second-order (K-FAC) optimizers, plus the baseline compressors it is
//! evaluated against.
//!
//! The pipeline (Fig. 4a of the paper) is
//!
//! ```text
//!           ┌─ |g| <  eb_f ──→ bitmap ──→ lossless encoder ─┐
//!  KFAC ────┤                                               ├──→ bytes
//!  gradient └─ |g| >= eb_f ──→ SR quantizer → bit-pack →
//!                                              lossless encoder ─┘
//! ```
//!
//! * [`filter`] — the lossy filter that zeroes sub-threshold gradients and
//!   records them in a [`bitmap::Bitmap`];
//! * [`rounding`] / [`quantize`] — round-to-nearest, stochastic rounding
//!   (Eq. 4) and P0.5 rounding over an error-bounded uniform quantizer;
//! * [`bitpack`] — packs ⌈log₂ bins⌉-bit codes into bytes (the "7-bit for
//!   eb 1e-2" trick of §4.3);
//! * [`encoders`] — eight from-scratch lossless codecs mirroring the
//!   nvCOMP families of Table 2 (ANS, Bitcomp, Cascaded, Deflate,
//!   Gdeflate, LZ4, Snappy, Zstd);
//! * [`pipeline`] — the end-to-end COMPSO compressor with layer
//!   aggregation and per-layer normalization ranges;
//! * [`adaptive`] — the iteration-wise error-bound schedule (Alg. 1);
//! * [`perfmodel`] — the offline-online performance model (Eq. 5) that
//!   selects the encoder and the layer-aggregation factor;
//! * [`kernels`] — fused single-pass vs. staged multi-pass compression
//!   kernels, the CPU analogue of the paper's §4.5 GPU optimizations;
//! * [`baselines`] — QSGD, SZ, and CocktailSGD reimplementations;
//! * [`synthetic`] — K-FAC/SGD-gradient-like data generators used by the
//!   compression-ratio experiments.

pub mod adaptive;
pub mod baselines;
pub mod bitmap;
pub mod bitpack;
pub mod encoders;
pub mod factors;
pub mod filter;
pub mod kernels;
pub mod microkernel;
pub mod perfmodel;
pub mod pipeline;
pub mod quantize;
pub mod rounding;
pub mod synthetic;
pub mod traits;
pub mod tuning;
pub mod wire;

pub use adaptive::{BoundSchedule, CompressionStrategy, LrScheduleKind};
pub use encoders::Codec;
pub use kernels::{ChunkedCompso, KernelConfig, LayerSchedule};
pub use pipeline::{Compso, CompsoConfig};
pub use quantize::Quantizer;
pub use rounding::RoundingMode;
pub use traits::{CompressError, Compressor, NoCompression};
