//! The filter bitmap (step 2-2 of Fig. 4a).
//!
//! One bit per gradient element: `1` means the element was filtered
//! (|g| < eb_f, decoded as exactly 0.0), `0` means its quantized code is
//! present in the value stream. The bitmap is itself compressed by a
//! lossless encoder before hitting the wire; on typical K-FAC gradients
//! most bits are 1, so the bitmap is highly compressible.

use crate::wire::{Reader, WireError, Writer};

/// A fixed-length bit vector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bitmap {
    len: usize,
    words: Vec<u64>,
}

impl Bitmap {
    /// An all-zero bitmap of `len` bits.
    pub fn zeros(len: usize) -> Self {
        Bitmap {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Builds a bitmap from a predicate over `0..len`.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut b = Bitmap::zeros(len);
        for i in 0..len {
            if f(i) {
                b.set(i);
            }
        }
        b
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of clear bits.
    pub fn count_zeros(&self) -> usize {
        self.len - self.count_ones()
    }

    /// Iterator over all bit values in index order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// The raw bitmap as packed little-endian bytes (`ceil(len/8)` of them).
    /// This is the representation handed to the lossless encoder.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.len.div_ceil(8)];
        for (wi, w) in self.words.iter().enumerate() {
            let le = w.to_le_bytes();
            let start = wi * 8;
            let take = le.len().min(out.len().saturating_sub(start));
            out[start..start + take].copy_from_slice(&le[..take]);
        }
        out
    }

    /// Rebuilds a bitmap of `len` bits from packed bytes.
    pub fn from_bytes(len: usize, bytes: &[u8]) -> Result<Self, WireError> {
        if bytes.len() != len.div_ceil(8) {
            return Err(WireError::Invalid("bitmap byte length"));
        }
        let mut b = Bitmap::zeros(len);
        for (wi, word) in b.words.iter_mut().enumerate() {
            let start = wi * 8;
            let end = (start + 8).min(bytes.len());
            let mut le = [0u8; 8];
            le[..end - start].copy_from_slice(&bytes[start..end]);
            *word = u64::from_le_bytes(le);
        }
        // Reject garbage beyond `len` bits in the final byte: those bit
        // positions are meaningless and a nonzero value signals corruption.
        if !len.is_multiple_of(64) {
            if let Some(&last) = b.words.last() {
                let valid = len % 64;
                if last >> valid != 0 {
                    return Err(WireError::Invalid("bitmap trailing bits"));
                }
            }
        }
        Ok(b)
    }

    /// Serializes length + packed bytes.
    pub fn write(&self, w: &mut Writer) {
        w.u64(self.len as u64);
        w.block(&self.to_bytes());
    }

    /// Deserializes a bitmap written by [`Bitmap::write`].
    pub fn read(r: &mut Reader) -> Result<Self, WireError> {
        let len = crate::wire::checked_count(r.u64()?)?;
        // Sanity cap: a bitmap longer than the remaining stream could even
        // describe is corrupt.
        if len / 8 > r.remaining() + 16 {
            return Err(WireError::Invalid("bitmap length"));
        }
        let bytes = r.block()?;
        Bitmap::from_bytes(len, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn set_get_clear() {
        let mut b = Bitmap::zeros(130);
        assert!(!b.get(0));
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(128));
        assert_eq!(b.count_ones(), 4);
        b.clear(63);
        assert!(!b.get(63));
        assert_eq!(b.count_ones(), 3);
    }

    #[test]
    fn byte_roundtrip_odd_lengths() {
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65, 127, 1000] {
            let b = Bitmap::from_fn(len, |i| i % 3 == 0);
            let bytes = b.to_bytes();
            assert_eq!(bytes.len(), len.div_ceil(8));
            let back = Bitmap::from_bytes(len, &bytes).unwrap();
            assert_eq!(b, back, "len={len}");
        }
    }

    #[test]
    fn wire_roundtrip() {
        let b = Bitmap::from_fn(77, |i| i % 5 == 1);
        let mut w = Writer::new();
        b.write(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(Bitmap::read(&mut r).unwrap(), b);
    }

    #[test]
    fn wrong_byte_length_rejected() {
        assert!(Bitmap::from_bytes(16, &[0u8; 3]).is_err());
        assert!(Bitmap::from_bytes(16, &[0u8; 1]).is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        // 4 valid bits but high bits of the byte set.
        assert!(Bitmap::from_bytes(4, &[0xF0]).is_err());
        assert!(Bitmap::from_bytes(4, &[0x0F]).is_ok());
    }

    #[test]
    fn truncated_stream_rejected() {
        let b = Bitmap::from_fn(100, |i| i % 2 == 0);
        let mut w = Writer::new();
        b.write(&mut w);
        let bytes = w.into_bytes();
        for cut in [0, 4, 9, bytes.len() - 1] {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(Bitmap::read(&mut r).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn count_zeros_complements_ones() {
        let b = Bitmap::from_fn(99, |i| i < 40);
        assert_eq!(b.count_ones(), 40);
        assert_eq!(b.count_zeros(), 59);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(bits in proptest::collection::vec(any::<bool>(), 0..500)) {
            let b = Bitmap::from_fn(bits.len(), |i| bits[i]);
            let back = Bitmap::from_bytes(bits.len(), &b.to_bytes()).unwrap();
            prop_assert_eq!(&b, &back);
            for (i, &bit) in bits.iter().enumerate() {
                prop_assert_eq!(b.get(i), bit);
            }
        }

        #[test]
        fn prop_count_matches(bits in proptest::collection::vec(any::<bool>(), 0..500)) {
            let b = Bitmap::from_fn(bits.len(), |i| bits[i]);
            prop_assert_eq!(b.count_ones(), bits.iter().filter(|&&x| x).count());
        }
    }
}
