//! Blocked, allocation-free microkernels for the chunked hot path.
//!
//! The scalar helpers in [`crate::bitpack`], [`crate::kernels`] and
//! [`crate::quantize`] are the reference implementations; this module
//! holds the u64-lane rewrites the fused kernel path runs in production
//! (DESIGN.md §12). Every kernel here is pinned **bit-identical** to its
//! scalar oracle by the equivalence proptests below, and at the wire
//! level by `fused_and_staged_produce_identical_bytes`: the staged
//! ablation path still runs the scalar helpers, so any divergence in a
//! microkernel shows up as a byte diff there.
//!
//! What makes bit-identity possible (and cheap to maintain):
//!
//! * [`pack_into`] / [`unpack_into`] move whole codes through unaligned
//!   u64 windows instead of a per-bit carry loop. A code is ≤ 32 bits and
//!   the in-byte shift is ≤ 7 bits, so every window fits u64 exactly;
//!   the emitted bytes are the same LSB-first layout as the scalar
//!   packer, not merely an equivalent one.
//! * [`filter_kernel`] builds the drop bitmap branchlessly and compacts
//!   kept values with an unconditional store + predicated index bump.
//!   The bit layout (LSB-first, set ⇔ dropped) matches the scalar filter.
//! * [`quantize_kernel`] hoists the per-element rounding-mode dispatch
//!   out of the loop. Stochastic rounding becomes branchless because the
//!   scalar path *already* draws one uniform per element unconditionally;
//!   `P0.5` consumes randomness conditionally (exact grid points draw
//!   nothing), so that mode keeps the scalar rounding call per element.
//! * [`scatter_kept`] walks the keep-mask as u64 words with
//!   `trailing_zeros`, so decode scatter cost scales with the *kept*
//!   count, not the chunk length — the dropped majority is covered by a
//!   single pre-zeroed output buffer.
//! * [`CompressScratch`] extends the PR-3 thread-local decode scratch to
//!   the compress side: kept values, quantized codes, and packed bytes
//!   live in per-thread arenas that are cleared, never shrunk.

use crate::rounding::RoundingMode;
use crate::wire::WireError;
use compso_tensor::rng::Rng;

/// Packs `width`-bit codes LSB-first into `out` (cleared first), emitting
/// byte-identical output to [`crate::bitpack::pack`].
///
/// # Panics
/// If `width` is 0 or > 32, or any code does not fit in `width` bits —
/// the same contract as the scalar packer.
pub fn pack_into(codes: &[u32], width: u32, out: &mut Vec<u8>) {
    assert!((1..=32).contains(&width), "width {width} out of range");
    out.clear();
    let total_bits = codes.len() * width as usize;
    let n_bytes = total_bits.div_ceil(8);
    // Eight slack bytes let every code be written as one whole u64 store
    // at its byte offset; the slack stays zero and is truncated off.
    out.resize(n_bytes + 8, 0);
    let buf = &mut out[..];
    let mut bitpos = 0usize;
    for &code in codes {
        assert!(
            width == 32 || code < (1u32 << width),
            "code {code} does not fit in {width} bits"
        );
        let byte = bitpos >> 3;
        let shift = (bitpos & 7) as u32;
        let window = &mut buf[byte..byte + 8];
        let cur = u64::from_le_bytes(window.try_into().unwrap());
        window.copy_from_slice(&(cur | ((code as u64) << shift)).to_le_bytes());
        bitpos += width as usize;
    }
    out.truncate(n_bytes);
}

/// Unpacks `count` codes of `width` bits into `out` (cleared first),
/// returning the largest code seen so callers can range-check without a
/// second pass. Matches [`crate::bitpack::unpack`] bit for bit, including
/// its error cases.
pub fn unpack_into(
    bytes: &[u8],
    width: u32,
    count: usize,
    out: &mut Vec<u32>,
) -> Result<u32, WireError> {
    if !(1..=32).contains(&width) {
        return Err(WireError::Invalid("bit width"));
    }
    let total_bits = count * width as usize;
    let need = total_bits.div_ceil(8);
    if bytes.len() < need {
        return Err(WireError::Truncated {
            need,
            have: bytes.len(),
        });
    }
    out.clear();
    out.reserve(count);
    let mask = if width == 32 {
        u32::MAX
    } else {
        (1u32 << width) - 1
    };
    let mut maxc = 0u32;
    let mut bitpos = 0usize;
    // Fast path: while a full u64 window is in bounds, a code is one
    // unaligned load + shift + mask (shift ≤ 7 + width ≤ 32 fits u64).
    while out.len() < count {
        let byte = bitpos >> 3;
        if byte + 8 > bytes.len() {
            break;
        }
        let w = u64::from_le_bytes(bytes[byte..byte + 8].try_into().unwrap());
        let v = ((w >> (bitpos & 7)) as u32) & mask;
        maxc = maxc.max(v);
        out.push(v);
        bitpos += width as usize;
    }
    // Scalar tail: identical to the reference per-bit loop.
    while out.len() < count {
        let mut value: u64 = 0;
        let mut got: u32 = 0;
        while got < width {
            let byte = bytes[bitpos / 8] as u64;
            let offset = (bitpos % 8) as u32;
            let space = 8 - offset;
            let take = (width - got).min(space);
            let chunk = (byte >> offset) & ((1u64 << take) - 1);
            value |= chunk << got;
            got += take;
            bitpos += take as usize;
        }
        let v = value as u32;
        maxc = maxc.max(v);
        out.push(v);
    }
    Ok(maxc)
}

/// The filter sweep as a branchless microkernel: builds the LSB-first
/// drop bitmap (`bit set ⇔ |v| < threshold`) into `bitmap` and compacts
/// surviving values into `kept`, both cleared first. Byte-identical to
/// the scalar filter loop in `kernels::filter_chunk`.
pub fn filter_kernel(data: &[f32], threshold: f32, bitmap: &mut Vec<u8>, kept: &mut Vec<f32>) {
    bitmap.clear();
    bitmap.reserve(data.len().div_ceil(8));
    kept.clear();
    kept.resize(data.len(), 0.0);
    let mut kn = 0usize;
    {
        let kbuf = &mut kept[..];
        for chunk8 in data.chunks(8) {
            let mut b = 0u8;
            for (j, &v) in chunk8.iter().enumerate() {
                // `abs` is a sign-bit mask and the comparison feeds a
                // predicated store: no branch per element.
                let dropped = v.abs() < threshold;
                b |= (dropped as u8) << j;
                kbuf[kn] = v;
                kn += (!dropped) as usize;
            }
            bitmap.push(b);
        }
    }
    kept.truncate(kn);
}

/// The quantize sweep with the rounding-mode dispatch hoisted out of the
/// inner loop. Consumes the RNG stream exactly like per-element
/// `RoundingMode::round` calls would, and emits identical codes.
///
/// `lo`, `inv_w` and `n_bins` must be derived exactly as
/// `Quantizer::quantize_with_range` derives them; the caller owns that
/// arithmetic so the two paths cannot drift.
pub fn quantize_kernel(
    kept: &[f32],
    lo: f32,
    inv_w: f64,
    n_bins: u32,
    mode: RoundingMode,
    rng: &mut Rng,
    codes: &mut Vec<u32>,
) {
    codes.clear();
    codes.reserve(kept.len());
    let lo64 = lo as f64;
    let cap = n_bins as i64;
    match mode {
        RoundingMode::Nearest => {
            for &x in kept {
                let coord = (x as f64 - lo64) * inv_w;
                let c = coord.round_ties_even() as i64;
                codes.push(c.clamp(0, cap) as u32);
            }
        }
        RoundingMode::Stochastic => {
            // The scalar path draws one uniform per element no matter
            // which way it rounds, so the branchless form below keeps the
            // RNG stream position and every rounding decision identical.
            for &x in kept {
                let coord = (x as f64 - lo64) * inv_w;
                let floor = coord.floor();
                let p = coord - floor;
                let up = (rng.uniform_f64() < p) as i64;
                let c = floor as i64 + up;
                codes.push(c.clamp(0, cap) as u32);
            }
        }
        RoundingMode::HalfProbability => {
            // P0.5 draws randomness *conditionally* (exact grid points
            // consume nothing), so it cannot be made branchless without
            // desyncing the stream; keep the scalar rounding call.
            for &x in kept {
                let coord = (x as f64 - lo64) * inv_w;
                let c = mode.round(coord, rng);
                codes.push(c.clamp(0, cap) as u32);
            }
        }
    }
}

/// Why [`scatter_kept`] stopped early.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScatterError {
    /// A kept slot had no value behind it.
    Underrun,
    /// Values were left over after every kept slot was filled.
    Overrun,
}

/// Scatters `kept` values into the kept (bit clear) positions of a
/// pre-zeroed `out[..n]`, walking the bitmap as u64 keep-masks. `value(k)`
/// produces the k-th kept value. `bitmap` must hold `n.div_ceil(8)` bytes;
/// bits past `n` in the last byte are ignored, exactly like the scalar
/// scatter loop.
pub fn scatter_kept(
    bitmap: &[u8],
    n: usize,
    kept: usize,
    out: &mut [f32],
    mut value: impl FnMut(usize) -> f32,
) -> Result<(), ScatterError> {
    debug_assert!(bitmap.len() >= n.div_ceil(8));
    debug_assert!(out.len() >= n);
    let mut next = 0usize;
    let full_words = n / 64;
    for wi in 0..full_words {
        let w = u64::from_le_bytes(bitmap[wi * 8..wi * 8 + 8].try_into().unwrap());
        let base = wi * 64;
        let mut keep = !w;
        while keep != 0 {
            let tz = keep.trailing_zeros() as usize;
            if next >= kept {
                return Err(ScatterError::Underrun);
            }
            out[base + tz] = value(next);
            next += 1;
            keep &= keep - 1;
        }
    }
    for i in full_words * 64..n {
        let dropped = (bitmap[i / 8] >> (i % 8)) & 1 == 1;
        if !dropped {
            if next >= kept {
                return Err(ScatterError::Underrun);
            }
            out[i] = value(next);
            next += 1;
        }
    }
    if next != kept {
        return Err(ScatterError::Overrun);
    }
    Ok(())
}

/// Per-thread compress-side arena (the PR-3 decode scratch's sibling):
/// the fused kernel's kept values, quantized codes, and packed bytes are
/// materialized here instead of fresh `Vec`s per chunk. Buffers are
/// cleared between chunks, never shrunk.
#[derive(Debug, Default)]
pub struct CompressScratch {
    /// Surviving values after the filter sweep.
    pub kept: Vec<f32>,
    /// Quantized bin indices for the kept values.
    pub codes: Vec<u32>,
    /// Bit-packed code bytes, staged before the chunk record is written.
    pub packed: Vec<u8>,
}

impl CompressScratch {
    /// A fresh, empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes currently reserved across all arena buffers (observability
    /// for the reuse-invariant tests).
    pub fn capacity_bytes(&self) -> usize {
        self.kept.capacity() * 4 + self.codes.capacity() * 4 + self.packed.capacity()
    }
}

thread_local! {
    /// Per-thread [`CompressScratch`] pool backing the fused compress
    /// kernel. Moved out (not borrowed) for the duration of a chunk so
    /// rayon work-stealing that re-enters compression on the same OS
    /// thread finds a fresh empty arena instead of a held borrow.
    static COMPRESS_SCRATCH: std::cell::RefCell<CompressScratch> =
        std::cell::RefCell::new(CompressScratch::new());

    /// Per-thread code buffer for the chunk decoder's unpack stage.
    static DECODE_CODES: std::cell::RefCell<Vec<u32>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Runs `f` with this thread's compress arena.
pub fn with_compress_scratch<R>(f: impl FnOnce(&mut CompressScratch) -> R) -> R {
    let mut s = COMPRESS_SCRATCH.with(|p| std::mem::take(&mut *p.borrow_mut()));
    let r = f(&mut s);
    COMPRESS_SCRATCH.with(|p| *p.borrow_mut() = s);
    r
}

/// Bytes currently reserved by this thread's compress arena.
pub fn compress_scratch_capacity_bytes() -> usize {
    COMPRESS_SCRATCH.with(|p| p.borrow().capacity_bytes())
}

/// Runs `f` with this thread's decode code buffer.
pub fn with_decode_codes<R>(f: impl FnOnce(&mut Vec<u32>) -> R) -> R {
    let mut s = DECODE_CODES.with(|p| std::mem::take(&mut *p.borrow_mut()));
    let r = f(&mut s);
    DECODE_CODES.with(|p| *p.borrow_mut() = s);
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitpack;
    use proptest::prelude::*;
    // Explicit import: proptest's prelude also globs a `Rng` trait.
    use compso_tensor::rng::Rng;

    #[test]
    fn pack_into_matches_scalar_on_awkward_widths() {
        for width in [1u32, 3, 7, 8, 9, 13, 17, 31, 32] {
            let mask = if width == 32 {
                u32::MAX
            } else {
                (1u32 << width) - 1
            };
            let codes: Vec<u32> = (0..257u32)
                .map(|i| i.wrapping_mul(2654435761) & mask)
                .collect();
            let mut fast = Vec::new();
            pack_into(&codes, width, &mut fast);
            assert_eq!(fast, bitpack::pack(&codes, width), "width={width}");
        }
    }

    #[test]
    fn unpack_into_matches_scalar_and_reports_max() {
        let codes = vec![5u32, 0, 99, 100, 127, 1];
        let packed = bitpack::pack(&codes, 7);
        let mut out = Vec::new();
        let maxc = unpack_into(&packed, 7, codes.len(), &mut out).unwrap();
        assert_eq!(out, codes);
        assert_eq!(maxc, 127);
    }

    #[test]
    fn unpack_into_error_cases_match_scalar() {
        let packed = bitpack::pack(&[5u32; 16], 5);
        let mut out = Vec::new();
        assert_eq!(
            unpack_into(&packed[..packed.len() - 1], 5, 16, &mut out),
            Err(WireError::Truncated { need: 10, have: 9 })
        );
        assert_eq!(
            unpack_into(&[0u8; 8], 0, 1, &mut out),
            Err(WireError::Invalid("bit width"))
        );
        assert_eq!(
            unpack_into(&[0u8; 8], 33, 1, &mut out),
            Err(WireError::Invalid("bit width"))
        );
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn pack_into_oversized_code_panics_like_scalar() {
        pack_into(&[8u32], 3, &mut Vec::new());
    }

    #[test]
    fn scatter_kept_matches_bit_semantics() {
        // n = 70 crosses a u64 word boundary; drop odd indices.
        let n = 70usize;
        let mut bitmap = vec![0u8; n.div_ceil(8)];
        for i in (1..n).step_by(2) {
            bitmap[i / 8] |= 1 << (i % 8);
        }
        let kept_count = n.div_ceil(2);
        let mut out = vec![0.0f32; n];
        scatter_kept(&bitmap, n, kept_count, &mut out, |k| k as f32 + 1.0).unwrap();
        let mut k = 0;
        for (i, &v) in out.iter().enumerate() {
            if i % 2 == 0 {
                k += 1;
                assert_eq!(v, k as f32, "i={i}");
            } else {
                assert_eq!(v, 0.0, "i={i}");
            }
        }
    }

    #[test]
    fn scatter_kept_under_and_overrun() {
        let bitmap = vec![0u8; 2]; // nothing dropped
        let mut out = vec![0.0f32; 10];
        assert_eq!(
            scatter_kept(&bitmap, 10, 9, &mut out, |_| 1.0),
            Err(ScatterError::Underrun)
        );
        assert_eq!(
            scatter_kept(&bitmap, 10, 11, &mut out, |_| 1.0),
            Err(ScatterError::Overrun)
        );
        assert_eq!(scatter_kept(&bitmap, 10, 10, &mut out, |_| 1.0), Ok(()));
    }

    #[test]
    fn scratch_pools_plateau() {
        let data: Vec<f32> = (0..10_000).map(|i| (i % 83) as f32 - 41.0).collect();
        let cap_after_first = {
            with_compress_scratch(|s| {
                filter_kernel(&data, 5.0, &mut s.packed, &mut s.kept);
            });
            compress_scratch_capacity_bytes()
        };
        assert!(cap_after_first > 0);
        for _ in 0..3 {
            with_compress_scratch(|s| {
                filter_kernel(&data, 5.0, &mut s.packed, &mut s.kept);
            });
            assert_eq!(compress_scratch_capacity_bytes(), cap_after_first);
        }
    }

    proptest! {
        /// Bitpack bit-identity: the u64-window packer emits the exact
        /// bytes of the scalar packer, and the window unpacker recovers
        /// the exact codes, for every width.
        #[test]
        fn prop_pack_unpack_bit_identical(
            width in 1u32..=32,
            raw in proptest::collection::vec(any::<u32>(), 0..400),
        ) {
            let mask = if width == 32 { u32::MAX } else { (1u32 << width) - 1 };
            let codes: Vec<u32> = raw.iter().map(|&v| v & mask).collect();
            let scalar = bitpack::pack(&codes, width);
            let mut fast = Vec::new();
            pack_into(&codes, width, &mut fast);
            prop_assert_eq!(&fast, &scalar);
            let mut out = Vec::new();
            let maxc = unpack_into(&scalar, width, codes.len(), &mut out).unwrap();
            prop_assert_eq!(&out, &bitpack::unpack(&scalar, width, codes.len()).unwrap());
            prop_assert_eq!(&out, &codes);
            prop_assert_eq!(maxc, codes.iter().copied().max().unwrap_or(0));
        }

        /// Filter bit-identity vs. the scalar reference loop.
        #[test]
        fn prop_filter_kernel_bit_identical(
            data in proptest::collection::vec(-10.0f32..10.0, 0..500),
            threshold in 0.0f32..5.0,
        ) {
            // Scalar reference: the loop `kernels::filter_chunk` runs.
            let mut ref_bitmap = vec![0u8; data.len().div_ceil(8)];
            let mut ref_kept = Vec::new();
            for (i, &v) in data.iter().enumerate() {
                if v.abs() < threshold {
                    ref_bitmap[i / 8] |= 1 << (i % 8);
                } else {
                    ref_kept.push(v);
                }
            }
            let (mut bitmap, mut kept) = (Vec::new(), Vec::new());
            filter_kernel(&data, threshold, &mut bitmap, &mut kept);
            prop_assert_eq!(bitmap, ref_bitmap);
            prop_assert_eq!(
                kept.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                ref_kept.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }

        /// Quantize bit-identity: same codes AND same RNG stream position
        /// as per-element `RoundingMode::round`, for every mode.
        #[test]
        fn prop_quantize_kernel_bit_identical(
            data in proptest::collection::vec(-100.0f32..100.0, 0..400),
            n_bins in 1u32..4000,
            seed in any::<u64>(),
            mode_sel in 0u8..3,
        ) {
            let mode = RoundingMode::from_tag(mode_sel).unwrap();
            let lo = -100.0f32;
            let inv_w = n_bins as f64 / 200.0;
            // Scalar reference.
            let mut rng_ref = Rng::new(seed);
            let ref_codes: Vec<u32> = data
                .iter()
                .map(|&x| {
                    let coord = (x as f64 - lo as f64) * inv_w;
                    mode.round(coord, &mut rng_ref).clamp(0, n_bins as i64) as u32
                })
                .collect();
            let mut rng_fast = Rng::new(seed);
            let mut codes = Vec::new();
            quantize_kernel(&data, lo, inv_w, n_bins, mode, &mut rng_fast, &mut codes);
            prop_assert_eq!(codes, ref_codes);
            // The stream positions must agree too.
            prop_assert_eq!(rng_fast.next_u64(), rng_ref.next_u64());
        }

        /// Scatter bit-identity vs. the scalar per-bit scatter loop.
        #[test]
        fn prop_scatter_kept_bit_identical(
            bits in proptest::collection::vec(any::<bool>(), 0..300),
        ) {
            let n = bits.len();
            let mut bitmap = vec![0u8; n.div_ceil(8)];
            for (i, &dropped) in bits.iter().enumerate() {
                if dropped {
                    bitmap[i / 8] |= 1 << (i % 8);
                }
            }
            let kept_vals: Vec<f32> =
                (0..bits.iter().filter(|&&d| !d).count()).map(|k| (k as f32) * 0.5 - 7.0).collect();
            // Scalar reference scatter.
            let mut ref_out = Vec::with_capacity(n);
            let mut next = 0usize;
            for &dropped in &bits {
                if dropped {
                    ref_out.push(0.0f32);
                } else {
                    ref_out.push(kept_vals[next]);
                    next += 1;
                }
            }
            let mut out = vec![0.0f32; n];
            scatter_kept(&bitmap, n, kept_vals.len(), &mut out, |k| kept_vals[k]).unwrap();
            prop_assert_eq!(
                out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                ref_out.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }
}
