//! The error-bounded quantizer (step 2-1 of Fig. 4a).
//!
//! Unlike fixed-rate schemes (QSGD's 4/8-bit), COMPSO derives the number
//! of quantization bins from the error bound: with a relative bound
//! `eb = 1e-2` the value range is divided into `⌈1/eb⌉ = 100` bins of
//! width `eb × range`, representable in 7 bits (§4.3). Any rounding mode
//! from [`crate::rounding`] can sit on top; the error contract is
//! `|x − x̂| ≤ eb × range` for every element (SR errs by at most one bin,
//! RN by half a bin).

use crate::bitpack;
use crate::rounding::RoundingMode;
use crate::wire::{Reader, WireError, Writer};
use compso_tensor::rng::Rng;

/// How the error bound is interpreted.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ErrorBound {
    /// Bound is `value × (data max − data min)` — the SZ convention the
    /// paper uses for all its error-bound numbers (e.g. "4E-3, relative
    /// to value range").
    Relative(f32),
    /// Bound in absolute value units.
    Absolute(f32),
}

impl ErrorBound {
    /// The absolute bound for a dataset with the given value range.
    pub fn absolute_for_range(self, range: f32) -> f32 {
        match self {
            ErrorBound::Relative(r) => r * range,
            ErrorBound::Absolute(a) => a,
        }
    }
}

/// An error-bounded uniform quantizer with a pluggable rounding mode.
#[derive(Clone, Copy, Debug)]
pub struct Quantizer {
    /// The error bound (see [`ErrorBound`]).
    pub bound: ErrorBound,
    /// The rounding rule.
    pub mode: RoundingMode,
}

/// Quantized representation of one block of values.
#[derive(Clone, Debug, PartialEq)]
pub struct Quantized {
    /// Bin indices, one per input element, each in `0..=n_bins`.
    pub codes: Vec<u32>,
    /// Lower end of the value range (the code-0 reconstruction point).
    pub lo: f32,
    /// Bin width in value units.
    pub bin_width: f32,
    /// Largest valid code.
    pub n_bins: u32,
}

impl Quantizer {
    /// Creates a quantizer with a range-relative bound.
    pub fn relative(eb: f32, mode: RoundingMode) -> Self {
        assert!(
            eb > 0.0 && eb < 1.0,
            "relative error bound {eb} out of (0,1)"
        );
        Quantizer {
            bound: ErrorBound::Relative(eb),
            mode,
        }
    }

    /// Creates a quantizer with an absolute bound.
    pub fn absolute(eb: f32, mode: RoundingMode) -> Self {
        assert!(eb > 0.0, "absolute error bound must be positive");
        Quantizer {
            bound: ErrorBound::Absolute(eb),
            mode,
        }
    }

    /// Quantizes `data`, computing the range internally.
    pub fn quantize(&self, data: &[f32], rng: &mut Rng) -> Quantized {
        let mm = compso_tensor::reduce::minmax_flat(data);
        let (lo, hi) = if data.is_empty() {
            (0.0, 0.0)
        } else {
            (mm.min, mm.max)
        };
        self.quantize_with_range(data, lo, hi, rng)
    }

    /// Quantizes `data` against an externally supplied range — the form
    /// the fused kernel uses after its hierarchical extrema pass, and the
    /// layer-aggregation path uses to keep per-layer ranges separate.
    pub fn quantize_with_range(&self, data: &[f32], lo: f32, hi: f32, rng: &mut Rng) -> Quantized {
        assert!(hi >= lo, "invalid range [{lo}, {hi}]");
        let range = hi - lo;
        if range == 0.0 || data.is_empty() {
            // Degenerate: every value equals `lo`; one bin, all-zero codes.
            return Quantized {
                codes: vec![0; data.len()],
                lo,
                bin_width: 0.0,
                n_bins: 0,
            };
        }
        let eb_abs = self.bound.absolute_for_range(range);
        assert!(eb_abs > 0.0, "error bound collapsed to zero");
        let bin_width = eb_abs;
        let n_bins = (range as f64 / bin_width as f64).ceil() as u32;
        let inv_w = 1.0 / bin_width as f64;
        let codes = data
            .iter()
            .map(|&x| {
                let coord = (x as f64 - lo as f64) * inv_w;
                let c = self.mode.round(coord, rng);
                c.clamp(0, n_bins as i64) as u32
            })
            .collect();
        Quantized {
            codes,
            lo,
            bin_width,
            n_bins,
        }
    }
}

impl Quantized {
    /// Number of quantized elements.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when no elements were quantized.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Bits per packed code.
    pub fn bits(&self) -> u32 {
        bitpack::bits_for(self.n_bins)
    }

    /// Reconstructs the values.
    pub fn dequantize(&self) -> Vec<f32> {
        self.codes
            .iter()
            .map(|&c| (self.lo as f64 + c as f64 * self.bin_width as f64) as f32)
            .collect()
    }

    /// Serializes header + packed codes.
    pub fn write(&self, w: &mut Writer) {
        w.f32(self.lo);
        w.f32(self.bin_width);
        w.u32(self.n_bins);
        w.u64(self.codes.len() as u64);
        if !self.codes.is_empty() && self.n_bins > 0 {
            w.bytes(&bitpack::pack(&self.codes, self.bits()));
        }
    }

    /// Deserializes a block written by [`Quantized::write`].
    pub fn read(r: &mut Reader) -> Result<Self, WireError> {
        Self::read_capped(r, crate::wire::MAX_DECODE_ELEMS)
    }

    /// [`Quantized::read`] with a caller-supplied element cap.
    ///
    /// The degenerate `n_bins == 0` encoding (constant-valued blocks)
    /// carries *no* code bytes — that is the whole point of the encoding —
    /// so its element count cannot be validated against the remaining
    /// buffer the way packed codes can. Callers that know the expected
    /// element count from outer framing (the chunked decoder knows every
    /// chunk's length from its schedule; the serial decoder knows each
    /// layer's declared length) pass it here so a hostile count in a
    /// corrupted stream cannot drive an oversized allocation.
    pub fn read_capped(r: &mut Reader, max_count: usize) -> Result<Self, WireError> {
        let lo = r.f32()?;
        let bin_width = r.f32()?;
        let n_bins = r.u32()?;
        let count = crate::wire::checked_count(r.u64()?)?;
        if count > max_count {
            return Err(WireError::Invalid("quantized count over cap"));
        }
        if !lo.is_finite() || !bin_width.is_finite() || bin_width < 0.0 {
            return Err(WireError::Invalid("quantized header"));
        }
        let codes = if count == 0 || n_bins == 0 {
            vec![0; count]
        } else {
            let bits = bitpack::bits_for(n_bins);
            let need = (count * bits as usize).div_ceil(8);
            let bytes = r.bytes(need)?;
            let codes = bitpack::unpack(bytes, bits, count)?;
            if codes.iter().any(|&c| c > n_bins) {
                return Err(WireError::Invalid("quantized code out of range"));
            }
            codes
        };
        Ok(Quantized {
            codes,
            lo,
            bin_width,
            n_bins,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    // Explicit import: proptest's prelude also globs a `Rng` trait.
    use compso_tensor::rng::Rng;

    fn sample_data(n: usize, seed: u64, lo: f32, hi: f32) -> Vec<f32> {
        let mut rng = Rng::new(seed);
        let mut v = vec![0.0f32; n];
        rng.fill_uniform(&mut v, lo, hi);
        v
    }

    #[test]
    fn paper_example_100_bins_7_bits() {
        let q = Quantizer::relative(1e-2, RoundingMode::Stochastic);
        let mut rng = Rng::new(1);
        let data = sample_data(1000, 2, -1.0, 1.0);
        let quant = q.quantize(&data, &mut rng);
        // ceil(1/1e-2) = 100 bins -> 7 bits, as §4.3 describes.
        assert_eq!(quant.n_bins, 100);
        assert_eq!(quant.bits(), 7);
    }

    #[test]
    fn error_bound_contract_all_modes() {
        for mode in [
            RoundingMode::Nearest,
            RoundingMode::Stochastic,
            RoundingMode::HalfProbability,
        ] {
            let eb = 4e-3f32;
            let q = Quantizer::relative(eb, mode);
            let mut rng = Rng::new(3);
            let data = sample_data(20_000, 4, -0.3, 0.7);
            let quant = q.quantize(&data, &mut rng);
            let back = quant.dequantize();
            let range = 1.0f32; // hi - lo of the sample distribution, approx
            for (i, (&x, &y)) in data.iter().zip(&back).enumerate() {
                assert!(
                    (x - y).abs() <= eb * range * 1.01 + 1e-7,
                    "{mode:?} i={i}: {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn absolute_bound_contract() {
        let eb = 0.05f32;
        let q = Quantizer::absolute(eb, RoundingMode::Stochastic);
        let mut rng = Rng::new(5);
        let data = sample_data(10_000, 6, -10.0, 10.0);
        let quant = q.quantize(&data, &mut rng);
        for (&x, &y) in data.iter().zip(&quant.dequantize()) {
            assert!((x - y).abs() <= eb + 1e-5, "{x} vs {y}");
        }
    }

    #[test]
    fn stochastic_quantization_is_unbiased_in_aggregate() {
        let q = Quantizer::relative(0.05, RoundingMode::Stochastic);
        let mut rng = Rng::new(7);
        let data = sample_data(200_000, 8, -1.0, 1.0);
        let quant = q.quantize(&data, &mut rng);
        let back = quant.dequantize();
        let bias: f64 = data
            .iter()
            .zip(&back)
            .map(|(&x, &y)| (y - x) as f64)
            .sum::<f64>()
            / data.len() as f64;
        // SR is unbiased; mean reconstruction error should vanish.
        assert!(bias.abs() < 5e-4, "bias {bias}");
    }

    #[test]
    fn nearest_quantization_is_biased_less_than_half_bin() {
        let q = Quantizer::relative(0.05, RoundingMode::Nearest);
        let mut rng = Rng::new(9);
        let data = sample_data(50_000, 10, 0.0, 1.0);
        let quant = q.quantize(&data, &mut rng);
        let back = quant.dequantize();
        for (&x, &y) in data.iter().zip(&back) {
            assert!((x - y).abs() <= 0.5 * quant.bin_width + 1e-6);
        }
    }

    #[test]
    fn constant_data_degenerates_gracefully() {
        let q = Quantizer::relative(0.01, RoundingMode::Stochastic);
        let mut rng = Rng::new(11);
        let data = vec![3.75f32; 100];
        let quant = q.quantize(&data, &mut rng);
        assert_eq!(quant.n_bins, 0);
        assert!(quant.dequantize().iter().all(|&v| v == 3.75));
    }

    #[test]
    fn empty_data() {
        let q = Quantizer::relative(0.01, RoundingMode::Nearest);
        let mut rng = Rng::new(12);
        let quant = q.quantize(&[], &mut rng);
        assert!(quant.is_empty());
        assert!(quant.dequantize().is_empty());
    }

    #[test]
    fn wire_roundtrip() {
        let q = Quantizer::relative(2e-3, RoundingMode::Stochastic);
        let mut rng = Rng::new(13);
        let data = sample_data(777, 14, -5.0, 2.0);
        let quant = q.quantize(&data, &mut rng);
        let mut w = Writer::new();
        quant.write(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = Quantized::read(&mut r).unwrap();
        assert_eq!(back, quant);
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncated_wire_rejected() {
        let q = Quantizer::relative(1e-2, RoundingMode::Nearest);
        let mut rng = Rng::new(15);
        let data = sample_data(100, 16, -1.0, 1.0);
        let quant = q.quantize(&data, &mut rng);
        let mut w = Writer::new();
        quant.write(&mut w);
        let bytes = w.into_bytes();
        for cut in [0usize, 3, 8, 15, bytes.len() - 1] {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(Quantized::read(&mut r).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn hostile_constant_block_count_is_capped() {
        // A constant block (n_bins == 0) carries no code bytes, so its
        // count field is the one length a reader cannot check against the
        // buffer. `read_capped` bounds it with caller context instead.
        let mut w = Writer::new();
        w.f32(1.0); // lo
        w.f32(0.0); // bin_width
        w.u32(0); // n_bins: constant encoding
        w.u64(1 << 27); // hostile: claims 128Mi elements backed by nothing
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(
            Quantized::read_capped(&mut r, 1024),
            Err(WireError::Invalid("quantized count over cap"))
        );
        // The honest count decodes fine under the same cap.
        let mut w = Writer::new();
        w.f32(1.0);
        w.f32(0.0);
        w.u32(0);
        w.u64(1024);
        let bytes = w.into_bytes();
        let q = Quantized::read_capped(&mut Reader::new(&bytes), 1024).unwrap();
        assert_eq!(q.len(), 1024);
        assert!(q.dequantize().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn smaller_bound_means_more_bins() {
        let mut rng = Rng::new(17);
        let data = sample_data(100, 18, -1.0, 1.0);
        let coarse = Quantizer::relative(1e-1, RoundingMode::Nearest).quantize(&data, &mut rng);
        let fine = Quantizer::relative(1e-3, RoundingMode::Nearest).quantize(&data, &mut rng);
        assert!(fine.n_bins > coarse.n_bins * 50);
        assert!(fine.bits() > coarse.bits());
    }

    proptest! {
        #[test]
        fn prop_error_bound_holds(
            data in proptest::collection::vec(-1000.0f32..1000.0, 1..300),
            eb in 0.001f32..0.3,
            seed in any::<u64>(),
        ) {
            let mut rng = Rng::new(seed);
            let q = Quantizer::relative(eb, RoundingMode::Stochastic);
            let quant = q.quantize(&data, &mut rng);
            let back = quant.dequantize();
            let mm = compso_tensor::reduce::minmax_flat(&data);
            let range = mm.max - mm.min;
            for (&x, &y) in data.iter().zip(&back) {
                // One-bin SR error plus f32 round-off slack.
                prop_assert!((x - y).abs() <= eb * range + range * 1e-5 + 1e-6);
            }
        }

        #[test]
        fn prop_wire_roundtrip(
            data in proptest::collection::vec(-10.0f32..10.0, 0..200),
            seed in any::<u64>(),
        ) {
            let mut rng = Rng::new(seed);
            let q = Quantizer::relative(0.01, RoundingMode::Stochastic);
            let quant = q.quantize(&data, &mut rng);
            let mut w = Writer::new();
            quant.write(&mut w);
            let bytes = w.into_bytes();
            let back = Quantized::read(&mut Reader::new(&bytes)).unwrap();
            prop_assert_eq!(back, quant);
        }
    }
}
