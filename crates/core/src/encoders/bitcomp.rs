//! Bitcomp-like frame-of-reference bit packing.
//!
//! nvCOMP's Bitcomp targets numeric data: subtract a per-block reference
//! (the minimum) and pack the residuals at the block's maximum significant
//! width. Table 2's finding — very high throughput, mid-pack ratio — is a
//! direct consequence of the algorithm: one pass to find the range, one
//! branch-free pass to pack.

use crate::bitpack;
use crate::wire::{Reader, WireError, Writer};

/// Block size over which the reference/width are chosen. Smaller blocks
/// adapt better; 4 KiB mirrors nvCOMP's default data-page granularity.
const BLOCK: usize = 4096;

/// Compresses `input` with per-block frame-of-reference packing.
pub fn encode(input: &[u8]) -> Vec<u8> {
    let mut w = Writer::with_capacity(input.len() + 16);
    w.u64(input.len() as u64);
    for chunk in input.chunks(BLOCK) {
        let lo = chunk.iter().copied().min().unwrap_or(0);
        let hi = chunk.iter().copied().max().unwrap_or(0);
        let width = if hi == lo {
            0
        } else {
            bitpack::bits_for((hi - lo) as u32)
        };
        w.u8(lo);
        w.u8(width as u8);
        if width > 0 {
            let codes: Vec<u32> = chunk.iter().map(|&b| (b - lo) as u32).collect();
            w.bytes(&bitpack::pack(&codes, width));
        }
    }
    w.into_bytes()
}

/// Inverse of [`encode`].
pub fn decode(input: &[u8]) -> Result<Vec<u8>, WireError> {
    let mut r = Reader::new(input);
    let n = crate::wire::checked_count(r.u64()?)?;
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let count = (n - out.len()).min(BLOCK);
        let lo = r.u8()?;
        let width = r.u8()? as u32;
        if width == 0 {
            out.extend(std::iter::repeat_n(lo, count));
            continue;
        }
        if width > 8 {
            return Err(WireError::Invalid("bitcomp width"));
        }
        let need = (count * width as usize).div_ceil(8);
        let bytes = r.bytes(need)?;
        let codes = bitpack::unpack(bytes, width, count)?;
        for c in codes {
            let v = lo as u32 + c;
            if v > 255 {
                return Err(WireError::Invalid("bitcomp residual overflow"));
            }
            out.push(v as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    // Explicit import: proptest's prelude also globs a `Rng` trait.
    use compso_tensor::rng::Rng;

    #[test]
    fn constant_block_is_two_bytes() {
        let data = vec![9u8; BLOCK];
        let enc = encode(&data);
        assert_eq!(enc.len(), 8 + 2);
        assert_eq!(decode(&enc).unwrap(), data);
    }

    #[test]
    fn small_range_packs_tight() {
        // Values in 0..16 need 4 bits -> ~2x compression.
        let mut rng = Rng::new(1);
        let data: Vec<u8> = (0..100_000).map(|_| (rng.below(16)) as u8).collect();
        let enc = encode(&data);
        assert!(enc.len() < data.len() * 55 / 100, "len {}", enc.len());
        assert_eq!(decode(&enc).unwrap(), data);
    }

    #[test]
    fn full_range_does_not_shrink_but_roundtrips() {
        let mut rng = Rng::new(2);
        let data: Vec<u8> = (0..20_000).map(|_| rng.next_u32() as u8).collect();
        let enc = encode(&data);
        assert_eq!(decode(&enc).unwrap(), data);
        assert!(enc.len() <= data.len() + data.len() / BLOCK * 2 + 16);
    }

    #[test]
    fn frame_of_reference_helps_offset_data() {
        // Values in 200..208: tiny residual width despite large magnitudes.
        let mut rng = Rng::new(3);
        let data: Vec<u8> = (0..50_000).map(|_| 200 + (rng.below(8)) as u8).collect();
        let enc = encode(&data);
        assert!(enc.len() < data.len() / 2, "len {}", enc.len());
        assert_eq!(decode(&enc).unwrap(), data);
    }

    #[test]
    fn empty_input() {
        assert_eq!(decode(&encode(&[])).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn partial_final_block() {
        let data: Vec<u8> = (0..(BLOCK + 37)).map(|i| (i % 10) as u8).collect();
        let enc = encode(&data);
        assert_eq!(decode(&enc).unwrap(), data);
    }

    #[test]
    fn truncation_detected() {
        let data = vec![5u8; 1000];
        let enc = encode(&data);
        for cut in [0usize, 5, enc.len() - 1] {
            assert!(decode(&enc[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn corrupt_width_detected() {
        let data: Vec<u8> = (0..100).map(|i| i as u8).collect();
        let mut enc = encode(&data);
        enc[9] = 20; // width byte of the first block: 20 bits is invalid
        assert!(decode(&enc).is_err());
    }

    proptest! {
        #[test]
        fn prop_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..10_000)) {
            let enc = encode(&data);
            prop_assert_eq!(decode(&enc).unwrap(), data);
        }
    }
}
