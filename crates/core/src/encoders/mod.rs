//! Lossless byte encoders (step 3 of Fig. 4a).
//!
//! COMPSO "selects the best-fit GPU encoders from existing
//! implementations" — the eight nvCOMP codecs of Table 2. Each family is
//! reimplemented from scratch here with its defining algorithmic
//! structure, so the Table 2 experiment (entropy coders beat dictionary
//! and run-length coders on quantized-gradient data; ANS wins the
//! ratio×throughput product) reproduces from first principles:
//!
//! | Codec      | structure                          |
//! |------------|------------------------------------|
//! | `Ans`      | static rANS entropy coder          |
//! | `Bitcomp`  | frame-of-reference bit packing     |
//! | `Cascaded` | delta + run-length                 |
//! | `Deflate`  | LZ77 (32 KiB window) + Huffman     |
//! | `Gdeflate` | LZ77 (64 KiB window, deep chains) + Huffman |
//! | `Lz4`      | LZ77, head-only probing            |
//! | `Snappy`   | LZ77, small window, head-only      |
//! | `Zstd`     | LZ77 + rANS                        |

pub mod bitcomp;
pub mod huffman;
pub mod lz;
pub mod rans;
pub mod rle;

use crate::wire::WireError;
use lz::LzParams;

/// The lossless codec menu (mirrors Table 2 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Codec {
    Ans,
    Bitcomp,
    Cascaded,
    Deflate,
    Gdeflate,
    Lz4,
    Snappy,
    Zstd,
}

impl Codec {
    /// Every codec, in Table 2's row order.
    pub fn all() -> [Codec; 8] {
        [
            Codec::Ans,
            Codec::Bitcomp,
            Codec::Cascaded,
            Codec::Deflate,
            Codec::Gdeflate,
            Codec::Lz4,
            Codec::Snappy,
            Codec::Zstd,
        ]
    }

    /// Display name matching the paper's table.
    pub fn name(self) -> &'static str {
        match self {
            Codec::Ans => "ANS",
            Codec::Bitcomp => "Bitcomp",
            Codec::Cascaded => "Cascaded",
            Codec::Deflate => "Deflate",
            Codec::Gdeflate => "Gdeflate",
            Codec::Lz4 => "LZ4",
            Codec::Snappy => "Snappy",
            Codec::Zstd => "Zstd",
        }
    }

    /// Stable wire id.
    pub fn tag(self) -> u8 {
        match self {
            Codec::Ans => 0,
            Codec::Bitcomp => 1,
            Codec::Cascaded => 2,
            Codec::Deflate => 3,
            Codec::Gdeflate => 4,
            Codec::Lz4 => 5,
            Codec::Snappy => 6,
            Codec::Zstd => 7,
        }
    }

    /// Inverse of [`Codec::tag`].
    pub fn from_tag(tag: u8) -> Option<Codec> {
        Codec::all().into_iter().find(|c| c.tag() == tag)
    }

    /// True for codecs whose final stage is entropy coding — the class
    /// Table 2 finds superior on gradient data.
    pub fn is_entropy_coding(self) -> bool {
        matches!(
            self,
            Codec::Ans | Codec::Deflate | Codec::Gdeflate | Codec::Zstd
        )
    }

    /// Compresses a byte block. Output is self-describing.
    pub fn encode(self, input: &[u8]) -> Vec<u8> {
        match self {
            Codec::Ans => rans::encode(input),
            Codec::Bitcomp => bitcomp::encode(input),
            Codec::Cascaded => rle::encode(input),
            Codec::Deflate => huffman::encode(&lz::encode(input, LzParams::deflate())),
            Codec::Gdeflate => huffman::encode(&lz::encode(input, LzParams::gdeflate())),
            Codec::Lz4 => lz::encode(input, LzParams::fast()),
            Codec::Snappy => lz::encode(input, LzParams::snappy()),
            Codec::Zstd => rans::encode(&lz::encode(input, LzParams::gdeflate())),
        }
    }

    /// [`Codec::encode`] with the throughput-optimized encoder substituted
    /// where a wire-compatible one exists: rANS entropy stages switch to
    /// the 4-lane interleaved encoder ([`rans::encode_interleaved`]),
    /// whose reciprocal-multiply division and independent dependency
    /// chains lift single-core throughput. The output stays
    /// self-describing — [`Codec::decode`] reads both layouts via the
    /// mode byte — so only encode call sites opt in; the serial pipeline
    /// keeps the single-lane encoder as the scalar oracle.
    pub fn encode_fast(self, input: &[u8]) -> Vec<u8> {
        match self {
            Codec::Ans => rans::encode_interleaved(input),
            Codec::Zstd => rans::encode_interleaved(&lz::encode(input, LzParams::gdeflate())),
            other => other.encode(input),
        }
    }

    /// Inverse of [`Codec::encode`]; errors on corrupt or truncated input.
    pub fn decode(self, input: &[u8]) -> Result<Vec<u8>, WireError> {
        match self {
            Codec::Ans => rans::decode(input),
            Codec::Bitcomp => bitcomp::decode(input),
            Codec::Cascaded => rle::decode(input),
            Codec::Deflate => lz::decode(&huffman::decode(input)?, LzParams::deflate()),
            Codec::Gdeflate => lz::decode(&huffman::decode(input)?, LzParams::gdeflate()),
            Codec::Lz4 => lz::decode(input, LzParams::fast()),
            Codec::Snappy => lz::decode(input, LzParams::snappy()),
            Codec::Zstd => lz::decode(&rans::decode(input)?, LzParams::gdeflate()),
        }
    }

    /// Block-parallel encode: the input is split into `block` -byte
    /// chunks, each encoded independently (rayon), concatenated with a
    /// small frame header. This is nvCOMP's execution model — "parallel
    /// execution on GPUs via a block processing scheme" (§5.2) — at the
    /// cost of per-block table overhead. Blocks are encoded with
    /// [`Codec::encode_fast`]; each frame stays self-describing, so
    /// [`Codec::decode_blocks`] is unchanged.
    pub fn encode_blocks(self, input: &[u8], block: usize) -> Vec<u8> {
        use rayon::prelude::*;
        assert!(block > 0, "block size must be positive");
        let encoded: Vec<Vec<u8>> = input
            .par_chunks(block)
            .map(|c| self.encode_fast(c))
            .collect();
        let mut w = crate::wire::Writer::with_capacity(input.len() / 2 + 32);
        w.u8(self.tag());
        w.u64(input.len() as u64);
        w.u64(block as u64);
        w.u32(encoded.len() as u32);
        for e in &encoded {
            w.block(e);
        }
        w.into_bytes()
    }

    /// Inverse of [`Codec::encode_blocks`] (also block-parallel).
    pub fn decode_blocks(input: &[u8]) -> Result<Vec<u8>, WireError> {
        let mut out = Vec::new();
        Self::decode_blocks_into(input, &mut out)?;
        Ok(out)
    }

    /// [`Codec::decode_blocks`] writing into a caller-owned buffer.
    ///
    /// The buffer is cleared but its capacity is kept, so steady-state
    /// decode loops (one per training step) stop paying an allocation for
    /// the concatenated output stream. All length fields are validated
    /// against the bytes actually received before anything is reserved:
    /// a hostile block count cannot outrun the buffer because every block
    /// frame costs at least its 8-byte length prefix.
    pub fn decode_blocks_into(input: &[u8], out: &mut Vec<u8>) -> Result<(), WireError> {
        use rayon::prelude::*;
        out.clear();
        let mut r = crate::wire::Reader::new(input);
        let codec = Codec::from_tag(r.u8()?).ok_or(WireError::Invalid("codec tag"))?;
        let total = crate::wire::checked_count(r.u64()?)?;
        let block = crate::wire::checked_count(r.u64()?)?;
        if block == 0 {
            return Err(WireError::Invalid("block size"));
        }
        let n_blocks = r.u32()? as usize;
        if n_blocks != total.div_ceil(block) {
            return Err(WireError::Invalid("block count"));
        }
        if n_blocks > r.remaining() / 8 {
            return Err(WireError::Invalid("block count vs buffer"));
        }
        let mut frames = Vec::with_capacity(n_blocks);
        for _ in 0..n_blocks {
            frames.push(r.block()?);
        }
        if !r.is_exhausted() {
            return Err(WireError::Invalid("trailing block bytes"));
        }
        let decoded: Result<Vec<Vec<u8>>, WireError> =
            frames.par_iter().map(|f| codec.decode(f)).collect();
        let decoded = decoded?;
        let produced: usize = decoded.iter().map(|d| d.len()).sum();
        if produced != total {
            return Err(WireError::Invalid("block payload length"));
        }
        out.reserve(produced);
        for d in &decoded {
            out.extend_from_slice(d);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    // Explicit import: proptest's prelude also globs a `Rng` trait.
    use compso_tensor::rng::Rng;

    /// Quantized-gradient-like bytes: heavily skewed toward a center code.
    fn gradient_codes(n: usize, seed: u64) -> Vec<u8> {
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|_| {
                let v = rng.laplace(3.0);
                (64.0 + v).clamp(0.0, 127.0) as u8
            })
            .collect()
    }

    #[test]
    fn all_codecs_roundtrip_gradient_codes() {
        let data = gradient_codes(30_000, 1);
        for codec in Codec::all() {
            let enc = codec.encode(&data);
            assert_eq!(codec.decode(&enc).unwrap(), data, "{}", codec.name());
        }
    }

    #[test]
    fn all_codecs_roundtrip_edge_inputs() {
        let mut rng = Rng::new(2);
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![0],
            vec![255; 1],
            vec![0; 10_000],
            (0..=255u8).collect(),
            (0..5000).map(|_| rng.next_u32() as u8).collect(),
        ];
        for codec in Codec::all() {
            for data in &cases {
                let enc = codec.encode(data);
                assert_eq!(&codec.decode(&enc).unwrap(), data, "{}", codec.name());
            }
        }
    }

    #[test]
    fn encode_fast_roundtrips_and_decodes_serial_output() {
        // encode_fast output must decode through the plain decoder for
        // every codec, to the same bytes the serial encoder preserves.
        let data = gradient_codes(30_000, 21);
        for codec in Codec::all() {
            let fast = codec.encode_fast(&data);
            let serial = codec.encode(&data);
            assert_eq!(codec.decode(&fast).unwrap(), data, "{}", codec.name());
            assert_eq!(codec.decode(&serial).unwrap(), data, "{}", codec.name());
        }
    }

    #[test]
    fn entropy_coders_beat_dictionary_on_gradient_codes() {
        // Table 2's headline ordering: the gradient-code distribution is
        // non-uniform but has few exact repeats, so entropy coding wins.
        let data = gradient_codes(100_000, 3);
        let ans = Codec::Ans.encode(&data).len();
        let lz4 = Codec::Lz4.encode(&data).len();
        let snappy = Codec::Snappy.encode(&data).len();
        assert!(ans < lz4, "ans {ans} lz4 {lz4}");
        assert!(ans < snappy, "ans {ans} snappy {snappy}");
    }

    #[test]
    fn tags_roundtrip() {
        for codec in Codec::all() {
            assert_eq!(Codec::from_tag(codec.tag()), Some(codec));
        }
        assert_eq!(Codec::from_tag(200), None);
    }

    #[test]
    fn entropy_classification() {
        assert!(Codec::Ans.is_entropy_coding());
        assert!(Codec::Zstd.is_entropy_coding());
        assert!(!Codec::Lz4.is_entropy_coding());
        assert!(!Codec::Cascaded.is_entropy_coding());
    }

    #[test]
    fn block_parallel_roundtrip_all_codecs() {
        let data = gradient_codes(300_000, 9);
        for codec in Codec::all() {
            let enc = codec.encode_blocks(&data, 64 * 1024);
            assert_eq!(
                Codec::decode_blocks(&enc).unwrap(),
                data,
                "{}",
                codec.name()
            );
        }
    }

    #[test]
    fn block_parallel_edge_sizes() {
        for n in [0usize, 1, 1024, 64 * 1024, 64 * 1024 + 1] {
            let data = gradient_codes(n, 10);
            let enc = Codec::Ans.encode_blocks(&data, 64 * 1024);
            assert_eq!(Codec::decode_blocks(&enc).unwrap(), data, "n={n}");
        }
    }

    #[test]
    fn block_parallel_truncation_rejected() {
        let data = gradient_codes(200_000, 11);
        let enc = Codec::Ans.encode_blocks(&data, 32 * 1024);
        for cut in [0usize, 5, 12, enc.len() / 2, enc.len() - 1] {
            assert!(Codec::decode_blocks(&enc[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn decode_blocks_into_reuses_capacity() {
        let big = gradient_codes(150_000, 12);
        let small = gradient_codes(500, 13);
        let enc_big = Codec::Ans.encode_blocks(&big, 32 * 1024);
        let enc_small = Codec::Ans.encode_blocks(&small, 32 * 1024);
        let mut out = Vec::new();
        Codec::decode_blocks_into(&enc_big, &mut out).unwrap();
        assert_eq!(out, big);
        let cap = out.capacity();
        Codec::decode_blocks_into(&enc_small, &mut out).unwrap();
        assert_eq!(out, small);
        assert_eq!(out.capacity(), cap, "scratch capacity was not kept");
    }

    #[test]
    fn hostile_block_count_cannot_outrun_buffer() {
        // Claim a huge total/block-count with almost no bytes behind it:
        // the count is rejected against the actual buffer before any
        // frame vector is reserved.
        let mut w = crate::wire::Writer::new();
        w.u8(Codec::Ans.tag());
        w.u64(1 << 27); // total bytes
        w.u64(1); // block size -> 2^27 blocks
        w.u32(1 << 27);
        let bytes = w.into_bytes();
        assert_eq!(
            Codec::decode_blocks(&bytes),
            Err(WireError::Invalid("block count vs buffer"))
        );
    }

    #[test]
    fn all_codecs_reject_truncated_input() {
        let data = gradient_codes(5000, 4);
        for codec in Codec::all() {
            let enc = codec.encode(&data);
            for cut in [0usize, 3, enc.len() / 2] {
                assert!(
                    codec.decode(&enc[..cut]).is_err(),
                    "{} accepted truncation at {cut}",
                    codec.name()
                );
            }
        }
    }

    #[test]
    fn all_codecs_decode_is_deterministic() {
        let data = gradient_codes(2000, 5);
        for codec in Codec::all() {
            let enc = codec.encode(&data);
            assert_eq!(codec.decode(&enc).unwrap(), codec.decode(&enc).unwrap());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_every_codec_roundtrips(data in proptest::collection::vec(any::<u8>(), 0..1500)) {
            for codec in Codec::all() {
                let enc = codec.encode(&data);
                prop_assert_eq!(codec.decode(&enc).unwrap(), data.clone(), "{}", codec.name());
            }
        }

        #[test]
        fn prop_corruption_never_panics(
            data in proptest::collection::vec(any::<u8>(), 1..500),
            flip in any::<(usize, u8)>(),
        ) {
            // Decoding corrupted bytes may error or produce wrong bytes,
            // but must never panic.
            for codec in Codec::all() {
                let mut enc = codec.encode(&data);
                let pos = flip.0 % enc.len();
                enc[pos] ^= flip.1 | 1;
                let _ = codec.decode(&enc);
            }
        }
    }
}
