//! A parameterized LZ77 engine.
//!
//! The dictionary-matching backend behind the LZ4-like and Snappy-like
//! codecs and the LZ stage of the Deflate/Gdeflate/Zstd-like composites
//! (Table 2). Greedy hash-head matching with optional chain walking:
//!
//! * token stream: control byte with the top bit clear = literal run of
//!   `ctrl + 1` bytes (1..=128); top bit set = match of length
//!   `(ctrl & 0x7f) + MIN_MATCH` at a 16-bit back-offset;
//! * `max_chain = 0` checks only the most recent hash head (LZ4/Snappy
//!   speed profile); larger values walk previous occurrences for better
//!   matches (Deflate/Gdeflate ratio profile).

use crate::wire::{Reader, WireError, Writer};

/// Minimum match length worth a 3-byte token.
pub const MIN_MATCH: usize = 4;
/// Maximum match length encodable in one token.
pub const MAX_MATCH: usize = MIN_MATCH + 0x7f;
/// Maximum literal run per token.
const MAX_LITERALS: usize = 128;

/// Tuning knobs distinguishing the codec family members.
#[derive(Clone, Copy, Debug)]
pub struct LzParams {
    /// Match window (max back-offset), at most 65535.
    pub window: usize,
    /// Extra previous-occurrence probes per position (0 = head only).
    pub max_chain: usize,
}

impl LzParams {
    /// LZ4-like speed profile.
    pub fn fast() -> Self {
        LzParams {
            window: 65_535,
            max_chain: 0,
        }
    }

    /// Snappy-like profile: smaller window, head-only probing.
    pub fn snappy() -> Self {
        LzParams {
            window: 32_768,
            max_chain: 0,
        }
    }

    /// Deflate-like ratio profile.
    pub fn deflate() -> Self {
        LzParams {
            window: 32_768,
            max_chain: 8,
        }
    }

    /// Gdeflate-like profile: full window, deeper chains.
    pub fn gdeflate() -> Self {
        LzParams {
            window: 65_535,
            max_chain: 16,
        }
    }
}

const HASH_BITS: u32 = 15;

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

/// Compresses `input` into the token stream (length header included).
pub fn encode(input: &[u8], params: LzParams) -> Vec<u8> {
    assert!(params.window <= 65_535, "window exceeds u16 offsets");
    let mut w = Writer::with_capacity(input.len() / 2 + 16);
    w.u64(input.len() as u64);

    let n = input.len();
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; n];
    let mut tokens = Writer::with_capacity(n / 2);
    let mut lit_start = 0usize;
    let mut i = 0usize;

    let flush_literals = |tokens: &mut Writer, input: &[u8], from: usize, to: usize| {
        let mut s = from;
        while s < to {
            let run = (to - s).min(MAX_LITERALS);
            tokens.u8((run - 1) as u8);
            tokens.bytes(&input[s..s + run]);
            s += run;
        }
    };

    while i + MIN_MATCH <= n {
        let h = hash4(&input[i..]);
        // Probe the hash chain for the best match.
        let mut best_len = 0usize;
        let mut best_off = 0usize;
        let mut cand = head[h];
        let mut probes = 0usize;
        while cand != usize::MAX && i - cand <= params.window && probes <= params.max_chain {
            let mut l = 0usize;
            let max_l = (n - i).min(MAX_MATCH);
            while l < max_l && input[cand + l] == input[i + l] {
                l += 1;
            }
            if l > best_len {
                best_len = l;
                best_off = i - cand;
                if l >= MAX_MATCH {
                    break;
                }
            }
            cand = prev[cand];
            probes += 1;
        }

        if best_len >= MIN_MATCH {
            flush_literals(&mut tokens, input, lit_start, i);
            tokens.u8(0x80 | (best_len - MIN_MATCH) as u8);
            tokens.u16(best_off as u16);
            // Insert hash entries for the matched region so later matches
            // can reference it.
            let end = (i + best_len).min(n.saturating_sub(MIN_MATCH - 1));
            let mut j = i;
            while j < end {
                let hj = hash4(&input[j..]);
                prev[j] = head[hj];
                head[hj] = j;
                j += 1;
            }
            i += best_len;
            lit_start = i;
        } else {
            prev[i] = head[h];
            head[h] = i;
            i += 1;
        }
    }
    flush_literals(&mut tokens, input, lit_start, n);

    w.block(&tokens.into_bytes());
    w.into_bytes()
}

/// Inverse of [`encode`].
pub fn decode(input: &[u8], params: LzParams) -> Result<Vec<u8>, WireError> {
    let _ = params; // decoding is parameter-independent
    let mut r = Reader::new(input);
    let n = crate::wire::checked_count(r.u64()?)?;
    let tokens = r.block()?;
    let mut out: Vec<u8> = Vec::with_capacity(n);
    let mut t = Reader::new(tokens);
    while out.len() < n {
        let ctrl = t.u8()?;
        if ctrl & 0x80 == 0 {
            let run = ctrl as usize + 1;
            if out.len() + run > n {
                return Err(WireError::Invalid("literal run overruns length"));
            }
            out.extend_from_slice(t.bytes(run)?);
        } else {
            let len = (ctrl & 0x7f) as usize + MIN_MATCH;
            let off = t.u16()? as usize;
            if off == 0 || off > out.len() {
                return Err(WireError::Invalid("match offset"));
            }
            if out.len() + len > n {
                return Err(WireError::Invalid("match overruns length"));
            }
            // Overlapping copies are legal (off < len repeats a pattern).
            let start = out.len() - off;
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    // Explicit import: proptest's prelude also globs a `Rng` trait.
    use compso_tensor::rng::Rng;

    fn all_params() -> Vec<LzParams> {
        vec![
            LzParams::fast(),
            LzParams::snappy(),
            LzParams::deflate(),
            LzParams::gdeflate(),
        ]
    }

    #[test]
    fn roundtrip_repetitive() {
        let data = b"abcabcabcabcabcabcabcabcabcabc".to_vec();
        for p in all_params() {
            let enc = encode(&data, p);
            assert_eq!(decode(&enc, p).unwrap(), data, "{p:?}");
            assert!(enc.len() < data.len() + 16);
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        for p in all_params() {
            for data in [vec![], vec![1u8], vec![1u8, 2, 3]] {
                let enc = encode(&data, p);
                assert_eq!(decode(&enc, p).unwrap(), data);
            }
        }
    }

    #[test]
    fn long_run_uses_overlapping_matches() {
        let data = vec![0u8; 100_000];
        let p = LzParams::fast();
        let enc = encode(&data, p);
        assert!(
            enc.len() < 4000,
            "run-length-ish input should shrink: {}",
            enc.len()
        );
        assert_eq!(decode(&enc, p).unwrap(), data);
    }

    #[test]
    fn deeper_chains_never_worse_ratio() {
        // Text with multiple repeated substrings at various distances.
        let mut rng = Rng::new(1);
        let words = [b"gradient".as_ref(), b"kfac", b"layer", b"tensor", b"comm"];
        let mut data = Vec::new();
        for _ in 0..3000 {
            data.extend_from_slice(words[rng.below(5) as usize]);
            data.push(b' ');
        }
        let fast = encode(&data, LzParams::fast());
        let deep = encode(&data, LzParams::gdeflate());
        assert!(
            deep.len() <= fast.len() + 64,
            "deep {} fast {}",
            deep.len(),
            fast.len()
        );
        assert_eq!(decode(&deep, LzParams::gdeflate()).unwrap(), data);
    }

    #[test]
    fn incompressible_random_data_roundtrips() {
        let mut rng = Rng::new(2);
        let data: Vec<u8> = (0..10_000).map(|_| rng.next_u32() as u8).collect();
        for p in all_params() {
            let enc = encode(&data, p);
            assert_eq!(decode(&enc, p).unwrap(), data);
            // Worst case expansion: 1 control byte per 128 literals + header.
            assert!(enc.len() <= data.len() + data.len() / 64 + 32);
        }
    }

    #[test]
    fn corrupt_offset_detected() {
        let data = b"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa".to_vec();
        let p = LzParams::fast();
        let mut enc = encode(&data, p);
        // Find the first match token (top bit set) after the 16-byte header
        // area and corrupt its offset to zero.
        let token_area = 16;
        if let Some(pos) = enc[token_area..].iter().position(|&b| b & 0x80 != 0) {
            let off_pos = token_area + pos + 1;
            enc[off_pos] = 0;
            enc[off_pos + 1] = 0;
            assert!(decode(&enc, p).is_err());
        } else {
            panic!("expected a match token in repetitive data");
        }
    }

    #[test]
    fn truncation_detected() {
        let data = b"hello world hello world hello world".to_vec();
        let p = LzParams::deflate();
        let enc = encode(&data, p);
        for cut in [0usize, 4, 8, enc.len() / 2] {
            assert!(decode(&enc[..cut], p).is_err(), "cut={cut}");
        }
    }

    proptest! {
        #[test]
        fn prop_roundtrip_all_profiles(data in proptest::collection::vec(any::<u8>(), 0..2000)) {
            for p in all_params() {
                let enc = encode(&data, p);
                prop_assert_eq!(decode(&enc, p).unwrap(), data.clone());
            }
        }

        #[test]
        fn prop_roundtrip_structured(
            pattern in proptest::collection::vec(any::<u8>(), 1..20),
            reps in 1usize..200,
        ) {
            let data: Vec<u8> = pattern.iter().copied().cycle().take(pattern.len() * reps).collect();
            let p = LzParams::deflate();
            let enc = encode(&data, p);
            prop_assert_eq!(decode(&enc, p).unwrap(), data);
        }
    }
}
