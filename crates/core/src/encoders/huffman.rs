//! Canonical Huffman coding over byte symbols.
//!
//! The entropy-coding backend of the Deflate/Gdeflate-family codecs
//! (Table 2 of the paper). Code lengths come from a standard heap-built
//! Huffman tree; codes are canonical, so the header only carries the 256
//! code lengths. Inputs whose Huffman stream would not shrink — or whose
//! tree would exceed 32-bit codes, which requires pathological
//! Fibonacci-like frequencies — are emitted as stored blocks.

use crate::wire::{Reader, WireError, Writer};

const MAX_CODE_LEN: u32 = 32;
const MODE_STORED: u8 = 0;
const MODE_HUFFMAN: u8 = 1;

/// Computes Huffman code lengths for the 256 byte symbols from counts.
/// Symbols with zero count get length 0 (no code).
fn code_lengths(counts: &[u64; 256]) -> [u32; 256] {
    let mut lengths = [0u32; 256];
    let active: Vec<usize> = (0..256).filter(|&s| counts[s] > 0).collect();
    match active.len() {
        0 => return lengths,
        1 => {
            lengths[active[0]] = 1;
            return lengths;
        }
        _ => {}
    }

    // Heap of (weight, node). Nodes 0..256 are leaves; internal nodes are
    // appended. parent[] lets us read depths off afterwards.
    #[derive(PartialEq, Eq)]
    struct Item(u64, usize);
    impl Ord for Item {
        fn cmp(&self, o: &Self) -> std::cmp::Ordering {
            // Reverse for a min-heap; tie-break on node id for determinism.
            o.0.cmp(&self.0).then(o.1.cmp(&self.1))
        }
    }
    impl PartialOrd for Item {
        fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(o))
        }
    }

    let mut heap = std::collections::BinaryHeap::new();
    let mut parent: Vec<usize> = vec![usize::MAX; 256];
    for &s in &active {
        heap.push(Item(counts[s], s));
    }
    while heap.len() > 1 {
        let a = heap.pop().unwrap();
        let b = heap.pop().unwrap();
        let node = parent.len();
        parent.push(usize::MAX);
        parent[a.1] = node;
        parent[b.1] = node;
        heap.push(Item(a.0 + b.0, node));
    }
    let root = heap.pop().unwrap().1;
    for &s in &active {
        let mut depth = 0;
        let mut n = s;
        while n != root {
            n = parent[n];
            depth += 1;
        }
        lengths[s] = depth;
    }
    lengths
}

/// Assigns canonical codes given lengths: shorter codes first, ties by
/// symbol value. Returns (code, length) pairs.
fn canonical_codes(lengths: &[u32; 256]) -> [(u64, u32); 256] {
    let mut codes = [(0u64, 0u32); 256];
    let mut symbols: Vec<usize> = (0..256).filter(|&s| lengths[s] > 0).collect();
    symbols.sort_by_key(|&s| (lengths[s], s));
    let mut code = 0u64;
    let mut prev_len = 0u32;
    for &s in &symbols {
        let len = lengths[s];
        code <<= len - prev_len;
        codes[s] = (code, len);
        code += 1;
        prev_len = len;
    }
    codes
}

/// A canonical decoding table: per length, the first code and the base
/// index into the length-sorted symbol list.
struct DecodeTable {
    /// Symbols sorted by (length, symbol).
    symbols: Vec<u8>,
    /// `first_code[l]`, `first_index[l]` for each length `l`.
    first_code: Vec<u64>,
    first_index: Vec<usize>,
    max_len: u32,
}

impl DecodeTable {
    fn new(lengths: &[u32; 256]) -> Result<Self, WireError> {
        let mut symbols: Vec<u8> = (0..256u16)
            .filter(|&s| lengths[s as usize] > 0)
            .map(|s| s as u8)
            .collect();
        symbols.sort_by_key(|&s| (lengths[s as usize], s));
        let max_len = lengths.iter().copied().max().unwrap_or(0);
        if max_len > MAX_CODE_LEN {
            return Err(WireError::Invalid("huffman code length"));
        }
        // Kraft check: a valid (possibly non-full for the 1-symbol case)
        // prefix code has sum 2^-l <= 1.
        let kraft: f64 = symbols
            .iter()
            .map(|&s| 0.5f64.powi(lengths[s as usize] as i32))
            .sum();
        if kraft > 1.0 + 1e-9 {
            return Err(WireError::Invalid("huffman kraft inequality"));
        }
        let mut first_code = vec![0u64; (max_len + 2) as usize];
        let mut first_index = vec![0usize; (max_len + 2) as usize];
        let mut code = 0u64;
        let mut idx = 0usize;
        for l in 1..=max_len {
            first_code[l as usize] = code;
            first_index[l as usize] = idx;
            let count = symbols
                .iter()
                .filter(|&&s| lengths[s as usize] == l)
                .count();
            code = (code + count as u64) << 1;
            idx += count;
        }
        first_index[(max_len + 1) as usize] = idx;
        Ok(DecodeTable {
            symbols,
            first_code,
            first_index,
            max_len,
        })
    }

    /// Walks bits MSB-first until a code completes.
    fn decode_symbol(&self, bits: &mut BitReader) -> Result<u8, WireError> {
        let mut code = 0u64;
        for l in 1..=self.max_len {
            code = (code << 1) | bits.next()? as u64;
            let count = self.first_index[l as usize + 1] - self.first_index[l as usize];
            let first = self.first_code[l as usize];
            if count > 0 && code >= first && code < first + count as u64 {
                let idx = self.first_index[l as usize] + (code - first) as usize;
                return Ok(self.symbols[idx]);
            }
        }
        Err(WireError::Invalid("huffman code walk"))
    }
}

/// MSB-first bit writer.
struct BitWriter {
    out: Vec<u8>,
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    fn new() -> Self {
        BitWriter {
            out: Vec::new(),
            acc: 0,
            nbits: 0,
        }
    }

    fn push(&mut self, code: u64, len: u32) {
        debug_assert!(len <= MAX_CODE_LEN);
        self.acc = (self.acc << len) | (code & ((1u128 << len) - 1) as u64);
        self.nbits += len;
        while self.nbits >= 8 {
            self.nbits -= 8;
            self.out.push((self.acc >> self.nbits) as u8);
        }
    }

    fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.out.push((self.acc << (8 - self.nbits)) as u8);
        }
        self.out
    }
}

/// MSB-first bit reader.
struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    bit: u32,
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        BitReader {
            bytes,
            pos: 0,
            bit: 0,
        }
    }

    fn next(&mut self) -> Result<u8, WireError> {
        if self.pos >= self.bytes.len() {
            return Err(WireError::Truncated {
                need: self.pos + 1,
                have: self.bytes.len(),
            });
        }
        let b = (self.bytes[self.pos] >> (7 - self.bit)) & 1;
        self.bit += 1;
        if self.bit == 8 {
            self.bit = 0;
            self.pos += 1;
        }
        Ok(b)
    }
}

/// Compresses `input` with canonical Huffman coding.
pub fn encode(input: &[u8]) -> Vec<u8> {
    let mut counts = [0u64; 256];
    for &b in input {
        counts[b as usize] += 1;
    }
    let lengths = code_lengths(&counts);
    let max_len = lengths.iter().copied().max().unwrap_or(0);

    let stored = |input: &[u8]| {
        let mut w = Writer::with_capacity(input.len() + 16);
        w.u8(MODE_STORED);
        w.block(input);
        w.into_bytes()
    };

    if input.is_empty() || max_len > MAX_CODE_LEN {
        return stored(input);
    }

    let codes = canonical_codes(&lengths);
    let mut bits = BitWriter::new();
    for &b in input {
        let (code, len) = codes[b as usize];
        bits.push(code, len);
    }
    let payload = bits.finish();

    let mut w = Writer::with_capacity(payload.len() + 300);
    w.u8(MODE_HUFFMAN);
    w.u64(input.len() as u64);
    for &l in &lengths {
        w.u8(l as u8);
    }
    w.block(&payload);
    let out = w.into_bytes();
    if out.len() >= input.len() + 9 {
        stored(input)
    } else {
        out
    }
}

/// Inverse of [`encode`].
pub fn decode(input: &[u8]) -> Result<Vec<u8>, WireError> {
    let mut r = Reader::new(input);
    match r.u8()? {
        MODE_STORED => Ok(r.block()?.to_vec()),
        MODE_HUFFMAN => {
            let n = crate::wire::checked_count(r.u64()?)?;
            let mut lengths = [0u32; 256];
            for l in lengths.iter_mut() {
                *l = r.u8()? as u32;
            }
            let table = DecodeTable::new(&lengths)?;
            let payload = r.block()?;
            let mut bits = BitReader::new(payload);
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(table.decode_symbol(&mut bits)?);
            }
            Ok(out)
        }
        _ => Err(WireError::Invalid("huffman mode byte")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    // Explicit import: proptest's prelude also globs a `Rng` trait.
    use compso_tensor::rng::Rng;

    #[test]
    fn roundtrip_simple() {
        let data = b"abracadabra abracadabra".to_vec();
        let enc = encode(&data);
        assert_eq!(decode(&enc).unwrap(), data);
    }

    #[test]
    fn empty_input() {
        let enc = encode(&[]);
        assert_eq!(decode(&enc).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn single_symbol_stream() {
        let data = vec![42u8; 10_000];
        let enc = encode(&data);
        assert!(
            enc.len() < 2000,
            "single-symbol should compress hugely: {}",
            enc.len()
        );
        assert_eq!(decode(&enc).unwrap(), data);
    }

    #[test]
    fn two_symbols() {
        let data: Vec<u8> = (0..1000).map(|i| if i % 3 == 0 { 7 } else { 9 }).collect();
        let enc = encode(&data);
        assert_eq!(decode(&enc).unwrap(), data);
        // 1 bit/symbol + header.
        assert!(enc.len() < 450);
    }

    #[test]
    fn skewed_distribution_compresses() {
        let mut rng = Rng::new(1);
        // Geometric-ish distribution over few symbols.
        let data: Vec<u8> = (0..50_000)
            .map(|_| {
                let u = rng.uniform_f64();
                if u < 0.7 {
                    0
                } else if u < 0.9 {
                    1
                } else if u < 0.97 {
                    2
                } else {
                    (rng.below(16)) as u8
                }
            })
            .collect();
        let enc = encode(&data);
        assert!(enc.len() < data.len() / 3, "len {}", enc.len());
        assert_eq!(decode(&enc).unwrap(), data);
    }

    #[test]
    fn incompressible_falls_back_to_stored() {
        let mut rng = Rng::new(2);
        let data: Vec<u8> = (0..5000).map(|_| rng.next_u32() as u8).collect();
        let enc = encode(&data);
        // Stored block adds only a small header.
        assert!(enc.len() <= data.len() + 16);
        assert_eq!(decode(&enc).unwrap(), data);
    }

    #[test]
    fn truncation_detected() {
        let data = b"hello hello hello hello hello".to_vec();
        let enc = encode(&data);
        for cut in [0usize, 1, 5, enc.len() / 2] {
            assert!(decode(&enc[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn corrupt_mode_byte_detected() {
        let mut enc = encode(b"data data data");
        enc[0] = 0xEE;
        assert!(decode(&enc).is_err());
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let mut counts = [0u64; 256];
        for (i, c) in counts.iter_mut().enumerate() {
            *c = (i as u64 % 7) + 1;
        }
        let lengths = code_lengths(&counts);
        let codes = canonical_codes(&lengths);
        // Check prefix-freeness pairwise on the bit strings.
        let active: Vec<usize> = (0..256).filter(|&s| lengths[s] > 0).collect();
        for &a in &active {
            for &b in &active {
                if a == b {
                    continue;
                }
                let (ca, la) = codes[a];
                let (cb, lb) = codes[b];
                if la <= lb {
                    assert_ne!(ca, cb >> (lb - la), "symbol {a} prefixes {b}");
                }
            }
        }
    }

    #[test]
    fn kraft_equality_for_full_trees() {
        let mut counts = [0u64; 256];
        for (i, c) in counts.iter_mut().enumerate() {
            *c = 1 + (i as u64) * 3;
        }
        let lengths = code_lengths(&counts);
        let kraft: f64 = lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 0.5f64.powi(l as i32))
            .sum();
        assert!((kraft - 1.0).abs() < 1e-12, "kraft {kraft}");
    }

    proptest! {
        #[test]
        fn prop_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..2000)) {
            let enc = encode(&data);
            prop_assert_eq!(decode(&enc).unwrap(), data);
        }

        #[test]
        fn prop_roundtrip_low_entropy(
            data in proptest::collection::vec(0u8..4, 0..2000)
        ) {
            let enc = encode(&data);
            prop_assert_eq!(decode(&enc).unwrap(), data);
        }
    }
}
