//! Cascaded delta + run-length coding.
//!
//! nvCOMP's "Cascaded" codec family chains delta, run-length and
//! bit-packing stages; the variant here is byte-wise delta followed by
//! run-length pairs with LEB128 run counts. It shines on slowly-varying
//! or constant data (long zero runs from the filter) and loses to entropy
//! coders on non-uniform but run-free data — the Table 2 ordering.

use crate::wire::{Reader, WireError, Writer};

fn write_varint(w: &mut Writer, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            w.u8(byte);
            return;
        }
        w.u8(byte | 0x80);
    }
}

fn read_varint(r: &mut Reader) -> Result<u64, WireError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = r.u8()?;
        if shift >= 63 && byte > 1 {
            return Err(WireError::Invalid("varint overflow"));
        }
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Compresses `input` with delta + RLE.
pub fn encode(input: &[u8]) -> Vec<u8> {
    let mut w = Writer::with_capacity(input.len() / 4 + 16);
    w.u64(input.len() as u64);
    let mut body = Writer::new();
    let mut prev = 0u8;
    let mut i = 0usize;
    while i < input.len() {
        let delta = input[i].wrapping_sub(prev);
        let mut run = 1u64;
        // Runs are over equal *deltas*: constant data and arithmetic ramps
        // both collapse.
        while i + (run as usize) < input.len()
            && input[i + run as usize].wrapping_sub(input[i + run as usize - 1]) == delta
        {
            run += 1;
        }
        body.u8(delta);
        write_varint(&mut body, run);
        prev = input[i + run as usize - 1];
        i += run as usize;
    }
    w.block(&body.into_bytes());
    w.into_bytes()
}

/// Inverse of [`encode`].
pub fn decode(input: &[u8]) -> Result<Vec<u8>, WireError> {
    let mut r = Reader::new(input);
    let n = crate::wire::checked_count(r.u64()?)?;
    let body = r.block()?;
    let mut b = Reader::new(body);
    let mut out = Vec::with_capacity(n);
    let mut prev = 0u8;
    while out.len() < n {
        let delta = b.u8()?;
        let run = read_varint(&mut b)?;
        if run == 0 || out.len() as u64 + run > n as u64 {
            return Err(WireError::Invalid("rle run length"));
        }
        for _ in 0..run {
            prev = prev.wrapping_add(delta);
            out.push(prev);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    // Explicit import: proptest's prelude also globs a `Rng` trait.
    use compso_tensor::rng::Rng;

    #[test]
    fn constant_data_collapses() {
        let data = vec![42u8; 100_000];
        let enc = encode(&data);
        assert!(enc.len() < 40, "len {}", enc.len());
        assert_eq!(decode(&enc).unwrap(), data);
    }

    #[test]
    fn arithmetic_ramp_collapses() {
        let data: Vec<u8> = (0..50_000u32).map(|i| (i % 256) as u8).collect();
        let enc = encode(&data);
        assert!(
            enc.len() < 60,
            "ramps are a single delta run: {}",
            enc.len()
        );
        assert_eq!(decode(&enc).unwrap(), data);
    }

    #[test]
    fn empty_input() {
        assert_eq!(decode(&encode(&[])).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn random_data_roundtrips_with_bounded_expansion() {
        let mut rng = Rng::new(1);
        let data: Vec<u8> = (0..10_000).map(|_| rng.next_u32() as u8).collect();
        let enc = encode(&data);
        assert_eq!(decode(&enc).unwrap(), data);
        // Worst case: 2 bytes per input byte + header.
        assert!(enc.len() <= 2 * data.len() + 32);
    }

    #[test]
    fn zero_runs_from_filtered_gradients() {
        // Typical post-filter codes: mostly zeros with occasional values.
        let mut rng = Rng::new(2);
        let data: Vec<u8> = (0..50_000)
            .map(|_| {
                if rng.uniform_f64() < 0.9 {
                    0
                } else {
                    rng.next_u32() as u8
                }
            })
            .collect();
        // Each isolated nonzero costs ~2 tokens (enter + leave delta), so
        // 10% density lands around 0.6x — better than raw, far worse than
        // an entropy coder, which is exactly Table 2's Cascaded placement.
        let enc = encode(&data);
        assert!(enc.len() < data.len() * 7 / 10, "len {}", enc.len());
        assert_eq!(decode(&enc).unwrap(), data);
    }

    #[test]
    fn truncation_detected() {
        let enc = encode(&[1, 1, 1, 2, 2, 3]);
        for cut in [0usize, 7, enc.len() - 1] {
            assert!(decode(&enc[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn zero_run_rejected() {
        // Handcraft a body with run = 0.
        let mut w = Writer::new();
        w.u64(4);
        let mut body = Writer::new();
        body.u8(1);
        body.u8(0); // varint 0
        w.block(&body.into_bytes());
        assert!(decode(&w.into_bytes()).is_err());
    }

    #[test]
    fn overlong_run_rejected() {
        let mut w = Writer::new();
        w.u64(2);
        let mut body = Writer::new();
        body.u8(1);
        body.u8(100); // run of 100 > claimed length 2
        w.block(&body.into_bytes());
        assert!(decode(&w.into_bytes()).is_err());
    }

    #[test]
    fn varint_boundaries() {
        let mut w = Writer::new();
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            write_varint(&mut w, v);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            assert_eq!(read_varint(&mut r).unwrap(), v);
        }
    }

    proptest! {
        #[test]
        fn prop_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..3000)) {
            let enc = encode(&data);
            prop_assert_eq!(decode(&enc).unwrap(), data);
        }

        #[test]
        fn prop_roundtrip_runs(
            vals in proptest::collection::vec((any::<u8>(), 1usize..50), 0..50)
        ) {
            let data: Vec<u8> = vals.iter().flat_map(|&(v, n)| std::iter::repeat_n(v, n)).collect();
            let enc = encode(&data);
            prop_assert_eq!(decode(&enc).unwrap(), data);
        }
    }
}
