//! Static range asymmetric numeral system (rANS) coding over bytes.
//!
//! The paper's best-performing encoder (Table 2): "ANS stands out for its
//! higher compression/decompression throughput, attributable to its fewer
//! operations ... and its capability for parallel execution on GPUs via a
//! block processing scheme". This is the standard byte-wise rANS with a
//! 12-bit normalized frequency table: encode walks the input backwards
//! emitting renormalization bytes; decode walks forwards with a 4096-entry
//! slot→symbol table, so the hot loop is one multiply, one table load and
//! an occasional byte read — the "fewer operations" property the paper
//! highlights.

use crate::wire::{Reader, WireError, Writer};

const SCALE_BITS: u32 = 12;
const SCALE: u32 = 1 << SCALE_BITS; // 4096
const RANS_L: u32 = 1 << 23; // lower renormalization bound
const MODE_STORED: u8 = 0;
const MODE_RANS: u8 = 1;
const MODE_ILEAVE: u8 = 2;

/// Interleaved encoder lane count (symbol `i` belongs to lane
/// `i & (N_LANES - 1)`). Eight states give the out-of-order core eight
/// independent multiply→shift→add chains to overlap; measured on the
/// chunked decompress path, eight lanes beat four by ~10% and the
/// header cost is only 16 more bytes per frame.
const N_LANES: usize = 8;

/// Exact reciprocal for dividing by a frequency `f ∈ 1..=SCALE` when the
/// dividend is below 2³¹ — which renormalization guarantees: the encoder
/// state is kept under `x_max = 2¹⁹·f ≤ 2³¹` before every division.
///
/// Granlund–Montgomery round-up multiply: with `ℓ = ⌈log₂ f⌉` and
/// `m = ⌊2^(31+ℓ)/f⌋ + 1`, the quotient is `(x·m) >> (31+ℓ)` exactly for
/// all `x < 2³¹` (covers power-of-two `f` too, including `f = 1`). This
/// turns the only hardware divide in the hot loop into a multiply+shift
/// while staying bit-exact — pinned exhaustively over every `f` by
/// `recip_exhaustive_over_all_frequencies`.
#[derive(Clone, Copy, Default)]
struct Recip {
    mul: u64,
    shift: u32,
}

/// One interleaved-decode step for a single lane: slot lookup through the
/// fused tables (`tab[slot] = freq << 16 | cum`, `sym[slot]`), state
/// advance, then byte-wise renormalization from the shared stream.
#[inline(always)]
fn ileave_step(
    x: &mut u32,
    stream: &[u8],
    pos: &mut usize,
    tab: &[u32; SCALE as usize],
    sym: &[u8; SCALE as usize],
) -> Result<u8, WireError> {
    let slot = *x & (SCALE - 1);
    let e = tab[slot as usize];
    let s = sym[slot as usize];
    let mut xx = (e >> 16) * (*x >> SCALE_BITS) + slot - (e & 0xFFFF);
    while xx < RANS_L {
        match stream.get(*pos) {
            Some(&b) => {
                xx = (xx << 8) | b as u32;
                *pos += 1;
            }
            None => {
                return Err(WireError::Truncated {
                    need: *pos + 1,
                    have: stream.len(),
                })
            }
        }
    }
    *x = xx;
    Ok(s)
}

impl Recip {
    fn new(f: u32) -> Recip {
        debug_assert!((1..=SCALE).contains(&f));
        let ell = 32 - (f - 1).leading_zeros(); // ceil(log2 f); 0 for f = 1
        Recip {
            mul: ((1u64 << (31 + ell)) / f as u64) + 1,
            shift: 31 + ell,
        }
    }

    #[inline(always)]
    fn div_rem(self, x: u32, f: u32) -> (u32, u32) {
        let q = ((x as u64 * self.mul) >> self.shift) as u32;
        let r = x - q * f;
        debug_assert_eq!((q, r), (x / f, x % f), "reciprocal divide x={x} f={f}");
        (q, r)
    }
}

/// Normalizes raw counts to sum exactly `SCALE`, keeping every present
/// symbol's frequency ≥ 1.
fn normalize_freqs(counts: &[u64; 256]) -> Option<[u32; 256]> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    let mut freqs = [0u32; 256];
    let mut assigned: u64 = 0;
    for s in 0..256 {
        if counts[s] == 0 {
            continue;
        }
        let f = ((counts[s] as u128 * SCALE as u128) / total as u128) as u32;
        freqs[s] = f.max(1);
        assigned += freqs[s] as u64;
    }
    // Fix the rounding drift by walking the largest-frequency symbols.
    let mut order: Vec<usize> = (0..256).filter(|&s| freqs[s] > 0).collect();
    order.sort_by_key(|&s| std::cmp::Reverse(freqs[s]));
    let mut drift = assigned as i64 - SCALE as i64;
    let mut i = 0;
    while drift != 0 {
        let s = order[i % order.len()];
        if drift > 0 && freqs[s] > 1 {
            freqs[s] -= 1;
            drift -= 1;
        } else if drift < 0 {
            freqs[s] += 1;
            drift += 1;
        }
        i += 1;
        if i > 256 * SCALE as usize {
            // Cannot happen (SCALE >= #symbols), but never spin forever.
            return None;
        }
    }
    Some(freqs)
}

/// Cumulative table: `cum[s]` = sum of freqs below `s`; `cum[256]` = SCALE.
fn cumulative(freqs: &[u32; 256]) -> [u32; 257] {
    let mut cum = [0u32; 257];
    for s in 0..256 {
        cum[s + 1] = cum[s] + freqs[s];
    }
    cum
}

/// Compresses `input` with static rANS.
pub fn encode(input: &[u8]) -> Vec<u8> {
    let stored = |input: &[u8]| {
        let mut w = Writer::with_capacity(input.len() + 16);
        w.u8(MODE_STORED);
        w.block(input);
        w.into_bytes()
    };
    if input.is_empty() {
        return stored(input);
    }
    let mut counts = [0u64; 256];
    for &b in input {
        counts[b as usize] += 1;
    }
    let Some(freqs) = normalize_freqs(&counts) else {
        return stored(input);
    };
    let cum = cumulative(&freqs);

    // Encode backwards.
    let mut state: u32 = RANS_L;
    let mut stream: Vec<u8> = Vec::with_capacity(input.len() / 2 + 16);
    for &b in input.iter().rev() {
        let f = freqs[b as usize];
        let c = cum[b as usize];
        // Renormalize: keep state < max for this symbol.
        let x_max = ((RANS_L >> SCALE_BITS) << 8) * f;
        while state >= x_max {
            stream.push(state as u8);
            state >>= 8;
        }
        state = ((state / f) << SCALE_BITS) + (state % f) + c;
    }
    stream.reverse();

    let mut w = Writer::with_capacity(stream.len() + 600);
    w.u8(MODE_RANS);
    w.u64(input.len() as u64);
    // Frequency table: 12-bit entries would pack into 384 bytes; u16 keeps
    // the header trivial at 512 bytes, negligible at gradient sizes.
    for &f in &freqs {
        w.u16(f as u16);
    }
    w.u32(state);
    w.block(&stream);
    let out = w.into_bytes();
    if out.len() >= input.len() + 9 {
        stored(input)
    } else {
        out
    }
}

/// Compresses `input` with [`N_LANES`]-lane interleaved static rANS.
///
/// Same frequency model as [`encode`], but the symbol stream is split
/// round-robin over [`N_LANES`] independent rANS states sharing one
/// renormalization byte stream — the CPU analogue of the paper's
/// block-parallel ANS: the dependency chains keep the multiplier busy
/// instead of serializing on one state, and the divide is a
/// multiply-by-reciprocal ([`Recip`]). Decoding is self-describing via
/// the mode byte, so [`decode`] reads both layouts; the single-lane
/// [`encode`] is retained as the scalar oracle (the serial pipeline
/// still uses it, and `interleaved_and_serial_agree_on_content` pins the
/// decoded bytes against it).
pub fn encode_interleaved(input: &[u8]) -> Vec<u8> {
    let stored = |input: &[u8]| {
        let mut w = Writer::with_capacity(input.len() + 16);
        w.u8(MODE_STORED);
        w.block(input);
        w.into_bytes()
    };
    if input.is_empty() {
        return stored(input);
    }
    let mut counts = [0u64; 256];
    for &b in input {
        counts[b as usize] += 1;
    }
    let Some(freqs) = normalize_freqs(&counts) else {
        return stored(input);
    };
    let cum = cumulative(&freqs);
    let mut recips = [Recip::default(); 256];
    for s in 0..256 {
        if freqs[s] > 0 {
            recips[s] = Recip::new(freqs[s]);
        }
    }

    // Encode backwards; lane j = i & (N_LANES - 1). All lanes
    // renormalize into one shared stream, reversed at the end, so the
    // forward-walking decoder replays the byte batches in symbol order.
    let mut states = [RANS_L; N_LANES];
    let mut stream: Vec<u8> = Vec::with_capacity(input.len() / 2 + 16);
    for (i, &b) in input.iter().enumerate().rev() {
        let s = b as usize;
        let f = freqs[s];
        let x_max = ((RANS_L >> SCALE_BITS) << 8) * f;
        let mut x = states[i & (N_LANES - 1)];
        while x >= x_max {
            stream.push(x as u8);
            x >>= 8;
        }
        let (q, r) = recips[s].div_rem(x, f);
        states[i & (N_LANES - 1)] = (q << SCALE_BITS) + r + cum[s];
    }
    stream.reverse();

    let mut w = Writer::with_capacity(stream.len() + 600);
    w.u8(MODE_ILEAVE);
    w.u64(input.len() as u64);
    for &f in &freqs {
        w.u16(f as u16);
    }
    for &x in &states {
        w.u32(x);
    }
    w.block(&stream);
    let out = w.into_bytes();
    if out.len() >= input.len() + 9 {
        stored(input)
    } else {
        out
    }
}

/// Inverse of [`encode`] / [`encode_interleaved`] (the mode byte selects
/// the layout).
pub fn decode(input: &[u8]) -> Result<Vec<u8>, WireError> {
    let mut r = Reader::new(input);
    match r.u8()? {
        MODE_STORED => Ok(r.block()?.to_vec()),
        MODE_RANS => {
            let n = crate::wire::checked_count(r.u64()?)?;
            let mut freqs = [0u32; 256];
            for f in freqs.iter_mut() {
                *f = r.u16()? as u32;
            }
            if freqs.iter().map(|&f| f as u64).sum::<u64>() != SCALE as u64 {
                return Err(WireError::Invalid("rans frequency table sum"));
            }
            let cum = cumulative(&freqs);
            // Slot -> symbol lookup.
            let mut slot2sym = [0u8; SCALE as usize];
            for s in 0..256 {
                for slot in cum[s]..cum[s + 1] {
                    slot2sym[slot as usize] = s as u8;
                }
            }
            let mut state = r.u32()?;
            let stream = r.block()?;
            let mut pos = 0usize;
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                let slot = state & (SCALE - 1);
                let s = slot2sym[slot as usize];
                let f = freqs[s as usize];
                let c = cum[s as usize];
                state = f * (state >> SCALE_BITS) + slot - c;
                while state < RANS_L {
                    if pos >= stream.len() {
                        return Err(WireError::Truncated {
                            need: pos + 1,
                            have: stream.len(),
                        });
                    }
                    state = (state << 8) | stream[pos] as u32;
                    pos += 1;
                }
                out.push(s);
            }
            if state != RANS_L {
                return Err(WireError::Invalid("rans final state"));
            }
            Ok(out)
        }
        MODE_ILEAVE => {
            let n = crate::wire::checked_count(r.u64()?)?;
            let mut freqs = [0u32; 256];
            for f in freqs.iter_mut() {
                *f = r.u16()? as u32;
            }
            if freqs.iter().map(|&f| f as u64).sum::<u64>() != SCALE as u64 {
                return Err(WireError::Invalid("rans frequency table sum"));
            }
            let cum = cumulative(&freqs);
            // Fused per-slot tables: every slot resolves to its symbol and
            // the `freq << 16 | cum` pair in two loads, replacing the
            // slot2sym + freqs + cum chain of dependent lookups. Both
            // fields fit 16 bits (freq, cum ≤ SCALE = 4096).
            let mut tab = [0u32; SCALE as usize];
            let mut sym = [0u8; SCALE as usize];
            for s in 0..256 {
                for slot in cum[s]..cum[s + 1] {
                    tab[slot as usize] = (freqs[s] << 16) | cum[s];
                    sym[slot as usize] = s as u8;
                }
            }
            let mut states = [0u32; N_LANES];
            for x in states.iter_mut() {
                *x = r.u32()?;
            }
            let stream = r.block()?;
            let mut pos = 0usize;
            // Write the output through pre-sized lane groups; the fixed
            // 0..N_LANES inner loop unrolls, keeping the states in
            // registers. The lanes' arithmetic chains are independent,
            // so the CPU overlaps them; only renormalization serializes
            // on the shared byte stream.
            let mut out = vec![0u8; n];
            let mut groups = out.chunks_exact_mut(N_LANES);
            for group in groups.by_ref() {
                for (lane, o) in group.iter_mut().enumerate() {
                    *o = ileave_step(&mut states[lane], stream, &mut pos, &tab, &sym)?;
                }
            }
            for (lane, o) in groups.into_remainder().iter_mut().enumerate() {
                *o = ileave_step(&mut states[lane], stream, &mut pos, &tab, &sym)?;
            }
            if states.iter().any(|&x| x != RANS_L) {
                return Err(WireError::Invalid("rans final state"));
            }
            Ok(out)
        }
        _ => Err(WireError::Invalid("rans mode byte")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    // Explicit import: proptest's prelude also globs a `Rng` trait.
    use compso_tensor::rng::Rng;

    #[test]
    fn roundtrip_text() {
        let data = b"the quick brown fox jumps over the lazy dog, repeatedly. \
                     the quick brown fox jumps over the lazy dog, repeatedly."
            .to_vec();
        let enc = encode(&data);
        assert_eq!(decode(&enc).unwrap(), data);
    }

    #[test]
    fn empty_input() {
        assert_eq!(decode(&encode(&[])).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn single_byte() {
        assert_eq!(decode(&encode(&[99])).unwrap(), vec![99]);
    }

    #[test]
    fn single_symbol_stream_compresses_hard() {
        let data = vec![7u8; 100_000];
        let enc = encode(&data);
        assert!(enc.len() < 2000, "len {}", enc.len());
        assert_eq!(decode(&enc).unwrap(), data);
    }

    #[test]
    fn compresses_skewed_better_than_uniform() {
        let mut rng = Rng::new(1);
        let skewed: Vec<u8> = (0..40_000)
            .map(|_| {
                if rng.uniform_f64() < 0.85 {
                    0
                } else {
                    rng.next_u32() as u8 % 8
                }
            })
            .collect();
        let uniform: Vec<u8> = (0..40_000).map(|_| rng.next_u32() as u8).collect();
        let es = encode(&skewed);
        let eu = encode(&uniform);
        assert!(
            es.len() * 2 < eu.len(),
            "skewed {} uniform {}",
            es.len(),
            eu.len()
        );
        assert_eq!(decode(&es).unwrap(), skewed);
        assert_eq!(decode(&eu).unwrap(), uniform);
    }

    #[test]
    fn near_entropy_on_known_distribution() {
        // H(p=0.9/0.1 over 2 symbols) ≈ 0.469 bits/symbol.
        let mut rng = Rng::new(2);
        let n = 200_000;
        let data: Vec<u8> = (0..n).map(|_| u8::from(rng.uniform_f64() < 0.1)).collect();
        let enc = encode(&data);
        let bits_per_symbol = enc.len() as f64 * 8.0 / n as f64;
        assert!(bits_per_symbol < 0.55, "bits/sym {bits_per_symbol}");
    }

    #[test]
    fn all_256_symbols() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let enc = encode(&data);
        assert_eq!(decode(&enc).unwrap(), data);
    }

    #[test]
    fn truncation_detected() {
        let data = vec![3u8; 5000];
        let enc = encode(&data);
        for cut in [0usize, 1, 8, 200, enc.len() - 1] {
            if cut < enc.len() {
                assert!(decode(&enc[..cut]).is_err(), "cut={cut}");
            }
        }
    }

    #[test]
    fn corrupt_freq_table_detected() {
        // Large enough that the 512-byte frequency table amortizes and the
        // stream stays in rans mode.
        let data: Vec<u8> = (0..20_000).map(|i| (i % 7) as u8).collect();
        let mut enc = encode(&data);
        assert_eq!(enc[0], MODE_RANS, "test assumes rans mode");
        // Smash a frequency entry; the sum check must fire.
        enc[10] ^= 0xFF;
        assert!(decode(&enc).is_err());
    }

    #[test]
    fn recip_exhaustive_over_all_frequencies() {
        // Every frequency the table can produce, against every boundary
        // dividend that renormalization permits (x < 2^19·f ≤ 2^31).
        for f in 1..=SCALE {
            let recip = Recip::new(f);
            let x_max = ((RANS_L >> SCALE_BITS) << 8) * f; // exclusive bound
            let mut probes = vec![0u32, 1, f - 1, f, f + 1, x_max - 1, x_max / 2];
            for k in 1..8u32 {
                probes.push((k * f).saturating_sub(1).min(x_max - 1));
                probes.push((k * f).min(x_max - 1));
            }
            for x in probes {
                let (q, r) = recip.div_rem(x, f);
                assert_eq!((q, r), (x / f, x % f), "f={f} x={x}");
            }
        }
    }

    #[test]
    fn interleaved_roundtrips_and_marks_mode() {
        for n in [1usize, 2, 3, 4, 5, 7, 8, 4095, 20_000] {
            let data: Vec<u8> = (0..n).map(|i| (i % 7) as u8).collect();
            let enc = encode_interleaved(&data);
            if n > 600 {
                assert_eq!(enc[0], MODE_ILEAVE, "n={n}");
            }
            assert_eq!(decode(&enc).unwrap(), data, "n={n}");
        }
        assert_eq!(decode(&encode_interleaved(&[])).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn interleaved_and_serial_agree_on_content() {
        // Same frequency model => same compressed size class and the same
        // decoded bytes; the serial encoder stays the oracle.
        let mut rng = Rng::new(7);
        let data: Vec<u8> = (0..60_000)
            .map(|_| {
                if rng.uniform_f64() < 0.8 {
                    0
                } else {
                    rng.next_u32() as u8 % 11
                }
            })
            .collect();
        let serial = encode(&data);
        let ileave = encode_interleaved(&data);
        assert_eq!(decode(&serial).unwrap(), data);
        assert_eq!(decode(&ileave).unwrap(), data);
        // Four extra u32 states vs one: headers differ by 12 bytes, the
        // payload entropy is identical, so sizes track each other.
        let diff = serial.len().abs_diff(ileave.len());
        assert!(
            diff <= 64,
            "serial {} ileave {}",
            serial.len(),
            ileave.len()
        );
    }

    #[test]
    fn interleaved_truncation_and_final_state_detected() {
        let data: Vec<u8> = (0..20_000).map(|i| (i % 13) as u8).collect();
        let enc = encode_interleaved(&data);
        assert_eq!(enc[0], MODE_ILEAVE);
        for cut in [0usize, 1, 8, 200, enc.len() - 1] {
            assert!(decode(&enc[..cut]).is_err(), "cut={cut}");
        }
        // Smash one of the initial lane states: the lane cannot land
        // back on RANS_L.
        let mut bad = enc.clone();
        let state_base = 1 + 8 + 512; // mode + len + freq table
        bad[state_base + 2] ^= 0x40;
        assert!(decode(&bad).is_err());
    }

    #[test]
    fn normalize_keeps_all_present_symbols() {
        let mut counts = [0u64; 256];
        counts[0] = 1_000_000;
        counts[1] = 1; // rare symbol must keep freq >= 1
        counts[2] = 3;
        let freqs = normalize_freqs(&counts).unwrap();
        assert!(freqs[1] >= 1);
        assert!(freqs[2] >= 1);
        assert_eq!(freqs.iter().map(|&f| f as u64).sum::<u64>(), SCALE as u64);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..3000)) {
            let enc = encode(&data);
            prop_assert_eq!(decode(&enc).unwrap(), data);
        }

        #[test]
        fn prop_roundtrip_low_entropy(data in proptest::collection::vec(0u8..3, 0..3000)) {
            let enc = encode(&data);
            prop_assert_eq!(decode(&enc).unwrap(), data);
        }

        /// Interleaved-vs-serial bit-identity at the content level: both
        /// encoders must decode back to the same bytes for any input,
        /// regardless of which mode each falls back to.
        #[test]
        fn prop_interleaved_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..3000)) {
            let enc = encode_interleaved(&data);
            prop_assert_eq!(decode(&enc).unwrap(), data.clone());
            prop_assert_eq!(decode(&encode(&data)).unwrap(), data);
        }

        #[test]
        fn prop_interleaved_roundtrip_low_entropy(data in proptest::collection::vec(0u8..3, 0..3000)) {
            let enc = encode_interleaved(&data);
            prop_assert_eq!(decode(&enc).unwrap(), data);
        }
    }
}
