//! Threshold auto-tuning (the paper's future-work item §7-1: "precisely
//! optimizing filter thresholds and quantization error bounds, moving
//! beyond empirical settings").
//!
//! A grid search over (eb_f, eb_q) pairs on a gradient sample: maximize
//! compression ratio subject to a relative-L2 reconstruction-error
//! budget. The budget plays the role of the accuracy proxy — §4.2
//! established that (for a fixed SR error shape) smaller reconstruction
//! error preserves accuracy better, so bounding it bounds the accuracy
//! impact.

use crate::pipeline::{Compso, CompsoConfig};
use crate::rounding::RoundingMode;
use crate::traits::Compressor;
use compso_tensor::rng::Rng;

/// The search space and constraint.
#[derive(Clone, Debug)]
pub struct TuningGrid {
    /// Candidate filter bounds (relative); `None` is always tried too.
    pub filter_bounds: Vec<f32>,
    /// Candidate quantizer bounds (relative).
    pub quant_bounds: Vec<f32>,
    /// Constraint: `‖x − x̂‖₂ / ‖x‖₂` must stay below this.
    pub max_rel_l2: f64,
}

impl Default for TuningGrid {
    fn default() -> Self {
        TuningGrid {
            filter_bounds: vec![1e-3, 2e-3, 4e-3, 8e-3, 1.6e-2],
            quant_bounds: vec![1e-3, 2e-3, 4e-3, 8e-3, 1.6e-2],
            max_rel_l2: 0.20,
        }
    }
}

/// The tuner's verdict.
#[derive(Clone, Copy, Debug)]
pub struct TunedBounds {
    /// The winning configuration (SR rounding, default codec).
    pub config: CompsoConfig,
    /// Its measured compression ratio on the sample.
    pub ratio: f64,
    /// Its measured relative L2 error on the sample.
    pub rel_l2: f64,
}

/// Grid-searches (eb_f, eb_q) on `sample`, returning the
/// highest-ratio configuration within the error budget. Falls back to
/// the tightest configuration if nothing satisfies the budget.
pub fn tune_bounds(sample: &[f32], grid: &TuningGrid, seed: u64) -> TunedBounds {
    assert!(!sample.is_empty(), "tuner needs a gradient sample");
    let norm = compso_tensor::reduce::l2_norm(sample).max(1e-30);
    let mut best: Option<TunedBounds> = None;
    let mut tightest: Option<TunedBounds> = None;

    let mut candidates: Vec<(Option<f32>, f32)> = Vec::new();
    for &ebq in &grid.quant_bounds {
        candidates.push((None, ebq));
        for &ebf in &grid.filter_bounds {
            candidates.push((Some(ebf), ebq));
        }
    }

    for (ebf, ebq) in candidates {
        let config = CompsoConfig {
            eb_filter: ebf,
            eb_quant: ebq,
            mode: RoundingMode::Stochastic,
            codec: CompsoConfig::default().codec,
        };
        let compso = Compso::new(config);
        let mut rng = Rng::new(seed);
        let bytes = compso.compress(sample, &mut rng);
        let back = compso
            .decompress(&bytes)
            .expect("self-compressed sample must decode");
        let err: f64 = sample
            .iter()
            .zip(&back)
            .map(|(&a, &b)| ((a - b) as f64).powi(2))
            .sum::<f64>()
            .sqrt();
        let rel_l2 = err / norm;
        let ratio = (sample.len() * 4) as f64 / bytes.len().max(1) as f64;
        let verdict = TunedBounds {
            config,
            ratio,
            rel_l2,
        };
        if rel_l2 <= grid.max_rel_l2 && best.is_none_or(|b| ratio > b.ratio) {
            best = Some(verdict);
        }
        if tightest.is_none_or(|t| rel_l2 < t.rel_l2) {
            tightest = Some(verdict);
        }
    }
    best.or(tightest).expect("grid cannot be empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate, GradientProfile};

    #[test]
    fn tuned_config_respects_budget() {
        let data = generate(200_000, 1, GradientProfile::kfac());
        let grid = TuningGrid::default();
        let tuned = tune_bounds(&data, &grid, 2);
        assert!(tuned.rel_l2 <= grid.max_rel_l2, "rel_l2 {}", tuned.rel_l2);
        assert!(tuned.ratio > 1.0);
    }

    #[test]
    fn tuner_beats_or_matches_tightest_setting() {
        let data = generate(200_000, 3, GradientProfile::kfac());
        let grid = TuningGrid::default();
        let tuned = tune_bounds(&data, &grid, 4);
        // The tightest grid point is (no filter, 1e-3): the tuner must
        // find at least that ratio.
        let tight = Compso::new(CompsoConfig::conservative(1e-3));
        let mut rng = Rng::new(4);
        let tight_ratio = tight.ratio(&data, &mut rng);
        assert!(
            tuned.ratio >= tight_ratio * 0.99,
            "tuned {} vs tight {}",
            tuned.ratio,
            tight_ratio
        );
    }

    #[test]
    fn stricter_budget_yields_tighter_bounds() {
        let data = generate(200_000, 5, GradientProfile::kfac());
        let loose = tune_bounds(
            &data,
            &TuningGrid {
                max_rel_l2: 0.5,
                ..Default::default()
            },
            6,
        );
        let strict = tune_bounds(
            &data,
            &TuningGrid {
                max_rel_l2: 0.02,
                ..Default::default()
            },
            6,
        );
        assert!(strict.rel_l2 <= loose.rel_l2 + 1e-12);
        assert!(strict.ratio <= loose.ratio);
    }

    #[test]
    fn impossible_budget_falls_back_to_tightest() {
        let data = generate(50_000, 7, GradientProfile::kfac());
        let tuned = tune_bounds(
            &data,
            &TuningGrid {
                max_rel_l2: 0.0,
                ..Default::default()
            },
            8,
        );
        // Fallback is the minimum-error grid point.
        assert!(tuned.rel_l2 > 0.0);
        assert_eq!(tuned.config.eb_quant, 1e-3);
    }

    #[test]
    #[should_panic(expected = "tuner needs a gradient sample")]
    fn empty_sample_panics() {
        tune_bounds(&[], &TuningGrid::default(), 1);
    }
}
