//! Iteration-wise adaptive compression (Alg. 1, lines 5–24).
//!
//! The error bounds follow the learning-rate schedule: while the LR is
//! still high (early training), errors are cheap — compress aggressively
//! with filter + SR at loose bounds; as the LR decays and steps become
//! precise, switch to conservative SR-only compression at tight bounds.
//!
//! * **StepLR**: loose bounds until the first LR drop, tight after.
//! * **SmoothLR** (cosine-style): training is split into `z` stages; stage
//!   0 is aggressive, later stages decay both bounds by `α` per stage and
//!   drop the filter.

use crate::pipeline::CompsoConfig;
use crate::rounding::RoundingMode;

/// Which learning-rate schedule the training run uses.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LrScheduleKind {
    /// LR drops by a factor at fixed iterations; `first_drop` is the first.
    Step { first_drop: usize },
    /// LR decays smoothly; compression runs in `stages` stages over
    /// `total_iters`, each decaying the bounds by `decay`.
    Smooth {
        total_iters: usize,
        stages: usize,
        decay: f32,
    },
}

/// The strategy selected for one iteration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CompressionStrategy {
    /// Filter + SR at the given (filter, quantizer) bounds.
    Aggressive { eb_filter: f32, eb_quant: f32 },
    /// SR only at the given quantizer bound.
    Conservative { eb_quant: f32 },
}

impl CompressionStrategy {
    /// Materializes the strategy as a pipeline configuration.
    pub fn to_config(self, mode: RoundingMode) -> CompsoConfig {
        match self {
            CompressionStrategy::Aggressive {
                eb_filter,
                eb_quant,
            } => CompsoConfig {
                eb_filter: Some(eb_filter),
                eb_quant,
                mode,
                codec: CompsoConfig::default().codec,
            },
            CompressionStrategy::Conservative { eb_quant } => CompsoConfig {
                eb_filter: None,
                eb_quant,
                mode,
                codec: CompsoConfig::default().codec,
            },
        }
    }

    /// The quantizer bound in effect.
    pub fn eb_quant(self) -> f32 {
        match self {
            CompressionStrategy::Aggressive { eb_quant, .. } => eb_quant,
            CompressionStrategy::Conservative { eb_quant } => eb_quant,
        }
    }

    /// True when the filter branch is active.
    pub fn is_aggressive(self) -> bool {
        matches!(self, CompressionStrategy::Aggressive { .. })
    }
}

/// The iteration→bounds schedule of Alg. 1.
#[derive(Clone, Copy, Debug)]
pub struct BoundSchedule {
    /// The LR schedule this run follows.
    pub kind: LrScheduleKind,
    /// Loose (early-training) bounds: `(eb_filter, eb_quant)`.
    pub loose: (f32, f32),
    /// Tight (late-training) quantizer bound.
    pub tight: f32,
}

impl BoundSchedule {
    /// The paper's ResNet-50/Mask R-CNN setting: aggressive at 4E-3 before
    /// the first StepLR drop, conservative at 2E-3 after.
    pub fn step_paper(first_drop: usize) -> Self {
        BoundSchedule {
            kind: LrScheduleKind::Step { first_drop },
            loose: (4e-3, 4e-3),
            tight: 2e-3,
        }
    }

    /// The paper's BERT/GPT setting: `z` stages over `total_iters`,
    /// refining from 4E-3 toward 2E-3.
    pub fn smooth_paper(total_iters: usize, stages: usize) -> Self {
        // α chosen so the bound reaches `tight` by the final stage.
        let decay = if stages > 1 {
            (2e-3f32 / 4e-3).powf(1.0 / (stages as f32 - 1.0))
        } else {
            1.0
        };
        BoundSchedule {
            kind: LrScheduleKind::Smooth {
                total_iters,
                stages,
                decay,
            },
            loose: (4e-3, 4e-3),
            tight: 2e-3,
        }
    }

    /// Strategy in effect at iteration `t` (Alg. 1's bound-adjustment
    /// block).
    pub fn strategy_at(&self, t: usize) -> CompressionStrategy {
        match self.kind {
            LrScheduleKind::Step { first_drop } => {
                if t < first_drop {
                    CompressionStrategy::Aggressive {
                        eb_filter: self.loose.0,
                        eb_quant: self.loose.1,
                    }
                } else {
                    CompressionStrategy::Conservative {
                        eb_quant: self.tight,
                    }
                }
            }
            LrScheduleKind::Smooth {
                total_iters,
                stages,
                decay,
            } => {
                let stage_len = total_iters.div_ceil(stages.max(1)).max(1);
                let stage = (t / stage_len).min(stages.saturating_sub(1));
                if stage == 0 {
                    CompressionStrategy::Aggressive {
                        eb_filter: self.loose.0,
                        eb_quant: self.loose.1,
                    }
                } else {
                    let eb = self.loose.1 * decay.powi(stage as i32);
                    CompressionStrategy::Conservative {
                        eb_quant: eb.max(self.tight.min(self.loose.1)),
                    }
                }
            }
        }
    }

    /// Pipeline configuration at iteration `t` with SR rounding.
    pub fn config_at(&self, t: usize) -> CompsoConfig {
        self.strategy_at(t).to_config(RoundingMode::Stochastic)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_schedule_switches_at_first_drop() {
        let s = BoundSchedule::step_paper(650);
        assert!(s.strategy_at(0).is_aggressive());
        assert!(s.strategy_at(649).is_aggressive());
        assert!(!s.strategy_at(650).is_aggressive());
        assert!(!s.strategy_at(10_000).is_aggressive());
    }

    #[test]
    fn step_bounds_match_paper_numbers() {
        let s = BoundSchedule::step_paper(650);
        assert_eq!(
            s.strategy_at(0),
            CompressionStrategy::Aggressive {
                eb_filter: 4e-3,
                eb_quant: 4e-3
            }
        );
        assert_eq!(
            s.strategy_at(650),
            CompressionStrategy::Conservative { eb_quant: 2e-3 }
        );
    }

    #[test]
    fn smooth_schedule_has_monotone_nonincreasing_bounds() {
        let s = BoundSchedule::smooth_paper(1000, 4);
        let mut prev = f32::INFINITY;
        for t in (0..1000).step_by(50) {
            let eb = s.strategy_at(t).eb_quant();
            assert!(eb <= prev * 1.0001, "t={t}: {eb} > {prev}");
            prev = eb;
        }
    }

    #[test]
    fn smooth_schedule_reaches_tight_bound_by_final_stage() {
        let s = BoundSchedule::smooth_paper(1000, 4);
        let final_eb = s.strategy_at(999).eb_quant();
        assert!((final_eb - 2e-3).abs() < 2e-4, "final eb {final_eb}");
    }

    #[test]
    fn smooth_first_stage_is_aggressive_rest_conservative() {
        let s = BoundSchedule::smooth_paper(1000, 4);
        assert!(s.strategy_at(0).is_aggressive());
        assert!(s.strategy_at(249).is_aggressive());
        assert!(!s.strategy_at(250).is_aggressive());
        assert!(!s.strategy_at(999).is_aggressive());
    }

    #[test]
    fn iterations_beyond_total_stay_in_last_stage() {
        let s = BoundSchedule::smooth_paper(1000, 4);
        assert_eq!(
            s.strategy_at(999).eb_quant(),
            s.strategy_at(100_000).eb_quant()
        );
    }

    #[test]
    fn config_materialization() {
        let s = BoundSchedule::step_paper(10);
        let early = s.config_at(0);
        assert_eq!(early.eb_filter, Some(4e-3));
        assert_eq!(early.mode, RoundingMode::Stochastic);
        let late = s.config_at(10);
        assert_eq!(late.eb_filter, None);
        assert_eq!(late.eb_quant, 2e-3);
    }

    #[test]
    fn single_stage_smooth_degenerates_gracefully() {
        let s = BoundSchedule::smooth_paper(100, 1);
        assert!(s.strategy_at(0).is_aggressive());
        assert!(s.strategy_at(99).is_aggressive());
    }
}
