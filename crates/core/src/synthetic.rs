//! Synthetic gradient generators.
//!
//! The paper measures compression on K-FAC gradients of ImageNet/COCO/
//! Wiki/Pile training runs — data this reproduction cannot obtain. The
//! generator here produces value streams with the distributional
//! structure that drives the paper's compression results:
//!
//! * a dominant **near-zero mass** (Laplacian) — what the filter removes
//!   and what makes entropy coding effective;
//! * a **log-uniform shoulder** spanning two decades of magnitude — the
//!   informative gradient components that survive the filter and cost
//!   quantization bits (appearing in short bursts, mimicking channel/row
//!   structure, which is what gives SZ's predictor traction);
//! * rare **full-range outliers** — "KFAC gradients have a larger range
//!   than SGD gradients" (§3), the property that spreads quantized values
//!   and degrades fixed-rate encoders.

use compso_tensor::rng::Rng;

/// Distribution profile of a synthetic gradient stream. Magnitudes are
/// relative to `scale` (the stream's absmax target).
#[derive(Clone, Copy, Debug)]
pub struct GradientProfile {
    /// Overall magnitude (≈ absmax of the stream).
    pub scale: f32,
    /// Laplace scale of the near-zero component, relative to `scale`.
    pub tiny_scale: f32,
    /// Fraction of elements in the shoulder component.
    pub shoulder_fraction: f64,
    /// Shoulder magnitude band (log-uniform), relative to `scale`.
    pub shoulder_band: (f32, f32),
    /// Mean shoulder burst length (adjacent same-magnitude-scale values).
    pub burst_len: f64,
    /// Fraction of full-range outliers.
    pub outlier_fraction: f64,
}

impl GradientProfile {
    /// K-FAC-gradient-like (CNN layers): wide range, a solid shoulder.
    pub fn kfac() -> Self {
        GradientProfile {
            scale: 0.05,
            tiny_scale: 2e-3,
            shoulder_fraction: 0.15,
            shoulder_band: (8e-3, 0.6),
            burst_len: 3.0,
            outlier_fraction: 1e-4,
        }
    }

    /// SGD-gradient-like: the same shape but a much narrower range
    /// (§3's K-FAC-vs-SGD range observation).
    pub fn sgd() -> Self {
        GradientProfile {
            scale: 0.012,
            tiny_scale: 8e-3,
            shoulder_fraction: 0.3,
            shoulder_band: (2e-2, 0.5),
            burst_len: 3.0,
            outlier_fraction: 1e-4,
        }
    }

    /// Transformer-layer profile: sparser shoulder, stronger zero mass —
    /// the reason BERT-large compresses 2-3x better than ResNet-50 in
    /// Fig. 3 and Table 2.
    pub fn transformer() -> Self {
        GradientProfile {
            scale: 0.08,
            tiny_scale: 1e-3,
            shoulder_fraction: 0.11,
            shoulder_band: (8e-3, 0.5),
            burst_len: 4.0,
            outlier_fraction: 5e-5,
        }
    }
}

/// Generates `n` gradient-like values.
pub fn generate(n: usize, seed: u64, profile: GradientProfile) -> Vec<f32> {
    let mut rng = Rng::new(seed);
    let mut out = Vec::with_capacity(n);
    let (lo, hi) = profile.shoulder_band;
    let ln_lo = lo.ln();
    let ln_hi = hi.ln();
    let continue_burst = 1.0 - 1.0 / profile.burst_len.max(1.0);
    // `shoulder_fraction` is the target *mass*; each burst start yields
    // ~burst_len elements, so starts fire at fraction/burst_len.
    let start_prob = profile.shoulder_fraction / profile.burst_len.max(1.0);
    while out.len() < n {
        let u = rng.uniform_f64();
        if u < profile.outlier_fraction {
            // Full-range spike.
            let sign = if rng.uniform_f64() < 0.5 { -1.0 } else { 1.0 };
            out.push(sign * profile.scale * rng.range_f32(0.7, 1.0));
        } else if u < profile.outlier_fraction + start_prob {
            // A burst of shoulder values around a common magnitude.
            let base = (ln_lo + (ln_hi - ln_lo) * rng.uniform_f32()).exp();
            loop {
                let jitter = (1.0 + 0.35 * rng.normal_f32()).abs().max(0.05);
                let sign = if rng.uniform_f64() < 0.5 { -1.0 } else { 1.0 };
                out.push(sign * profile.scale * base * jitter);
                if out.len() >= n || rng.uniform_f64() >= continue_burst {
                    break;
                }
            }
        } else {
            out.push(rng.laplace(profile.tiny_scale * profile.scale));
        }
    }
    out
}

/// A multi-layer K-FAC gradient snapshot: one buffer per layer with
/// per-layer scale jitter (layers differ in magnitude by orders of
/// magnitude, the motivation for per-layer normalization ranges in §4.5).
pub fn generate_layers(
    layer_sizes: &[usize],
    seed: u64,
    profile: GradientProfile,
) -> Vec<Vec<f32>> {
    let mut rng = Rng::new(seed ^ 0xD00D);
    layer_sizes
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            // Log-uniform per-layer scale in [0.1x, 10x].
            let jitter = 10.0f32.powf(rng.range_f32(-1.0, 1.0));
            let p = GradientProfile {
                scale: profile.scale * jitter,
                ..profile
            };
            generate(n, seed.wrapping_add(i as u64 * 7919), p)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use compso_tensor::reduce;

    #[test]
    fn deterministic() {
        let a = generate(1000, 42, GradientProfile::kfac());
        let b = generate(1000, 42, GradientProfile::kfac());
        assert_eq!(a, b);
    }

    #[test]
    fn kfac_range_exceeds_sgd_range() {
        // The §3 observation that breaks fixed-rate quantizers on K-FAC
        // gradients.
        let n = 500_000;
        let kfac = generate(n, 1, GradientProfile::kfac());
        let sgd = generate(n, 1, GradientProfile::sgd());
        let kfac_range = reduce::minmax_flat(&kfac);
        let sgd_range = reduce::minmax_flat(&sgd);
        assert!(
            kfac_range.abs_max() > 2.0 * sgd_range.abs_max(),
            "kfac {} sgd {}",
            kfac_range.abs_max(),
            sgd_range.abs_max()
        );
    }

    #[test]
    fn most_mass_is_filterable_at_paper_bounds() {
        // ~80% of elements sit below the aggressive 4E-3 (relative to
        // range) filter bound — the regime that gives COMPSO its ~20x.
        let data = generate(500_000, 2, GradientProfile::kfac());
        let mm = reduce::minmax_flat(&data);
        let range = mm.max - mm.min;
        let below = reduce::count_below(&data, 4e-3 * range);
        let frac = below as f64 / data.len() as f64;
        assert!((0.6..0.95).contains(&frac), "filterable fraction {frac}");
    }

    #[test]
    fn shoulder_values_cluster_in_bursts() {
        let p = GradientProfile::kfac();
        let data = generate(400_000, 3, p);
        let mm = reduce::minmax_flat(&data);
        let range = mm.max - mm.min;
        let is_shoulder: Vec<bool> = data.iter().map(|v| v.abs() > 4e-3 * range).collect();
        let shoulder_frac = is_shoulder.iter().filter(|&&s| s).count() as f64 / data.len() as f64;
        // P(next is shoulder | current is shoulder) should exceed the
        // unconditional shoulder probability by a wide margin.
        let pairs = is_shoulder.windows(2).filter(|w| w[0]).count();
        let both = is_shoulder.windows(2).filter(|w| w[0] && w[1]).count();
        let conditional = both as f64 / pairs as f64;
        assert!(
            conditional > 1.8 * shoulder_frac,
            "conditional {conditional} vs base {shoulder_frac}"
        );
    }

    #[test]
    fn transformer_is_sparser_than_cnn() {
        let n = 400_000;
        let cnn = generate(n, 4, GradientProfile::kfac());
        let tr = generate(n, 4, GradientProfile::transformer());
        let frac = |data: &[f32]| {
            let mm = reduce::minmax_flat(data);
            let range = mm.max - mm.min;
            reduce::count_below(data, 4e-3 * range) as f64 / data.len() as f64
        };
        assert!(
            frac(&tr) > frac(&cnn),
            "tr {} cnn {}",
            frac(&tr),
            frac(&cnn)
        );
    }

    #[test]
    fn layers_have_diverse_scales() {
        let layers = generate_layers(&[10_000; 12], 4, GradientProfile::kfac());
        let scales: Vec<f32> = layers.iter().map(|l| reduce::absmax_flat(l)).collect();
        let max = scales.iter().fold(0.0f32, |a, &b| a.max(b));
        let min = scales.iter().fold(f32::INFINITY, |a, &b| a.min(b));
        assert!(max / min > 3.0, "scale spread {}", max / min);
    }

    #[test]
    fn layer_sizes_respected() {
        let layers = generate_layers(&[5, 100, 0, 77], 5, GradientProfile::sgd());
        let sizes: Vec<usize> = layers.iter().map(|l| l.len()).collect();
        assert_eq!(sizes, vec![5, 100, 0, 77]);
    }
}
