//! The common compressor interface shared by COMPSO and the baselines.
//!
//! Everything the evaluation harness compares — COMPSO, QSGD, SZ,
//! CocktailSGD, and the no-compression identity — implements
//! [`Compressor`], so convergence and throughput experiments are generic
//! over the method under test.

use crate::kernels::LayerSchedule;
use crate::wire::{Reader, WireError, Writer};
use compso_obs::Recorder;
use compso_tensor::rng::Rng;

/// Magic byte of the generic per-layer group framing used by the default
/// [`Compressor::compress_group`] implementation (distinct from the
/// serial COMPSO stream's v1 and the chunked v2 magics; re-exported
/// from the central [`crate::wire::magic`] registry).
pub use crate::wire::magic::MAGIC_GROUP;

/// Error produced by decompression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompressError {
    /// Malformed or truncated byte stream.
    Wire(WireError),
    /// Stream decoded but violated an internal consistency rule.
    Corrupt(&'static str),
}

impl From<WireError> for CompressError {
    fn from(e: WireError) -> Self {
        CompressError::Wire(e)
    }
}

impl std::fmt::Display for CompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompressError::Wire(e) => write!(f, "wire error: {e}"),
            CompressError::Corrupt(what) => write!(f, "corrupt stream: {what}"),
        }
    }
}

impl std::error::Error for CompressError {}

/// A lossy (or lossless) gradient compressor.
///
/// `compress` consumes randomness for stochastic rounding; deterministic
/// compressors simply ignore the generator. Implementations must be
/// self-describing: `decompress(compress(x))` needs no side information.
pub trait Compressor: Send + Sync {
    /// Display name used in result tables.
    fn name(&self) -> &'static str;

    /// Compresses a gradient buffer into bytes.
    fn compress(&self, data: &[f32], rng: &mut Rng) -> Vec<u8>;

    /// Reconstructs the (lossy) gradient buffer.
    fn decompress(&self, bytes: &[u8]) -> Result<Vec<f32>, CompressError>;

    /// [`Compressor::compress`] with phase timings / traffic counters
    /// recorded into `rec`. The default implementation ignores the
    /// recorder; instrumented compressors (COMPSO) override it.
    fn compress_recorded(&self, data: &[f32], rng: &mut Rng, rec: &Recorder) -> Vec<u8> {
        let _ = rec;
        self.compress(data, rng)
    }

    /// [`Compressor::decompress`] with decode timing recorded into `rec`.
    /// The default implementation ignores the recorder.
    fn decompress_recorded(&self, bytes: &[u8], rec: &Recorder) -> Result<Vec<f32>, CompressError> {
        let _ = rec;
        self.decompress(bytes)
    }

    /// Compresses several layers as one self-describing unit, optionally
    /// reusing a caller-cached [`LayerSchedule`] (the paper's
    /// "pre-determined layer-block hashmap" built once at K-FAC-optimizer
    /// init). The default implementation ignores the schedule and frames
    /// each layer's [`Compressor::compress_recorded`] output under a
    /// [`MAGIC_GROUP`] header; schedule-aware compressors
    /// ([`crate::kernels::ChunkedCompso`]) and aggregating ones
    /// ([`crate::pipeline::Compso`]) override it with their native
    /// multi-layer formats.
    fn compress_group(
        &self,
        layers: &[&[f32]],
        schedule: Option<&LayerSchedule>,
        rng: &mut Rng,
        rec: &Recorder,
    ) -> Vec<u8> {
        let _ = schedule;
        let mut w = Writer::new();
        w.u8(MAGIC_GROUP);
        w.u32(layers.len() as u32);
        for layer in layers {
            w.block(&self.compress_recorded(layer, rng, rec));
        }
        w.into_bytes()
    }

    /// [`Compressor::compress_group`] with a caller-stable identity key
    /// per layer (`DistKfac` passes the global layer index). Stateless
    /// compressors ignore the keys — the default strips them and defers
    /// to `compress_group`, so existing implementations keep their native
    /// formats. Stateful compressors ([`crate::baselines::PowerSgd`])
    /// override this to look up per-layer error-feedback / warm-start
    /// state: keys are stable across world sizes (unlike positions within
    /// an aggregation group), which is what keeps 1/2/4-rank runs
    /// bit-identical. The output must stay decodable by
    /// [`Compressor::decompress_group`].
    fn compress_group_keyed(
        &self,
        layers: &[(u64, &[f32])],
        schedule: Option<&LayerSchedule>,
        rng: &mut Rng,
        rec: &Recorder,
    ) -> Vec<u8> {
        let refs: Vec<&[f32]> = layers.iter().map(|&(_, l)| l).collect();
        self.compress_group(&refs, schedule, rng, rec)
    }

    /// Inverse of [`Compressor::compress_group`].
    fn decompress_group(
        &self,
        bytes: &[u8],
        rec: &Recorder,
    ) -> Result<Vec<Vec<f32>>, CompressError> {
        let mut r = Reader::new(bytes);
        if r.u8()? != MAGIC_GROUP {
            return Err(WireError::Invalid("group magic").into());
        }
        let n_layers = r.u32()? as usize;
        if n_layers > 1_000_000 {
            return Err(WireError::Invalid("group layer count").into());
        }
        let mut out = Vec::with_capacity(n_layers);
        for _ in 0..n_layers {
            out.push(self.decompress_recorded(r.block()?, rec)?);
        }
        if !r.is_exhausted() {
            return Err(CompressError::Corrupt("trailing group bytes"));
        }
        Ok(out)
    }

    /// Chunk tile size this compressor wants [`LayerSchedule`]s built
    /// with, or `None` when it has no use for a schedule. Callers that
    /// cache schedules across iterations (`DistKfac`) consult this at
    /// init time.
    fn preferred_chunk_elems(&self) -> Option<usize> {
        None
    }

    /// Chunk tile size for a specific workload of `total_elems`
    /// elements. The default defers to the fixed
    /// [`Compressor::preferred_chunk_elems`]; compressors with adaptive
    /// chunking ([`crate::kernels::ChunkedCompso`] built with
    /// [`crate::kernels::ChunkedCompso::with_adaptive_chunking`])
    /// override it with the §4.4 performance-model choice. Must be a
    /// **pure function of `total_elems`** — never of live thread counts
    /// or timings — so every rank builds identical schedules and
    /// replicas stay bit-identical.
    fn chunk_elems_for(&self, total_elems: usize) -> Option<usize> {
        let _ = total_elems;
        self.preferred_chunk_elems()
    }

    /// Compression ratio achieved on `data` (original bytes / compressed
    /// bytes); convenience for the ratio experiments.
    fn ratio(&self, data: &[f32], rng: &mut Rng) -> f64 {
        let compressed = self.compress(data, rng);
        if compressed.is_empty() {
            return f64::INFINITY;
        }
        (data.len() * 4) as f64 / compressed.len() as f64
    }
}

/// The identity "compressor": raw little-endian f32 bytes. The paper's
/// "KFAC (No Comp.)" baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoCompression;

impl Compressor for NoCompression {
    fn name(&self) -> &'static str {
        "NoCompression"
    }

    fn compress(&self, data: &[f32], _rng: &mut Rng) -> Vec<u8> {
        let mut w = Writer::with_capacity(data.len() * 4 + 8);
        w.u64(data.len() as u64);
        for &v in data {
            w.f32(v);
        }
        w.into_bytes()
    }

    fn decompress(&self, bytes: &[u8]) -> Result<Vec<f32>, CompressError> {
        let mut r = Reader::new(bytes);
        let n = crate::wire::checked_count(r.u64()?)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(r.f32()?);
        }
        Ok(out)
    }
}

/// Converts an f32 slice to raw LE bytes (used for wire-size accounting).
pub fn f32s_to_bytes(data: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * 4);
    for &v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Converts raw LE bytes back to f32s.
pub fn bytes_to_f32s(bytes: &[u8]) -> Result<Vec<f32>, WireError> {
    if !bytes.len().is_multiple_of(4) {
        return Err(WireError::Invalid("byte length not divisible by 4"));
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_compression_roundtrip() {
        let data = vec![1.5f32, -2.25, 0.0, f32::MIN_POSITIVE];
        let mut rng = Rng::new(1);
        let c = NoCompression;
        let bytes = c.compress(&data, &mut rng);
        assert_eq!(c.decompress(&bytes).unwrap(), data);
    }

    #[test]
    fn no_compression_ratio_is_near_one() {
        let data = vec![0.5f32; 1000];
        let mut rng = Rng::new(2);
        let r = NoCompression.ratio(&data, &mut rng);
        assert!(r > 0.99 && r <= 1.0, "ratio {r}");
    }

    #[test]
    fn no_compression_truncation_detected() {
        let data = vec![1.0f32; 10];
        let mut rng = Rng::new(3);
        let bytes = NoCompression.compress(&data, &mut rng);
        assert!(NoCompression.decompress(&bytes[..bytes.len() - 2]).is_err());
    }

    #[test]
    fn f32_bytes_roundtrip() {
        let data = vec![0.1f32, -1e30, f32::INFINITY, -0.0];
        let bytes = f32s_to_bytes(&data);
        let back = bytes_to_f32s(&bytes).unwrap();
        assert_eq!(back.len(), data.len());
        for (a, b) in data.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn misaligned_bytes_rejected() {
        assert!(bytes_to_f32s(&[1, 2, 3]).is_err());
    }

    #[test]
    fn default_group_framing_roundtrips_and_ignores_schedule() {
        let layers: Vec<Vec<f32>> = vec![vec![1.0, -2.0, 3.5], vec![], vec![0.25; 17]];
        let refs: Vec<&[f32]> = layers.iter().map(|l| l.as_slice()).collect();
        let rec = Recorder::disabled();
        let c = NoCompression;
        let mut rng = Rng::new(5);
        let bytes = c.compress_group(&refs, None, &mut rng, &rec);
        assert_eq!(bytes[0], MAGIC_GROUP);
        let back = c.decompress_group(&bytes, &rec).unwrap();
        assert_eq!(back, layers);
        // A schedule is a pure hint: providing one changes nothing for the
        // default implementation.
        let schedule = crate::kernels::LayerSchedule::build(&[3, 0, 17], 8);
        let mut rng2 = Rng::new(5);
        assert_eq!(
            c.compress_group(&refs, Some(&schedule), &mut rng2, &rec),
            bytes
        );
        assert_eq!(c.preferred_chunk_elems(), None);
    }

    #[test]
    fn default_group_framing_rejects_corruption() {
        let layers: Vec<Vec<f32>> = vec![vec![1.0; 9], vec![2.0; 4]];
        let refs: Vec<&[f32]> = layers.iter().map(|l| l.as_slice()).collect();
        let rec = Recorder::disabled();
        let c = NoCompression;
        let mut rng = Rng::new(6);
        let mut bytes = c.compress_group(&refs, None, &mut rng, &rec);
        assert!(c.decompress_group(&bytes[..bytes.len() - 1], &rec).is_err());
        bytes.push(0);
        assert!(c.decompress_group(&bytes, &rec).is_err(), "trailing bytes");
        bytes.pop();
        bytes[0] = 0x00;
        assert!(c.decompress_group(&bytes, &rec).is_err(), "magic");
    }
}
