//! SZ-style prediction-based error-bounded lossy compression.
//!
//! §2.4: "SZ includes prediction, RN-based quantization, and Huffman
//! encoding. SZ uses the surroundings to predict a data value and
//! quantizes the prediction error." This is the 1D Lorenzo variant: the
//! predictor is the previously *decoded* value, the prediction error is
//! quantized with round-to-nearest at bin width `2·eb` (so the absolute
//! error never exceeds `eb`), unpredictable values fall out to a raw
//! outlier list, and the quantization codes are entropy coded.
//!
//! Entropy-coder note: cuSZ's Huffman runs over u16 *symbols* (a 65536-
//! entry codebook), so its per-value cost can exceed 1 bit only when the
//! code actually carries information. A byte-granularity Huffman would
//! floor at 1 bit per byte (2 bits per value) on the zero-dominated code
//! streams gradients produce; this port therefore uses rANS — an entropy
//! coder of the same role without the per-symbol floor — as the
//! capacity-faithful substitute (see DESIGN.md §1).

use crate::encoders::rans;
use crate::traits::{CompressError, Compressor};
use crate::wire::{Reader, WireError, Writer};
use compso_tensor::rng::Rng;

/// Code values are zigzag-mapped into u16; this sentinel marks outliers.
const OUTLIER: u16 = u16::MAX;
/// Largest representable zigzag code (keeps the sentinel distinct).
const MAX_CODE: i64 = (OUTLIER as i64 - 1) / 2;

/// The SZ compressor with a range-relative error bound.
#[derive(Clone, Copy, Debug)]
pub struct Sz {
    /// Error bound relative to the buffer's value range (the paper's
    /// "4E-3, relative to value range" convention).
    pub eb_rel: f32,
}

impl Sz {
    /// Creates an SZ compressor.
    pub fn new(eb_rel: f32) -> Self {
        assert!(eb_rel > 0.0 && eb_rel < 1.0, "eb {eb_rel} out of (0,1)");
        Sz { eb_rel }
    }
}

#[inline]
fn zigzag(v: i64) -> u16 {
    debug_assert!(v.abs() <= MAX_CODE);
    (((v << 1) ^ (v >> 63)) & 0xFFFF) as u16
}

#[inline]
fn unzigzag(v: u16) -> i64 {
    let v = v as i64;
    (v >> 1) ^ -(v & 1)
}

impl Compressor for Sz {
    fn name(&self) -> &'static str {
        "SZ"
    }

    fn compress(&self, data: &[f32], _rng: &mut Rng) -> Vec<u8> {
        let mm = compso_tensor::reduce::minmax_flat(data);
        let range = if data.is_empty() {
            0.0
        } else {
            mm.max - mm.min
        };
        let eb = (self.eb_rel * range).max(0.0);

        let mut codes: Vec<u16> = Vec::with_capacity(data.len());
        let mut outliers: Vec<f32> = Vec::new();
        if eb > 0.0 {
            let bin = 2.0 * eb as f64;
            let mut prev = 0.0f64; // predictor over *decoded* values
            for &v in data {
                let diff = v as f64 - prev;
                let code = (diff / bin).round_ties_even() as i64;
                if code.abs() > MAX_CODE {
                    codes.push(OUTLIER);
                    outliers.push(v);
                    prev = v as f64;
                } else {
                    codes.push(zigzag(code));
                    prev += code as f64 * bin;
                }
            }
        } else {
            // Degenerate range: all values identical (or empty) — store
            // the first value as a single outlier.
            if let Some(&v0) = data.first() {
                codes.push(OUTLIER);
                outliers.push(v0);
                codes.extend(std::iter::repeat_n(zigzag(0), data.len() - 1));
            }
        }

        // Entropy-code the u16-LE code bytes; high bytes are almost
        // always zero, and rANS has no per-symbol bit floor (see the
        // module docs for why rANS stands in for cuSZ's u16 Huffman).
        let mut code_bytes = Vec::with_capacity(codes.len() * 2);
        for c in &codes {
            code_bytes.extend_from_slice(&c.to_le_bytes());
        }
        let enc_codes = rans::encode(&code_bytes);

        let mut w = Writer::with_capacity(enc_codes.len() + outliers.len() * 4 + 32);
        w.u64(data.len() as u64);
        w.f32(eb);
        w.block(&enc_codes);
        w.u64(outliers.len() as u64);
        for &v in &outliers {
            w.f32(v);
        }
        w.into_bytes()
    }

    /// Layer-parallel multi-layer frame (magic `0xC8`): SZ's predictor
    /// is per-layer (the first value always predicts from 0), so layers
    /// encode independently on rayon workers. SZ is deterministic — the
    /// caller's RNG is left untouched, matching the serial path — and a
    /// chunk schedule is meaningless to it.
    fn compress_group(
        &self,
        layers: &[&[f32]],
        _schedule: Option<&crate::kernels::LayerSchedule>,
        _rng: &mut Rng,
        _rec: &compso_obs::Recorder,
    ) -> Vec<u8> {
        super::pargroup::compress(layers, |_, layer| {
            let mut unused = Rng::new(0);
            self.compress(layer, &mut unused)
        })
    }

    fn decompress_group(
        &self,
        bytes: &[u8],
        _rec: &compso_obs::Recorder,
    ) -> Result<Vec<Vec<f32>>, CompressError> {
        super::pargroup::decompress(bytes, |block| self.decompress(block))
    }

    fn decompress(&self, bytes: &[u8]) -> Result<Vec<f32>, CompressError> {
        let mut r = Reader::new(bytes);
        let n = crate::wire::checked_count(r.u64()?)?;
        let eb = r.f32()?;
        if !eb.is_finite() || eb < 0.0 {
            return Err(WireError::Invalid("sz eb").into());
        }
        let code_bytes = rans::decode(r.block()?)?;
        if code_bytes.len() != n * 2 {
            return Err(CompressError::Corrupt("sz code stream length"));
        }
        let n_outliers = crate::wire::checked_count(r.u64()?)?;
        if n_outliers > n {
            return Err(CompressError::Corrupt("sz outlier count"));
        }
        let mut outliers = Vec::with_capacity(n_outliers);
        for _ in 0..n_outliers {
            outliers.push(r.f32()?);
        }

        let bin = 2.0 * eb as f64;
        let mut out = Vec::with_capacity(n);
        let mut prev = 0.0f64;
        let mut next_outlier = 0usize;
        for i in 0..n {
            let code = u16::from_le_bytes([code_bytes[2 * i], code_bytes[2 * i + 1]]);
            if code == OUTLIER {
                let v = *outliers
                    .get(next_outlier)
                    .ok_or(CompressError::Corrupt("sz missing outlier"))?;
                next_outlier += 1;
                out.push(v);
                prev = v as f64;
            } else {
                prev += unzigzag(code) as f64 * bin;
                out.push(prev as f32);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    // Explicit import: proptest's prelude also globs a `Rng` trait.
    use compso_tensor::rng::Rng;

    fn smooth_data(n: usize, seed: u64) -> Vec<f32> {
        // AR(1)-correlated data: the regime SZ's predictor exploits.
        let mut rng = Rng::new(seed);
        let mut v = 0.0f32;
        (0..n)
            .map(|_| {
                v = 0.95 * v + 0.05 * rng.normal_f32();
                v
            })
            .collect()
    }

    fn gradient_like(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = Rng::new(seed);
        (0..n).map(|_| rng.laplace(0.01)).collect()
    }

    #[test]
    fn error_bound_contract() {
        for eb_rel in [1e-1f32, 4e-3, 1e-3] {
            let data = gradient_like(20_000, 1);
            let sz = Sz::new(eb_rel);
            let mut rng = Rng::new(2);
            let back = sz.decompress(&sz.compress(&data, &mut rng)).unwrap();
            let mm = compso_tensor::reduce::minmax_flat(&data);
            let range = mm.max - mm.min;
            for (&x, &y) in data.iter().zip(&back) {
                assert!(
                    (x - y).abs() <= eb_rel * range * 1.001 + 1e-7,
                    "eb={eb_rel}: {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn smooth_data_compresses_well() {
        let data = smooth_data(100_000, 3);
        let sz = Sz::new(1e-2);
        let mut rng = Rng::new(4);
        let ratio = sz.ratio(&data, &mut rng);
        assert!(ratio > 6.0, "ratio {ratio}");
    }

    #[test]
    fn looser_bound_higher_ratio() {
        let data = gradient_like(100_000, 5);
        let mut rng = Rng::new(6);
        let loose = Sz::new(1e-1).ratio(&data, &mut rng);
        let tight = Sz::new(4e-3).ratio(&data, &mut rng);
        assert!(loose > tight, "loose {loose} tight {tight}");
    }

    #[test]
    fn deterministic() {
        // SZ uses RN: identical inputs give identical bytes.
        let data = gradient_like(5000, 7);
        let sz = Sz::new(1e-2);
        let mut rng = Rng::new(8);
        let a = sz.compress(&data, &mut rng);
        let b = sz.compress(&data, &mut rng);
        assert_eq!(a, b);
    }

    #[test]
    fn constant_and_empty_inputs() {
        let sz = Sz::new(1e-2);
        let mut rng = Rng::new(9);
        for data in [vec![], vec![5.5f32; 100]] {
            let back = sz.decompress(&sz.compress(&data, &mut rng)).unwrap();
            assert_eq!(back, data);
        }
    }

    #[test]
    fn outliers_are_exact() {
        // Huge jumps exceed the code range and go through the outlier path.
        let mut data = vec![0.0f32; 1000];
        data[500] = 1e7;
        data[501] = -1e7;
        let sz = Sz::new(1e-6);
        let mut rng = Rng::new(10);
        let back = sz.decompress(&sz.compress(&data, &mut rng)).unwrap();
        assert_eq!(back[500], 1e7);
        assert_eq!(back[501], -1e7);
    }

    #[test]
    fn truncation_detected() {
        let data = gradient_like(1000, 11);
        let sz = Sz::new(1e-2);
        let mut rng = Rng::new(12);
        let bytes = sz.compress(&data, &mut rng);
        for cut in [0usize, 4, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(sz.decompress(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [-MAX_CODE, -100, -1, 0, 1, 100, MAX_CODE] {
            assert_eq!(unzigzag(zigzag(v)), v, "v={v}");
        }
    }

    #[test]
    fn parallel_group_matches_per_layer_serial_and_roundtrips() {
        let layers: Vec<Vec<f32>> = vec![
            smooth_data(4000, 20),
            vec![],
            gradient_like(900, 21),
            vec![7.5f32; 50],
        ];
        let refs: Vec<&[f32]> = layers.iter().map(|l| l.as_slice()).collect();
        let sz = Sz::new(4e-3);
        let rec = compso_obs::Recorder::disabled();
        let run = |threads: usize| {
            let _guard = rayon::scoped_thread_override(threads);
            let mut rng = Rng::new(22);
            sz.compress_group(&refs, None, &mut rng, &rec)
        };
        let bytes = run(1);
        assert_eq!(bytes[0], super::super::pargroup::MAGIC_PARGROUP);
        for threads in [2usize, 4] {
            assert_eq!(run(threads), bytes, "threads={threads}");
        }
        // SZ is deterministic: the group call leaves the RNG untouched,
        // exactly like its serial compress.
        let mut rng = Rng::new(22);
        let _ = sz.compress_group(&refs, None, &mut rng, &rec);
        assert_eq!(rng.next_u64(), Rng::new(22).next_u64());
        let back = sz.decompress_group(&bytes, &rec).unwrap();
        assert_eq!(back.len(), layers.len());
        for (li, (orig, dec)) in layers.iter().zip(&back).enumerate() {
            assert_eq!(orig.len(), dec.len(), "layer {li}");
            let mm = compso_tensor::reduce::minmax_flat(orig);
            let range = if orig.is_empty() {
                0.0
            } else {
                mm.max - mm.min
            };
            for (&x, &y) in orig.iter().zip(dec) {
                assert!(
                    (x - y).abs() <= 4e-3 * range * 1.001 + 1e-7,
                    "layer {li}: {x} vs {y}"
                );
            }
        }
        for cut in [0usize, 1, 3, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                sz.decompress_group(&bytes[..cut], &rec).is_err(),
                "cut={cut}"
            );
        }
    }

    proptest! {
        #[test]
        fn prop_error_bound(
            data in proptest::collection::vec(-100.0f32..100.0, 0..600),
            eb in 0.001f32..0.2,
        ) {
            let sz = Sz::new(eb);
            let mut rng = Rng::new(1);
            let back = sz.decompress(&sz.compress(&data, &mut rng)).unwrap();
            prop_assert_eq!(back.len(), data.len());
            let mm = compso_tensor::reduce::minmax_flat(&data);
            let range = if data.is_empty() { 0.0 } else { mm.max - mm.min };
            for (&x, &y) in data.iter().zip(&back) {
                prop_assert!((x - y).abs() <= eb * range + range * 1e-5 + 1e-6);
            }
        }
    }
}
