//! Baseline compressors the paper evaluates against (§2.4, §5).
//!
//! * [`qsgd::Qsgd`] — fixed-rate stochastic-rounding quantization with
//!   Elias-gamma coding (Alistarh et al., NeurIPS'17);
//! * [`sz::Sz`] — prediction-based error-bounded compression with
//!   round-to-nearest quantization and Huffman coding (the cuSZ row of
//!   the tables);
//! * [`cocktail::CocktailSgd`] — random-sampled top-k sparsification (20%)
//!   combined with 8-bit quantization (Wang et al., ICML'23);
//! * [`topk::TopK`] — exact fixed-density Top-k at full precision (the
//!   Ok-topk-style rigid-sparsity comparator of §4.3/§6);
//! * [`powersgd::PowerSgd`] — rank-r low-rank power iteration with warm
//!   starts and error feedback (Vogels et al., NeurIPS'19), the
//!   structurally different fourth family the adaptive control plane
//!   selects between.
//!
//! [`pargroup`] supplies the layer-parallel multi-layer frame (magic
//! `0xC8`) that QSGD and SZ use for `compress_group`, replacing the
//! serial generic `0xC7` fallback on the evaluation hot path.

pub mod cocktail;
pub mod pargroup;
pub mod powersgd;
pub mod qsgd;
pub mod sz;
pub mod topk;

pub use cocktail::CocktailSgd;
pub use powersgd::PowerSgd;
pub use qsgd::Qsgd;
pub use sz::Sz;
pub use topk::TopK;
