//! QSGD: fixed-rate stochastic quantization with Elias-gamma coding.
//!
//! Each buffer is normalized by its L∞ norm; magnitudes are stochastically
//! rounded onto `s = 2^(bits-1) - 1` levels (so "8-bit QSGD" has 127
//! magnitude levels plus sign); levels are Elias-gamma coded, signs ride
//! along as single bits. This is the §2.4 description: "QSGD includes
//! SR-based quantization and Elias Encoding".

use crate::traits::{CompressError, Compressor};
use crate::wire::{Reader, WireError, Writer};
use compso_tensor::rng::Rng;

/// The QSGD compressor at a fixed bit width.
#[derive(Clone, Copy, Debug)]
pub struct Qsgd {
    /// Bits per value in the nominal fixed-rate scheme (e.g. 4 or 8).
    pub bits: u32,
}

impl Qsgd {
    /// Standard 8-bit QSGD (the accuracy-preserving setting of Fig. 3).
    pub fn bits8() -> Self {
        Qsgd { bits: 8 }
    }

    /// 4-bit QSGD (the high-ratio, accuracy-losing setting of Fig. 3).
    pub fn bits4() -> Self {
        Qsgd { bits: 4 }
    }

    /// Number of magnitude levels.
    pub fn levels(&self) -> u32 {
        (1u32 << (self.bits - 1)) - 1
    }
}

/// MSB-first bit writer (shared with the gamma coder below).
struct BitWriter {
    out: Vec<u8>,
    acc: u64,
    n: u32,
}

impl BitWriter {
    fn new() -> Self {
        BitWriter {
            out: Vec::new(),
            acc: 0,
            n: 0,
        }
    }

    fn bit(&mut self, b: u32) {
        self.acc = (self.acc << 1) | b as u64;
        self.n += 1;
        if self.n == 8 {
            self.out.push(self.acc as u8);
            self.acc = 0;
            self.n = 0;
        }
    }

    /// Elias-gamma code of `v >= 1`: ⌊log₂v⌋ zeros, then v's bits.
    fn gamma(&mut self, v: u32) {
        debug_assert!(v >= 1);
        let nbits = 32 - v.leading_zeros();
        for _ in 0..nbits - 1 {
            self.bit(0);
        }
        for i in (0..nbits).rev() {
            self.bit((v >> i) & 1);
        }
    }

    fn finish(mut self) -> Vec<u8> {
        while self.n != 0 {
            self.bit(0);
        }
        self.out
    }
}

struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    fn bit(&mut self) -> Result<u32, WireError> {
        let byte = self.pos / 8;
        if byte >= self.bytes.len() {
            return Err(WireError::Truncated {
                need: byte + 1,
                have: self.bytes.len(),
            });
        }
        let b = (self.bytes[byte] >> (7 - self.pos % 8)) & 1;
        self.pos += 1;
        Ok(b as u32)
    }

    fn gamma(&mut self) -> Result<u32, WireError> {
        let mut zeros = 0u32;
        while self.bit()? == 0 {
            zeros += 1;
            if zeros > 31 {
                return Err(WireError::Invalid("gamma code too long"));
            }
        }
        let mut v = 1u32;
        for _ in 0..zeros {
            v = (v << 1) | self.bit()?;
        }
        Ok(v)
    }
}

impl Compressor for Qsgd {
    fn name(&self) -> &'static str {
        match self.bits {
            4 => "QSGD-4bit",
            8 => "QSGD-8bit",
            _ => "QSGD",
        }
    }

    fn compress(&self, data: &[f32], rng: &mut Rng) -> Vec<u8> {
        let s = self.levels();
        let scale = compso_tensor::reduce::absmax_flat(data);
        let mut bits = BitWriter::new();
        if scale > 0.0 {
            let sf = s as f64 / scale as f64;
            for &v in data {
                let mag = (v.abs() as f64) * sf;
                // Stochastic rounding of the magnitude (Eq. 4).
                let floor = mag.floor();
                let level = if rng.uniform_f64() < mag - floor {
                    floor as u32 + 1
                } else {
                    floor as u32
                }
                .min(s);
                // Gamma codes start at 1; level 0 -> 1, etc.
                bits.gamma(level + 1);
                if level > 0 {
                    bits.bit(u32::from(v < 0.0));
                }
            }
        }
        let payload = bits.finish();
        let mut w = Writer::with_capacity(payload.len() + 24);
        w.u8(self.bits as u8);
        w.u64(data.len() as u64);
        w.f32(scale);
        w.block(&payload);
        w.into_bytes()
    }

    /// Layer-parallel multi-layer frame (magic `0xC8`): each layer is
    /// quantized on its own rayon worker with an RNG forked from the
    /// layer index, so bytes are deterministic at any thread count and
    /// the caller's generator advances exactly once. QSGD has no use
    /// for a chunk schedule (its unit of work is the whole layer), so
    /// the hint is ignored.
    fn compress_group(
        &self,
        layers: &[&[f32]],
        _schedule: Option<&crate::kernels::LayerSchedule>,
        rng: &mut Rng,
        _rec: &compso_obs::Recorder,
    ) -> Vec<u8> {
        let base = Rng::new(rng.next_u64());
        super::pargroup::compress(layers, |i, layer| {
            let mut layer_rng = base.fork(i as u64);
            self.compress(layer, &mut layer_rng)
        })
    }

    fn decompress_group(
        &self,
        bytes: &[u8],
        _rec: &compso_obs::Recorder,
    ) -> Result<Vec<Vec<f32>>, CompressError> {
        super::pargroup::decompress(bytes, |block| self.decompress(block))
    }

    fn decompress(&self, bytes: &[u8]) -> Result<Vec<f32>, CompressError> {
        let mut r = Reader::new(bytes);
        let bits_field = r.u8()? as u32;
        if !(2..=16).contains(&bits_field) {
            return Err(WireError::Invalid("qsgd bits").into());
        }
        let s = (1u32 << (bits_field - 1)) - 1;
        let n = crate::wire::checked_count(r.u64()?)?;
        let scale = r.f32()?;
        if !scale.is_finite() || scale < 0.0 {
            return Err(WireError::Invalid("qsgd scale").into());
        }
        if scale == 0.0 {
            return Ok(vec![0.0; n]);
        }
        let payload = r.block()?;
        let mut br = BitReader::new(payload);
        let mut out = Vec::with_capacity(n);
        let inv = scale as f64 / s as f64;
        for _ in 0..n {
            let level = br
                .gamma()?
                .checked_sub(1)
                .ok_or(WireError::Invalid("level"))?;
            if level > s {
                return Err(CompressError::Corrupt("qsgd level out of range"));
            }
            if level == 0 {
                out.push(0.0);
            } else {
                let sign = if br.bit()? == 1 { -1.0 } else { 1.0 };
                out.push((sign * level as f64 * inv) as f32);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    // Explicit import: proptest's prelude also globs a `Rng` trait.
    use compso_tensor::rng::Rng;

    fn gradient_like(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = Rng::new(seed);
        (0..n).map(|_| rng.laplace(0.01)).collect()
    }

    #[test]
    fn roundtrip_error_bound() {
        let data = gradient_like(20_000, 1);
        let q = Qsgd::bits8();
        let mut rng = Rng::new(2);
        let back = q.decompress(&q.compress(&data, &mut rng)).unwrap();
        let scale = compso_tensor::reduce::absmax_flat(&data);
        let step = scale / q.levels() as f32;
        for (&x, &y) in data.iter().zip(&back) {
            assert!((x - y).abs() <= step * 1.001, "{x} vs {y}");
        }
    }

    #[test]
    fn four_bit_ratio_exceeds_eight_bit() {
        let data = gradient_like(100_000, 3);
        let mut rng = Rng::new(4);
        let r4 = Qsgd::bits4().ratio(&data, &mut rng);
        let r8 = Qsgd::bits8().ratio(&data, &mut rng);
        assert!(r4 > r8, "r4 {r4} r8 {r8}");
        // Fig. 3 ballpark: 8-bit lands around 4-6x on conv-style gradients.
        assert!(r8 > 3.0, "r8 {r8}");
    }

    #[test]
    fn gamma_coding_favors_small_levels() {
        // Gradients hug zero -> most levels are 0 or 1 -> far below the
        // nominal bits/value.
        let data = gradient_like(100_000, 5);
        let q = Qsgd::bits8();
        let mut rng = Rng::new(6);
        let bytes = q.compress(&data, &mut rng);
        let bits_per_value = bytes.len() as f64 * 8.0 / data.len() as f64;
        assert!(bits_per_value < 8.0, "bits/value {bits_per_value}");
    }

    #[test]
    fn unbiasedness_of_sr() {
        let data = vec![0.37f32; 50_000];
        let q = Qsgd::bits4();
        let mut rng = Rng::new(7);
        let back = q.decompress(&q.compress(&data, &mut rng)).unwrap();
        let mean: f64 = back.iter().map(|&v| v as f64).sum::<f64>() / back.len() as f64;
        assert!((mean - 0.37).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn zeros_and_empty() {
        let q = Qsgd::bits8();
        let mut rng = Rng::new(8);
        for data in [vec![], vec![0.0f32; 100]] {
            let back = q.decompress(&q.compress(&data, &mut rng)).unwrap();
            assert_eq!(back, data);
        }
    }

    #[test]
    fn signs_preserved() {
        let data = vec![0.9f32, -0.9, 0.5, -0.5];
        let q = Qsgd::bits8();
        let mut rng = Rng::new(9);
        let back = q.decompress(&q.compress(&data, &mut rng)).unwrap();
        for (&x, &y) in data.iter().zip(&back) {
            assert!(x.signum() == y.signum() || y == 0.0, "{x} vs {y}");
        }
    }

    #[test]
    fn truncation_detected() {
        let data = gradient_like(1000, 10);
        let q = Qsgd::bits8();
        let mut rng = Rng::new(11);
        let bytes = q.compress(&data, &mut rng);
        for cut in [0usize, 5, 12, bytes.len() / 2] {
            assert!(q.decompress(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn gamma_codes_roundtrip() {
        let mut w = BitWriter::new();
        let vals = [1u32, 2, 3, 7, 8, 100, 65_535, u32::MAX >> 1];
        for &v in &vals {
            w.gamma(v);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &v in &vals {
            assert_eq!(r.gamma().unwrap(), v);
        }
    }

    #[test]
    fn parallel_group_roundtrips_and_is_thread_deterministic() {
        let layers: Vec<Vec<f32>> = vec![
            gradient_like(3000, 20),
            vec![],
            gradient_like(700, 21),
            vec![0.0f32; 64],
        ];
        let refs: Vec<&[f32]> = layers.iter().map(|l| l.as_slice()).collect();
        let q = Qsgd::bits8();
        let rec = compso_obs::Recorder::disabled();
        let run = |threads: usize| {
            let _guard = rayon::scoped_thread_override(threads);
            let mut rng = Rng::new(22);
            q.compress_group(&refs, None, &mut rng, &rec)
        };
        let bytes = run(1);
        assert_eq!(bytes[0], super::super::pargroup::MAGIC_PARGROUP);
        for threads in [2usize, 4] {
            assert_eq!(run(threads), bytes, "threads={threads}");
        }
        let back = q.decompress_group(&bytes, &rec).unwrap();
        assert_eq!(back.len(), layers.len());
        let scale0 = compso_tensor::reduce::absmax_flat(&layers[0]);
        let step = scale0 / q.levels() as f32;
        for (&x, &y) in layers[0].iter().zip(&back[0]) {
            assert!((x - y).abs() <= step * 1.001, "{x} vs {y}");
        }
        assert_eq!(back[1], layers[1]);
        assert_eq!(back[3], layers[3]);
        // The caller's RNG advanced exactly once per group call.
        let mut a = Rng::new(22);
        let mut b = Rng::new(22);
        let _ = q.compress_group(&refs, None, &mut a, &rec);
        let _ = b.next_u64();
        assert_eq!(a.next_u64(), b.next_u64());
        // Truncations of the group frame are detected, never panic.
        for cut in [0usize, 1, 3, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                q.decompress_group(&bytes[..cut], &rec).is_err(),
                "cut={cut}"
            );
        }
    }

    proptest! {
        #[test]
        fn prop_roundtrip_bounded(
            data in proptest::collection::vec(-5.0f32..5.0, 0..800),
            seed in any::<u64>(),
        ) {
            let q = Qsgd::bits8();
            let mut rng = Rng::new(seed);
            let back = q.decompress(&q.compress(&data, &mut rng)).unwrap();
            prop_assert_eq!(back.len(), data.len());
            let scale = compso_tensor::reduce::absmax_flat(&data);
            let step = scale / q.levels() as f32;
            for (&x, &y) in data.iter().zip(&back) {
                prop_assert!((x - y).abs() <= step + scale * 1e-5 + 1e-6);
            }
        }
    }
}
