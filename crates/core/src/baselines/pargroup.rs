//! Layer-parallel group framing for the baseline compressors.
//!
//! The default [`Compressor::compress_group`] frames each layer's serial
//! `compress` output one after another (magic `0xC7`) — correct, but the
//! per-layer work runs on one thread and the decoder cannot fan out
//! either. This module gives the independent-per-layer baselines (QSGD,
//! SZ) a real multi-layer format, magic [`MAGIC_PARGROUP`] (`0xC8`):
//!
//! ```text
//! u8   magic (0xC8)
//! u8   version (1)
//! u32  n_layers
//! u64 × n_layers   byte length of each layer's block
//! [layer 0 block][layer 1 block]…   (each block self-describing)
//! ```
//!
//! The explicit length index is what buys parallelism: workers slice
//! their block by offset and encode/decode concurrently, exactly like
//! the chunked COMPSO stream's offset index (`kernels.rs`). Order and
//! bytes are deterministic at any thread count — stochastic compressors
//! derive one base RNG from the caller's generator (advancing it exactly
//! once) and give layer *i* the fork `base.fork(i)`, so the stream never
//! depends on which worker ran first.
//!
//! Hostile-input posture matches the rest of the wire layer: decoders
//! validate the layer count, check every block length against the bytes
//! actually present *before* allocating, and reject trailing garbage.
//!
//! [`Compressor::compress_group`]: crate::traits::Compressor::compress_group

use crate::traits::CompressError;
use crate::wire::{Reader, WireError, Writer};
use rayon::prelude::*;

/// Magic byte of the layer-parallel baseline group format
/// (re-exported from the central [`crate::wire::magic`] registry).
pub use crate::wire::magic::MAGIC_PARGROUP;

/// Current version of the parallel group layout.
pub const PARGROUP_VERSION: u8 = 1;

/// Upper bound on the declared layer count (matches the generic group
/// framing's guard; real models are thousands of layers at most).
const MAX_LAYERS: usize = 1_000_000;

/// Compresses `layers` in parallel under the [`MAGIC_PARGROUP`] frame.
///
/// `encode` maps `(layer_index, layer)` to that layer's self-describing
/// block; it runs on rayon workers, so stochastic encoders must derive
/// their randomness from the layer index (see the module docs), never
/// from shared mutable state.
pub fn compress<F>(layers: &[&[f32]], encode: F) -> Vec<u8>
where
    F: Fn(usize, &[f32]) -> Vec<u8> + Sync,
{
    let blocks: Vec<Vec<u8>> = layers
        .par_iter()
        .enumerate()
        .map(|(i, layer)| encode(i, layer))
        .collect();
    let total: usize = blocks.iter().map(|b| b.len()).sum();
    let mut w = Writer::with_capacity(6 + blocks.len() * 8 + total);
    w.u8(MAGIC_PARGROUP);
    w.u8(PARGROUP_VERSION);
    w.u32(layers.len() as u32);
    for b in &blocks {
        w.u64(b.len() as u64);
    }
    for b in &blocks {
        w.bytes(b);
    }
    w.into_bytes()
}

/// Inverse of [`compress`]: validates the frame, slices every layer's
/// block by the length index, and decodes the blocks on rayon workers.
pub fn decompress<F>(bytes: &[u8], decode: F) -> Result<Vec<Vec<f32>>, CompressError>
where
    F: Fn(&[u8]) -> Result<Vec<f32>, CompressError> + Sync,
{
    let mut r = Reader::new(bytes);
    if r.u8()? != MAGIC_PARGROUP {
        return Err(WireError::Invalid("pargroup magic").into());
    }
    if r.u8()? != PARGROUP_VERSION {
        return Err(WireError::Invalid("pargroup version").into());
    }
    let n_layers = r.u32()? as usize;
    if n_layers > MAX_LAYERS {
        return Err(WireError::Invalid("pargroup layer count").into());
    }
    // Read the index and check the lengths tile the remaining bytes
    // exactly before touching (or allocating for) any payload.
    let mut lens = Vec::with_capacity(n_layers);
    for _ in 0..n_layers {
        lens.push(crate::wire::checked_count(r.u64()?)?);
    }
    let payload = r.bytes(r.remaining())?;
    let declared: usize = lens
        .iter()
        .try_fold(0usize, |acc, &l| acc.checked_add(l))
        .ok_or(WireError::Invalid("pargroup lengths overflow"))?;
    if declared != payload.len() {
        return Err(CompressError::Corrupt("pargroup payload length"));
    }
    let mut slices = Vec::with_capacity(n_layers);
    let mut off = 0usize;
    for &l in &lens {
        slices.push(&payload[off..off + l]);
        off += l;
    }
    let decoded: Vec<Result<Vec<f32>, CompressError>> =
        slices.par_iter().map(|block| decode(block)).collect();
    decoded.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{Compressor, NoCompression};
    use compso_tensor::rng::Rng;

    fn frame(layers: &[Vec<f32>]) -> Vec<u8> {
        let refs: Vec<&[f32]> = layers.iter().map(|l| l.as_slice()).collect();
        compress(&refs, |_, layer| {
            let mut rng = Rng::new(0);
            NoCompression.compress(layer, &mut rng)
        })
    }

    #[test]
    fn roundtrips_including_empty_layers() {
        let layers = vec![vec![1.0f32, -2.5, 3.25], vec![], vec![0.5; 33]];
        let bytes = frame(&layers);
        assert_eq!(bytes[0], MAGIC_PARGROUP);
        let back = decompress(&bytes, |b| NoCompression.decompress(b)).unwrap();
        assert_eq!(back, layers);
        // Zero layers is a valid (tiny) frame too.
        let empty = frame(&[]);
        assert_eq!(
            decompress(&empty, |b| NoCompression.decompress(b)).unwrap(),
            Vec::<Vec<f32>>::new()
        );
    }

    #[test]
    fn truncation_and_trailing_bytes_rejected() {
        let layers = vec![vec![1.0f32; 9], vec![2.0f32; 4]];
        let mut bytes = frame(&layers);
        for cut in [0usize, 1, 2, 5, 6 + 8, bytes.len() - 1] {
            assert!(
                decompress(&bytes[..cut], |b| NoCompression.decompress(b)).is_err(),
                "cut={cut}"
            );
        }
        bytes.push(0xAB);
        assert!(decompress(&bytes, |b| NoCompression.decompress(b)).is_err());
    }

    #[test]
    fn hostile_headers_rejected_without_allocation() {
        let good = frame(&[vec![1.0f32; 4]]);
        // Wrong magic / version.
        let mut b = good.clone();
        b[0] = 0xC7;
        assert!(decompress(&b, |b| NoCompression.decompress(b)).is_err());
        let mut b = good.clone();
        b[1] = 99;
        assert!(decompress(&b, |b| NoCompression.decompress(b)).is_err());
        // Absurd layer count with no matching index.
        let mut w = Writer::new();
        w.u8(MAGIC_PARGROUP);
        w.u8(PARGROUP_VERSION);
        w.u32(u32::MAX);
        assert!(decompress(&w.into_bytes(), |b| NoCompression.decompress(b)).is_err());
        // A length that overflows usize when summed.
        let mut w = Writer::new();
        w.u8(MAGIC_PARGROUP);
        w.u8(PARGROUP_VERSION);
        w.u32(2);
        w.u64(u64::MAX / 2);
        w.u64(u64::MAX / 2);
        assert!(decompress(&w.into_bytes(), |b| NoCompression.decompress(b)).is_err());
    }
}
