//! PowerSGD: rank-r low-rank gradient compression via power iteration
//! (Vogels et al., NeurIPS'19, arXiv 1905.13727).
//!
//! The gradient buffer is reshaped into a near-square matrix `M`
//! (`rows = ⌈√n⌉`, zero-padded tail) and approximated by the rank-r
//! product `M ≈ P̂·Qᵀ` where `P̂ = orth(M·Q)` and `Q = Mᵀ·P̂`. One power
//! iteration per step plus a **warm-started Q** (last step's factor seeds
//! this step's subspace) tracks the slowly rotating gradient subspace at
//! a wire cost of `(rows + cols)·r` floats instead of `n` — a
//! structurally different operating point from the quantize/sparsify
//! families: compression error concentrates in the tail singular values
//! rather than in per-element rounding, and the ratio is independent of
//! the value distribution. **Error feedback** folds the reconstruction
//! residual `M − P̂Qᵀ` back into the next step's input so the bias decays
//! instead of accumulating.
//!
//! Warm starts and error feedback are *stateful per layer*. State is
//! keyed by the caller-stable layer ids of
//! [`Compressor::compress_group_keyed`] (global layer indices in
//! `DistKfac`), never by position: each layer is compressed exactly once
//! per step by whichever rank owns it, over bit-identical inputs, so the
//! per-layer state — and therefore the wire bytes — are identical at any
//! world size. The plain [`Compressor::compress`] path is stateless
//! (deterministically seeded Q, no feedback): a pure function of the
//! input, which is what the round-trip and fuzz harnesses exercise.
//!
//! Wire format, magic [`MAGIC_POWERSGD`] (`0xCA`):
//!
//! ```text
//! u8   magic (0xCA)
//! u8   mode: 0 = raw escape, 1 = low-rank
//! u64  n (element count, checked)
//! mode 0: n × f32                      (low-rank wouldn't pay)
//! mode 1: u32 rows, u32 cols, u8 r,
//!         rows·r × f32 (P̂, row-major), cols·r × f32 (Q, row-major)
//! ```
//!
//! The decoder recomputes the canonical `(rows, cols)` from `n` and
//! rejects any mismatch, bounds `r`, and demands the payload end exactly
//! at the last `Q` float — a frame can never make it allocate more than
//! the declared (checked) `n` plus one padding row.

use std::collections::HashMap;
use std::sync::Mutex;

use crate::kernels::LayerSchedule;
use crate::traits::{CompressError, Compressor, MAGIC_GROUP};
use crate::wire::{checked_count, Reader, WireError, Writer};
use compso_obs::Recorder;
use compso_tensor::rng::Rng;
use compso_tensor::Matrix;

/// Magic byte of the PowerSGD factor stream (re-exported from the central
/// [`crate::wire::magic`] registry).
pub use crate::wire::magic::MAGIC_POWERSGD;

/// Hard ceiling on the rank a frame may declare; real configurations use
/// 1–32, anything larger is a corrupt header.
pub const MAX_WIRE_RANK: usize = 64;

/// Fixed bytes before the mode-specific payload (magic, mode, n).
const HEADER_BYTES: usize = 1 + 1 + 8;

/// Per-layer controller/feedback state.
struct LayerState {
    /// Last transmitted `Q` factor (`cols × r`), next step's warm start.
    q: Matrix,
    /// Error-feedback residual, one entry per gradient element.
    residual: Vec<f32>,
    /// `‖residual‖ / ‖input‖` of the most recent compression — the
    /// divergence signal the control plane watches.
    residual_rel: f64,
}

/// The PowerSGD low-rank compressor.
pub struct PowerSgd {
    /// Target rank r of the transmitted factors.
    pub rank: usize,
    /// Power iterations per compression (1 is the paper's setting).
    pub power_iters: usize,
    state: Mutex<HashMap<u64, LayerState>>,
}

impl PowerSgd {
    /// PowerSGD at rank `r` with one power iteration, warm starts, and
    /// error feedback on the keyed path.
    pub fn rank(r: usize) -> Self {
        PowerSgd {
            rank: r.max(1),
            power_iters: 1,
            state: Mutex::new(HashMap::new()),
        }
    }

    /// Overrides the number of power iterations (≥ 1).
    pub fn with_power_iters(mut self, iters: usize) -> Self {
        self.power_iters = iters.max(1);
        self
    }

    /// Canonical near-square reshape of an `n`-element buffer.
    pub fn shape_for(n: usize) -> (usize, usize) {
        if n == 0 {
            return (0, 0);
        }
        let mut rows = n.isqrt();
        if rows * rows < n {
            rows += 1;
        }
        let cols = n.div_ceil(rows);
        (rows, cols)
    }

    /// Whether a rank-`r` factor pair beats shipping `n` raw floats.
    fn lowrank_pays(n: usize, rows: usize, cols: usize, r: usize) -> bool {
        let factor_bytes = (rows + cols) * r * 4 + 4 + 4 + 1;
        factor_bytes + HEADER_BYTES < n * 4 + HEADER_BYTES
    }

    /// Deterministic Q initialization for a cold start: seeded purely by
    /// the buffer geometry so every rank (and every run) derives the same
    /// starting subspace.
    fn cold_q(n: usize, cols: usize, r: usize) -> Matrix {
        let seed = 0x5057_5347u64 ^ (n as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (r as u64);
        let mut rng = Rng::new(seed);
        let mut q = Matrix::random_normal(cols, r, &mut rng);
        q.orthonormalize_columns();
        q
    }

    /// Largest `‖residual‖/‖input‖` across all layers compressed through
    /// the keyed path so far — the error-feedback divergence signal the
    /// control plane polls. 0.0 before any stateful compression.
    pub fn ef_residual_rel(&self) -> f64 {
        let state = self.state.lock().unwrap();
        state
            .values()
            .map(|s| s.residual_rel)
            .fold(0.0f64, f64::max)
    }

    /// Drops all warm-start / error-feedback state (e.g. after the
    /// controller switches away and back).
    pub fn reset_state(&self) {
        self.state.lock().unwrap().clear();
    }

    /// Core encoder. `state = None` is the stateless pure-function path;
    /// `Some` threads warm starts and error feedback through.
    fn encode(&self, data: &[f32], mut state: Option<&mut LayerState>) -> Vec<u8> {
        let n = data.len();
        let (rows, cols) = Self::shape_for(n);
        let r = self.rank.min(rows).min(cols).min(MAX_WIRE_RANK);
        if n == 0 || r == 0 || !Self::lowrank_pays(n, rows, cols, r) {
            let mut w = Writer::with_capacity(HEADER_BYTES + n * 4);
            w.u8(MAGIC_POWERSGD);
            w.u8(0);
            w.u64(n as u64);
            for &v in data {
                w.f32(v);
            }
            return w.into_bytes();
        }

        // M = reshape(data [+ residual]) zero-padded to rows × cols.
        let mut m = Matrix::zeros(rows, cols);
        {
            let md = m.as_mut_slice();
            md[..n].copy_from_slice(data);
            if let Some(st) = state.as_deref_mut() {
                if st.residual.len() == n {
                    for (slot, &res) in md[..n].iter_mut().zip(&st.residual) {
                        *slot += res;
                    }
                }
            }
        }

        // Warm-start Q when the cached factor still fits this geometry.
        let mut q = match state.as_deref_mut() {
            Some(st) if st.q.rows() == cols && st.q.cols() == r => st.q.clone(),
            _ => Self::cold_q(n, cols, r),
        };
        let mut p = Matrix::zeros(rows, r);
        for _ in 0..self.power_iters {
            p = m.matmul(&q);
            p.orthonormalize_columns();
            q = m.t_matmul(&p);
        }

        if let Some(st) = state {
            let approx = p.matmul_t(&q);
            let ad = approx.as_slice();
            let mut residual = Vec::with_capacity(n);
            let mut err_sq = 0.0f64;
            let mut in_sq = 0.0f64;
            for (&got, &approx) in m.as_slice()[..n].iter().zip(&ad[..n]) {
                let e = got - approx;
                residual.push(e);
                err_sq += e as f64 * e as f64;
                in_sq += got as f64 * got as f64;
            }
            st.q = q.clone();
            st.residual = residual;
            st.residual_rel = if in_sq > 0.0 {
                (err_sq / in_sq).sqrt()
            } else {
                0.0
            };
        }

        let mut w = Writer::with_capacity(HEADER_BYTES + 9 + (rows + cols) * r * 4);
        w.u8(MAGIC_POWERSGD);
        w.u8(1);
        w.u64(n as u64);
        w.u32(rows as u32);
        w.u32(cols as u32);
        w.u8(r as u8);
        for &v in p.as_slice() {
            w.f32(v);
        }
        for &v in q.as_slice() {
            w.f32(v);
        }
        w.into_bytes()
    }
}

impl Compressor for PowerSgd {
    fn name(&self) -> &'static str {
        match self.rank {
            1 => "PowerSGD-r1",
            2 => "PowerSGD-r2",
            4 => "PowerSGD-r4",
            8 => "PowerSGD-r8",
            16 => "PowerSGD-r16",
            _ => "PowerSGD",
        }
    }

    /// Stateless compression: deterministically seeded Q, no warm start,
    /// no error feedback. A pure function of `data` (the RNG is unused),
    /// so round-trips are reproducible anywhere.
    fn compress(&self, data: &[f32], _rng: &mut Rng) -> Vec<u8> {
        self.encode(data, None)
    }

    fn decompress(&self, bytes: &[u8]) -> Result<Vec<f32>, CompressError> {
        let mut r = Reader::new(bytes);
        if r.u8()? != MAGIC_POWERSGD {
            return Err(WireError::Invalid("powersgd magic").into());
        }
        let mode = r.u8()?;
        let n = checked_count(r.u64()?)?;
        match mode {
            0 => {
                let mut out = Vec::with_capacity(n);
                for _ in 0..n {
                    out.push(r.f32()?);
                }
                if !r.is_exhausted() {
                    return Err(CompressError::Corrupt("trailing powersgd bytes"));
                }
                Ok(out)
            }
            1 => {
                let rows = r.u32()? as usize;
                let cols = r.u32()? as usize;
                let rank = r.u8()? as usize;
                // The shape is a pure function of n: recompute and demand
                // an exact match, which simultaneously kills allocation
                // amplification (rows·cols ≤ n + rows) and most header
                // mutations.
                if (rows, cols) != Self::shape_for(n) {
                    return Err(CompressError::Corrupt("powersgd shape mismatch"));
                }
                if rank == 0 || rank > rows.min(cols) || rank > MAX_WIRE_RANK {
                    return Err(WireError::Invalid("powersgd rank").into());
                }
                if !Self::lowrank_pays(n, rows, cols, rank) {
                    return Err(CompressError::Corrupt("powersgd non-canonical mode"));
                }
                let mut p = Matrix::zeros(rows, rank);
                for v in p.as_mut_slice() {
                    *v = r.f32()?;
                }
                let mut q = Matrix::zeros(cols, rank);
                for v in q.as_mut_slice() {
                    *v = r.f32()?;
                }
                if !r.is_exhausted() {
                    return Err(CompressError::Corrupt("trailing powersgd bytes"));
                }
                let mut approx = p.matmul_t(&q).into_vec();
                approx.truncate(n);
                Ok(approx)
            }
            _ => Err(WireError::Invalid("powersgd mode").into()),
        }
    }

    /// Keyed group path: per-layer warm starts and error feedback looked
    /// up by the caller's stable ids, framed under the generic
    /// [`MAGIC_GROUP`] header so the default
    /// [`Compressor::decompress_group`] decodes it. Layers run
    /// sequentially — the GEMMs inside are already rayon-parallel — and
    /// the caller's RNG is untouched (the factorization is
    /// deterministic).
    fn compress_group_keyed(
        &self,
        layers: &[(u64, &[f32])],
        _schedule: Option<&LayerSchedule>,
        _rng: &mut Rng,
        _rec: &Recorder,
    ) -> Vec<u8> {
        let mut state = self.state.lock().unwrap();
        let mut w = Writer::new();
        w.u8(MAGIC_GROUP);
        w.u32(layers.len() as u32);
        for &(key, layer) in layers {
            let st = state.entry(key).or_insert_with(|| LayerState {
                q: Matrix::zeros(0, 0),
                residual: Vec::new(),
                residual_rel: 0.0,
            });
            w.block(&self.encode(layer, Some(st)));
        }
        w.into_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    // Explicit import: proptest's prelude also globs a `Rng` trait.
    use compso_tensor::rng::Rng;

    fn gradient_like(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = Rng::new(seed);
        (0..n).map(|_| rng.laplace(0.01)).collect()
    }

    /// A buffer that is *exactly* rank-k when reshaped: outer products of
    /// smooth vectors.
    fn lowrank_buffer(rows: usize, cols: usize, k: usize, seed: u64) -> Vec<f32> {
        let mut rng = Rng::new(seed);
        let u = Matrix::random_normal(rows, k, &mut rng);
        let v = Matrix::random_normal(cols, k, &mut rng);
        u.matmul_t(&v).into_vec()
    }

    #[test]
    fn shape_is_near_square_and_minimal() {
        for n in [1usize, 2, 3, 4, 5, 48, 49, 50, 2304, 1_000_000] {
            let (rows, cols) = PowerSgd::shape_for(n);
            assert!(rows * cols >= n, "n={n}");
            assert!(rows * (cols.saturating_sub(1)) < n, "n={n} wastes a column");
            assert!(rows.abs_diff(cols) <= 1 || rows * cols - n < rows, "n={n}");
        }
        assert_eq!(PowerSgd::shape_for(0), (0, 0));
        assert_eq!(PowerSgd::shape_for(49), (7, 7));
    }

    #[test]
    fn exactly_lowrank_input_roundtrips_tightly() {
        // A rank-2 matrix compressed at rank 4 should reconstruct to
        // f32 round-off.
        let data = lowrank_buffer(40, 40, 2, 1);
        let c = PowerSgd::rank(4).with_power_iters(2);
        let mut rng = Rng::new(2);
        let bytes = c.compress(&data, &mut rng);
        assert_eq!(bytes[0], MAGIC_POWERSGD);
        assert_eq!(bytes[1], 1, "low-rank mode");
        let back = c.decompress(&bytes).unwrap();
        assert_eq!(back.len(), data.len());
        let scale = data.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        for (&x, &y) in data.iter().zip(&back) {
            assert!((x - y).abs() < scale * 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn ratio_is_structural_not_distributional() {
        // (rows+cols)·r vs n: 1600 elements at rank 2 → 40+40 floats × 2
        // = 160, ~10× regardless of values.
        let data = gradient_like(1600, 3);
        let mut rng = Rng::new(4);
        let r = PowerSgd::rank(2).ratio(&data, &mut rng);
        assert!(r > 8.0 && r < 11.0, "ratio {r}");
    }

    #[test]
    fn tiny_buffers_take_the_raw_escape() {
        let c = PowerSgd::rank(8);
        let mut rng = Rng::new(5);
        for n in [0usize, 1, 2, 7, 16] {
            let data = gradient_like(n, 6);
            let bytes = c.compress(&data, &mut rng);
            assert_eq!(bytes[1], 0, "n={n} should escape to raw");
            let back = c.decompress(&bytes).unwrap();
            assert_eq!(back.len(), n);
            for (&x, &y) in data.iter().zip(&back) {
                assert_eq!(x.to_bits(), y.to_bits(), "raw mode is lossless");
            }
        }
    }

    #[test]
    fn compress_is_pure_and_ignores_rng() {
        let data = gradient_like(5000, 7);
        let c = PowerSgd::rank(4);
        let mut a = Rng::new(1);
        let mut b = Rng::new(999);
        assert_eq!(c.compress(&data, &mut a), c.compress(&data, &mut b));
        // And the caller's generator is untouched.
        let mut before = Rng::new(42);
        let mut after = Rng::new(42);
        let _ = c.compress(&data, &mut after);
        assert_eq!(before.next_u64(), after.next_u64());
    }

    #[test]
    fn keyed_state_reduces_error_over_steps() {
        // Feeding the same slowly-varying gradient through the keyed path
        // must do better (cumulatively, via error feedback) than the
        // stateless path: the residual norm should shrink after warm-up.
        let base = lowrank_buffer(30, 30, 6, 8);
        let c = PowerSgd::rank(2);
        let rec = Recorder::disabled();
        let mut rng = Rng::new(9);
        let mut first_rel = 0.0;
        let mut last_rel = 0.0;
        for step in 0..6 {
            let layers = [(7u64, base.as_slice())];
            let bytes = c.compress_group_keyed(&layers, None, &mut rng, &rec);
            let back = c.decompress_group(&bytes, &rec).unwrap();
            assert_eq!(back[0].len(), base.len());
            let rel = c.ef_residual_rel();
            if step == 0 {
                first_rel = rel;
            }
            last_rel = rel;
        }
        assert!(first_rel > 0.0, "rank-2 of a rank-6 input must lose mass");
        // Error feedback re-injects the tail; with a static input the
        // approximation chases it down.
        assert!(
            last_rel < first_rel * 0.9,
            "no EF progress: first {first_rel} last {last_rel}"
        );
        c.reset_state();
        assert_eq!(c.ef_residual_rel(), 0.0);
    }

    #[test]
    fn keyed_bytes_are_position_independent() {
        // The same (key, layer) pair must produce identical bytes no
        // matter which slot it occupies or what else is in the batch —
        // the property that makes 1/2/4-rank runs bit-identical when
        // ownership splits layers differently.
        let l0 = gradient_like(900, 10);
        let l1 = gradient_like(1600, 11);
        let rec = Recorder::disabled();
        let mut rng = Rng::new(12);

        let solo = PowerSgd::rank(2);
        let solo_bytes = solo.compress_group_keyed(&[(5, l1.as_slice())], None, &mut rng, &rec);
        let solo_blocks = {
            let mut r = Reader::new(&solo_bytes);
            assert_eq!(r.u8().unwrap(), MAGIC_GROUP);
            assert_eq!(r.u32().unwrap(), 1);
            r.block().unwrap().to_vec()
        };

        let paired = PowerSgd::rank(2);
        let both = paired.compress_group_keyed(
            &[(3, l0.as_slice()), (5, l1.as_slice())],
            None,
            &mut rng,
            &rec,
        );
        let mut r = Reader::new(&both);
        assert_eq!(r.u8().unwrap(), MAGIC_GROUP);
        assert_eq!(r.u32().unwrap(), 2);
        let _l0_block = r.block().unwrap();
        let l1_block = r.block().unwrap();
        assert_eq!(l1_block, solo_blocks.as_slice());
    }

    #[test]
    fn truncation_detected_at_every_prefix() {
        let data = gradient_like(1200, 13);
        let c = PowerSgd::rank(2);
        let mut rng = Rng::new(14);
        let bytes = c.compress(&data, &mut rng);
        for cut in [
            0usize,
            1,
            2,
            9,
            10,
            14,
            18,
            bytes.len() / 2,
            bytes.len() - 1,
        ] {
            assert!(c.decompress(&bytes[..cut]).is_err(), "cut={cut}");
        }
        // Trailing garbage is rejected too.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(c.decompress(&padded).is_err());
    }

    #[test]
    fn header_mutations_rejected() {
        let data = gradient_like(1200, 15);
        let c = PowerSgd::rank(2);
        let mut rng = Rng::new(16);
        let bytes = c.compress(&data, &mut rng);
        assert_eq!(bytes[1], 1);
        // Wrong magic.
        let mut b = bytes.clone();
        b[0] = 0x00;
        assert!(c.decompress(&b).is_err());
        // Unknown mode.
        let mut b = bytes.clone();
        b[1] = 2;
        assert!(c.decompress(&b).is_err());
        // Inflated n no longer matches the canonical shape.
        let mut b = bytes.clone();
        b[5] = 0xFF;
        assert!(c.decompress(&b).is_err());
        // Zero / oversized rank.
        let rank_off = 1 + 1 + 8 + 4 + 4;
        let mut b = bytes.clone();
        b[rank_off] = 0;
        assert!(c.decompress(&b).is_err());
        let mut b = bytes.clone();
        b[rank_off] = 200;
        assert!(c.decompress(&b).is_err());
    }

    #[test]
    fn group_api_roundtrips_via_default_framing() {
        let layers: Vec<Vec<f32>> = vec![
            gradient_like(2304, 17),
            vec![],
            gradient_like(96, 18),
            vec![0.0f32; 400],
        ];
        let refs: Vec<&[f32]> = layers.iter().map(|l| l.as_slice()).collect();
        let c = PowerSgd::rank(4);
        let rec = Recorder::disabled();
        let mut rng = Rng::new(19);
        let bytes = c.compress_group(&refs, None, &mut rng, &rec);
        assert_eq!(bytes[0], MAGIC_GROUP);
        let back = c.decompress_group(&bytes, &rec).unwrap();
        assert_eq!(back.len(), layers.len());
        for (orig, got) in layers.iter().zip(&back) {
            assert_eq!(orig.len(), got.len());
        }
        assert_eq!(back[1], layers[1]);
        assert_eq!(back[3], layers[3], "all-zero layer reconstructs exactly");
    }

    proptest! {
        #[test]
        fn prop_roundtrip_returns_declared_length(
            data in proptest::collection::vec(-3.0f32..3.0, 0..600),
        ) {
            let c = PowerSgd::rank(3);
            let mut rng = Rng::new(1);
            let back = c.decompress(&c.compress(&data, &mut rng)).unwrap();
            prop_assert_eq!(back.len(), data.len());
        }

        #[test]
        fn prop_error_feedback_mean_preserving(
            seed in any::<u64>(),
        ) {
            // Over repeated steps on a fixed input, EF keeps the decoded
            // average close to the truth even at crushing rank.
            let data = gradient_like(400, seed);
            let c = PowerSgd::rank(1);
            let rec = Recorder::disabled();
            let mut rng = Rng::new(2);
            // Telescoping: Σ decoded_t = steps·input − residual_last, so
            // the time-averaged error decays like ‖residual‖/steps.
            let mut acc = vec![0.0f64; data.len()];
            let steps = 24;
            for _ in 0..steps {
                let layers = [(0u64, data.as_slice())];
                let bytes = c.compress_group_keyed(&layers, None, &mut rng, &rec);
                let back = c.decompress_group(&bytes, &rec).unwrap();
                for (a, &v) in acc.iter_mut().zip(&back[0]) {
                    *a += v as f64;
                }
            }
            let scale = data.iter().fold(0.0f32, |m, v| m.max(v.abs())) as f64;
            let mut worst = 0.0f64;
            for (a, &x) in acc.iter().zip(&data) {
                worst = worst.max((a / steps as f64 - x as f64).abs());
            }
            prop_assert!(worst <= scale * 0.75 + 1e-6, "worst {worst} scale {scale}");
        }
    }
}
