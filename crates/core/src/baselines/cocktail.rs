//! CocktailSGD: random-sampled top-k sparsification + quantization.
//!
//! §2.4/§5: "Sparsification of CocktailSGD ... selects the most frequent
//! values and represents the SGD gradient in a sparse format", evaluated
//! at "20% sparsity + 8-bit quant". The top-k threshold is estimated from
//! a random sample (the paper's "Top-k with random sampling", which is
//! also why its GPU cost is high, §5.3); surviving values are 8-bit
//! round-to-nearest quantized; positions travel in a Huffman-coded
//! bitmap. The density is *fixed* regardless of the gradient
//! distribution — the contrast §5.2 draws with COMPSO's value-adaptive
//! filter.

use crate::bitmap::Bitmap;
use crate::encoders::huffman;
use crate::traits::{CompressError, Compressor};
use crate::wire::{Reader, WireError, Writer};
use compso_tensor::rng::Rng;

/// Sample size used for threshold estimation.
const SAMPLE: usize = 2048;

/// The CocktailSGD compressor.
#[derive(Clone, Copy, Debug)]
pub struct CocktailSgd {
    /// Fraction of elements kept (0.2 in all paper experiments).
    pub density: f32,
    /// Quantization bits for kept values (8 in all paper experiments).
    pub bits: u32,
}

impl CocktailSgd {
    /// The paper's configuration: 20% density, 8-bit quantization.
    pub fn standard() -> Self {
        CocktailSgd {
            density: 0.2,
            bits: 8,
        }
    }

    /// Estimates the |v| threshold whose exceedance fraction is `density`,
    /// from a random sample — O(sample log sample) instead of a full sort.
    fn threshold(&self, data: &[f32], rng: &mut Rng) -> f32 {
        if data.is_empty() {
            return 0.0;
        }
        let mut mags: Vec<f32> = if data.len() <= SAMPLE {
            data.iter().map(|v| v.abs()).collect()
        } else {
            (0..SAMPLE)
                .map(|_| data[rng.below(data.len() as u64) as usize].abs())
                .collect()
        };
        mags.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let k = ((mags.len() as f32 * self.density).ceil() as usize).clamp(1, mags.len());
        mags[k - 1]
    }
}

impl Compressor for CocktailSgd {
    fn name(&self) -> &'static str {
        "CocktailSGD"
    }

    fn compress(&self, data: &[f32], rng: &mut Rng) -> Vec<u8> {
        let thr = self.threshold(data, rng);
        let mut kept: Vec<f32> = Vec::new();
        let bitmap = Bitmap::from_fn(data.len(), |i| {
            let keep = data[i].abs() >= thr && thr > 0.0;
            if keep {
                kept.push(data[i]);
            }
            !keep
        });

        // 8-bit RN quantization of the kept values (symmetric levels).
        let levels = (1u32 << (self.bits - 1)) - 1;
        let scale = compso_tensor::reduce::absmax_flat(&kept);
        let codes: Vec<u8> = if scale > 0.0 {
            let sf = levels as f64 / scale as f64;
            kept.iter()
                .map(|&v| {
                    let q = ((v.abs() as f64) * sf).round() as i64;
                    let q = q.clamp(0, levels as i64) as u8;
                    // Sign in the top bit.
                    if v < 0.0 {
                        q | 0x80
                    } else {
                        q
                    }
                })
                .collect()
        } else {
            vec![0; kept.len()]
        };

        let enc_bitmap = huffman::encode(&bitmap.to_bytes());
        let mut w = Writer::with_capacity(codes.len() + enc_bitmap.len() + 32);
        w.u64(data.len() as u64);
        w.f32(scale);
        w.u8(self.bits as u8);
        w.block(&enc_bitmap);
        w.block(&codes);
        w.into_bytes()
    }

    fn decompress(&self, bytes: &[u8]) -> Result<Vec<f32>, CompressError> {
        let mut r = Reader::new(bytes);
        let n = crate::wire::checked_count(r.u64()?)?;
        let scale = r.f32()?;
        if !scale.is_finite() || scale < 0.0 {
            return Err(WireError::Invalid("cocktail scale").into());
        }
        let bits = r.u8()? as u32;
        if !(2..=8).contains(&bits) {
            return Err(WireError::Invalid("cocktail bits").into());
        }
        let levels = (1u32 << (bits - 1)) - 1;
        let bitmap_bytes = huffman::decode(r.block()?)?;
        let bitmap = Bitmap::from_bytes(n, &bitmap_bytes)?;
        let codes = r.block()?;
        if codes.len() != bitmap.count_zeros() {
            return Err(CompressError::Corrupt("cocktail code count"));
        }
        let inv = scale as f64 / levels as f64;
        let mut out = vec![0.0f32; n];
        let mut next = 0usize;
        for (i, slot) in out.iter_mut().enumerate() {
            if !bitmap.get(i) {
                let c = codes[next];
                next += 1;
                let mag = (c & 0x7f) as f64;
                if mag > levels as f64 {
                    return Err(CompressError::Corrupt("cocktail level"));
                }
                let sign = if c & 0x80 != 0 { -1.0 } else { 1.0 };
                *slot = (sign * mag * inv) as f32;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    // Explicit import: proptest's prelude also globs a `Rng` trait.
    use compso_tensor::rng::Rng;

    fn gradient_like(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = Rng::new(seed);
        (0..n).map(|_| rng.laplace(0.01)).collect()
    }

    #[test]
    fn density_close_to_target() {
        let data = gradient_like(100_000, 1);
        let c = CocktailSgd::standard();
        let mut rng = Rng::new(2);
        let bytes = c.compress(&data, &mut rng);
        let back = c.decompress(&bytes).unwrap();
        let nonzero = back.iter().filter(|&&v| v != 0.0).count();
        let density = nonzero as f64 / data.len() as f64;
        assert!((density - 0.2).abs() < 0.05, "density {density}");
    }

    #[test]
    fn large_values_survive_small_values_zeroed() {
        let data = gradient_like(50_000, 3);
        let c = CocktailSgd::standard();
        let mut rng = Rng::new(4);
        let back = c.decompress(&c.compress(&data, &mut rng)).unwrap();
        // The largest-magnitude element must survive and be close.
        let (imax, &vmax) = data
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .unwrap();
        assert!(back[imax] != 0.0);
        assert!((back[imax] - vmax).abs() < vmax.abs() * 0.02);
    }

    #[test]
    fn ratio_in_expected_band() {
        // Nominal 20x less index overhead: expect low-to-mid teens.
        let data = gradient_like(200_000, 5);
        let c = CocktailSgd::standard();
        let mut rng = Rng::new(6);
        let ratio = c.ratio(&data, &mut rng);
        assert!(ratio > 8.0 && ratio < 25.0, "ratio {ratio}");
    }

    #[test]
    fn kept_values_bounded_error() {
        let data = gradient_like(20_000, 7);
        let c = CocktailSgd::standard();
        let mut rng = Rng::new(8);
        let back = c.decompress(&c.compress(&data, &mut rng)).unwrap();
        let kept: Vec<(f32, f32)> = data
            .iter()
            .zip(&back)
            .filter(|(_, &y)| y != 0.0)
            .map(|(&x, &y)| (x, y))
            .collect();
        assert!(!kept.is_empty());
        let scale = kept.iter().map(|&(x, _)| x.abs()).fold(0.0f32, f32::max);
        let step = scale / 127.0;
        for &(x, y) in &kept {
            assert!((x - y).abs() <= step * 0.51 + 1e-6, "{x} vs {y}");
        }
    }

    #[test]
    fn empty_and_zero_inputs() {
        let c = CocktailSgd::standard();
        let mut rng = Rng::new(9);
        for data in [vec![], vec![0.0f32; 100]] {
            let back = c.decompress(&c.compress(&data, &mut rng)).unwrap();
            assert_eq!(back, data);
        }
    }

    #[test]
    fn small_inputs_use_exact_topk() {
        let data = vec![1.0f32, -3.0, 0.1, 0.2, 2.0];
        let c = CocktailSgd {
            density: 0.4,
            bits: 8,
        };
        let mut rng = Rng::new(10);
        let back = c.decompress(&c.compress(&data, &mut rng)).unwrap();
        // Top-40% of 5 = 2 elements: -3.0 and 2.0 survive.
        assert!(back[1] != 0.0 && back[4] != 0.0);
        assert_eq!(back[2], 0.0);
    }

    #[test]
    fn truncation_detected() {
        let data = gradient_like(5000, 11);
        let c = CocktailSgd::standard();
        let mut rng = Rng::new(12);
        let bytes = c.compress(&data, &mut rng);
        for cut in [0usize, 6, 14, bytes.len() / 2] {
            assert!(c.decompress(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_roundtrip_structure(
            data in proptest::collection::vec(-1.0f32..1.0, 0..600),
            seed in any::<u64>(),
        ) {
            let c = CocktailSgd::standard();
            let mut rng = Rng::new(seed);
            let back = c.decompress(&c.compress(&data, &mut rng)).unwrap();
            prop_assert_eq!(back.len(), data.len());
            // Every reconstructed value is either 0 or within the 8-bit
            // quantization step of its original.
            let scale = compso_tensor::reduce::absmax_flat(&data);
            for (&x, &y) in data.iter().zip(&back) {
                if y != 0.0 {
                    prop_assert!((x - y).abs() <= scale / 127.0 + scale * 1e-4 + 1e-6);
                }
            }
        }
    }
}
