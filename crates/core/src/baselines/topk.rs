//! Exact Top-k sparsification (the Ok-topk-style comparator of §4.3).
//!
//! "Our design differs from previous sparsification approaches, such as
//! Ok-topk, which maintains a fixed error bound across all iterations;
//! we adaptively vary the error bound based on the learning rate." This
//! baseline keeps exactly the `k` largest-magnitude values (a fixed
//! *density*, the other rigidity §5.2 contrasts with COMPSO's
//! value-adaptive filter), stores them at full f32 precision with a
//! Huffman-coded position bitmap.

use crate::bitmap::Bitmap;
use crate::encoders::huffman;
use crate::traits::{CompressError, Compressor};
use crate::wire::{Reader, WireError, Writer};
use compso_tensor::rng::Rng;

/// Exact Top-k sparsification at a fixed density.
#[derive(Clone, Copy, Debug)]
pub struct TopK {
    /// Fraction of elements kept.
    pub density: f32,
}

impl TopK {
    /// A Top-k compressor keeping `density` of the elements.
    pub fn new(density: f32) -> Self {
        assert!(
            density > 0.0 && density <= 1.0,
            "density {density} out of (0,1]"
        );
        TopK { density }
    }

    fn k_for(&self, n: usize) -> usize {
        // The 1e-6 relative shave absorbs f32→f64 widening artifacts
        // (0.1f32 widens to 0.10000000149, which would ceil one element
        // too many at large n).
        let exact = n as f64 * self.density as f64 * (1.0 - 1e-6);
        (exact.ceil() as usize).clamp(usize::from(n > 0), n.max(1))
    }
}

impl Compressor for TopK {
    fn name(&self) -> &'static str {
        "TopK"
    }

    fn compress(&self, data: &[f32], _rng: &mut Rng) -> Vec<u8> {
        let n = data.len();
        let k = if n == 0 { 0 } else { self.k_for(n) };
        // Exact selection: nth_element by |v| (O(n) average).
        let mut idx: Vec<usize> = (0..n).collect();
        if k < n {
            idx.select_nth_unstable_by(k.saturating_sub(1), |&a, &b| {
                data[b]
                    .abs()
                    .partial_cmp(&data[a].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
        }
        let mut keep = vec![false; n];
        for &i in idx.iter().take(k) {
            keep[i] = true;
        }
        let mut kept = Vec::with_capacity(k);
        let bitmap = Bitmap::from_fn(n, |i| {
            if keep[i] {
                kept.push(data[i]);
            }
            !keep[i]
        });

        let enc_bitmap = huffman::encode(&bitmap.to_bytes());
        let mut w = Writer::with_capacity(kept.len() * 4 + enc_bitmap.len() + 24);
        w.u64(n as u64);
        w.block(&enc_bitmap);
        for &v in &kept {
            w.f32(v);
        }
        w.into_bytes()
    }

    fn decompress(&self, bytes: &[u8]) -> Result<Vec<f32>, CompressError> {
        let mut r = Reader::new(bytes);
        let n = crate::wire::checked_count(r.u64()?)?;
        let bitmap_bytes = huffman::decode(r.block()?)?;
        let bitmap = Bitmap::from_bytes(n, &bitmap_bytes)?;
        let kept = bitmap.count_zeros();
        if r.remaining() != kept * 4 {
            return Err(WireError::Invalid("topk value stream length").into());
        }
        let mut out = vec![0.0f32; n];
        for (i, slot) in out.iter_mut().enumerate() {
            if !bitmap.get(i) {
                *slot = r.f32()?;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate, GradientProfile};
    use proptest::prelude::*;
    // Explicit import: proptest's prelude also globs a `Rng` trait.
    use compso_tensor::rng::Rng;

    #[test]
    fn keeps_exactly_the_largest() {
        let data = vec![0.1f32, -5.0, 0.3, 2.0, -0.2, 0.05];
        let t = TopK::new(0.34); // k = ceil(6*0.34) = 3
        let mut rng = Rng::new(1);
        let back = t.decompress(&t.compress(&data, &mut rng)).unwrap();
        assert_eq!(back, vec![0.0, -5.0, 0.3, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn kept_values_are_bit_exact() {
        let data = generate(50_000, 2, GradientProfile::kfac());
        let t = TopK::new(0.1);
        let mut rng = Rng::new(3);
        let back = t.decompress(&t.compress(&data, &mut rng)).unwrap();
        let mut kept = 0usize;
        for (&x, &y) in data.iter().zip(&back) {
            if y != 0.0 {
                assert_eq!(x.to_bits(), y.to_bits());
                kept += 1;
            }
        }
        let expected = (data.len() as f64 * 0.1).ceil() as usize;
        assert_eq!(kept, expected);
    }

    #[test]
    fn zeroed_values_are_smaller_than_kept_ones() {
        let data = generate(20_000, 4, GradientProfile::kfac());
        let t = TopK::new(0.2);
        let mut rng = Rng::new(5);
        let back = t.decompress(&t.compress(&data, &mut rng)).unwrap();
        let min_kept = data
            .iter()
            .zip(&back)
            .filter(|(_, &y)| y != 0.0)
            .map(|(&x, _)| x.abs())
            .fold(f32::INFINITY, f32::min);
        let max_dropped = data
            .iter()
            .zip(&back)
            .filter(|(_, &y)| y == 0.0)
            .map(|(&x, _)| x.abs())
            .fold(0.0f32, f32::max);
        assert!(max_dropped <= min_kept, "{max_dropped} > {min_kept}");
    }

    #[test]
    fn ratio_is_density_plus_bitmap() {
        // 10% density: 0.1*32 bits + ~H(0.1)≈0.47 bits -> ~3.7 bits/val
        // -> CR around 8-9x.
        let data = generate(200_000, 6, GradientProfile::kfac());
        let t = TopK::new(0.1);
        let mut rng = Rng::new(7);
        let ratio = t.ratio(&data, &mut rng);
        assert!((5.0..11.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn empty_and_degenerate() {
        let t = TopK::new(0.5);
        let mut rng = Rng::new(8);
        for data in [vec![], vec![1.0f32], vec![0.0f32; 10]] {
            let back = t.decompress(&t.compress(&data, &mut rng)).unwrap();
            assert_eq!(back.len(), data.len());
        }
    }

    #[test]
    fn truncation_detected() {
        let data = generate(1000, 9, GradientProfile::kfac());
        let t = TopK::new(0.2);
        let mut rng = Rng::new(10);
        let bytes = t.compress(&data, &mut rng);
        for cut in [0usize, 5, bytes.len() / 2, bytes.len() - 1] {
            assert!(t.decompress(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    proptest! {
        #[test]
        fn prop_roundtrip(
            data in proptest::collection::vec(-10.0f32..10.0, 0..500),
            density in 0.01f32..1.0,
        ) {
            let t = TopK::new(density);
            let mut rng = Rng::new(11);
            let back = t.decompress(&t.compress(&data, &mut rng)).unwrap();
            prop_assert_eq!(back.len(), data.len());
            // Non-zero outputs are exact copies.
            for (&x, &y) in data.iter().zip(&back) {
                if y != 0.0 {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }
}
