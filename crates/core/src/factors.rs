//! Compressing the Kronecker factor matrices `A` and `G` (the paper's
//! future-work item §7-2: "exploring compression techniques for
//! intermediate data in KFAC, specifically the factor matrices A and G").
//!
//! Covariance factors are symmetric, so only the upper triangle travels;
//! the triangle is compressed with any [`Compressor`] and the
//! reconstruction mirrors it back — symmetry is exact by construction,
//! which matters because the eigensolver downstream assumes it.

use crate::traits::{CompressError, Compressor};
use crate::wire::{Reader, Writer};
use compso_tensor::{Matrix, Rng};

/// Compresses a symmetric matrix: header + compressed upper triangle
/// (row-major, diagonal included).
///
/// # Panics
/// If the matrix is not square.
pub fn compress_symmetric(m: &Matrix, compressor: &dyn Compressor, rng: &mut Rng) -> Vec<u8> {
    assert_eq!(m.rows(), m.cols(), "factor matrices are square");
    let n = m.rows();
    let mut triangle = Vec::with_capacity(n * (n + 1) / 2);
    for i in 0..n {
        for j in i..n {
            triangle.push(m.get(i, j));
        }
    }
    let compressed = compressor.compress(&triangle, rng);
    let mut w = Writer::with_capacity(compressed.len() + 16);
    w.u64(n as u64);
    w.block(&compressed);
    w.into_bytes()
}

/// Inverse of [`compress_symmetric`].
pub fn decompress_symmetric(
    bytes: &[u8],
    compressor: &dyn Compressor,
) -> Result<Matrix, CompressError> {
    let mut r = Reader::new(bytes);
    let n = crate::wire::checked_count(r.u64()?)?;
    let triangle = compressor.decompress(r.block()?)?;
    if triangle.len() != n * (n + 1) / 2 {
        return Err(CompressError::Corrupt("triangle length"));
    }
    let mut m = Matrix::zeros(n, n);
    let mut k = 0usize;
    for i in 0..n {
        for j in i..n {
            m.set(i, j, triangle[k]);
            m.set(j, i, triangle[k]);
            k += 1;
        }
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Compso, CompsoConfig};
    use crate::traits::NoCompression;

    fn random_factor(n: usize, seed: u64) -> Matrix {
        let mut rng = Rng::new(seed);
        let s = Matrix::random_normal(4 * n, n, &mut rng);
        let mut c = s.t_matmul(&s);
        c.scale(1.0 / (4 * n) as f32);
        c.symmetrize();
        c
    }

    #[test]
    fn lossless_roundtrip_is_exact() {
        let f = random_factor(37, 1);
        let mut rng = Rng::new(2);
        let bytes = compress_symmetric(&f, &NoCompression, &mut rng);
        let back = decompress_symmetric(&bytes, &NoCompression).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn triangle_alone_halves_the_size() {
        let f = random_factor(64, 3);
        let mut rng = Rng::new(4);
        let bytes = compress_symmetric(&f, &NoCompression, &mut rng);
        // n(n+1)/2 * 4 + headers vs n² * 4.
        assert!(bytes.len() < f.len() * 4 * 55 / 100);
    }

    #[test]
    fn lossy_roundtrip_preserves_symmetry_and_bound() {
        let f = random_factor(48, 5);
        let compso = Compso::new(CompsoConfig::conservative(1e-3));
        let mut rng = Rng::new(6);
        let bytes = compress_symmetric(&f, &compso, &mut rng);
        let back = decompress_symmetric(&bytes, &compso).unwrap();
        assert_eq!(back.asymmetry(), 0.0, "symmetry must be exact");
        let range = {
            let mut lo = f32::INFINITY;
            let mut hi = f32::NEG_INFINITY;
            for i in 0..48 {
                for j in i..48 {
                    lo = lo.min(f.get(i, j));
                    hi = hi.max(f.get(i, j));
                }
            }
            hi - lo
        };
        assert!(back.max_diff(&f) <= 1e-3 * range * 1.01 + 1e-7);
    }

    #[test]
    fn eigendecomposition_survives_compression() {
        // The downstream use: damped inversion of the decompressed factor
        // must stay close to the original's.
        let f = random_factor(24, 7);
        let compso = Compso::new(CompsoConfig::conservative(1e-4));
        let mut rng = Rng::new(8);
        let back =
            decompress_symmetric(&compress_symmetric(&f, &compso, &mut rng), &compso).unwrap();
        let e1 = compso_tensor::sym_eig(&f);
        let e2 = compso_tensor::sym_eig(&back);
        for (a, b) in e1.values.iter().zip(&e2.values) {
            assert!((a - b).abs() < 1e-2 * a.abs().max(0.1), "{a} vs {b}");
        }
    }

    #[test]
    fn corrupt_stream_rejected() {
        let f = random_factor(16, 9);
        let mut rng = Rng::new(10);
        let bytes = compress_symmetric(&f, &NoCompression, &mut rng);
        assert!(decompress_symmetric(&bytes[..8], &NoCompression).is_err());
        // Wrong n in header.
        let mut broken = bytes.clone();
        broken[0] = broken[0].wrapping_add(1);
        assert!(decompress_symmetric(&broken, &NoCompression).is_err());
    }
}
