//! Parallel compression kernels — the CPU analogue of §4.5's GPU work.
//!
//! The paper's GPU optimizations and their counterparts here:
//!
//! | paper (CUDA)                               | this module (rayon)       |
//! |--------------------------------------------|---------------------------|
//! | fuse filter/quantize/pack into one kernel  | [`KernelConfig::fused`]: one data sweep per chunk vs. staged passes with materialized intermediates |
//! | block reduction + warp shuffle for extrema | [`KernelConfig::hierarchical_extrema`]: chunk-local scans merged in a reduction tree vs. a flat serial scan |
//! | padded shared-memory buffers per layer     | chunks never span layers; each chunk's bitmap is padded to a byte boundary |
//! | pre-built layer→block hashmap              | [`LayerSchedule`] built once at optimizer init, reused every iteration |
//!
//! Compression is memory-bound with O(1) arithmetic intensity (§4.5), so
//! pass-count is the first-order cost and the fused/staged ablation is
//! directly measurable (the `kernels` criterion bench).

use crate::pipeline::CompsoConfig;
use crate::quantize::{Quantized, Quantizer};
use crate::traits::CompressError;
use crate::wire::{Reader, WireError, Writer};
use compso_tensor::reduce::{minmax_flat, minmax_hierarchical, MinMax};
use compso_tensor::rng::Rng;
use rayon::prelude::*;

/// Magic byte of the chunked-parallel wire format (distinct from the
/// serial pipeline's 0xC5).
pub const MAGIC_CHUNKED: u8 = 0xC6;

/// Byte-block granularity of the parallel entropy-coding stage.
pub const CODEC_BLOCK: usize = 256 * 1024;

/// Kernel structure knobs (the §4.5 ablation axes).
#[derive(Clone, Copy, Debug)]
pub struct KernelConfig {
    /// Elements per chunk (the "thread block" tile).
    pub chunk_elems: usize,
    /// One fused sweep per chunk (true) vs. staged passes with
    /// materialized intermediates (false).
    pub fused: bool,
    /// Tree-reduction extrema (true) vs. flat serial scan (false).
    pub hierarchical_extrema: bool,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            chunk_elems: 16 * 1024,
            fused: true,
            hierarchical_extrema: true,
        }
    }
}

/// One chunk of the precomputed layer→block schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkDesc {
    /// Layer index the chunk belongs to.
    pub layer: usize,
    /// Element offset within the layer.
    pub offset: usize,
    /// Elements in this chunk.
    pub len: usize,
}

/// The reusable layer→chunk assignment (§4.5's "pre-determined
/// layer-block hashmap ... built during the initialization of the KFAC
/// optimizer and reused for the rest of the iterations").
#[derive(Clone, Debug)]
pub struct LayerSchedule {
    layer_sizes: Vec<usize>,
    chunk_elems: usize,
    chunks: Vec<ChunkDesc>,
}

impl LayerSchedule {
    /// Builds the schedule: each layer is tiled independently, so no chunk
    /// ever mixes two layers' normalization ranges.
    pub fn build(layer_sizes: &[usize], chunk_elems: usize) -> Self {
        assert!(chunk_elems > 0, "chunk size must be positive");
        let mut chunks = Vec::new();
        for (layer, &n) in layer_sizes.iter().enumerate() {
            let mut offset = 0;
            while offset < n {
                let len = (n - offset).min(chunk_elems);
                chunks.push(ChunkDesc { layer, offset, len });
                offset += len;
            }
            if n == 0 {
                // Zero-size layers still need a (empty) slot so decompression
                // emits them in order.
                chunks.push(ChunkDesc {
                    layer,
                    offset: 0,
                    len: 0,
                });
            }
        }
        LayerSchedule {
            layer_sizes: layer_sizes.to_vec(),
            chunk_elems,
            chunks,
        }
    }

    /// The chunks, in layer-then-offset order.
    pub fn chunks(&self) -> &[ChunkDesc] {
        &self.chunks
    }

    /// Per-layer sizes the schedule was built for.
    pub fn layer_sizes(&self) -> &[usize] {
        &self.layer_sizes
    }
}

/// Per-chunk compression product.
struct ChunkOut {
    /// Padded bitmap bytes (empty when the filter is off).
    bitmap: Vec<u8>,
    /// Serialized chunk header + quantized codes.
    codes: Vec<u8>,
}

/// Compresses one chunk in a single sweep: filter decision, kept-value
/// collection, and quantization against the layer-global range.
fn compress_chunk_fused(
    data: &[f32],
    range: MinMax,
    cfg: &CompsoConfig,
    rng: &mut Rng,
) -> ChunkOut {
    let span = if data.is_empty() {
        0.0
    } else {
        range.max - range.min
    };
    let threshold = match cfg.eb_filter {
        Some(ebf) if span > 0.0 => ebf * span,
        _ => 0.0,
    };
    let use_filter = threshold > 0.0;

    let mut bitmap = if use_filter {
        vec![0u8; data.len().div_ceil(8)]
    } else {
        Vec::new()
    };
    let mut kept: Vec<f32> = Vec::with_capacity(data.len());
    if use_filter {
        for (i, &v) in data.iter().enumerate() {
            if v.abs() < threshold {
                bitmap[i / 8] |= 1 << (i % 8);
            } else {
                kept.push(v);
            }
        }
    } else {
        kept.extend_from_slice(data);
    }

    // Quantize against the LAYER range (not the chunk range): every chunk
    // of a layer shares one normalization, matching the GPU kernel.
    let quantizer = Quantizer {
        bound: crate::quantize::ErrorBound::Relative(cfg.eb_quant),
        mode: cfg.mode,
    };
    let (lo, hi) = if data.is_empty() {
        (0.0, 0.0)
    } else {
        (range.min, range.max)
    };
    let quant = quantizer.quantize_with_range(&kept, lo, hi, rng);

    let mut codes = Writer::new();
    codes.u64(data.len() as u64);
    codes.u8(u8::from(use_filter));
    quant.write(&mut codes);
    ChunkOut {
        bitmap,
        codes: codes.into_bytes(),
    }
}

/// Compresses multiple layers with the chunked-parallel kernels.
///
/// The output format is self-describing and distinct from
/// [`crate::pipeline::Compso`]'s serial format; decode with
/// [`decompress_chunked`]. The result is deterministic for a fixed `rng`
/// seed regardless of thread count: each chunk forks its own RNG stream
/// by chunk index.
pub fn compress_chunked(
    layers: &[&[f32]],
    cfg: &CompsoConfig,
    kc: &KernelConfig,
    schedule: &LayerSchedule,
    rng: &Rng,
) -> Vec<u8> {
    assert_eq!(
        schedule.layer_sizes,
        layers.iter().map(|l| l.len()).collect::<Vec<_>>(),
        "schedule does not match layer sizes"
    );

    // Pass 1: per-layer extrema.
    let ranges: Vec<MinMax> = layers
        .iter()
        .map(|l| {
            if kc.hierarchical_extrema {
                minmax_hierarchical(l)
            } else {
                minmax_flat(l)
            }
        })
        .collect();

    // Pass 2(+): the chunk sweep.
    let outs: Vec<ChunkOut> = if kc.fused {
        schedule
            .chunks
            .par_iter()
            .enumerate()
            .map(|(idx, c)| {
                let slice = &layers[c.layer][c.offset..c.offset + c.len];
                let mut chunk_rng = rng.fork(idx as u64);
                compress_chunk_fused(slice, ranges[c.layer], cfg, &mut chunk_rng)
            })
            .collect()
    } else {
        // Staged: materialize the filter products for every chunk first,
        // then quantize, then serialize — three full traversals, matching
        // an unfused multi-kernel GPU pipeline.
        struct Stage1 {
            bitmap: Vec<u8>,
            kept: Vec<f32>,
            n: usize,
            used_filter: bool,
        }
        let stage1: Vec<Stage1> = schedule
            .chunks
            .par_iter()
            .map(|c| {
                let slice = &layers[c.layer][c.offset..c.offset + c.len];
                let range = ranges[c.layer];
                let span = if slice.is_empty() {
                    0.0
                } else {
                    range.max - range.min
                };
                let threshold = match cfg.eb_filter {
                    Some(ebf) if span > 0.0 => ebf * span,
                    _ => 0.0,
                };
                let use_filter = threshold > 0.0;
                let mut bitmap = if use_filter {
                    vec![0u8; slice.len().div_ceil(8)]
                } else {
                    Vec::new()
                };
                let mut kept = Vec::with_capacity(slice.len());
                if use_filter {
                    for (i, &v) in slice.iter().enumerate() {
                        if v.abs() < threshold {
                            bitmap[i / 8] |= 1 << (i % 8);
                        } else {
                            kept.push(v);
                        }
                    }
                } else {
                    kept.extend_from_slice(slice);
                }
                Stage1 {
                    bitmap,
                    kept,
                    n: slice.len(),
                    used_filter: use_filter,
                }
            })
            .collect();
        let stage2: Vec<Quantized> = schedule
            .chunks
            .par_iter()
            .enumerate()
            .map(|(idx, c)| {
                let range = ranges[c.layer];
                let (lo, hi) = if stage1[idx].n == 0 {
                    (0.0, 0.0)
                } else {
                    (range.min, range.max)
                };
                let quantizer = Quantizer {
                    bound: crate::quantize::ErrorBound::Relative(cfg.eb_quant),
                    mode: cfg.mode,
                };
                let mut chunk_rng = rng.fork(idx as u64);
                quantizer.quantize_with_range(&stage1[idx].kept, lo, hi, &mut chunk_rng)
            })
            .collect();
        stage1
            .into_par_iter()
            .zip(stage2)
            .map(|(s1, quant)| {
                let mut codes = Writer::new();
                codes.u64(s1.n as u64);
                codes.u8(u8::from(s1.used_filter));
                quant.write(&mut codes);
                ChunkOut {
                    bitmap: s1.bitmap,
                    codes: codes.into_bytes(),
                }
            })
            .collect()
    };

    // Gather + encode.
    let mut bitmaps = Vec::new();
    let mut codes = Vec::new();
    for o in &outs {
        bitmaps.extend_from_slice(&o.bitmap);
        codes.extend_from_slice(&o.codes);
    }
    // nvCOMP-style block-parallel entropy coding (§5.2's "block
    // processing scheme") — the codec stage scales with cores like the
    // chunk sweep does.
    let enc_bitmaps = cfg.codec.encode_blocks(&bitmaps, CODEC_BLOCK);
    let enc_codes = cfg.codec.encode_blocks(&codes, CODEC_BLOCK);

    let mut w = Writer::with_capacity(enc_bitmaps.len() + enc_codes.len() + 64);
    w.u8(MAGIC_CHUNKED);
    w.u8(crate::pipeline::VERSION);
    w.u8(cfg.codec.tag());
    w.u8(0);
    w.u32(schedule.layer_sizes.len() as u32);
    for &n in &schedule.layer_sizes {
        w.u64(n as u64);
    }
    w.u64(schedule.chunk_elems as u64);
    w.block(&enc_bitmaps);
    w.block(&enc_codes);
    w.into_bytes()
}

/// Inverse of [`compress_chunked`].
pub fn decompress_chunked(bytes: &[u8]) -> Result<Vec<Vec<f32>>, CompressError> {
    let mut r = Reader::new(bytes);
    if r.u8()? != MAGIC_CHUNKED {
        return Err(WireError::Invalid("chunked magic").into());
    }
    if r.u8()? != crate::pipeline::VERSION {
        return Err(WireError::Invalid("version").into());
    }
    let codec = crate::encoders::Codec::from_tag(r.u8()?).ok_or(WireError::Invalid("codec tag"))?;
    let _ = codec; // per-frame codec tags live inside the block frames
    let _flags = r.u8()?;
    let n_layers = r.u32()? as usize;
    if n_layers > 1_000_000 {
        return Err(WireError::Invalid("layer count").into());
    }
    let mut layer_sizes = Vec::with_capacity(n_layers);
    for _ in 0..n_layers {
        layer_sizes.push(crate::wire::checked_count(r.u64()?)?);
    }
    let chunk_elems = crate::wire::checked_count(r.u64()?)?;
    if chunk_elems == 0 {
        return Err(WireError::Invalid("chunk size").into());
    }
    let bitmaps = crate::encoders::Codec::decode_blocks(r.block()?)?;
    let codes = crate::encoders::Codec::decode_blocks(r.block()?)?;

    let schedule = LayerSchedule::build(&layer_sizes, chunk_elems);
    let mut bitmaps_r = Reader::new(&bitmaps);
    let mut codes_r = Reader::new(&codes);
    let mut out: Vec<Vec<f32>> = layer_sizes.iter().map(|&n| Vec::with_capacity(n)).collect();
    for c in schedule.chunks() {
        let n = usize::try_from(codes_r.u64()?).map_err(|_| WireError::Invalid("chunk len"))?;
        if n != c.len {
            return Err(CompressError::Corrupt("chunk length mismatch"));
        }
        let used_filter = match codes_r.u8()? {
            0 => false,
            1 => true,
            _ => return Err(WireError::Invalid("filter flag").into()),
        };
        let quant = Quantized::read(&mut codes_r)?;
        let kept = quant.dequantize();
        if used_filter {
            let bm = bitmaps_r.bytes(n.div_ceil(8))?;
            let mut next = 0usize;
            for i in 0..n {
                let dropped = (bm[i / 8] >> (i % 8)) & 1 == 1;
                if dropped {
                    out[c.layer].push(0.0);
                } else {
                    let v = *kept
                        .get(next)
                        .ok_or(CompressError::Corrupt("kept underrun"))?;
                    next += 1;
                    out[c.layer].push(v);
                }
            }
            if next != kept.len() {
                return Err(CompressError::Corrupt("kept overrun"));
            }
        } else {
            if kept.len() != n {
                return Err(CompressError::Corrupt("unfiltered chunk size"));
            }
            out[c.layer].extend_from_slice(&kept);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate_layers, GradientProfile};

    fn layers_fixture(seed: u64) -> Vec<Vec<f32>> {
        generate_layers(&[50_000, 1234, 0, 70_001, 8], seed, GradientProfile::kfac())
    }

    #[test]
    fn schedule_covers_layers_exactly() {
        let s = LayerSchedule::build(&[100, 0, 250], 64);
        let mut per_layer = vec![0usize; 3];
        for c in s.chunks() {
            per_layer[c.layer] += c.len;
            assert!(c.len <= 64);
        }
        assert_eq!(per_layer, vec![100, 0, 250]);
        // Chunks are contiguous per layer.
        let mut expected_offset = [0usize; 3];
        for c in s.chunks() {
            assert_eq!(c.offset, expected_offset[c.layer]);
            expected_offset[c.layer] += c.len;
        }
    }

    #[test]
    fn fused_roundtrip_matches_layers() {
        let layers = layers_fixture(1);
        let refs: Vec<&[f32]> = layers.iter().map(|l| l.as_slice()).collect();
        let cfg = CompsoConfig::aggressive(4e-3);
        let kc = KernelConfig::default();
        let schedule = LayerSchedule::build(
            &layers.iter().map(|l| l.len()).collect::<Vec<_>>(),
            kc.chunk_elems,
        );
        let rng = Rng::new(2);
        let bytes = compress_chunked(&refs, &cfg, &kc, &schedule, &rng);
        let back = decompress_chunked(&bytes).unwrap();
        assert_eq!(back.len(), layers.len());
        for (orig, dec) in layers.iter().zip(&back) {
            assert_eq!(orig.len(), dec.len());
            let mm = minmax_flat(orig);
            let range = if orig.is_empty() {
                0.0
            } else {
                mm.max - mm.min
            };
            for (&x, &y) in orig.iter().zip(dec) {
                if y == 0.0 {
                    assert!(x.abs() <= 4e-3 * range * 1.001 + 1e-7);
                } else {
                    assert!((x - y).abs() <= 4e-3 * range * 1.01 + 1e-7, "{x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn fused_and_staged_produce_identical_bytes() {
        // Same RNG forking discipline -> bit-identical outputs, so the
        // ablation is purely about kernel structure.
        let layers = layers_fixture(3);
        let refs: Vec<&[f32]> = layers.iter().map(|l| l.as_slice()).collect();
        let cfg = CompsoConfig::aggressive(4e-3);
        let sizes: Vec<usize> = layers.iter().map(|l| l.len()).collect();
        let schedule = LayerSchedule::build(&sizes, 16 * 1024);
        let rng = Rng::new(4);
        let fused = compress_chunked(
            &refs,
            &cfg,
            &KernelConfig {
                fused: true,
                ..KernelConfig::default()
            },
            &schedule,
            &rng,
        );
        let staged = compress_chunked(
            &refs,
            &cfg,
            &KernelConfig {
                fused: false,
                ..KernelConfig::default()
            },
            &schedule,
            &rng,
        );
        assert_eq!(fused, staged);
    }

    #[test]
    fn deterministic_across_calls() {
        let layers = layers_fixture(5);
        let refs: Vec<&[f32]> = layers.iter().map(|l| l.as_slice()).collect();
        let cfg = CompsoConfig::aggressive(4e-3);
        let sizes: Vec<usize> = layers.iter().map(|l| l.len()).collect();
        let schedule = LayerSchedule::build(&sizes, 8192);
        let rng = Rng::new(6);
        let a = compress_chunked(&refs, &cfg, &KernelConfig::default(), &schedule, &rng);
        let b = compress_chunked(&refs, &cfg, &KernelConfig::default(), &schedule, &rng);
        assert_eq!(a, b);
    }

    #[test]
    fn flat_and_hierarchical_extrema_agree() {
        let layers = layers_fixture(7);
        let refs: Vec<&[f32]> = layers.iter().map(|l| l.as_slice()).collect();
        let cfg = CompsoConfig::conservative(4e-3);
        let sizes: Vec<usize> = layers.iter().map(|l| l.len()).collect();
        let schedule = LayerSchedule::build(&sizes, 8192);
        let rng = Rng::new(8);
        let h = compress_chunked(
            &refs,
            &cfg,
            &KernelConfig {
                hierarchical_extrema: true,
                ..KernelConfig::default()
            },
            &schedule,
            &rng,
        );
        let f = compress_chunked(
            &refs,
            &cfg,
            &KernelConfig {
                hierarchical_extrema: false,
                ..KernelConfig::default()
            },
            &schedule,
            &rng,
        );
        assert_eq!(h, f);
    }

    #[test]
    fn conservative_mode_roundtrip() {
        let layers = layers_fixture(9);
        let refs: Vec<&[f32]> = layers.iter().map(|l| l.as_slice()).collect();
        let cfg = CompsoConfig::conservative(2e-3);
        let sizes: Vec<usize> = layers.iter().map(|l| l.len()).collect();
        let schedule = LayerSchedule::build(&sizes, 4096);
        let rng = Rng::new(10);
        let bytes = compress_chunked(&refs, &cfg, &KernelConfig::default(), &schedule, &rng);
        let back = decompress_chunked(&bytes).unwrap();
        for (orig, dec) in layers.iter().zip(&back) {
            let mm = minmax_flat(orig);
            let range = if orig.is_empty() {
                0.0
            } else {
                mm.max - mm.min
            };
            for (&x, &y) in orig.iter().zip(dec) {
                assert!((x - y).abs() <= 2e-3 * range * 1.01 + 1e-7);
            }
        }
    }

    #[test]
    fn truncation_rejected() {
        let layers = layers_fixture(11);
        let refs: Vec<&[f32]> = layers.iter().map(|l| l.as_slice()).collect();
        let cfg = CompsoConfig::aggressive(4e-3);
        let sizes: Vec<usize> = layers.iter().map(|l| l.len()).collect();
        let schedule = LayerSchedule::build(&sizes, 8192);
        let rng = Rng::new(12);
        let bytes = compress_chunked(&refs, &cfg, &KernelConfig::default(), &schedule, &rng);
        for cut in [0usize, 2, 10, 40, bytes.len() / 2, bytes.len() - 1] {
            assert!(decompress_chunked(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]
        /// Arbitrary layer configurations, chunk sizes, and seeds: the
        /// chunked pipeline must roundtrip lengths exactly and respect the
        /// error contract on every element.
        #[test]
        fn prop_chunked_roundtrip(
            sizes in proptest::collection::vec(0usize..3000, 1..5),
            chunk in 1usize..5000,
            seed in proptest::prelude::any::<u64>(),
            conservative in proptest::prelude::any::<bool>(),
        ) {
            let layers = generate_layers(&sizes, seed, GradientProfile::kfac());
            let refs: Vec<&[f32]> = layers.iter().map(|l| l.as_slice()).collect();
            let cfg = if conservative {
                CompsoConfig::conservative(4e-3)
            } else {
                CompsoConfig::aggressive(4e-3)
            };
            let schedule = LayerSchedule::build(&sizes, chunk);
            let rng = Rng::new(seed ^ 0xABCD);
            let bytes = compress_chunked(&refs, &cfg, &KernelConfig::default(), &schedule, &rng);
            let back = decompress_chunked(&bytes).unwrap();
            proptest::prop_assert_eq!(back.len(), layers.len());
            for (orig, dec) in layers.iter().zip(&back) {
                proptest::prop_assert_eq!(orig.len(), dec.len());
                let mm = minmax_flat(orig);
                let range = if orig.is_empty() { 0.0 } else { mm.max - mm.min };
                let bound = 4e-3 * range + range * 1e-5 + 1e-6;
                for (&x, &y) in orig.iter().zip(dec) {
                    if y == 0.0 && !conservative {
                        proptest::prop_assert!(x.abs() <= bound);
                    } else {
                        proptest::prop_assert!((x - y).abs() <= bound);
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "schedule does not match")]
    fn mismatched_schedule_panics() {
        let layers = [vec![0.0f32; 10]];
        let refs: Vec<&[f32]> = layers.iter().map(|l| l.as_slice()).collect();
        let schedule = LayerSchedule::build(&[20], 8);
        let rng = Rng::new(13);
        compress_chunked(
            &refs,
            &CompsoConfig::default(),
            &KernelConfig::default(),
            &schedule,
            &rng,
        );
    }
}
