//! Parallel compression kernels — the CPU analogue of §4.5's GPU work.
//!
//! The paper's GPU optimizations and their counterparts here:
//!
//! | paper (CUDA)                               | this module (rayon)       |
//! |--------------------------------------------|---------------------------|
//! | fuse filter/quantize/pack into one kernel  | [`KernelConfig::fused`]: one data sweep per chunk vs. staged passes with materialized intermediates |
//! | block reduction + warp shuffle for extrema | [`KernelConfig::hierarchical_extrema`]: chunk-local scans merged in a reduction tree vs. a flat serial scan |
//! | padded shared-memory buffers per layer     | chunks never span layers; each chunk's bitmap is padded to a byte boundary |
//! | pre-built layer→block hashmap              | [`LayerSchedule`] built once at optimizer init, reused every iteration |
//! | block-parallel decompression               | v2's per-chunk byte-offset index lets [`decompress_chunked`] decode every chunk concurrently |
//!
//! Compression is memory-bound with O(1) arithmetic intensity (§4.5), so
//! pass-count is the first-order cost and the fused/staged ablation is
//! directly measurable (the `kernels` criterion bench).
//!
//! [`ChunkedCompso`] packages these kernels behind the [`Compressor`]
//! trait so `DistKfac` can drive them as the production compression path.

use crate::bitpack::bits_for;
use crate::microkernel;
use crate::pipeline::CompsoConfig;
use crate::quantize::{ErrorBound, Quantized, Quantizer};
use crate::traits::{CompressError, Compressor};
use crate::wire::{Reader, WireError, Writer};
use compso_obs::{names, Recorder};
use compso_tensor::reduce::{minmax_flat, minmax_hierarchical, MinMax};
use compso_tensor::rng::Rng;
use rayon::prelude::*;

/// Magic byte of the chunked-parallel wire format (distinct from the
/// serial pipeline's v1 magic; registered as
/// [`crate::wire::magic::MAGIC_STREAM_V2`]).
pub const MAGIC_CHUNKED: u8 = crate::wire::magic::MAGIC_STREAM_V2;

/// Version of the chunked wire format. v2 added the per-chunk byte-offset
/// index over the code and bitmap streams, which is what makes
/// [`decompress_chunked`] chunk-parallel: each worker seeks straight to
/// its chunk's records instead of replaying every earlier chunk's
/// variable-length headers.
pub const CHUNKED_VERSION: u8 = 2;

/// Byte-block granularity of the parallel entropy-coding stage.
pub const CODEC_BLOCK: usize = 256 * 1024;

/// Kernel structure knobs (the §4.5 ablation axes).
#[derive(Clone, Copy, Debug)]
pub struct KernelConfig {
    /// Elements per chunk (the "thread block" tile).
    pub chunk_elems: usize,
    /// One fused sweep per chunk (true) vs. staged passes with
    /// materialized intermediates (false).
    pub fused: bool,
    /// Tree-reduction extrema (true) vs. flat serial scan (false).
    pub hierarchical_extrema: bool,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            chunk_elems: 16 * 1024,
            fused: true,
            hierarchical_extrema: true,
        }
    }
}

/// One chunk of the precomputed layer→block schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkDesc {
    /// Layer index the chunk belongs to.
    pub layer: usize,
    /// Element offset within the layer.
    pub offset: usize,
    /// Elements in this chunk.
    pub len: usize,
}

/// The reusable layer→chunk assignment (§4.5's "pre-determined
/// layer-block hashmap ... built during the initialization of the KFAC
/// optimizer and reused for the rest of the iterations").
#[derive(Clone, Debug)]
pub struct LayerSchedule {
    layer_sizes: Vec<usize>,
    chunk_elems: usize,
    chunks: Vec<ChunkDesc>,
}

impl LayerSchedule {
    /// Builds the schedule: each layer is tiled independently, so no chunk
    /// ever mixes two layers' normalization ranges.
    pub fn build(layer_sizes: &[usize], chunk_elems: usize) -> Self {
        assert!(chunk_elems > 0, "chunk size must be positive");
        let mut chunks = Vec::new();
        for (layer, &n) in layer_sizes.iter().enumerate() {
            let mut offset = 0;
            while offset < n {
                let len = (n - offset).min(chunk_elems);
                chunks.push(ChunkDesc { layer, offset, len });
                offset += len;
            }
            if n == 0 {
                // Zero-size layers still need a (empty) slot so decompression
                // emits them in order.
                chunks.push(ChunkDesc {
                    layer,
                    offset: 0,
                    len: 0,
                });
            }
        }
        LayerSchedule {
            layer_sizes: layer_sizes.to_vec(),
            chunk_elems,
            chunks,
        }
    }

    /// The chunks, in layer-then-offset order.
    pub fn chunks(&self) -> &[ChunkDesc] {
        &self.chunks
    }

    /// Per-layer sizes the schedule was built for.
    pub fn layer_sizes(&self) -> &[usize] {
        &self.layer_sizes
    }

    /// The chunk tile size the schedule was built with.
    pub fn chunk_elems(&self) -> usize {
        self.chunk_elems
    }

    /// Whether this schedule was built for exactly these layer sizes.
    pub fn matches(&self, layer_sizes: &[usize]) -> bool {
        self.layer_sizes == layer_sizes
    }
}

/// Per-chunk compression product.
struct ChunkOut {
    /// Padded bitmap bytes (empty when the filter is off).
    bitmap: Vec<u8>,
    /// Serialized chunk header + quantized codes.
    codes: Vec<u8>,
}

/// Stage-1 product: the filter sweep over one chunk.
struct FilteredChunk {
    /// Padded bitmap bytes (empty when the filter is off).
    bitmap: Vec<u8>,
    /// Surviving (unfiltered) values.
    kept: Vec<f32>,
    /// Original chunk element count.
    n: usize,
    /// Whether the filter branch ran.
    used_filter: bool,
}

/// The filter sweep of one chunk against the *layer-global* range. Shared
/// verbatim by the fused and staged kernel paths, so the §4.5 ablation
/// stays bit-identical by construction.
fn filter_chunk(data: &[f32], range: MinMax, cfg: &CompsoConfig) -> FilteredChunk {
    let span = if data.is_empty() {
        0.0
    } else {
        range.max - range.min
    };
    let threshold = match cfg.eb_filter {
        Some(ebf) if span > 0.0 => ebf * span,
        _ => 0.0,
    };
    let use_filter = threshold > 0.0;

    let mut bitmap = if use_filter {
        vec![0u8; data.len().div_ceil(8)]
    } else {
        Vec::new()
    };
    let mut kept: Vec<f32> = Vec::with_capacity(data.len());
    if use_filter {
        for (i, &v) in data.iter().enumerate() {
            if v.abs() < threshold {
                bitmap[i / 8] |= 1 << (i % 8);
            } else {
                kept.push(v);
            }
        }
    } else {
        kept.extend_from_slice(data);
    }
    FilteredChunk {
        bitmap,
        kept,
        n: data.len(),
        used_filter: use_filter,
    }
}

/// The quantize sweep of one chunk. Quantizes against the LAYER range
/// (not the chunk range): every chunk of a layer shares one
/// normalization, matching the GPU kernel. Shared by both kernel paths.
fn quantize_chunk(
    kept: &[f32],
    n: usize,
    range: MinMax,
    cfg: &CompsoConfig,
    rng: &mut Rng,
) -> Quantized {
    let quantizer = Quantizer {
        bound: crate::quantize::ErrorBound::Relative(cfg.eb_quant),
        mode: cfg.mode,
    };
    let (lo, hi) = if n == 0 {
        (0.0, 0.0)
    } else {
        (range.min, range.max)
    };
    quantizer.quantize_with_range(kept, lo, hi, rng)
}

/// Serializes one chunk's record into the codes stream. Shared by both
/// kernel paths.
fn serialize_chunk(n: usize, used_filter: bool, quant: &Quantized) -> Vec<u8> {
    let mut codes = Writer::new();
    codes.u64(n as u64);
    codes.u8(u8::from(used_filter));
    quant.write(&mut codes);
    codes.into_bytes()
}

/// Compresses one chunk in a single fused sweep: filter decision,
/// kept-value collection, quantization, and serialization without
/// materializing cross-chunk intermediates.
///
/// Scalar composition of the shared per-stage helpers, retained as the
/// bit-identity oracle for [`compress_chunk_fast`] (§12 of DESIGN.md).
#[cfg(test)]
fn compress_chunk_fused(
    data: &[f32],
    range: MinMax,
    cfg: &CompsoConfig,
    rng: &mut Rng,
) -> ChunkOut {
    let f = filter_chunk(data, range, cfg);
    let quant = quantize_chunk(&f.kept, f.n, range, cfg, rng);
    ChunkOut {
        bitmap: f.bitmap,
        codes: serialize_chunk(f.n, f.used_filter, &quant),
    }
}

/// The production fused sweep, rebuilt on the [`microkernel`] layer: the
/// u64-window filter kernel, the mode-hoisted (branchless-SR) quantize
/// kernel, and the u64-window bit-packer, all writing through the
/// per-thread compress arena instead of fresh `Vec`s.
///
/// Bit-identical to [`compress_chunk_fused`] by construction: the
/// threshold/range/bin arithmetic below replicates `filter_chunk` +
/// `Quantizer::quantize_with_range` exactly (f32 span, f64 coordinate,
/// same clamp, same per-element RNG draws), and the staged ablation path
/// still runs the scalar helpers — so the existing fused-vs-staged wire
/// equality test doubles as the end-to-end microkernel bit-identity pin.
fn compress_chunk_fast(data: &[f32], range: MinMax, cfg: &CompsoConfig, rng: &mut Rng) -> ChunkOut {
    microkernel::with_compress_scratch(|s| {
        // Filter threshold: identical derivation to `filter_chunk`.
        let span = if data.is_empty() {
            0.0
        } else {
            range.max - range.min
        };
        let threshold = match cfg.eb_filter {
            Some(ebf) if span > 0.0 => ebf * span,
            _ => 0.0,
        };
        let use_filter = threshold > 0.0;
        let mut bitmap = Vec::new();
        if use_filter {
            microkernel::filter_kernel(data, threshold, &mut bitmap, &mut s.kept);
        } else {
            s.kept.clear();
            s.kept.extend_from_slice(data);
        }

        // Quantizer header: identical derivation to `quantize_chunk` /
        // `Quantizer::quantize_with_range` (layer-global range, f32 span,
        // f64 reciprocal width).
        let (lo, hi) = if data.is_empty() {
            (0.0, 0.0)
        } else {
            (range.min, range.max)
        };
        assert!(hi >= lo, "invalid range [{lo}, {hi}]");
        let qrange = hi - lo;
        let (bin_width, n_bins) = if qrange == 0.0 || s.kept.is_empty() {
            (0.0f32, 0u32)
        } else {
            let eb_abs = ErrorBound::Relative(cfg.eb_quant).absolute_for_range(qrange);
            assert!(eb_abs > 0.0, "error bound collapsed to zero");
            (eb_abs, (qrange as f64 / eb_abs as f64).ceil() as u32)
        };
        if n_bins > 0 {
            let inv_w = 1.0 / bin_width as f64;
            microkernel::quantize_kernel(&s.kept, lo, inv_w, n_bins, cfg.mode, rng, &mut s.codes);
            microkernel::pack_into(&s.codes, bits_for(n_bins), &mut s.packed);
        }

        // Serialize: same record layout as `serialize_chunk` +
        // `Quantized::write`, straight from the arena.
        let packed = if n_bins > 0 { s.packed.as_slice() } else { &[] };
        let mut w = Writer::with_capacity(29 + packed.len());
        w.u64(data.len() as u64);
        w.u8(u8::from(use_filter));
        w.f32(lo);
        w.f32(bin_width);
        w.u32(n_bins);
        w.u64(s.kept.len() as u64);
        w.bytes(packed);
        ChunkOut {
            bitmap,
            codes: w.into_bytes(),
        }
    })
}

/// Compresses multiple layers with the chunked-parallel kernels.
///
/// The output is the self-describing v2 chunked format (see
/// [`CHUNKED_VERSION`]), distinct from [`crate::pipeline::Compso`]'s
/// serial format; decode with [`decompress_chunked`]. The result is
/// deterministic for a fixed `rng` seed regardless of thread count: each
/// chunk forks its own RNG stream by chunk index.
pub fn compress_chunked(
    layers: &[&[f32]],
    cfg: &CompsoConfig,
    kc: &KernelConfig,
    schedule: &LayerSchedule,
    rng: &Rng,
) -> Vec<u8> {
    assert_eq!(
        schedule.layer_sizes,
        layers.iter().map(|l| l.len()).collect::<Vec<_>>(),
        "schedule does not match layer sizes"
    );

    // Pass 1: per-layer extrema.
    let ranges: Vec<MinMax> = layers
        .iter()
        .map(|l| {
            if kc.hierarchical_extrema {
                minmax_hierarchical(l)
            } else {
                minmax_flat(l)
            }
        })
        .collect();

    // Pass 2(+): the chunk sweep.
    let outs: Vec<ChunkOut> = if kc.fused {
        schedule
            .chunks
            .par_iter()
            .enumerate()
            .map(|(idx, c)| {
                let slice = &layers[c.layer][c.offset..c.offset + c.len];
                let mut chunk_rng = rng.fork(idx as u64);
                compress_chunk_fast(slice, ranges[c.layer], cfg, &mut chunk_rng)
            })
            .collect()
    } else {
        // Staged: materialize the filter products for every chunk first,
        // then quantize, then serialize — three full traversals, matching
        // an unfused multi-kernel GPU pipeline. Each stage reuses the same
        // per-chunk helpers as the fused path, so both paths emit
        // bit-identical bytes.
        let stage1: Vec<FilteredChunk> = schedule
            .chunks
            .par_iter()
            .map(|c| {
                let slice = &layers[c.layer][c.offset..c.offset + c.len];
                filter_chunk(slice, ranges[c.layer], cfg)
            })
            .collect();
        let stage2: Vec<Quantized> = schedule
            .chunks
            .par_iter()
            .enumerate()
            .map(|(idx, c)| {
                let s1 = &stage1[idx];
                let mut chunk_rng = rng.fork(idx as u64);
                quantize_chunk(&s1.kept, s1.n, ranges[c.layer], cfg, &mut chunk_rng)
            })
            .collect();
        stage1
            .into_par_iter()
            .zip(stage2)
            .map(|(s1, quant)| ChunkOut {
                codes: serialize_chunk(s1.n, s1.used_filter, &quant),
                bitmap: s1.bitmap,
            })
            .collect()
    };

    // Gather the per-chunk products into contiguous streams, recording the
    // byte offset of every chunk in both streams — the v2 index that makes
    // decode chunk-parallel.
    let total_bitmap: usize = outs.iter().map(|o| o.bitmap.len()).sum();
    let total_codes: usize = outs.iter().map(|o| o.codes.len()).sum();
    let mut bitmaps = Vec::with_capacity(total_bitmap);
    let mut codes = Vec::with_capacity(total_codes);
    let mut offsets: Vec<(u64, u64)> = Vec::with_capacity(outs.len());
    for o in &outs {
        offsets.push((codes.len() as u64, bitmaps.len() as u64));
        codes.extend_from_slice(&o.codes);
        bitmaps.extend_from_slice(&o.bitmap);
    }
    // nvCOMP-style block-parallel entropy coding (§5.2's "block
    // processing scheme") — the codec stage scales with cores like the
    // chunk sweep does.
    let enc_bitmaps = cfg.codec.encode_blocks(&bitmaps, CODEC_BLOCK);
    let enc_codes = cfg.codec.encode_blocks(&codes, CODEC_BLOCK);

    let mut w =
        Writer::with_capacity(enc_bitmaps.len() + enc_codes.len() + 16 * offsets.len() + 64);
    w.u8(MAGIC_CHUNKED);
    w.u8(CHUNKED_VERSION);
    w.u8(cfg.codec.tag());
    w.u8(0);
    w.u32(schedule.layer_sizes.len() as u32);
    for &n in &schedule.layer_sizes {
        w.u64(n as u64);
    }
    w.u64(schedule.chunk_elems as u64);
    w.u32(offsets.len() as u32);
    for &(c_off, b_off) in &offsets {
        w.u64(c_off);
        w.u64(b_off);
    }
    w.block(&enc_bitmaps);
    w.block(&enc_codes);
    w.into_bytes()
}

/// [`compress_chunked`] with the whole kernel sweep timed under the
/// `core/chunked_compress` span and in/out traffic counted in the same
/// `core/bytes_in` / `core/bytes_out` counters the serial pipeline uses,
/// so live compression-ratio dashboards see both paths uniformly.
pub fn compress_chunked_recorded(
    layers: &[&[f32]],
    cfg: &CompsoConfig,
    kc: &KernelConfig,
    schedule: &LayerSchedule,
    rng: &Rng,
    rec: &Recorder,
) -> Vec<u8> {
    let out = {
        let _span = rec.span(names::CORE_CHUNKED_COMPRESS);
        compress_chunked(layers, cfg, kc, schedule, rng)
    };
    if rec.is_enabled() {
        let n: usize = layers.iter().map(|l| l.len()).sum();
        rec.add(names::CORE_BYTES_IN, (n * 4) as u64);
        rec.add(names::CORE_BYTES_OUT, out.len() as u64);
    }
    out
}

/// Decodes one chunk's record from its exact byte slices. Both readers
/// must be fully consumed — a chunk that under- or over-runs its indexed
/// slice is corrupt.
///
/// Microkernel rewrite of [`decompress_chunk_ref`]: the quantized record
/// is unpacked through the u64-window [`microkernel::unpack_into`] into a
/// per-thread code buffer (no per-chunk `Vec<u32>` churn), and the
/// dequantize + keep-mask scatter are fused — values materialize directly
/// into the caller's pre-zeroed output window via
/// [`microkernel::scatter_kept`] instead of through intermediate `kept`
/// and per-chunk output vectors (the window is the chunk's slice of the
/// final layer buffer, so decode has no assembly copy at all). Every
/// validation check and error string of the scalar reference is
/// preserved, in the same order.
///
/// `out` must be zero-filled and exactly `c.len` long.
fn decompress_chunk_into(
    c: &ChunkDesc,
    codes: &[u8],
    bitmaps: &[u8],
    out: &mut [f32],
) -> Result<(), CompressError> {
    debug_assert_eq!(out.len(), c.len);
    let mut cr = Reader::new(codes);
    let n = usize::try_from(cr.u64()?).map_err(|_| WireError::Invalid("chunk len"))?;
    if n != c.len {
        return Err(CompressError::Corrupt("chunk length mismatch"));
    }
    let used_filter = match cr.u8()? {
        0 => false,
        1 => true,
        _ => return Err(WireError::Invalid("filter flag").into()),
    };
    // Inline `Quantized::read_capped` with identical validation (the
    // chunk's element count from the schedule caps the carried count), but
    // unpacking into the thread-local code buffer.
    let lo = cr.f32()?;
    let bin_width = cr.f32()?;
    let n_bins = cr.u32()?;
    let count = crate::wire::checked_count(cr.u64()?)?;
    if count > c.len {
        return Err(WireError::Invalid("quantized count over cap").into());
    }
    if !lo.is_finite() || !bin_width.is_finite() || bin_width < 0.0 {
        return Err(WireError::Invalid("quantized header").into());
    }
    microkernel::with_decode_codes(|qcodes| {
        // A zero-bin or zero-count record is the constant block: `count`
        // codes of value 0, backed by zero stream bytes.
        let constant = count == 0 || n_bins == 0;
        if constant {
            qcodes.clear();
        } else {
            let bits = bits_for(n_bins);
            let need = (count * bits as usize).div_ceil(8);
            let bytes = cr.bytes(need)?;
            let maxc = microkernel::unpack_into(bytes, bits, count, qcodes)?;
            if maxc > n_bins {
                return Err(WireError::Invalid("quantized code out of range").into());
            }
        }
        if !cr.is_exhausted() {
            return Err(CompressError::Corrupt("chunk codes overrun"));
        }
        let lo64 = lo as f64;
        let bw64 = bin_width as f64;
        if used_filter {
            let mut br = Reader::new(bitmaps);
            let bm = br.bytes(n.div_ceil(8))?;
            if !br.is_exhausted() {
                return Err(CompressError::Corrupt("chunk bitmap overrun"));
            }
            let res = if constant {
                // Code 0 dequantizes to exactly `lo` (f32→f64→f32 is
                // exact), independent of the carried bin width.
                microkernel::scatter_kept(bm, n, count, out, |_| lo)
            } else {
                let qc: &[u32] = qcodes;
                microkernel::scatter_kept(bm, n, count, out, |k| {
                    (lo64 + qc[k] as f64 * bw64) as f32
                })
            };
            match res {
                Ok(()) => Ok(()),
                Err(microkernel::ScatterError::Underrun) => {
                    Err(CompressError::Corrupt("kept underrun"))
                }
                Err(microkernel::ScatterError::Overrun) => {
                    Err(CompressError::Corrupt("kept overrun"))
                }
            }
        } else {
            if !bitmaps.is_empty() {
                return Err(CompressError::Corrupt("unexpected bitmap bytes"));
            }
            if count != n {
                return Err(CompressError::Corrupt("unfiltered chunk size"));
            }
            if constant {
                out.fill(lo);
            } else {
                for (o, &code) in out.iter_mut().zip(qcodes.iter()) {
                    *o = (lo64 + code as f64 * bw64) as f32;
                }
            }
            Ok(())
        }
    })
}

/// [`decompress_chunk_into`] materializing its own output vector — the
/// shape the equivalence and corruption proptests drive directly.
#[cfg(test)]
fn decompress_chunk(
    c: &ChunkDesc,
    codes: &[u8],
    bitmaps: &[u8],
) -> Result<Vec<f32>, CompressError> {
    let mut out = vec![0.0f32; c.len];
    decompress_chunk_into(c, codes, bitmaps, &mut out)?;
    Ok(out)
}

/// Scalar reference decoder, retained as the bit-identity oracle for
/// [`decompress_chunk`] (pinned by `prop_decompress_chunk_matches_ref`).
#[cfg(test)]
fn decompress_chunk_ref(
    c: &ChunkDesc,
    codes: &[u8],
    bitmaps: &[u8],
) -> Result<Vec<f32>, CompressError> {
    let mut cr = Reader::new(codes);
    let n = usize::try_from(cr.u64()?).map_err(|_| WireError::Invalid("chunk len"))?;
    if n != c.len {
        return Err(CompressError::Corrupt("chunk length mismatch"));
    }
    let used_filter = match cr.u8()? {
        0 => false,
        1 => true,
        _ => return Err(WireError::Invalid("filter flag").into()),
    };
    // The chunk's element count is known from the schedule, so the
    // quantized record (whose constant-block encoding carries a count
    // backed by zero bytes) can be capped with real context.
    let quant = Quantized::read_capped(&mut cr, c.len)?;
    if !cr.is_exhausted() {
        return Err(CompressError::Corrupt("chunk codes overrun"));
    }
    let kept = quant.dequantize();
    let mut out = Vec::with_capacity(n);
    if used_filter {
        let mut br = Reader::new(bitmaps);
        let bm = br.bytes(n.div_ceil(8))?;
        if !br.is_exhausted() {
            return Err(CompressError::Corrupt("chunk bitmap overrun"));
        }
        let mut next = 0usize;
        for i in 0..n {
            let dropped = (bm[i / 8] >> (i % 8)) & 1 == 1;
            if dropped {
                out.push(0.0);
            } else {
                let v = *kept
                    .get(next)
                    .ok_or(CompressError::Corrupt("kept underrun"))?;
                next += 1;
                out.push(v);
            }
        }
        if next != kept.len() {
            return Err(CompressError::Corrupt("kept overrun"));
        }
    } else {
        if !bitmaps.is_empty() {
            return Err(CompressError::Corrupt("unexpected bitmap bytes"));
        }
        if kept.len() != n {
            return Err(CompressError::Corrupt("unfiltered chunk size"));
        }
        out.extend_from_slice(&kept);
    }
    Ok(out)
}

/// Reusable decode scratch: the two concatenated record streams that
/// [`decompress_chunked_scratch`] materializes between entropy decoding
/// and the chunk-parallel scatter.
///
/// These are the only per-call allocations whose size tracks the full
/// gradient volume rather than one chunk, so holding one `DecodeScratch`
/// per training loop (as `DistKfac` does) removes the dominant
/// steady-state decode allocation (ROADMAP item d). The buffers are
/// cleared — not shrunk — between calls.
#[derive(Debug, Default)]
pub struct DecodeScratch {
    bitmaps: Vec<u8>,
    codes: Vec<u8>,
}

impl DecodeScratch {
    /// A fresh, empty scratch pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes currently reserved across both stream buffers (observability
    /// for tests and memory dashboards).
    pub fn capacity_bytes(&self) -> usize {
        self.bitmaps.capacity() + self.codes.capacity()
    }
}

thread_local! {
    /// Per-thread [`DecodeScratch`] pool backing [`decompress_chunked`]:
    /// repeat decodes on a training loop's thread reuse the same stream
    /// buffers instead of reallocating the full gradient volume each step
    /// (ROADMAP item d), with zero API churn for callers.
    static DECODE_SCRATCH: std::cell::RefCell<DecodeScratch> =
        std::cell::RefCell::new(DecodeScratch::new());
}

/// Bytes currently reserved by this thread's [`decompress_chunked`]
/// scratch pool (observability for the reuse-invariant tests).
pub fn decode_scratch_capacity_bytes() -> usize {
    DECODE_SCRATCH.with(|s| s.borrow().capacity_bytes())
}

/// Inverse of [`compress_chunked`].
///
/// The v2 offset index turns decode into a chunk-parallel scatter: every
/// chunk's records are located by direct byte offset, decoded on rayon
/// workers, and stitched back into per-layer buffers. Offsets are
/// validated (monotonic, in-bounds, gap-free via per-chunk reader
/// exhaustion) before any worker touches the streams.
///
/// Scratch buffers come from a thread-local pool. The pool entry is
/// *moved out* for the duration of the decode (not borrowed), so rayon
/// work-stealing that re-enters this function on the same OS thread —
/// e.g. a worker blocked in the inner chunk `collect` stealing another
/// peer-payload decode — finds a fresh empty scratch instead of a held
/// `RefCell` borrow. Re-entrant calls simply allocate; the common
/// steady-state path reuses.
pub fn decompress_chunked(bytes: &[u8]) -> Result<Vec<Vec<f32>>, CompressError> {
    let mut scratch = DECODE_SCRATCH.with(|s| std::mem::take(&mut *s.borrow_mut()));
    let result = decompress_chunked_scratch(bytes, &mut scratch);
    DECODE_SCRATCH.with(|s| *s.borrow_mut() = scratch);
    result
}

/// [`decompress_chunked`] decoding through a caller-owned
/// [`DecodeScratch`], reusing the bitmap/code stream buffers across calls.
///
/// Every length field read from the (untrusted) header is validated
/// against arithmetic identities and the bytes actually received before
/// any allocation sized by it: the layer count must fit in the remaining
/// header bytes, the chunk count must equal the count the layer sizes
/// imply *and* fit the offset index that follows, so a corrupted stream
/// can never drive an allocation larger than the buffer it arrived in.
pub fn decompress_chunked_scratch(
    bytes: &[u8],
    scratch: &mut DecodeScratch,
) -> Result<Vec<Vec<f32>>, CompressError> {
    let mut r = Reader::new(bytes);
    if r.u8()? != MAGIC_CHUNKED {
        return Err(WireError::Invalid("chunked magic").into());
    }
    if r.u8()? != CHUNKED_VERSION {
        return Err(WireError::Invalid("chunked version").into());
    }
    let codec = crate::encoders::Codec::from_tag(r.u8()?).ok_or(WireError::Invalid("codec tag"))?;
    let _ = codec; // per-frame codec tags live inside the block frames
    let _flags = r.u8()?;
    let n_layers = r.u32()? as usize;
    // Each layer size costs 8 header bytes, so a count the buffer cannot
    // back is corruption — checked before the sizes vector is reserved.
    if n_layers > 1_000_000 || n_layers > r.remaining() / 8 {
        return Err(WireError::Invalid("layer count").into());
    }
    let mut layer_sizes = Vec::with_capacity(n_layers);
    for _ in 0..n_layers {
        layer_sizes.push(crate::wire::checked_count(r.u64()?)?);
    }
    let chunk_elems = crate::wire::checked_count(r.u64()?)?;
    if chunk_elems == 0 {
        return Err(WireError::Invalid("chunk size").into());
    }
    // The chunk count is fully determined by (layer_sizes, chunk_elems):
    // computing it arithmetically *before* building the schedule means a
    // hostile header can never make `LayerSchedule::build` allocate a
    // chunk vector the real stream would not carry.
    let mut implied_chunks: usize = 0;
    for &n in &layer_sizes {
        let c = if n == 0 { 1 } else { n.div_ceil(chunk_elems) };
        implied_chunks = implied_chunks
            .checked_add(c)
            .ok_or(WireError::Invalid("chunk count overflow"))?;
    }
    let n_chunks = r.u32()? as usize;
    if n_chunks != implied_chunks {
        return Err(CompressError::Corrupt("chunk count vs schedule"));
    }
    // Each chunk owns a 16-byte offset-index entry in what remains.
    if n_chunks > r.remaining() / 16 {
        return Err(WireError::Invalid("chunk count vs buffer").into());
    }
    let schedule = LayerSchedule::build(&layer_sizes, chunk_elems);
    debug_assert_eq!(schedule.chunks().len(), n_chunks);
    let mut offsets: Vec<(usize, usize)> = Vec::with_capacity(n_chunks);
    for _ in 0..n_chunks {
        let c_off = crate::wire::checked_count(r.u64()?)?;
        let b_off = crate::wire::checked_count(r.u64()?)?;
        offsets.push((c_off, b_off));
    }
    crate::encoders::Codec::decode_blocks_into(r.block()?, &mut scratch.bitmaps)?;
    crate::encoders::Codec::decode_blocks_into(r.block()?, &mut scratch.codes)?;
    let bitmaps: &[u8] = &scratch.bitmaps;
    let codes: &[u8] = &scratch.codes;
    if !r.is_exhausted() {
        return Err(CompressError::Corrupt("trailing bytes"));
    }

    // Validate the offset index: chunk i's records span [off(i), off(i+1))
    // in each stream; the last chunk ends at the stream length. Offsets
    // must start at zero and never run backwards or out of bounds. Gaps
    // between records are caught per-chunk by reader-exhaustion checks.
    let mut ends: Vec<(usize, usize)> = Vec::with_capacity(n_chunks);
    for i in 0..n_chunks {
        let (c0, b0) = offsets[i];
        let (c1, b1) = if i + 1 < n_chunks {
            offsets[i + 1]
        } else {
            (codes.len(), bitmaps.len())
        };
        if c0 > c1 || b0 > b1 || c1 > codes.len() || b1 > bitmaps.len() {
            return Err(CompressError::Corrupt("chunk offset index"));
        }
        ends.push((c1, b1));
    }
    if n_chunks > 0 && offsets[0] != (0, 0) {
        return Err(CompressError::Corrupt("chunk offset index"));
    }

    // Chunk-parallel decode, straight into the layer buffers: chunks are
    // in layer-then-offset order and tile each layer contiguously, so
    // every chunk owns a disjoint window of its layer's output and the
    // old gather-and-copy assembly stage disappears. The buffers come
    // from the zeroed allocator, which is what the scatter path's
    // "dropped values are exactly 0.0" contract needs.
    let mut out: Vec<Vec<f32>> = layer_sizes.iter().map(|&n| vec![0.0f32; n]).collect();
    let mut windows: Vec<&mut [f32]> = Vec::with_capacity(n_chunks);
    for buf in out.iter_mut() {
        if buf.is_empty() {
            // A zero-length layer still carries one (empty) chunk record.
            windows.push(&mut []);
        } else {
            windows.extend(buf.chunks_mut(chunk_elems));
        }
    }
    debug_assert_eq!(windows.len(), n_chunks);
    let chunks = schedule.chunks();
    windows
        .into_par_iter()
        .enumerate()
        .map(|(i, dst)| {
            let (c0, b0) = offsets[i];
            let (c1, b1) = ends[i];
            decompress_chunk_into(&chunks[i], &codes[c0..c1], &bitmaps[b0..b1], dst)
        })
        .collect::<Result<Vec<()>, CompressError>>()?;
    Ok(out)
}

/// [`decompress_chunked`] timed under the same `core/decode` span and
/// `core/decode_bytes_in` counter as the serial pipeline's decode.
pub fn decompress_chunked_recorded(
    bytes: &[u8],
    rec: &Recorder,
) -> Result<Vec<Vec<f32>>, CompressError> {
    let _span = rec.span(names::CORE_DECODE);
    rec.add(names::CORE_DECODE_BYTES_IN, bytes.len() as u64);
    decompress_chunked(bytes)
}

/// The chunked-parallel COMPSO compressor: the same strategy knobs as
/// [`Compso`] (`CompsoConfig`) executed by the §4.5 kernels.
///
/// Single-buffer [`Compressor::compress`] calls tile the buffer with a
/// throwaway one-layer [`LayerSchedule`]; the production hot path is
/// [`Compressor::compress_group`], where the caller (e.g. `DistKfac`)
/// passes a schedule built once at optimizer init and reused every
/// iteration. Output bytes are identical either way for matching layer
/// shapes, and deterministic at any thread count.
///
/// [`Compso`]: crate::pipeline::Compso
#[derive(Clone, Copy, Debug, Default)]
pub struct ChunkedCompso {
    /// The active compression strategy (shared with the serial pipeline).
    pub config: CompsoConfig,
    /// Kernel structure knobs (chunk size, fused/staged, extrema path).
    pub kernel: KernelConfig,
    /// Scale the chunk tile with the workload via the §4.4 overhead
    /// model ([`crate::perfmodel::choose_chunk_elems`]) instead of
    /// always using the fixed `kernel.chunk_elems`.
    pub adaptive_chunking: bool,
}

impl ChunkedCompso {
    /// Creates a chunked compressor with the given strategy and default
    /// kernel structure.
    pub fn new(config: CompsoConfig) -> Self {
        ChunkedCompso {
            config,
            kernel: KernelConfig::default(),
            adaptive_chunking: false,
        }
    }

    /// Replaces the kernel configuration.
    pub fn with_kernel(mut self, kernel: KernelConfig) -> Self {
        self.kernel = kernel;
        self
    }

    /// Enables workload-adaptive chunk sizing: schedules are built with
    /// the §4.4 model's choice for the group's total element count
    /// (floored at the fixed `kernel.chunk_elems`) instead of the fixed
    /// default. The choice is a pure function of the element count —
    /// never of live thread counts — so replicas stay bit-identical;
    /// for workloads under `chunk_elems × MODELED_PARALLEL_WIDTH`
    /// elements it *equals* the fixed default, making adaptive and
    /// fixed chunking byte-identical on typical training layers.
    pub fn with_adaptive_chunking(mut self) -> Self {
        self.adaptive_chunking = true;
        self
    }

    /// The chunk tile for a workload of `total_elems` (the fixed
    /// default, or the §4.4 model choice with adaptive chunking on).
    fn chunk_choice(&self, total_elems: usize) -> usize {
        if self.adaptive_chunking {
            crate::perfmodel::choose_chunk_elems(total_elems, self.kernel.chunk_elems)
        } else {
            self.kernel.chunk_elems
        }
    }

    /// Derives the per-call base RNG, advancing the caller's generator
    /// exactly once so repeated calls never reuse randomness while chunk
    /// workers still fork deterministic per-chunk streams from it.
    fn base_rng(rng: &mut Rng) -> Rng {
        Rng::new(rng.next_u64())
    }
}

impl Compressor for ChunkedCompso {
    fn name(&self) -> &'static str {
        "COMPSO-chunked"
    }

    fn compress(&self, data: &[f32], rng: &mut Rng) -> Vec<u8> {
        self.compress_recorded(data, rng, &Recorder::disabled())
    }

    fn decompress(&self, bytes: &[u8]) -> Result<Vec<f32>, CompressError> {
        self.decompress_recorded(bytes, &Recorder::disabled())
    }

    fn compress_recorded(&self, data: &[f32], rng: &mut Rng, rec: &Recorder) -> Vec<u8> {
        let schedule = LayerSchedule::build(&[data.len()], self.chunk_choice(data.len()));
        let base = Self::base_rng(rng);
        compress_chunked_recorded(&[data], &self.config, &self.kernel, &schedule, &base, rec)
    }

    fn decompress_recorded(&self, bytes: &[u8], rec: &Recorder) -> Result<Vec<f32>, CompressError> {
        let mut layers = decompress_chunked_recorded(bytes, rec)?;
        if layers.len() != 1 {
            return Err(CompressError::Corrupt("expected a single layer"));
        }
        Ok(layers.pop().unwrap())
    }

    fn compress_group(
        &self,
        layers: &[&[f32]],
        schedule: Option<&LayerSchedule>,
        rng: &mut Rng,
        rec: &Recorder,
    ) -> Vec<u8> {
        let base = Self::base_rng(rng);
        match schedule {
            Some(s) => compress_chunked_recorded(layers, &self.config, &self.kernel, s, &base, rec),
            None => {
                let sizes: Vec<usize> = layers.iter().map(|l| l.len()).collect();
                let s = LayerSchedule::build(&sizes, self.chunk_choice(sizes.iter().sum()));
                compress_chunked_recorded(layers, &self.config, &self.kernel, &s, &base, rec)
            }
        }
    }

    fn decompress_group(
        &self,
        bytes: &[u8],
        rec: &Recorder,
    ) -> Result<Vec<Vec<f32>>, CompressError> {
        decompress_chunked_recorded(bytes, rec)
    }

    fn preferred_chunk_elems(&self) -> Option<usize> {
        Some(self.kernel.chunk_elems)
    }

    fn chunk_elems_for(&self, total_elems: usize) -> Option<usize> {
        Some(self.chunk_choice(total_elems))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rounding::RoundingMode;
    use crate::synthetic::{generate_layers, GradientProfile};

    fn layers_fixture(seed: u64) -> Vec<Vec<f32>> {
        generate_layers(&[50_000, 1234, 0, 70_001, 8], seed, GradientProfile::kfac())
    }

    #[test]
    fn schedule_covers_layers_exactly() {
        let s = LayerSchedule::build(&[100, 0, 250], 64);
        let mut per_layer = vec![0usize; 3];
        for c in s.chunks() {
            per_layer[c.layer] += c.len;
            assert!(c.len <= 64);
        }
        assert_eq!(per_layer, vec![100, 0, 250]);
        // Chunks are contiguous per layer.
        let mut expected_offset = [0usize; 3];
        for c in s.chunks() {
            assert_eq!(c.offset, expected_offset[c.layer]);
            expected_offset[c.layer] += c.len;
        }
        assert_eq!(s.chunk_elems(), 64);
        assert!(s.matches(&[100, 0, 250]));
        assert!(!s.matches(&[100, 250]));
    }

    #[test]
    fn fused_roundtrip_matches_layers() {
        let layers = layers_fixture(1);
        let refs: Vec<&[f32]> = layers.iter().map(|l| l.as_slice()).collect();
        let cfg = CompsoConfig::aggressive(4e-3);
        let kc = KernelConfig::default();
        let schedule = LayerSchedule::build(
            &layers.iter().map(|l| l.len()).collect::<Vec<_>>(),
            kc.chunk_elems,
        );
        let rng = Rng::new(2);
        let bytes = compress_chunked(&refs, &cfg, &kc, &schedule, &rng);
        let back = decompress_chunked(&bytes).unwrap();
        assert_eq!(back.len(), layers.len());
        for (orig, dec) in layers.iter().zip(&back) {
            assert_eq!(orig.len(), dec.len());
            let mm = minmax_flat(orig);
            let range = if orig.is_empty() {
                0.0
            } else {
                mm.max - mm.min
            };
            for (&x, &y) in orig.iter().zip(dec) {
                if y == 0.0 {
                    assert!(x.abs() <= 4e-3 * range * 1.001 + 1e-7);
                } else {
                    assert!((x - y).abs() <= 4e-3 * range * 1.01 + 1e-7, "{x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn fused_and_staged_produce_identical_bytes() {
        // Same RNG forking discipline -> bit-identical outputs, so the
        // ablation is purely about kernel structure.
        let layers = layers_fixture(3);
        let refs: Vec<&[f32]> = layers.iter().map(|l| l.as_slice()).collect();
        let cfg = CompsoConfig::aggressive(4e-3);
        let sizes: Vec<usize> = layers.iter().map(|l| l.len()).collect();
        let schedule = LayerSchedule::build(&sizes, 16 * 1024);
        let rng = Rng::new(4);
        let fused = compress_chunked(
            &refs,
            &cfg,
            &KernelConfig {
                fused: true,
                ..KernelConfig::default()
            },
            &schedule,
            &rng,
        );
        let staged = compress_chunked(
            &refs,
            &cfg,
            &KernelConfig {
                fused: false,
                ..KernelConfig::default()
            },
            &schedule,
            &rng,
        );
        assert_eq!(fused, staged);
    }

    /// Direct chunk-level pin: the microkernel fused sweep must emit the
    /// same bitmap and record bytes as the scalar helper composition for
    /// every rounding mode, with and without the filter, including the
    /// degenerate constant/empty chunks — and leave the RNG at the same
    /// stream position.
    #[test]
    fn fast_chunk_matches_scalar_fused_across_modes() {
        let datasets: Vec<Vec<f32>> = vec![
            crate::synthetic::generate(10_000, 41, GradientProfile::kfac()),
            crate::synthetic::generate(7, 42, GradientProfile::kfac()),
            vec![0.25f32; 513], // constant: degenerate zero-span range
            vec![],
            vec![1.0, -1.0, 0.0, -0.0, f32::MIN_POSITIVE],
        ];
        for data in &datasets {
            let range = minmax_flat(data);
            for mode in [
                RoundingMode::Nearest,
                RoundingMode::Stochastic,
                RoundingMode::HalfProbability,
            ] {
                for eb_filter in [Some(1e-3), None] {
                    let cfg = CompsoConfig {
                        mode,
                        eb_filter,
                        ..CompsoConfig::aggressive(4e-3)
                    };
                    let mut rng_fast = Rng::new(91);
                    let mut rng_ref = Rng::new(91);
                    let fast = compress_chunk_fast(data, range, &cfg, &mut rng_fast);
                    let reference = compress_chunk_fused(data, range, &cfg, &mut rng_ref);
                    assert_eq!(fast.bitmap, reference.bitmap, "{mode:?} {eb_filter:?}");
                    assert_eq!(fast.codes, reference.codes, "{mode:?} {eb_filter:?}");
                    assert_eq!(
                        rng_fast.next_u64(),
                        rng_ref.next_u64(),
                        "RNG stream position diverged ({mode:?} {eb_filter:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn compress_scratch_pool_backs_compress_chunked() {
        // Compress-side twin of the decode pool test: after one chunked
        // compress the per-thread arena holds capacity, and repeats
        // neither grow it nor change the emitted bytes.
        let layers = layers_fixture(43);
        let refs: Vec<&[f32]> = layers.iter().map(|l| l.as_slice()).collect();
        let cfg = CompsoConfig::aggressive(4e-3);
        let kc = KernelConfig::default();
        let sizes: Vec<usize> = layers.iter().map(|l| l.len()).collect();
        let schedule = LayerSchedule::build(&sizes, kc.chunk_elems);
        let first = compress_chunked(&refs, &cfg, &kc, &schedule, &Rng::new(44));
        let cap = microkernel::compress_scratch_capacity_bytes();
        assert!(cap > 0, "compress arena untouched");
        for _ in 0..3 {
            assert_eq!(
                compress_chunked(&refs, &cfg, &kc, &schedule, &Rng::new(44)),
                first
            );
            assert_eq!(microkernel::compress_scratch_capacity_bytes(), cap);
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]
        /// The microkernel chunk decoder against the retained scalar
        /// reference: bit-identical accepts on valid records, and the
        /// same accept/reject verdict (with equal values on accept) when
        /// a byte of the record or bitmap is corrupted.
        #[test]
        fn prop_decompress_chunk_matches_ref(
            n in 0usize..4000,
            seed in proptest::prelude::any::<u64>(),
            filtered in proptest::prelude::any::<bool>(),
            flip in proptest::prelude::any::<(usize, u8)>(),
        ) {
            let data = crate::synthetic::generate(n, seed, GradientProfile::kfac());
            let cfg = if filtered {
                CompsoConfig::aggressive(4e-3)
            } else {
                CompsoConfig::conservative(4e-3)
            };
            let range = minmax_flat(&data);
            let mut rng = Rng::new(seed ^ 0x51);
            let out = compress_chunk_fast(&data, range, &cfg, &mut rng);
            let c = ChunkDesc { layer: 0, offset: 0, len: n };
            let fast = decompress_chunk(&c, &out.codes, &out.bitmap).unwrap();
            let reference = decompress_chunk_ref(&c, &out.codes, &out.bitmap).unwrap();
            let fast_bits: Vec<u32> = fast.iter().map(|v| v.to_bits()).collect();
            let ref_bits: Vec<u32> = reference.iter().map(|v| v.to_bits()).collect();
            proptest::prop_assert_eq!(fast_bits, ref_bits);

            // Corrupt one byte: both decoders must agree on the verdict.
            let mut codes = out.codes.clone();
            let mut bitmap = out.bitmap.clone();
            let total = codes.len() + bitmap.len();
            if total > 0 {
                let (pos, xor) = flip;
                let pos = pos % total;
                let xor = xor | 1; // non-zero so the byte really changes
                if pos < codes.len() {
                    codes[pos] ^= xor;
                } else {
                    bitmap[pos - codes.len()] ^= xor;
                }
                let fast = decompress_chunk(&c, &codes, &bitmap);
                let reference = decompress_chunk_ref(&c, &codes, &bitmap);
                match (fast, reference) {
                    (Ok(a), Ok(b)) => {
                        let ab: Vec<u32> = a.iter().map(|v| v.to_bits()).collect();
                        let bb: Vec<u32> = b.iter().map(|v| v.to_bits()).collect();
                        proptest::prop_assert_eq!(ab, bb);
                    }
                    (Err(_), Err(_)) => {}
                    (a, b) => proptest::prop_assert!(
                        false,
                        "verdicts diverged: fast={:?} ref={:?}",
                        a.map(|v| v.len()),
                        b.map(|v| v.len())
                    ),
                }
            }
        }
    }

    #[test]
    fn deterministic_across_calls() {
        let layers = layers_fixture(5);
        let refs: Vec<&[f32]> = layers.iter().map(|l| l.as_slice()).collect();
        let cfg = CompsoConfig::aggressive(4e-3);
        let sizes: Vec<usize> = layers.iter().map(|l| l.len()).collect();
        let schedule = LayerSchedule::build(&sizes, 8192);
        let rng = Rng::new(6);
        let a = compress_chunked(&refs, &cfg, &KernelConfig::default(), &schedule, &rng);
        let b = compress_chunked(&refs, &cfg, &KernelConfig::default(), &schedule, &rng);
        assert_eq!(a, b);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        // The tentpole invariant: with the shim's thread override pinning
        // the worker count, 1 thread and many threads must emit identical
        // bytes and identical decoded values (per-chunk forked RNG streams
        // + order-preserving parallel collect).
        let layers = layers_fixture(21);
        let refs: Vec<&[f32]> = layers.iter().map(|l| l.as_slice()).collect();
        let cfg = CompsoConfig::aggressive(4e-3);
        let sizes: Vec<usize> = layers.iter().map(|l| l.len()).collect();
        let schedule = LayerSchedule::build(&sizes, 4096);
        let rng = Rng::new(22);
        let (serial_bytes, serial_back) = {
            let _guard = rayon::scoped_thread_override(1);
            let b = compress_chunked(&refs, &cfg, &KernelConfig::default(), &schedule, &rng);
            let d = decompress_chunked(&b).unwrap();
            (b, d)
        };
        for threads in [2usize, 4, 8] {
            let _guard = rayon::scoped_thread_override(threads);
            let b = compress_chunked(&refs, &cfg, &KernelConfig::default(), &schedule, &rng);
            assert_eq!(b, serial_bytes, "compress differs at {threads} threads");
            let d = decompress_chunked(&b).unwrap();
            assert_eq!(d, serial_back, "decode differs at {threads} threads");
        }
    }

    #[test]
    fn flat_and_hierarchical_extrema_agree() {
        let layers = layers_fixture(7);
        let refs: Vec<&[f32]> = layers.iter().map(|l| l.as_slice()).collect();
        let cfg = CompsoConfig::conservative(4e-3);
        let sizes: Vec<usize> = layers.iter().map(|l| l.len()).collect();
        let schedule = LayerSchedule::build(&sizes, 8192);
        let rng = Rng::new(8);
        let h = compress_chunked(
            &refs,
            &cfg,
            &KernelConfig {
                hierarchical_extrema: true,
                ..KernelConfig::default()
            },
            &schedule,
            &rng,
        );
        let f = compress_chunked(
            &refs,
            &cfg,
            &KernelConfig {
                hierarchical_extrema: false,
                ..KernelConfig::default()
            },
            &schedule,
            &rng,
        );
        assert_eq!(h, f);
    }

    #[test]
    fn conservative_mode_roundtrip() {
        let layers = layers_fixture(9);
        let refs: Vec<&[f32]> = layers.iter().map(|l| l.as_slice()).collect();
        let cfg = CompsoConfig::conservative(2e-3);
        let sizes: Vec<usize> = layers.iter().map(|l| l.len()).collect();
        let schedule = LayerSchedule::build(&sizes, 4096);
        let rng = Rng::new(10);
        let bytes = compress_chunked(&refs, &cfg, &KernelConfig::default(), &schedule, &rng);
        let back = decompress_chunked(&bytes).unwrap();
        for (orig, dec) in layers.iter().zip(&back) {
            let mm = minmax_flat(orig);
            let range = if orig.is_empty() {
                0.0
            } else {
                mm.max - mm.min
            };
            for (&x, &y) in orig.iter().zip(dec) {
                assert!((x - y).abs() <= 2e-3 * range * 1.01 + 1e-7);
            }
        }
    }

    #[test]
    fn truncation_rejected() {
        let layers = layers_fixture(11);
        let refs: Vec<&[f32]> = layers.iter().map(|l| l.as_slice()).collect();
        let cfg = CompsoConfig::aggressive(4e-3);
        let sizes: Vec<usize> = layers.iter().map(|l| l.len()).collect();
        let schedule = LayerSchedule::build(&sizes, 8192);
        let rng = Rng::new(12);
        let bytes = compress_chunked(&refs, &cfg, &KernelConfig::default(), &schedule, &rng);
        for cut in [0usize, 2, 10, 40, bytes.len() / 2, bytes.len() - 1] {
            assert!(decompress_chunked(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn v1_version_byte_rejected() {
        let layers = layers_fixture(13);
        let refs: Vec<&[f32]> = layers.iter().map(|l| l.as_slice()).collect();
        let sizes: Vec<usize> = layers.iter().map(|l| l.len()).collect();
        let schedule = LayerSchedule::build(&sizes, 8192);
        let rng = Rng::new(14);
        let mut bytes = compress_chunked(
            &refs,
            &CompsoConfig::aggressive(4e-3),
            &KernelConfig::default(),
            &schedule,
            &rng,
        );
        assert_eq!(bytes[1], CHUNKED_VERSION);
        bytes[1] = 1; // the pre-index v1 layout is gone; readers must refuse
        assert!(decompress_chunked(&bytes).is_err());
    }

    #[test]
    fn corrupted_chunk_offset_index_rejected() {
        let layers = layers_fixture(15);
        let refs: Vec<&[f32]> = layers.iter().map(|l| l.as_slice()).collect();
        let sizes: Vec<usize> = layers.iter().map(|l| l.len()).collect();
        let schedule = LayerSchedule::build(&sizes, 8192);
        let rng = Rng::new(16);
        let bytes = compress_chunked(
            &refs,
            &CompsoConfig::aggressive(4e-3),
            &KernelConfig::default(),
            &schedule,
            &rng,
        );
        // The index sits right after the fixed header: magic(1) ver(1)
        // codec(1) flags(1) n_layers(4) sizes(8 each) chunk_elems(8),
        // then n_chunks(4) and (codes_off, bitmap_off) u64 pairs.
        let index_base = 16 + 8 * sizes.len();
        let n_chunks =
            u32::from_le_bytes(bytes[index_base..index_base + 4].try_into().unwrap()) as usize;
        assert_eq!(n_chunks, schedule.chunks().len());
        // (a) nudge a mid-index codes offset: the preceding chunk's slice
        // grows a byte, tripping the exhaustion check (or misparsing).
        let mut nudged = bytes.clone();
        let mid = index_base + 4 + 16 * (n_chunks / 2);
        nudged[mid] = nudged[mid].wrapping_add(1);
        assert!(decompress_chunked(&nudged).is_err());
        // (b) blow an offset out of bounds entirely.
        let mut blown = bytes.clone();
        for b in &mut blown[mid..mid + 8] {
            *b = 0xFF;
        }
        assert!(decompress_chunked(&blown).is_err());
        // (c) a non-zero first offset implies a leading gap.
        let mut shifted = bytes.clone();
        shifted[index_base + 4] = shifted[index_base + 4].wrapping_add(1);
        assert!(decompress_chunked(&shifted).is_err());
        // (d) wrong chunk count vs. the schedule implied by the header.
        let mut miscounted = bytes;
        miscounted[index_base] = miscounted[index_base].wrapping_add(1);
        assert!(decompress_chunked(&miscounted).is_err());
    }

    #[test]
    fn chunked_compso_roundtrips_via_compressor_trait() {
        let data = crate::synthetic::generate(60_000, 17, GradientProfile::kfac());
        let c = ChunkedCompso::new(CompsoConfig::aggressive(4e-3));
        let mut rng = Rng::new(18);
        let bytes = c.compress(&data, &mut rng);
        let back = c.decompress(&bytes).unwrap();
        assert_eq!(back.len(), data.len());
        let mm = minmax_flat(&data);
        let range = mm.max - mm.min;
        for (&x, &y) in data.iter().zip(&back) {
            if y == 0.0 {
                assert!(x.abs() <= 4e-3 * range * 1.001 + 1e-7);
            } else {
                assert!((x - y).abs() <= 4e-3 * range * 1.01 + 1e-7);
            }
        }
        // Ratio plumbing works through the trait too.
        let ratio = c.ratio(&data, &mut rng);
        assert!(ratio > 5.0, "ratio {ratio}");
        assert_eq!(
            c.preferred_chunk_elems(),
            Some(KernelConfig::default().chunk_elems)
        );
    }

    #[test]
    fn chunked_compso_group_uses_and_matches_provided_schedule() {
        let layers = layers_fixture(19);
        let refs: Vec<&[f32]> = layers.iter().map(|l| l.as_slice()).collect();
        let sizes: Vec<usize> = layers.iter().map(|l| l.len()).collect();
        let c = ChunkedCompso::new(CompsoConfig::aggressive(4e-3));
        let schedule = LayerSchedule::build(&sizes, c.kernel.chunk_elems);
        let rec = Recorder::disabled();
        // Same RNG state, with vs. without a caller-provided schedule:
        // identical bytes (the schedule is a pure cache).
        let mut rng_a = Rng::new(20);
        let with_schedule = c.compress_group(&refs, Some(&schedule), &mut rng_a, &rec);
        let mut rng_b = Rng::new(20);
        let without = c.compress_group(&refs, None, &mut rng_b, &rec);
        assert_eq!(with_schedule, without);
        // And the caller's RNG advanced identically either way.
        assert_eq!(rng_a.next_u64(), rng_b.next_u64());
        let back = c.decompress_group(&with_schedule, &rec).unwrap();
        assert_eq!(back.len(), layers.len());
        for (orig, dec) in layers.iter().zip(&back) {
            assert_eq!(orig.len(), dec.len());
        }
    }

    #[test]
    fn chunked_compso_consumes_rng_per_call() {
        // Two consecutive compress calls must not reuse randomness: the
        // caller's generator advances, so stochastic rounding differs.
        let data = crate::synthetic::generate(30_000, 23, GradientProfile::kfac());
        let c = ChunkedCompso::new(CompsoConfig::aggressive(4e-3));
        let mut rng = Rng::new(24);
        let a = c.compress(&data, &mut rng);
        let b = c.compress(&data, &mut rng);
        assert_ne!(a, b, "consecutive calls reused the RNG stream");
        // But a reset generator reproduces the first call exactly.
        let mut rng2 = Rng::new(24);
        assert_eq!(a, c.compress(&data, &mut rng2));
    }

    #[test]
    fn recorded_chunked_paths_track_traffic_and_match_plain() {
        let layers = layers_fixture(25);
        let refs: Vec<&[f32]> = layers.iter().map(|l| l.as_slice()).collect();
        let sizes: Vec<usize> = layers.iter().map(|l| l.len()).collect();
        let schedule = LayerSchedule::build(&sizes, 8192);
        let cfg = CompsoConfig::aggressive(4e-3);
        let kc = KernelConfig::default();
        let rng = Rng::new(26);
        let rec = Recorder::enabled();
        let bytes = compress_chunked_recorded(&refs, &cfg, &kc, &schedule, &rng, &rec);
        assert_eq!(bytes, compress_chunked(&refs, &cfg, &kc, &schedule, &rng));
        let back = decompress_chunked_recorded(&bytes, &rec).unwrap();
        assert_eq!(back, decompress_chunked(&bytes).unwrap());
        let snap = rec.snapshot();
        let total: usize = sizes.iter().sum();
        assert_eq!(snap.counter(names::CORE_BYTES_IN), (total * 4) as u64);
        assert_eq!(snap.counter(names::CORE_BYTES_OUT), bytes.len() as u64);
        assert_eq!(
            snap.counter(names::CORE_DECODE_BYTES_IN),
            bytes.len() as u64
        );
        assert_eq!(snap.timers[names::CORE_CHUNKED_COMPRESS].count, 1);
        assert_eq!(snap.timers[names::CORE_DECODE].count, 1);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]
        /// Arbitrary layer configurations, chunk sizes, and seeds: the
        /// chunked pipeline must roundtrip lengths exactly and respect the
        /// error contract on every element.
        #[test]
        fn prop_chunked_roundtrip(
            sizes in proptest::collection::vec(0usize..3000, 1..5),
            chunk in 1usize..5000,
            seed in proptest::prelude::any::<u64>(),
            conservative in proptest::prelude::any::<bool>(),
        ) {
            let layers = generate_layers(&sizes, seed, GradientProfile::kfac());
            let refs: Vec<&[f32]> = layers.iter().map(|l| l.as_slice()).collect();
            let cfg = if conservative {
                CompsoConfig::conservative(4e-3)
            } else {
                CompsoConfig::aggressive(4e-3)
            };
            let schedule = LayerSchedule::build(&sizes, chunk);
            let rng = Rng::new(seed ^ 0xABCD);
            let bytes = compress_chunked(&refs, &cfg, &KernelConfig::default(), &schedule, &rng);
            let back = decompress_chunked(&bytes).unwrap();
            proptest::prop_assert_eq!(back.len(), layers.len());
            for (orig, dec) in layers.iter().zip(&back) {
                proptest::prop_assert_eq!(orig.len(), dec.len());
                let mm = minmax_flat(orig);
                let range = if orig.is_empty() { 0.0 } else { mm.max - mm.min };
                let bound = 4e-3 * range + range * 1e-5 + 1e-6;
                for (&x, &y) in orig.iter().zip(dec) {
                    if y == 0.0 && !conservative {
                        proptest::prop_assert!(x.abs() <= bound);
                    } else {
                        proptest::prop_assert!((x - y).abs() <= bound);
                    }
                }
            }
        }
    }

    #[test]
    fn decode_scratch_is_reused_across_calls() {
        // ROADMAP item d: repeat decodes through one DecodeScratch must
        // not keep allocating the stream buffers — after the first call
        // the reserved capacity plateaus — and reuse must not change the
        // decoded bytes.
        let layers = layers_fixture(9);
        let refs: Vec<&[f32]> = layers.iter().map(|l| l.as_slice()).collect();
        let cfg = CompsoConfig::aggressive(4e-3);
        let kc = KernelConfig::default();
        let sizes: Vec<usize> = layers.iter().map(|l| l.len()).collect();
        let schedule = LayerSchedule::build(&sizes, kc.chunk_elems);
        let bytes = compress_chunked(&refs, &cfg, &kc, &schedule, &Rng::new(10));

        let mut scratch = DecodeScratch::new();
        assert_eq!(scratch.capacity_bytes(), 0);
        let first = decompress_chunked_scratch(&bytes, &mut scratch).unwrap();
        let cap = scratch.capacity_bytes();
        assert!(cap > 0, "decode reserved nothing");
        for _ in 0..5 {
            let again = decompress_chunked_scratch(&bytes, &mut scratch).unwrap();
            assert_eq!(first, again, "scratch reuse changed the decode");
            assert_eq!(scratch.capacity_bytes(), cap, "scratch kept growing");
        }
    }

    #[test]
    fn thread_local_scratch_pool_backs_decompress_chunked() {
        // The zero-API-churn path: plain decompress_chunked calls on one
        // thread share the thread-local pool, so its capacity is non-zero
        // after a decode and stable across repeats.
        let layers = layers_fixture(11);
        let refs: Vec<&[f32]> = layers.iter().map(|l| l.as_slice()).collect();
        let cfg = CompsoConfig::aggressive(4e-3);
        let kc = KernelConfig::default();
        let sizes: Vec<usize> = layers.iter().map(|l| l.len()).collect();
        let schedule = LayerSchedule::build(&sizes, kc.chunk_elems);
        let bytes = compress_chunked(&refs, &cfg, &kc, &schedule, &Rng::new(12));

        let first = decompress_chunked(&bytes).unwrap();
        let cap = decode_scratch_capacity_bytes();
        assert!(cap > 0, "pool untouched after decode");
        for _ in 0..3 {
            assert_eq!(decompress_chunked(&bytes).unwrap(), first);
            assert_eq!(decode_scratch_capacity_bytes(), cap);
        }
    }

    #[test]
    #[should_panic(expected = "schedule does not match")]
    fn mismatched_schedule_panics() {
        let layers = [vec![0.0f32; 10]];
        let refs: Vec<&[f32]> = layers.iter().map(|l| l.as_slice()).collect();
        let schedule = LayerSchedule::build(&[20], 8);
        let rng = Rng::new(13);
        compress_chunked(
            &refs,
            &CompsoConfig::default(),
            &KernelConfig::default(),
            &schedule,
            &rng,
        );
    }

    /// §4.4 satellite pin: below the `floor × MODELED_PARALLEL_WIDTH`
    /// threshold the adaptive choice *equals* the fixed default, so
    /// enabling adaptive chunking changes nothing — byte-identical
    /// streams from the same RNG seed. Training-regime layer groups in
    /// this repo sit well under the default threshold (16Ki × 64 = 1Mi
    /// elements), which is what keeps the distributed trajectories
    /// bit-identical when the flag is flipped.
    #[test]
    fn adaptive_chunking_is_bit_identical_to_fixed_below_threshold() {
        let fixed = ChunkedCompso::new(CompsoConfig::aggressive(4e-3));
        let adaptive = ChunkedCompso::new(CompsoConfig::aggressive(4e-3)).with_adaptive_chunking();
        // Single-buffer path.
        let data = crate::synthetic::generate(60_000, 23, GradientProfile::kfac());
        assert_eq!(
            adaptive.chunk_elems_for(data.len()),
            fixed.preferred_chunk_elems(),
            "60k elems is far below the 1Mi adaptive threshold"
        );
        let mut rng_f = Rng::new(31);
        let mut rng_a = Rng::new(31);
        assert_eq!(
            fixed.compress(&data, &mut rng_f),
            adaptive.compress(&data, &mut rng_a)
        );
        // Grouped path, with and without a caller-cached schedule.
        let layers = layers_fixture(24);
        let refs: Vec<&[f32]> = layers.iter().map(|l| l.as_slice()).collect();
        let sizes: Vec<usize> = layers.iter().map(|l| l.len()).collect();
        let total: usize = sizes.iter().sum();
        let schedule = LayerSchedule::build(&sizes, adaptive.chunk_elems_for(total).unwrap());
        let rec = Recorder::disabled();
        let mut rng_f = Rng::new(32);
        let mut rng_a = Rng::new(32);
        let bytes_fixed = fixed.compress_group(&refs, None, &mut rng_f, &rec);
        let bytes_adaptive = adaptive.compress_group(&refs, Some(&schedule), &mut rng_a, &rec);
        assert_eq!(bytes_fixed, bytes_adaptive);
    }

    /// Above the threshold the adaptive tile grows (a pure function of
    /// the element count), and the output matches a fixed compressor
    /// configured with that exact tile — the model only *selects* the
    /// chunk size, the kernels stay the same.
    #[test]
    fn adaptive_chunking_scales_and_matches_explicit_tile() {
        // Shrink the floor so the threshold (64 × 64 = 4096 elems) is
        // cheap to cross in a unit test.
        let small = KernelConfig {
            chunk_elems: 64,
            ..KernelConfig::default()
        };
        let adaptive = ChunkedCompso::new(CompsoConfig::aggressive(4e-3))
            .with_kernel(small)
            .with_adaptive_chunking();
        let data = crate::synthetic::generate(5_000, 25, GradientProfile::kfac());
        let choice = adaptive.chunk_elems_for(data.len()).unwrap();
        assert_eq!(choice, crate::perfmodel::choose_chunk_elems(data.len(), 64));
        assert!(choice > 64, "5000 elems crosses the 4096 threshold");
        assert!(choice.is_power_of_two());
        let explicit =
            ChunkedCompso::new(CompsoConfig::aggressive(4e-3)).with_kernel(KernelConfig {
                chunk_elems: choice,
                ..KernelConfig::default()
            });
        let mut rng_a = Rng::new(33);
        let mut rng_e = Rng::new(33);
        let bytes = adaptive.compress(&data, &mut rng_a);
        assert_eq!(bytes, explicit.compress(&data, &mut rng_e));
        let back = adaptive.decompress(&bytes).unwrap();
        assert_eq!(back.len(), data.len());
    }
}
