//! The offline-online performance model (§4.4, Eq. 5).
//!
//! The model decides, per system, whether compression pays off end to end
//! and with which encoder and layer-aggregation factor `m`:
//!
//! * **offline**: the communication throughput tables `C^[x]` come from
//!   the network substrate (here, closures over `compso-comm`'s lookup
//!   tables — the crate stays decoupled from the comm layer);
//! * **online**: an [`OnlineProfiler`] records the first `k` warm-up
//!   iterations' compressed sizes and (de)compression throughputs on real
//!   gradients, averaged into a [`CompressorProfile`];
//! * **Eq. 5**: `s = (Σ L_o / C_o) / (L_c / C_c + Σ L_o / T_c + L_c / T_d)`
//!   — estimated original-communication time over estimated
//!   compress+communicate+decompress time;
//! * **end-to-end** (§4.4's closing formula):
//!   `((1 − r) + r / s)⁻¹` for communication fraction `r`.

use crate::encoders::Codec;
use std::time::Instant;

/// Averaged compressor behaviour measured over the warm-up iterations.
#[derive(Clone, Copy, Debug)]
pub struct CompressorProfile {
    /// Mean compression ratio (original bytes / compressed bytes).
    pub ratio: f64,
    /// Compression throughput over *original* bytes, bytes/second
    /// (the paper's `T_o`).
    pub compress_tput: f64,
    /// Decompression throughput over *compressed* bytes, bytes/second
    /// (the paper's `T_c`).
    pub decompress_tput: f64,
}

/// Records warm-up iteration measurements (the "first k iterations" of
/// §4.4).
#[derive(Clone, Debug, Default)]
pub struct OnlineProfiler {
    samples: Vec<(u64, u64, f64, f64)>, // (orig bytes, comp bytes, comp s, decomp s)
}

impl OnlineProfiler {
    /// An empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one compression event.
    pub fn record(&mut self, orig_bytes: u64, comp_bytes: u64, comp_secs: f64, decomp_secs: f64) {
        self.samples
            .push((orig_bytes, comp_bytes, comp_secs, decomp_secs));
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Aggregates the samples into a profile.
    ///
    /// Returns `None` until at least one sample exists.
    pub fn profile(&self) -> Option<CompressorProfile> {
        if self.samples.is_empty() {
            return None;
        }
        let (mut orig, mut comp, mut ct, mut dt) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for &(o, c, cs, ds) in &self.samples {
            orig += o as f64;
            comp += c as f64;
            ct += cs;
            dt += ds;
        }
        Some(CompressorProfile {
            ratio: if comp > 0.0 {
                orig / comp
            } else {
                f64::INFINITY
            },
            compress_tput: if ct > 0.0 { orig / ct } else { f64::INFINITY },
            decompress_tput: if dt > 0.0 { comp / dt } else { f64::INFINITY },
        })
    }
}

/// Eq. 5: communication speedup from compressing `l_o` original bytes to
/// `l_c`, given communication throughputs for each size and the measured
/// compressor profile.
pub fn comm_speedup(
    l_o: f64,
    l_c: f64,
    comm_tput_original: f64,
    comm_tput_compressed: f64,
    profile: &CompressorProfile,
) -> f64 {
    let t_original = l_o / comm_tput_original;
    let t_compressed =
        l_c / comm_tput_compressed + l_o / profile.compress_tput + l_c / profile.decompress_tput;
    if t_compressed <= 0.0 {
        return f64::INFINITY;
    }
    t_original / t_compressed
}

/// §4.4's end-to-end estimate: with communication fraction `r` of the
/// iteration and communication speedup `s`, the whole-iteration gain is
/// `((1 − r) + r / s)⁻¹`.
pub fn end_to_end_gain(r: f64, s: f64) -> f64 {
    assert!((0.0..=1.0).contains(&r), "communication fraction {r}");
    assert!(s > 0.0, "speedup must be positive");
    1.0 / ((1.0 - r) + r / s)
}

/// Wall-clock of a gather whose compression compute (`compute_s`:
/// compress + decompress seconds) is pipelined against its wire time
/// (`comm_s`) in `stages` slots: the longer side hides the shorter
/// except for one slot's worth of pipeline fill,
/// `max + min / stages`. With `stages == 1` this degenerates to the
/// serial `compute + comm` sum; as `stages → ∞` it approaches perfect
/// overlap `max(compute, comm)`.
pub fn pipelined_wall(compute_s: f64, comm_s: f64, stages: usize) -> f64 {
    let g = stages.max(1) as f64;
    compute_s.max(comm_s) + compute_s.min(comm_s) / g
}

/// Predicted achieved overlap fraction of a pipelined gather:
/// `1 − wait / wall`, where `wait` is the exposed wire time — the
/// steady-state excess of communication over compute plus the fill
/// bubble, `max(comm − compute, 0) + min(comm, compute) / stages`. This
/// is the model-side counterpart of the measured
/// `1 − comm/pipeline/wait ÷ kfac/step/allgather` in `StepReport`.
/// Returns 0 when nothing runs (`wall == 0`) or when there is no compute
/// to hide the wire behind.
pub fn predicted_overlap_frac(compute_s: f64, comm_s: f64, stages: usize) -> f64 {
    let g = stages.max(1) as f64;
    let wall = pipelined_wall(compute_s, comm_s, stages);
    if wall <= 0.0 {
        return 0.0;
    }
    let wait = (comm_s - compute_s).max(0.0) + comm_s.min(compute_s) / g;
    (1.0 - wait / wall).clamp(0.0, 1.0)
}

/// Searches the layer-aggregation factor `m` maximizing the estimated
/// end-to-end gain (§4.4's "we find the m such that the end-to-end
/// speedup is high").
///
/// `layer_bytes` are the per-layer original gradient sizes this rank
/// all-gathers; `comm_tput(bytes)` is the offline lookup-table query; the
/// profile supplies ratio and (de)compression throughput; `overlap_tput`
/// is the rate at which the optimizer *produces* per-layer gradients
/// (bytes/s), which prices the overlap lost to aggregation: a group's
/// communication cannot start until its last member is computed, so on
/// average `(m − 1)/(2m)` of the group's production time becomes a
/// serialization bubble. Aggregation therefore wins on many small layers
/// (per-message latency amortizes) and loses on few large ones — the
/// behaviour COMPSO-p exploits over COMPSO-f in Fig. 9.
pub fn choose_aggregation(
    layer_bytes: &[u64],
    comm_tput: impl Fn(f64) -> f64,
    profile: &CompressorProfile,
    overlap_tput: f64,
    max_m: usize,
) -> usize {
    assert!(max_m >= 1);
    assert!(overlap_tput > 0.0);
    if layer_bytes.is_empty() {
        return 1;
    }
    let mut best_m = 1usize;
    let mut best_time = f64::INFINITY;
    for m in 1..=max_m {
        let mut total = 0.0f64;
        for group in layer_bytes.chunks(m) {
            let l_o: f64 = group.iter().map(|&b| b as f64).sum();
            let l_c = l_o / profile.ratio;
            let t_comm = l_c / comm_tput(l_c).max(1.0);
            let t_comp = l_o / profile.compress_tput + l_c / profile.decompress_tput;
            let g = group.len() as f64;
            let bubble = if g > 1.0 {
                (l_o / overlap_tput) * (g - 1.0) / (2.0 * g)
            } else {
                0.0
            };
            total += t_comm + t_comp + bubble;
        }
        if total < best_time {
            best_time = total;
            best_m = m;
        }
    }
    best_m
}

/// Modeled parallel width of the chunked-kernel sweep, in workers. This
/// is a **fixed model constant**, deliberately *not* the live thread
/// count: the chunk choice feeds stochastic-rounding RNG forks, so it
/// must be identical on every rank and every machine for replicas to
/// stay bit-identical. 64 is the §4.4 model's saturation point — beyond
/// one chunk per modeled worker, smaller tiles only add per-chunk
/// header + extrema overhead without exposing more parallelism.
pub const MODELED_PARALLEL_WIDTH: usize = 64;

/// Chunk tile size (in elements) the §4.4 overhead model picks for a
/// workload of `total_elems` elements, floored at `floor` (the fixed
/// [`crate::kernels::KernelConfig`] default).
///
/// The model: per-chunk cost has a fixed part (header records, extrema
/// reduction setup, RNG fork) and a linear part, so throughput rises
/// with chunk size until the chunk count drops below the modeled
/// worker width and load balance collapses. The optimum is therefore
/// "as large as possible while keeping every modeled worker busy":
/// `total / MODELED_PARALLEL_WIDTH`, rounded up to a power of two for
/// alignment, floored at `floor`.
///
/// Pure in `total_elems` — see [`MODELED_PARALLEL_WIDTH`] for why. For
/// any workload below `floor × MODELED_PARALLEL_WIDTH` elements (1 Mi
/// with the defaults) the choice equals `floor`, so small-model
/// training is bit-identical with and without adaptive chunking.
pub fn choose_chunk_elems(total_elems: usize, floor: usize) -> usize {
    assert!(floor > 0, "chunk floor must be positive");
    let target = total_elems.div_ceil(MODELED_PARALLEL_WIDTH).max(1);
    target.next_power_of_two().max(floor)
}

/// Measured behaviour of one candidate encoder on sampled real data
/// (the §4.4 encoder-selection step).
#[derive(Clone, Copy, Debug)]
pub struct EncoderMeasurement {
    /// The candidate.
    pub codec: Codec,
    /// Sample size fed to the encoder.
    pub original_bytes: u64,
    /// Compressed size over the sample.
    pub compressed_bytes: u64,
    /// Encode throughput, bytes of input/second.
    pub encode_tput: f64,
    /// Decode throughput, bytes of compressed input/second.
    pub decode_tput: f64,
}

/// Benchmarks every codec on a byte sample (quantized gradient data from
/// the warm-up iterations) and returns the measurements, Table 2 style.
pub fn measure_encoders(sample: &[u8]) -> Vec<EncoderMeasurement> {
    Codec::all()
        .into_iter()
        .map(|codec| {
            let t0 = Instant::now();
            let enc = codec.encode(sample);
            let enc_secs = t0.elapsed().as_secs_f64().max(1e-9);
            let t1 = Instant::now();
            let dec = codec.decode(&enc).expect("self-encoded stream must decode");
            let dec_secs = t1.elapsed().as_secs_f64().max(1e-9);
            assert_eq!(dec.len(), sample.len());
            EncoderMeasurement {
                codec,
                original_bytes: sample.len() as u64,
                compressed_bytes: enc.len() as u64,
                encode_tput: sample.len() as f64 / enc_secs,
                decode_tput: enc.len() as f64 / dec_secs,
            }
        })
        .collect()
}

/// Selects the encoder minimizing estimated per-byte pipeline time:
/// communicate the compressed bytes at `comm_tput`, plus encode and
/// decode overheads ("we use the encoder with smaller L_c and low overall
/// compression overhead").
pub fn choose_encoder(measurements: &[EncoderMeasurement], comm_tput: f64) -> Codec {
    assert!(!measurements.is_empty());
    // Time to push the whole sample through the pipeline:
    // encode + transmit compressed + decode compressed.
    let total = |m: &EncoderMeasurement| {
        m.original_bytes as f64 / m.encode_tput
            + m.compressed_bytes as f64 / comm_tput
            + m.compressed_bytes as f64 / m.decode_tput
    };
    measurements
        .iter()
        .min_by(|a, b| total(a).partial_cmp(&total(b)).unwrap())
        .map(|m| m.codec)
        .unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(ratio: f64, ct: f64, dt: f64) -> CompressorProfile {
        CompressorProfile {
            ratio,
            compress_tput: ct,
            decompress_tput: dt,
        }
    }

    #[test]
    fn chunk_choice_floors_small_workloads_at_default() {
        let floor = 16 * 1024;
        // Everything up to floor × width collapses to the fixed default,
        // so training-regime buffers chunk identically with and without
        // the adaptive model.
        for total in [
            0usize,
            1,
            1000,
            floor,
            64 * floor,
            floor * MODELED_PARALLEL_WIDTH,
        ] {
            assert_eq!(choose_chunk_elems(total, floor), floor, "total {total}");
        }
    }

    #[test]
    fn chunk_choice_scales_with_large_workloads() {
        let floor = 16 * 1024;
        let big = 64 * 1024 * 1024; // 64 Mi elements
        let chosen = choose_chunk_elems(big, floor);
        assert!(chosen > floor, "chosen {chosen}");
        // Power of two, and the chunk count stays near the modeled width.
        assert!(chosen.is_power_of_two());
        let chunks = big.div_ceil(chosen);
        assert!(
            (MODELED_PARALLEL_WIDTH / 2..=MODELED_PARALLEL_WIDTH).contains(&chunks),
            "chunks {chunks}"
        );
        // Monotone in the workload and deterministic.
        assert!(choose_chunk_elems(2 * big, floor) >= chosen);
        assert_eq!(choose_chunk_elems(big, floor), chosen);
    }

    #[test]
    fn profiler_averages() {
        let mut p = OnlineProfiler::new();
        assert!(p.profile().is_none());
        p.record(1000, 100, 1e-3, 5e-4);
        p.record(3000, 200, 3e-3, 5e-4);
        let prof = p.profile().unwrap();
        assert!((prof.ratio - 4000.0 / 300.0).abs() < 1e-9);
        assert!((prof.compress_tput - 4000.0 / 4e-3).abs() < 1e-6);
        assert!((prof.decompress_tput - 300.0 / 1e-3).abs() < 1e-6);
    }

    #[test]
    fn eq5_paper_example() {
        // §4.4: 50% communication ratio and 10x communication speedup
        // give a 1.8x end-to-end gain.
        let gain = end_to_end_gain(0.5, 10.0);
        assert!((gain - 1.0 / (0.5 + 0.05)).abs() < 1e-12);
        assert!((gain - 1.818).abs() < 0.01, "gain {gain}");
    }

    #[test]
    fn speedup_grows_with_ratio() {
        let fast = profile(20.0, 50e9, 80e9);
        let slow = profile(5.0, 50e9, 80e9);
        let l_o = 100e6;
        let tput = 10e9;
        let s_fast = comm_speedup(l_o, l_o / fast.ratio, tput, tput, &fast);
        let s_slow = comm_speedup(l_o, l_o / slow.ratio, tput, tput, &slow);
        assert!(s_fast > s_slow, "{s_fast} vs {s_slow}");
        // With compression at 50 GB/s against a 10 GB/s network, the
        // compressor overhead caps the speedup well below the raw ratio.
        assert!(s_fast > 3.0 && s_fast < 10.0, "s_fast {s_fast}");
    }

    #[test]
    fn slow_compressor_can_lose() {
        // A 20x ratio is useless if compression runs at network speed.
        let bad = profile(20.0, 5e9, 5e9);
        let l_o = 100e6;
        let tput = 10e9; // network as fast as the compressor
        let s = comm_speedup(l_o, l_o / bad.ratio, tput, tput, &bad);
        assert!(s < 2.0, "s {s}");
    }

    #[test]
    fn end_to_end_degenerates_to_one_without_communication() {
        assert!((end_to_end_gain(0.0, 100.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn end_to_end_equals_s_when_all_communication() {
        assert!((end_to_end_gain(1.0, 7.0) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn pipelined_wall_interpolates_serial_to_perfect_overlap() {
        // One stage = no overlap at all: compute + comm.
        assert!((pipelined_wall(2.0, 3.0, 1) - 5.0).abs() < 1e-12);
        // Four stages: max + min/4.
        assert!((pipelined_wall(2.0, 3.0, 4) - 3.5).abs() < 1e-12);
        // Many stages approach max(compute, comm).
        assert!(pipelined_wall(2.0, 3.0, 1_000_000) - 3.0 < 1e-5);
        // stages == 0 is clamped to 1, not a division blowup.
        assert!((pipelined_wall(2.0, 3.0, 0) - 5.0).abs() < 1e-12);
        // Symmetric in which side is longer.
        assert!((pipelined_wall(3.0, 2.0, 4) - pipelined_wall(2.0, 3.0, 4)).abs() < 1e-12);
    }

    #[test]
    fn predicted_overlap_grows_with_stages_and_needs_compute() {
        // No compute → nothing can hide the wire → zero overlap.
        assert_eq!(predicted_overlap_frac(0.0, 3.0, 8), 0.0);
        // Nothing running at all → zero, not NaN.
        assert_eq!(predicted_overlap_frac(0.0, 0.0, 8), 0.0);
        // More stages hide more of the shorter side.
        let f2 = predicted_overlap_frac(2.0, 3.0, 2);
        let f8 = predicted_overlap_frac(2.0, 3.0, 8);
        assert!(f8 > f2, "{f8} vs {f2}");
        assert!((0.0..=1.0).contains(&f2) && (0.0..=1.0).contains(&f8));
        // Balanced compute == comm with many stages → near-total overlap.
        assert!(predicted_overlap_frac(3.0, 3.0, 1_000_000) > 0.999);
        // Consistency with the wall model: wall == compute + wait when
        // comm dominates (every non-hidden wire second is a wait).
        let (c, w, g) = (1.5, 4.0, 6);
        let wait = (w - c) + c / g as f64;
        let wall = pipelined_wall(c, w, g);
        assert!((predicted_overlap_frac(c, w, g) - (1.0 - wait / wall)).abs() < 1e-12);
    }

    #[test]
    fn aggregation_prefers_grouping_small_layers() {
        // Many tiny layers + a lookup table with poor small-message
        // throughput -> the model should pick m > 1.
        let layers = vec![64_000u64; 48]; // 64 KB layers
        let prof = profile(20.0, 40e9, 60e9);
        // Effective throughput ramps to 12.5 GB/s with 1 MB half-saturation.
        let tput = |bytes: f64| 12.5e9 * bytes / (bytes + 1_000_000.0);
        let m = choose_aggregation(&layers, tput, &prof, 50e9, 16);
        assert!(m > 1, "m {m}");
    }

    #[test]
    fn aggregation_keeps_large_layers_separate() {
        // Large layers already saturate the network; the bubble term makes
        // aggregation pointless.
        let layers = vec![512_000_000u64; 8];
        let prof = profile(20.0, 40e9, 60e9);
        let tput = |bytes: f64| 12.5e9 * bytes / (bytes + 1_000_000.0);
        let m = choose_aggregation(&layers, tput, &prof, 50e9, 16);
        assert!(m <= 2, "m {m}");
    }

    #[test]
    fn aggregation_handles_empty_input() {
        let prof = profile(20.0, 40e9, 60e9);
        assert_eq!(choose_aggregation(&[], |_| 1e9, &prof, 50e9, 16), 1);
    }

    #[test]
    fn encoder_selection_picks_a_sane_codec_on_gradient_codes() {
        use crate::quantize::Quantizer;
        use crate::rounding::RoundingMode;
        use crate::synthetic::{generate, GradientProfile};
        use compso_tensor::rng::Rng;
        let grads = generate(200_000, 1, GradientProfile::kfac());
        let mut rng = Rng::new(2);
        let quant = Quantizer::relative(4e-3, RoundingMode::Stochastic).quantize(&grads, &mut rng);
        let bytes: Vec<u8> = quant.codes.iter().map(|&c| (c & 0xFF) as u8).collect();
        // The measurements are real wall-clock timings; on a loaded
        // single-core test runner one preempted encode can distort a
        // codec's throughput enough to flip the fast-network choice, so
        // allow a few fresh measurement rounds before declaring the
        // selection model wrong. A genuinely broken model (bad size
        // accounting, ratio-blind choice) fails every round the same way.
        let mut last_err = String::new();
        for _attempt in 0..3 {
            let ms = measure_encoders(&bytes);
            assert_eq!(ms.len(), 8);
            // On a bandwidth-starved network the codec with the best size
            // wins outright — and on gradient codes that is an entropy
            // coder (Table 2's headline finding).
            let slow_net = choose_encoder(&ms, 1e6);
            if !slow_net.is_entropy_coding() {
                last_err = format!("slow network chose {}", slow_net.name());
                continue;
            }
            // On a fast network the choice balances throughput too;
            // whatever wins must still be within 4x of the best achievable
            // size, i.e. never a ratio disaster.
            let fast_net = choose_encoder(&ms, 25e9);
            let chosen_m = ms.iter().find(|m| m.codec == fast_net).unwrap();
            let best_size = ms.iter().map(|m| m.compressed_bytes).min().unwrap();
            if chosen_m.compressed_bytes > best_size * 4 {
                last_err = format!(
                    "chose {} at {} vs best {}",
                    fast_net.name(),
                    chosen_m.compressed_bytes,
                    best_size
                );
                continue;
            }
            return;
        }
        panic!("encoder selection failed 3 measurement rounds: {last_err}");
    }

    #[test]
    #[should_panic(expected = "communication fraction")]
    fn invalid_fraction_panics() {
        end_to_end_gain(1.5, 2.0);
    }
}
